package rtm

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	m := ExampleSystem()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(m, res.Schedule)
	if !rep.Feasible {
		t.Fatalf("verify failed:\n%s", rep)
	}
	sim := Simulate(m, res.Schedule)
	if !sim.AllMet {
		t.Fatalf("simulation failed: %s", sim)
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	m := ExampleSystem()
	text := PrintSpec("example", m)
	back, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Constraints) != len(m.Constraints) {
		t.Fatal("spec round trip lost constraints")
	}
}

func TestFacadeSynthesize(t *testing.T) {
	prog, err := Synthesize(ExampleSystem())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Render(), "monitor mon_fS") {
		t.Fatal("render missing monitor")
	}
}

func TestFacadeBuildModel(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("sense", 1)
	m.Comm.AddElement("act", 2)
	m.Comm.AddPath("sense", "act")
	m.AddConstraint(&Constraint{
		Name: "loop", Task: ChainTask("sense", "act"),
		Period: 10, Deadline: 10, Kind: Periodic,
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleExact(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if Latency(m, s, m.Constraints[0].Task) <= 0 {
		t.Fatal("latency not positive")
	}
	ts, err := ProcessBaseline(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].C != 3 {
		t.Fatalf("baseline = %+v", ts)
	}
}

func TestFacadePipeline(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("big", 4)
	m.AddConstraint(&Constraint{
		Name: "B", Task: ChainTask("big"),
		Period: 20, Deadline: 20, Kind: Asynchronous,
	})
	pm, err := Pipeline(m, "big", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Comm.G.NumNodes() != 2 {
		t.Fatalf("stages = %d", pm.Comm.G.NumNodes())
	}
}

func TestFacadeMultiprocessor(t *testing.T) {
	m := ExampleSystem()
	dep, err := DeployMultiprocessor(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dep.ProcSchedules[0] == nil {
		t.Fatal("no schedule")
	}
}

func TestFacadeRunVM(t *testing.T) {
	m := ExampleSystem()
	res, err := Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	rec := Run(m, res.Schedule, 200)
	if len(rec.ExecutionsOf("fS")) == 0 {
		t.Fatal("fS never executed")
	}
}

func TestFacadeAnalyze(t *testing.T) {
	r, err := Analyze(ExampleSystem())
	if err != nil {
		t.Fatal(err)
	}
	if !r.NecessaryOK {
		t.Fatal("example should pass necessary conditions")
	}
}

func TestFacadeGantt(t *testing.T) {
	m := ExampleSystem()
	res, err := Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(m, res.Schedule)
	if !strings.Contains(out, "fS") || !strings.Contains(out, "#") {
		t.Fatalf("gantt output:\n%s", out)
	}
}

func TestFacadeReplicateAndHardware(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("in", 1)
	m.Comm.AddElement("f", 2)
	m.Comm.AddElement("out", 1)
	m.Comm.AddPath("in", "f")
	m.Comm.AddPath("f", "out")
	m.AddConstraint(&Constraint{
		Name: "c", Task: ChainTask("in", "f", "out"),
		Period: 20, Deadline: 20, Kind: Periodic,
	})
	r, err := Replicate(m, "f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	n, err := CompileHardware(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Units) != 6 { // in, 3 replicas, voter, out
		t.Fatalf("units = %d", len(n.Units))
	}
}

func TestFacadeModalAndSensitivity(t *testing.T) {
	m := ExampleSystem()
	sys := NewModalSystem(m)
	sys.AddMode("only-x", &Constraint{
		Name: "X", Task: ChainTask("fX", "fS", "fK"),
		Period: 20, Deadline: 20, Kind: Periodic,
	})
	if err := sys.Compile(); err != nil {
		t.Fatal(err)
	}
	rep, err := Sensitivity(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Headroom < 100 {
		t.Fatalf("headroom = %d", rep.Headroom)
	}
}

func TestFacadeService(t *testing.T) {
	m := ExampleSystem()
	svc := NewService(ServiceOptions{})
	r1, err := svc.Schedule(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Feasible || r1.CacheHit {
		t.Fatalf("cold request: %+v", r1)
	}
	if r1.Fingerprint != Fingerprint(m) {
		t.Fatal("result fingerprint disagrees with rtm.Fingerprint")
	}
	r2, err := svc.Schedule(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("warm request missed the cache")
	}
	if !Verify(m, r2.Schedule).Feasible {
		t.Fatal("cached schedule does not verify")
	}
}

func TestFacadeLocalSearch(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&Constraint{
		Name: "A", Task: ChainTask("a"),
		Period: 4, Deadline: 4, Kind: Asynchronous,
	})
	res, err := ScheduleLocalSearch(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Feasible {
		t.Fatal("infeasible result")
	}
}

func TestFacadeScheduleStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	m := ExampleSystem()

	st, err := OpenScheduleStore(dir, ScheduleStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceOptions{Store: st})
	if _, err := svc.Schedule(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenScheduleStore(dir, ScheduleStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, err := NewService(ServiceOptions{Store: st2}).Schedule(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "store" || !res.Feasible || !res.Report.Feasible {
		t.Fatalf("facade warm start: %+v", res)
	}
}
