GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel exact searcher is exercised under the race detector;
# TestParallelDeterminism and the checker equivalence suite run here.
race:
	$(GO) test -race ./internal/exact/... ./internal/sched/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Worker-count sweep for the parallel exact search (EXPERIMENTS.md §E2b).
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkExactParallel -benchtime 20x .
