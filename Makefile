GO ?= go

.PHONY: build test race vet bench serve fuzz fuzz-short ci bench-json bench-load bench-load-smoke bench-solver bench-solver-smoke bench-corpus bench-corpus-smoke bench-queue bench-queue-smoke bench-cluster bench-cluster-smoke bench-sync bench-sync-smoke bench-memostore bench-memostore-smoke

build:
	$(GO) build ./...

# Default gate: vet plus the full suite under the race detector (the
# service's single-flight test is only meaningful with -race on).
test: vet
	$(GO) test -race ./...

# The parallel exact searcher is exercised under the race detector;
# TestParallelDeterminism and the checker equivalence suite run here.
race:
	$(GO) test -race ./internal/exact/... ./internal/sched/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Worker-count sweep for the parallel exact search (EXPERIMENTS.md §E2b).
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkExactParallel -benchtime 20x .

# Run the scheduling daemon (cmd/rtserved) with defaults.
serve:
	$(GO) run ./cmd/rtserved

# Short fuzz passes: the spec parser round-trip and the canonical
# fingerprint's renaming invariance.
fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 10s ./internal/spec/
	$(GO) test -run xxx -fuzz FuzzFingerprint -fuzztime 10s ./internal/spec/

# Short fuzz passes spread across every fuzz target: parser,
# fingerprint, the schedule store's segment reader
# (no-panic-on-any-bytes), the memo segment reader and import path,
# the pruned-vs-seed differential oracle of the exact search, the
# analytic tier's verdict-vs-oracle soundness check, and the queue
# journal's record reader and replay state machine.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 20s ./internal/spec/
	$(GO) test -run xxx -fuzz FuzzFingerprint -fuzztime 20s ./internal/spec/
	$(GO) test -run xxx -fuzz FuzzStoreDecode -fuzztime 20s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzMemoSegmentDecode -fuzztime 20s ./internal/store/
	$(GO) test -run xxx -fuzz FuzzExactPruned -fuzztime 20s ./internal/exact/
	$(GO) test -run xxx -fuzz FuzzAnalysisSound -fuzztime 20s ./internal/analysis/
	$(GO) test -run xxx -fuzz FuzzQueueDecode -fuzztime 20s ./internal/queue/

# The CI gate: vet, the full suite under the race detector, the short
# fuzz pass, then the load-, solver-, corpus- and queue-suite smokes
# (results to throwaway dirs so the committed bench/ numbers stay the
# curated ones).
ci: test fuzz-short bench-load-smoke bench-solver-smoke bench-corpus-smoke bench-queue-smoke bench-cluster-smoke bench-sync-smoke bench-memostore-smoke

# Machine-readable micro-benchmarks (ns/op, allocs/op) for tracking
# the perf trajectory across PRs; writes bench/BENCH_<suite>.json.
bench-json:
	$(GO) run ./cmd/rtbench -json bench

# Service load suite: closed-loop hot paths (verified-hit fast path vs
# remap + re-check) and an open-loop cold burst against the bounded
# exact-search admission; writes bench/BENCH_service_load.json with
# p50/p95/p99 latency and throughput per scenario.
bench-load:
	$(GO) run ./cmd/rtbench -load bench

# Same suite into a throwaway directory — the CI smoke that proves the
# load harness runs end to end without touching committed results.
bench-load-smoke:
	$(GO) run ./cmd/rtbench -load $$(mktemp -d)

# Exact-search pruner suite: refutation-heavy E2/E3/E4 rows, pruners
# off vs on, both memo sharing modes; writes bench/BENCH_exact_prune.json.
bench-solver:
	$(GO) run ./cmd/rtbench -solver bench

# Solver suite into a throwaway directory — verifies verdict parity
# between pruner configurations end to end without touching bench/.
bench-solver-smoke:
	$(GO) run ./cmd/rtbench -solver $$(mktemp -d)

# Random-DAG corpus suite: 2000 distinct isomorphism classes through
# the admission pipeline with the analytic tier off vs on — per-tier
# decision fractions, exact-search work saved, and a verdict-parity
# cross-check; writes bench/BENCH_corpus.json.
bench-corpus:
	$(GO) run ./cmd/rtbench -corpus bench -corpus-n 2000

# Corpus suite into a throwaway directory at smoke size — the CI gate
# that runs the generator, both pipeline configurations, and the
# parity cross-check end to end.
bench-corpus-smoke:
	$(GO) run ./cmd/rtbench -corpus $$(mktemp -d) -corpus-n 200

# Async-queue suite: the cold burst replayed with the durable solve
# queue attached — sheds become journaled jobs drained by background
# workers, with a synchronous verdict-parity oracle; writes
# bench/BENCH_queue.json with the shed→terminal conversion rate,
# enqueue latency, and end-to-end job latency.
bench-queue:
	$(GO) run ./cmd/rtbench -queue bench

# Queue suite into a throwaway directory — the CI smoke that drives
# submit → journal → worker drain → terminal verdict end to end
# (including the parity oracle) without touching committed results.
bench-queue-smoke:
	$(GO) run ./cmd/rtbench -queue $$(mktemp -d)

# Cluster suite: a 3-node fingerprint-sharded fleet in-process — seed
# every class on its shard owner, one anti-entropy sync round, warm
# serves from every non-owner (zero new exact searches), then a
# kill-one-owner burst (zero failed requests); writes
# bench/BENCH_cluster.json. Acceptance violations fail the run.
bench-cluster:
	$(GO) run ./cmd/rtbench -cluster bench

# Cluster suite into a throwaway directory — the CI smoke that drives
# sharded routing, segment replication, and owner-failure fallback end
# to end without touching committed results.
bench-cluster-smoke:
	$(GO) run ./cmd/rtbench -cluster $$(mktemp -d)

# Delta-replication suite: nearly-converged two-node fleets (10k
# records, 1-32 divergent) synced to convergence over whole-bucket
# pulls vs Merkle narrowing, comparing bytes on the wire; writes
# bench/BENCH_sync.json. A reduction below 10x fails the run.
bench-sync:
	$(GO) run ./cmd/rtbench -sync bench

# Sync suite into a throwaway directory — the CI smoke that drives
# both replication protocols to byte-identical manifests (including
# the 10x acceptance floor) without touching committed results.
bench-sync-smoke:
	$(GO) run ./cmd/rtbench -sync $$(mktemp -d)

# Memo store suite: hard-NO 3-PARTITION classes solved cold with a
# store attached, the service restarted, and perturbed near-miss
# variants replayed warm from the persisted transposition table —
# warm-vs-cold node ratios with tiered verdict-parity oracles; writes
# bench/BENCH_memo_store.json. A ratio below 2x or any verdict
# mismatch fails the run.
bench-memostore:
	$(GO) run ./cmd/rtbench -memostore bench

# The two small families into a throwaway directory — the CI smoke
# that drives cold solve → restart → warm seeded replay → oracle
# parity end to end without touching committed results.
bench-memostore-smoke:
	$(GO) run ./cmd/rtbench -memostore $$(mktemp -d) -memostore-n 2
