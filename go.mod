module rtm

go 1.22
