package rtm

// One benchmark per experiment of DESIGN.md's per-experiment index
// (E1–E9). Each benchmark regenerates the corresponding table of
// EXPERIMENTS.md; the table-shape assertions live in
// internal/experiments' tests, so the benchmarks focus on cost.
// Sub-benchmarks expose the scaling parameter (instance size,
// overlap, stage count) so `go test -bench=.` prints the series the
// paper's claims predict — most prominently the exponential growth of
// exact feasibility testing (Theorem 2).

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/experiments"
	"rtm/internal/heuristic"
	"rtm/internal/nphard"
	"rtm/internal/pipeline"
	"rtm/internal/process"
	"rtm/internal/sched"
	"rtm/internal/sim"
	"rtm/internal/workload"
)

// BenchmarkE1ExampleSynthesis regenerates E1: heuristic synthesis and
// verification of the paper's example system.
func BenchmarkE1ExampleSynthesis(b *testing.B) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkE1ExampleSimulation prices the closed loop: VM run plus
// adversarial invocation checking.
func BenchmarkE1ExampleSimulation(b *testing.B) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.Run(m, res.Schedule, sim.Options{Adversarial: true})
		if !r.AllMet {
			b.Fatal("misses")
		}
	}
}

// BenchmarkE2ExactSearch regenerates E2: exact search cost versus
// constraint count (exponential growth is the expected shape).
func BenchmarkE2ExactSearch(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("constraints=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(21))
			m := workload.AsyncOnly(rng, n, 0.7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := exact.FindSchedule(m, exact.Options{MaxLen: 8})
				if err != nil && err != exact.ErrNotFound {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactParallel sweeps the exact searcher's worker count on
// an E2-style infeasible hardness instance (deadline density exactly
// 1, so every length up to the bound is exhausted — the worst case
// for the search and the best case for the fan-out, since no
// cancellation cuts the speculative subtrees short).
func BenchmarkExactParallel(b *testing.B) {
	m := core.NewModel()
	for i, d := range []int{2, 4, 8, 12, 24} {
		e := fmt.Sprintf("e%d", i)
		m.Comm.AddElement(e, 1)
		m.AddConstraint(&core.Constraint{
			Name: fmt.Sprintf("C%d", i), Task: core.ChainTask(e),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := exact.FindSchedule(m, exact.Options{MaxLen: 24, Workers: w})
				if err != exact.ErrNotFound {
					b.Fatalf("expected exhaustion, got %v", err)
				}
			}
		})
	}
}

// BenchmarkE3ThreePartition regenerates E3: encoded 3-PARTITION
// feasibility via exhaustive search, by m.
func BenchmarkE3ThreePartition(b *testing.B) {
	cases := []nphard.ThreePartition{
		{Sizes: []int{3, 2, 2}, B: 7},
		{Sizes: []int{6, 5, 5, 6, 5, 5}, B: 16},
		{Sizes: []int{3, 2, 2, 3, 2, 2, 3, 2, 2}, B: 7},
	}
	for _, tp := range cases {
		b.Run(fmt.Sprintf("m=%d_B=%d", tp.M(), tp.B), func(b *testing.B) {
			model, err := nphard.EncodeThreePartition(tp)
			if err != nil {
				b.Fatal(err)
			}
			n := tp.M() * (tp.B + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := exact.FindSchedule(model, exact.Options{
					MinLen: n, MaxLen: n, RequireContiguous: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4CyclicOrdering regenerates E4: factorial growth of the
// cyclic-ordering solver.
func BenchmarkE4CyclicOrdering(b *testing.B) {
	for _, n := range []int{5, 6, 7, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			// consistent instance from a hidden arrangement
			perm := rng.Perm(n)
			pos := make([]int, n)
			for i, v := range perm {
				pos[v] = i
			}
			co := nphard.CyclicOrdering{N: n}
			for len(co.Triples) < n {
				x, y, z := rng.Intn(n), rng.Intn(n), rng.Intn(n)
				if x == y || y == z || x == z {
					continue
				}
				pb := (pos[y] - pos[x] + n) % n
				pc := (pos[z] - pos[x] + n) % n
				if pb < pc {
					co.Triples = append(co.Triples, [3]int{x, y, z})
				} else {
					co.Triples = append(co.Triples, [3]int{x, z, y})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := co.Solve(); !ok {
					b.Fatal("consistent instance unsolved")
				}
			}
		})
	}
}

// BenchmarkE5Theorem3Sweep regenerates E5: cost of the constructive
// Theorem 3 scheduler on hypothesis-satisfying instances.
func BenchmarkE5Theorem3Sweep(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	var models []*core.Model
	for len(models) < 8 {
		if m := workload.Theorem3Instance(rng, 4, 0.5); m != nil {
			models = append(models, m)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := models[i%len(models)]
		if _, err := heuristic.Theorem3Schedule(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6PipeliningAblation regenerates E6: latency computation
// across pipeline stage counts.
func BenchmarkE6PipeliningAblation(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stages=%d", k), func(b *testing.B) {
			m := core.NewModel()
			m.Comm.AddElement("heavy", 8)
			m.Comm.AddElement("light", 1)
			m.AddConstraint(&core.Constraint{
				Name: "H", Task: core.ChainTask("heavy"),
				Period: 40, Deadline: 40, Kind: core.Asynchronous,
			})
			m.AddConstraint(&core.Constraint{
				Name: "L", Task: core.ChainTask("light"),
				Period: 4, Deadline: 4, Kind: core.Asynchronous,
			})
			pm, err := pipeline.Decompose(m, "heavy", k)
			if err != nil {
				b.Fatal(err)
			}
			res, err := heuristic.Schedule(pm, heuristic.Options{})
			if err != nil {
				b.Fatal(err)
			}
			task := pm.ConstraintByName("L").Task
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sched.Latency(pm.Comm, res.Schedule, task) > 4 {
					b.Fatal("light op missed")
				}
			}
		})
	}
}

// BenchmarkE7SharedOperations regenerates E7: merge analysis across
// overlap degrees.
func BenchmarkE7SharedOperations(b *testing.B) {
	for _, overlap := range []int{0, 3, 6} {
		b.Run(fmt.Sprintf("overlap=%d", overlap), func(b *testing.B) {
			m, err := workload.SharedPair(6, overlap, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MergePeriodic(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Multiprocessor regenerates E8: partition + per-processor
// synthesis + bus scheduling.
func BenchmarkE8Multiprocessor(b *testing.B) {
	p := core.DefaultExampleParams()
	p.PX, p.PY, p.DZ = 40, 80, 60
	m := core.ExampleSystem(p)
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("procs=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DeployMultiprocessor(m, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9BaselineComparison regenerates E9: process-based
// analyses versus latency scheduling on the shared-f_S system.
func BenchmarkE9BaselineComparison(b *testing.B) {
	p := core.ExampleParams{CX: 2, CY: 3, CZ: 1, CS: 6, CK: 2, PX: 20, PY: 20, DZ: 80, PZ: 100}
	m := core.ExampleSystem(p)
	b.Run("process-analysis", func(b *testing.B) {
		ts, err := process.FromModel(m)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			process.EDFDemandTest(ts)
			process.RMSchedulable(ts)
		}
	})
	b.Run("latency-scheduling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAllExperimentTables prices regenerating the whole
// EXPERIMENTS.md table set (what cmd/rtbench does).
func BenchmarkAllExperimentTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tables := experiments.All(); len(tables) != 14 {
			b.Fatal("table count")
		}
	}
}

// BenchmarkE10Kernelized regenerates E10: kernelized-monitor analysis
// plus simulation across section bounds.
func BenchmarkE10Kernelized(b *testing.B) {
	ts := process.TaskSet{
		{Name: "tight", C: 1, T: 8, D: 3},
		{Name: "shared", C: 3, T: 12, D: 12, CriticalSections: []int{2}},
		{Name: "bulk", C: 4, T: 24, D: 24, CriticalSections: []int{2}},
	}
	for _, q := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				process.KernelizedEDFTest(ts, q)
				process.SimulateKernelized(ts, q, 0)
			}
		})
	}
}

// BenchmarkE11FaultTolerance regenerates E11: value interpretation
// with relations, injection and TMR masking.
func BenchmarkE11FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E11FaultTolerance()
		if len(tbl.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkE12HardwareSynthesis regenerates E12: netlist compilation
// plus cycle-accurate settling measurement.
func BenchmarkE12HardwareSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E12HardwareSynthesis()
		if len(tbl.Rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkE13Distributed regenerates E13: decomposition, distributed
// execution and end-to-end invocation checking.
func BenchmarkE13Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E13Distributed()
		if len(tbl.Rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkE14Modes regenerates E14: per-mode compilation plus
// mode-change latency measurement.
func BenchmarkE14Modes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.E14Modes()
		if len(tbl.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}
