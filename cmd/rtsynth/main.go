// Command rtsynth compiles a requirements specification into a
// verified static schedule and a synthesized process/monitor program.
//
// Usage:
//
//	rtsynth [-exact maxlen] [-workers N] [-prune] [-merge] [-simulate] <spec-file>
//	rtsynth -example            # use the paper's Figure 1/2 system
//
// The specification syntax is documented in internal/spec.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"rtm/internal/analysis"
	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
	"rtm/internal/sim"
	"rtm/internal/spec"
	"rtm/internal/synthesis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtsynth:", err)
		os.Exit(1)
	}
}

func run() error {
	exactLen := flag.Int("exact", 0, "use the exact searcher with this maximum schedule length instead of the heuristic")
	workers := flag.Int("workers", -1, "parallel workers for the exact search (-1 = all CPUs, 1 = sequential)")
	prune := flag.Bool("prune", true, "enable the exact-search pruners (symmetry, memo, bounds)")
	merge := flag.Bool("merge", true, "apply the shared-operation merge before scheduling")
	simulate := flag.Bool("simulate", false, "run the closed-loop simulator on the resulting schedule")
	gantt := flag.Bool("gantt", false, "draw an ASCII timeline of the schedule")
	analyze := flag.Bool("analyze", false, "print the static schedulability analysis")
	example := flag.Bool("example", false, "use the paper's example system instead of a spec file")
	flag.Parse()

	var m *core.Model
	name := "example"
	switch {
	case *example:
		m = core.ExampleSystem(core.DefaultExampleParams())
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		sp, err := spec.Parse(string(data))
		if err != nil {
			return err
		}
		m, name = sp.Model, sp.Name
	default:
		return fmt.Errorf("usage: rtsynth [flags] <spec-file> (or -example); see -help")
	}

	fmt.Printf("system %s: %d elements, %d constraints, utilization %.3f, density %.3f\n",
		name, m.Comm.G.NumNodes(), len(m.Constraints), m.Utilization(), m.DeadlineDensity())

	if *analyze {
		verdict, report, err := analysis.Decide(m)
		if err != nil {
			return err
		}
		fmt.Printf("\n%sverdict: %s\n\n", report, verdict)
		if verdict == analysis.Infeasible {
			return fmt.Errorf("model is provably infeasible")
		}
	}

	var schedule *sched.Schedule
	if *exactLen > 0 {
		if *workers < 0 {
			// exact.Options rejects negative Workers; resolve "all CPUs" here
			*workers = runtime.GOMAXPROCS(0)
		}
		s, st, err := exact.FindSchedule(m, exact.Options{
			MaxLen: *exactLen, Workers: *workers,
			DisableSymmetry: !*prune, DisableMemo: !*prune, DisableBounds: !*prune,
		})
		if err != nil {
			return fmt.Errorf("exact search: %w (explored %d nodes)", err, st.NodesExplored)
		}
		fmt.Printf("exact schedule found after %d nodes / %d candidates\n", st.NodesExplored, st.Candidates)
		schedule = s
	} else {
		res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: *merge})
		if err != nil {
			return fmt.Errorf("heuristic: %w", err)
		}
		for name, pd := range res.Servers {
			fmt.Printf("  server %-10s period=%d deadline=%d\n", name, pd[0], pd[1])
		}
		schedule = res.Schedule
	}

	fmt.Printf("\nstatic schedule (cycle %d, utilization %.3f):\n  %s\n\n",
		schedule.Len(), schedule.Utilization(), schedule)
	rep := sched.Check(m, schedule)
	fmt.Print(rep)
	if *gantt {
		fmt.Println()
		fmt.Print(sched.Gantt(m.Comm, schedule, sched.GanttOptions{}))
		fmt.Print(sched.ComputeStats(schedule))
	}

	prog, err := synthesis.Synthesize(m)
	if err != nil {
		return err
	}
	fmt.Println("\nsynthesized program:")
	fmt.Print(prog.Render())

	if *simulate {
		r := sim.Run(m, schedule, sim.Options{Adversarial: true})
		fmt.Printf("\nsimulation: %s (worst slack %d)\n", r, r.WorstSlack)
		if !r.AllMet {
			return fmt.Errorf("simulation detected deadline misses")
		}
	}
	return nil
}
