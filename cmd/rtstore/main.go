// Command rtstore inspects and maintains a durable schedule store
// (internal/store) — the on-disk L2 tier behind rtserved's schedule
// cache.
//
// Usage:
//
//	rtstore -dir DIR ls                 list records (fingerprint, verdict, slots, source) and memo classes
//	rtstore -dir DIR stat               store totals (records, bytes, memo classes/sigs, corrupt skipped)
//	rtstore -dir DIR get <fingerprint>  print one record as JSON
//	rtstore -dir DIR memo <fingerprint> refutation-cache summary for a fingerprint's memo class
//	rtstore -dir DIR compact            rewrite both logs to the live indexes (atomic rename)
//	rtstore -dir DIR verify             replay the logs and report integrity
//	rtstore -dir DIR [-depth N] manifest   per-prefix counts and digests (verdicts and memo tier)
//	rtstore -dir DIR [-depth N] diff DIR2  compare two stores' digests, list one-sided records
//
// manifest prints the same digests rtserved exposes at
// /cluster/manifest, so an operator can compare a node's disk state
// against the fleet by hand. -depth widens the view from the default
// 16-bucket manifest (depth 1) down to Merkle leaves (depth 3) — the
// same narrowing levels the syncer walks. diff exits non-zero when
// the stores differ, so it doubles as a replication-convergence probe.
//
// Opening a store performs recovery: a torn or corrupt tail is
// truncated to the clean prefix (the same recovery rtserved performs
// at startup). verify exits non-zero when it had to discard anything,
// so it doubles as a CI/cron health probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"rtm/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rtstore: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtstore", flag.ContinueOnError)
	dir := fs.String("dir", "", "schedule store directory")
	depth := fs.Int("depth", 1, fmt.Sprintf("digest depth for manifest/diff: 1 (buckets) to %d (Merkle leaves)", store.MerkleDepth))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if *depth < 1 || *depth > store.MerkleDepth {
		return fmt.Errorf("-depth must be in [1,%d]", store.MerkleDepth)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command: ls, stat, get, memo, compact, verify, manifest, or diff")
	}
	st, err := store.Open(*dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()

	switch cmd := fs.Arg(0); cmd {
	case "ls":
		for _, fp := range st.Fingerprints() {
			rec, _ := st.Get(fp)
			verdict := "infeasible"
			if rec.Feasible {
				verdict = fmt.Sprintf("feasible cycle=%d", len(rec.Slots))
			}
			fmt.Fprintf(out, "%s  %-20s elems=%-3d source=%s\n", fp, verdict, rec.Elements, rec.Source)
		}
		for _, k := range st.MemoKeys() {
			rec, _ := st.GetMemo(k)
			fmt.Fprintf(out, "%s  memo class          sigs=%-5d fingerprints=%d\n", k, len(rec.Sigs), len(rec.Fingerprints))
		}
		return nil
	case "stat":
		fmt.Fprintf(out, "dir:             %s\n", st.Dir())
		fmt.Fprintf(out, "records:         %d\n", st.Len())
		fmt.Fprintf(out, "bytes:           %d\n", st.Bytes())
		fmt.Fprintf(out, "memo classes:    %d\n", st.MemoLen())
		fmt.Fprintf(out, "memo sigs:       %d\n", st.MemoSigs())
		fmt.Fprintf(out, "memo bytes:      %d\n", st.MemoBytes())
		fmt.Fprintf(out, "corrupt skipped: %d\n", st.CorruptSkipped())
		return nil
	case "get":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: rtstore -dir DIR get <fingerprint>")
		}
		rec, ok := st.Get(fs.Arg(1))
		if !ok {
			return fmt.Errorf("no record for %s", fs.Arg(1))
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", data)
		return nil
	case "memo":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: rtstore -dir DIR memo <fingerprint-or-key>")
		}
		rec, ok := st.MemoForFingerprint(fs.Arg(1))
		if !ok {
			rec, ok = st.GetMemo(fs.Arg(1)) // also accept a class key directly
		}
		if !ok {
			return fmt.Errorf("no memo class for %s", fs.Arg(1))
		}
		fmt.Fprintf(out, "class:        %s\n", rec.Key)
		fmt.Fprintf(out, "signatures:   %d\n", len(rec.Sigs))
		fmt.Fprintf(out, "fingerprints: %d\n", len(rec.Fingerprints))
		for _, fp := range rec.Fingerprints {
			fmt.Fprintf(out, "  %s\n", fp)
		}
		return nil
	case "compact":
		before := st.Bytes() + st.MemoBytes()
		if err := st.Compact(); err != nil {
			return err
		}
		fmt.Fprintf(out, "compacted %d records + %d memo classes: %d -> %d bytes\n",
			st.Len(), st.MemoLen(), before, st.Bytes()+st.MemoBytes())
		return nil
	case "verify":
		// Open already replayed both logs, validated every frame and
		// record, and truncated any damage to the clean prefix
		fmt.Fprintf(out, "%d records + %d memo classes, %d bytes clean", st.Len(), st.MemoLen(), st.Bytes()+st.MemoBytes())
		if n := st.CorruptSkipped(); n > 0 {
			fmt.Fprintf(out, ", %d torn/corrupt tail(s) discarded\n", n)
			return fmt.Errorf("log had damage (now truncated to the clean prefix)")
		}
		fmt.Fprintf(out, ", ok\n")
		return nil
	case "manifest":
		ds, err := st.Digests("", *depth, true, true)
		if err != nil {
			return err
		}
		total, memoTotal := 0, 0
		for _, d := range ds {
			if d.Count > 0 {
				fmt.Fprintf(out, "prefix %-3s: %4d records  %s\n", d.Prefix, d.Count, d.Digest)
			}
			if d.MemoCount > 0 {
				fmt.Fprintf(out, "prefix %-3s: %4d memo     %s\n", d.Prefix, d.MemoCount, d.MemoDigest)
			}
			total += d.Count
			memoTotal += d.MemoCount
		}
		fmt.Fprintf(out, "total: %d records, %d memo classes in %d non-empty depth-%d prefixes\n",
			total, memoTotal, len(ds), *depth)
		return nil
	case "diff":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: rtstore -dir DIR diff DIR2")
		}
		other, err := store.Open(fs.Arg(1), store.Options{})
		if err != nil {
			return err
		}
		defer other.Close()
		return diffStores(out, st, other, *depth)
	default:
		return fmt.Errorf("unknown command %q: want ls, stat, get, memo, compact, verify, manifest, or diff", cmd)
	}
}

// diffStores compares two stores prefix by prefix at the chosen
// depth — the same digest-first comparison the anti-entropy syncer
// runs over HTTP — and lists the one-sided fingerprints of every
// differing prefix. It returns a non-nil error when the stores
// differ.
func diffStores(out io.Writer, a, b *store.Store, depth int) error {
	am, err := digestsByPrefix(a, depth)
	if err != nil {
		return err
	}
	bm, err := digestsByPrefix(b, depth)
	if err != nil {
		return err
	}
	prefixes := make([]string, 0, len(am))
	for p := range am {
		prefixes = append(prefixes, p)
	}
	for p := range bm {
		if _, ok := am[p]; !ok {
			prefixes = append(prefixes, p)
		}
	}
	sort.Strings(prefixes)
	haveA, haveB := fingerprintSet(a), fingerprintSet(b)
	differing := 0
	for _, p := range prefixes {
		ad, bd := am[p], bm[p]
		if ad.MemoDigest != bd.MemoDigest {
			differing++
			fmt.Fprintf(out, "prefix %s memo tier differs (%d vs %d classes)\n", p, ad.MemoCount, bd.MemoCount)
		}
		if ad.Digest == bd.Digest {
			continue
		}
		differing++
		fmt.Fprintf(out, "prefix %s differs (%d vs %d records)\n", p, ad.Count, bd.Count)
		for _, fp := range a.Fingerprints() {
			if strings.HasPrefix(fp, p) && !haveB[fp] {
				fmt.Fprintf(out, "  only in %s: %s\n", a.Dir(), fp)
			}
		}
		for _, fp := range b.Fingerprints() {
			if strings.HasPrefix(fp, p) && !haveA[fp] {
				fmt.Fprintf(out, "  only in %s: %s\n", b.Dir(), fp)
			}
		}
	}
	if differing > 0 {
		return fmt.Errorf("stores differ in %d prefix(es)", differing)
	}
	fmt.Fprintf(out, "stores converged: %d records, %d memo classes, manifests identical\n", a.Len(), a.MemoLen())
	return nil
}

// digestsByPrefix indexes a store's non-empty depth-d digest nodes by
// prefix. Prefixes absent from the map compare as the zero digest —
// empty on both sides is converged, one-sided is a difference.
func digestsByPrefix(s *store.Store, depth int) (map[string]store.PrefixDigest, error) {
	ds, err := s.Digests("", depth, true, true)
	if err != nil {
		return nil, err
	}
	m := make(map[string]store.PrefixDigest, len(ds))
	for _, d := range ds {
		m[d.Prefix] = d
	}
	return m, nil
}

// fingerprintSet snapshots a store's fingerprints for membership tests.
func fingerprintSet(s *store.Store) map[string]bool {
	set := make(map[string]bool, s.Len())
	for _, fp := range s.Fingerprints() {
		set[fp] = true
	}
	return set
}
