package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtm/internal/store"
)

func seedStore(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var fps []string
	for i := 0; i < 3; i++ {
		fp := fmt.Sprintf("%064x", i+1)
		rec := &store.Record{Fingerprint: fp, Feasible: true, Elements: 2, Slots: []int{0, 1, -1}, Source: "exact"}
		if i == 2 {
			rec = &store.Record{Fingerprint: fp, Feasible: false, Elements: 2, Source: "analysis"}
		}
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
	}
	return dir, fps
}

func runT(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestRTStoreCommands(t *testing.T) {
	dir, fps := seedStore(t)

	out, err := runT(t, "-dir", dir, "ls")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("ls printed %d lines:\n%s", lines, out)
	}
	if !strings.Contains(out, "feasible cycle=3") || !strings.Contains(out, "infeasible") {
		t.Fatalf("ls output:\n%s", out)
	}

	out, err = runT(t, "-dir", dir, "stat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "records:         3") || !strings.Contains(out, "corrupt skipped: 0") {
		t.Fatalf("stat output:\n%s", out)
	}

	out, err = runT(t, "-dir", dir, "get", fps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"fingerprint": "`+fps[0]+`"`) {
		t.Fatalf("get output:\n%s", out)
	}
	if _, err := runT(t, "-dir", dir, "get", strings.Repeat("0", 64)); err == nil {
		t.Fatal("get of a missing fingerprint succeeded")
	}

	out, err = runT(t, "-dir", dir, "verify")
	if err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("verify: err=%v out=%s", err, out)
	}

	out, err = runT(t, "-dir", dir, "compact")
	if err != nil || !strings.Contains(out, "compacted 3 records") {
		t.Fatalf("compact: err=%v out=%s", err, out)
	}
}

func TestRTStoreManifestAndDiff(t *testing.T) {
	dir, fps := seedStore(t)

	out, err := runT(t, "-dir", dir, "manifest")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total: 3 records, 0 memo classes in 1 non-empty depth-1 prefixes") {
		t.Fatalf("manifest output:\n%s", out)
	}
	// the seed fingerprints %064x of 1..3 all live in bucket 0
	if !strings.Contains(out, "prefix 0  :    3 records  ") {
		t.Fatalf("manifest output:\n%s", out)
	}

	// identical copy converges; diff exits zero
	twin := t.TempDir()
	st, err := store.Open(twin, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps {
		src, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := src.Get(fp)
		src.Close()
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	out, err = runT(t, "-dir", dir, "diff", twin)
	if err != nil || !strings.Contains(out, "stores converged") {
		t.Fatalf("diff of converged stores: err=%v out=%s", err, out)
	}

	// drop one record from the twin: diff names it and errors
	lone := t.TempDir()
	st2, err := store.Open(lone, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := src.Get(fps[0])
	src.Close()
	if err := st2.Put(rec); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	out, err = runT(t, "-dir", dir, "diff", lone)
	if err == nil {
		t.Fatalf("diff of differing stores succeeded:\n%s", out)
	}
	if !strings.Contains(out, "prefix 0 differs (3 vs 1 records)") ||
		!strings.Contains(out, "only in "+dir+": "+fps[1]) ||
		!strings.Contains(out, "only in "+dir+": "+fps[2]) ||
		strings.Contains(out, "only in "+lone) {
		t.Fatalf("diff output:\n%s", out)
	}
}

func TestRTStoreMemoCommands(t *testing.T) {
	dir, fps := seedStore(t)
	key := strings.Repeat("ab", 32)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMemo(key, []string{fps[0]}, [][]byte{[]byte("sig-1"), []byte("sig-2")}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// memo resolves via a member fingerprint and via the class key itself
	for _, arg := range []string{fps[0], key} {
		out, err := runT(t, "-dir", dir, "memo", arg)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "class:        "+key) ||
			!strings.Contains(out, "signatures:   2") ||
			!strings.Contains(out, "  "+fps[0]) {
			t.Fatalf("memo %s output:\n%s", arg, out)
		}
	}
	if _, err := runT(t, "-dir", dir, "memo", strings.Repeat("0", 64)); err == nil {
		t.Fatal("memo of an unknown fingerprint succeeded")
	}

	out, err := runT(t, "-dir", dir, "stat")
	if err != nil || !strings.Contains(out, "memo classes:    1") || !strings.Contains(out, "memo sigs:       2") {
		t.Fatalf("stat: err=%v out=%s", err, out)
	}

	out, err = runT(t, "-dir", dir, "ls")
	if err != nil || !strings.Contains(out, key+"  memo class") {
		t.Fatalf("ls: err=%v out=%s", err, out)
	}

	out, err = runT(t, "-dir", dir, "manifest")
	if err != nil || !strings.Contains(out, "memo") || !strings.Contains(out, "1 memo classes in") {
		t.Fatalf("manifest: err=%v out=%s", err, out)
	}

	// a memo-less twin with identical verdicts: diff flags the memo tier
	twin := t.TempDir()
	tw, err := store.Open(twin, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps {
		rec, _ := src.Get(fp)
		if err := tw.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	tw.Close()
	out, err = runT(t, "-dir", dir, "diff", twin)
	if err == nil || !strings.Contains(out, "memo tier differs") {
		t.Fatalf("diff: err=%v out=%s", err, out)
	}
}

func TestRTStoreVerifyFlagsDamage(t *testing.T) {
	dir, _ := seedStore(t)
	path := filepath.Join(dir, "store.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runT(t, "-dir", dir, "verify")
	if err == nil {
		t.Fatalf("verify of a torn log succeeded:\n%s", out)
	}
	// recovery truncated the tail: a second verify is clean
	if out, err := runT(t, "-dir", dir, "verify"); err != nil {
		t.Fatalf("verify after recovery: %v\n%s", err, out)
	}
}

func TestRTStoreUsageErrors(t *testing.T) {
	dir, _ := seedStore(t)
	for _, args := range [][]string{
		{"ls"},
		{"-dir", dir},
		{"-dir", dir, "frobnicate"},
		{"-dir", dir, "get"},
	} {
		if _, err := runT(t, args...); err == nil {
			t.Fatalf("args %v succeeded", args)
		}
	}
}

func TestRTStoreManifestDepth(t *testing.T) {
	dir, fps := seedStore(t)

	// leaf depth: each record shows under its own 3-nibble prefix
	out, err := runT(t, "-dir", dir, "-depth", "3", "manifest")
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps {
		if !strings.Contains(out, "prefix "+fp[:3]) {
			t.Fatalf("depth-3 manifest missing leaf %s:\n%s", fp[:3], out)
		}
	}
	if !strings.Contains(out, "depth-3 prefixes") {
		t.Fatalf("depth-3 manifest output:\n%s", out)
	}

	// diff at leaf depth names the exact divergent prefix
	twin := t.TempDir()
	st, err := store.Open(twin, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&store.Record{Fingerprint: fps[0], Feasible: true, Elements: 2, Slots: []int{0, 1}, Source: "exact"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	out, _ = runT(t, "-dir", dir, "-depth", "3", "diff", twin)
	if !strings.Contains(out, "prefix "+fps[1][:3]+" differs") {
		t.Fatalf("depth-3 diff output:\n%s", out)
	}

	if _, err := runT(t, "-dir", dir, "-depth", "9", "manifest"); err == nil {
		t.Fatal("depth 9 accepted")
	}
}
