// Command rtviz renders the communication graph (and optionally each
// constraint's task graph) of a specification in Graphviz DOT syntax.
//
// Usage:
//
//	rtviz [-tasks] <spec-file>
//	rtviz -example | dot -Tpng > example.png
package main

import (
	"flag"
	"fmt"
	"os"

	"rtm/internal/core"
	"rtm/internal/graph"
	"rtm/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtviz:", err)
		os.Exit(1)
	}
}

func run() error {
	tasks := flag.Bool("tasks", false, "also render every constraint's task graph")
	example := flag.Bool("example", false, "use the paper's example system")
	flag.Parse()

	var m *core.Model
	name := "example"
	switch {
	case *example:
		m = core.ExampleSystem(core.DefaultExampleParams())
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		sp, err := spec.Parse(string(data))
		if err != nil {
			return err
		}
		m, name = sp.Model, sp.Name
	default:
		return fmt.Errorf("usage: rtviz [flags] <spec-file> (or -example)")
	}

	labels := map[string]string{}
	for _, e := range m.Comm.Elements() {
		labels[e] = fmt.Sprintf("%s (%d)", e, m.Comm.WeightOf(e))
	}
	fmt.Print(m.Comm.G.DOT(graph.DOTOptions{Name: name, Rankdir: "LR", NodeLabels: labels}))

	if *tasks {
		for _, c := range m.Constraints {
			tl := map[string]string{}
			for _, n := range c.Task.Nodes() {
				tl[n] = fmt.Sprintf("%s [%s]", n, c.Task.ElementOf(n))
			}
			fmt.Print(c.Task.G.DOT(graph.DOTOptions{
				Name:       fmt.Sprintf("task_%s", c.Name),
				Rankdir:    "LR",
				NodeLabels: tl,
			}))
		}
	}
	return nil
}
