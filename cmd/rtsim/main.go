// Command rtsim schedules a specification and drives the resulting
// system through the closed-loop simulator, optionally exporting the
// artifacts as JSON.
//
// Usage:
//
//	rtsim [-seed n] [-adversarial] [-json dir] <spec-file>
//	rtsim -example
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtm/internal/core"
	"rtm/internal/exec"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
	"rtm/internal/sim"
	"rtm/internal/spec"
	"rtm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rtsim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "random seed for asynchronous arrivals")
	adversarial := flag.Bool("adversarial", true, "sweep worst-case asynchronous arrival phases")
	jsonDir := flag.String("json", "", "write model/schedule/report/record JSON into this directory")
	example := flag.Bool("example", false, "use the paper's example system")
	flag.Parse()

	var m *core.Model
	switch {
	case *example:
		m = core.ExampleSystem(core.DefaultExampleParams())
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		sp, err := spec.Parse(string(data))
		if err != nil {
			return err
		}
		m = sp.Model
	default:
		return fmt.Errorf("usage: rtsim [flags] <spec-file> (or -example)")
	}

	res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	if err != nil {
		return fmt.Errorf("scheduling: %w", err)
	}
	fmt.Printf("schedule: cycle %d, utilization %.3f\n", res.Schedule.Len(), res.Schedule.Utilization())

	r := sim.Run(m, res.Schedule, sim.Options{Seed: *seed, Adversarial: *adversarial})
	fmt.Printf("simulation: %s\n", r)
	fmt.Printf("worst slack: %d\n", r.WorstSlack)
	if len(r.PipelineErr) > 0 {
		fmt.Printf("pipeline violations: %v\n", r.PipelineErr)
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return err
		}
		rep := sched.Check(m, res.Schedule)
		rec := exec.Run(m, res.Schedule, 4*m.Hyperperiod())
		files := map[string]func() ([]byte, error){
			"model.json":    func() ([]byte, error) { return trace.EncodeModel(m) },
			"schedule.json": func() ([]byte, error) { return trace.EncodeSchedule(res.Schedule) },
			"report.json":   func() ([]byte, error) { return trace.EncodeReport(rep) },
			"record.json":   func() ([]byte, error) { return trace.EncodeRecord(rec) },
		}
		for name, gen := range files {
			data, err := gen()
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*jsonDir, name), data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("JSON artifacts written to %s\n", *jsonDir)
	}
	if !r.AllMet {
		return fmt.Errorf("deadline misses detected")
	}
	return nil
}
