package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtm/internal/service"
)

const exampleSpec = `system ctl
element fS weight 1
element fK weight 1
element fX weight 1
path fS -> fK

periodic trk period 12 deadline 12 { fS -> fK }
sporadic upd separation 9 deadline 8 { fX }
`

// renamedSpec is exampleSpec under a different element naming and
// constraint order — the same isomorphism class.
const renamedSpec = `system ctl2
element b weight 1
element a weight 1
element c weight 1
path a -> b

sporadic one separation 9 deadline 8 { c }
periodic two period 12 deadline 12 { a -> b }
`

func newTestServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Options{})
	srv := httptest.NewServer(newMux(svc, 10*time.Second))
	t.Cleanup(srv.Close)
	return srv, svc
}

func postSpec(t *testing.T, url, body string) (*http.Response, scheduleResponse) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out scheduleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestServedScheduleEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, cold := postSpec(t, srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !cold.Decided || !cold.Feasible || cold.CacheHit {
		t.Fatalf("cold response: %+v", cold)
	}
	if cold.Cycle == 0 || len(cold.Schedule) != cold.Cycle {
		t.Fatalf("schedule missing: %+v", cold)
	}
	for _, c := range cold.Constraints {
		if !c.OK {
			t.Fatalf("constraint %s not met in response", c.Name)
		}
	}

	_, warm := postSpec(t, srv.URL, exampleSpec)
	if !warm.CacheHit || warm.Source != "cache" {
		t.Fatalf("warm response missed the cache: %+v", warm)
	}

	// an isomorphic spec under different names must hit the same entry
	// and come back scheduled in its own names
	_, iso := postSpec(t, srv.URL, renamedSpec)
	if !iso.CacheHit {
		t.Fatalf("isomorphic spec missed the cache: %+v", iso)
	}
	if iso.Fingerprint != cold.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", iso.Fingerprint, cold.Fingerprint)
	}
	for _, slot := range iso.Schedule {
		if strings.HasPrefix(slot, "f") {
			t.Fatalf("translated schedule leaks foreign element %q", slot)
		}
	}
}

func TestServedBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, _ := postSpec(t, srv.URL, "element dangling syntax")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status = %d", resp.StatusCode)
	}

	get, err := http.Get(srv.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule: status = %d", get.StatusCode)
	}
}

func TestServedMetricsAndHealth(t *testing.T) {
	srv, svc := newTestServer(t)
	if _, body := postSpec(t, srv.URL, exampleSpec); !body.Feasible {
		t.Fatal("seed request infeasible")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"rtm_requests 1", "rtm_searches 1", "rtm_cache_len 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if svc.Metrics().Requests.Load() != 1 {
		t.Fatal("service counter drifted from endpoint output")
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status = %d", h.StatusCode)
	}
}
