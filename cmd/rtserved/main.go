// Command rtserved is the scheduling daemon: it serves the
// internal/served HTTP layer over the internal/service scheduling
// pipeline, turning the paper's offline synthesis into an online
// service with a canonical schedule cache, an optional durable
// schedule store, and optional fingerprint-sharded cluster serving.
//
// Usage:
//
//	rtserved [-addr :8437] [-cache 256] [-shards 8] [-memo 8]
//	         [-workers N] [-prune] [-analysis-tier] [-maxlen L]
//	         [-maxcand C] [-timeout 30s]
//	         [-search-concurrency N] [-queue-wait 500ms]
//	         [-store-dir DIR] [-queue-dir DIR] [-queue-workers N]
//	         [-max-body BYTES] [-resp-cache 1024] [-pprof PORT]
//	         [-node-id ID] [-peers ID=URL,ID=URL] [-sync-interval 10s]
//
// Endpoints:
//
//	POST /schedule            body: a specification (internal/spec
//	                          syntax); response: JSON verdict +
//	                          schedule — or, with the async queue
//	                          enabled, 202 + a job handle when the
//	                          request would otherwise shed (?async=1
//	                          skips the synchronous attempt entirely)
//	GET  /job/<id>            JSON job status; ?wait=10s long-polls
//	GET  /metrics             plain-text service counters
//	GET  /healthz             liveness probe
//	GET  /cluster/manifest    store manifest (cluster mode + store)
//	GET  /cluster/segment/<b> one sealed store segment (ditto)
//
// Identical workloads — up to element renaming and constraint
// reordering — share one cache entry, so repeated POSTs of isomorphic
// specifications cost a fingerprint and a lookup instead of an
// NP-hard search. Byte-identical repeat workloads go further: the
// service's verified-hit memo skips the schedule remap and re-check,
// and the daemon serves the memoized JSON response bytes directly
// (only the elapsedMicros field is freshly stamped).
//
// Cold workloads compete for a bounded number of exact-search
// admission slots (-search-concurrency, default GOMAXPROCS). A
// request that cannot get a slot within -queue-wait is answered 429
// Too Many Requests with a Retry-After header, so an overload burst
// sheds cold traffic instead of starving cache hits.
//
// With -queue-dir, sheds become eventual answers instead of losses:
// the request is journaled as a durable async job (202 Accepted + a
// job id keyed by canonical fingerprint, so a thundering herd of
// isomorphic specs costs one search), -queue-workers background
// workers drain jobs through the same pipeline, decided outcomes land
// in the store, and clients poll or long-poll GET /job/<id> until the
// verdict is in — then re-POST the spec to collect the schedule from
// the warmed store. Graceful shutdown checkpoints in-flight jobs back
// to pending (they resume on the next start with the same -queue-dir).
//
// With -store-dir, decided outcomes additionally persist across
// restarts: a warm-started daemon serves previously solved classes
// straight from disk (source "store") without re-running any search,
// and flushes the store on graceful shutdown.
//
// With -node-id and -peers, the daemon joins a fingerprint-sharded
// cluster: requests hash to an owning node by canonical fingerprint
// (consistent hashing), non-owners proxy to the owner (one hop max)
// and fall back to a local solve when the owner is down, and — when a
// store is attached — an anti-entropy loop pulls missing sealed
// segments from peers every -sync-interval, so any node's decided
// outcome warms the whole fleet. Replication is trustless: every
// pulled record is CRC-checked, re-validated, and re-verified against
// the requesting model before it is ever served, so a corrupt or
// malicious segment costs a miss, never a wrong schedule.
//
// -pprof PORT exposes net/http/pprof on 127.0.0.1:PORT (never a
// public interface) with mutex and block profiling enabled, for
// inspecting lock contention in the sharded serving path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rtm/internal/cluster"
	"rtm/internal/exact"
	"rtm/internal/queue"
	"rtm/internal/served"
	"rtm/internal/service"
	"rtm/internal/store"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheSize := flag.Int("cache", 256, "schedule cache capacity (isomorphism classes)")
	cacheShards := flag.Int("shards", 8, "schedule cache shard count (rounded up to a power of two)")
	memo := flag.Int("memo", 8, "verified-hit memo slots per cache entry (-1 disables)")
	workers := flag.Int("workers", -1, "exact-search workers per request (-1 = all CPUs)")
	prune := flag.Bool("prune", true, "enable the exact-search pruners (symmetry, memo, bounds); -prune=false restores the bit-for-bit seed search")
	analysisTier := flag.Bool("analysis-tier", true, "enable the analytic admission tier (O(model) YES/NO before heuristic/exact); -analysis-tier=false measures what it saves")
	maxLen := flag.Int("maxlen", 0, "exact-search schedule length bound (0 = hyperperiod, capped)")
	maxCand := flag.Int("maxcand", 0, "exact-search candidate budget per request (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request scheduling timeout")
	searchConc := flag.Int("search-concurrency", 0, "concurrent exact searches (0 = GOMAXPROCS, -1 = unlimited)")
	queueWait := flag.Duration("queue-wait", 0, "max wait for a search slot before 429 (0 = 500ms default, -1ns = fail fast)")
	storeDir := flag.String("store-dir", "", "durable schedule store directory (empty = in-memory only)")
	queueDir := flag.String("queue-dir", "", "durable async solve queue directory (empty = sheds stay 429)")
	queueWorkers := flag.Int("queue-workers", 2, "async solve queue worker pool size")
	maxBody := flag.Int64("max-body", 1<<20, "maximum /schedule request body in bytes (413 beyond)")
	respCacheSize := flag.Int("resp-cache", 1024, "serialized response body cache capacity (0 disables)")
	pprofPort := flag.Int("pprof", 0, "serve net/http/pprof on 127.0.0.1:PORT (0 disables)")
	nodeID := flag.String("node-id", "", "this node's cluster member ID (required with -peers)")
	peersFlag := flag.String("peers", "", "cluster peers as id=http://host:port, comma separated")
	syncInterval := flag.Duration("sync-interval", 10*time.Second, "anti-entropy store sync period (0 disables; needs -store-dir and -peers)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rtserved: schedule store %s warm with %d records (%d bytes, %d corrupt skipped)",
			*storeDir, st.Len(), st.Bytes(), st.CorruptSkipped())
	}

	var q *queue.Queue
	if *queueDir != "" {
		var err error
		q, err = queue.Open(*queueDir, queue.Options{Workers: *queueWorkers})
		if err != nil {
			log.Fatal(err)
		}
		qs := q.Stats()
		log.Printf("rtserved: solve queue %s open: %d pending (%d resumed mid-solve), %d corrupt-tail truncations",
			*queueDir, qs.Depth, qs.Resumed, qs.CorruptTail)
	}

	// exact.Options rejects negative Workers (no silent clamping), so
	// the "-1 = all CPUs" convenience is resolved here
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	svc := service.New(service.Options{
		CacheSize:   *cacheSize,
		CacheShards: *cacheShards,
		ResultMemo:  *memo,
		Exact: exact.Options{
			MaxLen: *maxLen, MaxCandidates: *maxCand, Workers: *workers,
			DisableSymmetry: !*prune, DisableMemo: !*prune, DisableBounds: !*prune,
		},
		SearchConcurrency: *searchConc,
		SearchQueueWait:   *queueWait,
		DisableAnalysis:   !*analysisTier,
		Store:             st,
		Queue:             q,
	})

	cl, err := clusterConfig(*nodeID, *peersFlag, st)
	if err != nil {
		log.Fatal(err)
	}
	d := served.New(served.Config{
		Service:   svc,
		Timeout:   *timeout,
		MaxBody:   *maxBody,
		RespCache: *respCacheSize,
		Cluster:   cl,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: d.Mux(),
		// Hardened against slow or stuck clients: a peer that trickles
		// headers, never finishes its body, or never reads its
		// response cannot pin a connection. The write timeout leaves
		// the scheduling timeout room plus slack for the response.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *pprofPort > 0 {
		served.StartPprof(*pprofPort)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cl != nil && st != nil && *syncInterval > 0 && len(cl.Peers) > 0 {
		peers := make([]*cluster.Client, 0, len(cl.Peers))
		for _, p := range cl.Peers {
			peers = append(peers, p)
		}
		m := svc.Metrics()
		sy := &cluster.Syncer{
			Store: st, Peers: peers, Interval: *syncInterval,
			OnPull: func(records int64) {
				m.SyncPulls.Add(1)
				m.SyncRecords.Add(records)
			},
			OnRound: func(rs cluster.RoundStats) {
				m.SyncRounds.Add(1)
				m.SyncBytesRx.Add(rs.BytesRx)
				m.SyncPeerFailures.Add(int64(rs.Failures))
				m.SyncLastUnix.Store(time.Now().Unix())
			},
			Logf: log.Printf,
		}
		go sy.Run(ctx)
		log.Printf("rtserved: anti-entropy sync with %d peers every %s", len(peers), *syncInterval)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	if cl != nil {
		log.Printf("rtserved: cluster node %q in a %d-node ring", cl.NodeID, len(cl.Ring.Nodes()))
	}
	log.Printf("rtserved listening on %s (cache=%d shards=%d workers=%d store=%q)",
		*addr, *cacheSize, svc.CacheShards(), *workers, *storeDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	if q != nil {
		// graceful shutdown: stop the workers — in-flight jobs
		// checkpoint back to pending (no terminal record) and resume on
		// the next start with the same -queue-dir
		qs := q.Stats()
		if err := q.Close(); err != nil {
			log.Printf("rtserved: closing solve queue: %v", err)
		} else {
			log.Printf("rtserved: solve queue checkpointed (%d pending, %d running reverted, %d completed this life)",
				qs.Depth, qs.Running, qs.Completed)
		}
	}
	if st != nil {
		// graceful shutdown: flush the store so every decided outcome
		// survives into the next start
		if err := st.Close(); err != nil {
			log.Printf("rtserved: closing schedule store: %v", err)
		} else {
			log.Printf("rtserved: schedule store flushed (%d records)", st.Len())
		}
	}
}

// clusterConfig parses -node-id/-peers into a served.Cluster. The
// ring spans this node plus every peer; peer IDs must be distinct
// from each other and from the local ID.
func clusterConfig(nodeID, peersFlag string, st *store.Store) (*served.Cluster, error) {
	if peersFlag == "" {
		if nodeID != "" {
			// a one-node "cluster" is legal — it serves everything
			// locally and gives /cluster endpoints to future peers
			ring, err := cluster.NewRing([]string{nodeID}, 0)
			if err != nil {
				return nil, err
			}
			return &served.Cluster{NodeID: nodeID, Ring: ring, Peers: map[string]*cluster.Client{}, Store: st}, nil
		}
		return nil, nil
	}
	if nodeID == "" {
		return nil, fmt.Errorf("rtserved: -peers requires -node-id")
	}
	peers := map[string]*cluster.Client{}
	nodes := []string{nodeID}
	for _, part := range strings.Split(peersFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("rtserved: bad -peers entry %q (want id=http://host:port)", part)
		}
		if id == nodeID {
			return nil, fmt.Errorf("rtserved: peer %q shadows -node-id", id)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("rtserved: duplicate peer ID %q", id)
		}
		peers[id] = cluster.NewClient(id, url, 10*time.Second)
		nodes = append(nodes, id)
	}
	ring, err := cluster.NewRing(nodes, 0)
	if err != nil {
		return nil, err
	}
	return &served.Cluster{NodeID: nodeID, Ring: ring, Peers: peers, Store: st}, nil
}
