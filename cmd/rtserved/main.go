// Command rtserved is the scheduling daemon: it serves the
// internal/service scheduling pipeline over HTTP, turning the paper's
// offline synthesis into an online service with a canonical schedule
// cache and an optional durable schedule store.
//
// Usage:
//
//	rtserved [-addr :8437] [-cache 256] [-workers N] [-maxlen L] [-maxcand C]
//	         [-timeout 30s] [-store-dir DIR] [-max-body BYTES]
//
// Endpoints:
//
//	POST /schedule   body: a specification (internal/spec syntax);
//	                 response: JSON verdict + schedule
//	GET  /metrics    plain-text service counters (expvar style)
//	GET  /healthz    liveness probe
//
// Identical workloads — up to element renaming and constraint
// reordering — share one cache entry, so repeated POSTs of isomorphic
// specifications cost a fingerprint and a lookup instead of an
// NP-hard search. With -store-dir, decided outcomes additionally
// persist across restarts: a warm-started daemon serves previously
// solved classes straight from disk (source "store") without
// re-running any search, and flushes the store on graceful shutdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtm/internal/exact"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheSize := flag.Int("cache", 256, "schedule cache capacity (isomorphism classes)")
	workers := flag.Int("workers", -1, "exact-search workers per request (-1 = all CPUs)")
	maxLen := flag.Int("maxlen", 0, "exact-search schedule length bound (0 = hyperperiod, capped)")
	maxCand := flag.Int("maxcand", 0, "exact-search candidate budget per request (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request scheduling timeout")
	storeDir := flag.String("store-dir", "", "durable schedule store directory (empty = in-memory only)")
	maxBody := flag.Int64("max-body", 1<<20, "maximum /schedule request body in bytes (413 beyond)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rtserved: schedule store %s warm with %d records (%d bytes, %d corrupt skipped)",
			*storeDir, st.Len(), st.Bytes(), st.CorruptSkipped())
	}

	svc := service.New(service.Options{
		CacheSize: *cacheSize,
		Exact:     exact.Options{MaxLen: *maxLen, MaxCandidates: *maxCand, Workers: *workers},
		Store:     st,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newMux(svc, *timeout, *maxBody),
		// Hardened against slow or stuck clients: a peer that trickles
		// headers, never finishes its body, or never reads its
		// response cannot pin a connection. The write timeout leaves
		// the scheduling timeout room plus slack for the response.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("rtserved listening on %s (cache=%d workers=%d store=%q)", *addr, *cacheSize, *workers, *storeDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	if st != nil {
		// graceful shutdown: flush the store so every decided outcome
		// survives into the next start
		if err := st.Close(); err != nil {
			log.Printf("rtserved: closing schedule store: %v", err)
		} else {
			log.Printf("rtserved: schedule store flushed (%d records)", st.Len())
		}
	}
}

// newMux wires the service endpoints; factored out so tests can drive
// the handler without a listener.
func newMux(svc *service.Service, timeout time.Duration, maxBody int64) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		handleSchedule(svc, timeout, maxBody, w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, svc.MetricsText())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// scheduleResponse is the JSON verdict for one request.
type scheduleResponse struct {
	System      string           `json:"system,omitempty"`
	Fingerprint string           `json:"fingerprint"`
	Decided     bool             `json:"decided"`
	Feasible    bool             `json:"feasible"`
	Source      string           `json:"source"`
	CacheHit    bool             `json:"cacheHit"`
	Shared      bool             `json:"shared,omitempty"`
	Cycle       int              `json:"cycle,omitempty"`
	Schedule    []string         `json:"schedule,omitempty"`
	Constraints []constraintJSON `json:"constraints,omitempty"`
	ElapsedUS   int64            `json:"elapsedMicros"`
}

type constraintJSON struct {
	Name     string `json:"name"`
	Latency  int    `json:"latency"`
	Deadline int    `json:"deadline"`
	OK       bool   `json:"ok"`
}

func handleSchedule(svc *service.Service, timeout time.Duration, maxBody int64, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a specification to /schedule", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "specification exceeds the request body limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sp, err := spec.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := svc.Schedule(ctx, sp.Model)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		http.Error(w, "scheduling timed out", http.StatusGatewayTimeout)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := scheduleResponse{
		System:      sp.Name,
		Fingerprint: res.Fingerprint,
		Decided:     res.Decided,
		Feasible:    res.Feasible,
		Source:      res.Source,
		CacheHit:    res.CacheHit,
		Shared:      res.Shared,
		ElapsedUS:   res.Elapsed.Microseconds(),
	}
	if res.Feasible {
		resp.Cycle = res.Schedule.Len()
		resp.Schedule = append([]string{}, res.Schedule.Slots...)
		for _, c := range res.Report.Constraints {
			resp.Constraints = append(resp.Constraints, constraintJSON{
				Name: c.Name, Latency: c.Latency, Deadline: c.Deadline, OK: c.OK,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
