// Command rtserved is the scheduling daemon: it serves the
// internal/service scheduling pipeline over HTTP, turning the paper's
// offline synthesis into an online service with a canonical schedule
// cache and an optional durable schedule store.
//
// Usage:
//
//	rtserved [-addr :8437] [-cache 256] [-shards 8] [-memo 8]
//	         [-workers N] [-prune] [-analysis-tier] [-maxlen L]
//	         [-maxcand C] [-timeout 30s]
//	         [-search-concurrency N] [-queue-wait 500ms]
//	         [-store-dir DIR] [-queue-dir DIR] [-queue-workers N]
//	         [-max-body BYTES] [-resp-cache 1024] [-pprof PORT]
//
// Endpoints:
//
//	POST /schedule   body: a specification (internal/spec syntax);
//	                 response: JSON verdict + schedule — or, with the
//	                 async queue enabled, 202 + a job handle when the
//	                 request would otherwise shed (?async=1 skips the
//	                 synchronous attempt entirely)
//	GET  /job/<id>   JSON job status; ?wait=10s long-polls until the
//	                 job is terminal or the wait expires
//	GET  /metrics    plain-text service counters (expvar style)
//	GET  /healthz    liveness probe
//
// Identical workloads — up to element renaming and constraint
// reordering — share one cache entry, so repeated POSTs of isomorphic
// specifications cost a fingerprint and a lookup instead of an
// NP-hard search. Byte-identical repeat workloads go further: the
// service's verified-hit memo skips the schedule remap and re-check,
// and the daemon serves the memoized JSON response bytes directly
// (only the elapsedMicros field is freshly stamped).
//
// Cold workloads compete for a bounded number of exact-search
// admission slots (-search-concurrency, default GOMAXPROCS). A
// request that cannot get a slot within -queue-wait is answered 429
// Too Many Requests with a Retry-After header, so an overload burst
// sheds cold traffic instead of starving cache hits.
//
// With -queue-dir, sheds become eventual answers instead of losses:
// the request is journaled as a durable async job (202 Accepted + a
// job id keyed by canonical fingerprint, so a thundering herd of
// isomorphic specs costs one search), -queue-workers background
// workers drain jobs through the same pipeline, decided outcomes land
// in the store, and clients poll or long-poll GET /job/<id> until the
// verdict is in — then re-POST the spec to collect the schedule from
// the warmed store. Graceful shutdown checkpoints in-flight jobs back
// to pending (they resume on the next start with the same -queue-dir).
//
// With -store-dir, decided outcomes additionally persist across
// restarts: a warm-started daemon serves previously solved classes
// straight from disk (source "store") without re-running any search,
// and flushes the store on graceful shutdown.
//
// -pprof PORT exposes net/http/pprof on 127.0.0.1:PORT (never a
// public interface) with mutex and block profiling enabled, for
// inspecting lock contention in the sharded serving path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"rtm/internal/exact"
	"rtm/internal/queue"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	cacheSize := flag.Int("cache", 256, "schedule cache capacity (isomorphism classes)")
	cacheShards := flag.Int("shards", 8, "schedule cache shard count (rounded up to a power of two)")
	memo := flag.Int("memo", 8, "verified-hit memo slots per cache entry (-1 disables)")
	workers := flag.Int("workers", -1, "exact-search workers per request (-1 = all CPUs)")
	prune := flag.Bool("prune", true, "enable the exact-search pruners (symmetry, memo, bounds); -prune=false restores the bit-for-bit seed search")
	analysisTier := flag.Bool("analysis-tier", true, "enable the analytic admission tier (O(model) YES/NO before heuristic/exact); -analysis-tier=false measures what it saves")
	maxLen := flag.Int("maxlen", 0, "exact-search schedule length bound (0 = hyperperiod, capped)")
	maxCand := flag.Int("maxcand", 0, "exact-search candidate budget per request (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request scheduling timeout")
	searchConc := flag.Int("search-concurrency", 0, "concurrent exact searches (0 = GOMAXPROCS, -1 = unlimited)")
	queueWait := flag.Duration("queue-wait", 0, "max wait for a search slot before 429 (0 = 500ms default, -1ns = fail fast)")
	storeDir := flag.String("store-dir", "", "durable schedule store directory (empty = in-memory only)")
	queueDir := flag.String("queue-dir", "", "durable async solve queue directory (empty = sheds stay 429)")
	queueWorkers := flag.Int("queue-workers", 2, "async solve queue worker pool size")
	maxBody := flag.Int64("max-body", 1<<20, "maximum /schedule request body in bytes (413 beyond)")
	respCacheSize := flag.Int("resp-cache", 1024, "serialized response body cache capacity (0 disables)")
	pprofPort := flag.Int("pprof", 0, "serve net/http/pprof on 127.0.0.1:PORT (0 disables)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rtserved: schedule store %s warm with %d records (%d bytes, %d corrupt skipped)",
			*storeDir, st.Len(), st.Bytes(), st.CorruptSkipped())
	}

	var q *queue.Queue
	if *queueDir != "" {
		var err error
		q, err = queue.Open(*queueDir, queue.Options{Workers: *queueWorkers})
		if err != nil {
			log.Fatal(err)
		}
		qs := q.Stats()
		log.Printf("rtserved: solve queue %s open: %d pending (%d resumed mid-solve), %d corrupt-tail truncations",
			*queueDir, qs.Depth, qs.Resumed, qs.CorruptTail)
	}

	// exact.Options rejects negative Workers (no silent clamping), so
	// the "-1 = all CPUs" convenience is resolved here
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	svc := service.New(service.Options{
		CacheSize:   *cacheSize,
		CacheShards: *cacheShards,
		ResultMemo:  *memo,
		Exact: exact.Options{
			MaxLen: *maxLen, MaxCandidates: *maxCand, Workers: *workers,
			DisableSymmetry: !*prune, DisableMemo: !*prune, DisableBounds: !*prune,
		},
		SearchConcurrency: *searchConc,
		SearchQueueWait:   *queueWait,
		DisableAnalysis:   !*analysisTier,
		Store:             st,
		Queue:             q,
	})
	d := newDaemon(svc, *timeout, *maxBody, *respCacheSize)
	srv := &http.Server{
		Addr:    *addr,
		Handler: d.mux(),
		// Hardened against slow or stuck clients: a peer that trickles
		// headers, never finishes its body, or never reads its
		// response cannot pin a connection. The write timeout leaves
		// the scheduling timeout room plus slack for the response.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *pprofPort > 0 {
		startPprof(*pprofPort)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("rtserved listening on %s (cache=%d shards=%d workers=%d store=%q)",
		*addr, *cacheSize, svc.CacheShards(), *workers, *storeDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	if q != nil {
		// graceful shutdown: stop the workers — in-flight jobs
		// checkpoint back to pending (no terminal record) and resume on
		// the next start with the same -queue-dir
		qs := q.Stats()
		if err := q.Close(); err != nil {
			log.Printf("rtserved: closing solve queue: %v", err)
		} else {
			log.Printf("rtserved: solve queue checkpointed (%d pending, %d running reverted, %d completed this life)",
				qs.Depth, qs.Running, qs.Completed)
		}
	}
	if st != nil {
		// graceful shutdown: flush the store so every decided outcome
		// survives into the next start
		if err := st.Close(); err != nil {
			log.Printf("rtserved: closing schedule store: %v", err)
		} else {
			log.Printf("rtserved: schedule store flushed (%d records)", st.Len())
		}
	}
}

// startPprof serves net/http/pprof on a loopback-only port with mutex
// and block profiling enabled — diagnostic surface for the sharded
// hot path, never exposed on the service address.
func startPprof(port int) {
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(int(time.Millisecond)) // sample blocking ≳1ms on average
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	go func() {
		log.Printf("rtserved: pprof on http://%s/debug/pprof/ (loopback only)", addr)
		log.Printf("rtserved: pprof server: %v", http.ListenAndServe(addr, pprofMux()))
	}()
}

// pprofMux registers the net/http/pprof handlers on a dedicated mux
// (the default mux is never used, so the service address cannot leak
// profiling endpoints).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// daemon bundles the serving state behind the HTTP handlers.
type daemon struct {
	svc     *service.Service
	timeout time.Duration
	maxBody int64
	resp    *respCache
}

func newDaemon(svc *service.Service, timeout time.Duration, maxBody int64, respCacheSize int) *daemon {
	return &daemon{svc: svc, timeout: timeout, maxBody: maxBody, resp: newRespCache(respCacheSize)}
}

// newMux wires the service endpoints; factored out so tests can drive
// the handler without a listener.
func newMux(svc *service.Service, timeout time.Duration, maxBody int64) *http.ServeMux {
	return newDaemon(svc, timeout, maxBody, 1024).mux()
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", d.handleSchedule)
	mux.HandleFunc("/job/", d.handleJob)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, d.svc.MetricsText())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// scheduleResponse is the JSON verdict for one request. ElapsedUS
// must stay the final field: the response body cache stores the
// serialized bytes up to the elapsedMicros value and stamps each
// request's own elapsed time into the tail.
type scheduleResponse struct {
	System      string           `json:"system,omitempty"`
	Fingerprint string           `json:"fingerprint"`
	OrderDigest string           `json:"orderDigest,omitempty"`
	Decided     bool             `json:"decided"`
	Feasible    bool             `json:"feasible"`
	Source      string           `json:"source"`
	CacheHit    bool             `json:"cacheHit"`
	Shared      bool             `json:"shared,omitempty"`
	Cycle       int              `json:"cycle,omitempty"`
	Schedule    []string         `json:"schedule,omitempty"`
	Constraints []constraintJSON `json:"constraints,omitempty"`
	ElapsedUS   int64            `json:"elapsedMicros"`
}

type constraintJSON struct {
	Name     string `json:"name"`
	Latency  int    `json:"latency"`
	Deadline int    `json:"deadline"`
	OK       bool   `json:"ok"`
}

// jobResponse is the JSON body for 202 Accepted answers and for
// GET /job/<id>. A done job carries only the verdict — the schedule
// itself is collected by re-POSTing the spec, which the worker's
// write-through has made a store hit.
type jobResponse struct {
	Job         string `json:"job"` // canonical fingerprint = job id
	State       string `json:"state"`
	Decided     bool   `json:"decided,omitempty"`
	Feasible    bool   `json:"feasible,omitempty"`
	Source      string `json:"source,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmitUnix  int64  `json:"submitUnix,omitempty"`
	Resubmitted bool   `json:"resubmitted,omitempty"`
	Poll        string `json:"poll,omitempty"` // where to poll for the verdict
}

// writeJob renders a queue job status.
func writeJob(w http.ResponseWriter, js *queue.Status, code int) {
	resp := jobResponse{
		Job:         js.ID,
		State:       js.State.String(),
		Decided:     js.Verdict.Decided,
		Feasible:    js.Verdict.Feasible,
		Source:      js.Verdict.Source,
		Error:       js.Err,
		SubmitUnix:  js.SubmitUnix,
		Resubmitted: js.Resubmitted,
	}
	if !js.State.Terminal() {
		resp.Poll = "/job/" + js.ID
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// maxJobWait caps GET /job/<id>?wait= long-polls so a client cannot
// pin a connection past the server's write timeout.
const maxJobWait = 30 * time.Second

// handleJob serves job status: GET /job/<id> returns the current
// state; ?wait=10s long-polls until the job is terminal or the wait
// expires (the poll-vs-push middle ground that costs one goroutine,
// not one connection per retry loop).
func (d *daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /job/<id>", http.StatusMethodNotAllowed)
		return
	}
	q := d.svc.Queue()
	if q == nil {
		http.Error(w, "async solve queue not enabled (-queue-dir)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/job/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "GET /job/<id>", http.StatusBadRequest)
		return
	}
	js, ok := q.Get(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !js.State.Terminal() {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			http.Error(w, "bad wait duration", http.StatusBadRequest)
			return
		}
		if wait > maxJobWait {
			wait = maxJobWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		// Wait returns the final status, or the current one with
		// ctx.Err() when the poll budget expires — either way the
		// client gets a fresh snapshot
		js, _ = q.Wait(ctx, id)
		if js == nil {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
	}
	writeJob(w, js, http.StatusOK)
}

// scheduleStatus maps a service error to its HTTP status and whether
// the client should be told to retry (429 carries Retry-After).
func scheduleStatus(err error) (code int, retryable bool) {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, false
	default:
		return http.StatusBadRequest, false
	}
}

func (d *daemon) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a specification to /schedule", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "specification exceeds the request body limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sp, err := spec.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if d.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.timeout)
		defer cancel()
	}

	// explicitly-async requests skip the synchronous attempt: the spec
	// is journaled and answered 202 immediately (dedup by fingerprint
	// makes re-posting an already-known class free)
	if r.URL.Query().Get("async") == "1" && d.svc.Queue() != nil {
		js, err := d.svc.Enqueue(sp.Model, queue.SubmitOptions{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJob(w, js, http.StatusAccepted)
		return
	}

	res, job, err := d.svc.ScheduleOrEnqueue(ctx, sp.Model)
	if err != nil {
		code, retryable := scheduleStatus(err)
		if retryable {
			w.Header().Set("Retry-After", "1")
		}
		msg := err.Error()
		switch code {
		case http.StatusTooManyRequests:
			msg = "scheduler overloaded; retry later"
		case http.StatusGatewayTimeout:
			msg = "scheduling timed out"
		}
		http.Error(w, msg, code)
		return
	}
	if job != nil {
		// the exact stage would have shed this request: it is now a
		// durable async job — 202 + the handle to poll
		writeJob(w, job, http.StatusAccepted)
		return
	}

	// verified-hit fast path, response layer: a repeat of an already
	// served surface reuses the serialized body, stamping only the
	// fresh elapsed time
	key := respKey(sp.Name, res.Fingerprint, res.OrderDigest)
	if res.CacheHit {
		if pre := d.resp.get(key); pre != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(appendElapsed(pre, res.Elapsed.Microseconds()))
			return
		}
	}

	resp := scheduleResponse{
		System:      sp.Name,
		Fingerprint: res.Fingerprint,
		OrderDigest: res.OrderDigest,
		Decided:     res.Decided,
		Feasible:    res.Feasible,
		Source:      res.Source,
		CacheHit:    res.CacheHit,
		Shared:      res.Shared,
		// ElapsedUS stays zero here: the zero is the serialization
		// placeholder every response stamps over
	}
	if res.Feasible {
		resp.Cycle = res.Schedule.Len()
		resp.Schedule = append([]string{}, res.Schedule.Slots...)
		for _, c := range res.Report.Constraints {
			resp.Constraints = append(resp.Constraints, constraintJSON{
				Name: c.Name, Latency: c.Latency, Deadline: c.Deadline, OK: c.OK,
			})
		}
	}
	b, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	prefix := b[: len(b)-2 : len(b)-2] // strip the `0}` placeholder tail
	if res.CacheHit {
		// only LRU-hit bodies are cached: their content is stable for
		// the (fingerprint, digest, system) identity by the verified-hit
		// memo's guarantee
		d.resp.put(key, prefix)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(appendElapsed(prefix, res.Elapsed.Microseconds()))
}
