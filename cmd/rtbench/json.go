package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/service"
	"rtm/internal/store"
)

// This file implements -json: machine-readable benchmark output so
// the perf trajectory is trackable across PRs. Each suite is measured
// with testing.Benchmark and written to BENCH_<suite>.json; CI (or a
// human) diffs ns/op and allocs/op between commits instead of eyeballing
// log output.

// benchResult is one measured benchmark.
type benchResult struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchSuite is the BENCH_<suite>.json document.
type benchSuite struct {
	Suite      string        `json:"suite"`
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Results    []benchResult `json:"results"`
}

// hardnessInstance scales the E2 density-1 family: deadlines
// {2w,3w,6w} have Σw/d = 1 yet pack no schedule, so refutation costs
// a full exhaustion — the cold-path price the cache and store
// amortize.
func hardnessInstance(w int, ds []int) *core.Model {
	m := core.NewModel()
	for i, d := range ds {
		name := fmt.Sprintf("u%d", i)
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d * w, Deadline: d * w, Kind: core.Asynchronous,
		})
	}
	return m
}

// writeBenchJSON measures every suite and writes one JSON file per
// suite into dir. workers feeds the exact-search fan-out.
func writeBenchJSON(dir string, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suites := []struct {
		name string
		runs func() ([]benchResult, error)
	}{
		{"exact", func() ([]benchResult, error) { return benchExact(workers) }},
		{"service", benchService},
		{"store", benchStore},
	}
	for _, s := range suites {
		results, err := s.runs()
		if err != nil {
			return fmt.Errorf("suite %s: %w", s.name, err)
		}
		doc := benchSuite{
			Suite:      s.name,
			Workers:    workers,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Results:    results,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+s.name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d results)\n", path, len(results))
	}
	return nil
}

// measure runs fn under testing.Benchmark and converts the result.
// testing.Benchmark reports a zero result (0 iterations) when fn
// calls b.Fatal; surface that as an error instead of writing zeros.
func measure(name string, fn func(b *testing.B)) (benchResult, error) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		return benchResult{}, fmt.Errorf("benchmark %s failed", name)
	}
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func collect(parts ...func() (benchResult, error)) ([]benchResult, error) {
	var out []benchResult
	for _, p := range parts {
		r, err := p()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// benchExact prices the raw NP-hard refutation (the cost every tier
// above it exists to avoid).
func benchExact(workers int) ([]benchResult, error) {
	if workers < 0 {
		// the -workers "-1 = all CPUs" convenience; exact.Options
		// rejects negatives
		workers = runtime.GOMAXPROCS(0)
	}
	hard := hardnessInstance(3, []int{2, 3, 6})
	maxLen := hard.Hyperperiod()
	if maxLen > 64 {
		maxLen = 64
	}
	return collect(func() (benchResult, error) {
		return measure("exact_refute_density1_w3", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := exact.FindSchedule(hard, exact.Options{MaxLen: maxLen, Workers: workers})
				if !errors.Is(err, exact.ErrNotFound) {
					b.Fatalf("unexpected verdict: %v", err)
				}
			}
		})
	})
}

// benchService prices the serving tiers: cold compute vs L1 (LRU) hit
// vs L2 (durable store) hit — the hit order of the scheduling service.
func benchService() ([]benchResult, error) {
	ctx := context.Background()
	hard := hardnessInstance(3, []int{2, 3, 6})

	cold := func() (benchResult, error) {
		return measure("service_cold_exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc := service.New(service.Options{DisableHeuristic: true})
				res, err := svc.Schedule(ctx, hard)
				if err != nil || res.Feasible {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
	hot := func() (benchResult, error) {
		svc := service.New(service.Options{DisableHeuristic: true})
		if _, err := svc.Schedule(ctx, hard); err != nil {
			return benchResult{}, err
		}
		return measure("service_hot_lru", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := svc.Schedule(ctx, hard)
				if err != nil || !res.CacheHit {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
	warm := func() (benchResult, error) {
		// warm restart: every iteration sees a fresh LRU over a warm
		// store, so the hit is fingerprint + store load + re-verify
		dir, err := os.MkdirTemp("", "rtbench-store-*")
		if err != nil {
			return benchResult{}, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return benchResult{}, err
		}
		defer st.Close()
		if _, err := service.New(service.Options{DisableHeuristic: true, Store: st}).Schedule(ctx, hard); err != nil {
			return benchResult{}, err
		}
		return measure("service_warm_store", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc := service.New(service.Options{DisableHeuristic: true, Store: st})
				res, err := svc.Schedule(ctx, hard)
				if err != nil || res.Source != "store" {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
	return collect(cold, hot, warm)
}

// benchStore prices the store primitives themselves.
func benchStore() ([]benchResult, error) {
	rec := func(i int) *store.Record {
		return &store.Record{
			Fingerprint: fmt.Sprintf("%064x", i+1), Feasible: true,
			Elements: 4, Slots: []int{0, 1, -1, 2, 3, -1}, Source: "exact",
		}
	}
	put := func() (benchResult, error) {
		dir, err := os.MkdirTemp("", "rtbench-store-*")
		if err != nil {
			return benchResult{}, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return benchResult{}, err
		}
		defer st.Close()
		return measure("store_put_synced", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := st.Put(rec(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	reopen := func() (benchResult, error) {
		dir, err := os.MkdirTemp("", "rtbench-store-*")
		if err != nil {
			return benchResult{}, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			return benchResult{}, err
		}
		const n = 1000
		for i := 0; i < n; i++ {
			if err := st.Put(rec(i)); err != nil {
				st.Close()
				return benchResult{}, err
			}
		}
		if err := st.Close(); err != nil {
			return benchResult{}, err
		}
		return measure("store_warmstart_1000rec", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s2, err := store.Open(dir, store.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if s2.Len() != n {
					b.Fatalf("warm start recovered %d records", s2.Len())
				}
				s2.Close()
			}
		})
	}
	return collect(put, reopen)
}
