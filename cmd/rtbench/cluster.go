package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"rtm/internal/cluster"
	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/served"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

// This file implements -cluster: the fingerprint-sharded fleet suite.
// A 3-node in-process cluster (full daemons over httptest listeners,
// stores on temp disk) runs the acceptance scenario end to end:
//
//	phase 1  seed 16 hard classes on their shard owners — exactly one
//	         exact search per class fleet-wide;
//	phase 2  one anti-entropy round per node — manifests converge;
//	phase 3  isomorphic surfaces of every class served by NON-owner
//	         nodes pinned local: all from replicated stores, zero new
//	         searches (acceptance a: warm one node, warm the fleet);
//	phase 4  the busiest owner is killed mid-burst — survivors fall
//	         back to local serving with zero failed requests
//	         (acceptance b: graceful degradation).
//
// Any acceptance violation is a hard suite failure, not a statistic.

// clusterSuiteDoc is the BENCH_cluster.json document.
type clusterSuiteDoc struct {
	Suite      string `json:"suite"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Nodes   int `json:"nodes"`
	Classes int `json:"classes"` // distinct fingerprint classes seeded

	SeedSearches int64 `json:"seed_searches"` // must equal classes
	SeedP50US    int64 `json:"seed_p50_us"`   // cold owner-side decide

	SyncPulls          int64 `json:"sync_pulls"`   // segments pulled fleet-wide
	SyncRecords        int64 `json:"sync_records"` // records imported fleet-wide
	SyncMS             int64 `json:"sync_ms"`      // wall time of the full round
	ManifestsConverged bool  `json:"manifests_converged"`

	WarmServes      int   `json:"warm_serves"`       // non-owner serves of replicated classes
	WarmStoreServes int   `json:"warm_store_serves"` // of those, answered from the store tier
	WarmNewSearches int64 `json:"warm_new_searches"` // must be 0
	WarmP50US       int64 `json:"warm_p50_us"`       // replicated-serve latency

	KilledNode    string `json:"killed_node"`
	KillRequests  int    `json:"kill_requests"`
	KillFailed    int    `json:"kill_failed"` // non-200 responses, must be 0
	KillFallbacks int64  `json:"kill_fallbacks"`

	DurationMS int64 `json:"duration_ms"`
}

// benchNode is one in-process cluster member with its own daemon,
// service, and on-disk store.
type benchNode struct {
	id    string
	srv   *httptest.Server
	svc   *service.Service
	st    *store.Store
	peers map[string]*cluster.Client
}

// newBenchFleet stands up n full rtserved daemons meshed into one
// ring. Analysis and heuristic are disabled so "searches" counts the
// NP-hard work exactly — the quantity replication is supposed to save.
func newBenchFleet(n int) ([]*benchNode, *cluster.Ring, func(), error) {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	ring, err := cluster.NewRing(ids, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	nodes := make([]*benchNode, n)
	for i, id := range ids {
		dir, err := os.MkdirTemp("", "rtbench-cluster-")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(dir) })
		st, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { st.Close() })
		svc := service.New(service.Options{
			DisableAnalysis:  true,
			DisableHeuristic: true,
			Exact:            exact.Options{MaxCandidates: 2_000_000},
			Store:            st,
		})
		peers := map[string]*cluster.Client{}
		d := served.New(served.Config{
			Service: svc, Timeout: 60 * time.Second, MaxBody: 1 << 20, RespCache: 256,
			Cluster: &served.Cluster{NodeID: id, Ring: ring, Peers: peers, Store: st},
		})
		srv := httptest.NewServer(d.Mux())
		cleanups = append(cleanups, srv.Close)
		nodes[i] = &benchNode{id: id, srv: srv, svc: svc, st: st, peers: peers}
	}
	for _, me := range nodes {
		for _, other := range nodes {
			if other.id != me.id {
				me.peers[other.id] = cluster.NewClient(other.id, other.srv.URL, 5*time.Second)
			}
		}
	}
	return nodes, ring, cleanup, nil
}

// clusterPost POSTs a spec body; forwarded pins the request to the
// receiving node (the daemon's never-forward-a-forward rule).
func clusterPost(url, body string, forwarded bool) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, url+"/schedule", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "text/plain")
	if forwarded {
		req.Header.Set(cluster.ForwardHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw), err
}

// fleetMetric sums one service-metric key across nodes.
func fleetMetric(nodes []*benchNode, key string) int64 {
	var total int64
	for _, n := range nodes {
		total += n.svc.Metrics().Snapshot()[key]
	}
	return total
}

// writeClusterJSON runs the 3-node acceptance suite and writes
// BENCH_cluster.json into dir.
func writeClusterJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	nodes, ring, cleanup, err := newBenchFleet(3)
	if err != nil {
		return err
	}
	defer cleanup()
	byID := map[string]*benchNode{}
	for _, n := range nodes {
		byID[n.id] = n
	}

	// the 16 hard classes of the cold-burst corpus, deduplicated
	var classes []*core.Model
	seen := map[string]bool{}
	for _, m := range coldBurstModels() {
		if fp := core.Fingerprint(m); !seen[fp] {
			seen[fp] = true
			classes = append(classes, m)
		}
	}
	start := time.Now()

	// phase 1: seed every class on its shard owner
	var seedLats []time.Duration
	owners := map[string]int{}
	for i, m := range classes {
		fp := core.Fingerprint(m)
		own := ring.Owner(fp)
		owners[own]++
		t0 := time.Now()
		code, body, err := clusterPost(byID[own].srv.URL, spec.Print(fmt.Sprintf("sys%d", i), m), false)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("seed class %d on %s: code=%d err=%v body=%.200s", i, own, code, err, body)
		}
		seedLats = append(seedLats, time.Since(t0))
	}
	seedSearches := fleetMetric(nodes, "searches")
	if seedSearches != int64(len(classes)) {
		return fmt.Errorf("seed phase ran %d searches for %d classes", seedSearches, len(classes))
	}

	// phase 2: one full anti-entropy round
	syncStart := time.Now()
	var syncPulls, syncRecords int
	for _, n := range nodes {
		var peers []*cluster.Client
		for _, c := range n.peers {
			peers = append(peers, c)
		}
		sy := &cluster.Syncer{Store: n.st, Peers: peers}
		rs := sy.SyncOnce(context.Background())
		syncPulls += rs.Pulls
		syncRecords += rs.Records
	}
	syncWall := time.Since(syncStart)
	converged := true
	ref, _ := json.Marshal(nodes[0].st.Manifest())
	for _, n := range nodes[1:] {
		m, _ := json.Marshal(n.st.Manifest())
		if string(m) != string(ref) {
			converged = false
		}
	}
	if !converged {
		return fmt.Errorf("manifests did not converge after one sync round")
	}

	// phase 3 (acceptance a): every class served warm by BOTH
	// non-owner nodes, pinned local — zero new searches fleet-wide
	preWarm := fleetMetric(nodes, "searches")
	var warmLats []time.Duration
	warmServes, warmStore := 0, 0
	for i, m := range classes {
		fp := core.Fingerprint(m)
		own := ring.Owner(fp)
		surf := spec.Print(fmt.Sprintf("iso%d", i), renameForLoad(rand.New(rand.NewSource(int64(i))), m))
		for _, n := range nodes {
			if n.id == own {
				continue
			}
			t0 := time.Now()
			code, body, err := clusterPost(n.srv.URL, surf, true)
			if err != nil || code != http.StatusOK {
				return fmt.Errorf("warm serve of class %d on %s: code=%d err=%v", i, n.id, code, err)
			}
			warmLats = append(warmLats, time.Since(t0))
			warmServes++
			if strings.Contains(body, `"source":"store"`) {
				warmStore++
			} else if !strings.Contains(body, `"source":"cache"`) {
				return fmt.Errorf("warm serve of class %d on %s came from neither store nor cache: %.200s", i, n.id, body)
			}
		}
	}
	warmSearches := fleetMetric(nodes, "searches") - preWarm
	if warmSearches != 0 {
		return fmt.Errorf("warm phase ran %d new searches, want 0", warmSearches)
	}

	// phase 4 (acceptance b): kill the busiest owner, then burst that
	// node's classes at the survivors with no routing hints — every
	// request must still get a 200
	victim := nodes[0].id
	for id, c := range owners {
		if c > owners[victim] {
			victim = id
		}
	}
	byID[victim].srv.Close()
	var survivors []*benchNode
	for _, n := range nodes {
		if n.id != victim {
			survivors = append(survivors, n)
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	killRequests, killFailed := 0, 0
	for i, m := range classes {
		if ring.Owner(core.Fingerprint(m)) != victim {
			continue
		}
		wg.Add(1)
		killRequests++
		go func(i int, m *core.Model) {
			defer wg.Done()
			surf := spec.Print(fmt.Sprintf("kill%d", i), renameForLoad(rand.New(rand.NewSource(int64(100+i))), m))
			code, _, err := clusterPost(survivors[i%len(survivors)].srv.URL, surf, false)
			if err != nil || code != http.StatusOK {
				mu.Lock()
				killFailed++
				mu.Unlock()
			}
		}(i, m)
	}
	wg.Wait()
	killFallbacks := fleetMetric(nodes, "fallbacks")
	if killRequests == 0 {
		return fmt.Errorf("victim %s owned no classes — ring distribution broken", victim)
	}
	if killFailed > 0 {
		return fmt.Errorf("%d of %d requests failed after killing %s", killFailed, killRequests, victim)
	}
	if killFallbacks == 0 {
		return fmt.Errorf("no fallbacks recorded after killing %s — the burst never hit the dead owner", victim)
	}

	sort.Slice(seedLats, func(i, j int) bool { return seedLats[i] < seedLats[j] })
	sort.Slice(warmLats, func(i, j int) bool { return warmLats[i] < warmLats[j] })
	doc := clusterSuiteDoc{
		Suite:              "cluster",
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		GoVersion:          runtime.Version(),
		Nodes:              len(nodes),
		Classes:            len(classes),
		SeedSearches:       seedSearches,
		SeedP50US:          percentile(seedLats, 50),
		SyncPulls:          int64(syncPulls),
		SyncRecords:        int64(syncRecords),
		SyncMS:             syncWall.Milliseconds(),
		ManifestsConverged: converged,
		WarmServes:         warmServes,
		WarmStoreServes:    warmStore,
		WarmNewSearches:    warmSearches,
		WarmP50US:          percentile(warmLats, 50),
		KilledNode:         victim,
		KillRequests:       killRequests,
		KillFailed:         killFailed,
		KillFallbacks:      killFallbacks,
		DurationMS:         time.Since(start).Milliseconds(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_cluster.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster: %d classes seeded on %d nodes (%d searches, p50=%dµs); sync pulled %d segments/%d records in %dms; %d warm serves (%d store, 0 new searches, p50=%dµs); killed %s: %d/%d requests OK, %d fallbacks\n",
		doc.Classes, doc.Nodes, doc.SeedSearches, doc.SeedP50US,
		doc.SyncPulls, doc.SyncRecords, doc.SyncMS,
		doc.WarmServes, doc.WarmStoreServes, doc.WarmP50US,
		victim, killRequests-killFailed, killRequests, doc.KillFallbacks)
	fmt.Printf("wrote %s\n", path)
	return nil
}
