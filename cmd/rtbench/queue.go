package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/queue"
	"rtm/internal/service"
)

// This file implements -queue: the cold-burst scenario replayed with
// the async solve queue attached. Where the -load cold burst prices
// what the admission semaphore sheds (answers lost, clients retry),
// this suite prices what the queue turns those sheds into: every
// ErrOverloaded becomes a durable job, background workers drain the
// distinct classes exactly once, and the suite measures the
// shed→terminal conversion rate, the enqueue latency (what a 202
// costs), and the end-to-end job latency (submit → terminal verdict).
// A fresh unthrottled service re-solves every class as the parity
// oracle: a queued verdict that disagrees with the synchronous
// pipeline fails the suite.

// queueSuiteDoc is the BENCH_queue.json document.
type queueSuiteDoc struct {
	Suite      string `json:"suite"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Requests   int   `json:"requests"`    // burst size
	SyncServed int   `json:"sync_served"` // answered synchronously (won a slot or hit)
	Converted  int   `json:"converted"`   // sheds converted into queued jobs
	DurationMS int64 `json:"duration_ms"` // burst start → last job terminal

	JobsJournaled int64 `json:"jobs_journaled"` // distinct classes journaled
	JobsDeduped   int64 `json:"jobs_deduped"`   // submits coalesced onto existing jobs
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`

	// ConversionRate is terminal jobs over converted sheds' distinct
	// classes — the headline: 1.0 means zero permanently-lost requests.
	ConversionRate float64 `json:"conversion_rate"`

	EnqueueP50US int64 `json:"enqueue_p50_us"` // ScheduleOrEnqueue shed→202 cost
	EnqueueMaxUS int64 `json:"enqueue_max_us"`
	E2EP50US     int64 `json:"e2e_p50_us"` // submit → terminal verdict
	E2EP95US     int64 `json:"e2e_p95_us"`
	E2EMaxUS     int64 `json:"e2e_max_us"`

	Searches       int64 `json:"searches"`        // exact searches across sync + queue
	ParityChecked  int   `json:"parity_checked"`  // distinct classes cross-checked
	ParityMismatch int   `json:"parity_mismatch"` // must be 0 for the suite to pass
}

// queueVerdict is one observed terminal outcome, keyed by fingerprint.
type queueVerdict struct {
	decided  bool
	feasible bool
}

// writeQueueJSON replays the cold burst with a queue attached and
// writes BENCH_queue.json into dir.
func writeQueueJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	qdir, err := os.MkdirTemp("", "rtbench-queue-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(qdir)
	q, err := queue.Open(qdir, queue.Options{Workers: 2, NoSync: true})
	if err != nil {
		return err
	}
	defer q.Close()

	// the same throttle as the -load cold burst (one slot, 2ms wait),
	// but with a budget big enough that every class decides — the suite
	// measures conversion, not budget exhaustion
	exopt := exact.Options{MaxCandidates: 2_000_000}
	svc := service.New(service.Options{
		DisableHeuristic:  true,
		SearchConcurrency: 1,
		SearchQueueWait:   2 * time.Millisecond,
		Exact:             exopt,
		Queue:             q,
	})
	models := coldBurstModels()
	ctx := context.Background()

	var (
		mu          sync.Mutex
		wg          sync.WaitGroup
		syncServed  int
		converted   int
		enqueueLats []time.Duration
		e2eLats     []time.Duration
		observed    = map[string]queueVerdict{}
	)
	errCh := make(chan error, len(models))
	start := time.Now()
	for _, m := range models {
		wg.Add(1)
		go func(m *core.Model) {
			defer wg.Done()
			t0 := time.Now()
			res, job, err := svc.ScheduleOrEnqueue(ctx, m)
			enq := time.Since(t0)
			switch {
			case err != nil:
				errCh <- err
			case res != nil:
				mu.Lock()
				syncServed++
				observed[res.Fingerprint] = queueVerdict{decided: res.Decided, feasible: res.Feasible}
				mu.Unlock()
			default:
				wctx, cancel := context.WithTimeout(ctx, 10*time.Minute)
				st, werr := q.Wait(wctx, job.ID)
				cancel()
				e2e := time.Since(t0)
				if werr != nil {
					errCh <- fmt.Errorf("job %s never terminated: %w", job.ID[:8], werr)
					return
				}
				mu.Lock()
				converted++
				enqueueLats = append(enqueueLats, enq)
				e2eLats = append(e2eLats, e2e)
				if st.State == queue.Done {
					observed[st.ID] = queueVerdict{decided: st.Verdict.Decided, feasible: st.Verdict.Feasible}
				} else {
					observed[st.ID] = queueVerdict{} // failed = no decided verdict
				}
				mu.Unlock()
			}
		}(m)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}

	// parity oracle: an unthrottled synchronous service with the same
	// pipeline shape must agree on every class the burst decided
	oracle := service.New(service.Options{
		DisableHeuristic: true, SearchConcurrency: -1, Exact: exopt,
	})
	seen := map[string]bool{}
	parityChecked, parityMismatch := 0, 0
	for _, m := range models {
		fp := core.Fingerprint(m)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		ref, err := oracle.Schedule(ctx, m)
		if err != nil {
			return fmt.Errorf("parity oracle: %w", err)
		}
		got, ok := observed[fp]
		if !ok {
			return fmt.Errorf("class %s has no observed verdict", fp[:8])
		}
		parityChecked++
		if got.decided != ref.Decided || (got.decided && got.feasible != ref.Feasible) {
			parityMismatch++
			fmt.Fprintf(os.Stderr, "rtbench: parity mismatch on %s: queued {decided:%v feasible:%v} vs sync {decided:%v feasible:%v}\n",
				fp[:8], got.decided, got.feasible, ref.Decided, ref.Feasible)
		}
	}

	qs := q.Stats()
	mt := svc.Metrics().Snapshot()
	sort.Slice(enqueueLats, func(i, j int) bool { return enqueueLats[i] < enqueueLats[j] })
	sort.Slice(e2eLats, func(i, j int) bool { return e2eLats[i] < e2eLats[j] })
	doc := queueSuiteDoc{
		Suite:          "queue",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Requests:       len(models),
		SyncServed:     syncServed,
		Converted:      converted,
		DurationMS:     wall.Milliseconds(),
		JobsJournaled:  qs.Submitted,
		JobsDeduped:    qs.Deduped,
		JobsDone:       qs.Completed,
		JobsFailed:     qs.Failed,
		EnqueueP50US:   percentile(enqueueLats, 50),
		E2EP50US:       percentile(e2eLats, 50),
		E2EP95US:       percentile(e2eLats, 95),
		Searches:       mt["searches"],
		ParityChecked:  parityChecked,
		ParityMismatch: parityMismatch,
	}
	if len(enqueueLats) > 0 {
		doc.EnqueueMaxUS = enqueueLats[len(enqueueLats)-1].Microseconds()
	}
	if len(e2eLats) > 0 {
		doc.E2EMaxUS = e2eLats[len(e2eLats)-1].Microseconds()
	}
	if qs.Submitted > 0 {
		doc.ConversionRate = float64(qs.Completed+qs.Failed) / float64(qs.Submitted)
	}

	switch {
	case qs.Completed+qs.Failed != qs.Submitted:
		return fmt.Errorf("queue left %d of %d jobs non-terminal", qs.Submitted-qs.Completed-qs.Failed, qs.Submitted)
	case parityMismatch > 0:
		return errors.New("queued verdicts diverged from the synchronous pipeline")
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_queue.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cold burst with queue: %d requests → %d sync + %d converted (%d classes, %d searches); enqueue p50=%dµs, e2e p50=%dµs p95=%dµs; conversion=%.2f parity=%d/%d\n",
		doc.Requests, doc.SyncServed, doc.Converted, doc.JobsJournaled, doc.Searches,
		doc.EnqueueP50US, doc.E2EP50US, doc.E2EP95US, doc.ConversionRate, parityChecked-parityMismatch, parityChecked)
	fmt.Printf("wrote %s\n", path)
	return nil
}
