// Command rtbench runs the full experiment suite (E1–E9 of DESIGN.md)
// and prints the tables recorded in EXPERIMENTS.md. With -json DIR it
// instead runs the micro-benchmark suites (exact search, serving
// tiers, durable store) and writes machine-readable results to
// DIR/BENCH_<suite>.json — ns/op, allocs/op, bytes/op, workers — so
// the perf trajectory is trackable across PRs. With -load DIR it runs
// the service load suite — closed-loop repeat workloads over the
// verified-hit fast path and the remap + re-check hit path, a mixed
// isomorphic-surface workload, and an open-loop cold burst against
// the bounded exact-search admission — and writes p50/p95/p99 latency
// plus throughput to DIR/BENCH_service_load.json. With -solver DIR it
// runs the exact-search pruner suite — the refutation-heavy E2/E3/E4
// rows, pruners off vs. on, plus both transposition-table sharing
// modes — and writes node counts, cut tallies and wall time to
// DIR/BENCH_exact_prune.json. With -corpus DIR it draws -corpus-n
// distinct random layered-DAG classes and runs the whole set through
// the admission pipeline with the analytic tier off and on, writing
// per-tier decision fractions, the exact-search work saved, and a
// verdict-parity cross-check to DIR/BENCH_corpus.json. With -queue DIR
// it replays the cold burst with the durable async solve queue
// attached — sheds become journaled jobs drained by background workers
// — and writes the shed→terminal conversion rate, enqueue latency, and
// end-to-end job latency (with a synchronous verdict-parity oracle) to
// DIR/BENCH_queue.json. With -cluster DIR it stands up a 3-node
// fingerprint-sharded fleet in-process and runs the replication
// acceptance scenario — seed on owners, one anti-entropy round,
// warm serves from every non-owner with zero new searches, then a
// kill-one-owner burst with zero failed requests — writing
// DIR/BENCH_cluster.json. With -sync DIR it measures delta
// replication — nearly-converged two-node fleets (10k records, 1–32
// divergent) synced to convergence over the whole-bucket protocol and
// over Merkle narrowing, comparing bytes on the wire — writing
// DIR/BENCH_sync.json and failing hard if narrowing moves less than
// 10x fewer bytes. With -memostore DIR it runs the durable
// refutation-cache near-miss suite — hard-NO 3-PARTITION classes
// solved cold with a store attached, the service restarted, and
// perturbed near-miss variants replayed warm from the persisted
// transposition table, with tiered verdict-parity oracles — writing
// warm-vs-cold node ratios to DIR/BENCH_memo_store.json.
//
// Usage:
//
//	rtbench [-only E3] [-workers N] [-json DIR] [-load DIR] [-solver DIR]
//	        [-corpus DIR [-corpus-n N] [-corpus-seed S]] [-queue DIR] [-cluster DIR]
//	        [-sync DIR] [-memostore DIR [-memostore-n N]]
package main

import (
	"flag"
	"fmt"
	"os"

	"rtm/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E3)")
	workers := flag.Int("workers", 1, "exact-search workers for E2-E4; 1 reproduces the committed tables' node counts, -1 means all CPUs")
	jsonDir := flag.String("json", "", "write machine-readable benchmark results to this directory instead of running experiments")
	loadDir := flag.String("load", "", "run the service load suite and write BENCH_service_load.json to this directory")
	solverDir := flag.String("solver", "", "run the exact-search pruner suite and write BENCH_exact_prune.json to this directory")
	corpusDir := flag.String("corpus", "", "run the random-DAG corpus suite and write BENCH_corpus.json to this directory")
	queueDir := flag.String("queue", "", "run the async-queue cold-burst suite and write BENCH_queue.json to this directory")
	clusterDir := flag.String("cluster", "", "run the 3-node cluster replication suite and write BENCH_cluster.json to this directory")
	syncDir := flag.String("sync", "", "run the delta-replication suite and write BENCH_sync.json to this directory")
	corpusN := flag.Int("corpus-n", 2000, "distinct isomorphism classes to draw for -corpus")
	corpusSeed := flag.Int64("corpus-seed", 1, "generator seed for -corpus")
	memoDir := flag.String("memostore", "", "run the durable refutation-cache near-miss suite and write BENCH_memo_store.json to this directory")
	memoN := flag.Int("memostore-n", 0, "family sizes to run for -memostore (0 = all)")
	flag.Parse()

	if *memoDir != "" {
		if err := writeMemoStoreJSON(*memoDir, *memoN); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clusterDir != "" {
		if err := writeClusterJSON(*clusterDir); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *syncDir != "" {
		if err := writeSyncJSON(*syncDir); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *queueDir != "" {
		if err := writeQueueJSON(*queueDir); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *corpusDir != "" {
		if err := writeCorpusJSON(*corpusDir, *corpusN, *corpusSeed); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *solverDir != "" {
		if err := writeSolverJSON(*solverDir); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonDir != "" {
		if err := writeBenchJSON(*jsonDir, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		if *loadDir == "" {
			return
		}
	}
	if *loadDir != "" {
		if err := writeLoadJSON(*loadDir); err != nil {
			fmt.Fprintf(os.Stderr, "rtbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments.SetExactWorkers(*workers)

	ran := 0
	for _, t := range experiments.All() {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rtbench: no experiment %q\n", *only)
		os.Exit(1)
	}
}
