package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/service"
)

// This file implements -load: a service-level load suite that prices
// the serving hot path under concurrency — the closed-loop repeat
// workloads the verified-hit memo exists for, and the open-loop cold
// burst the admission semaphore exists for. Results (throughput plus
// p50/p95/p99 latency) go to DIR/BENCH_service_load.json so the
// scaling trajectory is trackable across PRs like the micro suites.

// loadScenario is one measured load scenario.
type loadScenario struct {
	Name       string `json:"name"`
	Mode       string `json:"mode"` // closed (fixed workers loop) or open (burst)
	Goroutines int    `json:"goroutines"`
	Requests   int    `json:"requests"` // completed successfully
	Shed       int    `json:"shed"`     // rejected with ErrOverloaded
	DurationMS int64  `json:"duration_ms"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50US         int64   `json:"p50_us"`
	P95US         int64   `json:"p95_us"`
	P99US         int64   `json:"p99_us"`
	MaxUS         int64   `json:"max_us"`

	CacheHits  int64 `json:"cache_hits"`
	MemoHits   int64 `json:"memo_hits"`
	Overloaded int64 `json:"overloaded"`
}

// loadSuiteDoc is the BENCH_service_load.json document.
type loadSuiteDoc struct {
	Suite      string         `json:"suite"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Scenarios  []loadScenario `json:"scenarios"`
}

// percentile returns the p-th percentile (0 < p ≤ 100) of sorted
// latencies, in microseconds.
func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Microseconds()
}

// summarize folds raw latencies and counters into a scenario row.
func summarize(name, mode string, goroutines int, lats []time.Duration, shed int, wall time.Duration, mt *service.Metrics) loadScenario {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sc := loadScenario{
		Name:       name,
		Mode:       mode,
		Goroutines: goroutines,
		Requests:   len(lats),
		Shed:       shed,
		DurationMS: wall.Milliseconds(),
		P50US:      percentile(lats, 50),
		P95US:      percentile(lats, 95),
		P99US:      percentile(lats, 99),
		CacheHits:  mt.CacheHits.Load(),
		MemoHits:   mt.MemoHits.Load(),
		Overloaded: mt.Overloaded.Load(),
	}
	if len(lats) > 0 {
		sc.MaxUS = lats[len(lats)-1].Microseconds()
	}
	if wall > 0 {
		sc.ThroughputRPS = float64(len(lats)) / wall.Seconds()
	}
	return sc
}

// closedLoop drives total requests through fn from g goroutines, each
// looping as fast as the service answers (closed-loop load: a new
// request only after the previous response).
func closedLoop(g, total int, fn func() error) ([]time.Duration, time.Duration, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats = make([]time.Duration, 0, total)
	)
	errCh := make(chan error, g)
	per := total / g
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				t0 := time.Now()
				if err := fn(); err != nil {
					errCh <- err
					return
				}
				own = append(own, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, own...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, 0, err
	}
	return lats, wall, nil
}

// hotScenario prices the hit path under closed-loop concurrency: g
// goroutines re-posting the byte-identical example workload. With the
// verified-hit memo on, repeats skip remap + re-check (and measure the
// memo fast path); with memo disabled (resultMemo < 0) every hit pays
// the full remap + re-verify — the pair is the acceptance comparison.
func hotScenario(name string, resultMemo, g, total int) (loadScenario, error) {
	ctx := context.Background()
	svc := service.New(service.Options{ResultMemo: resultMemo})
	m := core.ExampleSystem(core.DefaultExampleParams())
	if _, err := svc.Schedule(ctx, m); err != nil { // prime the entry
		return loadScenario{}, err
	}
	lats, wall, err := closedLoop(g, total, func() error {
		res, err := svc.Schedule(ctx, m)
		if err != nil {
			return err
		}
		if !res.CacheHit {
			return fmt.Errorf("%s: hot request missed the cache", name)
		}
		return nil
	})
	if err != nil {
		return loadScenario{}, err
	}
	return summarize(name, "closed", g, lats, 0, wall, svc.Metrics()), nil
}

// isoScenario mixes k renamed (isomorphic) surfaces of one class under
// closed-loop load: every request is a cache hit, and each surface
// memo-hits after its first materialization — the steady state of a
// fleet of clients naming the same system differently.
func isoScenario(g, total, k int) (loadScenario, error) {
	ctx := context.Background()
	svc := service.New(service.Options{ResultMemo: k})
	base := core.ExampleSystem(core.DefaultExampleParams())
	rng := rand.New(rand.NewSource(11))
	models := make([]*core.Model, k)
	models[0] = base
	for i := 1; i < k; i++ {
		models[i] = renameForLoad(rng, base)
	}
	if _, err := svc.Schedule(ctx, base); err != nil {
		return loadScenario{}, err
	}
	var next int64
	var mu sync.Mutex
	lats, wall, err := closedLoop(g, total, func() error {
		mu.Lock()
		m := models[next%int64(k)]
		next++
		mu.Unlock()
		res, err := svc.Schedule(ctx, m)
		if err != nil {
			return err
		}
		if !res.CacheHit {
			return errors.New("isomorphic hot request missed the cache")
		}
		return nil
	})
	if err != nil {
		return loadScenario{}, err
	}
	return summarize(fmt.Sprintf("hot_isomorphic_%dsurfaces", k), "closed", g, lats, 0, wall, svc.Metrics()), nil
}

// coldBurstScenario prices admission under an open-loop burst: 32
// requests over 16 distinct hard classes (density-1 refutations, the
// workloads only exhaustion can decide) arrive at once against one
// exact-search slot and a short queue-wait budget, so the semaphore
// must shed the overflow with ErrOverloaded instead of queueing it
// all. A candidate budget bounds every admitted search, keeping the
// suite's wall clock bounded no matter the admission order.
func coldBurstScenario() (loadScenario, error) {
	ctx := context.Background()
	svc := service.New(service.Options{
		DisableHeuristic:  true,
		SearchConcurrency: 1,
		SearchQueueWait:   2 * time.Millisecond,
		Exact:             exact.Options{MaxCandidates: 20_000},
	})
	models := coldBurstModels()
	n := len(models)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		shed int
	)
	errCh := make(chan error, n)
	start := time.Now()
	for _, m := range models {
		wg.Add(1)
		go func(m *core.Model) {
			defer wg.Done()
			t0 := time.Now()
			_, err := svc.Schedule(ctx, m)
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				lats = append(lats, d)
			case errors.Is(err, service.ErrOverloaded):
				shed++
			default:
				errCh <- err
			}
		}(m)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return loadScenario{}, err
	}
	return summarize("cold_burst_backpressure", "open", n, lats, shed, wall, svc.Metrics()), nil
}

// coldBurstModels builds the cold-burst workload: 16 distinct hard
// classes — density-1 deadline multisets (Σ 1/d = 1) at weights 2 and
// 3, so the admission analysis saturates and the verdict is down to
// exact search — each listed twice (a coalescing duplicate per class).
// Shared by the -load cold-burst scenario and the -queue suite, which
// replays the same burst with the async queue attached.
func coldBurstModels() []*core.Model {
	sets := [][]int{
		{2, 3, 6}, {2, 4, 4}, {3, 3, 3}, {4, 4, 4, 4},
		{2, 4, 6, 12}, {2, 3, 9, 18}, {3, 4, 4, 6}, {2, 5, 5, 10},
	}
	var models []*core.Model
	for _, w := range []int{2, 3} {
		for _, ds := range sets {
			m := hardnessInstance(w, ds)
			models = append(models, m, m)
		}
	}
	return models
}

// renameForLoad rebuilds m under a fresh element naming (an
// isomorphic surface for the mixed-surface scenario).
func renameForLoad(rng *rand.Rand, m *core.Model) *core.Model {
	elems := m.Comm.Elements()
	perm := rng.Perm(len(elems))
	ren := make(map[string]string, len(elems))
	for i, e := range elems {
		ren[e] = fmt.Sprintf("e%03d", perm[i])
	}
	out := core.NewModel()
	for _, e := range elems {
		out.Comm.AddElement(ren[e], m.Comm.WeightOf(e))
	}
	for _, e := range m.Comm.G.Edges() {
		out.Comm.AddPath(ren[e.From], ren[e.To])
	}
	for _, c := range m.Constraints {
		task := core.NewTaskGraph()
		for _, nd := range c.Task.Nodes() {
			task.AddStep(nd, ren[c.Task.ElementOf(nd)])
		}
		for _, e := range c.Task.G.Edges() {
			task.AddPrec(e.From, e.To)
		}
		out.AddConstraint(&core.Constraint{
			Name: c.Name, Task: task,
			Period: c.Period, Deadline: c.Deadline, Kind: c.Kind,
		})
	}
	return out
}

// writeLoadJSON runs the load suite and writes BENCH_service_load.json
// into dir.
func writeLoadJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := 2 * runtime.GOMAXPROCS(0)
	if g < 4 {
		g = 4
	}
	const total = 4000
	var scenarios []loadScenario
	for _, run := range []func() (loadScenario, error){
		func() (loadScenario, error) { return hotScenario("hot_repeat_verified", 0, g, total) },
		func() (loadScenario, error) { return hotScenario("hot_remap_recheck", -1, g, total) },
		func() (loadScenario, error) { return isoScenario(g, total, 4) },
		coldBurstScenario,
	} {
		sc, err := run()
		if err != nil {
			return err
		}
		scenarios = append(scenarios, sc)
		fmt.Printf("%-28s %-6s p50=%dµs p95=%dµs p99=%dµs %.0f req/s (%d ok, %d shed)\n",
			sc.Name, sc.Mode, sc.P50US, sc.P95US, sc.P99US, sc.ThroughputRPS, sc.Requests, sc.Shed)
	}
	doc := loadSuiteDoc{
		Suite:      "service_load",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Scenarios:  scenarios,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_service_load.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(scenarios))
	return nil
}
