package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/nphard"
)

// This file implements -solver: the exact-search pruner suite. Each
// refutation-heavy row from E2/E3/E4 is solved twice — pruners off
// (the seed engine) and pruners on (the PR-5 default) — and the node
// counts, per-pruner cut tallies and wall time land in
// DIR/BENCH_exact_prune.json. A pair of Workers=4 rows additionally
// compares the two transposition-table sharing modes.

// solverRow is one (instance, configuration) measurement.
type solverRow struct {
	Name             string `json:"name"`
	Pruners          string `json:"pruners"` // "on" | "off"
	Workers          int    `json:"workers"`
	MemoMode         string `json:"memo_mode,omitempty"` // "shared" | "per-worker" (parallel rows)
	Feasible         bool   `json:"feasible"`
	NodesExplored    int    `json:"nodes_explored"`
	Candidates       int    `json:"candidates"`
	PrunedBySymmetry int    `json:"pruned_by_symmetry"`
	PrunedByMemo     int    `json:"pruned_by_memo"`
	PrunedByBound    int    `json:"pruned_by_bound"`
	NsElapsed        int64  `json:"ns"`
}

// solverSuite is the BENCH_exact_prune.json document.
type solverSuite struct {
	Suite      string      `json:"suite"`
	GoMaxProcs int         `json:"gomaxprocs"`
	GoVersion  string      `json:"go_version"`
	Rows       []solverRow `json:"rows"`
}

// solverInstance is one named instance with its search options.
type solverInstance struct {
	name string
	m    *core.Model
	opt  exact.Options
}

func solverInstances() ([]solverInstance, error) {
	var out []solverInstance

	// E2 tight rows: unit density, feasibility decided purely by
	// window combinatorics
	for _, h := range []struct {
		ds     []int
		maxLen int
	}{
		{[]int{2, 3, 6}, 6},
		{[]int{2, 6, 6, 6}, 6},
		{[]int{2, 4, 6, 12}, 12},
	} {
		m := core.NewModel()
		for i, d := range h.ds {
			name := fmt.Sprintf("u%d", i)
			m.Comm.AddElement(name, 1)
			m.AddConstraint(&core.Constraint{
				Name: "c" + name, Task: core.ChainTask(name),
				Period: d, Deadline: d, Kind: core.Asynchronous,
			})
		}
		out = append(out, solverInstance{
			name: fmt.Sprintf("e2-tight-%v", h.ds),
			m:    m,
			opt:  exact.Options{MaxLen: h.maxLen},
		})
	}

	// E3 rows: the 3-PARTITION reduction, NO and YES at m=2
	for _, c := range []struct {
		kind  string
		sizes []int
		b     int
	}{
		{"NO", []int{7, 5, 5, 5, 5, 5}, 16},
		{"YES", []int{6, 5, 5, 6, 5, 5}, 16},
	} {
		tp := nphard.ThreePartition{Sizes: c.sizes, B: c.b}
		m, err := nphard.EncodeThreePartition(tp)
		if err != nil {
			return nil, err
		}
		n := tp.M() * (c.b + 1)
		out = append(out, solverInstance{
			name: "e3-" + c.kind,
			m:    m,
			opt: exact.Options{
				MinLen: n, MaxLen: n, RequireContiguous: true, MaxCandidates: 5_000_000,
			},
		})
	}

	// E4 rows: the CYCLIC ORDERING core encoding (factorial family)
	for _, n := range []int{6, 7} {
		m, err := nphard.EncodeCyclicCore(n, 1)
		if err != nil {
			return nil, err
		}
		cycle := n + 1
		out = append(out, solverInstance{
			name: fmt.Sprintf("e4-n%d", n),
			m:    m,
			opt:  exact.Options{MinLen: cycle, MaxLen: cycle, RequireContiguous: true},
		})
	}
	return out, nil
}

func solveRow(inst solverInstance, opt exact.Options, pruners, memoMode string) (solverRow, error) {
	start := time.Now()
	s, st, err := exact.FindSchedule(inst.m, opt)
	elapsed := time.Since(start)
	if err != nil && err != exact.ErrNotFound {
		return solverRow{}, fmt.Errorf("%s (%s): %w", inst.name, pruners, err)
	}
	workers := opt.Workers
	if workers == 0 {
		workers = 1
	}
	return solverRow{
		Name:             inst.name,
		Pruners:          pruners,
		Workers:          workers,
		MemoMode:         memoMode,
		Feasible:         s != nil,
		NodesExplored:    st.NodesExplored,
		Candidates:       st.Candidates,
		PrunedBySymmetry: st.PrunedBySymmetry,
		PrunedByMemo:     st.PrunedByMemo,
		PrunedByBound:    st.PrunedByBound,
		NsElapsed:        elapsed.Nanoseconds(),
	}, nil
}

func writeSolverJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	instances, err := solverInstances()
	if err != nil {
		return err
	}
	var rows []solverRow
	for _, inst := range instances {
		off := inst.opt
		off.DisableSymmetry, off.DisableMemo, off.DisableBounds = true, true, true
		rowOff, err := solveRow(inst, off, "off", "")
		if err != nil {
			return err
		}
		rowOn, err := solveRow(inst, inst.opt, "on", "")
		if err != nil {
			return err
		}
		if rowOff.Feasible != rowOn.Feasible {
			return fmt.Errorf("%s: verdict diverged between pruner configurations", inst.name)
		}
		rows = append(rows, rowOff, rowOn)
	}
	// transposition-table sharing modes under a parallel search, on
	// the heaviest refutation row
	for _, inst := range instances {
		if inst.name != "e3-NO" {
			continue
		}
		for _, perWorker := range []bool{false, true} {
			opt := inst.opt
			opt.Workers = 4
			opt.MemoPerWorker = perWorker
			mode := "shared"
			if perWorker {
				mode = "per-worker"
			}
			row, err := solveRow(inst, opt, "on", mode)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	doc := solverSuite{
		Suite:      "exact_prune",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Rows:       rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_exact_prune.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}
