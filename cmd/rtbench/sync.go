package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rtm/internal/cluster"
	"rtm/internal/served"
	"rtm/internal/service"
	"rtm/internal/store"
)

// This file implements -sync: the delta-replication suite. It builds
// nearly-converged two-node fleets — a fully populated source daemon
// and a joiner missing a handful of records — and syncs the joiner to
// convergence twice: once over the whole-bucket protocol (the
// pre-Merkle fallback, forced with DisableMerkle) and once over Merkle
// narrowing. Bytes on the wire come from the cluster client's own
// rx/tx accounting, so the numbers are what replication actually
// moved, headers excluded, compression none.
//
// Acceptance: for every nearly-converged scenario (≤32 of 10k records
// divergent) the narrowing protocol must move at least syncMinRatio×
// fewer bytes than whole buckets, and both protocols must land
// byte-identical manifests. A miss is a hard suite failure.

// syncMinRatio is the acceptance floor for bytes-on-wire reduction.
const syncMinRatio = 10.0

// syncSuiteDoc is the BENCH_sync.json document.
type syncSuiteDoc struct {
	Suite      string `json:"suite"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	MinRatio  float64           `json:"min_ratio"` // acceptance floor
	Scenarios []syncScenarioDoc `json:"scenarios"`

	DurationMS int64 `json:"duration_ms"`
}

// syncScenarioDoc compares the two protocols on one divergence shape.
type syncScenarioDoc struct {
	Name          string  `json:"name"`
	Records       int     `json:"records"`        // verdict records in the source store
	MemoClasses   int     `json:"memo_classes"`   // memo classes in the source store
	Divergent     int     `json:"divergent"`      // verdict records the joiner is missing
	MemoDivergent int     `json:"memo_divergent"` // memo classes the joiner is missing
	Old           syncRun `json:"whole_bucket"`
	New           syncRun `json:"merkle_delta"`
	BytesRatio    float64 `json:"bytes_ratio"` // old total / new total
}

// syncRun is one protocol's cost to convergence.
type syncRun struct {
	Rounds     int   `json:"rounds"`
	Pulls      int   `json:"pulls"`
	Records    int   `json:"records"` // imported, both tiers
	BytesRx    int64 `json:"bytes_rx"`
	BytesTx    int64 `json:"bytes_tx"`
	BytesTotal int64 `json:"bytes_total"`
	MS         int64 `json:"ms"`
	Converged  bool  `json:"converged"`
}

// syncScenario describes one fleet shape to measure.
type syncScenario struct {
	name          string
	records       int
	memoClasses   int
	divergent     int
	memoDivergent int
}

// randHexFP draws a random well-formed fingerprint.
func randHexFP(rng *rand.Rand) string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, 64)
	for i := range b {
		b[i] = hexDigits[rng.Intn(16)]
	}
	return string(b)
}

// buildSyncPair populates a source store and a joiner that shares all
// but the divergent tail, stands the source up as a full daemon, and
// returns the joiner's syncer plus the peer client whose byte
// counters the caller samples. Seeding is deterministic in seed, so
// the old- and new-protocol runs of a scenario sync identical fleets.
func buildSyncPair(sc syncScenario, seed int64, disableMerkle bool) (*cluster.Syncer, *cluster.Client, *store.Store, *store.Store, func(), error) {
	rng := rand.New(rand.NewSource(seed))
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	open := func() (*store.Store, error) {
		dir, err := os.MkdirTemp("", "rtbench-sync-")
		if err != nil {
			return nil, err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(dir) })
		st, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			return nil, err
		}
		cleanups = append(cleanups, func() { st.Close() })
		return st, nil
	}
	src, err := open()
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	join, err := open()
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	// shared prefix goes to both stores; the divergent tail only to
	// the source — the joiner is a nearly-converged replica
	for i := 0; i < sc.records; i++ {
		rec := &store.Record{Fingerprint: randHexFP(rng), Elements: 3, Source: "exact"}
		if err := src.Put(rec); err != nil {
			cleanup()
			return nil, nil, nil, nil, nil, err
		}
		if i >= sc.divergent {
			if err := join.Put(rec); err != nil {
				cleanup()
				return nil, nil, nil, nil, nil, err
			}
		}
	}
	for i := 0; i < sc.memoClasses; i++ {
		key := randHexFP(rng)
		sigs := [][]byte{make([]byte, 24), make([]byte, 24)}
		rng.Read(sigs[0])
		rng.Read(sigs[1])
		if err := src.PutMemo(key, nil, sigs); err != nil {
			cleanup()
			return nil, nil, nil, nil, nil, err
		}
		if i >= sc.memoDivergent {
			if err := join.PutMemo(key, nil, sigs); err != nil {
				cleanup()
				return nil, nil, nil, nil, nil, err
			}
		}
	}

	ring, err := cluster.NewRing([]string{"src", "join"}, 0)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	svc := service.New(service.Options{DisableAnalysis: true, DisableHeuristic: true, Store: src})
	d := served.New(served.Config{
		Service: svc, Timeout: 30 * time.Second, MaxBody: 1 << 20, RespCache: 16,
		Cluster: &served.Cluster{NodeID: "src", Ring: ring, Peers: map[string]*cluster.Client{}, Store: src},
	})
	srv := httptest.NewServer(d.Mux())
	cleanups = append(cleanups, srv.Close)
	cli := cluster.NewClient("src", srv.URL, 30*time.Second)
	sy := &cluster.Syncer{Store: join, Peers: []*cluster.Client{cli}, DisableMerkle: disableMerkle}
	return sy, cli, src, join, cleanup, nil
}

// runSyncToConvergence drives rounds until the joiner's manifest
// matches the source's (or five rounds pass) and reports the cost.
func runSyncToConvergence(sc syncScenario, seed int64, disableMerkle bool) (syncRun, error) {
	sy, cli, src, join, cleanup, err := buildSyncPair(sc, seed, disableMerkle)
	if err != nil {
		return syncRun{}, err
	}
	defer cleanup()
	var run syncRun
	t0 := time.Now()
	for run.Rounds < 5 {
		rs := sy.SyncOnce(context.Background())
		run.Rounds++
		run.Pulls += rs.Pulls
		run.Records += rs.Records
		if rs.Failures > 0 {
			return run, fmt.Errorf("sync round %d had %d failures", run.Rounds, rs.Failures)
		}
		want, _ := json.Marshal(src.Manifest())
		got, _ := json.Marshal(join.Manifest())
		if string(want) == string(got) {
			run.Converged = true
			break
		}
	}
	run.MS = time.Since(t0).Milliseconds()
	run.BytesRx, run.BytesTx = cli.BytesRx(), cli.BytesTx()
	run.BytesTotal = run.BytesRx + run.BytesTx
	if !run.Converged {
		return run, fmt.Errorf("no convergence after %d rounds", run.Rounds)
	}
	return run, nil
}

// writeSyncJSON runs the delta-replication suite and writes
// BENCH_sync.json into dir.
func writeSyncJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	scenarios := []syncScenario{
		{name: "verdicts-1-of-10k", records: 10_000, divergent: 1},
		{name: "verdicts-8-of-10k", records: 10_000, divergent: 8},
		{name: "verdicts-32-of-10k", records: 10_000, divergent: 32},
		{name: "memo-8-of-2k", records: 10_000, memoClasses: 2_000, memoDivergent: 8},
	}
	start := time.Now()
	doc := syncSuiteDoc{
		Suite:      "sync",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		MinRatio:   syncMinRatio,
	}
	for i, sc := range scenarios {
		seed := int64(1000 + i)
		old, err := runSyncToConvergence(sc, seed, true)
		if err != nil {
			return fmt.Errorf("%s whole-bucket: %w", sc.name, err)
		}
		neo, err := runSyncToConvergence(sc, seed, false)
		if err != nil {
			return fmt.Errorf("%s merkle: %w", sc.name, err)
		}
		ratio := float64(old.BytesTotal) / float64(neo.BytesTotal)
		divergent := sc.divergent + sc.memoDivergent
		if divergent <= 32 && ratio < syncMinRatio {
			return fmt.Errorf("%s: bytes ratio %.1f below the %.0fx floor (old=%d new=%d)",
				sc.name, ratio, syncMinRatio, old.BytesTotal, neo.BytesTotal)
		}
		doc.Scenarios = append(doc.Scenarios, syncScenarioDoc{
			Name: sc.name, Records: sc.records, MemoClasses: sc.memoClasses,
			Divergent: sc.divergent, MemoDivergent: sc.memoDivergent,
			Old: old, New: neo, BytesRatio: ratio,
		})
		fmt.Printf("sync %-20s whole-bucket %8d B / merkle %6d B  = %5.1fx  (%d+%d divergent, %d/%d rounds)\n",
			sc.name, old.BytesTotal, neo.BytesTotal, ratio, sc.divergent, sc.memoDivergent, old.Rounds, neo.Rounds)
	}
	doc.DurationMS = time.Since(start).Milliseconds()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_sync.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
