package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/nphard"
	"rtm/internal/service"
	"rtm/internal/store"
)

// This file implements -memostore: the durable refutation-cache
// (persistent transposition table) near-miss suite. A hard NO class —
// a 3-PARTITION encoding whose blocker item fits no frame — is solved
// cold through a service with a store attached, the service is torn
// down and rebuilt on the same directory (a restart), and perturbed
// near-miss variants of the class (extra communication paths: the
// canonical fingerprint changes, the memo class does not) are replayed
// warm. Each variant's warm node count is compared against a storeless
// cold baseline; the suite fails unless every family's worst
// warm-vs-cold ratio is at least minMemoRatio and every verdict
// matches its oracle.
//
// The oracle is tiered by tractability: the smallest family is
// cross-checked against the fully-unpruned search (pruners_off), the
// next against a memo-less search (memo_off — the exact control for
// the channel this suite exercises), and the large families against
// the unseeded cold baseline itself (cold_unseeded), which the
// tier-1 differential tests pin to the reference oracle. Families the
// full oracle cannot reach in reasonable time are reported as such
// rather than silently skipped.

// minMemoRatio is the acceptance floor: a warm replay must cost at
// most half the nodes of the cold baseline on every variant.
const minMemoRatio = 2.0

// memoVariantDoc is one perturbed near-miss replay.
type memoVariantDoc struct {
	Fingerprint string  `json:"fingerprint"`
	ColdNodes   int64   `json:"cold_nodes"` // storeless baseline
	WarmNodes   int64   `json:"warm_nodes"` // seeded from the store
	Ratio       float64 `json:"ratio"`      // cold / warm
	SeedSigs    int64   `json:"seed_sigs"`  // signatures seeded into the search
}

// memoFamilyDoc is one hard-NO class: a cold solve, a restart, and a
// set of warm near-miss replays.
type memoFamilyDoc struct {
	Name          string           `json:"name"`
	B             int              `json:"b"`
	Sizes         []int            `json:"sizes"`
	ScheduleLen   int              `json:"schedule_len"`
	MemoKey       string           `json:"memo_key"`
	ColdBaseNodes int64            `json:"cold_base_nodes"` // life-1 cold solve
	SnapshotSigs  int              `json:"snapshot_sigs"`   // exported by the cold solve
	StoredSigs    int              `json:"stored_sigs"`     // durable after the cap
	Oracle        string           `json:"oracle"`          // pruners_off | memo_off | cold_unseeded
	OracleNodes   int64            `json:"oracle_nodes,omitempty"`
	OracleAgrees  bool             `json:"oracle_agrees"`
	Variants      []memoVariantDoc `json:"variants"`
	MinRatio      float64          `json:"min_ratio"`
	MedianRatio   float64          `json:"median_ratio"`
}

// memoSuiteDoc is the BENCH_memo_store.json document.
type memoSuiteDoc struct {
	Suite      string `json:"suite"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	SigCap   int             `json:"sig_cap"` // store per-class signature cap
	Families []memoFamilyDoc `json:"families"`

	MinRatio          float64 `json:"min_ratio"` // worst ratio across all variants
	VerdictMismatches int     `json:"verdict_mismatches"`
	DurationMS        int64   `json:"duration_ms"`
}

// memoFamily is the blocker construction: with item sizes strictly
// inside (B/4, B/2), the largest legal size cannot complete a frame —
// at B=24 an 11 needs 13 from two sizes ≥ 7, at B=32 a 15 needs 17
// from two sizes ≥ 9, at B=40 a 19 needs 21 from two sizes ≥ 11 — so
// any multiset containing the blocker is a NO instance whose
// refutation must explore all the near-feasible packings of the rest.
// Multiplicities stay small because the canonical fingerprint's
// orbit enumeration is factorial in the largest same-weight group.
type memoFamily struct {
	name   string
	b      int
	sizes  []int
	oracle string // pruners_off | memo_off | cold_unseeded
}

func memoFamilies() []memoFamily {
	return []memoFamily{
		{"B24-m2", 24, []int{7, 7, 7, 7, 7, 11, 8, 9, 9}, "pruners_off"},
		{"B24-m4", 24, []int{7, 7, 7, 7, 7, 7, 11, 11, 8, 8, 8, 8}, "memo_off"},
		{"B32-m4", 32, []int{15, 9, 9, 9, 9, 10, 10, 10, 11, 11, 12, 13}, "memo_off"},
		{"B40-m6", 40, []int{19, 11, 11, 11, 11, 12, 12, 12, 12, 13, 13, 13, 13, 14, 14, 14, 17, 18}, "cold_unseeded"},
	}
}

// memoEncode builds the scheduling instance and the exact options the
// service will run it under (fixed length, contiguous — the encoding's
// iff needs both).
func memoEncode(fam memoFamily) (*core.Model, exact.Options, error) {
	tp := nphard.ThreePartition{Sizes: fam.sizes, B: fam.b}
	m, err := nphard.EncodeThreePartition(tp)
	if err != nil {
		return nil, exact.Options{}, err
	}
	n := tp.M() * (fam.b + 1)
	return m, exact.Options{MinLen: n, MaxLen: n, RequireContiguous: true, MaxCandidates: 5_000_000}, nil
}

// memoPerturb re-encodes the family with an extra communication path —
// the canonical fingerprint changes, the search problem and hence the
// memo class do not.
func memoPerturb(fam memoFamily, i int) (*core.Model, error) {
	m, _, err := memoEncode(fam)
	if err != nil {
		return nil, err
	}
	// chain length varies per variant: the canonical form is
	// isomorphism-invariant, so same-weight endpoints collapse — but
	// different edge counts never do
	for j := 0; j <= i; j++ {
		m.Comm.AddPath(nphard.ItemElem(j), nphard.ItemElem(j+1))
	}
	return m, nil
}

// memoServiceOpts is the pipeline shape of the suite: analysis and
// heuristic off so every request reaches the exact stage, exact
// options fixed by the family.
func memoServiceOpts(st *store.Store, exopt exact.Options) service.Options {
	return service.Options{
		Store:            st,
		DisableAnalysis:  true,
		DisableHeuristic: true,
		Exact:            exopt,
	}
}

// refuteVia runs one model through svc and returns the exact-stage
// node delta, asserting the class is refuted by the exact tier.
func refuteVia(ctx context.Context, svc *service.Service, m *core.Model, label string) (int64, error) {
	before := svc.Snapshot()["exact_nodes_total"]
	res, err := svc.Schedule(ctx, m)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", label, err)
	}
	if res.Feasible || !res.Decided || res.Source != "exact" {
		return 0, fmt.Errorf("%s: want exact refutation, got %+v", label, res)
	}
	return svc.Snapshot()["exact_nodes_total"] - before, nil
}

// runMemoFamily drives one family through cold solve → restart → warm
// near-miss replays → cold baselines → oracle.
func runMemoFamily(ctx context.Context, fam memoFamily, variants int) (memoFamilyDoc, error) {
	doc := memoFamilyDoc{Name: fam.name, B: fam.b, Sizes: fam.sizes, Oracle: fam.oracle}
	base, exopt, err := memoEncode(fam)
	if err != nil {
		return doc, err
	}
	doc.ScheduleLen = exopt.MaxLen
	key, ok := exact.MemoKey(base, exopt)
	if !ok {
		return doc, fmt.Errorf("%s: no memo key for the family", fam.name)
	}
	doc.MemoKey = key[:16]

	sdir, err := os.MkdirTemp("", "rtbench-memostore-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(sdir)

	// life 1: cold solve, snapshot written back to the store
	st1, err := store.Open(sdir, store.Options{NoSync: true})
	if err != nil {
		return doc, err
	}
	svc1 := service.New(memoServiceOpts(st1, exopt))
	doc.ColdBaseNodes, err = refuteVia(ctx, svc1, base, fam.name+" cold base")
	if err != nil {
		st1.Close()
		return doc, err
	}
	if puts := svc1.Snapshot()["memo_snapshot_puts"]; puts != 1 {
		st1.Close()
		return doc, fmt.Errorf("%s: memo_snapshot_puts = %d after the cold solve, want 1", fam.name, puts)
	}
	rec1, ok := st1.GetMemo(key)
	if !ok {
		st1.Close()
		return doc, fmt.Errorf("%s: cold solve left no memo class in the store", fam.name)
	}
	doc.StoredSigs = len(rec1.Sigs)
	if err := st1.Close(); err != nil {
		return doc, err
	}

	// restart: same directory, fresh store handle, fresh service
	st2, err := store.Open(sdir, store.Options{NoSync: true})
	if err != nil {
		return doc, err
	}
	defer st2.Close()
	svc2 := service.New(memoServiceOpts(st2, exopt))
	// cold baselines run storeless: no seeds, no verdict cache
	cold := service.New(memoServiceOpts(nil, exopt))

	baseFP := core.Fingerprint(base)
	seenFP := map[string]bool{baseFP: true}
	for i := 0; i < variants; i++ {
		v, err := memoPerturb(fam, i)
		if err != nil {
			return doc, err
		}
		fp := core.Fingerprint(v)
		if seenFP[fp] {
			return doc, fmt.Errorf("%s variant %d: fingerprint %s collides — perturbation did not change the class member", fam.name, i, fp[:8])
		}
		seenFP[fp] = true
		vkey, ok := exact.MemoKey(v, exopt)
		if !ok || vkey != key {
			return doc, fmt.Errorf("%s variant %d: memo key diverged — not a near miss", fam.name, i)
		}

		preHits := svc2.Snapshot()["memo_seed_hits"]
		preSigs := svc2.Snapshot()["memo_seed_sigs"]
		warmNodes, err := refuteVia(ctx, svc2, v, fmt.Sprintf("%s warm variant %d", fam.name, i))
		if err != nil {
			return doc, err
		}
		snap := svc2.Snapshot()
		if snap["memo_seed_hits"] != preHits+1 {
			return doc, fmt.Errorf("%s variant %d: warm replay did not seed (hits %d → %d)", fam.name, i, preHits, snap["memo_seed_hits"])
		}
		if snap["store_hits"] != 0 {
			return doc, fmt.Errorf("%s variant %d: near miss was served by the verdict store", fam.name, i)
		}
		coldNodes, err := refuteVia(ctx, cold, v, fmt.Sprintf("%s cold variant %d", fam.name, i))
		if err != nil {
			return doc, err
		}
		if warmNodes <= 0 || coldNodes <= 0 {
			return doc, fmt.Errorf("%s variant %d: degenerate node counts cold=%d warm=%d", fam.name, i, coldNodes, warmNodes)
		}
		doc.Variants = append(doc.Variants, memoVariantDoc{
			Fingerprint: fp[:16],
			ColdNodes:   coldNodes,
			WarmNodes:   warmNodes,
			Ratio:       float64(coldNodes) / float64(warmNodes),
			SeedSigs:    snap["memo_seed_sigs"] - preSigs,
		})
	}
	// the cold solve's exported snapshot size comes from the first
	// variant's seed count (what the store handed back after the cap)
	doc.SnapshotSigs = int(doc.Variants[0].SeedSigs)

	ratios := make([]float64, len(doc.Variants))
	for i, v := range doc.Variants {
		ratios[i] = v.Ratio
	}
	sort.Float64s(ratios)
	doc.MinRatio = ratios[0]
	doc.MedianRatio = ratios[len(ratios)/2]

	// oracle cross-check at the family's tractable tier
	switch fam.oracle {
	case "pruners_off", "memo_off":
		oopt := exopt
		oopt.DisableMemo = true
		if fam.oracle == "pruners_off" {
			oopt.DisableSymmetry = true
			oopt.DisableBounds = true
		}
		_, ost, oerr := exact.FindScheduleCtx(ctx, base, oopt)
		if oerr != nil && !errors.Is(oerr, exact.ErrNotFound) {
			return doc, fmt.Errorf("%s: %s oracle failed: %w", fam.name, fam.oracle, oerr)
		}
		doc.OracleNodes = int64(ost.NodesExplored)
		doc.OracleAgrees = errors.Is(oerr, exact.ErrNotFound) // suite refuted everywhere
	case "cold_unseeded":
		// the storeless baselines above are the unseeded control; they
		// refuted every variant or refuteVia would have failed
		doc.OracleAgrees = true
	default:
		return doc, fmt.Errorf("%s: unknown oracle tier %q", fam.name, fam.oracle)
	}
	return doc, nil
}

// writeMemoStoreJSON runs the near-miss suite over the first n
// families (n <= 0 means all) and writes BENCH_memo_store.json.
func writeMemoStoreJSON(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fams := memoFamilies()
	if n > 0 && n < len(fams) {
		fmt.Printf("memostore: running %d of %d families (smoke)\n", n, len(fams))
		fams = fams[:n]
	}
	ctx := context.Background()
	start := time.Now()
	doc := memoSuiteDoc{
		Suite:      "memo_store",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SigCap:     store.DefaultMemoSigCap,
		MinRatio:   -1,
	}
	for _, fam := range fams {
		fd, err := runMemoFamily(ctx, fam, 3)
		if err != nil {
			return err
		}
		if !fd.OracleAgrees {
			doc.VerdictMismatches++
		}
		if doc.MinRatio < 0 || fd.MinRatio < doc.MinRatio {
			doc.MinRatio = fd.MinRatio
		}
		doc.Families = append(doc.Families, fd)
		fmt.Printf("%-8s n=%-3d cold=%8d sigs=%6d→%-5d warm min/median ratio %.0fx/%.0fx  oracle=%s\n",
			fd.Name, fd.ScheduleLen, fd.ColdBaseNodes, fd.StoredSigs, fd.SnapshotSigs,
			fd.MinRatio, fd.MedianRatio, fd.Oracle)
	}
	doc.DurationMS = time.Since(start).Milliseconds()

	switch {
	case doc.VerdictMismatches > 0:
		return errors.New("seeded verdicts diverged from the oracle")
	case doc.MinRatio < minMemoRatio:
		return fmt.Errorf("warm/cold node ratio %.2f below the %.1fx acceptance floor", doc.MinRatio, minMemoRatio)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_memo_store.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("memo store suite: %d families, worst ratio %.0fx, %d verdict mismatches, %dms\n",
		len(doc.Families), doc.MinRatio, doc.VerdictMismatches, doc.DurationMS)
	fmt.Printf("wrote %s\n", path)
	return nil
}
