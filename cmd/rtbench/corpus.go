package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/service"
	"rtm/internal/workload"
)

// This file implements -corpus: the analytic-tier acceptance suite.
// It draws N distinct isomorphism classes from the layered random-DAG
// generator across three deadline-tightness regimes, pushes every
// class through the full admission pipeline twice — analysis tier off,
// then on — and writes per-tier decision fractions plus the exact-
// search work (wall time, searches, nodes) the tier saved to
// DIR/BENCH_corpus.json. The two runs double as a scale soundness
// check: any verdict disagreement the exact bound cannot explain
// aborts the suite.

const (
	// corpusMaxLenCap bounds the exact stage's automatic schedule
	// length so a refutation-heavy draw cannot stall the suite.
	corpusMaxLenCap = 24
	// corpusMaxCandidates is the per-request exact budget; draws that
	// exhaust it stay undecided, which the suite reports but tolerates.
	corpusMaxCandidates = 20_000
)

// corpusRegime is one band of the corpus mix: a deadline-tightness
// range (Stretch), a period-to-deadline range (PeriodStretch), and the
// asynchronous share of its constraints.
type corpusRegime struct {
	Name      string  `json:"name"`
	StretchLo float64 `json:"stretch_lo"`
	StretchHi float64 `json:"stretch_hi"`
	PeriodLo  float64 `json:"period_lo"`
	PeriodHi  float64 `json:"period_hi"`
	AsyncMax  float64 `json:"async_max"`
	Share     float64 `json:"share"`
	Classes   int     `json:"classes"`
}

// corpusRegimes is the fixed mix. Tight draws mostly refute, loose
// draws mostly construct, the middle band is where the verdict is
// genuinely in play. The anchored band (periodic-heavy, p ≫ d) is
// where the analytic tier earns its keep against the exact search:
// deadline windows that are individually satisfiable but overloaded in
// aggregate defeat the searcher's per-window cuts — it must branch to
// find the contradiction — while the cross-element demand sum refutes
// them in O(model).
func corpusRegimes() []corpusRegime {
	return []corpusRegime{
		{Name: "tight", StretchLo: 1.0, StretchHi: 1.15, PeriodLo: 1.0, PeriodHi: 2.0, AsyncMax: 1.0, Share: 0.25},
		{Name: "mid", StretchLo: 1.2, StretchHi: 1.8, PeriodLo: 1.0, PeriodHi: 2.0, AsyncMax: 1.0, Share: 0.3},
		{Name: "loose", StretchLo: 2.0, StretchHi: 3.5, PeriodLo: 1.0, PeriodHi: 2.0, AsyncMax: 1.0, Share: 0.25},
		{Name: "anchored", StretchLo: 1.0, StretchHi: 1.4, PeriodLo: 2.5, PeriodHi: 6.0, AsyncMax: 0.15, Share: 0.2},
	}
}

// corpusClass is one distinct isomorphism class of the corpus.
type corpusClass struct {
	m      *core.Model
	regime string
	bound  int // the exact stage's MaxLen for this model
}

// corpusVerdict is what one run decided about one class.
type corpusVerdict struct {
	decided    bool
	feasible   bool
	source     string
	witnessLen int
}

// buildCorpus draws classes regime by regime, deduplicating on the
// canonical fingerprint until every regime hits its quota.
func buildCorpus(seed int64, n int) ([]corpusClass, []corpusRegime, error) {
	regimes := corpusRegimes()
	seen := make(map[string]bool, n)
	classes := make([]corpusClass, 0, n)
	for ri := range regimes {
		reg := &regimes[ri]
		quota := int(float64(n) * reg.Share)
		if ri == len(regimes)-1 {
			quota = n - len(classes) // absorb rounding in the last band
		}
		rng := rand.New(rand.NewSource(seed + int64(ri)*7919))
		attempts := 0
		for got := 0; got < quota; attempts++ {
			if attempts > 200*quota+1000 {
				return nil, nil, fmt.Errorf("corpus: regime %s stalled at %d/%d distinct classes", reg.Name, got, quota)
			}
			p := workload.LayeredParams{
				Layers:        1 + rng.Intn(3),
				Width:         1 + rng.Intn(3),
				Density:       0.3 + 0.4*rng.Float64(),
				MaxWeight:     1 + rng.Intn(3),
				Constraints:   1 + rng.Intn(4),
				ChainLen:      1 + rng.Intn(4),
				AsyncFrac:     reg.AsyncMax * rng.Float64(),
				Stretch:       reg.StretchLo + (reg.StretchHi-reg.StretchLo)*rng.Float64(),
				PeriodStretch: reg.PeriodLo + (reg.PeriodHi-reg.PeriodLo)*rng.Float64(),
			}
			m, err := workload.Layered(rng, p)
			if err != nil {
				continue
			}
			fp := core.Fingerprint(m)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			bound := m.Hyperperiod()
			if bound > corpusMaxLenCap {
				bound = corpusMaxLenCap
			}
			classes = append(classes, corpusClass{m: m, regime: reg.Name, bound: bound})
			reg.Classes++
			got++
		}
	}
	return classes, regimes, nil
}

// corpusRun is the measured outcome of pushing the whole corpus
// through one service configuration.
type corpusRun struct {
	Name         string `json:"name"`
	AnalysisTier bool   `json:"analysis_tier"`
	WallMS       int64  `json:"wall_ms"`

	Decided    int `json:"decided"`
	Feasible   int `json:"feasible"`
	Infeasible int `json:"infeasible"`
	Undecided  int `json:"undecided"`

	AnalysisSolved  int64 `json:"analysis_solved"`
	AnalysisRefuted int64 `json:"analysis_refuted"`
	HeuristicSolved int64 `json:"heuristic_solved"`
	Searches        int64 `json:"searches"`
	ExactNodes      int64 `json:"exact_nodes_total"`
	SearchMS        int64 `json:"search_ms"`

	// per-request cold-path latency across the corpus (every class is
	// a cache miss — fresh service, distinct classes)
	P50US int64 `json:"p50_us"`
	P95US int64 `json:"p95_us"`
	P99US int64 `json:"p99_us"`

	FracAnalysis  float64 `json:"frac_analysis"`
	FracHeuristic float64 `json:"frac_heuristic"`
	FracExact     float64 `json:"frac_exact"`
	FracUndecided float64 `json:"frac_undecided"`
}

// runCorpus pushes every class through a fresh service and records
// the per-class verdicts plus the aggregate tier counters.
func runCorpus(name string, classes []corpusClass, analysisTier bool) (corpusRun, []corpusVerdict, error) {
	svc := service.New(service.Options{
		DisableAnalysis:   !analysisTier,
		SearchConcurrency: -1, // sequential callers; never shed
		MaxLenCap:         corpusMaxLenCap,
		Exact:             exact.Options{MaxCandidates: corpusMaxCandidates},
	})
	ctx := context.Background()
	verdicts := make([]corpusVerdict, len(classes))
	lats := make([]time.Duration, 0, len(classes))
	run := corpusRun{Name: name, AnalysisTier: analysisTier}
	start := time.Now()
	for i, c := range classes {
		t0 := time.Now()
		res, err := svc.Schedule(ctx, c.m)
		lats = append(lats, time.Since(t0))
		if err != nil {
			return run, nil, fmt.Errorf("%s: class %d (%s): %w", name, i, core.Fingerprint(c.m), err)
		}
		v := corpusVerdict{decided: res.Decided, feasible: res.Feasible, source: res.Source}
		if res.Schedule != nil {
			v.witnessLen = len(res.Schedule.Slots)
		}
		verdicts[i] = v
		switch {
		case !res.Decided:
			run.Undecided++
		case res.Feasible:
			run.Decided++
			run.Feasible++
		default:
			run.Decided++
			run.Infeasible++
		}
		if (i+1)%500 == 0 {
			fmt.Printf("  %s: %d/%d classes\n", name, i+1, len(classes))
		}
	}
	run.WallMS = time.Since(start).Milliseconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	run.P50US = percentile(lats, 50)
	run.P95US = percentile(lats, 95)
	run.P99US = percentile(lats, 99)
	snap := svc.Metrics().Snapshot()
	run.AnalysisSolved = snap["analysis_solved"]
	run.AnalysisRefuted = snap["analysis_refuted"]
	run.HeuristicSolved = snap["heuristic_solved"]
	run.Searches = snap["searches"]
	run.ExactNodes = snap["exact_nodes_total"]
	run.SearchMS = snap["search_ns_total"] / 1e6
	n := float64(len(classes))
	if n > 0 {
		run.FracAnalysis = float64(run.AnalysisSolved+run.AnalysisRefuted) / n
		run.FracHeuristic = float64(run.HeuristicSolved) / n
		run.FracExact = float64(run.Searches) / n
		run.FracUndecided = float64(run.Undecided) / n
	}
	return run, verdicts, nil
}

// checkParity cross-checks the two runs' verdicts class by class.
// A disagreement is a soundness bug unless the exact bound explains
// it: an exact "infeasible" only proves no schedule up to the MaxLen
// bound, so a verified witness longer than that bound from the other
// run is a bound artifact, not a contradiction. An analytic
// refutation claims every length, so any verified witness against it
// is fatal.
func checkParity(classes []corpusClass, off, on []corpusVerdict) (agree, partial, boundArtifacts int, err error) {
	for i := range classes {
		a, b := off[i], on[i]
		if !a.decided || !b.decided {
			partial++
			continue
		}
		if a.feasible == b.feasible {
			agree++
			continue
		}
		feas, infeas := a, b
		if b.feasible {
			feas, infeas = b, a
		}
		if infeas.source == "analysis" || feas.witnessLen <= classes[i].bound {
			return 0, 0, 0, fmt.Errorf(
				"soundness mismatch on class %s (regime %s): feasible via %s (witness len %d) vs infeasible via %s (bound %d)",
				core.Fingerprint(classes[i].m), classes[i].regime,
				feas.source, feas.witnessLen, infeas.source, classes[i].bound)
		}
		boundArtifacts++
	}
	return agree, partial, boundArtifacts, nil
}

// corpusDoc is the BENCH_corpus.json document.
type corpusDoc struct {
	Suite      string `json:"suite"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Seed       int64  `json:"seed"`
	Classes    int    `json:"classes"`

	Regimes []corpusRegime `json:"regimes"`
	Runs    []corpusRun    `json:"runs"` // [analysis off, analysis on]

	ParityAgree    int `json:"parity_agree"`
	ParityPartial  int `json:"parity_partial"`
	BoundArtifacts int `json:"bound_artifacts"`

	SearchesSaved   int64   `json:"searches_saved"`
	ExactNodesSaved int64   `json:"exact_nodes_saved"`
	WallMSSaved     int64   `json:"wall_ms_saved"`
	SpeedupX        float64 `json:"speedup_x"`
	P50SpeedupX     float64 `json:"p50_speedup_x"`
}

// writeCorpusJSON runs the corpus suite and writes BENCH_corpus.json
// into dir.
func writeCorpusJSON(dir string, n int, seed int64) error {
	if n <= 0 {
		return fmt.Errorf("corpus: class count must be positive, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fmt.Printf("drawing %d distinct classes (seed %d)...\n", n, seed)
	classes, regimes, err := buildCorpus(seed, n)
	if err != nil {
		return err
	}
	for _, r := range regimes {
		fmt.Printf("  regime %-5s stretch [%.2f, %.2f]: %d classes\n", r.Name, r.StretchLo, r.StretchHi, r.Classes)
	}

	offRun, offV, err := runCorpus("analysis_off", classes, false)
	if err != nil {
		return err
	}
	onRun, onV, err := runCorpus("analysis_on", classes, true)
	if err != nil {
		return err
	}
	agree, partial, artifacts, err := checkParity(classes, offV, onV)
	if err != nil {
		return err
	}

	doc := corpusDoc{
		Suite:          "corpus",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Seed:           seed,
		Classes:        len(classes),
		Regimes:        regimes,
		Runs:           []corpusRun{offRun, onRun},
		ParityAgree:    agree,
		ParityPartial:  partial,
		BoundArtifacts: artifacts,

		SearchesSaved:   offRun.Searches - onRun.Searches,
		ExactNodesSaved: offRun.ExactNodes - onRun.ExactNodes,
		WallMSSaved:     offRun.WallMS - onRun.WallMS,
	}
	if onRun.WallMS > 0 {
		doc.SpeedupX = float64(offRun.WallMS) / float64(onRun.WallMS)
	}
	if onRun.P50US > 0 {
		doc.P50SpeedupX = float64(offRun.P50US) / float64(onRun.P50US)
	}

	for _, r := range doc.Runs {
		fmt.Printf("%-12s wall=%dms p50=%dµs p95=%dµs analysis=%.1f%% heuristic=%.1f%% exact=%.1f%% undecided=%.1f%% searches=%d nodes=%d\n",
			r.Name, r.WallMS, r.P50US, r.P95US, 100*r.FracAnalysis, 100*r.FracHeuristic, 100*r.FracExact, 100*r.FracUndecided,
			r.Searches, r.ExactNodes)
	}
	fmt.Printf("parity: %d agree, %d partial, %d bound artifacts; saved %d searches / %d nodes / %dms (wall %.2fx, p50 %.2fx)\n",
		agree, partial, artifacts, doc.SearchesSaved, doc.ExactNodesSaved, doc.WallMSSaved, doc.SpeedupX, doc.P50SpeedupX)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_corpus.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d classes)\n", path, len(classes))
	return nil
}
