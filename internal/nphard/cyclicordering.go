package nphard

import (
	"fmt"

	"rtm/internal/core"
)

// CyclicOrdering is an instance of the CYCLIC ORDERING problem: given
// a ground set of n items and a collection of ordered triples
// (a, b, c), is there a circular arrangement of the items such that
// every triple occurs in clockwise order (reading clockwise from a,
// b appears before c)? NP-complete (Garey & Johnson; used by the
// paper for Theorem 2(ii)).
type CyclicOrdering struct {
	N       int      // ground set {0..N-1}
	Triples [][3]int // ordered triples
}

// Validate checks indices.
func (co CyclicOrdering) Validate() error {
	if co.N < 3 {
		return fmt.Errorf("nphard: cyclic ordering needs ≥ 3 items, got %d", co.N)
	}
	for _, t := range co.Triples {
		for _, v := range t {
			if v < 0 || v >= co.N {
				return fmt.Errorf("nphard: triple %v out of range [0,%d)", t, co.N)
			}
		}
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			return fmt.Errorf("nphard: triple %v has repeated items", t)
		}
	}
	return nil
}

// clockwise reports whether b appears before c when reading the
// circular permutation clockwise starting just after a.
func clockwise(pos []int, a, b, c int) bool {
	n := len(pos)
	pb := (pos[b] - pos[a] + n) % n
	pc := (pos[c] - pos[a] + n) % n
	return pb < pc
}

// Satisfied reports whether the circular permutation (perm[i] = item
// at position i) satisfies every triple.
func (co CyclicOrdering) Satisfied(perm []int) bool {
	if len(perm) != co.N {
		return false
	}
	pos := make([]int, co.N)
	for i, v := range perm {
		pos[v] = i
	}
	for _, t := range co.Triples {
		if !clockwise(pos, t[0], t[1], t[2]) {
			return false
		}
	}
	return true
}

// Solve searches all circular permutations (item 0 pinned at position
// 0, eliminating rotational symmetry) and returns a satisfying
// arrangement when one exists. Worst case (n−1)! — again, the point.
func (co CyclicOrdering) Solve() ([]int, bool) {
	if co.Validate() != nil {
		return nil, false
	}
	perm := make([]int, co.N)
	used := make([]bool, co.N)
	perm[0] = 0
	used[0] = true
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == co.N {
			return co.Satisfied(perm)
		}
		for v := 1; v < co.N; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[i] = v
			if rec(i + 1) {
				return true
			}
			used[v] = false
		}
		return false
	}
	if rec(1) {
		return perm, true
	}
	return nil, false
}

// OrderElem returns the element name of ground item i in the
// scheduling encoding.
func OrderElem(i int) string { return fmt.Sprintf("ord%d", i) }

// AnchorElem is the single differently-deadlined operation of the
// Theorem 2(ii) instance family.
const AnchorElem = "anchor"

// EncodeCyclicCore builds the scheduling core of the Theorem 2(ii)
// instance family: every task graph is a single operation, the
// functional elements cannot be pipelined (weight W non-preemptible),
// and all deadlines are equal except the anchor's. The common
// deadline (N+1)·W forces each item operation to occur exactly once
// per cycle of length (N+1)·W, so feasible contiguous schedules of
// that length are exactly the circular arrangements of the ground
// set around the anchor.
//
// The triple constraints of a full CYCLIC ORDERING reduction are NOT
// representable by additional single-operation constraints in this
// encoder; they are checked against the decoded arrangement by the
// caller (see DecodeArrangement and CyclicOrdering.Satisfied). The
// encoder therefore reproduces the *instance family* and search
// structure of Theorem 2(ii); the paper's full gadget is in [MOK 83].
func EncodeCyclicCore(n, w int) (*core.Model, error) {
	if n < 3 || w < 1 {
		return nil, fmt.Errorf("nphard: need n ≥ 3 and w ≥ 1, got n=%d w=%d", n, w)
	}
	m := core.NewModel()
	cycle := (n + 1) * w
	for i := 0; i < n; i++ {
		m.Comm.AddElement(OrderElem(i), w)
		m.AddConstraint(&core.Constraint{
			Name:     fmt.Sprintf("c_ord%d", i),
			Task:     core.ChainTask(OrderElem(i)),
			Period:   cycle,
			Deadline: cycle,
			Kind:     core.Periodic,
		})
	}
	m.Comm.AddElement(AnchorElem, w)
	m.AddConstraint(&core.Constraint{
		Name:     "c_anchor",
		Task:     core.ChainTask(AnchorElem),
		Period:   cycle,
		Deadline: w, // the one different deadline: pinned at cycle start
		Kind:     core.Periodic,
	})
	return m, nil
}

// DecodeArrangement reads the circular arrangement of ground items
// off a feasible contiguous schedule of the encoded core: the order
// of first appearance of each item element after the anchor.
func DecodeArrangement(n, w int, slots []string) ([]int, bool) {
	if len(slots) != (n+1)*w {
		return nil, false
	}
	var perm []int
	seen := map[int]bool{}
	for _, s := range slots {
		var i int
		if _, err := fmt.Sscanf(s, "ord%d", &i); err == nil {
			if !seen[i] {
				seen[i] = true
				perm = append(perm, i)
			}
		}
	}
	if len(perm) != n {
		return nil, false
	}
	return perm, true
}
