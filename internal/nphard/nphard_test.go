package nphard

import (
	"testing"

	"rtm/internal/exact"
	"rtm/internal/sched"
)

func yes3P() ThreePartition {
	// m=2, B=16, sizes in (4,8): {6,5,5} {6,5,5}
	return ThreePartition{Sizes: []int{6, 5, 5, 6, 5, 5}, B: 16}
}

func no3P() ThreePartition {
	// m=2, B=16, sizes in (4,8): {7,5,5,5,5,5}: the triple holding
	// the 7 sums to 17 ≠ 16 -> NO. Σ = 32 = 2·16 ✓
	return ThreePartition{Sizes: []int{7, 5, 5, 5, 5, 5}, B: 16}
}

func TestThreePartitionValidate(t *testing.T) {
	if err := yes3P().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ThreePartition{Sizes: []int{1, 2}, B: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-multiple-of-3 accepted")
	}
	bad2 := ThreePartition{Sizes: []int{1, 1, 1}, B: 5}
	if err := bad2.Validate(); err == nil {
		t.Fatal("wrong sum accepted")
	}
	bad3 := ThreePartition{Sizes: []int{-1, 2, 2}, B: 1}
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestThreePartitionSolve(t *testing.T) {
	groups, ok := yes3P().Solve()
	if !ok {
		t.Fatal("YES instance not solved")
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	tp := yes3P()
	for _, g := range groups {
		if tp.Sizes[g[0]]+tp.Sizes[g[1]]+tp.Sizes[g[2]] != tp.B {
			t.Fatalf("bad triple %v", g)
		}
	}
	if _, ok := no3P().Solve(); ok {
		t.Fatal("NO instance solved")
	}
}

func TestEncodeThreePartitionYES(t *testing.T) {
	tp := yes3P()
	m, err := EncodeThreePartition(tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	groups, _ := tp.Solve()
	s := ScheduleFromPartition(tp, groups)
	if s.Len() != tp.M()*(tp.B+1) {
		t.Fatalf("schedule length %d", s.Len())
	}
	if !sched.Contiguous(m.Comm, s) {
		t.Fatal("canonical schedule not contiguous")
	}
	rep := sched.Check(m, s)
	if !rep.Feasible {
		t.Fatalf("canonical schedule infeasible:\n%s", rep)
	}
	// decode recovers a valid partition
	dec, ok := DecodePartition(tp, s)
	if !ok {
		t.Fatal("decode failed")
	}
	for _, g := range dec {
		if tp.Sizes[g[0]]+tp.Sizes[g[1]]+tp.Sizes[g[2]] != tp.B {
			t.Fatalf("decoded triple %v wrong", g)
		}
	}
}

func TestEncodeThreePartitionNOIsInfeasible(t *testing.T) {
	tp := no3P()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.Solve(); ok {
		t.Fatal("instance unexpectedly YES")
	}
	m, err := EncodeThreePartition(tp)
	if err != nil {
		t.Fatal(err)
	}
	n := tp.M() * (tp.B + 1)
	_, _, err = exact.FindSchedule(m, exact.Options{
		MinLen: n, MaxLen: n, RequireContiguous: true, MaxCandidates: 2_000_000,
	})
	if err == nil {
		t.Fatal("NO instance has a feasible schedule — reduction broken")
	}
}

func TestExactSolvesEncodedYES(t *testing.T) {
	// tiny YES instance for the exact searcher: m=1, B=7, {3,2,2}
	tp := ThreePartition{Sizes: []int{3, 2, 2}, B: 7}
	m, err := EncodeThreePartition(tp)
	if err != nil {
		t.Fatal(err)
	}
	n := tp.M() * (tp.B + 1)
	s, _, err := exact.FindSchedule(m, exact.Options{MinLen: n, MaxLen: n, RequireContiguous: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodePartition(tp, s); !ok {
		t.Fatalf("found schedule does not decode: %v", s)
	}
}

func TestCyclicOrderingValidate(t *testing.T) {
	co := CyclicOrdering{N: 4, Triples: [][3]int{{0, 1, 2}}}
	if err := co.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CyclicOrdering{N: 2}).Validate(); err == nil {
		t.Fatal("n<3 accepted")
	}
	if err := (CyclicOrdering{N: 4, Triples: [][3]int{{0, 0, 1}}}).Validate(); err == nil {
		t.Fatal("repeated item accepted")
	}
	if err := (CyclicOrdering{N: 4, Triples: [][3]int{{0, 1, 9}}}).Validate(); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestCyclicOrderingSatisfied(t *testing.T) {
	co := CyclicOrdering{N: 4, Triples: [][3]int{{0, 1, 2}}}
	if !co.Satisfied([]int{0, 1, 2, 3}) {
		t.Fatal("0,1,2,3 should satisfy (0,1,2)")
	}
	if co.Satisfied([]int{0, 2, 1, 3}) {
		t.Fatal("0,2,1,3 should violate (0,1,2)")
	}
	// wrap-around: arrangement 1,2,3,0 — reading clockwise from 0:
	// 1 then 2 -> satisfied
	if !co.Satisfied([]int{1, 2, 3, 0}) {
		t.Fatal("rotation should not matter")
	}
}

func TestCyclicOrderingSolve(t *testing.T) {
	yes := CyclicOrdering{N: 4, Triples: [][3]int{{0, 1, 2}, {1, 2, 3}}}
	perm, ok := yes.Solve()
	if !ok {
		t.Fatal("YES instance unsolved")
	}
	if !yes.Satisfied(perm) {
		t.Fatalf("returned arrangement invalid: %v", perm)
	}
	// contradictory triples: (0,1,2) and (0,2,1) cannot both hold
	no := CyclicOrdering{N: 3, Triples: [][3]int{{0, 1, 2}, {0, 2, 1}}}
	if _, ok := no.Solve(); ok {
		t.Fatal("NO instance solved")
	}
}

func TestEncodeCyclicCore(t *testing.T) {
	m, err := EncodeCyclicCore(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// exactly one deadline differs
	diff := 0
	for _, c := range m.Constraints {
		if c.Deadline != (3+1)*2 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("differently-deadlined constraints = %d, want 1", diff)
	}
	if _, err := EncodeCyclicCore(2, 1); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestCyclicCoreSchedulesAreArrangements(t *testing.T) {
	n, w := 3, 1
	m, err := EncodeCyclicCore(n, w)
	if err != nil {
		t.Fatal(err)
	}
	cycle := (n + 1) * w
	s, _, err := exact.FindSchedule(m, exact.Options{
		MinLen: cycle, MaxLen: cycle, RequireContiguous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	perm, ok := DecodeArrangement(n, w, s.Slots)
	if !ok {
		t.Fatalf("schedule does not decode to an arrangement: %v", s)
	}
	if len(perm) != n {
		t.Fatalf("perm = %v", perm)
	}
	// anchor pinned at slot 0..w
	for i := 0; i < w; i++ {
		if s.Slots[i] != AnchorElem {
			t.Fatalf("anchor not pinned: %v", s)
		}
	}
}

func TestDecodeArrangementRejects(t *testing.T) {
	if _, ok := DecodeArrangement(3, 1, []string{"anchor", "ord0"}); ok {
		t.Fatal("short slots accepted")
	}
	if _, ok := DecodeArrangement(3, 1, []string{"anchor", "ord0", "ord0", "ord1"}); ok {
		t.Fatal("missing item accepted")
	}
}

func TestDecodePartitionRejects(t *testing.T) {
	tp := yes3P()
	if _, ok := DecodePartition(tp, sched.New("x")); ok {
		t.Fatal("wrong length accepted")
	}
	groups, _ := tp.Solve()
	s := ScheduleFromPartition(tp, groups)
	s.Slots[0] = "item0" // clobber the separator
	if _, ok := DecodePartition(tp, s); ok {
		t.Fatal("missing separator accepted")
	}
}
