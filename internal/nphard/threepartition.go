// Package nphard makes the paper's Theorem 2 hardness constructions
// executable: instance generators mapping 3-PARTITION and CYCLIC
// ORDERING into restricted graph-based scheduling instances, brute
// force solvers for the source problems, and decoders recovering a
// combinatorial solution from a feasible schedule.
//
// Theorem 2(i) restricts instances to unit computation times and task
// chains of length 1 or 3; our executable construction uses the
// equivalent no-pipelining form in which an item of size s is a
// single non-preemptible operation of weight s (a non-preemptible
// weight-s op and a rigid chain of s unit ops are interchangeable),
// plus a pinned unit separator. The encoding is exact: the scheduling
// instance is feasible if and only if the 3-PARTITION instance is a
// YES instance.
package nphard

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// ThreePartition is an instance of the 3-PARTITION problem: 3m items
// with sizes summing to m·B; can the items be split into m triples
// each summing exactly to B? The problem is NP-hard in the strong
// sense when B/4 < s_j < B/2 (which forces every group to be a
// triple).
type ThreePartition struct {
	Sizes []int // 3m item sizes
	B     int   // target sum per triple
}

// M returns the number of triples.
func (tp ThreePartition) M() int { return len(tp.Sizes) / 3 }

// Validate checks the structural conditions.
func (tp ThreePartition) Validate() error {
	if len(tp.Sizes) == 0 || len(tp.Sizes)%3 != 0 {
		return fmt.Errorf("nphard: item count %d is not a positive multiple of 3", len(tp.Sizes))
	}
	sum := 0
	for _, s := range tp.Sizes {
		if s <= 0 {
			return fmt.Errorf("nphard: non-positive size %d", s)
		}
		if 4*s <= tp.B || 2*s >= tp.B {
			return fmt.Errorf("nphard: size %d outside (B/4, B/2) = (%d/4, %d/2); the strong "+
				"NP-hardness form requires it so every group is a triple", s, tp.B, tp.B)
		}
		sum += s
	}
	if sum != tp.M()*tp.B {
		return fmt.Errorf("nphard: sizes sum to %d, want m·B = %d", sum, tp.M()*tp.B)
	}
	return nil
}

// Solve decides the instance by exhaustive search over triple
// groupings and returns a witness partition (item indices grouped in
// triples) when one exists. Worst case is exponential in m — that is
// the point of Theorem 2.
func (tp ThreePartition) Solve() ([][3]int, bool) {
	if tp.Validate() != nil {
		return nil, false
	}
	n := len(tp.Sizes)
	used := make([]bool, n)
	var groups [][3]int
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		// first unused item anchors the next triple (canonical order)
		first := -1
		for i := 0; i < n; i++ {
			if !used[i] {
				first = i
				break
			}
		}
		used[first] = true
		for j := first + 1; j < n; j++ {
			if used[j] || tp.Sizes[first]+tp.Sizes[j] >= tp.B {
				continue
			}
			used[j] = true
			for k := j + 1; k < n; k++ {
				if used[k] || tp.Sizes[first]+tp.Sizes[j]+tp.Sizes[k] != tp.B {
					continue
				}
				used[k] = true
				groups = append(groups, [3]int{first, j, k})
				if rec(remaining - 1) {
					return true
				}
				groups = groups[:len(groups)-1]
				used[k] = false
			}
			used[j] = false
		}
		used[first] = false
		return false
	}
	if rec(tp.M()) {
		return groups, true
	}
	return nil, false
}

// ItemElem returns the element name of item j.
func ItemElem(j int) string { return fmt.Sprintf("item%d", j) }

// SeparatorElem is the pinned frame separator.
const SeparatorElem = "sep"

// EncodeThreePartition maps a 3-PARTITION instance to a graph-based
// scheduling instance:
//
//   - a separator element of weight 1 with a periodic constraint
//     (period B+1, deadline 1), pinning a separator slot at every
//     multiple of B+1;
//   - per item j, an element of weight s_j with a periodic constraint
//     (period m(B+1), deadline m(B+1)).
//
// With non-preemptible (unpipelined) executions, a cycle of length
// m(B+1) is exactly full: the separators carve m frames of B slots
// and each item must be packed whole into some frame, so a feasible
// contiguous schedule of length m(B+1) exists iff the items
// 3-partition. (Items are sized B/4 < s < B/2, so exactly three fit
// per frame.)
func EncodeThreePartition(tp ThreePartition) (*core.Model, error) {
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	m := core.NewModel()
	frame := tp.B + 1
	cycle := tp.M() * frame
	m.Comm.AddElement(SeparatorElem, 1)
	m.AddConstraint(&core.Constraint{
		Name:     "sep",
		Task:     core.ChainTask(SeparatorElem),
		Period:   frame,
		Deadline: 1,
		Kind:     core.Periodic,
	})
	for j, s := range tp.Sizes {
		m.Comm.AddElement(ItemElem(j), s)
		m.AddConstraint(&core.Constraint{
			Name:     fmt.Sprintf("c_item%d", j),
			Task:     core.ChainTask(ItemElem(j)),
			Period:   cycle,
			Deadline: cycle,
			Kind:     core.Periodic,
		})
	}
	return m, nil
}

// ScheduleFromPartition builds the canonical feasible schedule for a
// YES instance from a witness partition: frame k starts with the
// separator followed by its triple's items back to back.
func ScheduleFromPartition(tp ThreePartition, groups [][3]int) *sched.Schedule {
	frame := tp.B + 1
	slots := make([]string, tp.M()*frame)
	for k, g := range groups {
		at := k * frame
		slots[at] = SeparatorElem
		at++
		for _, j := range g[:] {
			for i := 0; i < tp.Sizes[j]; i++ {
				slots[at] = ItemElem(j)
				at++
			}
		}
	}
	return &sched.Schedule{Slots: slots}
}

// DecodePartition recovers a triple partition from a feasible
// contiguous schedule of the encoded instance. It returns false if
// the schedule does not have the expected frame structure.
func DecodePartition(tp ThreePartition, s *sched.Schedule) ([][3]int, bool) {
	frame := tp.B + 1
	if s.Len() != tp.M()*frame {
		return nil, false
	}
	var groups [][3]int
	for k := 0; k < tp.M(); k++ {
		if s.Slots[k*frame] != SeparatorElem {
			return nil, false
		}
		seen := map[string]bool{}
		var triple []int
		sum := 0
		for i := k*frame + 1; i < (k+1)*frame; i++ {
			name := s.Slots[i]
			if name == sched.Idle || name == SeparatorElem {
				return nil, false
			}
			if !seen[name] {
				seen[name] = true
				var j int
				if _, err := fmt.Sscanf(name, "item%d", &j); err != nil {
					return nil, false
				}
				triple = append(triple, j)
				sum += tp.Sizes[j]
			}
		}
		if len(triple) != 3 || sum != tp.B {
			return nil, false
		}
		sort.Ints(triple)
		groups = append(groups, [3]int{triple[0], triple[1], triple[2]})
	}
	return groups, true
}
