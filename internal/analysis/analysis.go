// Package analysis provides static schedulability analysis for
// graph-based models: per-constraint bounds, a necessary capacity
// condition on feasibility of any static schedule, and the sufficient
// conditions the paper states (Theorem 3). The necessary condition
// lets callers reject hopeless instances without search; the
// sufficient side certifies instances without verification.
package analysis

import (
	"fmt"
	"strings"

	"rtm/internal/core"
	"rtm/internal/heuristic"
)

// ConstraintInfo summarizes one timing constraint.
type ConstraintInfo struct {
	Name string
	Kind core.Kind
	// Work is the total computation time of the task graph — a lower
	// bound on the completion span of any execution on one processor.
	Work int
	// CriticalPath is the maximum-weight directed path through the
	// task graph — the lower bound that survives even unlimited
	// parallelism.
	CriticalPath int
	// Slack is Deadline − Work; negative means trivially infeasible.
	Slack int
	// Density is Work/Deadline.
	Density float64
}

// Report is a full static analysis of one model.
type Report struct {
	Constraints []ConstraintInfo
	// ElementPressure maps each functional element to the minimum
	// long-run fraction of processor slots it must occupy in any
	// feasible schedule: max over constraints of (demanded slots /
	// window length). Sharing lets one execution serve several
	// constraints, hence max rather than sum.
	ElementPressure map[string]float64
	// TotalPressure is the sum of element pressures — must be ≤ 1 in
	// any feasible single-processor schedule.
	TotalPressure float64
	// NecessaryOK is false when some necessary condition fails (the
	// model is certainly infeasible).
	NecessaryOK bool
	// NecessaryFailures lists which conditions failed.
	NecessaryFailures []string
	// Theorem3OK is true when the paper's sufficient condition
	// certifies the model (asynchronous-only, hypotheses (i)–(iii)).
	Theorem3OK bool
}

// Analyze computes the full report. The model must validate.
func Analyze(m *core.Model) (*Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := &Report{
		ElementPressure: make(map[string]float64),
		NecessaryOK:     true,
	}
	for _, c := range m.Constraints {
		w := c.ComputationTime(m.Comm)
		weight := make(map[string]int, c.Task.G.NumNodes())
		for _, n := range c.Task.Nodes() {
			weight[n] = m.Comm.WeightOf(c.Task.ElementOf(n))
		}
		_, cp, err := c.Task.G.CriticalPath(weight)
		if err != nil {
			return nil, fmt.Errorf("analysis: constraint %q: %w", c.Name, err)
		}
		info := ConstraintInfo{
			Name:         c.Name,
			Kind:         c.Kind,
			Work:         w,
			CriticalPath: cp,
			Slack:        c.Deadline - w,
			Density:      float64(w) / float64(c.Deadline),
		}
		r.Constraints = append(r.Constraints, info)
		if info.Slack < 0 {
			r.NecessaryOK = false
			r.NecessaryFailures = append(r.NecessaryFailures,
				fmt.Sprintf("constraint %q needs %d units inside deadline %d", c.Name, w, c.Deadline))
		}

		// element pressure: demanded slots per window length
		window := c.Deadline
		if c.Kind == core.Periodic && c.Period > window {
			// for periodic constraints with d ≤ p, one execution per
			// period suffices, so the long-run rate is work/period
			window = c.Period
		}
		need := make(map[string]int)
		for _, n := range c.Task.Nodes() {
			e := c.Task.ElementOf(n)
			need[e] += m.Comm.WeightOf(e)
		}
		for e, k := range need {
			p := float64(k) / float64(window)
			if p > r.ElementPressure[e] {
				r.ElementPressure[e] = p
			}
		}
	}
	for _, p := range r.ElementPressure {
		r.TotalPressure += p
	}
	if r.TotalPressure > 1+1e-9 {
		r.NecessaryOK = false
		r.NecessaryFailures = append(r.NecessaryFailures,
			fmt.Sprintf("total element pressure %.3f exceeds processor capacity 1", r.TotalPressure))
	}
	if refuted, why := DemandRefute(m); refuted {
		r.NecessaryOK = false
		r.NecessaryFailures = append(r.NecessaryFailures, why)
	}
	r.Theorem3OK = heuristic.CheckTheorem3Hypotheses(m) == nil
	return r, nil
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("constraint analysis:\n")
	for _, c := range r.Constraints {
		fmt.Fprintf(&b, "  %-12s %-12s work=%-4d critical-path=%-4d slack=%-4d density=%.3f\n",
			c.Name, c.Kind, c.Work, c.CriticalPath, c.Slack, c.Density)
	}
	fmt.Fprintf(&b, "total element pressure: %.3f (must be ≤ 1)\n", r.TotalPressure)
	fmt.Fprintf(&b, "necessary conditions: %v\n", r.NecessaryOK)
	for _, f := range r.NecessaryFailures {
		fmt.Fprintf(&b, "  failure: %s\n", f)
	}
	fmt.Fprintf(&b, "Theorem 3 sufficient condition: %v\n", r.Theorem3OK)
	return b.String()
}

// Verdict compresses the report into a three-valued answer.
type Verdict int

const (
	// Infeasible: a necessary condition fails; no static schedule
	// exists.
	Infeasible Verdict = iota
	// Feasible: a sufficient condition holds; a static schedule
	// exists (and the constructive scheduler will find one).
	Feasible
	// Unknown: neither side decides; search is required (the general
	// problem is NP-hard — the paper's Theorem 2).
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	default:
		return "unknown"
	}
}

// Decide returns the three-valued schedulability verdict for m.
func Decide(m *core.Model) (Verdict, *Report, error) {
	r, err := Analyze(m)
	if err != nil {
		return Unknown, nil, err
	}
	switch {
	case !r.NecessaryOK:
		return Infeasible, r, nil
	case r.Theorem3OK:
		return Feasible, r, nil
	default:
		return Unknown, r, nil
	}
}
