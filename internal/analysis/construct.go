package analysis

import (
	"rtm/internal/core"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

// The constructive YES side of the analytic tier: a generalized form
// of the paper's Theorem-3 argument. Each timing constraint is served
// by a periodic server — an asynchronous constraint (C, p, d) by one
// with P + D ≤ d and D ≥ w (an invocation at any instant is picked up
// within P and finished within a further D, hence inside its window),
// a periodic constraint simply by itself (P = p, D = min(p, d)). A
// cheap density screen decides whether the server set is worth laying
// out; if so, one deterministic EDF layout over the hyperperiod
// materializes the candidate schedule, and sched.Check is the judge.
//
// Soundness is therefore by construction, not by the screen: Construct
// never certifies anything — it returns a schedule only after the
// Checker has verified it against the model's exact trace semantics.
// A loose screen costs a wasted O(hyperperiod) layout, never a wrong
// verdict.

// constructMaxLen caps the hyperperiod (= witness length) Construct is
// willing to lay out; beyond it the analytic tier defers to the
// heuristic and exact tiers rather than build huge witnesses.
const constructMaxLen = 512

// Construction is a verified analytic witness: the schedule, the
// server parameters that produced it, and the Checker report proving
// it.
type Construction struct {
	Schedule *sched.Schedule
	// Servers maps constraint name to the chosen {period, deadline}.
	Servers map[string][2]int
	Report  *sched.Report
}

// Construct attempts the generalized Theorem-3 construction on m. It
// returns (witness, true, nil) only when the materialized schedule
// passes sched.Check; (nil, false, nil) means the screen or the
// verification declined — never that m is infeasible. The model must
// validate.
func Construct(m *core.Model) (*Construction, bool, error) {
	if err := m.Validate(); err != nil {
		return nil, false, err
	}
	params, ok := serverParams(m)
	if !ok {
		return nil, false, nil
	}
	// hypothesis (iii) — pipelinable elements — is native to the trace
	// semantics, so the unit-preemption layout is tried first; the
	// run-to-completion layout is a fallback that sometimes verifies
	// when interleaving breaks a precedence chain.
	for _, preemptive := range []bool{true, false} {
		s, laid, err := heuristic.LayoutServers(m, params, preemptive)
		if err != nil {
			return nil, false, err
		}
		if !laid {
			continue
		}
		rep := sched.Check(m, s)
		if rep.Feasible {
			return &Construction{Schedule: s, Servers: params, Report: rep}, true, nil
		}
	}
	return nil, false, nil
}

// serverParams picks the per-constraint server parameters and applies
// the screen: balanced Theorem-3 split for asynchronous constraints
// (requires ⌊d/2⌋ ≥ w so P ≥ ⌈d/2⌉ ≥ 1), identity servers for periodic
// ones, rejected when the transformed density Σ w/min(P, D) exceeds 1
// (EDF cannot fit the per-window demand) or the hyperperiod exceeds
// constructMaxLen.
func serverParams(m *core.Model) (map[string][2]int, bool) {
	params := make(map[string][2]int, len(m.Constraints))
	density := 0.0
	hyper := 1
	for _, c := range m.Constraints {
		w := c.ComputationTime(m.Comm)
		var p, d int
		switch c.Kind {
		case core.Periodic:
			p = c.Period
			d = c.Deadline
			if d > p {
				d = p
			}
			if w > d {
				return nil, false
			}
		case core.Asynchronous:
			d = c.Deadline / 2
			if d < w {
				return nil, false // Theorem-3 hypothesis ⌊d/2⌋ ≥ w fails
			}
			p = c.Deadline - d // P = ⌈d/2⌉
			if p < 1 {
				return nil, false
			}
		default:
			return nil, false
		}
		params[c.Name] = [2]int{p, d}
		tight := p
		if d < tight {
			tight = d
		}
		if w > 0 && tight == 0 {
			return nil, false
		}
		if tight > 0 {
			density += float64(w) / float64(tight)
		}
		hyper = hyper / gcdInt(hyper, p) * p
		if hyper > constructMaxLen {
			return nil, false
		}
	}
	if density > 1+1e-9 {
		return nil, false
	}
	return params, true
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
