package analysis_test

import (
	"math/rand"
	"testing"

	"rtm/internal/analysis"
	"rtm/internal/exact"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

// FuzzAnalysisSound is the differential soundness target for the
// analytic tier: on corpus-style random models, DecideFast's verdict
// may never contradict the exact oracle. An Infeasible verdict claims
// no cyclic schedule of ANY length exists, so finding one at any
// bounded length is a refutation of the refuter; a Feasible verdict
// must ship a witness the independent Checker accepts. Unknown is
// always allowed — the tier's only failure mode is being wrong, never
// being incomplete.
func FuzzAnalysisSound(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), uint8(10), uint8(12))
	f.Add(int64(42), uint8(3), uint8(3), uint8(0), uint8(30))
	f.Add(int64(7), uint8(1), uint8(2), uint8(25), uint8(2))
	f.Add(int64(99), uint8(4), uint8(1), uint8(14), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, shape, cons, tight, frac uint8) {
		rng := rand.New(rand.NewSource(seed))
		p := workload.LayeredParams{
			Layers:      1 + int(shape%3),
			Width:       1 + int(shape/3%2),
			Density:     0.5,
			MaxWeight:   1 + int(shape%2),
			Constraints: 1 + int(cons%3),
			ChainLen:    1 + int(cons/3%3),
			AsyncFrac:   float64(frac%100) / 100,
			// stretch 1.0–3.9: tight draws refute, loose draws construct
			Stretch:       1.0 + float64(tight%30)/10,
			PeriodStretch: 1.0 + float64(tight%20)/20,
		}
		m, err := workload.Layered(rng, p)
		if err != nil {
			t.Skip()
		}
		fd, err := analysis.DecideFast(m)
		if err != nil {
			t.Fatalf("DecideFast on a validated model: %v", err)
		}
		switch fd.Verdict {
		case analysis.Infeasible:
			bound := m.Hyperperiod()
			if bound > 10 {
				bound = 10
			}
			ok, _, err := exact.Feasible(m, bound)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("DecideFast refuted a feasible model (reason %q): %+v", fd.Reason, m.Constraints)
			}
		case analysis.Feasible:
			if fd.Witness == nil {
				t.Fatal("feasible verdict without a witness")
			}
			if !sched.Feasible(m, fd.Witness) {
				t.Fatalf("analytic witness fails the independent Checker: %v", fd.Witness)
			}
		}
	})
}
