package analysis

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/heuristic"
)

func TestBreakdownDeadline(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	d, err := BreakdownDeadline(m, "Z")
	if err != nil {
		t.Fatal(err)
	}
	z := m.ConstraintByName("Z")
	w := z.ComputationTime(m.Comm)
	if d < w || d > z.Deadline {
		t.Fatalf("breakdown %d outside [%d, %d]", d, w, z.Deadline)
	}
	// certificate: the breakdown deadline itself must be schedulable
	mm := m.Clone()
	mm.ConstraintByName("Z").Deadline = d
	if _, err := heuristic.Schedule(mm, heuristic.Options{MergeShared: true}); err != nil {
		t.Fatalf("breakdown deadline %d not actually schedulable", d)
	}
	if _, err := BreakdownDeadline(m, "nope"); err == nil {
		t.Fatal("unknown constraint accepted")
	}
}

func TestBreakdownDeadlineMonotone(t *testing.T) {
	// any deadline above the breakdown must also be schedulable
	m := core.ExampleSystem(core.DefaultExampleParams())
	d, err := BreakdownDeadline(m, "X")
	if err != nil {
		t.Fatal(err)
	}
	x := m.ConstraintByName("X")
	if d > x.Deadline {
		t.Fatalf("breakdown %d above current deadline", d)
	}
}

func TestScalingHeadroom(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	h, err := ScalingHeadroom(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	if h < 100 {
		t.Fatalf("headroom %d below 100%%", h)
	}
	// utilization 0.675 -> some growth must fit, but ×3 cannot
	if h >= 300 {
		t.Fatalf("headroom %d unreasonably large for utilization %.2f", h, m.Utilization())
	}
	// certificate at the headroom point
	mm := m.Clone()
	for _, e := range mm.Comm.Elements() {
		mm.Comm.Weight[e] = mm.Comm.Weight[e] * h / 100
	}
	if _, err := heuristic.Schedule(mm, heuristic.Options{MergeShared: true}); err != nil {
		t.Fatalf("headroom %d%% not actually schedulable", h)
	}
}

func TestScalingHeadroomUnschedulable(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 2)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 2, Deadline: 2, Kind: core.Asynchronous,
	})
	if _, err := ScalingHeadroom(m, 200); err == nil {
		t.Fatal("unschedulable base accepted")
	}
}

func TestSensitivityReport(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	rep, err := Sensitivity(m, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Breakdown) != 3 {
		t.Fatalf("breakdown entries = %d", len(rep.Breakdown))
	}
	if rep.Headroom < 100 {
		t.Fatalf("headroom = %d", rep.Headroom)
	}
}
