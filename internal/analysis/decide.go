package analysis

import (
	"strings"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// FastDecision is the outcome of the analytic admission tier. Its
// invariant is asymmetric by design: Infeasible rests on necessary
// conditions (slack, element pressure, window demand — each a proof
// that no static schedule exists), while Feasible is never taken on a
// screen's word — it always carries a materialized Witness together
// with the Checker report proving it against the exact trace
// semantics. Unknown defers to the heuristic and exact tiers.
type FastDecision struct {
	Verdict Verdict
	// Reason explains an Infeasible verdict (the violated conditions)
	// or names the certifying construction for Feasible.
	Reason string
	// Witness is the verified schedule; non-nil iff Verdict is
	// Feasible.
	Witness *sched.Schedule
	// Check is the Checker report for Witness (Feasible only).
	Check *sched.Report
	// Servers maps constraint name to the {period, deadline} the
	// construction chose (Feasible only).
	Servers map[string][2]int
	// Analysis is the full static report backing the verdict.
	Analysis *Report
}

// DecideFast runs the complete analytic tier on m: the necessary
// battery (per-constraint slack, aggregate element pressure, the
// demand-bound sweep of DemandRefute) for NO, then the generalized
// Theorem-3 construction (Construct) for YES. Everything is
// search-free — O(model) extraction plus a bounded sweep and at most
// two EDF layouts over a capped hyperperiod — so it is safe to run on
// every cold request before any exponential machinery starts. The
// model must validate.
func DecideFast(m *core.Model) (*FastDecision, error) {
	r, err := Analyze(m)
	if err != nil {
		return nil, err
	}
	if !r.NecessaryOK {
		return &FastDecision{
			Verdict:  Infeasible,
			Reason:   strings.Join(r.NecessaryFailures, "; "),
			Analysis: r,
		}, nil
	}
	c, ok, err := Construct(m)
	if err != nil {
		return nil, err
	}
	if ok {
		return &FastDecision{
			Verdict:  Feasible,
			Reason:   "generalized Theorem-3 construction, witness verified",
			Witness:  c.Schedule,
			Check:    c.Report,
			Servers:  c.Servers,
			Analysis: r,
		}, nil
	}
	return &FastDecision{Verdict: Unknown, Analysis: r}, nil
}
