package analysis_test

import (
	"math/rand"
	"strings"
	"testing"

	"rtm/internal/analysis"
	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/heuristic"
	"rtm/internal/workload"
)

func TestAnalyzeExample(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	r, err := analysis.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.NecessaryOK {
		t.Fatalf("example should pass necessary conditions:\n%s", r)
	}
	byName := map[string]analysis.ConstraintInfo{}
	for _, c := range r.Constraints {
		byName[c.Name] = c
	}
	// X = fX(2)+fS(4)+fK(2): chain, so critical path == work == 8
	if byName["X"].Work != 8 || byName["X"].CriticalPath != 8 {
		t.Fatalf("X info = %+v", byName["X"])
	}
	if byName["X"].Slack != 12 {
		t.Fatalf("X slack = %d", byName["X"].Slack)
	}
	// Z pressure on fS: 4/30; X pressure on fS: 4/20 (period window)
	if r.ElementPressure["fS"] < 0.199 || r.ElementPressure["fS"] > 0.201 {
		t.Fatalf("fS pressure = %v", r.ElementPressure["fS"])
	}
	if r.Theorem3OK {
		t.Fatal("example has periodic constraints; Theorem 3 must not certify it")
	}
}

func TestAnalyzeBranchingCriticalPath(t *testing.T) {
	m := core.NewModel()
	for _, e := range []string{"s", "l", "r", "t"} {
		m.Comm.AddElement(e, 1)
	}
	m.Comm.Weight["l"] = 5
	m.Comm.AddPath("s", "l")
	m.Comm.AddPath("s", "r")
	m.Comm.AddPath("l", "t")
	m.Comm.AddPath("r", "t")
	task := core.NewTaskGraph()
	for _, e := range []string{"s", "l", "r", "t"} {
		task.AddStep(e, e)
	}
	task.AddPrec("s", "l")
	task.AddPrec("s", "r")
	task.AddPrec("l", "t")
	task.AddPrec("r", "t")
	m.AddConstraint(&core.Constraint{Name: "D", Task: task, Period: 20, Deadline: 20, Kind: core.Periodic})
	r, err := analysis.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	// work = 1+5+1+1 = 8; critical path = s,l,t = 7
	if r.Constraints[0].Work != 8 || r.Constraints[0].CriticalPath != 7 {
		t.Fatalf("info = %+v", r.Constraints[0])
	}
}

func TestNecessaryFailsOnOverPressure(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 2, Deadline: 2, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 2, Deadline: 2, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B2", Task: core.ChainTask("b"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	// pressure: a 1/2 + b max(1/2, 1/3) = 1/2 -> total 1.0 OK; tighten:
	m.Constraints[0].Deadline = 1
	m.Constraints[0].Period = 1
	r, err := analysis.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	// a pressure 1/1 + b 1/2 = 1.5 > 1
	if r.NecessaryOK {
		t.Fatalf("over-pressure not detected:\n%s", r)
	}
	v, _, err := analysis.Decide(m)
	if err != nil || v != analysis.Infeasible {
		t.Fatalf("verdict = %v, %v", v, err)
	}
}

func TestDecideFeasibleViaTheorem3(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 8, Deadline: 8, Kind: core.Asynchronous,
	})
	v, r, err := analysis.Decide(m)
	if err != nil {
		t.Fatal(err)
	}
	if v != analysis.Feasible || !r.Theorem3OK {
		t.Fatalf("verdict = %v\n%s", v, r)
	}
	// the certificate must be honest: the constructive scheduler works
	if _, err := heuristic.Theorem3Schedule(m); err != nil {
		t.Fatalf("certified model failed construction: %v", err)
	}
}

func TestDecideUnknown(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	v, _, err := analysis.Decide(m)
	if err != nil {
		t.Fatal(err)
	}
	if v != analysis.Unknown {
		t.Fatalf("verdict = %v", v)
	}
	if v.String() != "unknown" || analysis.Infeasible.String() != "infeasible" ||
		analysis.Feasible.String() != "feasible" {
		t.Fatal("verdict strings wrong")
	}
}

func TestAnalyzeInvalidModel(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 9)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 4, Deadline: 4, Kind: core.Periodic,
	})
	if _, err := analysis.Analyze(m); err == nil {
		t.Fatal("invalid model analyzed")
	}
}

func TestReportString(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	r, _ := analysis.Analyze(m)
	out := r.String()
	for _, want := range []string{"constraint analysis:", "total element pressure:", "Theorem 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Property: the three-valued verdict is never wrong on small random
// instances — Infeasible instances have no schedule up to a generous
// length bound, Feasible ones are constructible.
func TestVerdictSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for i := 0; i < 40; i++ {
		m := workload.AsyncOnly(rng, 2+rng.Intn(2), 0.4+rng.Float64())
		if m.Validate() != nil {
			continue
		}
		v, _, err := analysis.Decide(m)
		if err != nil {
			t.Fatal(err)
		}
		switch v {
		case analysis.Infeasible:
			ok, _, err := exact.Feasible(m, 6)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("Infeasible verdict but schedule found for %+v", m.Constraints)
			}
			checked++
		case analysis.Feasible:
			if _, err := heuristic.Theorem3Schedule(m); err != nil {
				t.Fatalf("Feasible verdict but construction failed: %v", err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no decisive instances drawn")
	}
}
