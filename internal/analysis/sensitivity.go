package analysis

import (
	"fmt"

	"rtm/internal/core"
	"rtm/internal/heuristic"
)

// Sensitivity analysis: how much headroom does a schedulable design
// have? Two classical questions, answered against the verified
// heuristic scheduler (the underlying problem is NP-hard, so the
// results are conservative: "schedulable down to X" is certified by
// an actual schedule, while the failure side is heuristic).

// schedulable runs the verified heuristic as the probe.
func schedulable(m *core.Model) bool {
	if m.Validate() != nil {
		return false
	}
	_, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	return err == nil
}

// BreakdownDeadline returns the smallest deadline of the named
// constraint (keeping everything else fixed) for which the heuristic
// still produces a verified schedule, found by binary search between
// the constraint's computation time and its current deadline. The
// current deadline must be schedulable.
func BreakdownDeadline(m *core.Model, name string) (int, error) {
	c := m.ConstraintByName(name)
	if c == nil {
		return 0, fmt.Errorf("analysis: unknown constraint %q", name)
	}
	if !schedulable(m) {
		return 0, fmt.Errorf("analysis: model not schedulable at the current deadline")
	}
	w := c.ComputationTime(m.Comm)
	lo, hi := w, c.Deadline // lo may be infeasible, hi is feasible
	probe := func(d int) bool {
		mm := m.Clone()
		mm.ConstraintByName(name).Deadline = d
		return schedulable(mm)
	}
	if probe(lo) {
		return lo, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if probe(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ScalingHeadroom returns the largest multiplier k/100 (in integer
// percent) by which every element weight can be scaled up with the
// model still schedulable, searched between 100 % and maxPercent.
// The unscaled model must be schedulable.
func ScalingHeadroom(m *core.Model, maxPercent int) (int, error) {
	if maxPercent < 100 {
		maxPercent = 100
	}
	if !schedulable(m) {
		return 0, fmt.Errorf("analysis: model not schedulable unscaled")
	}
	probe := func(pct int) bool {
		mm := m.Clone()
		for _, e := range mm.Comm.Elements() {
			mm.Comm.Weight[e] = mm.Comm.Weight[e] * pct / 100
		}
		return schedulable(mm)
	}
	lo, hi := 100, maxPercent+1 // lo feasible, hi infeasible
	if probe(maxPercent) {
		return maxPercent, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// SensitivityReport gathers per-constraint breakdown deadlines and
// the global scaling headroom.
type SensitivityReport struct {
	Breakdown map[string]int // constraint -> minimum schedulable deadline
	Headroom  int            // percent (≥ 100)
}

// Sensitivity runs the full sensitivity sweep.
func Sensitivity(m *core.Model, maxPercent int) (*SensitivityReport, error) {
	rep := &SensitivityReport{Breakdown: map[string]int{}}
	for _, c := range m.Constraints {
		d, err := BreakdownDeadline(m, c.Name)
		if err != nil {
			return nil, err
		}
		rep.Breakdown[c.Name] = d
	}
	h, err := ScalingHeadroom(m, maxPercent)
	if err != nil {
		return nil, err
	}
	rep.Headroom = h
	return rep, nil
}
