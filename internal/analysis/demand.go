package analysis

import (
	"fmt"

	"rtm/internal/core"
)

// This file is the search-free demand-bound core: the window-demand
// extraction shared with the exact search (internal/exact builds its
// incremental pruning state from WindowSpecs) and the closed-form
// necessary test DemandRefute built on top of it. The exact search
// applies the same window arithmetic incrementally per placed slot;
// here the windows are summed analytically over the trace prefix, so a
// model can be refuted in O(model + points) without ever descending
// into the schedule tree.

// ElementNeed is one element's slot demand inside a deadline window:
// the element must occupy at least Slots of the window's positions
// (weight × multiplicity in the constraint's task graph — a relaxation
// of the whole-execution requirement, hence a necessary condition).
type ElementNeed struct {
	Elem  string
	Slots int
}

// WindowSpec is the window-demand form of one timing constraint. An
// asynchronous constraint (Period 0 here) may be invoked at any
// integral instant, so EVERY window of length D in the trace must
// carry the demand; a periodic constraint with d ≤ p is invoked at
// multiples of its period, so only the anchored windows [jp, jp+D) do.
// Periodic constraints with d > p have overlapping windows whose
// demands are not additive; they yield no spec.
type WindowSpec struct {
	Constraint string
	D          int
	Period     int // 0 = sliding (asynchronous)
	Need       []ElementNeed
}

// WindowSpecs extracts the per-constraint window demands of m: the
// demand-bound core shared by this package's analytic tests and the
// exact search's incremental pruners. Need entries appear in
// first-seen task-node order, with Slots accumulating weight ×
// multiplicity per element.
func WindowSpecs(m *core.Model) []WindowSpec {
	var out []WindowSpec
	for _, c := range m.Constraints {
		var spec WindowSpec
		switch c.Kind {
		case core.Asynchronous:
			spec = WindowSpec{Constraint: c.Name, D: c.Deadline}
		case core.Periodic:
			if c.Deadline > c.Period {
				continue
			}
			spec = WindowSpec{Constraint: c.Name, D: c.Deadline, Period: c.Period}
		default:
			continue
		}
		idx := make(map[string]int)
		for _, node := range c.Task.Nodes() {
			e := c.Task.ElementOf(node)
			w := m.Comm.WeightOf(e)
			if w <= 0 {
				continue
			}
			if i, ok := idx[e]; ok {
				spec.Need[i].Slots += w
			} else {
				idx[e] = len(spec.Need)
				spec.Need = append(spec.Need, ElementNeed{Elem: e, Slots: w})
			}
		}
		out = append(out, spec)
	}
	return out
}

// demandCurve is one constraint's forced occurrence count of one
// element as a step function of the trace prefix length: zero before
// start, then +k at start, start+period, start+2·period, …
//
// Asynchronous constraints use the chain of disjoint windows
// [0,d), [d,2d), …: every window of length d must carry k slots of the
// element, so ⌊L/d⌋·k slots are forced inside [0, L). Periodic
// constraints (d ≤ p) use their anchored windows [jp, jp+d), disjoint
// because d ≤ p, forcing (j+1)·k slots by L = jp + d.
type demandCurve struct {
	start  int
	period int
	k      int
}

func (c demandCurve) at(L int) int {
	if L < c.start {
		return 0
	}
	return (1 + (L-c.start)/c.period) * c.k
}

// demandSweepCap bounds the prefix lengths DemandRefute examines.
// Soundness never depends on the cap — every tested point is a genuine
// necessary condition — it only bounds how far the sweep looks.
const demandSweepCap = 2048

// DemandRefute decides whether m is infeasible by the aggregate
// demand-bound argument: for each element e, the forced occurrence
// count of e within the trace prefix [0, L) is the maximum over the
// constraints using e of that constraint's window-chain demand (one
// slot of e may serve every constraint whose window contains it, hence
// max, not sum); slots are exclusive across elements, so the summed
// forced counts may not exceed L. The sweep evaluates every prefix
// length where some curve steps, up to demandSweepCap. It returns a
// human-readable certificate for the first violated prefix.
//
// This is strictly stronger than the long-run pressure test for
// anchored (periodic) demand, whose windows concentrate work early:
// two periodic constraints with p = 10, d = 2 and two units of work
// each pass Σ pressure = 0.4 but force 4 slots into the first 2.
func DemandRefute(m *core.Model) (bool, string) {
	specs := WindowSpecs(m)
	// curves grouped per element, in first-seen order
	curveIdx := make(map[string]int)
	var curves [][]demandCurve
	for _, s := range specs {
		period := s.Period
		if period == 0 {
			period = s.D
		}
		for _, nd := range s.Need {
			if nd.Slots <= 0 {
				continue
			}
			i, ok := curveIdx[nd.Elem]
			if !ok {
				i = len(curves)
				curveIdx[nd.Elem] = i
				curves = append(curves, nil)
			}
			curves[i] = append(curves[i], demandCurve{start: s.D, period: period, k: nd.Slots})
		}
	}
	if len(curves) == 0 {
		return false, ""
	}
	// Refutation horizon: per element, max_c at(L) ≤ maxK + maxSlope·L
	// (since at(L) = k + ⌊(L−start)/period⌋·k ≤ k + L·k/period), so the
	// summed envelope A + B·L bounds forced(L). With B < 1 the envelope
	// drops below the line total > L past A/(1−B) — no later prefix can
	// refute, and the sweep may stop there instead of at the cap.
	bound := demandSweepCap
	var a int
	var b float64
	for _, cs := range curves {
		maxK, maxSlope := 0, 0.0
		for _, c := range cs {
			if c.k > maxK {
				maxK = c.k
			}
			if s := float64(c.k) / float64(c.period); s > maxSlope {
				maxSlope = s
			}
		}
		a += maxK
		b += maxSlope
	}
	if b < 1 {
		if h := int(float64(a)/(1-b)) + 1; h < bound {
			bound = h
		}
	}
	// Sweep the step points of every curve up to the horizon by merging
	// the specs' arithmetic progressions (start D, stride period) — no
	// materialized point set, no sort. Each iteration visits the least
	// pending step point and advances every progression sitting on it.
	next := make([]int, len(specs))
	stride := make([]int, len(specs))
	for i, s := range specs {
		next[i] = s.D
		stride[i] = s.Period
		if stride[i] == 0 {
			stride[i] = s.D
		}
	}
	for {
		L := bound + 1
		for _, n := range next {
			if n < L {
				L = n
			}
		}
		if L > bound {
			return false, ""
		}
		for i, n := range next {
			if n == L {
				next[i] += stride[i]
			}
		}
		total := 0
		for _, cs := range curves {
			forced := 0
			for _, c := range cs {
				if f := c.at(L); f > forced {
					forced = f
				}
			}
			total += forced
		}
		if total > L {
			return true, fmt.Sprintf("window demand forces %d slots into every trace prefix of length %d", total, L)
		}
	}
}
