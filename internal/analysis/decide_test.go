package analysis_test

import (
	"math/rand"
	"strings"
	"testing"

	"rtm/internal/analysis"
	"rtm/internal/core"
	"rtm/internal/exact"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

// density1Instance mirrors the service tests' hardness family: unit
// constraints with Σ w/d = 1. The analytic tier must stay Unknown on
// it — these instances are decidable only by search, and several
// benchmarks rely on them reaching the exact stage.
func density1Instance(w int, ds []int) *core.Model {
	m := core.NewModel()
	for i, d := range ds {
		name := "u" + string(rune('0'+i))
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d * w, Deadline: d * w, Kind: core.Asynchronous,
		})
	}
	return m
}

// Two periodic constraints with p = 10, d = 2 and two units of work
// each: long-run pressure is only 0.4, but both anchored windows
// [0, 2) demand 2 slots each — 4 forced slots in a prefix of length 2.
// Only the demand-bound sweep can refute this without search.
func TestDecideFastRefutesAnchoredDemand(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 2)
	m.Comm.AddElement("b", 2)
	for _, n := range []string{"a", "b"} {
		m.AddConstraint(&core.Constraint{
			Name: "c" + n, Task: core.ChainTask(n),
			Period: 10, Deadline: 2, Kind: core.Periodic,
		})
	}
	r, err := analysis.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPressure > 1 {
		t.Fatalf("pressure = %.3f; this instance must pass the pressure test", r.TotalPressure)
	}
	refuted, why := analysis.DemandRefute(m)
	if !refuted {
		t.Fatal("demand sweep missed the anchored overload")
	}
	if !strings.Contains(why, "forces") {
		t.Fatalf("certificate unreadable: %q", why)
	}
	fd, err := analysis.DecideFast(m)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Verdict != analysis.Infeasible {
		t.Fatalf("verdict = %v, want infeasible", fd.Verdict)
	}
	// the refutation claims no schedule of any length; cross-check a
	// generous bound with the exact oracle
	ok, _, err := exact.Feasible(m, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("exact search contradicts the demand refutation")
	}
}

// A mixed periodic + asynchronous instance outside Theorem 3's scope
// (it has a periodic constraint): the generalized construction must
// produce a Checker-verified witness.
func TestDecideFastConstructsMixedYes(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("p", 1)
	m.Comm.AddElement("q", 1)
	m.Comm.AddPath("p", "q")
	m.AddConstraint(&core.Constraint{
		Name: "per", Task: core.ChainTask("p", "q"),
		Period: 8, Deadline: 8, Kind: core.Periodic,
	})
	m.AddConstraint(&core.Constraint{
		Name: "asy", Task: core.ChainTask("q"),
		Period: 6, Deadline: 6, Kind: core.Asynchronous,
	})
	fd, err := analysis.DecideFast(m)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Verdict != analysis.Feasible {
		t.Fatalf("verdict = %v, want feasible (reason %q)", fd.Verdict, fd.Reason)
	}
	if fd.Witness == nil || fd.Check == nil || !fd.Check.Feasible {
		t.Fatalf("feasible verdict without a verified witness: %+v", fd)
	}
	// independent re-verification, not the report Construct produced
	if !sched.Feasible(m, fd.Witness) {
		t.Fatalf("witness fails an independent check: %v", fd.Witness)
	}
	if len(fd.Servers) != 2 {
		t.Fatalf("servers = %v, want parameters for both constraints", fd.Servers)
	}
}

// The density-1 hardness family must pass through the analytic tier
// untouched in both directions: every test and benchmark that uses it
// as "reaches the exact stage" depends on this.
func TestDecideFastUnknownOnDensityOneFamily(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    int
		ds   []int
	}{
		{"infeasible-236", 1, []int{2, 3, 6}},
		{"feasible-2666", 1, []int{2, 6, 6, 6}},
		{"infeasible-236-w2", 2, []int{2, 3, 6}},
		{"feasible-2666-w2", 2, []int{2, 6, 6, 6}},
	} {
		fd, err := analysis.DecideFast(density1Instance(tc.w, tc.ds))
		if err != nil {
			t.Fatal(err)
		}
		if fd.Verdict != analysis.Unknown {
			t.Fatalf("%s: verdict = %v, want unknown (reason %q)", tc.name, fd.Verdict, fd.Reason)
		}
	}
}

func TestWindowSpecs(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("x", 2)
	m.Comm.AddElement("y", 1)
	m.Comm.AddPath("x", "y")
	m.Comm.AddPath("x", "x")
	// async: sliding window, repeated element accumulates
	taskRep := core.NewTaskGraph()
	taskRep.AddStep("x1", "x")
	taskRep.AddStep("x2", "x")
	taskRep.AddPrec("x1", "x2")
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: taskRep, Period: 12, Deadline: 12, Kind: core.Asynchronous,
	})
	// periodic with d ≤ p: anchored window
	m.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("x", "y"),
		Period: 10, Deadline: 6, Kind: core.Periodic,
	})
	// periodic with d > p: overlapping windows, must yield no spec
	m.AddConstraint(&core.Constraint{
		Name: "O", Task: core.ChainTask("y"),
		Period: 2, Deadline: 5, Kind: core.Periodic,
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	specs := analysis.WindowSpecs(m)
	if len(specs) != 2 {
		t.Fatalf("specs = %+v, want 2 (d > p skipped)", specs)
	}
	a := specs[0]
	if a.Constraint != "A" || a.D != 12 || a.Period != 0 {
		t.Fatalf("async spec = %+v", a)
	}
	if len(a.Need) != 1 || a.Need[0].Elem != "x" || a.Need[0].Slots != 4 {
		t.Fatalf("async need = %+v, want x:4 (two weight-2 executions)", a.Need)
	}
	p := specs[1]
	if p.Constraint != "P" || p.D != 6 || p.Period != 10 {
		t.Fatalf("periodic spec = %+v", p)
	}
	if len(p.Need) != 2 {
		t.Fatalf("periodic need = %+v", p.Need)
	}
}

// Property: every witness Construct returns passes the independent
// Checker on a corpus of layered random draws — the YES side's
// soundness-by-construction, regression-guarded.
func TestConstructWitnessesVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	built := 0
	for i := 0; i < 200; i++ {
		p := workload.LayeredParams{
			Layers: 1 + rng.Intn(3), Width: 1 + rng.Intn(3),
			Density: 0.4, MaxWeight: 1 + rng.Intn(3),
			Constraints: 1 + rng.Intn(3), ChainLen: 1 + rng.Intn(3),
			AsyncFrac: rng.Float64(),
			Stretch:   1.0 + 2.5*rng.Float64(), PeriodStretch: 1.0 + rng.Float64(),
		}
		m, err := workload.Layered(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		c, ok, err := analysis.Construct(m)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		built++
		if !sched.Feasible(m, c.Schedule) {
			t.Fatalf("draw %d: constructed witness fails the Checker: %v", i, c.Schedule)
		}
		if c.Report == nil || !c.Report.Feasible {
			t.Fatalf("draw %d: construction returned without its verification report", i)
		}
	}
	if built == 0 {
		t.Fatal("no construction succeeded across 200 draws; the YES screen is broken")
	}
	t.Logf("verified %d constructed witnesses", built)
}
