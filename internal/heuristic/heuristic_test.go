package heuristic

import (
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

func TestEdfScheduleMeetsDeadlines(t *testing.T) {
	servers := []server{
		{name: "a", period: 4, deadline: 4, ops: []op{{"a", 2}}},
		{name: "b", period: 8, deadline: 8, ops: []op{{"b", 3}}},
	}
	slots, ok := edfSchedule(servers, 8, false)
	if !ok {
		t.Fatal("EDF failed on utilization 7/8")
	}
	countA, countB := 0, 0
	for _, s := range slots {
		switch s {
		case "a":
			countA++
		case "b":
			countB++
		}
	}
	if countA != 4 || countB != 3 {
		t.Fatalf("counts a=%d b=%d, want 4/3", countA, countB)
	}
}

func TestEdfOverload(t *testing.T) {
	servers := []server{
		{name: "a", period: 2, deadline: 2, ops: []op{{"a", 2}}},
		{name: "b", period: 2, deadline: 2, ops: []op{{"b", 1}}},
	}
	if _, ok := edfSchedule(servers, 4, true); ok {
		t.Fatal("overloaded set scheduled")
	}
}

func TestEdfPrecedenceWithinJob(t *testing.T) {
	servers := []server{
		{name: "c", period: 4, deadline: 4, ops: []op{{"x", 1}, {"y", 1}}},
	}
	slots, ok := edfSchedule(servers, 4, true)
	if !ok {
		t.Fatal("EDF failed")
	}
	seenX := -1
	for i, s := range slots {
		if s == "x" {
			seenX = i
		}
		if s == "y" && seenX == -1 {
			t.Fatalf("y before x in %v", slots)
		}
	}
}

func TestScheduleExampleSystem(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := Schedule(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Feasible {
		t.Fatalf("report infeasible:\n%s", res.Report)
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("schedule fails independent verification")
	}
	if _, ok := res.Servers["Z"]; !ok {
		t.Fatalf("server parameters missing for Z: %v", res.Servers)
	}
	z := res.Servers["Z"]
	if z[0]+z[1] > m.ConstraintByName("Z").Deadline {
		t.Fatalf("server P+D=%d exceeds deadline", z[0]+z[1])
	}
}

func TestScheduleWithMerge(t *testing.T) {
	p := core.DefaultExampleParams()
	p.PY = p.PX
	m := core.ExampleSystem(p)
	res, err := Schedule(m, Options{MergeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged.Constraints) >= len(m.Constraints) {
		t.Fatal("merge did not reduce constraint count")
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("merged schedule infeasible for original model")
	}
}

func TestScheduleInvalidModel(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 5)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous, // w > d: invalid
	})
	if _, err := Schedule(m, Options{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestTheorem3HypothesesChecks(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 2)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 10, Deadline: 10, Kind: core.Asynchronous,
	})
	if err := CheckTheorem3Hypotheses(m); err != nil {
		t.Fatal(err)
	}
	// violate (ii): w=2, d=3 -> floor(3/2)=1 < 2
	m2 := core.NewModel()
	m2.Comm.AddElement("a", 2)
	m2.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	if err := CheckTheorem3Hypotheses(m2); err == nil {
		t.Fatal("hypothesis (ii) violation accepted")
	}
	// periodic constraint rejected
	m3 := core.NewModel()
	m3.Comm.AddElement("a", 1)
	m3.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 10, Deadline: 10, Kind: core.Periodic,
	})
	if err := CheckTheorem3Hypotheses(m3); err == nil {
		t.Fatal("periodic constraint accepted")
	}
	// violate (i): density > 1/2
	m4 := core.NewModel()
	m4.Comm.AddElement("a", 3)
	m4.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	if err := CheckTheorem3Hypotheses(m4); err == nil {
		t.Fatal("density violation accepted")
	}
}

func TestTheorem3Constructive(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 2)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 12, Deadline: 12, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 8, Deadline: 8, Kind: core.Asynchronous,
	})
	// density = 2/12 + 1/8 = 0.292 ≤ 0.5; hypotheses hold
	res, err := Theorem3Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("constructive schedule infeasible")
	}
}

// Property sweep backing Theorem 3: random instances satisfying the
// hypotheses must always be schedulable by the constructive method.
func TestTheorem3PropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	successes, trials := 0, 0
	for i := 0; i < 60; i++ {
		m := randomTheorem3Model(rng)
		if m == nil {
			continue
		}
		trials++
		if _, err := Theorem3Schedule(m); err == nil {
			successes++
		} else {
			t.Errorf("Theorem 3 construction failed on a hypothesis-satisfying model: %v", err)
		}
	}
	if trials == 0 {
		t.Fatal("no valid trials generated")
	}
	if successes != trials {
		t.Fatalf("constructive success %d/%d, want 100%%", successes, trials)
	}
}

// randomTheorem3Model builds a random asynchronous model satisfying
// the Theorem 3 hypotheses, or nil if the draw failed.
func randomTheorem3Model(rng *rand.Rand) *core.Model {
	m := core.NewModel()
	n := 2 + rng.Intn(3)
	density := 0.0
	for i := 0; i < n; i++ {
		w := 1 + rng.Intn(3)
		d := 2*w + rng.Intn(20) // guarantees floor(d/2) >= w
		if density+float64(w)/float64(d) > 0.5 {
			break
		}
		density += float64(w) / float64(d)
		name := string(rune('a' + i))
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "C" + name, Task: core.ChainTask(name),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	if len(m.Constraints) == 0 {
		return nil
	}
	return m
}

func TestScheduleRetryTightening(t *testing.T) {
	// A model where the balanced split may fail but tightening helps:
	// very asymmetric deadlines.
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 3)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 20, Deadline: 20, Kind: core.Asynchronous,
	})
	res, err := Schedule(m, Options{Retries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("schedule infeasible")
	}
}
