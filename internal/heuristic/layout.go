package heuristic

import (
	"fmt"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// LayoutServers lays out one periodic server per constraint of m under
// caller-chosen parameters and returns the raw cyclic schedule over the
// servers' hyperperiod. params maps constraint name to {period,
// deadline}; every constraint of m must have an entry. preemptive
// selects the unit-preemption EDF mode (the paper's "pipelinable"
// hypothesis) versus run-to-completion operations.
//
// The layout is mechanical, not certifying: ok reports only whether
// every released job met its server deadline inside the horizon.
// Callers own the soundness obligation — verify the returned schedule
// against the model's exact trace semantics (sched.Check) before
// trusting it. analysis.Construct uses exactly this split: a cheap
// analytic screen picks the parameters, this layout materializes the
// candidate, and the Checker is the judge.
func LayoutServers(m *core.Model, params map[string][2]int, preemptive bool) (*sched.Schedule, bool, error) {
	var servers []server
	for _, c := range m.Constraints {
		pp, ok := params[c.Name]
		if !ok {
			return nil, false, fmt.Errorf("heuristic: no server parameters for constraint %q", c.Name)
		}
		if pp[0] < 1 || pp[1] < 1 {
			return nil, false, fmt.Errorf("heuristic: constraint %q has bad server parameters %v", c.Name, pp)
		}
		ops, err := opsOf(c, m.Comm)
		if err != nil {
			return nil, false, err
		}
		servers = append(servers, server{name: c.Name, period: pp[0], deadline: pp[1], ops: ops, src: c})
	}
	h := hyperperiod(servers)
	slots, ok := edfSchedule(servers, h, preemptive)
	if !ok {
		return nil, false, nil
	}
	return &sched.Schedule{Slots: slots}, true, nil
}
