// Package heuristic implements the paper's schedule-construction
// heuristics: a static schedule is first laid out for the periodic
// timing constraints and the asynchronous constraints are then folded
// in by serving each as a periodic server, following the constructive
// idea behind the paper's Theorem 3 (serve an asynchronous constraint
// (C, p, d) with a periodic server whose period plus deadline is at
// most d).
//
// The resulting cyclic schedule is always verified against the exact
// latency semantics of package sched before being returned, so the
// heuristic is sound: it can fail to find a schedule, but a returned
// schedule is always feasible.
package heuristic

import (
	"fmt"
	"sort"

	"rtm/internal/core"
)

// op is one operation of a server body: an execution of a functional
// element for its full weight.
type op struct {
	elem string
	w    int
}

// server is a periodic execution obligation derived from a timing
// constraint: release every period, complete ops within deadline of
// release.
type server struct {
	name     string
	period   int
	deadline int
	ops      []op // topological order of the task graph
	src      *core.Constraint
}

// opsOf lists a task graph's operations in topological order.
func opsOf(c *core.Constraint, comm *core.CommGraph) ([]op, error) {
	order, err := c.Task.G.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("heuristic: constraint %q: %w", c.Name, err)
	}
	var ops []op
	for _, node := range order {
		e := c.Task.ElementOf(node)
		if w := comm.WeightOf(e); w > 0 {
			ops = append(ops, op{elem: e, w: w})
		}
	}
	return ops, nil
}

// job is one release of a server.
type job struct {
	server   int
	release  int
	deadline int // absolute
	opIdx    int // current op
	done     int // slots of the current op already executed
}

// edfSchedule lays the servers out over horizon slots by
// earliest-deadline-first. In the default (non-preemptive-op) mode an
// in-progress execution of a functional element runs to completion
// before the scheduler re-evaluates: keeping every execution
// contiguous means the trace parses back into exactly the executions
// EDF intended, so the verification step sees the planned
// precedences. With preemptive=true the scheduler re-evaluates every
// slot (unit preemption — the paper's "pipelinable" hypothesis),
// which avoids blocking at the cost of interleaved executions. It
// returns the slot assignment and whether every job met its absolute
// deadline.
func edfSchedule(servers []server, horizon int, preemptive bool) ([]string, bool) {
	slots := make([]string, horizon)
	var pending []*job
	var running *job // mid-op job, if any
	releases := make([]int, len(servers))
	for t := 0; t < horizon; t++ {
		for i := range servers {
			if releases[i] == t {
				pending = append(pending, &job{
					server:   i,
					release:  t,
					deadline: t + servers[i].deadline,
				})
				releases[i] += servers[i].period
			}
		}
		// deadline misses: a live job past its absolute deadline
		for _, j := range pending {
			if t >= j.deadline {
				return nil, false
			}
		}
		var j *job
		if running != nil && !preemptive {
			j = running // finish the in-progress op first
		} else if len(pending) > 0 {
			// earliest absolute deadline; ties by server index then
			// release for determinism
			sort.SliceStable(pending, func(a, b int) bool {
				if pending[a].deadline != pending[b].deadline {
					return pending[a].deadline < pending[b].deadline
				}
				if pending[a].server != pending[b].server {
					return pending[a].server < pending[b].server
				}
				return pending[a].release < pending[b].release
			})
			j = pending[0]
		}
		if j == nil {
			continue
		}
		cur := servers[j.server].ops[j.opIdx]
		slots[t] = cur.elem
		j.done++
		running = j
		if j.done == cur.w {
			j.opIdx++
			j.done = 0
			running = nil
			if j.opIdx == len(servers[j.server].ops) {
				// job complete: drop it
				live := pending[:0]
				for _, q := range pending {
					if q != j {
						live = append(live, q)
					}
				}
				pending = live
			}
		}
	}
	// all jobs released before horizon must have finished
	return slots, len(pending) == 0
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func hyperperiod(servers []server) int {
	h := 1
	for _, s := range servers {
		h = lcm(h, s.period)
	}
	return h
}
