package heuristic

import (
	"errors"
	"fmt"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// ErrNoSchedule is returned when the heuristic cannot produce a
// verified feasible schedule. (The problem is NP-hard — Theorem 2 —
// so failure does not imply infeasibility.)
var ErrNoSchedule = errors.New("heuristic: no feasible schedule found")

// Options tune the heuristic.
type Options struct {
	// MergeShared applies the shared-operation optimization
	// (core.MergePeriodic) before scheduling.
	MergeShared bool
	// Retries bounds how many times the asynchronous server
	// parameters are tightened after a failed verification.
	// Default 4.
	Retries int
}

// Result carries the schedule and provenance information.
type Result struct {
	Schedule *sched.Schedule
	Report   *sched.Report
	// Servers describes the (period, deadline) chosen for each
	// constraint, keyed by constraint name.
	Servers map[string][2]int
	// Merged is the model actually scheduled (after optional merge).
	Merged *core.Model
}

// Schedule runs the paper's heuristic: transform every asynchronous
// constraint (C, p, d) into a periodic server with period P and
// deadline D such that P + D ≤ d and D ≥ computation time, schedule
// everything by preemptive EDF over the hyperperiod, and verify the
// resulting static schedule under the exact trace semantics.
//
// An asynchronous invocation at any instant t is then served by the
// first server release at or after t (within P), which completes
// within D — hence inside [t, t+d]. The verification step makes this
// reasoning unconditional.
func Schedule(m *core.Model, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	work := m
	if opt.MergeShared {
		merged, _, err := core.MergePeriodic(m)
		if err != nil {
			return nil, err
		}
		work = merged
	}
	retries := opt.Retries
	if retries <= 0 {
		retries = 4
	}

	// initial server parameters
	type params struct{ p, d int }
	prm := make(map[string]params)
	for _, c := range work.Constraints {
		w := c.ComputationTime(work.Comm)
		switch c.Kind {
		case core.Periodic:
			prm[c.Name] = params{c.Period, c.Deadline}
		case core.Asynchronous:
			// D ≥ w, P + D ≤ d, prefer the balanced split of
			// Theorem 3 (P = D = ⌊d/2⌋) when it fits.
			d := c.Deadline / 2
			if d < w {
				d = w
			}
			p := c.Deadline - d
			if p < 1 {
				return nil, fmt.Errorf("%w: constraint %q has deadline %d too tight for work %d",
					ErrNoSchedule, c.Name, c.Deadline, w)
			}
			prm[c.Name] = params{p, d}
		}
	}

	for attempt := 0; attempt <= retries; attempt++ {
		var servers []server
		for _, c := range work.Constraints {
			ops, err := opsOf(c, work.Comm)
			if err != nil {
				return nil, err
			}
			pp := prm[c.Name]
			servers = append(servers, server{
				name: c.Name, period: pp.p, deadline: pp.d, ops: ops, src: c,
			})
		}
		h := hyperperiod(servers)
		for _, preemptive := range []bool{false, true} {
			slots, ok := edfSchedule(servers, h, preemptive)
			if !ok {
				continue
			}
			s := &sched.Schedule{Slots: slots}
			rep := sched.Check(work, s)
			// verify against the *original* model too when merged:
			// merged feasibility implies original feasibility only
			// if every original task is embedded — which merge
			// guarantees — but check defensively.
			origRep := rep
			if work != m {
				origRep = sched.Check(m, s)
			}
			if rep.Feasible && origRep.Feasible {
				sv := make(map[string][2]int, len(prm))
				for k, v := range prm {
					sv[k] = [2]int{v.p, v.d}
				}
				return &Result{Schedule: s, Report: origRep, Servers: sv, Merged: work}, nil
			}
		}
		// tighten: shrink the async server periods (serve more often)
		tightened := false
		for _, c := range work.Constraints {
			if c.Kind != core.Asynchronous {
				continue
			}
			pp := prm[c.Name]
			if pp.p > 1 {
				np := pp.p - (pp.p+1)/2 // halve, at least 1
				if np < 1 {
					np = 1
				}
				prm[c.Name] = params{np, pp.d}
				tightened = true
			}
		}
		if !tightened {
			break
		}
	}
	return nil, ErrNoSchedule
}

// Theorem3Schedule applies the paper's Theorem 3 construction to a
// model whose constraints are all asynchronous: each constraint
// (C, p, d) is served by a periodic server whose period P and
// deadline D satisfy P + D ≤ d and D ≥ w, so that an invocation at
// any instant is picked up within P and completed within a further D.
// Under the theorem's hypotheses —
//
//	(i)  Σ w_i/d_i ≤ 1/2,
//	(ii) ⌊d_i/2⌋ ≥ w_i,
//	(iii) every element pipelinable (unit-preemptible),
//
// serving with P = ⌈d/2⌉ keeps the transformed utilization
// Σ w/⌈d/2⌉ ≤ Σ 2w/d ≤ 1, so EDF can lay the servers out. The
// implementation tries a small ladder of valid (P, D) splits and
// verifies the winning schedule against the exact trace semantics
// before returning it.
func Theorem3Schedule(m *core.Model) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := CheckTheorem3Hypotheses(m); err != nil {
		return nil, err
	}
	type split func(d, w int) (int, int)
	splits := []split{
		func(d, w int) (int, int) { return (d + 1) / 2, d / 2 },      // P=⌈d/2⌉, D=⌊d/2⌋
		func(d, w int) (int, int) { return d / 2, d - d/2 },          // P=⌊d/2⌉, D=⌈d/2⌉
		func(d, w int) (int, int) { return d / 2, d / 2 },            // paper's balanced split
		func(d, w int) (int, int) { return d - w, w },                // maximal period
		func(d, w int) (int, int) { return maxInt(1, d/3), d - d/3 }, // aggressive period
	}
	var lastErr error
	for _, sp := range splits {
		var servers []server
		prm := make(map[string][2]int)
		ok := true
		for _, c := range m.Constraints {
			ops, err := opsOf(c, m.Comm)
			if err != nil {
				return nil, err
			}
			w := c.ComputationTime(m.Comm)
			p, d := sp(c.Deadline, w)
			if p < 1 || d < w || p+d > c.Deadline {
				ok = false
				break
			}
			servers = append(servers, server{name: c.Name, period: p, deadline: d, ops: ops, src: c})
			prm[c.Name] = [2]int{p, d}
		}
		if !ok {
			continue
		}
		h := hyperperiod(servers)
		// hypothesis (iii) licenses unit preemption, so try the
		// preemptive layout first and the block layout second.
		for _, preemptive := range []bool{true, false} {
			slots, edfOK := edfSchedule(servers, h, preemptive)
			if !edfOK {
				lastErr = fmt.Errorf("%w: EDF failed on transformed periodic set (density %.3f)",
					ErrNoSchedule, transformedDensity(m))
				continue
			}
			s := &sched.Schedule{Slots: slots}
			rep := sched.Check(m, s)
			if !rep.Feasible {
				lastErr = fmt.Errorf("%w: verification failed:\n%s", ErrNoSchedule, rep)
				continue
			}
			return &Result{Schedule: s, Report: rep, Servers: prm, Merged: m}, nil
		}
	}
	if lastErr == nil {
		lastErr = ErrNoSchedule
	}
	return nil, lastErr
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CheckTheorem3Hypotheses verifies hypotheses (i) and (ii) of the
// paper's Theorem 3 — Σ w_i/d_i ≤ 1/2 and ⌊d_i/2⌋ ≥ w_i — and that
// every constraint is asynchronous. (Hypothesis (iii), pipelinable
// elements, is native to the trace semantics, which permits unit
// preemption.)
func CheckTheorem3Hypotheses(m *core.Model) error {
	if m.DeadlineDensity() > 0.5+1e-12 {
		return fmt.Errorf("heuristic: Σ w/d = %.4f exceeds 1/2", m.DeadlineDensity())
	}
	for _, c := range m.Constraints {
		if c.Kind != core.Asynchronous {
			return fmt.Errorf("heuristic: Theorem 3 applies to asynchronous constraints; %q is %s",
				c.Name, c.Kind)
		}
		w := c.ComputationTime(m.Comm)
		if c.Deadline/2 < w {
			return fmt.Errorf("heuristic: constraint %q violates ⌊d/2⌋ ≥ w (d=%d, w=%d)",
				c.Name, c.Deadline, w)
		}
	}
	return nil
}

func transformedDensity(m *core.Model) float64 {
	u := 0.0
	for _, c := range m.Constraints {
		half := c.Deadline / 2
		if half == 0 {
			return 2 // certainly over
		}
		u += float64(c.ComputationTime(m.Comm)) / float64(half)
	}
	return u
}
