package heuristic

import (
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

func TestLocalSearchSimpleModel(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 6, Deadline: 6, Kind: core.Asynchronous,
	})
	res, err := LocalSearch(m, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("local search returned an infeasible schedule")
	}
}

func TestLocalSearchExampleSystem(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := LocalSearch(m, SearchOptions{Seed: 2, CycleLen: 40, Moves: 12000, Restarts: 6})
	if err != nil {
		t.Skip("stochastic search missed within budget (acceptable: heuristic is incomplete)")
	}
	if !sched.Feasible(m, res.Schedule) {
		t.Fatal("returned schedule infeasible")
	}
}

func TestLocalSearchNeverLies(t *testing.T) {
	// an over-dense model: whatever the cost function does, the
	// search must never return success
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.Comm.AddElement("c", 1)
	for _, e := range []string{"a", "b", "c"} {
		m.AddConstraint(&core.Constraint{
			Name: "c" + e, Task: core.ChainTask(e),
			Period: 2, Deadline: 2, Kind: core.Asynchronous,
		})
	}
	if _, err := LocalSearch(m, SearchOptions{Seed: 3, Moves: 600, Restarts: 2}); err == nil {
		t.Fatal("infeasible model scheduled")
	}
}

func TestLocalSearchInvalidModel(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 9)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 2, Deadline: 2, Kind: core.Periodic,
	})
	if _, err := LocalSearch(m, SearchOptions{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestLocalSearchFindsWhatServersMiss(t *testing.T) {
	// Density just over the Theorem-3 bound: the server ladder can
	// fail while a cyclic schedule exists. The search must either
	// find a verified schedule or honestly give up — count successes
	// over a small batch to ensure it is actually useful.
	rng := rand.New(rand.NewSource(9))
	found := 0
	for i := 0; i < 8; i++ {
		m := workload.AsyncOnly(rng, 2, 0.8)
		if m.Validate() != nil {
			continue
		}
		if res, err := LocalSearch(m, SearchOptions{Seed: int64(i), Moves: 2500}); err == nil {
			if !sched.Feasible(m, res.Schedule) {
				t.Fatal("infeasible schedule returned")
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("local search never succeeded on density-0.8 instances")
	}
}
