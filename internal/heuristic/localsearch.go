package heuristic

import (
	"math/rand"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// Local search: when the server-transformation heuristic fails, a
// randomized repair pass often still finds a feasible static schedule
// — the search space is just a cyclic string over V ∪ {φ}. The
// paper's Theorem 2 says no efficient complete method exists, so a
// sound incomplete one (every returned schedule is verified) is the
// pragmatic complement to the exact searcher.

// SearchOptions tune the local search.
type SearchOptions struct {
	// CycleLen is the schedule length to search over; 0 picks the
	// hyperperiod (capped at 4× the largest deadline).
	CycleLen int
	// Moves bounds the number of mutation attempts. Default 4000.
	Moves int
	// Restarts is how many random restarts to take. Default 4.
	Restarts int
	// Seed makes runs reproducible.
	Seed int64
}

// LocalSearch hill-climbs over schedules of a fixed cycle length,
// minimizing total deadline violation, with random restarts. The
// returned schedule is always verified; ErrNoSchedule means the
// search budget ran out.
func LocalSearch(m *core.Model, opt SearchOptions) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := opt.CycleLen
	if n <= 0 {
		n = m.Hyperperiod()
		maxD := 1
		for _, c := range m.Constraints {
			if c.Deadline > maxD {
				maxD = c.Deadline
			}
		}
		if cap := 4 * maxD; n > cap {
			n = cap
		}
		if n < maxD {
			n = maxD
		}
	}
	moves := opt.Moves
	if moves <= 0 {
		moves = 4000
	}
	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	elems := m.ElementsUsed()
	alphabet := append([]string{sched.Idle}, elems...)
	// One analyzer-equivalent checker for the whole run: candidate
	// feasibility per mutation without re-deriving alignment windows or
	// re-parsing executions (Validate has ruled out cyclic task graphs).
	ck := sched.MustChecker(m)

	for r := 0; r < restarts; r++ {
		s := randomInitial(m, n, rng)
		cost := violation(ck, s)
		if cost == 0 {
			return verified(m, s)
		}
		for mv := 0; mv < moves; mv++ {
			i := rng.Intn(n)
			old := s.Slots[i]
			var cand string
			if rng.Intn(4) == 0 {
				// swap two slots
				j := rng.Intn(n)
				s.Slots[i], s.Slots[j] = s.Slots[j], s.Slots[i]
				nc := violation(ck, s)
				if nc <= cost {
					cost = nc
				} else {
					s.Slots[i], s.Slots[j] = s.Slots[j], s.Slots[i]
				}
			} else {
				cand = alphabet[rng.Intn(len(alphabet))]
				if cand == old {
					continue
				}
				s.Slots[i] = cand
				nc := violation(ck, s)
				if nc <= cost {
					cost = nc
				} else {
					s.Slots[i] = old
				}
			}
			if cost == 0 {
				return verified(m, s)
			}
		}
	}
	return nil, ErrNoSchedule
}

// verified wraps a zero-violation schedule in a Result after an
// independent feasibility check.
func verified(m *core.Model, s *sched.Schedule) (*Result, error) {
	rep := sched.Check(m, s)
	if !rep.Feasible {
		return nil, ErrNoSchedule // cost function and checker disagree: refuse
	}
	return &Result{Schedule: s, Report: rep, Merged: m, Servers: map[string][2]int{}}, nil
}

// randomInitial seeds the search with a demand-proportional random
// schedule: each element receives slots in proportion to its worst
// window pressure, shuffled.
func randomInitial(m *core.Model, n int, rng *rand.Rand) *sched.Schedule {
	quota := map[string]int{}
	for _, c := range m.Constraints {
		window := c.Deadline
		if c.Kind == core.Periodic && c.Period > window {
			window = c.Period
		}
		need := map[string]int{}
		for _, node := range c.Task.Nodes() {
			e := c.Task.ElementOf(node)
			need[e] += m.Comm.WeightOf(e)
		}
		for e, k := range need {
			q := (k*n + window - 1) / window
			if q > quota[e] {
				quota[e] = q
			}
		}
	}
	slots := make([]string, 0, n)
	for e, q := range quota {
		for i := 0; i < q && len(slots) < n; i++ {
			slots = append(slots, e)
		}
	}
	for len(slots) < n {
		slots = append(slots, sched.Idle)
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return &sched.Schedule{Slots: slots}
}

// violation is the search's cost: the total amount by which
// constraints overshoot their deadlines under the exact semantics
// (capped per constraint to keep Infinite latencies comparable). The
// checker's Worsts reports the same per-constraint worst cases as the
// Analyzer, in m.Constraints order.
func violation(ck *sched.Checker, s *sched.Schedule) int {
	total := 0
	for ci, worst := range ck.Worsts(s) {
		c := ck.Constraint(ci)
		if worst > c.Deadline {
			over := worst - c.Deadline
			cap := 10 * c.Deadline
			if worst == sched.Infinite || over > cap {
				over = cap
			}
			total += over
		}
	}
	return total
}
