package hwsynth

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/fault"
	"rtm/internal/sched"
)

// chainModel: src(1) -> mid(3) -> out(1)
func chainModel() *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("src", 1)
	m.Comm.AddElement("mid", 3)
	m.Comm.AddElement("out", 1)
	m.Comm.AddPath("src", "mid")
	m.Comm.AddPath("mid", "out")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("src", "mid", "out"),
		Period: 10, Deadline: 10, Kind: core.Periodic,
	})
	return m
}

// diamondModel: s -> l(5), s -> r(2), both -> t
func diamondModel() *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("s", 1)
	m.Comm.AddElement("l", 5)
	m.Comm.AddElement("r", 2)
	m.Comm.AddElement("t", 1)
	m.Comm.AddPath("s", "l")
	m.Comm.AddPath("s", "r")
	m.Comm.AddPath("l", "t")
	m.Comm.AddPath("r", "t")
	task := core.NewTaskGraph()
	for _, e := range []string{"s", "l", "r", "t"} {
		task.AddStep(e, e)
	}
	task.AddPrec("s", "l")
	task.AddPrec("s", "r")
	task.AddPrec("l", "t")
	task.AddPrec("r", "t")
	m.AddConstraint(&core.Constraint{
		Name: "D", Task: task, Period: 20, Deadline: 20, Kind: core.Periodic,
	})
	return m
}

func TestCompileStructure(t *testing.T) {
	m := chainModel()
	n, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Units) != 3 || len(n.Wires) != 2 {
		t.Fatalf("units=%d wires=%d", len(n.Units), len(n.Wires))
	}
	mid := n.UnitFor("mid")
	if mid == nil || mid.Latency != 3 || mid.II != 3 {
		t.Fatalf("mid unit = %+v", mid)
	}
	p, err := Compile(m, Options{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.UnitFor("mid").II != 1 {
		t.Fatal("pipelined II wrong")
	}
	if n.UnitFor("nope") != nil {
		t.Fatal("unknown unit found")
	}
	if n.Area() <= 0 {
		t.Fatal("area not positive")
	}
}

func TestCriticalPathLatency(t *testing.T) {
	m := diamondModel()
	cp, err := CriticalPathLatency(m, m.Constraints[0].Task)
	if err != nil {
		t.Fatal(err)
	}
	// s(1) -> l(5) -> t(1) = 7, less than total work 9
	if cp != 7 {
		t.Fatalf("critical path = %d, want 7", cp)
	}
	work := m.Constraints[0].ComputationTime(m.Comm)
	if cp >= work {
		t.Fatalf("hardware bound %d should beat software bound %d", cp, work)
	}
}

func TestSimulateChainDataflow(t *testing.T) {
	m := chainModel()
	n, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	identity := func(in map[string]int) int {
		for _, v := range in {
			return v
		}
		return 0
	}
	res := Simulate(m, n, 30, map[string]fault.Behavior{
		"src": identity, "mid": identity, "out": identity,
	}, map[string]Feed{
		"src": func(c int) (int, bool) { return 42, true },
	})
	if len(res.Outputs["out"]) == 0 {
		t.Fatal("out never produced")
	}
	if v, ok := res.LastValue("out", 29); !ok || v != 42 {
		t.Fatalf("out = %d, %v", v, ok)
	}
	// first out: src fires at 0, completes 1; mid fires 1? (wire set
	// at cycle 1 during completion phase; mid's firing pass same
	// cycle sees it) -> mid fires 1 completes 4; out fires 4
	// completes 5.
	first := res.Outputs["out"][0]
	if first.Cycle != 5 {
		t.Fatalf("first out at cycle %d, want 5", first.Cycle)
	}
}

func TestPropagationDelayChain(t *testing.T) {
	m := chainModel()
	n, err := Compile(m, Options{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PropagationDelay(m, n, "src", "out", 40, 120)
	if err != nil {
		t.Fatal(err)
	}
	// pipeline: src(1)+mid(3)+out(1) = 5 cycles of latency
	if d != 5 {
		t.Fatalf("propagation = %d, want 5", d)
	}
}

func TestPropagationDiamondBeatsSoftware(t *testing.T) {
	m := diamondModel()
	n, err := Compile(m, Options{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := PropagationDelay(m, n, "s", "t", 60, 200)
	if err != nil {
		t.Fatal(err)
	}
	// first observable change races down the short branch:
	// s(1)+r(2)+t(1) = 4
	if first != 4 {
		t.Fatalf("first-change delay = %d, want 4 (shortest path)", first)
	}
	settle, err := SettlingDelay(m, n, "s", "t", 60, 200)
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := CriticalPathLatency(m, m.Constraints[0].Task)
	if settle != cp {
		t.Fatalf("settling delay %d != critical path %d", settle, cp)
	}
	work := m.Constraints[0].ComputationTime(m.Comm)
	// hardware settles at the critical path (7), strictly below the
	// single-processor bound (total work 9)
	if settle >= work {
		t.Fatalf("hardware settling %d not below software work %d", settle, work)
	}
}

func TestNonPipelinedThroughput(t *testing.T) {
	m := chainModel()
	n, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counter := 0
	res := Simulate(m, n, 62, nil, map[string]Feed{
		"src": func(c int) (int, bool) { counter++; return counter, true },
	})
	// mid (II=3) throttles the pipeline: out fires every ~3 cycles
	outs := len(res.Outputs["out"])
	if outs < 15 || outs > 21 {
		t.Fatalf("out count = %d over 62 cycles, want ≈ 62/3", outs)
	}
	p, _ := Compile(m, Options{Pipelined: true})
	counter = 0
	res2 := Simulate(m, p, 62, nil, map[string]Feed{
		"src": func(c int) (int, bool) { counter++; return counter, true },
	})
	if len(res2.Outputs["out"]) <= outs {
		t.Fatalf("pipelining did not raise throughput: %d vs %d",
			len(res2.Outputs["out"]), outs)
	}
}

func TestSimulateNoFeedNoOutput(t *testing.T) {
	m := chainModel()
	n, _ := Compile(m, Options{})
	res := Simulate(m, n, 20, nil, nil)
	if len(res.Outputs["out"]) != 0 {
		t.Fatal("output without any source feed")
	}
	if _, ok := res.LastValue("out", 19); ok {
		t.Fatal("LastValue on empty stream")
	}
}

func TestHardwareSoftwareValueAgreement(t *testing.T) {
	// the hardware simulator and the fault interpreter must compute
	// the same value stream for the same behaviors
	m := chainModel()
	n, _ := Compile(m, Options{})
	add1 := func(in map[string]int) int {
		s := 0
		for _, v := range in {
			s += v
		}
		return s + 1
	}
	hw := Simulate(m, n, 40, map[string]fault.Behavior{
		"src": add1, "mid": add1, "out": add1,
	}, map[string]Feed{
		"src": func(c int) (int, bool) { return 10, true },
	})
	// software: schedule the chain and run the fault interpreter
	swSched := sched.New("src", "mid", "mid", "mid", "out", sched.Idle)
	sw := fault.Run(m, swSched, 40, fault.Options{
		Behaviors: map[string]fault.Behavior{"src": add1, "mid": add1, "out": add1},
		Sources:   map[string]int{"src": 10},
	})
	// src seeds differ in index handling; compare the *set* of out
	// values modulo the ramp: first software out = ((10+0)+1+1)+1 = 13
	if len(sw.Outputs["out"]) == 0 || sw.Outputs["out"][0] != 13 {
		t.Fatalf("software out = %v", sw.Outputs["out"])
	}
	if v, ok := hw.LastValue("out", 39); !ok || v != 13 {
		t.Fatalf("hardware out = %d, %v", v, ok)
	}
}
