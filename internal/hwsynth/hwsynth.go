// Package hwsynth develops the paper's closing research direction:
// "synthesize complete hardware-software systems from specifications
// based on our model by taking advantage of VLSI technology, such as
// along the line of the system compiler project of [DAS et al 83]".
//
// A communication graph compiles directly into a synchronous netlist:
// one hardware unit per functional element (latency = computation
// time, initiation interval = latency for a non-pipelined unit, 1 for
// a fully pipelined one) and one wire per communication path. A
// cycle-accurate simulator executes all units in parallel — the
// "initial abstract machine [with] a processor for every schedulable
// unit of computation" — so a task graph's completion time is bounded
// by its critical path rather than its total work, which is the
// hardware speed-up the direction promises.
package hwsynth

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/fault"
)

// Unit is one synthesized hardware block.
type Unit struct {
	Elem    string
	Latency int // cycles from firing to output valid
	II      int // initiation interval: min cycles between firings
}

// Wire is a point-to-point connection.
type Wire struct {
	From, To string
}

// Netlist is the synthesized design.
type Netlist struct {
	Units []Unit
	Wires []Wire
	units map[string]*Unit
}

// UnitFor returns the unit implementing elem, or nil.
func (n *Netlist) UnitFor(elem string) *Unit { return n.units[elem] }

// Options control compilation.
type Options struct {
	// Pipelined units accept a new input every cycle (II = 1)
	// regardless of latency — the hardware analogue of the paper's
	// software pipelining. Non-pipelined units have II = latency.
	Pipelined bool
}

// Compile synthesizes the netlist for a model's communication graph.
// Elements of weight 0 become wires-through (latency 0, II 1).
func Compile(m *core.Model, opt Options) (*Netlist, error) {
	if err := m.Comm.Validate(); err != nil {
		return nil, err
	}
	n := &Netlist{units: map[string]*Unit{}}
	for _, e := range m.Comm.Elements() {
		w := m.Comm.WeightOf(e)
		ii := w
		if opt.Pipelined || ii < 1 {
			ii = 1
		}
		u := Unit{Elem: e, Latency: w, II: ii}
		n.Units = append(n.Units, u)
		n.units[e] = &n.Units[len(n.Units)-1]
	}
	for _, edge := range m.Comm.G.Edges() {
		n.Wires = append(n.Wires, Wire{From: edge.From, To: edge.To})
	}
	return n, nil
}

// Area returns a crude area estimate: Σ latency per unit (a
// weight-proportional datapath) plus one register per wire.
func (n *Netlist) Area() int {
	a := 0
	for _, u := range n.Units {
		a += u.Latency
		if u.Latency == 0 {
			a++
		}
	}
	return a + len(n.Wires)
}

// CriticalPathLatency returns the hardware completion bound of a task
// graph on this netlist: the maximum total unit latency along any
// directed path — attainable because every element has its own unit.
func CriticalPathLatency(m *core.Model, task *core.TaskGraph) (int, error) {
	weight := make(map[string]int, task.G.NumNodes())
	for _, node := range task.Nodes() {
		weight[node] = m.Comm.WeightOf(task.ElementOf(node))
	}
	_, cp, err := task.G.CriticalPath(weight)
	return cp, err
}

// Feed supplies external input values to a source unit per cycle;
// return ok=false when no new value is available this cycle.
type Feed func(cycle int) (value int, ok bool)

// Probe records one output event of a unit.
type Probe struct {
	Cycle int
	Value int
}

// SimResult is a cycle-accurate run.
type SimResult struct {
	Cycles  int
	Outputs map[string][]Probe // per element, in cycle order
}

// LastValue returns the most recent output of elem at or before
// cycle, and whether any exists.
func (r *SimResult) LastValue(elem string, cycle int) (int, bool) {
	probes := r.Outputs[elem]
	val, ok := 0, false
	for _, p := range probes {
		if p.Cycle > cycle {
			break
		}
		val, ok = p.Value, true
	}
	return val, ok
}

// Simulate runs the netlist for the given number of cycles under
// synchronous-dataflow token semantics: every wire latches the latest
// value with a sequence number; a unit fires when its initiation
// interval has elapsed and every input wire carries a token it has
// not consumed yet (sources fire when their feed produces a value);
// outputs appear latency cycles after firing. Pipelined units (II <
// latency) keep several computations in flight. Completions are
// processed before firings within a cycle, so a value produced at
// cycle c can be consumed at cycle c. Behaviors default to
// fault.DefaultBehavior, keyed by producing element like the fault
// interpreter, so hardware and software runs compute identical
// values.
func Simulate(m *core.Model, n *Netlist, cycles int, behaviors map[string]fault.Behavior, feeds map[string]Feed) *SimResult {
	type pendingRun struct {
		completeAt int
		inputs     map[string]int
	}
	type wire struct {
		val int
		seq int // 0 = never written
	}
	type state struct {
		nextFire int
		inflight []pendingRun
		consumed map[string]int // input wire -> last consumed seq
	}
	wires := map[string]*wire{}
	states := map[string]*state{}
	for _, u := range n.Units {
		states[u.Elem] = &state{consumed: map[string]int{}}
	}
	for _, w := range n.Wires {
		wires[w.From+"->"+w.To] = &wire{}
	}
	res := &SimResult{Cycles: cycles, Outputs: map[string][]Probe{}}

	elems := make([]string, 0, len(n.Units))
	for _, u := range n.Units {
		elems = append(elems, u.Elem)
	}
	sort.Strings(elems)

	for c := 0; c < cycles; c++ {
		// completions first: outputs become visible this cycle
		for _, e := range elems {
			st := states[e]
			rest := st.inflight[:0]
			for _, run := range st.inflight {
				if run.completeAt > c {
					rest = append(rest, run)
					continue
				}
				beh := behaviors[e]
				if beh == nil {
					beh = fault.DefaultBehavior
				}
				val := beh(run.inputs)
				res.Outputs[e] = append(res.Outputs[e], Probe{Cycle: c, Value: val})
				for _, succ := range m.Comm.G.Succ(e) {
					if w, ok := wires[e+"->"+succ]; ok {
						w.val = val
						w.seq++
					}
				}
			}
			st.inflight = rest
		}
		// firings: need a fresh token on every input
		for _, e := range elems {
			st := states[e]
			u := n.units[e]
			if c < st.nextFire {
				continue
			}
			inputs := map[string]int{}
			preds := m.Comm.G.Pred(e)
			if len(preds) == 0 {
				feed, ok := feeds[e]
				if !ok {
					continue
				}
				v, have := feed(c)
				if !have {
					continue
				}
				inputs[""] = v
			} else {
				ready := true
				for _, p := range preds {
					k := p + "->" + e
					w := wires[k]
					if w == nil || w.seq == 0 || w.seq <= st.consumed[k] {
						ready = false
						break
					}
					inputs[p] = w.val
				}
				if !ready {
					continue
				}
				for _, p := range preds {
					k := p + "->" + e
					st.consumed[k] = wires[k].seq
				}
			}
			completeAt := c + u.Latency
			if u.Latency == 0 {
				completeAt = c + 1 // zero-weight elements still take a register stage
			}
			st.inflight = append(st.inflight, pendingRun{completeAt: completeAt, inputs: inputs})
			st.nextFire = c + u.II
		}
	}
	return res
}

// stepRun simulates a step change on the source feed at changeCycle
// and returns the sink's probe stream.
func stepRun(m *core.Model, n *Netlist, source, sink string, changeCycle, horizon int) []Probe {
	feeds := map[string]Feed{
		source: func(c int) (int, bool) {
			if c < changeCycle {
				return 1, true
			}
			return 2, true
		},
	}
	res := Simulate(m, n, horizon, nil, feeds)
	return res.Outputs[sink]
}

// PropagationDelay measures, by simulation, how many cycles a source
// value change takes to become *observable* at a sink's output: the
// first sink output after the change that differs from the steady
// state. In a streaming pipeline this is the SHORTEST source-to-sink
// path (the change races down the fastest branch and combines with
// stale values from slower branches). Returns an error if the change
// never propagates.
func PropagationDelay(m *core.Model, n *Netlist, source, sink string, changeCycle, horizon int) (int, error) {
	probes := stepRun(m, n, source, sink, changeCycle, horizon)
	steady, found := 0, false
	for _, p := range probes {
		if p.Cycle >= changeCycle {
			break
		}
		steady, found = p.Value, true
	}
	if !found {
		return 0, fmt.Errorf("hwsynth: sink %q produced nothing before the change", sink)
	}
	for _, p := range probes {
		if p.Cycle >= changeCycle && p.Value != steady {
			return p.Cycle - changeCycle, nil
		}
	}
	return 0, fmt.Errorf("hwsynth: change at %q never reached %q within %d cycles", source, sink, horizon)
}

// SettlingDelay measures how many cycles after a source step the
// sink's output becomes *fully consistent* with the new value: the
// first cycle from which every sink output equals the final value.
// In a streaming pipeline this is the CRITICAL (longest) path — the
// slowest branch must deliver before the output stops glitching.
func SettlingDelay(m *core.Model, n *Netlist, source, sink string, changeCycle, horizon int) (int, error) {
	probes := stepRun(m, n, source, sink, changeCycle, horizon)
	if len(probes) == 0 {
		return 0, fmt.Errorf("hwsynth: sink %q produced nothing", sink)
	}
	final := probes[len(probes)-1].Value
	settled := -1
	for _, p := range probes {
		if p.Cycle < changeCycle {
			continue
		}
		if p.Value == final {
			if settled < 0 {
				settled = p.Cycle
			}
		} else {
			settled = -1
		}
	}
	if settled < 0 {
		return 0, fmt.Errorf("hwsynth: sink %q never settled within %d cycles", sink, horizon)
	}
	return settled - changeCycle, nil
}
