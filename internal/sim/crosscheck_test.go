package sim

// Cross-validation between the two independent implementations of the
// execution semantics: the static analyzer (internal/sched computes
// earliest completions over the parsed trace) and the virtual machine
// (internal/exec records real executions and witnesses invocations).
// Any disagreement means one of them misimplements the paper's
// semantics.

import (
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/exec"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

func TestAnalyzerMatchesVMOnExample(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	crossCheck(t, m, res.Schedule)
}

func TestAnalyzerMatchesVMOnRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for i := 0; i < 15; i++ {
		p := workload.DefaultParams()
		p.TargetUtil = 0.3 + 0.3*rng.Float64()
		m, err := workload.Random(rng, p)
		if err != nil {
			continue
		}
		res, err := heuristic.Schedule(m, heuristic.Options{})
		if err != nil {
			continue // heuristic may fail; cross-check needs a schedule
		}
		crossCheck(t, m, res.Schedule)
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d random models cross-checked", checked)
	}
}

// crossCheck verifies, for a set of invocation instants, that the
// VM's witness completion equals the analyzer's earliest completion,
// and that deadline verdicts agree.
func crossCheck(t *testing.T, m *core.Model, s *sched.Schedule) {
	t.Helper()
	a := sched.AnalyzerFor(m, s)
	maxD := 1
	for _, c := range m.Constraints {
		if c.Deadline > maxD {
			maxD = c.Deadline
		}
	}
	horizon := 4*s.Len() + 4*maxD
	rec := exec.Run(m, s, horizon)

	var invs []exec.Invocation
	for _, c := range m.Constraints {
		for phase := 0; phase < s.Len() && phase < 25; phase++ {
			if phase+2*maxD < horizon {
				invs = append(invs, exec.Invocation{Constraint: c.Name, Time: phase})
			}
		}
	}
	outcomes := exec.CheckInvocations(m, rec, invs)
	for i, o := range outcomes {
		c := m.ConstraintByName(o.Invocation.Constraint)
		want := a.EarliestCompletion(c.Task, o.Invocation.Time)
		if o.Completed == -1 {
			// VM ran a finite horizon; the analyzer may still find a
			// completion beyond it. Only flag disagreement when the
			// analyzer's completion is safely inside the horizon.
			if want != sched.Infinite && want < horizon-1 {
				t.Fatalf("inv %d (%s@%d): VM found no witness, analyzer says %d",
					i, o.Invocation.Constraint, o.Invocation.Time, want)
			}
			continue
		}
		if want != o.Completed {
			t.Fatalf("inv %d (%s@%d): VM completion %d, analyzer %d",
				i, o.Invocation.Constraint, o.Invocation.Time, o.Completed, want)
		}
		if !o.FreshnessOK {
			t.Fatalf("inv %d (%s@%d): VM reports stale data on a verified schedule",
				i, o.Invocation.Constraint, o.Invocation.Time)
		}
	}
}
