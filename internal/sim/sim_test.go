package sim

import (
	"strings"
	"testing"

	"rtm/internal/core"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

func TestRunExampleSystemHeuristicSchedule(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// random arrivals
	r := Run(m, res.Schedule, Options{Seed: 42})
	if !r.AllMet {
		t.Fatalf("random run failed: %s (pipeline %v)", r, r.PipelineErr)
	}
	if len(r.Outcomes) == 0 {
		t.Fatal("no invocations checked")
	}
	// adversarial arrivals sweep every phase
	ra := Run(m, res.Schedule, Options{Adversarial: true})
	if !ra.AllMet {
		t.Fatalf("adversarial run failed: %s", ra)
	}
	if ra.WorstSlack < 0 {
		t.Fatalf("negative slack %d on feasible schedule", ra.WorstSlack)
	}
}

func TestRunDetectsInfeasibleSchedule(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	// a schedule that ignores fZ entirely: Z invocations can never
	// complete fresh executions
	s := sched.New("fX", "fX", "fS", "fS", "fS", "fS", "fK", "fK",
		"fY", "fY", "fY", sched.Idle)
	r := Run(m, s, Options{Seed: 1})
	if r.AllMet {
		t.Fatal("missing fZ not detected")
	}
	if r.MissCount == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestPeriodicInvocations(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	invs := PeriodicInvocations(m, 100)
	countX := 0
	for _, i := range invs {
		if i.Constraint == "X" {
			countX++
			if i.Time%20 != 0 {
				t.Fatalf("X invocation at %d", i.Time)
			}
		}
		if i.Constraint == "Z" {
			t.Fatal("async constraint in periodic invocations")
		}
	}
	if countX != 4 { // t = 0,20,40,60 (80+20 deadline exceeds 100)
		t.Fatalf("X invocations = %d, want 4", countX)
	}
}

func TestAdversarialSweepsPhases(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 5, Deadline: 5, Kind: core.Asynchronous,
	})
	s := sched.New("a", sched.Idle, sched.Idle)
	invs := AdversarialAsyncInvocations(m, s, 200)
	if len(invs) != s.Len() {
		t.Fatalf("invocations = %d, want %d (one per phase)", len(invs), s.Len())
	}
	phases := map[int]bool{}
	last := -1
	for _, inv := range invs {
		phases[inv.Time%s.Len()] = true
		if last >= 0 && inv.Time-last < 5 {
			t.Fatalf("separation violated: %d after %d", inv.Time, last)
		}
		last = inv.Time
	}
	if len(phases) != s.Len() {
		t.Fatalf("phases covered = %d, want %d", len(phases), s.Len())
	}
}

func TestRandomAsyncRespectsSeparation(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 7, Deadline: 10, Kind: core.Asynchronous,
	})
	for seed := int64(0); seed < 5; seed++ {
		r := Run(m, sched.New("a"), Options{Seed: seed, Horizon: 300})
		last := map[string]int{}
		for _, o := range r.Outcomes {
			if prev, ok := last[o.Invocation.Constraint]; ok {
				if o.Invocation.Time-prev < 7 {
					t.Fatalf("separation violated at %d after %d", o.Invocation.Time, prev)
				}
			}
			last[o.Invocation.Constraint] = o.Invocation.Time
		}
	}
}

// TestSeedIgnoredWhenAdversarial pins the documented Options
// contract: under Adversarial the arrival pattern is a deterministic
// phase sweep, so the Seed must have no effect whatsoever — byte-wise
// identical invocation outcomes across seeds — while the random mode
// really does consume it.
func TestSeedIgnoredWhenAdversarial(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := Run(m, res.Schedule, Options{Adversarial: true, Seed: 0})
	for _, seed := range []int64{1, 7, 1 << 40, -3} {
		r := Run(m, res.Schedule, Options{Adversarial: true, Seed: seed})
		if len(r.Outcomes) != len(ref.Outcomes) {
			t.Fatalf("seed %d: %d outcomes, want %d", seed, len(r.Outcomes), len(ref.Outcomes))
		}
		for i := range r.Outcomes {
			if r.Outcomes[i] != ref.Outcomes[i] {
				t.Fatalf("seed %d: outcome %d = %+v, want %+v (seed leaked into adversarial run)",
					seed, i, r.Outcomes[i], ref.Outcomes[i])
			}
		}
		if r.MissCount != ref.MissCount || r.StaleCount != ref.StaleCount || r.WorstSlack != ref.WorstSlack {
			t.Fatalf("seed %d: summary diverged: %s vs %s", seed, r, ref)
		}
	}

	// sanity check on the contrast: in random mode the seed is live —
	// some seed in a small range must shift at least one arrival time
	a := Run(m, res.Schedule, Options{Seed: 0})
	seedLive := false
	for seed := int64(1); seed < 8 && !seedLive; seed++ {
		b := Run(m, res.Schedule, Options{Seed: seed})
		if len(a.Outcomes) != len(b.Outcomes) {
			seedLive = true
			break
		}
		for i := range a.Outcomes {
			if a.Outcomes[i].Invocation != b.Outcomes[i].Invocation {
				seedLive = true
				break
			}
		}
	}
	if !seedLive {
		t.Fatal("random mode ignored the seed across 8 seeds")
	}
}

func TestResultString(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m, res.Schedule, Options{Seed: 3})
	if !strings.Contains(r.String(), "misses=0") {
		t.Fatalf("String = %s", r)
	}
}
