// Package sim drives a scheduled system end to end: it generates
// invocation patterns (periodic releases plus random or adversarial
// asynchronous arrivals), runs the exec virtual machine over the
// static schedule, and checks every invocation against its deadline
// and the data-freshness semantics. It is the closed-loop testbed
// standing in for the physical plant the paper's systems control.
package sim

import (
	"fmt"
	"math/rand"

	"rtm/internal/core"
	"rtm/internal/exec"
	"rtm/internal/sched"
)

// Options configure a simulation run.
type Options struct {
	// Horizon in slots; 0 means 3 hyperperiods plus the largest
	// deadline.
	Horizon int
	// Seed for the random asynchronous arrival generator. Ignored
	// when Adversarial is set: the adversarial arrival pattern is a
	// deterministic sweep of every schedule phase, so there is no
	// randomness for a seed to steer and two runs differing only in
	// Seed are identical.
	Seed int64
	// Adversarial makes every asynchronous constraint arrive at its
	// worst instant (scanning all phases) instead of randomly; it
	// supersedes Seed (see above).
	Adversarial bool
}

// Result is the outcome of a run.
type Result struct {
	Horizon     int
	Outcomes    []exec.InvocationOutcome
	MissCount   int
	StaleCount  int
	WorstSlack  int // most negative slack observed (deadline - response); positive = headroom
	AllMet      bool
	PipelineErr []string
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("horizon=%d invocations=%d misses=%d stale=%d allMet=%v",
		r.Horizon, len(r.Outcomes), r.MissCount, r.StaleCount, r.AllMet)
}

// PeriodicInvocations lists every periodic release inside [0,
// horizon-maxSpan) so each checked invocation's full window fits the
// record.
func PeriodicInvocations(m *core.Model, horizon int) []exec.Invocation {
	var out []exec.Invocation
	for _, c := range m.Periodic() {
		for t := 0; t+c.Deadline < horizon; t += c.Period {
			out = append(out, exec.Invocation{Constraint: c.Name, Time: t})
		}
	}
	return out
}

// RandomAsyncInvocations draws, for every asynchronous constraint,
// arrivals with uniformly random gaps in [p, 3p] starting from a
// random phase.
func RandomAsyncInvocations(m *core.Model, horizon int, rng *rand.Rand) []exec.Invocation {
	var out []exec.Invocation
	for _, c := range m.Asynchronous() {
		t := rng.Intn(c.Period + 1)
		for t+c.Deadline < horizon {
			out = append(out, exec.Invocation{Constraint: c.Name, Time: t})
			t += c.Period + rng.Intn(2*c.Period+1)
		}
	}
	return out
}

// AdversarialAsyncInvocations releases each asynchronous constraint
// once at every phase of the schedule cycle (separated by at least p
// so the pattern is legal), covering the worst arrival instant.
func AdversarialAsyncInvocations(m *core.Model, s *sched.Schedule, horizon int) []exec.Invocation {
	var out []exec.Invocation
	cycle := s.Len()
	if cycle == 0 {
		return nil
	}
	for _, c := range m.Asynchronous() {
		// separation ≥ p and ≡ 1 (mod cycle) so successive arrivals
		// sweep every phase of the schedule.
		sep := c.Period
		if r := sep % cycle; r != 1 {
			sep += (1 - r + cycle) % cycle
		}
		phase := 0
		for t := 0; t+c.Deadline < horizon && phase < cycle; t += sep {
			out = append(out, exec.Invocation{Constraint: c.Name, Time: t})
			phase++
		}
	}
	return out
}

// Run executes the full closed loop: schedule → VM record →
// invocation checking.
func Run(m *core.Model, s *sched.Schedule, opt Options) *Result {
	horizon := opt.Horizon
	if horizon <= 0 {
		maxD := 1
		for _, c := range m.Constraints {
			if c.Deadline > maxD {
				maxD = c.Deadline
			}
		}
		horizon = 3*m.Hyperperiod() + maxD
		if cycle := s.Len(); cycle > 0 {
			// at least enough cycles for the adversarial sweep
			need := cycle*maxD + maxD
			if need > horizon {
				horizon = need
			}
		}
	}
	rec := exec.Run(m, s, horizon)

	invs := PeriodicInvocations(m, horizon)
	if opt.Adversarial {
		invs = append(invs, AdversarialAsyncInvocations(m, s, horizon)...)
	} else {
		rng := rand.New(rand.NewSource(opt.Seed))
		invs = append(invs, RandomAsyncInvocations(m, horizon, rng)...)
	}

	res := &Result{Horizon: horizon, AllMet: true}
	res.Outcomes = exec.CheckInvocations(m, rec, invs)
	res.WorstSlack = 1 << 30
	for _, o := range res.Outcomes {
		c := m.ConstraintByName(o.Invocation.Constraint)
		if !o.Met {
			res.MissCount++
			res.AllMet = false
		}
		if !o.FreshnessOK {
			res.StaleCount++
			res.AllMet = false
		}
		if o.Completed >= 0 && c != nil {
			slack := o.Invocation.Time + c.Deadline - o.Completed
			if slack < res.WorstSlack {
				res.WorstSlack = slack
			}
		}
	}
	if len(res.Outcomes) == 0 {
		res.WorstSlack = 0
	}
	res.PipelineErr = exec.PipelineViolations(rec)
	if len(res.PipelineErr) > 0 {
		res.AllMet = false
	}
	return res
}
