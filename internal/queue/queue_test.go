package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtm/internal/core"
)

// testModel builds a tiny valid model; distinct i give distinct
// isomorphism classes (the deadline is a canonical invariant).
func testModel(i int) *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "c", Task: core.ChainTask("a"),
		Period: 4 + i, Deadline: 4 + i, Kind: core.Asynchronous,
	})
	return m
}

func openQ(t *testing.T, dir string, workers int) *Queue {
	t.Helper()
	q, err := Open(dir, Options{Workers: workers, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

// instantSolver decides everything immediately and records the order
// in which models were handed to workers.
type instantSolver struct {
	mu    sync.Mutex
	order []string
}

func (s *instantSolver) solve(ctx context.Context, m *core.Model) (Verdict, error) {
	s.mu.Lock()
	s.order = append(s.order, core.Fingerprint(m))
	s.mu.Unlock()
	return Verdict{Decided: true, Feasible: true, Source: "exact"}, nil
}

func waitTerminal(t *testing.T, q *Queue, id string) *Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatalf("job %s did not reach a terminal state: %v", id, err)
	}
	return st
}

func TestQueueSubmitDrainDedup(t *testing.T) {
	q := openQ(t, t.TempDir(), 2)
	solver := &instantSolver{}
	q.Start(solver.solve)

	const n = 5
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := q.Submit(testModel(i), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Resubmitted {
			t.Fatalf("fresh class %d reported as resubmitted", i)
		}
		ids[i] = st.ID
	}
	// duplicate submissions dedup onto the existing jobs
	for i := 0; i < n; i++ {
		st, err := q.Submit(testModel(i), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Resubmitted || st.ID != ids[i] {
			t.Fatalf("duplicate submit %d: %+v", i, st)
		}
	}
	for _, id := range ids {
		st := waitTerminal(t, q, id)
		if st.State != Done || !st.Verdict.Decided || !st.Verdict.Feasible || st.Verdict.Source != "exact" {
			t.Fatalf("job %s: %+v", id, st)
		}
	}
	s := q.Stats()
	if s.Submitted != n || s.Deduped != n || s.Completed != n || s.Failed != 0 {
		t.Fatalf("stats: %+v", s)
	}
	solver.mu.Lock()
	calls := len(solver.order)
	solver.mu.Unlock()
	if calls != n {
		t.Fatalf("solver ran %d times, want %d (one per class)", calls, n)
	}
}

func TestQueueDrainOrder(t *testing.T) {
	q := openQ(t, t.TempDir(), 1)
	now := time.Now()
	// submitted before Start so the single worker observes the full
	// heap: priority desc, then deadline asc (zero = last), then FIFO
	subs := []struct {
		i    int
		opt  SubmitOptions
		rank int
	}{
		{0, SubmitOptions{}, 4},                                            // no priority, no deadline: last (earlier seq than #4)
		{1, SubmitOptions{Priority: 2}, 0},                                 // highest priority
		{2, SubmitOptions{Priority: 1, Deadline: now.Add(time.Hour)}, 2},   // later deadline
		{3, SubmitOptions{Priority: 1, Deadline: now.Add(time.Minute)}, 1}, // earliest deadline in band
		{4, SubmitOptions{}, 5},
		{5, SubmitOptions{Priority: 1}, 3}, // in band, no deadline: after dated peers
	}
	want := make([]string, len(subs))
	for _, s := range subs {
		st, err := q.Submit(testModel(s.i), SubmitOptions{Priority: s.opt.Priority, Deadline: s.opt.Deadline})
		if err != nil {
			t.Fatal(err)
		}
		want[s.rank] = st.ID
	}
	solver := &instantSolver{}
	q.Start(solver.solve)
	for _, id := range want {
		waitTerminal(t, q, id)
	}
	solver.mu.Lock()
	got := append([]string(nil), solver.order...)
	solver.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("drained %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order[%d] = %s, want %s\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
}

func TestQueueReopenResumesPending(t *testing.T) {
	dir := t.TempDir()
	q1 := openQ(t, dir, 0) // no workers: everything stays pending
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := q1.Submit(testModel(i), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if s := q1.Stats(); s.Depth != 3 {
		t.Fatalf("depth = %d, want 3", s.Depth)
	}
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := openQ(t, dir, 2)
	if s := q2.Stats(); s.Depth != 3 || s.CorruptTail != 0 {
		t.Fatalf("reopen stats: %+v", s)
	}
	solver := &instantSolver{}
	q2.Start(solver.solve)
	for _, id := range ids {
		if st := waitTerminal(t, q2, id); st.State != Done {
			t.Fatalf("resumed job %s: %+v", id, st)
		}
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}

	// third life: terminal states survive, nothing resurrects, and a
	// duplicate submit of a completed class answers with the verdict
	q3 := openQ(t, dir, 0)
	if s := q3.Stats(); s.Depth != 0 {
		t.Fatalf("terminal jobs resurrected: %+v", s)
	}
	st, err := q3.Submit(testModel(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resubmitted || st.State != Done || !st.Verdict.Feasible {
		t.Fatalf("resubmit of completed class: %+v", st)
	}
}

func TestQueueCloseCheckpointsRunning(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir, Options{Workers: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	running := make(chan struct{})
	q.Start(func(ctx context.Context, m *core.Model) (Verdict, error) {
		close(running)
		<-ctx.Done() // solve "forever" until shutdown
		return Verdict{}, ctx.Err()
	})
	st, err := q.Submit(testModel(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-running:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the job")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// the in-flight job checkpointed back to pending: its started
	// record has no terminal record, so replay resumes it
	q2 := openQ(t, dir, 0)
	s := q2.Stats()
	if s.Depth != 1 || s.Resumed != 1 {
		t.Fatalf("after checkpoint: %+v", s)
	}
	got, ok := q2.Get(st.ID)
	if !ok || got.State != Pending {
		t.Fatalf("checkpointed job: %+v", got)
	}
}

func TestQueueSolverOutcomes(t *testing.T) {
	q := openQ(t, t.TempDir(), 1)
	q.Start(func(ctx context.Context, m *core.Model) (Verdict, error) {
		switch core.Fingerprint(m) {
		case core.Fingerprint(testModel(1)):
			return Verdict{}, errors.New("boom")
		case core.Fingerprint(testModel(2)):
			return Verdict{Decided: false}, nil // budget ran out
		}
		return Verdict{Decided: true, Feasible: false, Source: "analysis"}, nil
	})
	cases := []struct {
		i         int
		wantState State
		wantErr   string
	}{
		{0, Done, ""},
		{1, Failed, "boom"},
		{2, Failed, "undecided: solve budget exhausted"},
	}
	for _, c := range cases {
		st, err := q.Submit(testModel(c.i), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := waitTerminal(t, q, st.ID)
		if got.State != c.wantState || got.Err != c.wantErr {
			t.Fatalf("model %d: %+v", c.i, got)
		}
	}
	if s := q.Stats(); s.Completed != 1 || s.Failed != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestQueueWaitAndGetContract(t *testing.T) {
	q := openQ(t, t.TempDir(), 0) // nothing drains: Wait must time out
	st, err := q.Submit(testModel(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	got, err := q.Wait(ctx, st.ID)
	if !errors.Is(err, context.DeadlineExceeded) || got == nil || got.State != Pending {
		t.Fatalf("Wait on pending job: %+v, %v", got, err)
	}
	if _, err := q.Wait(context.Background(), "no-such-job"); err == nil {
		t.Fatal("Wait invented a job")
	}
	if _, ok := q.Get("no-such-job"); ok {
		t.Fatal("Get invented a job")
	}
	if jobs := q.Jobs(); len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("Jobs() = %+v", jobs)
	}
	if q.Stats().OldestAgeNS <= 0 {
		t.Fatal("pending job has no age")
	}
}

func TestQueueClosedOps(t *testing.T) {
	q := openQ(t, t.TempDir(), 0)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := q.Submit(testModel(0), SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on closed queue: %v", err)
	}
}

func TestQueueSubmitRejectsInvalid(t *testing.T) {
	q := openQ(t, t.TempDir(), 0)
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "c", Task: core.ChainTask("a"),
		Period: 3, Deadline: 0, Kind: core.Asynchronous, // non-positive deadline: invalid
	})
	if _, err := q.Submit(m, SubmitOptions{}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if q.Bytes() != 0 {
		t.Fatal("rejected submit left journal bytes behind")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Pending: "pending", Running: "running", Done: "done", Failed: "failed", State(9): "state(9)",
	} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q", int(st), st.String())
		}
	}
	if Pending.Terminal() || Running.Terminal() || !Done.Terminal() || !Failed.Terminal() {
		t.Fatal("Terminal misclassifies")
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
