package queue

import (
	"context"
	"errors"
	"testing"
	"time"

	"rtm/internal/core"
)

// stateKey is the replay-visible identity of one job for the
// compaction equivalence check.
type stateKey struct {
	State      State
	Verdict    Verdict
	Err        string
	Priority   int
	SubmitUnix int64
}

func stateMap(q *Queue) map[string]stateKey {
	out := map[string]stateKey{}
	for _, st := range q.Jobs() {
		out[st.ID] = stateKey{
			State: st.State, Verdict: st.Verdict, Err: st.Err,
			Priority: st.Priority, SubmitUnix: st.SubmitUnix,
		}
	}
	return out
}

// TestQueueCompactReplaysIdentically is the satellite's pin: build a
// journal holding done, failed, running and pending jobs, compact it,
// and assert the compacted journal replays to the identical job-state
// map a replay of the uncompacted journal produces — while shedding
// bytes.
func TestQueueCompactReplaysIdentically(t *testing.T) {
	dir := t.TempDir()
	q := openQ(t, dir, 1)

	gate := make(chan struct{})
	release := make(chan struct{})
	q.Start(func(ctx context.Context, m *core.Model) (Verdict, error) {
		switch fp := core.Fingerprint(m); {
		case fp == core.Fingerprint(testModel(1)):
			return Verdict{}, errors.New("boom")
		case fp == core.Fingerprint(testModel(2)):
			close(gate)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return Verdict{}, ctx.Err()
		}
		return Verdict{Decided: true, Feasible: true, Source: "exact"}, nil
	})

	// job 0 done, job 1 failed, then job 2 blocks the single worker
	// (running), leaving jobs 3 and 4 pending
	st0, err := q.Submit(testModel(0), SubmitOptions{Priority: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, st0.ID)
	st1, err := q.Submit(testModel(1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, st1.ID)
	if _, err := q.Submit(testModel(2), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	<-gate // worker is now parked inside job 2
	for i := 3; i <= 4; i++ {
		if _, err := q.Submit(testModel(i), SubmitOptions{Priority: i}); err != nil {
			t.Fatal(err)
		}
	}

	before := q.Bytes()
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	after := q.Bytes()
	if after >= before {
		t.Fatalf("compaction grew the journal: %d -> %d bytes", before, after)
	}
	// compacting a compacted journal is stable
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	if q.Bytes() != after {
		t.Fatalf("second compact moved bytes: %d -> %d", after, q.Bytes())
	}

	want := stateMap(q)
	// the running job replays as pending — the crash-checkpoint rule
	for id, k := range want {
		if k.State == Running {
			k.State = Pending
			want[id] = k
		}
	}
	close(release)
	q.Close()

	re := openQ(t, dir, 0) // no workers: observe the replayed state
	got := stateMap(re)
	if len(got) != len(want) {
		t.Fatalf("replayed %d jobs, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("job %s missing after compacted replay", id)
		}
		if g != w {
			t.Fatalf("job %s: replayed %+v, want %+v", id, g, w)
		}
	}
	// terminal jobs must not re-enter the drain schedule
	if s := re.Stats(); s.Depth != 3 {
		t.Fatalf("replayed depth = %d, want 3 (one checkpointed + two pending)", s.Depth)
	}
}

func TestQueueCompactClosedErrors(t *testing.T) {
	q := openQ(t, t.TempDir(), 0)
	q.Close()
	if err := q.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact on closed queue: %v", err)
	}
}

// TestQueueDeadlineExpired pins drain-time deadline enforcement: an
// already-expired job fails fast with ErrDeadlineExpired, the solver
// is never invoked for it, and a job with a future deadline solves
// normally.
func TestQueueDeadlineExpired(t *testing.T) {
	q := openQ(t, t.TempDir(), 1)

	// submit before Start so the expired job cannot race the check
	expired, err := q.Submit(testModel(0), SubmitOptions{Deadline: time.Now().Add(-2 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := q.Submit(testModel(1), SubmitOptions{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}

	solver := &instantSolver{}
	q.Start(solver.solve)

	est := waitTerminal(t, q, expired.ID)
	if est.State != Failed || est.Err != ErrDeadlineExpired.Error() || !est.DeadlineExpired() {
		t.Fatalf("expired job: %+v", est)
	}
	fst := waitTerminal(t, q, fresh.ID)
	if fst.State != Done || fst.DeadlineExpired() {
		t.Fatalf("fresh job: %+v", fst)
	}

	solver.mu.Lock()
	for _, fp := range solver.order {
		if fp == expired.ID {
			t.Fatal("solver was invoked for an expired job")
		}
	}
	solver.mu.Unlock()

	s := q.Stats()
	if s.Expired != 1 || s.Failed != 1 || s.Completed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
