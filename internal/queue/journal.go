package queue

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rtm/internal/store"
	"rtm/internal/trace"
)

// journalName is the queue's journal inside its directory. The file
// shares the schedule store's segment framing (store.Frame /
// store.ScanFrames) but never its directory: queue state and decided
// outcomes are different lifetimes (jobs are garbage once terminal
// and compacted; store records are forever).
const journalName = "queue.log"

// Queue is a durable, fingerprint-deduplicated solve queue. Create
// with Open, then Start a worker pool; all methods are safe for
// concurrent use.
type Queue struct {
	dir string
	opt Options

	mu   sync.Mutex
	cond *sync.Cond // signals workers that pending gained a job (or closing)

	f       *os.File // journal, positioned at the clean end
	bytes   int64    // clean journal length
	jobs    map[string]*job
	pending pendingHeap
	seq     uint64
	closed  bool

	submitted     int64
	deduped       int64
	completed     int64
	failed        int64
	expired       int64
	resumed       int64
	replayed      int64
	corruptTail   int64
	journalErrors int64
	running       int64

	workers workerPool
}

// errBadQueueRecord marks a checksummed frame whose payload is not a
// valid queue record — replay treats it as corruption, ending the
// clean prefix there (same policy as the schedule store).
var errBadQueueRecord = errors.New("queue: undecodable journal record")

// Open opens (creating if necessary) the queue rooted at dir,
// replaying the journal into the job table and truncating any torn or
// corrupt tail to the clean prefix. Recovery rules: terminal records
// win forever (a done job is never resurrected); submitted records
// without a surviving terminal record become pending again, whether
// or not the crash interrupted a worker mid-solve.
func Open(dir string, opt Options) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	q := &Queue{dir: dir, opt: opt, f: f, jobs: make(map[string]*job)}
	q.cond = sync.NewCond(&q.mu)

	valid, dropped, err := store.ScanFrames(bufio.NewReader(f), func(payload []byte) error {
		rec, derr := trace.DecodeQueueRecord(payload)
		if derr != nil {
			return errBadQueueRecord
		}
		q.replay(rec)
		return nil
	})
	if errors.Is(err, errBadQueueRecord) {
		dropped, err = true, nil
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: replaying %s: %w", path, err)
	}
	if dropped {
		q.corruptTail++
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: %w", err)
	}
	if fi.Size() != valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("queue: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: %w", err)
	}
	q.bytes = valid

	// every surviving non-terminal job is pending again; jobs a crash
	// interrupted mid-solve (started, no terminal) count as resumed
	for _, j := range q.jobs {
		if j.state.Terminal() {
			continue
		}
		j.state = Pending
		heap.Push(&q.pending, j)
		if j.started {
			q.resumed++
		}
	}
	return q, nil
}

// replay applies one journal record to the job table (Open only; no
// locking, no appending). Records for terminal fingerprints are
// ignored — the no-resurrection rule.
func (q *Queue) replay(rec *trace.QueueRecordJSON) {
	q.replayed++
	j := q.jobs[rec.Fingerprint]
	if j != nil && j.state.Terminal() {
		return
	}
	switch rec.Type {
	case trace.QueueSubmitted:
		if j != nil {
			return // duplicate submit: first wins
		}
		m, err := rec.Model.ToModel()
		if err != nil {
			// unreachable: DecodeQueueRecord validated the model; be
			// defensive anyway and drop the job rather than panic later
			return
		}
		q.seq++
		q.jobs[rec.Fingerprint] = &job{
			id: rec.Fingerprint, model: m,
			priority: rec.Priority, deadline: rec.DeadlineUnix,
			seq: q.seq, submitUnix: rec.Unix, submitted: timeNowAt(rec.Unix),
			state: Pending, done: make(chan struct{}),
		}
	case trace.QueueStarted:
		if j != nil {
			j.started = true
		}
	case trace.QueueDone:
		if j == nil {
			j = q.stubJob(rec)
		}
		j.state = Done
		j.verdict = Verdict{Decided: true, Feasible: rec.Feasible, Source: rec.Source}
		close(j.done)
	case trace.QueueFailed:
		if j == nil {
			j = q.stubJob(rec)
		}
		j.state = Failed
		j.errMsg = rec.Error
		close(j.done)
	}
}

// stubJob registers a terminal job observed without its submitted
// record (possible when compaction dropped the submitted frame but
// kept the terminal one). It has no model — harmless, it never runs.
func (q *Queue) stubJob(rec *trace.QueueRecordJSON) *job {
	q.seq++
	j := &job{
		id: rec.Fingerprint, seq: q.seq, submitUnix: rec.Unix,
		priority:  rec.Priority,
		submitted: timeNowAt(rec.Unix), done: make(chan struct{}),
	}
	q.jobs[rec.Fingerprint] = j
	return j
}

// appendLocked encodes, frames, writes and (policy permitting) fsyncs
// one record. Caller holds q.mu.
func (q *Queue) appendLocked(rec *trace.QueueRecordJSON) error {
	payload, err := trace.EncodeQueueRecord(rec)
	if err != nil {
		return err
	}
	buf, err := store.Frame(payload)
	if err != nil {
		return err
	}
	if _, err := q.f.Write(buf); err != nil {
		return fmt.Errorf("queue: append: %w", err)
	}
	if !q.opt.NoSync {
		if err := q.f.Sync(); err != nil {
			return fmt.Errorf("queue: sync: %w", err)
		}
	}
	q.bytes += int64(len(buf))
	return nil
}

// transitionLocked journals a non-submitted state transition. Unlike
// Submit, a failed append here degrades durability, not state: the
// in-memory transition proceeds and the failure is counted — the
// replayed journal will simply re-run the job, which is idempotent
// because outcomes land in the content-addressed store.
func (q *Queue) transitionLocked(rec *trace.QueueRecordJSON) {
	if err := q.appendLocked(rec); err != nil {
		q.journalErrors++
	}
}

// timeNowAt approximates a monotonic submit time for replayed jobs
// from their wall-clock record stamp (ages of recovered jobs are
// measured from their original submission, not from the restart).
func timeNowAt(unix int64) time.Time {
	if unix <= 0 {
		return time.Now()
	}
	return time.Unix(unix, 0)
}
