package queue

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rtm/internal/store"
	"rtm/internal/trace"
)

// Compact rewrites the journal to the minimal record set that replays
// to the same job-state map: one record per job — the terminal record
// for done/failed jobs (replay reconstructs them as stubs, dropping
// the model a terminal job no longer needs), the submitted record for
// pending/running jobs (running reverts to pending on replay, exactly
// the crash-checkpoint rule). Started records and terminal jobs'
// model-carrying submitted records are what the rewrite sheds — on a
// long-lived queue that is almost the whole journal.
//
// The rewrite mirrors the store's Compact: temporary file, fsync,
// atomic rename, directory sync, reopen — a crash at any point leaves
// either the old or the new journal, never a mixture.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}

	jobs := make([]*job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })

	path := filepath.Join(q.dir, journalName)
	tmp := path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("queue: compact: %w", err)
	}
	fail := func(err error) error {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("queue: compact: %w", err)
	}
	w := bufio.NewWriter(tf)
	var size int64
	for _, j := range jobs {
		// Priority rides along on terminal records too — informational
		// there, but it keeps the replayed status identical to the live
		// one (the equivalence the compaction test pins).
		rec := &trace.QueueRecordJSON{Fingerprint: j.id, Unix: j.submitUnix, Priority: j.priority}
		switch j.state {
		case Done:
			rec.Type = trace.QueueDone
			rec.Feasible = j.verdict.Feasible
			rec.Source = j.verdict.Source
		case Failed:
			rec.Type = trace.QueueFailed
			rec.Error = j.errMsg
			if rec.Error == "" {
				rec.Error = "failed"
			}
		default:
			if j.model == nil {
				continue // defensive: a model-less job cannot be re-journaled or run
			}
			rec.Type = trace.QueueSubmitted
			rec.DeadlineUnix = j.deadline
			rec.Model = trace.NewModelJSON(j.model)
		}
		payload, err := trace.EncodeQueueRecord(rec)
		if err != nil {
			return fail(err)
		}
		buf, err := store.Frame(payload)
		if err != nil {
			return fail(err)
		}
		if _, err := w.Write(buf); err != nil {
			return fail(err)
		}
		size += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tf.Sync(); err != nil {
		return fail(err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("queue: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("queue: compact: %w", err)
	}
	syncDir(q.dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("queue: compact: reopening: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("queue: compact: %w", err)
	}
	q.f.Close()
	q.f = f
	q.bytes = size
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash;
// best-effort on filesystems that refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
