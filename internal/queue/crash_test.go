package queue

import (
	"os"
	"path/filepath"
	"testing"

	"rtm/internal/core"
	"rtm/internal/store"
	"rtm/internal/trace"
)

// buildTestJournal constructs a journal exercising all four record
// types across three jobs:
//
//	rec 1: submitted A        rec 5: started B
//	rec 2: submitted B        rec 6: failed B ("boom")
//	rec 3: started A          rec 7: submitted C
//	rec 4: done A (exact)     rec 8: started C
//
// It returns the raw bytes, the cumulative byte boundary after each
// record (boundaries[0] = 0), and the three job fingerprints.
func buildTestJournal(t testing.TB) (data []byte, boundaries []int64, fps [3]string) {
	t.Helper()
	var models [3]*core.Model
	for i := range models {
		models[i] = testModel(i)
		fps[i] = core.Fingerprint(models[i])
	}
	recs := []*trace.QueueRecordJSON{
		{Type: trace.QueueSubmitted, Fingerprint: fps[0], Unix: 1754_000_000, Model: trace.NewModelJSON(models[0])},
		{Type: trace.QueueSubmitted, Fingerprint: fps[1], Unix: 1754_000_001, Priority: 1, Model: trace.NewModelJSON(models[1])},
		{Type: trace.QueueStarted, Fingerprint: fps[0], Unix: 1754_000_002},
		{Type: trace.QueueDone, Fingerprint: fps[0], Unix: 1754_000_003, Feasible: true, Source: "exact"},
		{Type: trace.QueueStarted, Fingerprint: fps[1], Unix: 1754_000_004},
		{Type: trace.QueueFailed, Fingerprint: fps[1], Unix: 1754_000_005, Error: "boom"},
		{Type: trace.QueueSubmitted, Fingerprint: fps[2], Unix: 1754_000_006, Model: trace.NewModelJSON(models[2])},
		{Type: trace.QueueStarted, Fingerprint: fps[2], Unix: 1754_000_007},
	}
	boundaries = []int64{0}
	for _, r := range recs {
		payload, err := trace.EncodeQueueRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := store.Frame(payload)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, buf...)
		boundaries = append(boundaries, int64(len(data)))
	}
	return data, boundaries, fps
}

// TestQueueCrashInjection is the satellite durability test: cut the
// journal at every possible byte offset (the crash leaves an arbitrary
// prefix), reopen, and assert replay recovers exactly the longest
// clean prefix of records — never panicking, and never resurrecting a
// job whose terminal record survived the cut.
func TestQueueCrashInjection(t *testing.T) {
	data, boundaries, fps := buildTestJournal(t)

	// expected job states keyed by the number of complete records; ""
	// means the job is unknown, "pending*" means pending-and-resumed
	// (a started record with no terminal record survived)
	type expect struct {
		a, b, c string
		depth   int64
		resumed int64
	}
	table := []expect{
		{"", "", "", 0, 0},
		{"pending", "", "", 1, 0},
		{"pending", "pending", "", 2, 0},
		{"pending*", "pending", "", 2, 1},
		{"done", "pending", "", 1, 0},
		{"done", "pending*", "", 1, 1},
		{"done", "failed", "", 0, 0},
		{"done", "failed", "pending", 1, 0},
		{"done", "failed", "pending*", 1, 1},
	}
	checkJob := func(t *testing.T, q *Queue, fp, want string) {
		t.Helper()
		st, ok := q.Get(fp)
		if want == "" {
			if ok {
				t.Fatalf("job %s exists as %v, want unknown", fp[:8], st.State)
			}
			return
		}
		if !ok {
			t.Fatalf("job %s missing, want %s", fp[:8], want)
		}
		state := want
		if state == "pending*" {
			state = "pending"
		}
		if st.State.String() != state {
			t.Fatalf("job %s = %v, want %s", fp[:8], st.State, state)
		}
		if want == "done" && (!st.Verdict.Decided || !st.Verdict.Feasible || st.Verdict.Source != "exact") {
			t.Fatalf("done job %s lost its verdict: %+v", fp[:8], st)
		}
		if want == "failed" && st.Err != "boom" {
			t.Fatalf("failed job %s lost its error: %+v", fp[:8], st)
		}
	}

	for cut := 0; cut <= len(data); cut++ {
		complete := 0
		for _, b := range boundaries[1:] {
			if b <= int64(cut) {
				complete++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := table[complete]
		s := q.Stats()
		if s.Replayed != int64(complete) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, s.Replayed, complete)
		}
		if s.Depth != want.depth || s.Resumed != want.resumed {
			t.Fatalf("cut %d (%d complete): depth=%d resumed=%d, want depth=%d resumed=%d",
				cut, complete, s.Depth, s.Resumed, want.depth, want.resumed)
		}
		torn := int64(cut) != boundaries[complete]
		if torn != (s.CorruptTail > 0) {
			t.Fatalf("cut %d: corruptTail=%d, torn=%v", cut, s.CorruptTail, torn)
		}
		if q.Bytes() != boundaries[complete] {
			t.Fatalf("cut %d: clean length %d, want %d", cut, q.Bytes(), boundaries[complete])
		}
		checkJob(t, q, fps[0], want.a)
		checkJob(t, q, fps[1], want.b)
		checkJob(t, q, fps[2], want.c)

		// no resurrection: re-submitting a terminally-done class must
		// dedup onto the terminal job, not create a fresh pending one
		if want.a == "done" {
			st, err := q.Submit(testModel(0), SubmitOptions{})
			if err != nil {
				t.Fatalf("cut %d: resubmit: %v", cut, err)
			}
			if !st.Resubmitted || st.State != Done {
				t.Fatalf("cut %d: done job resurrected: %+v", cut, st)
			}
			if q.Bytes() != boundaries[complete] {
				t.Fatalf("cut %d: resubmit of terminal job grew the journal", cut)
			}
		}
		if err := q.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestQueueCrashRecoveryAppendable pins that a healed journal is a
// working journal: after truncating a torn tail, new submissions
// append cleanly and a further reopen sees both the recovered prefix
// and the new work with no corruption events.
func TestQueueCrashRecoveryAppendable(t *testing.T) {
	data, boundaries, fps := buildTestJournal(t)
	// cut mid-way through the final record: 7 complete, torn tail
	cut := int(boundaries[7]) + int(boundaries[8]-boundaries[7])/2
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.CorruptTail != 1 || s.Replayed != 7 {
		t.Fatalf("recovery stats: %+v", s)
	}
	st, err := q.Submit(testModel(9), SubmitOptions{Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	s := q2.Stats()
	if s.CorruptTail != 0 {
		t.Fatalf("healed journal still corrupt: %+v", s)
	}
	if s.Replayed != 8 { // 7 recovered + 1 new submitted
		t.Fatalf("replayed %d records, want 8", s.Replayed)
	}
	got, ok := q2.Get(st.ID)
	if !ok || got.State != Pending || got.Priority != 3 {
		t.Fatalf("appended job after recovery: %+v", got)
	}
	if done, ok := q2.Get(fps[0]); !ok || done.State != Done {
		t.Fatalf("recovered terminal job: %+v", done)
	}
}
