// Package queue is the durable async solve queue: the place where
// slow work lands instead of being lost. The synchronous service
// sheds cold NP-hard bursts with ErrOverloaded once its exact-search
// admission is saturated — correct backpressure, but the shed
// request's answer is gone and the client is left with a retry loop
// against a worst-case-exponential solver. The queue converts that
// shed into an eventual answer: jobs are journaled durably,
// deduplicated by canonical fingerprint (a thundering herd of
// isomorphic specs costs one search), drained by a background worker
// pool through the same analysis → heuristic → budgeted-exact
// pipeline, and their decided outcomes land in the schedule store so
// the whole fleet's cache warms.
//
// Durability reuses internal/store's CRC-32C segment framing: the
// journal (<dir>/queue.log) is an append-only log of
// trace.QueueRecordJSON state transitions — submitted, started, done,
// failed — replayed on Open with the same longest-clean-prefix
// recovery and torn-tail truncation as the schedule store. The replay
// rules make crash safety a non-event:
//
//   - A submitted record with no terminal record is a pending job,
//     whether or not a started record follows it — a crash (or
//     graceful shutdown) mid-solve costs the work in flight, never
//     the job. Shutdown therefore "checkpoints" running jobs back to
//     pending simply by writing nothing.
//   - A done or failed record is terminal and wins forever: replay
//     ignores any later record for that fingerprint, so a job whose
//     done record survived can never be resurrected or duplicated.
//   - Submitted records embed the model (validated at decode time),
//     so a recovered job is always executable.
//
// The queue stores verdicts, not schedules: a completed job's
// schedule is served by re-requesting the class synchronously, which
// hits the store the worker warmed. That keeps the journal small and
// keeps the store the single source of schedule truth.
package queue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"

	"rtm/internal/core"
	"rtm/internal/trace"
)

// State is a job's lifecycle position.
type State int

const (
	// Pending jobs are journaled and waiting for a worker.
	Pending State = iota
	// Running jobs are being solved by a worker right now.
	Running
	// Done jobs have a decided verdict (terminal).
	Done
	// Failed jobs ended without a decided verdict (terminal); Err
	// says why (solver error, or budget exhaustion = "undecided").
	Failed
)

// String renders the state for logs and HTTP bodies.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

// Verdict is a decided outcome as the queue records it. The schedule
// itself lives in the store; the queue keeps only the answer.
type Verdict struct {
	Decided  bool
	Feasible bool
	Source   string // pipeline tier that produced it
}

// Solver decides one model. The queue calls it from worker
// goroutines; implementations must be safe for concurrent use. A
// Verdict with Decided false (the solver's budget ran out) marks the
// job failed; an error of the context's cancellation reverts the job
// to pending (shutdown checkpointing), and any other error marks it
// failed.
type Solver func(ctx context.Context, m *core.Model) (Verdict, error)

// Options configure a Queue.
type Options struct {
	// Workers is the background worker pool size Start spawns. 0
	// means no background draining (jobs stay pending until a later
	// process drains them) — useful for enqueue-only processes and
	// crash tests.
	Workers int
	// NoSync skips the fsync after each journal append (tests and
	// benchmarks; a crash may lose recent transitions but never the
	// recovered prefix).
	NoSync bool
}

// SubmitOptions order a job within the drain schedule.
type SubmitOptions struct {
	// Priority drains higher values first.
	Priority int
	// Deadline, when nonzero, drains earlier deadlines first within a
	// priority band (EDF). Zero means "no deadline" and sorts last.
	Deadline time.Time
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	// ID is the job handle: the canonical model fingerprint.
	ID string
	// State is the lifecycle position at snapshot time.
	State State
	// Verdict is meaningful when State == Done.
	Verdict Verdict
	// Err is the failure reason when State == Failed.
	Err string
	// SubmitUnix is the submission time (seconds).
	SubmitUnix int64
	// Priority echoes the submit option.
	Priority int
	// Resubmitted reports whether this Submit deduplicated onto an
	// already-known job instead of creating one.
	Resubmitted bool
}

// DeadlineExpired reports whether the job failed because its deadline
// passed before a worker reached it.
func (s *Status) DeadlineExpired() bool {
	return s.State == Failed && s.Err == ErrDeadlineExpired.Error()
}

// Stats is the queue's counter/gauge snapshot.
type Stats struct {
	Submitted     int64 // jobs journaled by Submit (excludes dedup hits)
	Deduped       int64 // Submits answered by an existing job
	Completed     int64 // jobs that reached Done
	Failed        int64 // jobs that reached Failed
	Expired       int64 // of Failed: jobs whose deadline passed before draining
	Resumed       int64 // pending jobs recovered by Open's replay
	Replayed      int64 // journal records accepted by Open's replay
	CorruptTail   int64 // torn/corrupt tail truncation events at Open
	JournalErrors int64 // appends that failed (durability lost, not state)
	Depth         int64 // pending jobs right now
	Running       int64 // jobs being solved right now
	OldestAgeNS   int64 // age of the oldest non-terminal job, 0 if none
}

// job is the queue's mutable per-fingerprint state.
type job struct {
	id         string
	model      *core.Model
	priority   int
	deadline   int64 // unix seconds; 0 = none
	seq        uint64
	submitUnix int64
	submitted  time.Time // monotonic-capable local clock for age/latency

	state   State
	verdict Verdict
	errMsg  string
	started bool          // a started record was seen (replay: crash mid-solve)
	done    chan struct{} // closed at terminal state
}

// snapshot renders the job under the queue lock.
func (j *job) snapshot() *Status {
	return &Status{
		ID: j.id, State: j.state, Verdict: j.verdict, Err: j.errMsg,
		SubmitUnix: j.submitUnix, Priority: j.priority,
	}
}

// pendingHeap orders pending jobs: priority desc, then deadline asc
// (zero = +inf), then submission order.
type pendingHeap []*job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(a, b int) bool {
	x, y := h[a], h[b]
	if x.priority != y.priority {
		return x.priority > y.priority
	}
	xd, yd := x.deadline, y.deadline
	if xd == 0 {
		xd = 1<<63 - 1
	}
	if yd == 0 {
		yd = 1<<63 - 1
	}
	if xd != yd {
		return xd < yd
	}
	return x.seq < y.seq
}
func (h pendingHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// ErrClosed reports an operation on a closed queue.
var ErrClosed = errors.New("queue: closed")

// ErrDeadlineExpired is the failure reason of a job whose submit-time
// deadline passed before a worker reached it. The deadline already
// ordered the drain (EDF within a priority band); enforcement makes
// it a contract: a late answer to a real-time question is not an
// answer, so an expired job fails fast at drain time — the solver is
// never invoked — instead of silently burning exponential search
// budget on a verdict nobody can use. Expired jobs are terminal
// failures with this error as their Err, distinguishable by
// Status.DeadlineExpired.
var ErrDeadlineExpired = errors.New("queue: deadline expired before the job was solved")

// Submit journals a job for m and returns its status. Submission is
// deduplicated by canonical fingerprint: if a job for m's isomorphism
// class already exists — pending, running, or terminal — that job's
// status is returned with Resubmitted set and nothing is written. A
// job only exists once its submitted record is durably journaled, so
// an accepted handle survives any crash.
func (q *Queue) Submit(m *core.Model, opt SubmitOptions) (*Status, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	fp := core.Fingerprint(m)
	rec := &trace.QueueRecordJSON{
		Type:        trace.QueueSubmitted,
		Fingerprint: fp,
		Unix:        time.Now().Unix(),
		Priority:    opt.Priority,
		Model:       trace.NewModelJSON(m),
	}
	if !opt.Deadline.IsZero() {
		rec.DeadlineUnix = opt.Deadline.Unix()
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if j, ok := q.jobs[fp]; ok {
		q.deduped++
		st := j.snapshot()
		st.Resubmitted = true
		return st, nil
	}
	// the job exists only once it is durable: a failed append is a
	// failed submit, not a memory-only job
	if err := q.appendLocked(rec); err != nil {
		return nil, err
	}
	q.seq++
	j := &job{
		id: fp, model: m, priority: opt.Priority, deadline: rec.DeadlineUnix,
		seq: q.seq, submitUnix: rec.Unix, submitted: time.Now(),
		state: Pending, done: make(chan struct{}),
	}
	q.jobs[fp] = j
	heap.Push(&q.pending, j)
	q.submitted++
	q.cond.Signal()
	return j.snapshot(), nil
}

// Get returns the job's status, if it exists.
func (q *Queue) Get(id string) (*Status, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.snapshot(), true
}

// Wait blocks until the job reaches a terminal state (returning its
// final status) or ctx expires (returning the current status plus
// ctx's error) — the long-poll primitive behind GET /job/<id>.
func (q *Queue) Wait(ctx context.Context, id string) (*Status, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("queue: no job %s", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		q.mu.Lock()
		st := j.snapshot()
		q.mu.Unlock()
		return st, ctx.Err()
	}
	q.mu.Lock()
	st := j.snapshot()
	q.mu.Unlock()
	return st, nil
}

// Jobs returns a snapshot of every known job (unordered).
func (q *Queue) Jobs() []*Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Status, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Stats snapshots the queue's counters and gauges.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Submitted: q.submitted, Deduped: q.deduped,
		Completed: q.completed, Failed: q.failed, Expired: q.expired,
		Resumed: q.resumed, Replayed: q.replayed,
		CorruptTail: q.corruptTail, JournalErrors: q.journalErrors,
		Depth: int64(len(q.pending)), Running: q.running,
	}
	var oldest time.Time
	for _, j := range q.jobs {
		if !j.state.Terminal() && (oldest.IsZero() || j.submitted.Before(oldest)) {
			oldest = j.submitted
		}
	}
	if !oldest.IsZero() {
		s.OldestAgeNS = int64(time.Since(oldest))
	}
	return s
}

// Dir returns the queue's journal directory.
func (q *Queue) Dir() string { return q.dir }

// Bytes returns the clean length of the journal.
func (q *Queue) Bytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}
