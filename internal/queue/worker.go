package queue

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"rtm/internal/trace"
)

// workerPool is the background drain state.
type workerPool struct {
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// Start spawns the worker pool (Options.Workers goroutines) draining
// pending jobs through solve in priority/deadline order. With zero
// workers Start is a no-op: the queue accepts and persists jobs but
// drains nothing — a later process (or test) with workers picks them
// up. Start may be called once per Queue.
func (q *Queue) Start(solve Solver) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.workers.started || q.closed || q.opt.Workers <= 0 {
		return
	}
	q.workers.started = true
	q.workers.ctx, q.workers.cancel = context.WithCancel(context.Background())
	for i := 0; i < q.opt.Workers; i++ {
		q.workers.wg.Add(1)
		go q.drain(solve)
	}
}

// drain is one worker: pop the most urgent pending job, journal
// started, solve, journal the terminal record, notify waiters;
// repeat until the queue closes.
func (q *Queue) drain(solve Solver) {
	defer q.workers.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.pending).(*job)
		if j.deadline != 0 && time.Now().Unix() > j.deadline {
			// deadline enforcement: fail fast without invoking the
			// solver — no started record, just the terminal one
			q.expired++
			q.terminalLocked(j, Failed, Verdict{}, ErrDeadlineExpired.Error())
			q.mu.Unlock()
			continue
		}
		j.state = Running
		q.running++
		q.transitionLocked(&trace.QueueRecordJSON{
			Type: trace.QueueStarted, Fingerprint: j.id, Unix: time.Now().Unix(),
		})
		ctx := q.workers.ctx
		q.mu.Unlock()

		v, err := solve(ctx, j.model)

		q.mu.Lock()
		q.running--
		switch {
		case err != nil && ctx.Err() != nil:
			// shutdown checkpoint: the job reverts to pending — in
			// memory for observers, and on disk by virtue of having no
			// terminal record. The next Open resumes it.
			j.state = Pending
			heap.Push(&q.pending, j)
			q.mu.Unlock()
			return
		case err != nil:
			q.terminalLocked(j, Failed, Verdict{}, err.Error())
		case !v.Decided:
			// the solver's budget ran out without a verdict: terminal,
			// honestly reported — clients can resubmit against a bigger
			// budget deployment, the journal will accept a fresh job
			// only after this one is compacted away
			q.terminalLocked(j, Failed, Verdict{}, "undecided: solve budget exhausted")
		default:
			q.terminalLocked(j, Done, v, "")
		}
		q.mu.Unlock()
	}
}

// terminalLocked moves a job to a terminal state: journal the record,
// update counters, release waiters. Caller holds q.mu.
func (q *Queue) terminalLocked(j *job, st State, v Verdict, errMsg string) {
	rec := &trace.QueueRecordJSON{Fingerprint: j.id, Unix: time.Now().Unix()}
	if st == Done {
		rec.Type = trace.QueueDone
		rec.Feasible = v.Feasible
		rec.Source = v.Source
		q.completed++
	} else {
		rec.Type = trace.QueueFailed
		rec.Error = errMsg
		q.failed++
	}
	q.transitionLocked(rec)
	j.state = st
	j.verdict = v
	j.errMsg = errMsg
	close(j.done)
}

// Close stops the worker pool (canceling in-flight solves, which
// checkpoint back to pending), then syncs and closes the journal.
// Pending and checkpointed jobs survive on disk for the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	if q.workers.cancel != nil {
		q.workers.cancel()
	}
	q.cond.Broadcast()
	q.mu.Unlock()

	q.workers.wg.Wait()

	q.mu.Lock()
	defer q.mu.Unlock()
	var err error
	if !q.opt.NoSync {
		err = q.f.Sync()
	}
	if cerr := q.f.Close(); err == nil {
		err = cerr
	}
	return err
}
