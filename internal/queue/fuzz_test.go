package queue

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rtm/internal/store"
	"rtm/internal/trace"
)

// hostileJournals are adversarial journal images shared by the fuzz
// seed corpus and the deterministic Open test: valid, truncated at and
// off record boundaries, bit-flipped mid-payload, and garbage-tailed.
func hostileJournals(t testing.TB) [][]byte {
	data, boundaries, _ := buildTestJournal(t)
	flipped := append([]byte(nil), data...)
	flipped[boundaries[1]+20] ^= 0x40 // corrupt one payload byte mid-journal
	return [][]byte{
		data,                 // whole valid journal
		data[:boundaries[4]], // clean prefix at a record boundary
		data[:len(data)-5],   // torn tail
		append(data[:boundaries[2]:boundaries[2]], "garbage"...), // clean prefix + junk
		flipped,
		{},
		[]byte(`{"type":"done","fingerprint":"xyz"}`), // bare JSON, no framing
	}
}

// FuzzQueueDecode throws arbitrary bytes at the job-record reader: the
// frame scanner, the record decoder, and the replay state machine.
// Properties pinned, whatever the input: no layer panics; every record
// the decoder accepts passes Validate (malformed fingerprint or
// verdict fields never reach the queue); and replay never produces a
// runnable job without a model or a terminal job whose waiters hang.
func FuzzQueueDecode(f *testing.F) {
	for _, j := range hostileJournals(f) {
		f.Add(j)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q := &Queue{jobs: make(map[string]*job)}
		valid, _, err := store.ScanFrames(bytes.NewReader(data), func(payload []byte) error {
			rec, derr := trace.DecodeQueueRecord(payload)
			if derr != nil {
				return nil // rejected, fine — keep scanning
			}
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("decoder accepted an invalid record: %v\npayload: %s", verr, payload)
			}
			q.replay(rec)
			return nil
		})
		if err != nil {
			t.Fatalf("ScanFrames errored on arbitrary bytes: %v", err)
		}
		if valid > int64(len(data)) {
			t.Fatalf("clean prefix %d exceeds input %d", valid, len(data))
		}
		for fp, j := range q.jobs {
			if j.id != fp {
				t.Fatalf("job table key %s holds job %s", fp, j.id)
			}
			if !j.state.Terminal() && j.model == nil {
				t.Fatalf("replay produced runnable job %s without a model", fp)
			}
			select {
			case <-j.done:
				if !j.state.Terminal() {
					t.Fatalf("job %s released waiters while %v", fp, j.state)
				}
			default:
				if j.state.Terminal() {
					t.Fatalf("terminal job %s would hang its waiters", fp)
				}
			}
		}
	})
}

// TestQueueOpenHostileJournals runs the fuzz seed images through the
// real file-backed Open: recovery must succeed, recover no more bytes
// than the input, and leave a journal whose reopen is clean.
func TestQueueOpenHostileJournals(t *testing.T) {
	for i, img := range hostileJournals(t) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), img, 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("journal %d: Open: %v", i, err)
		}
		if q.Bytes() > int64(len(img)) {
			t.Fatalf("journal %d: recovered %d bytes from %d", i, q.Bytes(), len(img))
		}
		clean := q.Bytes()
		if err := q.Close(); err != nil {
			t.Fatalf("journal %d: close: %v", i, err)
		}
		q2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("journal %d: reopen: %v", i, err)
		}
		if s := q2.Stats(); s.CorruptTail != 0 || q2.Bytes() != clean {
			t.Fatalf("journal %d: healed journal not clean: corrupt=%d bytes=%d want %d",
				i, s.CorruptTail, q2.Bytes(), clean)
		}
		q2.Close()
	}
}
