// Package graph provides the directed-graph substrate used by the
// graph-based computation model: adjacency structures, topological
// sorting, cycle detection, reachability, transitive closure and
// reduction, homomorphism (compatibility) checking, DOT export, and
// random DAG generation.
//
// Nodes are identified by string names; the package keeps insertion
// order stable so that algorithms are deterministic across runs.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over string-named nodes.
// The zero value is not usable; call New.
type Digraph struct {
	nodes   []string            // insertion order
	index   map[string]int      // name -> position in nodes
	succ    map[string][]string // adjacency: out-edges, insertion order
	pred    map[string][]string // reverse adjacency
	edgeSet map[[2]string]bool
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{
		index:   make(map[string]int),
		succ:    make(map[string][]string),
		pred:    make(map[string][]string),
		edgeSet: make(map[[2]string]bool),
	}
}

// AddNode inserts a node if not already present. It reports whether
// the node was newly added.
func (g *Digraph) AddNode(name string) bool {
	if _, ok := g.index[name]; ok {
		return false
	}
	g.index[name] = len(g.nodes)
	g.nodes = append(g.nodes, name)
	return true
}

// HasNode reports whether name is a node of g.
func (g *Digraph) HasNode(name string) bool {
	_, ok := g.index[name]
	return ok
}

// AddEdge inserts a directed edge from u to v, adding the endpoints
// if necessary. Parallel edges are collapsed. It reports whether the
// edge was newly added.
func (g *Digraph) AddEdge(u, v string) bool {
	g.AddNode(u)
	g.AddNode(v)
	key := [2]string{u, v}
	if g.edgeSet[key] {
		return false
	}
	g.edgeSet[key] = true
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	return true
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Digraph) HasEdge(u, v string) bool {
	return g.edgeSet[[2]string{u, v}]
}

// RemoveEdge deletes the edge (u,v) if present and reports whether it
// existed.
func (g *Digraph) RemoveEdge(u, v string) bool {
	key := [2]string{u, v}
	if !g.edgeSet[key] {
		return false
	}
	delete(g.edgeSet, key)
	g.succ[u] = remove(g.succ[u], v)
	g.pred[v] = remove(g.pred[v], u)
	return true
}

func remove(s []string, x string) []string {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// Nodes returns the node names in insertion order. The slice is a
// copy and may be modified by the caller.
func (g *Digraph) Nodes() []string {
	out := make([]string, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int { return len(g.edgeSet) }

// Succ returns the successors of u in insertion order.
func (g *Digraph) Succ(u string) []string {
	out := make([]string, len(g.succ[u]))
	copy(out, g.succ[u])
	return out
}

// Pred returns the predecessors of u in insertion order.
func (g *Digraph) Pred(u string) []string {
	out := make([]string, len(g.pred[u]))
	copy(out, g.pred[u])
	return out
}

// OutDegree returns the number of out-edges of u.
func (g *Digraph) OutDegree(u string) int { return len(g.succ[u]) }

// InDegree returns the number of in-edges of u.
func (g *Digraph) InDegree(u string) int { return len(g.pred[u]) }

// Edge is a directed edge.
type Edge struct{ From, To string }

// Edges returns all edges ordered by source insertion order, then
// target insertion order within a source.
func (g *Digraph) Edges() []Edge {
	var out []Edge
	for _, u := range g.nodes {
		for _, v := range g.succ[u] {
			out = append(out, Edge{u, v})
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for _, n := range g.nodes {
		c.AddNode(n)
	}
	for _, e := range g.Edges() {
		c.AddEdge(e.From, e.To)
	}
	return c
}

// Subgraph returns the subgraph induced by keep. Unknown names are
// ignored.
func (g *Digraph) Subgraph(keep []string) *Digraph {
	in := make(map[string]bool, len(keep))
	for _, n := range keep {
		if g.HasNode(n) {
			in[n] = true
		}
	}
	s := New()
	for _, n := range g.nodes {
		if in[n] {
			s.AddNode(n)
		}
	}
	for _, e := range g.Edges() {
		if in[e.From] && in[e.To] {
			s.AddEdge(e.From, e.To)
		}
	}
	return s
}

// Equal reports whether g and h have identical node and edge sets
// (insertion order is ignored).
func (g *Digraph) Equal(h *Digraph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for _, n := range g.nodes {
		if !h.HasNode(n) {
			return false
		}
	}
	for e := range g.edgeSet {
		if !h.edgeSet[e] {
			return false
		}
	}
	return true
}

// String renders a compact deterministic description, useful in tests
// and error messages.
func (g *Digraph) String() string {
	nodes := g.Nodes()
	sort.Strings(nodes)
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	s := "nodes{"
	for i, n := range nodes {
		if i > 0 {
			s += ","
		}
		s += n
	}
	s += "} edges{"
	for i, e := range edges {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s->%s", e.From, e.To)
	}
	return s + "}"
}
