package graph

// Reachable reports whether there is a directed path (possibly empty)
// from u to v.
func (g *Digraph) Reachable(u, v string) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	if u == v {
		return true
	}
	seen := map[string]bool{u: true}
	stack := []string{u}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.succ[n] {
			if m == v {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// ReachableSet returns all nodes reachable from u (including u), in
// BFS order.
func (g *Digraph) ReachableSet(u string) []string {
	if !g.HasNode(u) {
		return nil
	}
	seen := map[string]bool{u: true}
	queue := []string{u}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, m := range g.succ[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return out
}

// ShortestPath returns a minimum-edge-count directed path from u to v
// (inclusive), or nil if none exists.
func (g *Digraph) ShortestPath(u, v string) []string {
	if !g.HasNode(u) || !g.HasNode(v) {
		return nil
	}
	if u == v {
		return []string{u}
	}
	parent := map[string]string{u: u}
	queue := []string{u}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.succ[n] {
			if _, ok := parent[m]; ok {
				continue
			}
			parent[m] = n
			if m == v {
				var path []string
				for w := v; ; w = parent[w] {
					path = append(path, w)
					if w == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// TransitiveClosure returns a new digraph with an edge (u,v) for
// every ordered pair of distinct nodes where v is reachable from u.
func (g *Digraph) TransitiveClosure() *Digraph {
	c := New()
	for _, n := range g.nodes {
		c.AddNode(n)
	}
	for _, u := range g.nodes {
		for _, v := range g.ReachableSet(u) {
			if u != v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// TransitiveReduction returns the unique minimal graph with the same
// reachability relation as an acyclic g. It returns an error if g is
// cyclic.
func (g *Digraph) TransitiveReduction() (*Digraph, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	r := New()
	for _, n := range g.nodes {
		r.AddNode(n)
	}
	for _, e := range g.Edges() {
		// keep (u,v) unless some other successor w of u reaches v
		redundant := false
		for _, w := range g.succ[e.From] {
			if w != e.To && g.Reachable(w, e.To) {
				redundant = true
				break
			}
		}
		if !redundant {
			r.AddEdge(e.From, e.To)
		}
	}
	return r, nil
}

// WeaklyConnectedComponents partitions the nodes into components of
// the underlying undirected graph, each in insertion order, with the
// components ordered by their earliest node.
func (g *Digraph) WeaklyConnectedComponents() [][]string {
	comp := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		comp[n] = -1
	}
	var groups [][]string
	for _, start := range g.nodes {
		if comp[start] != -1 {
			continue
		}
		id := len(groups)
		comp[start] = id
		queue := []string{start}
		var members []string
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			members = append(members, n)
			for _, m := range g.succ[n] {
				if comp[m] == -1 {
					comp[m] = id
					queue = append(queue, m)
				}
			}
			for _, m := range g.pred[n] {
				if comp[m] == -1 {
					comp[m] = id
					queue = append(queue, m)
				}
			}
		}
		groups = append(groups, members)
	}
	return groups
}

// IsChain reports whether an acyclic g is a simple directed chain
// v1 -> v2 -> ... -> vk (every node in/out degree at most 1, single
// weak component, no branching). The empty graph is not a chain; a
// single node is a chain of length 1.
func (g *Digraph) IsChain() bool {
	if g.NumNodes() == 0 || !g.IsAcyclic() {
		return false
	}
	if len(g.WeaklyConnectedComponents()) != 1 {
		return false
	}
	for _, n := range g.nodes {
		if len(g.succ[n]) > 1 || len(g.pred[n]) > 1 {
			return false
		}
	}
	return true
}
