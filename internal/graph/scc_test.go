package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"}, [2]string{"c", "d"})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("component sizes = %v", comps)
	}
}

func TestSCCAcyclicAllSingletons(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := mk([2]string{"a", "a"})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 1 {
		t.Fatalf("components = %v", comps)
	}
}

func TestCondensationIsAcyclic(t *testing.T) {
	g := mk(
		[2]string{"a", "b"}, [2]string{"b", "a"},
		[2]string{"b", "c"}, [2]string{"c", "d"}, [2]string{"d", "c"},
	)
	cond, name := g.Condensation()
	if !cond.IsAcyclic() {
		t.Fatalf("condensation cyclic: %s", cond)
	}
	if cond.NumNodes() != 2 {
		t.Fatalf("condensation = %s", cond)
	}
	if name["a"] != name["b"] || name["c"] != name["d"] || name["a"] == name["c"] {
		t.Fatalf("component naming = %v", name)
	}
	if !cond.HasEdge(name["a"], name["c"]) {
		t.Fatal("cross edge lost")
	}
}

// Property: condensation of any random digraph is acyclic and
// preserves cross-component reachability.
func TestCondensationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed%1000 + 7))
		g := New()
		n := 4 + rng.Intn(5)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			g.AddNode(names[i])
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(names[rng.Intn(n)], names[rng.Intn(n)])
		}
		cond, name := g.Condensation()
		if !cond.IsAcyclic() {
			return false
		}
		// reachability across components must be preserved
		for _, u := range names {
			for _, v := range names {
				if name[u] == name[v] {
					continue
				}
				if g.Reachable(u, v) != cond.Reachable(name[u], name[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPath(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"a", "c"}, [2]string{"b", "d"}, [2]string{"c", "d"})
	w := map[string]int{"a": 1, "b": 5, "c": 2, "d": 1}
	path, total, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("total = %d, want 7", total)
	}
	want := []string{"a", "b", "d"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathCyclic(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "a"})
	if _, _, err := g.CriticalPath(map[string]int{"a": 1, "b": 1}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	path, total, err := New().CriticalPath(nil)
	if err != nil || path != nil || total != 0 {
		t.Fatalf("empty: %v %d %v", path, total, err)
	}
}

func TestCriticalPathSingle(t *testing.T) {
	g := New()
	g.AddNode("x")
	path, total, err := g.CriticalPath(map[string]int{"x": 9})
	if err != nil || total != 9 || len(path) != 1 {
		t.Fatalf("single: %v %d %v", path, total, err)
	}
}
