package graph

import (
	"fmt"
	"math/rand"
)

// RandomDAG generates a random acyclic digraph with n nodes named
// prefix0..prefix{n-1} where each forward pair (i<j) carries an edge
// with probability p. The node numbering is a topological order by
// construction.
func RandomDAG(rng *rand.Rand, prefix string, n int, p float64) *Digraph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("%s%d", prefix, i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(fmt.Sprintf("%s%d", prefix, i), fmt.Sprintf("%s%d", prefix, j))
			}
		}
	}
	return g
}

// RandomChain generates a directed chain of n nodes.
func RandomChain(prefix string, n int) *Digraph {
	g := New()
	prev := ""
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		g.AddNode(name)
		if prev != "" {
			g.AddEdge(prev, name)
		}
		prev = name
	}
	return g
}

// RandomConnectedDAG generates a random DAG like RandomDAG and then
// adds a spanning set of edges so the result has a single weakly
// connected component.
func RandomConnectedDAG(rng *rand.Rand, prefix string, n int, p float64) *Digraph {
	g := RandomDAG(rng, prefix, n, p)
	for i := 1; i < n; i++ {
		v := fmt.Sprintf("%s%d", prefix, i)
		if g.InDegree(v) == 0 && g.OutDegree(v) == 0 {
			u := fmt.Sprintf("%s%d", prefix, rng.Intn(i))
			g.AddEdge(u, v)
		}
	}
	// connect remaining components to the first
	comps := g.WeaklyConnectedComponents()
	for i := 1; i < len(comps); i++ {
		g.AddEdge(comps[0][0], comps[i][0])
	}
	return g
}

// RandomSubDAG picks a random induced sub-DAG of g with k nodes
// (or all nodes if k exceeds the node count) and returns it. Because
// induced subgraphs of DAGs are DAGs, the result is acyclic whenever
// g is.
func RandomSubDAG(rng *rand.Rand, g *Digraph, k int) *Digraph {
	nodes := g.Nodes()
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	if k > len(nodes) {
		k = len(nodes)
	}
	return g.Subgraph(nodes[:k])
}
