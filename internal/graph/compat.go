package graph

import "fmt"

// Homomorphism is a node mapping h from one graph into another such
// that every edge (u,v) of the source maps to an edge (h(u),h(v)) of
// the target. This is exactly the paper's compatibility condition
// between a task graph and a communication graph.
type Homomorphism map[string]string

// CheckHomomorphism verifies that h is a homomorphism from src into
// dst: every source node must be mapped to an existing target node
// and every source edge must map to a target edge.
func CheckHomomorphism(src, dst *Digraph, h Homomorphism) error {
	for _, n := range src.Nodes() {
		img, ok := h[n]
		if !ok {
			return fmt.Errorf("graph: node %q has no image under h", n)
		}
		if !dst.HasNode(img) {
			return fmt.Errorf("graph: image %q of node %q is not a node of the target", img, n)
		}
	}
	for _, e := range src.Edges() {
		fu, fv := h[e.From], h[e.To]
		if !dst.HasEdge(fu, fv) {
			return fmt.Errorf("graph: edge %s->%s maps to %s->%s which is not an edge of the target",
				e.From, e.To, fu, fv)
		}
	}
	return nil
}

// IdentityInto returns the identity mapping of src's nodes, suitable
// when the task graph reuses the communication graph's node names.
func IdentityInto(src *Digraph) Homomorphism {
	h := make(Homomorphism, src.NumNodes())
	for _, n := range src.Nodes() {
		h[n] = n
	}
	return h
}

// FindHomomorphism searches for some homomorphism from src into dst
// by backtracking. It returns nil if none exists. Intended for small
// graphs (task graphs); worst case is |dst|^|src|.
func FindHomomorphism(src, dst *Digraph) Homomorphism {
	srcNodes := src.Nodes()
	dstNodes := dst.Nodes()
	h := make(Homomorphism, len(srcNodes))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(srcNodes) {
			return true
		}
		u := srcNodes[i]
		for _, cand := range dstNodes {
			ok := true
			// check edges between u and already-assigned nodes
			for _, p := range src.Pred(u) {
				if img, done := h[p]; done && !dst.HasEdge(img, cand) {
					ok = false
					break
				}
			}
			if ok {
				for _, s := range src.Succ(u) {
					if img, done := h[s]; done && !dst.HasEdge(cand, img) {
						ok = false
						break
					}
				}
			}
			if ok && src.HasEdge(u, u) && !dst.HasEdge(cand, cand) {
				ok = false
			}
			if !ok {
				continue
			}
			h[u] = cand
			if rec(i + 1) {
				return true
			}
			delete(h, u)
		}
		return false
	}
	if rec(0) {
		return h
	}
	return nil
}
