package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOTOptions control DOT rendering.
type DOTOptions struct {
	Name       string            // graph name; default "G"
	NodeLabels map[string]string // optional per-node label override
	NodeAttrs  map[string]string // optional raw per-node attribute text
	Rankdir    string            // e.g. "LR"; empty means graphviz default
}

// DOT renders the graph in Graphviz DOT syntax with nodes and edges
// in deterministic (sorted) order.
func (g *Digraph) DOT(opt DOTOptions) string {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", dotID(name))
	if opt.Rankdir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opt.Rankdir)
	}
	nodes := g.Nodes()
	sort.Strings(nodes)
	for _, n := range nodes {
		attrs := ""
		if lbl, ok := opt.NodeLabels[n]; ok {
			attrs = fmt.Sprintf(" [label=%s]", dotID(lbl))
		}
		if raw, ok := opt.NodeAttrs[n]; ok {
			attrs = " [" + raw + "]"
		}
		fmt.Fprintf(&b, "  %s%s;\n", dotID(n), attrs)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s;\n", dotID(e.From), dotID(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID quotes a string as a DOT identifier when necessary.
func dotID(s string) string {
	if s == "" {
		return `""`
	}
	plain := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
