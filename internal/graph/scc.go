package graph

// StronglyConnectedComponents returns the SCCs of g in reverse
// topological order of the condensation (every edge of the
// condensation goes from a later component to an earlier one in the
// returned slice). Tarjan's algorithm, iterative on the recursion
// only through node order, recursive in implementation (graphs here
// are small).
func (g *Digraph) StronglyConnectedComponents() [][]string {
	index := make(map[string]int, len(g.nodes))
	low := make(map[string]int, len(g.nodes))
	onStack := make(map[string]bool, len(g.nodes))
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// Condensation returns the DAG of strongly connected components: one
// node per SCC (named scc0, scc1, … in the order returned by
// StronglyConnectedComponents) and an edge between two components
// whenever some original edge crosses them. The mapping from original
// node to component name is returned alongside.
func (g *Digraph) Condensation() (*Digraph, map[string]string) {
	comps := g.StronglyConnectedComponents()
	name := make(map[string]string, len(g.nodes))
	c := New()
	for i, comp := range comps {
		cn := sccName(i)
		c.AddNode(cn)
		for _, v := range comp {
			name[v] = cn
		}
	}
	for _, e := range g.Edges() {
		cu, cv := name[e.From], name[e.To]
		if cu != cv {
			c.AddEdge(cu, cv)
		}
	}
	return c, name
}

func sccName(i int) string {
	return "scc" + itoa(i)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// CriticalPath returns a maximum-total-weight directed path of an
// acyclic graph under the given node weights, together with its total
// weight. It returns nil, 0 with an error for cyclic graphs.
func (g *Digraph) CriticalPath(weight map[string]int) ([]string, int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	best := make(map[string]int, len(order))
	prev := make(map[string]string, len(order))
	endNode, endWeight := "", -1
	for _, u := range order {
		w := best[u] + weight[u]
		if w > endWeight {
			endWeight = w
			endNode = u
		}
		for _, v := range g.succ[u] {
			if w > best[v] {
				best[v] = w
				prev[v] = u
			}
		}
	}
	if endNode == "" {
		return nil, 0, nil
	}
	var path []string
	for n := endNode; ; {
		path = append(path, n)
		p, ok := prev[n]
		if !ok {
			break
		}
		n = p
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endWeight, nil
}
