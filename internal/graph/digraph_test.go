package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mk(edges ...[2]string) *Digraph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	if !g.AddNode("a") {
		t.Fatal("first AddNode returned false")
	}
	if g.AddNode("a") {
		t.Fatal("second AddNode returned true")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddEdgeCreatesNodes(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	if !g.HasNode("a") || !g.HasNode("b") {
		t.Fatal("endpoints not created")
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("edge direction wrong")
	}
}

func TestParallelEdgesCollapse(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	if g.AddEdge("a", "b") {
		t.Fatal("duplicate edge reported as new")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"})
	if !g.RemoveEdge("a", "b") {
		t.Fatal("RemoveEdge failed")
	}
	if g.HasEdge("a", "b") {
		t.Fatal("edge still present")
	}
	if g.RemoveEdge("a", "b") {
		t.Fatal("second removal returned true")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.OutDegree("a") != 0 || g.InDegree("b") != 0 {
		t.Fatal("degrees not updated")
	}
}

func TestSuccPredOrder(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"a", "c"}, [2]string{"a", "d"})
	want := []string{"b", "c", "d"}
	got := g.Succ("a")
	if len(got) != len(want) {
		t.Fatalf("Succ = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Succ order = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mk([2]string{"a", "b"})
	c := g.Clone()
	c.AddEdge("b", "c")
	if g.HasNode("c") {
		t.Fatal("clone mutation leaked into original")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	s := g.Subgraph([]string{"a", "c", "zz"})
	if s.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", s.NumNodes())
	}
	if !s.HasEdge("a", "c") || s.HasEdge("a", "b") {
		t.Fatal("induced edges wrong")
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"}, [2]string{"d", "c"})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true on cyclic graph")
	}
	cyc := g.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("FindCycle = %v, want length 3", cyc)
	}
	for i, n := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if !g.HasEdge(n, next) {
			t.Fatalf("cycle %v has missing edge %s->%s", cyc, n, next)
		}
	}
}

func TestSelfLoopCycle(t *testing.T) {
	g := mk([2]string{"a", "a"})
	if g.IsAcyclic() {
		t.Fatal("self-loop should be a cycle")
	}
	if cyc := g.FindCycle(); len(cyc) != 1 || cyc[0] != "a" {
		t.Fatalf("FindCycle = %v", cyc)
	}
}

func TestAllTopoSortsDiamond(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: exactly 2 orders
	g := mk([2]string{"a", "b"}, [2]string{"a", "c"}, [2]string{"b", "d"}, [2]string{"c", "d"})
	count := 0
	err := g.AllTopoSorts(func(o []string) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("got %d topological sorts, want 2", count)
	}
}

func TestAllTopoSortsEarlyStop(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.AddNode(n)
	}
	count := 0
	if err := g.AllTopoSorts(func(o []string) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"})
	if s := g.Sources(); len(s) != 1 || s[0] != "a" {
		t.Fatalf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != "c" {
		t.Fatalf("Sinks = %v", s)
	}
}

func TestLongestPathLen(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	n, err := g.LongestPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("LongestPathLen = %d, want 2", n)
	}
}

func TestReachability(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"d", "b"})
	if !g.Reachable("a", "c") {
		t.Fatal("a should reach c")
	}
	if g.Reachable("c", "a") {
		t.Fatal("c should not reach a")
	}
	if !g.Reachable("a", "a") {
		t.Fatal("node should reach itself")
	}
	set := g.ReachableSet("a")
	if len(set) != 3 {
		t.Fatalf("ReachableSet = %v", set)
	}
}

func TestShortestPath(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"}, [2]string{"a", "d"})
	p := g.ShortestPath("a", "d")
	if len(p) != 2 || p[0] != "a" || p[1] != "d" {
		t.Fatalf("ShortestPath = %v, want [a d]", p)
	}
	if p := g.ShortestPath("d", "a"); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
	if p := g.ShortestPath("a", "a"); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestTransitiveClosureReduction(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"b", "c"})
	tc := g.TransitiveClosure()
	if !tc.HasEdge("a", "c") {
		t.Fatal("closure missing a->c")
	}
	withRedundant := mk([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	tr, err := withRedundant.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if tr.HasEdge("a", "c") {
		t.Fatal("reduction kept redundant edge a->c")
	}
	if !tr.HasEdge("a", "b") || !tr.HasEdge("b", "c") {
		t.Fatal("reduction dropped necessary edges")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := mk([2]string{"a", "b"}, [2]string{"c", "d"})
	g.AddNode("e")
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
}

func TestIsChain(t *testing.T) {
	if !RandomChain("c", 3).IsChain() {
		t.Fatal("chain not recognized")
	}
	single := New()
	single.AddNode("x")
	if !single.IsChain() {
		t.Fatal("single node should be a chain")
	}
	if New().IsChain() {
		t.Fatal("empty graph should not be a chain")
	}
	branch := mk([2]string{"a", "b"}, [2]string{"a", "c"})
	if branch.IsChain() {
		t.Fatal("branching graph is not a chain")
	}
	disconnected := mk([2]string{"a", "b"})
	disconnected.AddNode("z")
	if disconnected.IsChain() {
		t.Fatal("disconnected graph is not a chain")
	}
}

func TestCheckHomomorphism(t *testing.T) {
	comm := mk([2]string{"fx", "fs"}, [2]string{"fs", "fk"})
	task := mk([2]string{"t1", "t2"})
	h := Homomorphism{"t1": "fx", "t2": "fs"}
	if err := CheckHomomorphism(task, comm, h); err != nil {
		t.Fatalf("valid homomorphism rejected: %v", err)
	}
	bad := Homomorphism{"t1": "fs", "t2": "fx"}
	if err := CheckHomomorphism(task, comm, bad); err == nil {
		t.Fatal("invalid homomorphism accepted")
	}
	missing := Homomorphism{"t1": "fx"}
	if err := CheckHomomorphism(task, comm, missing); err == nil {
		t.Fatal("partial mapping accepted")
	}
	unknownImage := Homomorphism{"t1": "fx", "t2": "nope"}
	if err := CheckHomomorphism(task, comm, unknownImage); err == nil {
		t.Fatal("unknown image accepted")
	}
}

func TestFindHomomorphism(t *testing.T) {
	comm := mk([2]string{"fx", "fs"}, [2]string{"fy", "fs"}, [2]string{"fs", "fk"})
	task := mk([2]string{"t1", "t2"}, [2]string{"t2", "t3"})
	h := FindHomomorphism(task, comm)
	if h == nil {
		t.Fatal("no homomorphism found for embeddable chain")
	}
	if err := CheckHomomorphism(task, comm, h); err != nil {
		t.Fatalf("found mapping invalid: %v", err)
	}
	// a triangle cannot map into an acyclic graph
	tri := mk([2]string{"x", "y"}, [2]string{"y", "z"}, [2]string{"z", "x"})
	if h := FindHomomorphism(tri, comm); h != nil {
		t.Fatalf("impossible homomorphism returned: %v", h)
	}
}

func TestIdentityInto(t *testing.T) {
	g := mk([2]string{"a", "b"})
	h := IdentityInto(g)
	if err := CheckHomomorphism(g, g, h); err != nil {
		t.Fatal(err)
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := mk([2]string{"b", "a"}, [2]string{"a", "c"})
	d1 := g.DOT(DOTOptions{Name: "T", Rankdir: "LR"})
	d2 := g.DOT(DOTOptions{Name: "T", Rankdir: "LR"})
	if d1 != d2 {
		t.Fatal("DOT output not deterministic")
	}
	for _, want := range []string{"digraph T {", "rankdir=LR;", "a -> c;", "b -> a;"} {
		if !strings.Contains(d1, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, d1)
		}
	}
}

func TestDOTQuoting(t *testing.T) {
	g := New()
	g.AddNode("f-S")
	g.AddNode("0start")
	out := g.DOT(DOTOptions{})
	if !strings.Contains(out, `"f-S"`) || !strings.Contains(out, `"0start"`) {
		t.Fatalf("special names not quoted:\n%s", out)
	}
}

func TestRandomDAGAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := RandomDAG(rng, "n", 8, 0.4)
		if !g.IsAcyclic() {
			t.Fatal("RandomDAG produced a cycle")
		}
	}
}

func TestRandomConnectedDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		g := RandomConnectedDAG(rng, "n", 10, 0.1)
		if !g.IsAcyclic() {
			t.Fatal("cycle in connected DAG")
		}
		if len(g.WeaklyConnectedComponents()) != 1 {
			t.Fatal("not weakly connected")
		}
	}
}

func TestRandomSubDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnectedDAG(rng, "n", 12, 0.3)
	s := RandomSubDAG(rng, g, 5)
	if s.NumNodes() != 5 {
		t.Fatalf("sub-DAG size = %d, want 5", s.NumNodes())
	}
	if !s.IsAcyclic() {
		t.Fatal("induced subgraph of DAG must be acyclic")
	}
}

// Property: transitive reduction and closure are inverses on the
// reachability relation for random DAGs.
func TestClosureReductionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed%1000 + 1))
		g := RandomDAG(local, "n", 3+int(rng.Int31n(5)), 0.35)
		tr, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		return tr.TransitiveClosure().Equal(g.TransitiveClosure())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every topological sort produced by AllTopoSorts respects
// every edge.
func TestAllTopoSortsProperty(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed%1000 + 1))
		g := RandomDAG(local, "n", 5, 0.4)
		ok := true
		n := 0
		_ = g.AllTopoSorts(func(o []string) bool {
			pos := map[string]int{}
			for i, v := range o {
				pos[v] = i
			}
			for _, e := range g.Edges() {
				if pos[e.From] >= pos[e.To] {
					ok = false
				}
			}
			n++
			return n < 50 && ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDeterministic(t *testing.T) {
	g := mk([2]string{"b", "a"}, [2]string{"a", "b"})
	if g.String() != g.Clone().String() {
		t.Fatal("String not deterministic across clones")
	}
	if !strings.Contains(g.String(), "a->b") {
		t.Fatalf("String = %s", g.String())
	}
}
