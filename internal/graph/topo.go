package graph

import (
	"errors"
	"fmt"
)

// ErrCycle is returned by TopoSort when the graph is not acyclic.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological ordering of the nodes using Kahn's
// algorithm. Among ready nodes the one inserted earliest is chosen,
// so the result is deterministic. It returns ErrCycle (wrapped with a
// witness) if the graph has a cycle.
func (g *Digraph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	// ready queue kept in insertion order
	var ready []string
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, m := range g.succ[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(out) != len(g.nodes) {
		cyc := g.FindCycle()
		return nil, fmt.Errorf("%w: %v", ErrCycle, cyc)
	}
	return out, nil
}

// IsAcyclic reports whether g has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// FindCycle returns the nodes of some directed cycle in order, or nil
// if the graph is acyclic.
func (g *Digraph) FindCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.nodes))
	parent := make(map[string]string)
	var cycle []string
	var dfs func(u string) bool
	dfs = func(u string) bool {
		color[u] = gray
		for _, v := range g.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// back edge u -> v closes a cycle v ... u
				cycle = []string{v}
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, w)
				}
				// reverse into v -> ... -> u order
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range g.nodes {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

// AllTopoSorts enumerates every topological ordering of g, calling
// yield for each; enumeration stops early if yield returns false.
// It returns ErrCycle if g is cyclic. The slice passed to yield is
// reused between calls; copy it to retain.
func (g *Digraph) AllTopoSorts(yield func([]string) bool) error {
	if !g.IsAcyclic() {
		return ErrCycle
	}
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	order := make([]string, 0, len(g.nodes))
	used := make(map[string]bool, len(g.nodes))
	stopped := false
	var rec func()
	rec = func() {
		if stopped {
			return
		}
		if len(order) == len(g.nodes) {
			if !yield(order) {
				stopped = true
			}
			return
		}
		for _, n := range g.nodes {
			if used[n] || indeg[n] != 0 {
				continue
			}
			used[n] = true
			order = append(order, n)
			for _, m := range g.succ[n] {
				indeg[m]--
			}
			rec()
			for _, m := range g.succ[n] {
				indeg[m]++
			}
			order = order[:len(order)-1]
			used[n] = false
			if stopped {
				return
			}
		}
	}
	rec()
	return nil
}

// Sources returns the nodes with no incoming edges, in insertion
// order.
func (g *Digraph) Sources() []string {
	var out []string
	for _, n := range g.nodes {
		if len(g.pred[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns the nodes with no outgoing edges, in insertion order.
func (g *Digraph) Sinks() []string {
	var out []string
	for _, n := range g.nodes {
		if len(g.succ[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// LongestPathLen returns the number of edges on a longest directed
// path of an acyclic graph; it returns an error if g is cyclic.
func (g *Digraph) LongestPathLen() (int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	dist := make(map[string]int, len(order))
	best := 0
	for _, u := range order {
		for _, v := range g.succ[u] {
			if dist[u]+1 > dist[v] {
				dist[v] = dist[u] + 1
				if dist[v] > best {
					best = dist[v]
				}
			}
		}
	}
	return best, nil
}
