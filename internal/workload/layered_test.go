package workload

import (
	"math/rand"
	"testing"

	"rtm/internal/core"
)

func TestLayeredValidAndDeterministic(t *testing.T) {
	p := DefaultLayeredParams()
	a, err := Layered(rand.New(rand.NewSource(5)), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := Layered(rand.New(rand.NewSource(5)), p)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := core.Fingerprint(a), core.Fingerprint(b)
	if fa != fb {
		t.Fatalf("same seed drew different classes: %s vs %s", fa, fb)
	}
	c, err := Layered(rand.New(rand.NewSource(6)), p)
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(c) == fa {
		t.Fatal("different seeds drew the same class (suspicious)")
	}
}

func TestLayeredShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	asyncSeen, periodicSeen := false, false
	for i := 0; i < 50; i++ {
		p := LayeredParams{
			Layers: 3, Width: 3, Density: 0.5, MaxWeight: 3,
			Constraints: 3, ChainLen: 4, AsyncFrac: 0.5,
			Stretch: 1.0 + 2*rng.Float64(), PeriodStretch: 1.5,
		}
		m, err := Layered(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Constraints) != p.Constraints {
			t.Fatalf("draw %d: %d constraints, want %d", i, len(m.Constraints), p.Constraints)
		}
		for _, c := range m.Constraints {
			w := c.ComputationTime(m.Comm)
			if c.Deadline < w {
				t.Fatalf("draw %d: deadline %d below work %d", i, c.Deadline, w)
			}
			switch c.Kind {
			case core.Asynchronous:
				asyncSeen = true
			case core.Periodic:
				periodicSeen = true
			}
		}
	}
	if !asyncSeen || !periodicSeen {
		t.Fatalf("kind mix missing: async=%v periodic=%v", asyncSeen, periodicSeen)
	}
}

func TestLayeredRejectsBadParams(t *testing.T) {
	if _, err := Layered(rand.New(rand.NewSource(1)), LayeredParams{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestSmoothSnap(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {5, 6}, {7, 8}, {9, 12}, {100, 128}, {9999, 512},
	} {
		if got := smoothSnap(tc.in); got != tc.want {
			t.Fatalf("smoothSnap(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
