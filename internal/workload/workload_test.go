package workload

import (
	"math/rand"
	"testing"

	"rtm/internal/core"
)

func TestRandomValidModels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		m, err := Random(rng, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(m.Constraints) != DefaultParams().Constraints {
			t.Fatalf("constraints = %d", len(m.Constraints))
		}
	}
}

func TestRandomUtilizationNearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := DefaultParams()
	p.TargetUtil = 0.4
	sum := 0.0
	n := 40
	for i := 0; i < n; i++ {
		m, err := Random(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		sum += m.Utilization()
	}
	avg := sum / float64(n)
	// period snapping only lowers utilization; allow a wide band
	if avg < 0.1 || avg > 0.5 {
		t.Fatalf("average utilization %v not near 0.4", avg)
	}
}

func TestRandomBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Random(rng, Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestSharedPairOverlap(t *testing.T) {
	for shared := 0; shared <= 3; shared++ {
		m, err := SharedPair(3, shared, 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		sharedElems := m.SharedElements()
		if len(sharedElems) != shared {
			t.Fatalf("overlap %d: shared elements = %v", shared, sharedElems)
		}
		// merging should save exactly `shared` units per period
		_, rep, err := core.MergePeriodic(m)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SharedOpsSave != shared {
			t.Fatalf("overlap %d: savings = %d", shared, rep.SharedOpsSave)
		}
	}
}

func TestSharedPairBadArgs(t *testing.T) {
	if _, err := SharedPair(3, 4, 20); err == nil {
		t.Fatal("overlap > chain accepted")
	}
	if _, err := SharedPair(0, 0, 20); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestAsyncOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := AsyncOnly(rng, 3, 0.6)
	if len(m.Constraints) != 3 {
		t.Fatalf("constraints = %d", len(m.Constraints))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Constraints {
		if c.Kind != core.Asynchronous {
			t.Fatal("non-async constraint")
		}
	}
	d := m.DeadlineDensity()
	if d < 0.3 || d > 0.9 {
		t.Fatalf("density = %v, want near 0.6", d)
	}
}

func TestTheorem3Instance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		m := Theorem3Instance(rng, 4, 0.5)
		if m == nil {
			continue
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.DeadlineDensity() > 0.5+1e-9 {
			t.Fatalf("density %v exceeds 0.5", m.DeadlineDensity())
		}
		for _, c := range m.Constraints {
			w := c.ComputationTime(m.Comm)
			if c.Deadline/2 < w {
				t.Fatalf("hypothesis (ii) violated: w=%d d=%d", w, c.Deadline)
			}
		}
	}
}

func TestSnapMonotone(t *testing.T) {
	if snap(3) != 4 || snap(4) != 4 || snap(11) != 16 || snap(99999) != 1000 {
		t.Fatalf("snap values: %d %d %d %d", snap(3), snap(4), snap(11), snap(99999))
	}
}
