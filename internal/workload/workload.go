// Package workload generates parameterized random instances of the
// graph-based model for experiments: utilization-controlled
// constraint sets, random task DAGs over a shared communication
// topology, and sharing-degree-controlled constraint pairs for the
// shared-operation experiments.
package workload

import (
	"fmt"
	"math/rand"

	"rtm/internal/core"
	"rtm/internal/graph"
)

// Params control random model generation.
type Params struct {
	Elements    int     // number of functional elements
	MaxWeight   int     // element weights drawn from [1, MaxWeight]
	EdgeProb    float64 // communication edge probability (forward pairs)
	Constraints int     // number of timing constraints
	ChainLen    int     // max task-chain length (≥ 1)
	AsyncFrac   float64 // fraction of asynchronous constraints
	// Periods are drawn from this harmonic-friendly menu scaled so
	// utilization lands near TargetUtil.
	TargetUtil float64
}

// DefaultParams is a mid-size workload.
func DefaultParams() Params {
	return Params{
		Elements: 6, MaxWeight: 3, EdgeProb: 0.5,
		Constraints: 4, ChainLen: 3, AsyncFrac: 0.25, TargetUtil: 0.5,
	}
}

// Random builds a random validated model. Deadlines equal periods.
// The generator retries internally until validation passes; it only
// fails for nonsensical parameters.
func Random(rng *rand.Rand, p Params) (*core.Model, error) {
	if p.Elements < 1 || p.Constraints < 1 || p.ChainLen < 1 || p.MaxWeight < 1 {
		return nil, fmt.Errorf("workload: bad params %+v", p)
	}
	for attempt := 0; attempt < 100; attempt++ {
		m := build(rng, p)
		if m.Validate() == nil {
			return m, nil
		}
	}
	return nil, fmt.Errorf("workload: could not generate a valid model for %+v", p)
}

func build(rng *rand.Rand, p Params) *core.Model {
	m := core.NewModel()
	// communication graph: random DAG plus weights
	g := graph.RandomConnectedDAG(rng, "e", p.Elements, p.EdgeProb)
	for _, n := range g.Nodes() {
		m.Comm.AddElement(n, 1+rng.Intn(p.MaxWeight))
	}
	for _, e := range g.Edges() {
		m.Comm.AddPath(e.From, e.To)
	}

	// constraints: random directed paths through the DAG
	perConstraintUtil := p.TargetUtil / float64(p.Constraints)
	for i := 0; i < p.Constraints; i++ {
		chain := randomPath(rng, g, 1+rng.Intn(p.ChainLen))
		task := core.ChainTask(chain...)
		w := task.ComputationTime(m.Comm)
		period := int(float64(w)/perConstraintUtil + 0.5)
		if period < w {
			period = w
		}
		// snap periods to a small harmonic menu to keep hyperperiods
		// manageable
		period = snap(period)
		kind := core.Periodic
		if rng.Float64() < p.AsyncFrac {
			kind = core.Asynchronous
		}
		m.AddConstraint(&core.Constraint{
			Name:     fmt.Sprintf("c%d", i),
			Task:     task,
			Period:   period,
			Deadline: period,
			Kind:     kind,
		})
	}
	return m
}

// snap rounds up to the next value of a harmonic-friendly menu.
func snap(p int) int {
	menu := []int{4, 5, 8, 10, 16, 20, 25, 32, 40, 50, 64, 80, 100, 128, 160, 200, 256, 320, 400, 512, 640, 800, 1000}
	for _, v := range menu {
		if p <= v {
			return v
		}
	}
	return menu[len(menu)-1]
}

// randomPath walks a random directed path of up to maxLen distinct
// nodes through g.
func randomPath(rng *rand.Rand, g *graph.Digraph, maxLen int) []string {
	nodes := g.Nodes()
	cur := nodes[rng.Intn(len(nodes))]
	path := []string{cur}
	for len(path) < maxLen {
		succ := g.Succ(cur)
		if len(succ) == 0 {
			break
		}
		cur = succ[rng.Intn(len(succ))]
		path = append(path, cur)
	}
	return path
}

// SharedPair builds two periodic constraints over a line topology
// with a controllable overlap: each constraint is a chain of length
// chainLen, and the two chains share `shared` trailing elements
// (0 ≤ shared ≤ chainLen). Equal periods make the pair mergeable.
// The unit weights keep demand proportional to chain length.
func SharedPair(chainLen, shared, period int) (*core.Model, error) {
	if shared < 0 || shared > chainLen || chainLen < 1 {
		return nil, fmt.Errorf("workload: bad overlap %d of %d", shared, chainLen)
	}
	m := core.NewModel()
	mk := func(prefix string, n int) []string {
		var out []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s%d", prefix, i)
			m.Comm.AddElement(name, 1)
			out = append(out, name)
		}
		return out
	}
	own := chainLen - shared
	a := mk("a", own)
	b := mk("b", own)
	s := mk("s", shared)
	chainA := append(append([]string{}, a...), s...)
	chainB := append(append([]string{}, b...), s...)
	link := func(chain []string) {
		for i := 0; i+1 < len(chain); i++ {
			m.Comm.AddPath(chain[i], chain[i+1])
		}
	}
	link(chainA)
	link(chainB)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask(chainA...),
		Period: period, Deadline: period, Kind: core.Periodic,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask(chainB...),
		Period: period, Deadline: period, Kind: core.Periodic,
	})
	return m, m.Validate()
}

// AsyncOnly builds a random asynchronous-only model with unit-weight
// single-op constraints — the instance family of the exact-search
// experiments. The target density is Σ 1/d.
func AsyncOnly(rng *rand.Rand, nConstraints int, targetDensity float64) *core.Model {
	m := core.NewModel()
	per := targetDensity / float64(nConstraints)
	for i := 0; i < nConstraints; i++ {
		name := fmt.Sprintf("a%d", i)
		m.Comm.AddElement(name, 1)
		d := int(1.0/per + 0.5)
		if d < 1 {
			d = 1
		}
		// jitter deadlines a little so instances differ
		d += rng.Intn(2)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	return m
}

// Theorem3Instance builds a random asynchronous model satisfying the
// hypotheses of the paper's Theorem 3 with total density close to
// (but not exceeding) maxDensity. Returns nil when the draw ends up
// empty.
func Theorem3Instance(rng *rand.Rand, maxConstraints int, maxDensity float64) *core.Model {
	m := core.NewModel()
	density := 0.0
	for i := 0; i < maxConstraints; i++ {
		w := 1 + rng.Intn(3)
		d := 2*w + rng.Intn(24)
		add := float64(w) / float64(d)
		if density+add > maxDensity {
			continue
		}
		density += add
		name := fmt.Sprintf("t%d", i)
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	if len(m.Constraints) == 0 {
		return nil
	}
	return m
}
