package workload

import (
	"fmt"
	"math/rand"

	"rtm/internal/core"
)

// LayeredParams control the layered random-DAG generator, the corpus
// workhorse: elements are arranged in layers, communication paths run
// between adjacent layers (every non-root element has at least one
// parent), and timing constraints are random downward chains. The
// deadline stretch is the tightness dial — Stretch near 1 yields
// borderline-to-infeasible instances, large Stretch yields instances
// the analytic tier should certify.
type LayeredParams struct {
	Layers    int     // number of layers (≥ 1)
	Width     int     // max elements per layer (≥ 1)
	Density   float64 // extra adjacent-layer edge probability
	MaxWeight int     // element weights drawn from [1, MaxWeight]

	Constraints int     // number of timing constraints (≥ 1)
	ChainLen    int     // max task-chain length (≥ 1)
	AsyncFrac   float64 // fraction of asynchronous constraints

	// Stretch sets deadline ≈ work × Stretch (clamped to ≥ work, which
	// model validation demands).
	Stretch float64
	// PeriodStretch sets a periodic constraint's period ≈ deadline ×
	// PeriodStretch, snapped up to a smooth menu so hyperperiods stay
	// representable. Values < 1 produce deadline > period constraints.
	PeriodStretch float64
}

// DefaultLayeredParams is a mid-size, mid-tightness draw.
func DefaultLayeredParams() LayeredParams {
	return LayeredParams{
		Layers: 3, Width: 3, Density: 0.4, MaxWeight: 3,
		Constraints: 3, ChainLen: 3, AsyncFrac: 0.4,
		Stretch: 1.6, PeriodStretch: 1.5,
	}
}

// Layered builds a validated random layered-DAG model. Generation is
// fully determined by rng, so a seeded corpus is reproducible.
func Layered(rng *rand.Rand, p LayeredParams) (*core.Model, error) {
	if p.Layers < 1 || p.Width < 1 || p.MaxWeight < 1 || p.Constraints < 1 || p.ChainLen < 1 {
		return nil, fmt.Errorf("workload: bad layered params %+v", p)
	}
	m := core.NewModel()
	// layers of elements, random widths in [1, Width]
	layers := make([][]string, p.Layers)
	for l := 0; l < p.Layers; l++ {
		width := 1 + rng.Intn(p.Width)
		for i := 0; i < width; i++ {
			name := fmt.Sprintf("L%dn%d", l, i)
			m.Comm.AddElement(name, 1+rng.Intn(p.MaxWeight))
			layers[l] = append(layers[l], name)
		}
	}
	// adjacent-layer paths: every non-root gets a parent, plus extra
	// edges with probability Density
	for l := 1; l < p.Layers; l++ {
		prev := layers[l-1]
		for _, v := range layers[l] {
			m.Comm.AddPath(prev[rng.Intn(len(prev))], v)
			for _, u := range prev {
				if rng.Float64() < p.Density {
					m.Comm.AddPath(u, v)
				}
			}
		}
	}

	// constraints: random downward chains, deadlines from the stretch
	all := m.Comm.Elements()
	for i := 0; i < p.Constraints; i++ {
		chain := []string{all[rng.Intn(len(all))]}
		for len(chain) < 1+rng.Intn(p.ChainLen) {
			succ := m.Comm.G.Succ(chain[len(chain)-1])
			if len(succ) == 0 {
				break
			}
			chain = append(chain, succ[rng.Intn(len(succ))])
		}
		task := core.ChainTask(chain...)
		w := task.ComputationTime(m.Comm)
		d := int(float64(w)*p.Stretch + 0.5)
		if d < w {
			d = w
		}
		kind := core.Periodic
		period := smoothSnap(int(float64(d)*p.PeriodStretch + 0.5))
		if rng.Float64() < p.AsyncFrac {
			kind = core.Asynchronous
			period = d // minimum separation; the analyses ignore it
		}
		if period < 1 {
			period = 1
		}
		m.AddConstraint(&core.Constraint{
			Name:     fmt.Sprintf("c%d", i),
			Task:     task,
			Period:   period,
			Deadline: d,
			Kind:     kind,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("workload: layered draw invalid: %w", err)
	}
	return m, nil
}

// smoothSnap rounds up to a menu of smooth numbers so that sets of
// periodic constraints keep small hyperperiods.
func smoothSnap(p int) int {
	menu := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	for _, v := range menu {
		if p <= v {
			return v
		}
	}
	return menu[len(menu)-1]
}
