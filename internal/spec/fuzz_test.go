package spec

import (
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts survives a Print/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(exampleSpec)
	f.Add("element a weight 1\nperiodic P period 3 deadline 3 { a }")
	f.Add("sporadic S separation 5 deadline 5 { x }")
	f.Add("element f weight 4\nperiodic P period 30 deadline 30 { f }\npipeline f stages 2")
	f.Add("path a -> b\n# comment\nsystem x")
	f.Add("periodic P period 1 deadline 1 {")
	f.Add("element a weight 1\nperiodic P period 3 deadline 3 { a:b:c }")
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(text)
		if err != nil {
			return
		}
		// accepted specs must round-trip
		printed := Print(sp.Name, sp.Model)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed spec rejected: %v\ninput: %q\nprinted:\n%s", err, text, printed)
		}
		if len(back.Model.Constraints) != len(sp.Model.Constraints) {
			t.Fatalf("round trip changed constraint count: %q", text)
		}
	})
}

// FuzzFingerprint drives the canonical model fingerprint from the
// spec corpus: any model the parser accepts must fingerprint
// identically after a seed-driven element renaming, task-node
// renaming, and constraint permutation. This is the fuzz face of the
// property the schedule cache depends on (core.Canonicalize).
func FuzzFingerprint(f *testing.F) {
	seeds := []string{
		exampleSpec,
		"element a weight 1\nperiodic P period 3 deadline 3 { a }",
		"sporadic S separation 5 deadline 5 { x }",
		"element f weight 4\nperiodic P period 30 deadline 30 { f }\npipeline f stages 2",
		"element a weight 1\nelement b weight 1\npath a -> b\n" +
			"periodic P period 6 deadline 6 { a -> b }\nsporadic Q separation 4 deadline 4 { a }",
		"element a weight 1\nperiodic P period 3 deadline 3 { first:a -> second:a }",
	}
	for _, s := range seeds {
		f.Add(s, int64(1))
	}
	f.Fuzz(func(t *testing.T, text string, seed int64) {
		sp, err := Parse(text)
		if err != nil || sp.Model.Validate() != nil {
			return
		}
		m := sp.Model
		fp := core.Fingerprint(m)
		rng := rand.New(rand.NewSource(seed))
		ren := renameForFuzz(rng, m)
		if err := ren.Validate(); err != nil {
			t.Fatalf("renamed model invalid: %v\ninput: %q", err, text)
		}
		if got := core.Fingerprint(ren); got != fp {
			t.Fatalf("fingerprint not invariant under renaming (seed %d)\ninput: %q", seed, text)
		}
	})
}

// renameForFuzz rebuilds m under a random element/node renaming and a
// random constraint permutation.
func renameForFuzz(rng *rand.Rand, m *core.Model) *core.Model {
	elems := m.Comm.Elements()
	perm := rng.Perm(len(elems))
	ren := make(map[string]string, len(elems))
	for i, e := range elems {
		ren[e] = fmt.Sprintf("f%03d", perm[i])
	}
	out := core.NewModel()
	for _, i := range rng.Perm(len(elems)) {
		out.Comm.AddElement(ren[elems[i]], m.Comm.WeightOf(elems[i]))
	}
	for _, e := range m.Comm.G.Edges() {
		out.Comm.AddPath(ren[e.From], ren[e.To])
	}
	for _, ci := range rng.Perm(len(m.Constraints)) {
		c := m.Constraints[ci]
		task := core.NewTaskGraph()
		nodes := c.Task.Nodes()
		nren := make(map[string]string, len(nodes))
		for j, nd := range rng.Perm(len(nodes)) {
			nren[nodes[nd]] = fmt.Sprintf("m%d_%d", ci, j)
		}
		for _, nd := range nodes {
			task.AddStep(nren[nd], ren[c.Task.ElementOf(nd)])
		}
		for _, e := range c.Task.G.Edges() {
			task.AddPrec(nren[e.From], nren[e.To])
		}
		out.AddConstraint(&core.Constraint{
			Name: fmt.Sprintf("r%d", ci), Task: task,
			Period: c.Period, Deadline: c.Deadline, Kind: c.Kind,
		})
	}
	return out
}
