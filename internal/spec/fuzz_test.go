package spec

import "testing"

// FuzzParse checks that the parser never panics and that anything it
// accepts survives a Print/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(exampleSpec)
	f.Add("element a weight 1\nperiodic P period 3 deadline 3 { a }")
	f.Add("sporadic S separation 5 deadline 5 { x }")
	f.Add("element f weight 4\nperiodic P period 30 deadline 30 { f }\npipeline f stages 2")
	f.Add("path a -> b\n# comment\nsystem x")
	f.Add("periodic P period 1 deadline 1 {")
	f.Add("element a weight 1\nperiodic P period 3 deadline 3 { a:b:c }")
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(text)
		if err != nil {
			return
		}
		// accepted specs must round-trip
		printed := Print(sp.Name, sp.Model)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed spec rejected: %v\ninput: %q\nprinted:\n%s", err, text, printed)
		}
		if len(back.Model.Constraints) != len(sp.Model.Constraints) {
			t.Fatalf("round trip changed constraint count: %q", text)
		}
	})
}
