package spec

import (
	"strings"
	"testing"

	"rtm/internal/core"
)

const exampleSpec = `
# the paper's Figure 1/2 control system
system control
element fX weight 2
element fY weight 3
element fZ weight 1
element fS weight 4
element fK weight 2
path fX -> fS
path fY -> fS
path fZ -> fS
path fS -> fK
path fK -> fS

periodic X period 20 deadline 20 { fX -> fS -> fK }
periodic Y period 40 deadline 40 { fY -> fS -> fK }
sporadic Z separation 100 deadline 30 { fZ -> fS }
`

func TestParseExample(t *testing.T) {
	sp, err := Parse(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "control" {
		t.Fatalf("name = %q", sp.Name)
	}
	m := sp.Model
	if len(m.Constraints) != 3 {
		t.Fatalf("constraints = %d", len(m.Constraints))
	}
	// must be structurally identical to the programmatic example
	ref := core.ExampleSystem(core.DefaultExampleParams())
	if !m.Comm.G.Equal(ref.Comm.G) {
		t.Fatalf("communication graph differs:\n%s\nvs\n%s", m.Comm.G, ref.Comm.G)
	}
	for _, name := range []string{"X", "Y", "Z"} {
		a, b := m.ConstraintByName(name), ref.ConstraintByName(name)
		if a == nil {
			t.Fatalf("constraint %s missing", name)
		}
		if a.Period != b.Period || a.Deadline != b.Deadline || a.Kind != b.Kind {
			t.Fatalf("%s: %+v vs %+v", name, a, b)
		}
		if !a.Task.G.Equal(b.Task.G) {
			t.Fatalf("%s task graph differs", name)
		}
	}
}

func TestParseMultilineBody(t *testing.T) {
	text := `
element a weight 1
element b weight 1
path a -> b
periodic P period 5 deadline 5 {
  a -> b
}
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	c := sp.Model.ConstraintByName("P")
	if c == nil || c.Task.G.NumNodes() != 2 {
		t.Fatalf("constraint = %+v", c)
	}
}

func TestParseNodeColonElem(t *testing.T) {
	text := `
element f weight 1
path f -> f
periodic P period 9 deadline 9 { first:f -> second:f }
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	task := sp.Model.ConstraintByName("P").Task
	if task.G.NumNodes() != 2 {
		t.Fatalf("nodes = %v", task.Nodes())
	}
	if task.ElementOf("first") != "f" || task.ElementOf("second") != "f" {
		t.Fatal("elem mapping wrong")
	}
}

func TestParseBranchingTask(t *testing.T) {
	text := `
element s weight 1
element l weight 1
element r weight 1
element t weight 1
path s -> l
path s -> r
path l -> t
path r -> t
periodic P period 9 deadline 9 { s -> l -> t; s -> r -> t }
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	g := sp.Model.ConstraintByName("P").Task.G
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("task graph = %s", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"unknown directive", "frobnicate"},
		{"bad element", "element x"},
		{"bad weight", "element x weight two"},
		{"negative weight", "element x weight -1"},
		{"path unknown elem", "path a -> b"},
		{"bad path arrow", "element a weight 1\nelement b weight 1\npath a to b"},
		{"missing brace", "element a weight 1\nperiodic P period 5 deadline 5 a"},
		{"unclosed body", "element a weight 1\nperiodic P period 5 deadline 5 { a"},
		{"bad period", "element a weight 1\nperiodic P period x deadline 5 { a }"},
		{"bad deadline", "element a weight 1\nperiodic P period 5 deadline y { a }"},
		{"empty body", "element a weight 1\nperiodic P period 5 deadline 5 { }"},
		{"empty step", "element a weight 1\nperiodic P period 5 deadline 5 { a -> }"},
		{"bad colon step", "element a weight 1\nperiodic P period 5 deadline 5 { :a }"},
		{"invalid model", "element a weight 9\nperiodic P period 5 deadline 5 { a }"},
		{"sporadic keyword", "element a weight 1\nsporadic S period 5 deadline 5 { a }"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := Parse("element a weight 1\nbogus line here")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("Error() = %s", pe.Error())
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	ref := core.ExampleSystem(core.DefaultExampleParams())
	text := Print("control", ref)
	sp, err := Parse(text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\n%s", err, text)
	}
	if !sp.Model.Comm.G.Equal(ref.Comm.G) {
		t.Fatal("round trip lost communication graph")
	}
	if len(sp.Model.Constraints) != len(ref.Constraints) {
		t.Fatal("round trip lost constraints")
	}
	for _, rc := range ref.Constraints {
		pc := sp.Model.ConstraintByName(rc.Name)
		if pc == nil || !pc.Task.G.Equal(rc.Task.G) ||
			pc.Period != rc.Period || pc.Deadline != rc.Deadline || pc.Kind != rc.Kind {
			t.Fatalf("round trip changed constraint %s", rc.Name)
		}
	}
	// second round trip is a fixed point
	if Print("control", sp.Model) != text {
		t.Fatal("print not idempotent after one round trip")
	}
}

func TestPrintIsolatedStep(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("solo", 1)
	m.AddConstraint(&core.Constraint{
		Name: "S", Task: core.ChainTask("solo"),
		Period: 4, Deadline: 4, Kind: core.Periodic,
	})
	text := Print("", m)
	if !strings.Contains(text, "{ solo }") {
		t.Fatalf("isolated step rendering:\n%s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	text := "# leading comment\n\nelement a weight 1 # trailing\n\nperiodic P period 3 deadline 3 { a } # done\n"
	if _, err := Parse(text); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDirective(t *testing.T) {
	text := `
element big weight 4
element out weight 1
path big -> out
periodic P period 20 deadline 20 { big -> out }
pipeline big stages 2
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Model.Comm.G.HasNode("big") {
		t.Fatal("pipeline directive not applied")
	}
	if !sp.Model.Comm.G.HasNode("big#0") || sp.Model.Comm.WeightOf("big#0") != 2 {
		t.Fatalf("stages wrong: %v", sp.Model.Comm.Elements())
	}
}

func TestReplicateDirective(t *testing.T) {
	text := `
element in weight 1
element f weight 1
element out weight 1
path in -> f
path f -> out
periodic P period 20 deadline 20 { in -> f -> out }
replicate f copies 3
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Model.Comm.G.HasNode("f") {
		t.Fatal("replicate directive not applied")
	}
	if !sp.Model.Comm.G.HasNode("f~vote") || !sp.Model.Comm.G.HasNode("f~r2") {
		t.Fatalf("replicas missing: %v", sp.Model.Comm.Elements())
	}
}

func TestTransformDirectiveErrors(t *testing.T) {
	cases := []string{
		"element a weight 3\nperiodic P period 9 deadline 9 { a }\npipeline a stages 2", // 3 % 2 != 0
		"element a weight 2\nperiodic P period 9 deadline 9 { a }\npipeline b stages 2", // unknown elem
		"element a weight 2\nperiodic P period 9 deadline 9 { a }\npipeline a stages x",
		"element a weight 2\nperiodic P period 9 deadline 9 { a }\nreplicate a copies 1",
		"element a weight 2\nperiodic P period 9 deadline 9 { a }\nreplicate b copies 3",
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestTransformOrderMatters(t *testing.T) {
	// replicate, then pipeline one of the replicas ('#' cannot appear
	// in a spec — it starts a comment — so chain the other way round)
	text := `
element f weight 4
periodic P period 40 deadline 40 { f }
replicate f copies 3
pipeline f~r0 stages 2
`
	sp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Model.Comm.G.HasNode("f~r0#0") {
		t.Fatalf("chained transforms failed: %v", sp.Model.Comm.Elements())
	}
	if !sp.Model.Comm.G.HasNode("f~vote") {
		t.Fatalf("voter missing: %v", sp.Model.Comm.Elements())
	}
}
