// Package spec implements a small requirements-specification language
// for the graph-based model — the role CONSORT's front end played for
// the paper's methodology. A specification names the functional
// elements with their computation times, the communication paths, and
// the timing constraints with their task graphs; it compiles to a
// validated core.Model and pretty-prints back losslessly.
//
// Grammar (line-oriented; '#' at line start or after whitespace
// starts a comment — element names may contain interior '#'):
//
//	system <name>
//	element <name> weight <int>
//	path <from> -> <to>
//	periodic <name> period <int> deadline <int> { <task> }
//	sporadic <name> separation <int> deadline <int> { <task> }
//	pipeline <elem> stages <int>
//	replicate <elem> copies <int>
//
// The `pipeline` and `replicate` directives are applied as model
// transformations after the whole specification parses: pipeline
// splits an element into equal-time sub-functions (software
// pipelining) and replicate applies modular redundancy with a
// majority voter.
//
// where <task> is a ';'-separated list of items, each either a chain
// "a -> b -> c" (steps named after their elements) or a single step.
// Repeated executions of one element use "node:elem" naming:
//
//	periodic P period 10 deadline 10 { first:f -> second:f }
package spec

import (
	"fmt"
	"sort"
	"strings"

	"rtm/internal/core"
	"rtm/internal/fault"
	"rtm/internal/pipeline"
)

// ParseError carries the offending line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spec: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Spec is a parsed specification.
type Spec struct {
	Name  string
	Model *core.Model
}

// transform is a deferred model transformation directive.
type transform struct {
	kind string // "pipeline" or "replicate"
	elem string
	n    int
	line int
}

// Parse compiles a specification text into a validated model.
func Parse(text string) (*Spec, error) {
	sp := &Spec{Model: core.NewModel()}
	var transforms []transform
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "system":
			if len(fields) != 2 {
				return nil, errf(lineNo, "usage: system <name>")
			}
			sp.Name = fields[1]
		case "element":
			if len(fields) != 4 || fields[2] != "weight" {
				return nil, errf(lineNo, "usage: element <name> weight <int>")
			}
			var w int
			if _, err := fmt.Sscanf(fields[3], "%d", &w); err != nil || w < 0 {
				return nil, errf(lineNo, "bad weight %q", fields[3])
			}
			sp.Model.Comm.AddElement(fields[1], w)
		case "path":
			if len(fields) != 4 || fields[2] != "->" {
				return nil, errf(lineNo, "usage: path <from> -> <to>")
			}
			for _, e := range []string{fields[1], fields[3]} {
				if !sp.Model.Comm.G.HasNode(e) {
					return nil, errf(lineNo, "unknown element %q (declare it first)", e)
				}
			}
			sp.Model.Comm.AddPath(fields[1], fields[3])
		case "periodic", "sporadic":
			c, consumed, err := parseConstraint(fields[0], lines, i)
			if err != nil {
				return nil, err
			}
			sp.Model.AddConstraint(c)
			i += consumed
		case "pipeline":
			if len(fields) != 4 || fields[2] != "stages" {
				return nil, errf(lineNo, "usage: pipeline <elem> stages <int>")
			}
			var n int
			if _, err := fmt.Sscanf(fields[3], "%d", &n); err != nil || n < 1 {
				return nil, errf(lineNo, "bad stage count %q", fields[3])
			}
			transforms = append(transforms, transform{kind: "pipeline", elem: fields[1], n: n, line: lineNo})
		case "replicate":
			if len(fields) != 4 || fields[2] != "copies" {
				return nil, errf(lineNo, "usage: replicate <elem> copies <int>")
			}
			var n int
			if _, err := fmt.Sscanf(fields[3], "%d", &n); err != nil || n < 2 {
				return nil, errf(lineNo, "bad copy count %q (need ≥ 2)", fields[3])
			}
			transforms = append(transforms, transform{kind: "replicate", elem: fields[1], n: n, line: lineNo})
		default:
			return nil, errf(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sp.Model.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	for _, tr := range transforms {
		var err error
		switch tr.kind {
		case "pipeline":
			sp.Model, err = pipeline.Decompose(sp.Model, tr.elem, tr.n)
		case "replicate":
			sp.Model, err = fault.Replicate(sp.Model, tr.elem, tr.n, 1)
		}
		if err != nil {
			return nil, errf(tr.line, "%s %s: %v", tr.kind, tr.elem, err)
		}
	}
	if len(transforms) > 0 {
		if err := sp.Model.Validate(); err != nil {
			return nil, fmt.Errorf("spec: after transforms: %w", err)
		}
	}
	return sp, nil
}

// stripComment removes a trailing comment. A '#' starts a comment
// only at the beginning of a line or after whitespace, so element
// names containing '#' (pipeline stages like "f#0") survive.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
			line = line[:i]
			break
		}
	}
	return strings.TrimSpace(line)
}

// parseConstraint parses a constraint starting at lines[start]; the
// body may be inline ("{ ... }" on one line) or span lines until a
// closing "}". It returns the constraint and how many extra lines
// were consumed.
func parseConstraint(kind string, lines []string, start int) (*core.Constraint, int, error) {
	lineNo := start + 1
	head := stripComment(lines[start])
	open := strings.IndexByte(head, '{')
	if open < 0 {
		return nil, 0, errf(lineNo, "constraint missing '{'")
	}
	fields := strings.Fields(head[:open])
	sepWord := "period"
	k := core.Periodic
	if kind == "sporadic" {
		sepWord = "separation"
		k = core.Asynchronous
	}
	if len(fields) != 6 || fields[2] != sepWord || fields[4] != "deadline" {
		return nil, 0, errf(lineNo, "usage: %s <name> %s <int> deadline <int> { ... }", kind, sepWord)
	}
	var p, d int
	if _, err := fmt.Sscanf(fields[3], "%d", &p); err != nil {
		return nil, 0, errf(lineNo, "bad %s %q", sepWord, fields[3])
	}
	if _, err := fmt.Sscanf(fields[5], "%d", &d); err != nil {
		return nil, 0, errf(lineNo, "bad deadline %q", fields[5])
	}

	// collect the body text up to the matching '}'
	body := head[open+1:]
	consumed := 0
	for !strings.Contains(body, "}") {
		next := start + 1 + consumed
		if next >= len(lines) {
			return nil, 0, errf(lineNo, "constraint body not closed")
		}
		body += " " + stripComment(lines[next])
		consumed++
	}
	body = body[:strings.IndexByte(body, '}')]

	task, err := parseTask(body, lineNo)
	if err != nil {
		return nil, 0, err
	}
	return &core.Constraint{
		Name: fields[1], Task: task, Period: p, Deadline: d, Kind: k,
	}, consumed, nil
}

// parseTask parses a ';'-separated list of chains into a task graph.
func parseTask(body string, lineNo int) (*core.TaskGraph, error) {
	t := core.NewTaskGraph()
	addStep := func(item string) (string, error) {
		node, elem := item, item
		if idx := strings.IndexByte(item, ':'); idx >= 0 {
			node, elem = item[:idx], item[idx+1:]
			if node == "" || elem == "" {
				return "", errf(lineNo, "bad step %q", item)
			}
		}
		t.AddStep(node, elem)
		return node, nil
	}
	for _, clause := range strings.Split(body, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, "->")
		prev := ""
		for _, part := range parts {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, errf(lineNo, "empty step in %q", clause)
			}
			node, err := addStep(part)
			if err != nil {
				return nil, err
			}
			if prev != "" {
				t.AddPrec(prev, node)
			}
			prev = node
		}
	}
	if t.G.NumNodes() == 0 {
		return nil, errf(lineNo, "empty task graph")
	}
	return t, nil
}

// Print renders a model back into specification syntax. Parsing the
// output reproduces an equivalent model (round-trip property).
func Print(name string, m *core.Model) string {
	var b strings.Builder
	if name != "" {
		fmt.Fprintf(&b, "system %s\n", name)
	}
	for _, e := range m.Comm.Elements() {
		fmt.Fprintf(&b, "element %s weight %d\n", e, m.Comm.WeightOf(e))
	}
	edges := m.Comm.G.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "path %s -> %s\n", e.From, e.To)
	}
	for _, c := range m.Constraints {
		kind, sepWord := "periodic", "period"
		if c.Kind == core.Asynchronous {
			kind, sepWord = "sporadic", "separation"
		}
		fmt.Fprintf(&b, "%s %s %s %d deadline %d { %s }\n",
			kind, c.Name, sepWord, c.Period, c.Deadline, renderTask(c.Task))
	}
	return b.String()
}

// renderTask serializes a task graph as chains covering every edge
// plus isolated nodes.
func renderTask(t *core.TaskGraph) string {
	var clauses []string
	covered := map[string]bool{}
	step := func(node string) string {
		if node == t.ElementOf(node) {
			return node
		}
		return node + ":" + t.ElementOf(node)
	}
	for _, e := range t.G.Edges() {
		clauses = append(clauses, step(e.From)+" -> "+step(e.To))
		covered[e.From] = true
		covered[e.To] = true
	}
	for _, n := range t.Nodes() {
		if !covered[n] {
			clauses = append(clauses, step(n))
		}
	}
	return strings.Join(clauses, "; ")
}
