package served

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtm/internal/service"
	"rtm/internal/store"
)

const exampleSpec = `system ctl
element fS weight 1
element fK weight 1
element fX weight 1
path fS -> fK

periodic trk period 12 deadline 12 { fS -> fK }
sporadic upd separation 9 deadline 8 { fX }
`

// renamedSpec is exampleSpec under a different element naming and
// constraint order — the same isomorphism class.
const renamedSpec = `system ctl2
element b weight 1
element a weight 1
element c weight 1
path a -> b

sporadic one separation 9 deadline 8 { c }
periodic two period 12 deadline 12 { a -> b }
`

func newTestServer(t *testing.T) (*httptest.Server, *service.Service) {
	return newTestServerOpts(t, service.Options{}, 1<<20)
}

func newTestServerOpts(t *testing.T, opt service.Options, maxBody int64) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(opt)
	srv := httptest.NewServer(newMux(svc, 10*time.Second, maxBody))
	t.Cleanup(srv.Close)
	return srv, svc
}

func postSpec(t *testing.T, url, body string) (*http.Response, scheduleResponse) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out scheduleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestServedScheduleEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, cold := postSpec(t, srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !cold.Decided || !cold.Feasible || cold.CacheHit {
		t.Fatalf("cold response: %+v", cold)
	}
	if cold.Cycle == 0 || len(cold.Schedule) != cold.Cycle {
		t.Fatalf("schedule missing: %+v", cold)
	}
	for _, c := range cold.Constraints {
		if !c.OK {
			t.Fatalf("constraint %s not met in response", c.Name)
		}
	}

	_, warm := postSpec(t, srv.URL, exampleSpec)
	if !warm.CacheHit || warm.Source != "cache" {
		t.Fatalf("warm response missed the cache: %+v", warm)
	}

	// an isomorphic spec under different names must hit the same entry
	// and come back scheduled in its own names
	_, iso := postSpec(t, srv.URL, renamedSpec)
	if !iso.CacheHit {
		t.Fatalf("isomorphic spec missed the cache: %+v", iso)
	}
	if iso.Fingerprint != cold.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", iso.Fingerprint, cold.Fingerprint)
	}
	for _, slot := range iso.Schedule {
		if strings.HasPrefix(slot, "f") {
			t.Fatalf("translated schedule leaks foreign element %q", slot)
		}
	}
}

func TestServedBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, _ := postSpec(t, srv.URL, "element dangling syntax")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status = %d", resp.StatusCode)
	}

	get, err := http.Get(srv.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule: status = %d", get.StatusCode)
	}
}

func TestServedMetricsAndHealth(t *testing.T) {
	srv, svc := newTestServer(t)
	if _, body := postSpec(t, srv.URL, exampleSpec); !body.Feasible {
		t.Fatal("seed request infeasible")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"rtm_requests 1", "rtm_cache_misses 1", "rtm_cache_len 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if svc.Metrics().Requests.Load() != 1 {
		t.Fatal("service counter drifted from endpoint output")
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status = %d", h.StatusCode)
	}
}

func TestServedRequestBodyCap(t *testing.T) {
	srv, _ := newTestServerOpts(t, service.Options{}, 64)

	resp, _ := postSpec(t, srv.URL, strings.Repeat("element x weight 1\n", 100))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", resp.StatusCode)
	}

	// a spec under the cap still parses and schedules
	small := "element a weight 1\nperiodic p period 4 deadline 4 { a }\n"
	if int64(len(small)) > 64 {
		t.Fatalf("test spec is %d bytes, does not fit the cap", len(small))
	}
	resp, body := postSpec(t, srv.URL, small)
	if resp.StatusCode != http.StatusOK || !body.Feasible {
		t.Fatalf("small spec: status=%d body=%+v", resp.StatusCode, body)
	}
}

// auxSpec is a second, non-isomorphic workload for the restart test.
const auxSpec = `system aux
element g1 weight 1
element g2 weight 1
path g1 -> g2

periodic flow period 8 deadline 8 { g1 -> g2 }
`

// metricValue digs one rtm_<name> counter out of /metrics.
func metricValue(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, "rtm_"+name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s missing:\n%s", name, raw)
	return 0
}

// TestServedStoreWarmRestart is the acceptance test: a restarted
// daemon with -store-dir serves a previously solved spec from the
// store without invoking heuristic or exact search, and a deliberately
// corrupted record is skipped — counted, never served.
func TestServedStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()

	// first life: solve two distinct workloads through the daemon
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1, _ := newTestServerOpts(t, service.Options{Store: st1}, 1<<20)
	if _, first := postSpec(t, srv1.URL, exampleSpec); !first.Feasible || first.Source == "store" {
		t.Fatalf("first solve: %+v", first)
	}
	firstEnd := st1.Bytes() // frame boundary between the two records
	if _, second := postSpec(t, srv1.URL, auxSpec); !second.Feasible {
		t.Fatalf("second solve: %+v", second)
	}
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// the crash/corruption: flip a byte inside the second record's frame
	path := filepath.Join(dir, "store.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// second life: warm start over the damaged store
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 || st2.CorruptSkipped() != 1 {
		t.Fatalf("recovered store: len=%d corrupt=%d, want 1/1", st2.Len(), st2.CorruptSkipped())
	}
	srv2, svc2 := newTestServerOpts(t, service.Options{Store: st2}, 1<<20)

	// the intact record serves from the store — no search stage runs
	_, warm := postSpec(t, srv2.URL, exampleSpec)
	if warm.Source != "store" || !warm.Feasible {
		t.Fatalf("warm restart response: %+v", warm)
	}
	for _, c := range warm.Constraints {
		if !c.OK {
			t.Fatalf("store-served schedule violates %s", c.Name)
		}
	}
	if got := metricValue(t, srv2.URL, "searches"); got != 0 {
		t.Fatalf("warm restart ran %d searches, want 0", got)
	}
	if got := metricValue(t, srv2.URL, "store_hits"); got != 1 {
		t.Fatalf("store_hits = %d, want 1", got)
	}
	if got := metricValue(t, srv2.URL, "store_corrupt_skipped"); got != 1 {
		t.Fatalf("store_corrupt_skipped = %d, want 1", got)
	}

	// the corrupted record was skipped: its class recomputes (one
	// fresh admission pipeline), is served correctly, and is written
	// through again
	_, redo := postSpec(t, srv2.URL, auxSpec)
	if redo.Source == "store" || !redo.Feasible {
		t.Fatalf("corrupted class response: %+v", redo)
	}
	if got := metricValue(t, srv2.URL, "cache_misses"); got != 1 {
		t.Fatalf("corrupted class reran %d pipelines, want 1", got)
	}
	if got := metricValue(t, srv2.URL, "store_len"); got != 2 {
		t.Fatalf("store_len after heal = %d, want 2", got)
	}
	if svc2.Metrics().StoreHits.Load() != 1 {
		t.Fatal("corrupted record counted as a store hit")
	}
}
