package served

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"rtm/internal/core"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

// soakInstance builds a one-element-per-constraint model whose exact
// search is cheap but real (mirrors the service race-test corpus).
func soakInstance(w int, ds []int) *core.Model {
	m := core.NewModel()
	for i, d := range ds {
		name := fmt.Sprintf("u%d", i)
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d * w, Deadline: d * w, Kind: core.Asynchronous,
		})
	}
	return m
}

// renameSurface rebuilds m under fresh element/node names and a
// shuffled constraint order: an isomorphic surface with the same
// canonical fingerprint, which the cluster must dedup on.
func renameSurface(rng *rand.Rand, m *core.Model) *core.Model {
	elems := m.Comm.Elements()
	perm := rng.Perm(len(elems))
	ren := make(map[string]string, len(elems))
	for i, e := range elems {
		ren[e] = fmt.Sprintf("x%03d", perm[i])
	}
	out := core.NewModel()
	for _, i := range rng.Perm(len(elems)) {
		out.Comm.AddElement(ren[elems[i]], m.Comm.WeightOf(elems[i]))
	}
	for _, e := range m.Comm.G.Edges() {
		out.Comm.AddPath(ren[e.From], ren[e.To])
	}
	for _, ci := range rng.Perm(len(m.Constraints)) {
		c := m.Constraints[ci]
		task := core.NewTaskGraph()
		nodes := c.Task.Nodes()
		nren := make(map[string]string, len(nodes))
		for j, nd := range rng.Perm(len(nodes)) {
			nren[nodes[nd]] = fmt.Sprintf("y%d_%d", ci, j)
		}
		for _, nd := range nodes {
			task.AddStep(nren[nd], ren[c.Task.ElementOf(nd)])
		}
		for _, e := range c.Task.G.Edges() {
			task.AddPrec(nren[e.From], nren[e.To])
		}
		out.AddConstraint(&core.Constraint{
			Name: fmt.Sprintf("w%d", ci), Task: task,
			Period: c.Period, Deadline: c.Deadline, Kind: c.Kind,
		})
	}
	return out
}

// TestClusterSoakUnderRace is the cluster race/soak test: 3 in-process
// nodes, 40 concurrent submitters spraying isomorphic surfaces of 4
// fingerprint classes round-robin across the fleet with NO routing
// hints. Pinned fleet-wide properties, all under -race via `make test`:
//
//   - exactly one exact search runs per class across ALL nodes — the
//     ring concentrates each class on its owner and the owner's
//     single-flight dedups the concurrent burst;
//   - every request gets a decided 200, and every observer of a class
//     sees the same verdict;
//   - non-owner nodes really did route (forwards observed) and never
//     fell back (all owners stayed up).
func TestClusterSoakUnderRace(t *testing.T) {
	nodes := newFleet(t, 3, func(st *store.Store) service.Options {
		return service.Options{Store: st, DisableAnalysis: true, DisableHeuristic: true}
	})

	classes := []*core.Model{
		soakInstance(1, []int{2, 6, 6, 6}),
		soakInstance(1, []int{2, 3, 6}),
		soakInstance(1, []int{2, 4, 4}),
		soakInstance(1, []int{3, 3, 3}),
	}
	const surfacesPerClass = 8
	texts := make([][]string, len(classes))
	fps := make([]string, len(classes))
	for ci, m := range classes {
		fps[ci] = core.Fingerprint(m)
		texts[ci] = make([]string, surfacesPerClass)
		for s := 0; s < surfacesPerClass; s++ {
			surf := m
			if s > 0 {
				surf = renameSurface(rand.New(rand.NewSource(int64(ci*100+s))), m)
			}
			text := spec.Print(fmt.Sprintf("soak%d_%d", ci, s), surf)
			// the rendered surface must round-trip to the class
			// fingerprint, or the dedup assertion below is meaningless
			sp, err := spec.Parse(text)
			if err != nil {
				t.Fatalf("class %d surface %d does not re-parse: %v", ci, s, err)
			}
			if got := core.Fingerprint(sp.Model); got != fps[ci] {
				t.Fatalf("class %d surface %d fingerprint drifted: %s != %s", ci, s, got, fps[ci])
			}
			texts[ci][s] = text
		}
	}

	const submittersPerClass = 10 // 4 classes x 10 = 40 concurrent posters
	type obs struct {
		class    int
		feasible bool
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(classes)*submittersPerClass)
	obsCh := make(chan obs, len(classes)*submittersPerClass)
	for ci := range classes {
		for g := 0; g < submittersPerClass; g++ {
			wg.Add(1)
			go func(ci, g int) {
				defer wg.Done()
				node := nodes[(ci*submittersPerClass+g)%len(nodes)]
				body := texts[ci][g%surfacesPerClass]
				resp, err := http.Post(node.srv.URL+"/schedule", "text/plain", strings.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("class %d submitter %d: %v", ci, g, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("class %d submitter %d: status %d: %.200s", ci, g, resp.StatusCode, raw)
					return
				}
				var out scheduleResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					errs <- fmt.Errorf("class %d submitter %d: bad body: %v", ci, g, err)
					return
				}
				if !out.Decided || out.Fingerprint != fps[ci] {
					errs <- fmt.Errorf("class %d submitter %d: undecided or wrong class: %+v", ci, g, out)
					return
				}
				obsCh <- obs{class: ci, feasible: out.Feasible}
			}(ci, g)
		}
	}
	wg.Wait()
	close(errs)
	close(obsCh)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// verdict agreement: every observer of a class saw one answer
	verdict := make(map[int]bool, len(classes))
	seen := make(map[int]int, len(classes))
	for o := range obsCh {
		if n := seen[o.class]; n > 0 && verdict[o.class] != o.feasible {
			t.Fatalf("class %d: conflicting verdicts observed", o.class)
		}
		verdict[o.class] = o.feasible
		seen[o.class]++
	}
	for ci := range classes {
		if seen[ci] != submittersPerClass {
			t.Fatalf("class %d: %d/%d observations", ci, seen[ci], submittersPerClass)
		}
	}

	// exactly one search per class fleet-wide, with real routing and
	// zero degraded (fallback) serves
	var searches, forwards, fallbacks int64
	for _, n := range nodes {
		searches += metricValue(t, n.srv.URL, "searches")
		forwards += metricValue(t, n.srv.URL, "forwards")
		fallbacks += metricValue(t, n.srv.URL, "fallbacks")
	}
	if searches != int64(len(classes)) {
		t.Fatalf("fleet searches = %d, want exactly %d (one per class)", searches, len(classes))
	}
	if forwards == 0 {
		t.Fatal("no forwards observed: the soak never exercised routing")
	}
	if fallbacks != 0 {
		t.Fatalf("fallbacks = %d with all owners up, want 0", fallbacks)
	}
}
