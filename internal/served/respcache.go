package served

import (
	"container/list"
	"strconv"
	"sync"
)

// respCache memoizes serialized /schedule response bodies for repeat
// workloads, keyed by (fingerprint, order digest, system name) — the
// same identity the service's verified-hit memo uses, plus the spec's
// surface name, which appears in the body. Entries hold the JSON
// bytes up to (but not including) the elapsedMicros value, which is
// the response's final field; serving a hit is two writes: the cached
// prefix and the request's own fresh elapsed digits. Only verified
// LRU-hit responses are cached, so every cached body is one the
// service would serve again bit for bit.
type respCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent; values are respItem
	items map[string]*list.Element //
}

type respItem struct {
	key    string
	prefix []byte
}

// newRespCache returns a cache holding up to capacity bodies
// (capacity ≤ 0 disables caching).
func newRespCache(capacity int) *respCache {
	return &respCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body prefix for key, or nil.
func (c *respCache) get(key string) []byte {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(respItem).prefix
}

// put caches a body prefix, evicting the least recently served body
// at capacity.
func (c *respCache) put(key string, prefix []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = respItem{key: key, prefix: prefix}
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(respItem{key: key, prefix: prefix})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		delete(c.items, back.Value.(respItem).key)
		c.order.Remove(back)
	}
}

// len returns the number of cached bodies.
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// respKey builds the cache key for one served result.
func respKey(system, fingerprint, orderDigest string) string {
	return system + "\x00" + fingerprint + "\x00" + orderDigest
}

// appendElapsed completes a cached prefix into a full response body:
// the prefix ends right where the elapsedMicros value goes, so the
// body is prefix + digits + "}\n".
func appendElapsed(prefix []byte, elapsedUS int64) []byte {
	out := make([]byte, 0, len(prefix)+24)
	out = append(out, prefix...)
	out = strconv.AppendInt(out, elapsedUS, 10)
	return append(out, '}', '\n')
}
