package served

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtm/internal/cluster"
	"rtm/internal/core"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

// testNode is one in-process cluster member.
type testNode struct {
	id    string
	srv   *httptest.Server
	svc   *service.Service
	st    *store.Store
	peers map[string]*cluster.Client
}

// newFleet builds n in-process cluster nodes with stores, fully
// meshed. Construction is two-phase (servers first, then peer
// clients) because every URL only exists once its server is up.
func newFleet(t *testing.T, n int, optFor func(st *store.Store) service.Options) []*testNode {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	ring, err := cluster.NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*testNode, n)
	for i, id := range ids {
		st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		opt := service.Options{Store: st}
		if optFor != nil {
			opt = optFor(st)
		}
		svc := service.New(opt)
		peers := map[string]*cluster.Client{}
		d := New(Config{
			Service: svc, Timeout: 10 * time.Second, MaxBody: 1 << 20, RespCache: 64,
			Cluster: &Cluster{NodeID: id, Ring: ring, Peers: peers, Store: st},
		})
		srv := httptest.NewServer(d.Mux())
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{id: id, srv: srv, svc: svc, st: st, peers: peers}
	}
	for _, me := range nodes {
		for _, other := range nodes {
			if other.id != me.id {
				me.peers[other.id] = cluster.NewClient(other.id, other.srv.URL, 2*time.Second)
			}
		}
	}
	return nodes
}

// ownerOf locates the fleet node owning a spec's fingerprint.
func ownerOf(t *testing.T, nodes []*testNode, specText string) (*testNode, string) {
	t.Helper()
	sp, err := spec.Parse(specText)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.Fingerprint(sp.Model)
	ring, err := cluster.NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	own := ring.Owner(fp)
	for _, n := range nodes {
		if n.id == own {
			return n, fp
		}
	}
	t.Fatalf("owner %s not in fleet", own)
	return nil, ""
}

// postForwarded POSTs a spec with the forward marker set, pinning the
// request to the receiving node (the never-forward-a-forward rule).
func postForwarded(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/schedule", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(raw)
}

func TestClusterForwardingRules(t *testing.T) {
	nodes := newFleet(t, 3, nil)
	owner, fp := ownerOf(t, nodes, exampleSpec)
	var nonOwner *testNode
	for _, n := range nodes {
		if n.id != owner.id {
			nonOwner = n
			break
		}
	}

	// a plain POST to a non-owner is proxied to the owner
	resp, out := postSpec(t, nonOwner.srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK || !out.Decided || out.Fingerprint != fp {
		t.Fatalf("forwarded request: status=%d %+v", resp.StatusCode, out)
	}
	if got := metricValue(t, nonOwner.srv.URL, "forwards"); got != 1 {
		t.Fatalf("non-owner forwards = %d, want 1", got)
	}
	if got := metricValue(t, nonOwner.srv.URL, "requests"); got != 0 {
		t.Fatalf("non-owner served %d requests locally, want 0", got)
	}
	if got := metricValue(t, owner.srv.URL, "requests"); got != 1 {
		t.Fatalf("owner requests = %d, want 1", got)
	}
	// the decided outcome was written through on the owner only
	if _, ok := owner.st.Get(fp); !ok {
		t.Fatal("owner store missing the decided record")
	}
	if _, ok := nonOwner.st.Get(fp); ok {
		t.Fatal("non-owner store has the record before any sync")
	}

	// a POST already marked forwarded is served locally, never re-proxied
	fresp, _ := postForwarded(t, nonOwner.srv.URL, renamedSpec)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-marked request: status=%d", fresp.StatusCode)
	}
	if got := metricValue(t, nonOwner.srv.URL, "forwards"); got != 1 {
		t.Fatalf("forward marker re-proxied: forwards = %d, want still 1", got)
	}
	if got := metricValue(t, nonOwner.srv.URL, "requests"); got != 1 {
		t.Fatalf("forwarded-marked request not served locally: requests = %d", got)
	}

	// a POST to the owner itself never forwards
	oresp, oout := postSpec(t, owner.srv.URL, exampleSpec)
	if oresp.StatusCode != http.StatusOK || !oout.CacheHit {
		t.Fatalf("owner self-serve: status=%d %+v", oresp.StatusCode, oout)
	}
	if got := metricValue(t, owner.srv.URL, "forwards"); got != 0 {
		t.Fatalf("owner forwards = %d, want 0", got)
	}
}

// TestClusterOwnerDownFallback pins graceful degradation: when the
// shard owner dies, a non-owner answers the request itself with a
// local solve and write-through — no failed requests.
func TestClusterOwnerDownFallback(t *testing.T) {
	nodes := newFleet(t, 3, nil)
	owner, fp := ownerOf(t, nodes, exampleSpec)
	var survivor *testNode
	for _, n := range nodes {
		if n.id != owner.id {
			survivor = n
			break
		}
	}
	owner.srv.Close()

	resp, out := postSpec(t, survivor.srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK || !out.Decided || out.Fingerprint != fp {
		t.Fatalf("fallback request failed: status=%d %+v", resp.StatusCode, out)
	}
	if got := metricValue(t, survivor.srv.URL, "fallbacks"); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	// write-through happened locally: availability kept the verdict
	if _, ok := survivor.st.Get(fp); !ok {
		t.Fatal("survivor store missing the fallback verdict")
	}
}

// TestClusterWarmFleet is acceptance (a) at the daemon level: a
// verdict decided on node A is served by B and C from their stores
// after one sync round, with zero new exact searches fleet-wide.
func TestClusterWarmFleet(t *testing.T) {
	// analysis and heuristic off: every cold decide is an exact search,
	// so "searches" counts exactly the NP-hard work done
	nodes := newFleet(t, 3, func(st *store.Store) service.Options {
		return service.Options{Store: st, DisableAnalysis: true, DisableHeuristic: true}
	})
	a, b, c := nodes[0], nodes[1], nodes[2]

	// decide on A, pinned local by the forward marker
	resp, _ := postForwarded(t, a.srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status=%d", resp.StatusCode)
	}
	if got := metricValue(t, a.srv.URL, "searches"); got != 1 {
		t.Fatalf("seed searches on A = %d, want 1", got)
	}

	// one anti-entropy round on B and C
	for _, n := range []*testNode{b, c} {
		sy := &cluster.Syncer{Store: n.st, Peers: []*cluster.Client{n.peers[a.id]}, Logf: t.Logf}
		if rs := sy.SyncOnce(context.Background()); rs.Pulls == 0 || rs.Records == 0 {
			t.Fatalf("%s pulled nothing from A (%d/%d)", n.id, rs.Pulls, rs.Records)
		}
	}

	// B and C now serve the class locally from their stores — the
	// renamed isomorphic surface proves it is class-level warmth
	for _, n := range []*testNode{b, c} {
		resp, body := postForwarded(t, n.srv.URL, renamedSpec)
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"source":"store"`) {
			t.Fatalf("%s warm serve: status=%d body=%.200s", n.id, resp.StatusCode, body)
		}
		if got := metricValue(t, n.srv.URL, "searches"); got != 0 {
			t.Fatalf("%s ran %d searches serving a replicated class, want 0", n.id, got)
		}
	}
}

// TestClusterCorruptSegmentSkippedAndHealed is acceptance (c) at the
// daemon level: a segment corrupted in flight is dropped on import
// (the class stays a miss), and the next clean sync round heals it —
// the corrupt bytes are never served as a verdict.
func TestClusterCorruptSegmentSkippedAndHealed(t *testing.T) {
	nodes := newFleet(t, 3, func(st *store.Store) service.Options {
		return service.Options{Store: st, DisableAnalysis: true, DisableHeuristic: true}
	})
	a, b := nodes[0], nodes[1]

	resp, _ := postForwarded(t, a.srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status=%d", resp.StatusCode)
	}
	fpList := a.st.Fingerprints()
	if len(fpList) != 1 {
		t.Fatalf("A has %d records, want 1", len(fpList))
	}
	fp := fpList[0]

	// a corrupting man-in-the-middle proxy in front of A: manifests and
	// digests pass through, record bytes (whole-bucket segments AND
	// Merkle delta fetches) get every byte flipped
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequest(r.Method, a.srv.URL+r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header
		up, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer up.Body.Close()
		raw, _ := io.ReadAll(up.Body)
		if strings.HasPrefix(r.URL.Path, "/cluster/segment/") || r.URL.Path == "/cluster/fetch" {
			for i := range raw {
				raw[i] ^= 0xa5
			}
		}
		w.WriteHeader(up.StatusCode)
		w.Write(raw)
	}))
	defer evil.Close()

	sy := &cluster.Syncer{Store: b.st, Peers: []*cluster.Client{cluster.NewClient(a.id, evil.URL, 2*time.Second)}, Logf: t.Logf}
	if rs := sy.SyncOnce(context.Background()); rs.Records != 0 {
		t.Fatalf("corrupt sync imported %d records — corruption accepted", rs.Records)
	}
	if _, ok := b.st.Get(fp); ok {
		t.Fatal("corrupt segment record is resident in B's store")
	}
	// B serving the class now must NOT claim a store hit — the class
	// is simply cold here (miss, never a wrong verdict)
	if got := metricValue(t, b.srv.URL, "store_hits"); got != 0 {
		t.Fatalf("B claims %d store hits off a dropped segment", got)
	}

	// heal: the next round against the real peer converges B
	heal := &cluster.Syncer{Store: b.st, Peers: []*cluster.Client{b.peers[a.id]}, Logf: t.Logf}
	if rs := heal.SyncOnce(context.Background()); rs.Records != 1 {
		t.Fatalf("healing sync imported %d records, want 1", rs.Records)
	}
	resp2, body := postForwarded(t, b.srv.URL, renamedSpec)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(body, `"source":"store"`) {
		t.Fatalf("healed serve: status=%d body=%.200s", resp2.StatusCode, body)
	}
	if got := metricValue(t, b.srv.URL, "searches"); got != 0 {
		t.Fatalf("healed serve ran %d searches, want 0", got)
	}
}

// TestClusterManifestEndpoints exercises the replication wire surface
// directly: manifest shape, segment framing, and bad-bucket rejection.
func TestClusterManifestEndpoints(t *testing.T) {
	nodes := newFleet(t, 3, nil)
	a := nodes[0]
	if resp, _ := postForwarded(t, a.srv.URL, exampleSpec); resp.StatusCode != http.StatusOK {
		t.Fatal("seed failed")
	}

	cli := cluster.NewClient(a.id, a.srv.URL, 2*time.Second)
	doc, err := cli.Manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Node != a.id || len(doc.Buckets) != store.ManifestBuckets {
		t.Fatalf("manifest: %+v", doc)
	}
	total := 0
	for _, b := range doc.Buckets {
		total += b.Count
		if b.Count > 0 {
			seg, err := cli.PullSegment(context.Background(), b.Bucket)
			if err != nil {
				t.Fatal(err)
			}
			if len(seg) == 0 {
				t.Fatalf("bucket %d: empty segment for %d records", b.Bucket, b.Count)
			}
		}
	}
	if total != 1 {
		t.Fatalf("manifest total = %d, want 1", total)
	}

	for _, path := range []string{"/cluster/segment/16", "/cluster/segment/-1", "/cluster/segment/zzz"} {
		resp, err := http.Get(a.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status=%d, want 400", path, resp.StatusCode)
		}
	}
}

// TestClusterMerkleEndpoints exercises the narrowing wire surface on
// a real daemon: version advertisement, digest walks at every depth,
// leaf fingerprint sets, delta fetches, and the 400s for malformed
// prefixes/depths/bodies.
func TestClusterMerkleEndpoints(t *testing.T) {
	nodes := newFleet(t, 1, nil)
	a := nodes[0]
	if resp, _ := postForwarded(t, a.srv.URL, exampleSpec); resp.StatusCode != http.StatusOK {
		t.Fatal("seed failed")
	}
	cli := cluster.NewClient(a.id, a.srv.URL, 2*time.Second)
	ctx := context.Background()

	doc, err := cli.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if doc.MerkleDepth != store.MerkleDepth {
		t.Fatalf("manifest merkleDepth = %d, want %d", doc.MerkleDepth, store.MerkleDepth)
	}

	// walk the single record from the root down to its leaf
	prefix := ""
	for depth := 1; depth <= store.MerkleDepth; depth++ {
		ds, err := cli.Digests(ctx, prefix, depth, "v")
		if err != nil {
			t.Fatalf("digests %q depth %d: %v", prefix, depth, err)
		}
		if len(ds) != 1 || ds[0].Count != 1 || ds[0].Digest == "" || ds[0].MemoDigest != "" {
			t.Fatalf("digests %q depth %d: %+v", prefix, depth, ds)
		}
		prefix = ds[0].Prefix
	}
	fps, err := cli.LeafFingerprints(ctx, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 1 {
		t.Fatalf("leaf %q: %v", prefix, fps)
	}
	seg, err := cli.FetchRecords(ctx, fps)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) == 0 {
		t.Fatal("fetch returned an empty segment for a known fingerprint")
	}
	// unknown fingerprints are skipped, not errors
	if seg, err = cli.FetchRecords(ctx, []string{strings.Repeat("0", 64)}); err != nil || len(seg) != 0 {
		t.Fatalf("unknown-fp fetch: seg=%d err=%v", len(seg), err)
	}
	// memo leaf of an empty prefix: empty segment, no error
	if seg, err = cli.PullMemoLeaf(ctx, "fff"); err != nil || len(seg) != 0 {
		t.Fatalf("empty memo leaf: seg=%d err=%v", len(seg), err)
	}

	for _, bad := range []string{
		"/cluster/digests/xyz",            // non-hex prefix
		"/cluster/digests/?depth=9",       // depth beyond the tree
		"/cluster/digests/ab?depth=1",     // depth not past the prefix
		"/cluster/leaf/ab",                // not a leaf-depth prefix
		"/cluster/memoleaf/",              // root: whole-store memo export refused
	} {
		resp, err := http.Get(a.srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status=%d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Post(a.srv.URL+"/cluster/fetch", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fetch body: status=%d, want 400", resp.StatusCode)
	}
	if resp, err = http.Get(a.srv.URL + "/cluster/fetch"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET fetch: status=%d, want 405", resp.StatusCode)
	}
}
