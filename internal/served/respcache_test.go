package served

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"rtm/internal/service"
)

// TestRespCacheBounded: the response body cache is LRU-bounded and
// returns exactly what was stored.
func TestRespCacheBounded(t *testing.T) {
	c := newRespCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if got := c.get("a"); string(got) != "A" {
		t.Fatalf("get(a) = %q", got)
	}
	c.put("c", []byte("C")) // evicts b (a was just touched)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.get("b") != nil {
		t.Fatal("LRU victim survived")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("resident bodies missing")
	}
	// capacity 0 disables caching entirely
	off := newRespCache(0)
	off.put("k", []byte("V"))
	if off.get("k") != nil || off.len() != 0 {
		t.Fatal("disabled cache stored a body")
	}
}

// TestAppendElapsed: completing a cached prefix yields the same JSON
// the direct marshaling path produces.
func TestAppendElapsed(t *testing.T) {
	resp := scheduleResponse{Fingerprint: "f", Decided: true, Source: "cache", CacheHit: true}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	body := appendElapsed(b[:len(b)-2], 1234)
	var got scheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("completed body does not parse: %v\n%s", err, body)
	}
	if got.ElapsedUS != 1234 || got.Fingerprint != "f" || !got.CacheHit {
		t.Fatalf("completed body round-trips wrong: %+v", got)
	}
}

// TestScheduleStatus pins the error → HTTP status mapping, 429 +
// retryable for overload in particular.
func TestScheduleStatus(t *testing.T) {
	cases := []struct {
		err       error
		code      int
		retryable bool
	}{
		{service.ErrOverloaded, http.StatusTooManyRequests, true},
		{fmt.Errorf("wrapped: %w", service.ErrOverloaded), http.StatusTooManyRequests, true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{context.Canceled, http.StatusGatewayTimeout, false},
		{fmt.Errorf("invalid model"), http.StatusBadRequest, false},
	}
	for _, tc := range cases {
		code, retryable := scheduleStatus(tc.err)
		if code != tc.code || retryable != tc.retryable {
			t.Fatalf("scheduleStatus(%v) = (%d, %v), want (%d, %v)",
				tc.err, code, retryable, tc.code, tc.retryable)
		}
	}
}

// TestServedResponseBodyCache: byte-identical repeat POSTs are served
// the cached body — identical except for the stamped elapsedMicros —
// while a renamed isomorphic spec gets its own body under its own
// names.
func TestServedResponseBodyCache(t *testing.T) {
	svc := service.New(service.Options{})
	d := newDaemon(svc, 10*time.Second, 1<<20, 1024)
	srv := httptest.NewServer(d.mux())
	defer srv.Close()

	post := func(spec string) (string, scheduleResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/schedule", "text/plain", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var out scheduleResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%v\n%s", err, raw)
		}
		return string(raw), out
	}

	_, cold := post(exampleSpec)
	if cold.CacheHit || cold.OrderDigest == "" {
		t.Fatalf("cold response: %+v", cold)
	}
	if d.resp.len() != 0 {
		t.Fatal("cold (miss) response was cached")
	}

	warm1Body, warm1 := post(exampleSpec)
	if !warm1.CacheHit {
		t.Fatalf("first warm response: %+v", warm1)
	}
	if d.resp.len() != 1 {
		t.Fatalf("response cache holds %d bodies after first hit, want 1", d.resp.len())
	}

	warm2Body, warm2 := post(exampleSpec)
	if !warm2.CacheHit || warm2.OrderDigest != warm1.OrderDigest {
		t.Fatalf("second warm response: %+v", warm2)
	}
	// the bodies must be byte-identical once the elapsed stamp is
	// normalized out
	elapsed := regexp.MustCompile(`"elapsedMicros":\d+`)
	n1 := elapsed.ReplaceAllString(warm1Body, `"elapsedMicros":X`)
	n2 := elapsed.ReplaceAllString(warm2Body, `"elapsedMicros":X`)
	if n1 != n2 {
		t.Fatalf("repeat bodies diverge:\n%s\n%s", n1, n2)
	}
	if warm2.ElapsedUS < 0 {
		t.Fatalf("stamped elapsed is negative: %d", warm2.ElapsedUS)
	}

	// a renamed isomorphic spec shares the fingerprint but not the
	// digest: it must not be served the cached body
	isoBody, iso := post(renamedSpec)
	if iso.Fingerprint != warm1.Fingerprint || iso.OrderDigest == warm1.OrderDigest {
		t.Fatalf("isomorphic response: %+v", iso)
	}
	if strings.Contains(isoBody, `"fS"`) {
		t.Fatalf("isomorphic body leaks the original naming:\n%s", isoBody)
	}
	if got := svc.Metrics().MemoHits.Load(); got != 2 {
		t.Fatalf("memo_hits = %d, want 2 (both identical repeats, not the renamed one)", got)
	}
}

// TestPprofMux: the diagnostics mux serves the pprof index and the
// profile inventory, and the daemon mux does not.
func TestPprofMux(t *testing.T) {
	diag := httptest.NewServer(pprofMux())
	defer diag.Close()
	resp, err := http.Get(diag.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "goroutine") {
		t.Fatalf("pprof index: status=%d body=%.120s", resp.StatusCode, raw)
	}

	svc := service.New(service.Options{})
	app := httptest.NewServer(newDaemon(svc, time.Second, 1<<20, 0).mux())
	defer app.Close()
	leak, err := http.Get(app.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	leak.Body.Close()
	if leak.StatusCode != http.StatusNotFound {
		t.Fatalf("service mux exposes pprof: status=%d", leak.StatusCode)
	}
}
