package served

import (
	"testing"

	"rtm/internal/service"
	"rtm/internal/store"
)

// hardNoSpec is the density-1 weight-3 refutation family: the static
// analysis cannot reject it, the heuristic cannot schedule it, and the
// exhaustion leaves a non-empty memo snapshot behind.
const hardNoSpec = `system hardno
element u0 weight 3
element u1 weight 3
element u2 weight 3

sporadic c0 separation 6 deadline 6 { u0 }
sporadic c1 separation 9 deadline 9 { u1 }
sporadic c2 separation 18 deadline 18 { u2 }
`

// hardNoVariantSpec is the near miss: one extra communication path
// changes the canonical fingerprint (the verdict store cannot answer
// it) but not the search structure (the memo class can warm it).
const hardNoVariantSpec = `system hardno2
element u0 weight 3
element u1 weight 3
element u2 weight 3
path u0 -> u1

sporadic c0 separation 6 deadline 6 { u0 }
sporadic c1 separation 9 deadline 9 { u1 }
sporadic c2 separation 18 deadline 18 { u2 }
`

// TestServedMemoWarmRestart drives the durable refutation cache end to
// end over HTTP: life 1 refutes a hard NO class and exports its
// transposition table; life 2 — same store directory — is asked a
// near-miss variant, seeds its search from disk, and /metrics shows the
// seed hit and the write-backs.
func TestServedMemoWarmRestart(t *testing.T) {
	sdir := t.TempDir()

	st1, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1, _ := newTestServerOpts(t, service.Options{
		Store: st1, DisableAnalysis: true, DisableHeuristic: true,
	}, 1<<20)
	if _, res := postSpec(t, srv1.URL, hardNoSpec); res.Feasible || res.Source != "exact" {
		t.Fatalf("life 1 refute: %+v", res)
	}
	if got := metricValue(t, srv1.URL, "memo_snapshot_puts"); got != 1 {
		t.Fatalf("life 1 memo_snapshot_puts = %d, want 1", got)
	}
	if got := metricValue(t, srv1.URL, "memo_seed_hits"); got != 0 {
		t.Fatalf("life 1 memo_seed_hits = %d, want 0 (cold)", got)
	}
	if st1.MemoLen() != 1 {
		t.Fatalf("life 1 store memo classes = %d, want 1", st1.MemoLen())
	}
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// life 2: same store directory, fresh daemon, near-miss request
	st2, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2, _ := newTestServerOpts(t, service.Options{
		Store: st2, DisableAnalysis: true, DisableHeuristic: true,
	}, 1<<20)
	if _, res := postSpec(t, srv2.URL, hardNoVariantSpec); res.Feasible || res.Source != "exact" {
		t.Fatalf("life 2 near-miss refute: %+v", res)
	}
	if got := metricValue(t, srv2.URL, "memo_seed_hits"); got != 1 {
		t.Fatalf("life 2 memo_seed_hits = %d, want 1", got)
	}
	if got := metricValue(t, srv2.URL, "memo_seed_sigs"); got <= 0 {
		t.Fatalf("life 2 memo_seed_sigs = %d, want > 0", got)
	}
	if got := metricValue(t, srv2.URL, "store_hits"); got != 0 {
		t.Fatalf("life 2 store_hits = %d — near miss must not hit the verdict store", got)
	}
	// both fingerprints are now members of the one class
	rec, ok := st2.GetMemo(st2.MemoKeys()[0])
	if !ok || len(rec.Fingerprints) != 2 {
		t.Fatalf("class membership after life 2: ok=%v rec=%+v", ok, rec)
	}
}
