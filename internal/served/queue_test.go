package served

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtm/internal/core"
	"rtm/internal/queue"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
	"rtm/internal/trace"
)

// thirdSpec is a third, non-isomorphic workload for the queue tests.
const thirdSpec = `system third
element h1 weight 1

periodic beat period 6 deadline 6 { h1 }
`

func postAsync(t *testing.T, url, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(url+"/schedule?async=1", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func getJob(t *testing.T, url, id, wait string) (*http.Response, jobResponse) {
	t.Helper()
	u := url + "/job/" + id
	if wait != "" {
		u += "?wait=" + wait
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestServedAsyncContract pins the HTTP surface of the async queue:
// POST /schedule?async=1 answers 202 with a job handle, GET /job/<id>
// polls and long-polls it, duplicates dedup onto the same handle, and
// the error paths (no queue, unknown job, bad id, bad method, bad
// wait) answer with the right statuses.
func TestServedAsyncContract(t *testing.T) {
	// without a queue, /job/ is absent and ?async=1 degrades to sync
	srvNone, _ := newTestServer(t)
	if resp, _ := getJob(t, srvNone.URL, "deadbeef", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/job/ without queue: status = %d, want 404", resp.StatusCode)
	}
	if resp, body := postSpec(t, srvNone.URL, exampleSpec); resp.StatusCode != http.StatusOK || !body.Feasible {
		t.Fatalf("sync fallback without queue: %d %+v", resp.StatusCode, body)
	}

	q, err := queue.Open(t.TempDir(), queue.Options{Workers: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	srv, _ := newTestServerOpts(t, service.Options{Queue: q}, 1<<20)

	resp, job := postAsync(t, srv.URL, exampleSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status = %d, want 202", resp.StatusCode)
	}
	if job.Job == "" || job.Resubmitted {
		t.Fatalf("async submit: %+v", job)
	}
	if job.State != "done" && job.Poll != "/job/"+job.Job {
		t.Fatalf("non-terminal 202 carries no poll target: %+v", job)
	}

	// long-poll until the workers decide it
	resp, final := getJob(t, srv.URL, job.Job, "15s")
	if resp.StatusCode != http.StatusOK || final.State != "done" || !final.Decided || !final.Feasible {
		t.Fatalf("long-poll: %d %+v", resp.StatusCode, final)
	}
	if final.Poll != "" {
		t.Fatalf("terminal job still advertises a poll target: %+v", final)
	}

	// a duplicate — even under different names — dedups onto the same
	// terminal job and reports its verdict immediately
	resp, dup := postAsync(t, srv.URL, renamedSpec)
	if resp.StatusCode != http.StatusAccepted || !dup.Resubmitted || dup.Job != job.Job || dup.State != "done" {
		t.Fatalf("isomorphic resubmit: %d %+v", resp.StatusCode, dup)
	}

	// the schedule itself is collected synchronously from the warmed
	// cache — no new pipeline
	if _, body := postSpec(t, srv.URL, exampleSpec); !body.Feasible || body.Source == "exact" {
		t.Fatalf("post-drain collection: %+v", body)
	}

	// error surface
	if resp, _ := getJob(t, srv.URL, strings.Repeat("0", 64), ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := getJob(t, srv.URL, "a/b", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("slashed job id: status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := getJob(t, srv.URL, job.Job, "not-a-duration"); resp.StatusCode != http.StatusBadRequest && final.State != "done" {
		t.Fatalf("bad wait: status = %d", resp.StatusCode)
	}
	postResp, err := http.Post(srv.URL+"/job/"+job.Job, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /job: status = %d, want 405", postResp.StatusCode)
	}
}

// appendJournalFrame appends one framed queue record (optionally
// corrupted) to a journal file — the test's stand-in for a crash that
// interleaved writes with the daemon's own.
func appendJournalFrame(t *testing.T, path string, rec *trace.QueueRecordJSON, corrupt bool) {
	t.Helper()
	payload, err := trace.EncodeQueueRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := store.Frame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt {
		buf[len(buf)-3] ^= 0xff // flip a payload byte: CRC mismatch
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServedQueueWarmRestart is the acceptance test for the durable
// queue: a daemon life accepts async jobs without draining them (the
// moral equivalent of SIGTERM mid-burst), a crash interleaves a
// started record and a torn submitted frame into the journal, and the
// next life — same -queue-dir and -store-dir — resumes the pending
// jobs, serves the already-solved class from the store with zero new
// searches, skips the flipped frame, and heals the journal so the
// class it carried can be resubmitted as a fresh job.
func TestServedQueueWarmRestart(t *testing.T) {
	qdir, sdir := t.TempDir(), t.TempDir()

	// life 1: accept async jobs A and B (no workers: they stay
	// pending, as if SIGTERM landed before the pool reached them), and
	// solve A synchronously so the store is warm for it
	st1, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := queue.Open(qdir, queue.Options{Workers: 0, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv1, _ := newTestServerOpts(t, service.Options{
		Store: st1, Queue: q1, DisableAnalysis: true, DisableHeuristic: true,
	}, 1<<20)
	_, jobA := postAsync(t, srv1.URL, exampleSpec)
	_, jobB := postAsync(t, srv1.URL, auxSpec)
	if jobA.State != "pending" || jobB.State != "pending" {
		t.Fatalf("life 1 jobs: %+v, %+v", jobA, jobB)
	}
	if _, sync := postSpec(t, srv1.URL, exampleSpec); !sync.Feasible || sync.Source != "exact" {
		t.Fatalf("life 1 sync solve: %+v", sync)
	}
	srv1.Close()
	if err := q1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// the crash: a started record for B survives (a worker had picked
	// it up), and the frame after it — a submitted record for a third
	// class — is torn mid-write (one flipped byte)
	journal := filepath.Join(qdir, "queue.log")
	appendJournalFrame(t, journal, &trace.QueueRecordJSON{
		Type: trace.QueueStarted, Fingerprint: jobB.Job, Unix: time.Now().Unix(),
	}, false)
	spC, err := spec.Parse(thirdSpec)
	if err != nil {
		t.Fatal(err)
	}
	fpC := core.Fingerprint(spC.Model)
	appendJournalFrame(t, journal, &trace.QueueRecordJSON{
		Type: trace.QueueSubmitted, Fingerprint: fpC, Unix: time.Now().Unix(),
		Model: trace.NewModelJSON(spC.Model),
	}, true)

	// life 2: same directories. Replay must resume A and B (B counted
	// as interrupted mid-solve) and truncate the torn frame.
	st2, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	q2, err := queue.Open(qdir, queue.Options{Workers: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if s := q2.Stats(); s.Depth != 2 || s.Resumed != 1 || s.CorruptTail != 1 {
		t.Fatalf("life 2 replay: %+v", s)
	}
	srv2, _ := newTestServerOpts(t, service.Options{
		Store: st2, Queue: q2, DisableAnalysis: true, DisableHeuristic: true,
	}, 1<<20)

	// A was solved last life: its job completes from the store, no search
	if _, a := getJob(t, srv2.URL, jobA.Job, "15s"); a.State != "done" || !a.Feasible || a.Source != "store" {
		t.Fatalf("resumed job A: %+v", a)
	}
	// B was never solved: exactly one fresh search decides it
	if _, b := getJob(t, srv2.URL, jobB.Job, "15s"); b.State != "done" || !b.Feasible || b.Source != "exact" {
		t.Fatalf("resumed job B: %+v", b)
	}
	if got := metricValue(t, srv2.URL, "searches"); got != 1 {
		t.Fatalf("warm restart ran %d searches, want 1 (B only)", got)
	}
	if got := metricValue(t, srv2.URL, "store_hits"); got != 1 {
		t.Fatalf("store_hits = %d, want 1 (A)", got)
	}
	for name, want := range map[string]int64{
		"queue_completed": 2, "queue_failed": 0, "queue_depth": 0,
		"queue_resumed": 1, "queue_corrupt_skipped": 1,
	} {
		if got := metricValue(t, srv2.URL, name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// collecting A's schedule is now a pure hit path
	if _, warm := postSpec(t, srv2.URL, exampleSpec); !warm.Feasible || warm.Source == "exact" {
		t.Fatalf("collecting A after restart: %+v", warm)
	}

	// the torn frame never became a job — and the healed journal
	// accepts the same class as a fresh submission
	if _, ok := q2.Get(fpC); ok {
		t.Fatal("torn submitted record resurrected as a job")
	}
	if resp, c := postAsync(t, srv2.URL, thirdSpec); resp.StatusCode != http.StatusAccepted || c.Resubmitted || c.Job != fpC {
		t.Fatalf("resubmit of torn class: %d %+v", resp.StatusCode, c)
	}
	if _, c := getJob(t, srv2.URL, fpC, "15s"); c.State != "done" || !c.Feasible {
		t.Fatalf("torn class after resubmit: %+v", c)
	}
	srv2.Close()
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}

	// life 3: everything terminal, journal fully clean
	q3, err := queue.Open(qdir, queue.Options{Workers: 0, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if s := q3.Stats(); s.Depth != 0 || s.CorruptTail != 0 {
		t.Fatalf("life 3: %+v", s)
	}
	for _, id := range []string{jobA.Job, jobB.Job, fpC} {
		if st, ok := q3.Get(id); !ok || st.State != queue.Done {
			t.Fatalf("life 3 job %s: %+v", id[:8], st)
		}
	}
}
