// Package served is the HTTP serving layer of the scheduling service
// — the daemon behind cmd/rtserved, factored into a library so the
// cluster bench (cmd/rtbench -cluster) and tests can run whole
// in-process fleets of nodes without listeners or subprocesses.
//
// A Daemon wraps one service.Service (pipeline + cache + optional
// store and queue) with the HTTP surface: POST /schedule, GET
// /job/<id>, /metrics, /healthz, a serialized-response-body cache for
// verified hits, and — when a Cluster config is attached — the
// fingerprint-sharded peer protocol: non-owner nodes proxy /schedule
// and /job requests to the shard owner (one hop max, with graceful
// fallback to a local solve when the owner is unreachable), and the
// /cluster/manifest + /cluster/segment/<bucket> endpoints serve the
// store's anti-entropy replication.
package served

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"rtm/internal/cluster"
	"rtm/internal/queue"
	"rtm/internal/service"
	"rtm/internal/spec"
	"rtm/internal/store"
)

// Cluster is the daemon's view of fleet membership. Nil means
// single-node serving (the pre-cluster behavior, byte for byte).
type Cluster struct {
	// NodeID is this node's ring member ID.
	NodeID string
	// Ring maps fingerprints to owning node IDs; it must contain
	// NodeID.
	Ring *cluster.Ring
	// Peers maps peer node IDs (never NodeID) to their clients.
	Peers map[string]*cluster.Client
	// Store, when non-nil, is served to peers at /cluster/manifest and
	// /cluster/segment/<bucket> for anti-entropy replication.
	Store *store.Store
}

// Config assembles a Daemon.
type Config struct {
	// Service is the scheduling pipeline the daemon serves.
	Service *service.Service
	// Timeout bounds each scheduling request (0 = no per-request
	// timeout beyond the client's).
	Timeout time.Duration
	// MaxBody bounds the /schedule request body in bytes.
	MaxBody int64
	// RespCache is the serialized response body cache capacity
	// (0 disables).
	RespCache int
	// Cluster, when non-nil, enables fingerprint-sharded peer
	// forwarding and segment replication.
	Cluster *Cluster
}

// Daemon bundles the serving state behind the HTTP handlers.
type Daemon struct {
	svc     *service.Service
	timeout time.Duration
	maxBody int64
	resp    *respCache
	cl      *Cluster
}

// New builds a Daemon from cfg.
func New(cfg Config) *Daemon {
	return &Daemon{
		svc:     cfg.Service,
		timeout: cfg.Timeout,
		maxBody: cfg.MaxBody,
		resp:    newRespCache(cfg.RespCache),
		cl:      cfg.Cluster,
	}
}

// newDaemon is the single-node constructor tests use.
func newDaemon(svc *service.Service, timeout time.Duration, maxBody int64, respCacheSize int) *Daemon {
	return New(Config{Service: svc, Timeout: timeout, MaxBody: maxBody, RespCache: respCacheSize})
}

// newMux wires the service endpoints for a single-node daemon;
// factored out so tests can drive the handler without a listener.
func newMux(svc *service.Service, timeout time.Duration, maxBody int64) *http.ServeMux {
	return newDaemon(svc, timeout, maxBody, 1024).mux()
}

// Mux returns the daemon's HTTP handler.
func (d *Daemon) Mux() *http.ServeMux { return d.mux() }

func (d *Daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", d.handleSchedule)
	mux.HandleFunc("/job/", d.handleJob)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, d.svc.MetricsText())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	if d.cl != nil && d.cl.Store != nil {
		mux.HandleFunc("/cluster/manifest", d.handleManifest)
		mux.HandleFunc("/cluster/segment/", d.handleSegment)
		mux.HandleFunc("/cluster/memoseg/", d.handleMemoSegment)
		mux.HandleFunc("/cluster/digests/", d.handleDigests)
		mux.HandleFunc("/cluster/leaf/", d.handleLeaf)
		mux.HandleFunc("/cluster/fetch", d.handleFetch)
		mux.HandleFunc("/cluster/memoleaf/", d.handleMemoLeaf)
	}
	return mux
}

// scheduleResponse is the JSON verdict for one request. ElapsedUS
// must stay the final field: the response body cache stores the
// serialized bytes up to the elapsedMicros value and stamps each
// request's own elapsed time into the tail.
type scheduleResponse struct {
	System      string           `json:"system,omitempty"`
	Fingerprint string           `json:"fingerprint"`
	OrderDigest string           `json:"orderDigest,omitempty"`
	Decided     bool             `json:"decided"`
	Feasible    bool             `json:"feasible"`
	Source      string           `json:"source"`
	CacheHit    bool             `json:"cacheHit"`
	Shared      bool             `json:"shared,omitempty"`
	Cycle       int              `json:"cycle,omitempty"`
	Schedule    []string         `json:"schedule,omitempty"`
	Constraints []constraintJSON `json:"constraints,omitempty"`
	ElapsedUS   int64            `json:"elapsedMicros"`
}

type constraintJSON struct {
	Name     string `json:"name"`
	Latency  int    `json:"latency"`
	Deadline int    `json:"deadline"`
	OK       bool   `json:"ok"`
}

// jobResponse is the JSON body for 202 Accepted answers and for
// GET /job/<id>. A done job carries only the verdict — the schedule
// itself is collected by re-POSTing the spec, which the worker's
// write-through has made a store hit.
type jobResponse struct {
	Job         string `json:"job"` // canonical fingerprint = job id
	State       string `json:"state"`
	Decided     bool   `json:"decided,omitempty"`
	Feasible    bool   `json:"feasible,omitempty"`
	Source      string `json:"source,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmitUnix  int64  `json:"submitUnix,omitempty"`
	Resubmitted bool   `json:"resubmitted,omitempty"`
	Poll        string `json:"poll,omitempty"` // where to poll for the verdict
}

// writeJob renders a queue job status.
func writeJob(w http.ResponseWriter, js *queue.Status, code int) {
	resp := jobResponse{
		Job:         js.ID,
		State:       js.State.String(),
		Decided:     js.Verdict.Decided,
		Feasible:    js.Verdict.Feasible,
		Source:      js.Verdict.Source,
		Error:       js.Err,
		SubmitUnix:  js.SubmitUnix,
		Resubmitted: js.Resubmitted,
	}
	if !js.State.Terminal() {
		resp.Poll = "/job/" + js.ID
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// maxJobWait caps GET /job/<id>?wait= long-polls so a client cannot
// pin a connection past the server's write timeout.
const maxJobWait = 30 * time.Second

// handleJob serves job status: GET /job/<id> returns the current
// state; ?wait=10s long-polls until the job is terminal or the wait
// expires (the poll-vs-push middle ground that costs one goroutine,
// not one connection per retry loop). In cluster mode a job unknown
// locally is looked up at its shard owner — the job ID is the
// canonical fingerprint, so routing needs no extra state.
func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /job/<id>", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/job/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "GET /job/<id>", http.StatusBadRequest)
		return
	}
	q := d.svc.Queue()
	var js *queue.Status
	var ok bool
	if q != nil {
		js, ok = q.Get(id)
	}
	if !ok && d.forwardJob(w, r, id) {
		return
	}
	if q == nil {
		http.Error(w, "async solve queue not enabled (-queue-dir)", http.StatusNotFound)
		return
	}
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" && !js.State.Terminal() {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			http.Error(w, "bad wait duration", http.StatusBadRequest)
			return
		}
		if wait > maxJobWait {
			wait = maxJobWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		// Wait returns the final status, or the current one with
		// ctx.Err() when the poll budget expires — either way the
		// client gets a fresh snapshot
		js, _ = q.Wait(ctx, id)
		if js == nil {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
	}
	writeJob(w, js, http.StatusOK)
}

// scheduleStatus maps a service error to its HTTP status and whether
// the client should be told to retry (429 carries Retry-After).
func scheduleStatus(err error) (code int, retryable bool) {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, false
	default:
		return http.StatusBadRequest, false
	}
}

func (d *Daemon) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a specification to /schedule", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "specification exceeds the request body limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sp, err := spec.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// cluster routing: a non-owner proxies the request to the shard
	// owner (never a forward of a forward); on owner failure it falls
	// through to a local solve
	if d.forwardSchedule(w, r, body, sp.Model) {
		return
	}

	ctx := r.Context()
	if d.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.timeout)
		defer cancel()
	}

	// explicitly-async requests skip the synchronous attempt: the spec
	// is journaled and answered 202 immediately (dedup by fingerprint
	// makes re-posting an already-known class free)
	if r.URL.Query().Get("async") == "1" && d.svc.Queue() != nil {
		js, err := d.svc.Enqueue(sp.Model, queue.SubmitOptions{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJob(w, js, http.StatusAccepted)
		return
	}

	res, job, err := d.svc.ScheduleOrEnqueue(ctx, sp.Model)
	if err != nil {
		code, retryable := scheduleStatus(err)
		if retryable {
			w.Header().Set("Retry-After", "1")
		}
		msg := err.Error()
		switch code {
		case http.StatusTooManyRequests:
			msg = "scheduler overloaded; retry later"
		case http.StatusGatewayTimeout:
			msg = "scheduling timed out"
		}
		http.Error(w, msg, code)
		return
	}
	if job != nil {
		// the exact stage would have shed this request: it is now a
		// durable async job — 202 + the handle to poll
		writeJob(w, job, http.StatusAccepted)
		return
	}

	// verified-hit fast path, response layer: a repeat of an already
	// served surface reuses the serialized body, stamping only the
	// fresh elapsed time
	key := respKey(sp.Name, res.Fingerprint, res.OrderDigest)
	if res.CacheHit {
		if pre := d.resp.get(key); pre != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(appendElapsed(pre, res.Elapsed.Microseconds()))
			return
		}
	}

	resp := scheduleResponse{
		System:      sp.Name,
		Fingerprint: res.Fingerprint,
		OrderDigest: res.OrderDigest,
		Decided:     res.Decided,
		Feasible:    res.Feasible,
		Source:      res.Source,
		CacheHit:    res.CacheHit,
		Shared:      res.Shared,
		// ElapsedUS stays zero here: the zero is the serialization
		// placeholder every response stamps over
	}
	if res.Feasible {
		resp.Cycle = res.Schedule.Len()
		resp.Schedule = append([]string{}, res.Schedule.Slots...)
		for _, c := range res.Report.Constraints {
			resp.Constraints = append(resp.Constraints, constraintJSON{
				Name: c.Name, Latency: c.Latency, Deadline: c.Deadline, OK: c.OK,
			})
		}
	}
	b, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	prefix := b[: len(b)-2 : len(b)-2] // strip the `0}` placeholder tail
	if res.CacheHit {
		// only LRU-hit bodies are cached: their content is stable for
		// the (fingerprint, digest, system) identity by the verified-hit
		// memo's guarantee
		d.resp.put(key, prefix)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(appendElapsed(prefix, res.Elapsed.Microseconds()))
}
