package served

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rtm/internal/cluster"
	"rtm/internal/core"
	"rtm/internal/store"
)

// Cluster request routing. The rules, in order:
//
//  1. A request carrying the forward marker is ALWAYS served locally.
//     One hop is the protocol — re-forwarding would let two nodes
//     with momentarily different ring views bounce a request forever,
//     and a forwarded request landing on a non-owner (membership
//     skew) is still perfectly servable: every node runs the full
//     pipeline, the ring only optimizes where warm state lives.
//  2. A request whose fingerprint this node owns is served locally.
//  3. Otherwise the request is proxied to the owner verbatim (body and
//     query string), marked as forwarded.
//  4. If the owner cannot be reached, the node falls back to a local
//     solve with write-through — availability over placement. The
//     answer is correct (same pipeline), merely colder; anti-entropy
//     sync later reconciles the out-of-place record fleet-wide.
//
// Correctness does not depend on routing at all — any node can decide
// any class — so every rule here is a pure performance/availability
// trade, which is what lets the failure handling be this simple.

// owner resolves the owning peer for a fingerprint. It returns nil
// when this daemon should serve locally: no cluster, self-owned, a
// forwarded request, or an owner with no configured client.
func (d *Daemon) owner(r *http.Request, fp string) *cluster.Client {
	if d.cl == nil || r.Header.Get(cluster.ForwardHeader) != "" {
		return nil
	}
	own := d.cl.Ring.Owner(fp)
	if own == d.cl.NodeID {
		return nil
	}
	return d.cl.Peers[own] // nil for an unknown owner = serve locally
}

// relay copies a peer's response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// forwardSchedule proxies a parsed /schedule request to its shard
// owner. It reports true when the response was written; false means
// the caller should serve locally (self-owned, forwarded, no cluster,
// or the owner was unreachable — the graceful-degradation fallback).
func (d *Daemon) forwardSchedule(w http.ResponseWriter, r *http.Request, body []byte, m *core.Model) bool {
	if d.cl == nil {
		return false
	}
	peer := d.owner(r, core.Fingerprint(m))
	if peer == nil {
		return false
	}
	resp, err := peer.ForwardSchedule(r.Context(), body, r.URL.RawQuery)
	if err != nil {
		// owner down mid-request: degrade to a local solve. The local
		// pipeline write-through keeps the verdict durable here and
		// anti-entropy carries it to the owner when it returns.
		d.svc.Metrics().ForwardFallbacks.Add(1)
		return false
	}
	d.svc.Metrics().Forwards.Add(1)
	relay(w, resp)
	return true
}

// forwardJob proxies GET /job/<id> for a job this node does not hold
// to the id's shard owner. The caller tried the local queue first —
// local knowledge always wins, because the job may have been enqueued
// here by the owner-down fallback.
func (d *Daemon) forwardJob(w http.ResponseWriter, r *http.Request, id string) bool {
	if d.cl == nil || !validFingerprintShape(id) {
		return false
	}
	peer := d.owner(r, id)
	if peer == nil {
		return false
	}
	resp, err := peer.ForwardJob(r.Context(), id, r.URL.RawQuery)
	if err != nil {
		d.svc.Metrics().ForwardFallbacks.Add(1)
		return false
	}
	d.svc.Metrics().Forwards.Add(1)
	relay(w, resp)
	return true
}

// validFingerprintShape checks the 64-lowercase-hex job-ID shape
// before routing on it — a garbage id is answered locally (404), not
// bounced to a peer.
func validFingerprintShape(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleManifest serves this node's store manifest for anti-entropy
// sync: per-bucket record counts and fingerprint-set digests.
func (d *Daemon) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/manifest", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(cluster.ManifestDoc{
		Node:        d.cl.NodeID,
		Buckets:     d.cl.Store.Manifest(),
		MerkleDepth: store.MerkleDepth,
	})
}

// handleDigests serves the Merkle narrowing step
// (GET /cluster/digests/<prefix>?depth=D[&tier=v|m]): the non-empty
// prefix nodes at depth D under <prefix>, with counts and digests for
// the requested tiers. Same trust model as the manifest: digests only
// decide what a peer pulls; every pulled byte is re-validated on
// import.
func (d *Daemon) handleDigests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/digests/<prefix>", http.StatusMethodNotAllowed)
		return
	}
	prefix := strings.TrimPrefix(r.URL.Path, "/cluster/digests/")
	depth := len(prefix) + 1
	if v := r.URL.Query().Get("depth"); v != "" {
		var err error
		if depth, err = strconv.Atoi(v); err != nil {
			http.Error(w, "depth must be an integer", http.StatusBadRequest)
			return
		}
	}
	withVerdict, withMemo := true, true
	switch r.URL.Query().Get("tier") {
	case "":
	case "v":
		withMemo = false
	case "m":
		withVerdict = false
	default:
		http.Error(w, "tier must be v or m", http.StatusBadRequest)
		return
	}
	ds, err := d.cl.Store.Digests(prefix, depth, withVerdict, withMemo)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ds)
}

// handleLeaf serves one Merkle leaf's fingerprint set
// (GET /cluster/leaf/<prefix>) — the set a peer diffs locally to
// decide which records to fetch.
func (d *Daemon) handleLeaf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/leaf/<prefix>", http.StatusMethodNotAllowed)
		return
	}
	fps, err := d.cl.Store.LeafFingerprints(strings.TrimPrefix(r.URL.Path, "/cluster/leaf/"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if fps == nil {
		fps = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fps)
}

// maxFetchBody bounds a /cluster/fetch request body — a full
// fetch-batch of fingerprints is ~34 KB; anything near the cap is a
// misbehaving peer.
const maxFetchBody = 1 << 20

// handleFetch serves the delta pull (POST /cluster/fetch with a JSON
// fingerprint array): exactly the requested records, CRC-framed.
// Unknown fingerprints are skipped — the peer's digest view may be a
// round stale.
func (d *Daemon) handleFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /cluster/fetch", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFetchBody+1))
	if err != nil || len(body) > maxFetchBody {
		http.Error(w, "request body unreadable or too large", http.StatusBadRequest)
		return
	}
	var fps []string
	if err := json.Unmarshal(body, &fps); err != nil {
		http.Error(w, "body must be a JSON fingerprint array", http.StatusBadRequest)
		return
	}
	seg, n, err := d.cl.Store.ExportRecords(fps)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rtm-Records", strconv.Itoa(n))
	w.Write(seg)
}

// handleMemoLeaf serves one Merkle leaf of the memo tier
// (GET /cluster/memoleaf/<prefix>) as a sealed memo segment — memo
// deltas are whole divergent leaves, merged convergently on import.
func (d *Daemon) handleMemoLeaf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/memoleaf/<prefix>", http.StatusMethodNotAllowed)
		return
	}
	seg, n, err := d.cl.Store.ExportMemoPrefix(strings.TrimPrefix(r.URL.Path, "/cluster/memoleaf/"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rtm-Records", strconv.Itoa(n))
	w.Write(seg)
}

// handleSegment serves one sealed store segment
// (GET /cluster/segment/<bucket>): the bucket's records, sorted and
// CRC-framed — the unit of replication. The puller validates every
// frame on import, so this endpoint needs no trust from its peers and
// extends none.
func (d *Daemon) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/segment/<bucket>", http.StatusMethodNotAllowed)
		return
	}
	b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
	if err != nil || b < 0 || b >= store.ManifestBuckets {
		http.Error(w, fmt.Sprintf("bucket must be an integer in [0,%d)", store.ManifestBuckets), http.StatusBadRequest)
		return
	}
	seg, n, err := d.cl.Store.ExportBucket(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rtm-Records", strconv.Itoa(n))
	w.Write(seg)
}

// handleMemoSegment serves one sealed memo segment
// (GET /cluster/memoseg/<bucket>): the bucket's refutation-cache
// records, sorted by memo key and CRC-framed. Same trust model as
// handleSegment — the puller's import validates every frame, and a
// seeded signature can only ever match by exact bytes.
func (d *Daemon) handleMemoSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET /cluster/memoseg/<bucket>", http.StatusMethodNotAllowed)
		return
	}
	b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/memoseg/"))
	if err != nil || b < 0 || b >= store.ManifestBuckets {
		http.Error(w, fmt.Sprintf("bucket must be an integer in [0,%d)", store.ManifestBuckets), http.StatusBadRequest)
		return
	}
	seg, n, err := d.cl.Store.ExportMemoBucket(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rtm-Records", strconv.Itoa(n))
	w.Write(seg)
}
