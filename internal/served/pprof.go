package served

import (
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// StartPprof serves net/http/pprof on a loopback-only port with mutex
// and block profiling enabled — diagnostic surface for the sharded
// hot path, never exposed on the service address.
func StartPprof(port int) {
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(int(time.Millisecond)) // sample blocking ≳1ms on average
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	go func() {
		log.Printf("rtserved: pprof on http://%s/debug/pprof/ (loopback only)", addr)
		log.Printf("rtserved: pprof server: %v", http.ListenAndServe(addr, pprofMux()))
	}()
}

// pprofMux registers the net/http/pprof handlers on a dedicated mux
// (the default mux is never used, so the service address cannot leak
// profiling endpoints).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
