package distexec

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/multiproc"
	"rtm/internal/sched"
)

// twoProcModel: a(1)@P0 -> b(1)@P1 with one periodic constraint.
func twoProcModel() (*core.Model, *multiproc.Deployment) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.Comm.AddPath("a", "b")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("a", "b"),
		Period: 8, Deadline: 8, Kind: core.Periodic,
	})
	busModel := core.NewModel()
	busModel.Comm.AddElement(multiproc.MsgElem("a->b"), 1)
	busModel.AddConstraint(&core.Constraint{
		Name: "C/a->b", Task: core.ChainTask(multiproc.MsgElem("a->b")),
		Period: 8, Deadline: 4, Kind: core.Periodic,
	})
	dep := &multiproc.Deployment{
		Assignment: multiproc.Assignment{"a": 0, "b": 1},
		ProcSchedules: []*sched.Schedule{
			sched.New("a", sched.Idle, sched.Idle, sched.Idle),
			sched.New(sched.Idle, sched.Idle, "b", sched.Idle),
		},
		Bus:      sched.New(sched.Idle, multiproc.MsgElem("a->b"), sched.Idle, sched.Idle),
		BusModel: busModel,
	}
	return m, dep
}

func TestDistributedDataFlow(t *testing.T) {
	m, dep := twoProcModel()
	rec, err := Run(m, dep, 32)
	if err != nil {
		t.Fatal(err)
	}
	// a completes at 1, bus carries the message during slot [1,2),
	// delivering at 2, b executes [2,3) reading seq 0.
	bs := rec.Executions["b"]
	if len(bs) == 0 {
		t.Fatal("b never executed")
	}
	if bs[0].Inputs["a"] != 0 {
		t.Fatalf("first b read seq %d, want 0", bs[0].Inputs["a"])
	}
	// second cycle: a@8 completes 9, bus delivers 10, b@10 reads seq 1
	if len(bs) < 2 || bs[1].Inputs["a"] != 1 {
		t.Fatalf("second b inputs = %+v", bs)
	}
	if len(rec.BusLog) < 2 {
		t.Fatalf("bus log = %v", rec.BusLog)
	}
}

func TestDistributedInvocationsMet(t *testing.T) {
	m, dep := twoProcModel()
	rec, err := Run(m, dep, 40)
	if err != nil {
		t.Fatal(err)
	}
	outs := CheckInvocations(m, dep, rec, []Invocation{
		{Constraint: "C", Time: 0},
		{Constraint: "C", Time: 8},
	})
	for _, o := range outs {
		if !o.Met || !o.TransmissionOK {
			t.Fatalf("outcome = %+v", o)
		}
	}
	// invocation at 0: a finishes 1, b (fresh data arrives at 2) runs
	// [2,3) -> completed 3
	if outs[0].Completed != 3 {
		t.Fatalf("completed = %d, want 3", outs[0].Completed)
	}
}

func TestWithoutBusDataNeverArrives(t *testing.T) {
	m, dep := twoProcModel()
	dep.Bus = nil
	dep.BusModel = nil
	rec, err := Run(m, dep, 32)
	if err != nil {
		t.Fatal(err)
	}
	// b executes but always with stale (absent) inputs
	for _, ex := range rec.Executions["b"] {
		if ex.Inputs["a"] != -1 {
			t.Fatalf("b received data without a bus: %+v", ex)
		}
	}
	outs := CheckInvocations(m, dep, rec, []Invocation{{Constraint: "C", Time: 0}})
	if outs[0].Completed != -1 && outs[0].TransmissionOK {
		t.Fatalf("transmission check should fail without a bus: %+v", outs[0])
	}
}

func TestStaleRemoteDataDelaysWitness(t *testing.T) {
	// bus delivers late: b's early executions see stale data, the
	// witness picks a later b.
	m, dep := twoProcModel()
	dep.Bus = sched.New(sched.Idle, sched.Idle, sched.Idle, multiproc.MsgElem("a->b"))
	// b runs right after a (slot 2) — before the delivery at 4 — and
	// again at slot 6 of an 8-cycle.
	dep.ProcSchedules[1] = sched.New(sched.Idle, sched.Idle, "b", sched.Idle,
		sched.Idle, sched.Idle, "b", sched.Idle)
	dep.ProcSchedules[0] = sched.New("a", sched.Idle, sched.Idle, sched.Idle,
		sched.Idle, sched.Idle, sched.Idle, sched.Idle)
	rec, err := Run(m, dep, 64)
	if err != nil {
		t.Fatal(err)
	}
	outs := CheckInvocations(m, dep, rec, []Invocation{{Constraint: "C", Time: 0}})
	if outs[0].Completed != 7 {
		t.Fatalf("witness should be the post-delivery b at [6,7): %+v", outs[0])
	}
	if !outs[0].TransmissionOK {
		t.Fatalf("transmission should verify: %+v", outs[0])
	}
}

func TestEndToEndSynthesizedDeployment(t *testing.T) {
	p := core.DefaultExampleParams()
	p.PX, p.PY, p.DZ = 40, 80, 60
	m := core.ExampleSystem(p)
	dep, err := multiproc.Synthesize(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 4 * m.Hyperperiod()
	rec, err := Run(m, dep, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var invs []Invocation
	for _, c := range m.Periodic() {
		for t0 := 0; t0+c.Deadline < horizon-c.Period; t0 += c.Period {
			invs = append(invs, Invocation{Constraint: c.Name, Time: t0})
		}
	}
	outs := CheckInvocations(m, dep, rec, invs)
	misses, stale := 0, 0
	for _, o := range outs {
		if !o.Met {
			misses++
		}
		if o.Completed >= 0 && !o.TransmissionOK {
			stale++
		}
	}
	if stale > 0 {
		t.Fatalf("%d invocations used stale cross-processor data", stale)
	}
	// The conservative per-processor deadline split plus bus deadline
	// guarantees end-to-end deadlines for invocations at schedule
	// phase 0; report any misses as failures.
	if misses > 0 {
		t.Fatalf("%d end-to-end deadline misses out of %d", misses, len(outs))
	}
}

func TestRunBadDeployment(t *testing.T) {
	m, dep := twoProcModel()
	if _, err := Run(m, nil, 8); err == nil {
		t.Fatal("nil deployment accepted")
	}
	dep.ProcSchedules[0] = sched.New("b") // b is assigned to P1
	if _, err := Run(m, dep, 8); err == nil {
		t.Fatal("misassigned schedule accepted")
	}
}
