// Package distexec executes a multiprocessor deployment end to end:
// every processor runs its own static schedule, the TDMA bus runs the
// message schedule, and data values move between processors only when
// the bus carries the corresponding message. This realizes condition
// (3) of the paper's execution semantics — "in the case where the
// functional elements are physically distributed ... an execution of
// C must include the transmission of the latest output of u to v
// before the corresponding instance of v is executed" — and checks it
// on recorded runs rather than assuming it.
package distexec

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/multiproc"
	"rtm/internal/sched"
)

// Event is one recorded occurrence on the distributed timeline.
type Event struct {
	Time int
	Proc int // processor index, or -1 for the bus
	Kind string
	Elem string
	Seq  int
}

// Execution mirrors exec.Execution with processor attribution.
type Execution struct {
	Elem   string
	Proc   int
	Start  int
	Finish int
	// Inputs captures, per producing element, the sequence number of
	// the value visible locally when the execution started (-1 when
	// none had arrived yet).
	Inputs map[string]int
	Seq    int
}

// Record is the outcome of a distributed run.
type Record struct {
	Horizon    int
	Executions map[string][]Execution // per element, start order
	BusLog     []Event                // message transmissions
	Events     []Event                // all events, time order
}

// value on a channel: producer sequence number (values themselves are
// provenance-tracked like the exec VM).
type value struct {
	seq  int
	prod int // production (or delivery) time
	ok   bool
}

// Run executes a deployment for the given horizon. Element locations
// come from dep.Assignment; each processor's schedule drives local
// executions; an output destined to a local consumer is delivered
// instantly, while an output destined to a remote consumer waits for
// the bus to transmit the corresponding message element (one bus
// execution delivers the latest pending value of its edge).
func Run(m *core.Model, dep *multiproc.Deployment, horizon int) (*Record, error) {
	if dep == nil || dep.Assignment == nil {
		return nil, fmt.Errorf("distexec: nil deployment")
	}
	nproc := len(dep.ProcSchedules)
	rec := &Record{Horizon: horizon, Executions: map[string][]Execution{}}

	// per-consumer-side channel state: latest delivered value per edge
	delivered := map[string]value{} // key "u->v"
	// pending values sitting at the producer, awaiting the bus
	pending := map[string]value{} // key "u->v"

	type inflight struct {
		start  int
		done   int
		inputs map[string]int
	}
	current := map[string]*inflight{}
	seq := map[string]int{}

	deliverLocal := func(elem string, t int) {
		s := seq[elem]
		for _, succ := range m.Comm.G.Succ(elem) {
			key := elem + "->" + succ
			if dep.Assignment[succ] == dep.Assignment[elem] {
				delivered[key] = value{seq: s, prod: t, ok: true}
			} else {
				pending[key] = value{seq: s, prod: t, ok: true}
			}
		}
	}

	for t := 0; t < horizon; t++ {
		// bus slot first: deliveries at time t are visible to
		// executions starting at t
		if dep.Bus != nil && dep.Bus.Len() > 0 {
			busElem := dep.Bus.At(t)
			if busElem != sched.Idle {
				w := dep.BusModel.Comm.WeightOf(busElem)
				fl := current[busElem]
				if fl == nil {
					fl = &inflight{start: t}
					current[busElem] = fl
				}
				fl.done++
				if fl.done >= w {
					edge := busElem[len("msg:"):]
					if v, ok := pending[edge]; ok {
						delivered[edge] = value{seq: v.seq, prod: t + 1, ok: true}
						delete(pending, edge)
						rec.BusLog = append(rec.BusLog, Event{
							Time: t + 1, Proc: -1, Kind: "deliver", Elem: edge, Seq: v.seq,
						})
					}
					current[busElem] = nil
				}
			}
		}
		// processor slots
		for p := 0; p < nproc; p++ {
			s := dep.ProcSchedules[p]
			if s == nil || s.Len() == 0 {
				continue
			}
			elem := s.At(t)
			if elem == sched.Idle {
				continue
			}
			if dep.Assignment[elem] != p {
				return nil, fmt.Errorf("distexec: processor %d schedules %q assigned to %d",
					p, elem, dep.Assignment[elem])
			}
			w := m.Comm.WeightOf(elem)
			if w <= 0 {
				continue
			}
			fl := current[elem]
			if fl == nil {
				inputs := map[string]int{}
				for _, pred := range m.Comm.G.Pred(elem) {
					key := pred + "->" + elem
					if v := delivered[key]; v.ok {
						inputs[pred] = v.seq
					} else {
						inputs[pred] = -1
					}
				}
				fl = &inflight{start: t, inputs: inputs}
				current[elem] = fl
			}
			fl.done++
			if fl.done == w {
				finish := t + 1
				rec.Executions[elem] = append(rec.Executions[elem], Execution{
					Elem: elem, Proc: p, Start: fl.start, Finish: finish,
					Inputs: fl.inputs, Seq: seq[elem],
				})
				rec.Events = append(rec.Events, Event{
					Time: finish, Proc: p, Kind: "complete", Elem: elem, Seq: seq[elem],
				})
				deliverLocal(elem, finish)
				seq[elem]++
				current[elem] = nil
			}
		}
	}
	sort.SliceStable(rec.Events, func(i, j int) bool { return rec.Events[i].Time < rec.Events[j].Time })
	return rec, nil
}

// Outcome reports the end-to-end service of one invocation.
type Outcome struct {
	Constraint string
	Time       int
	Completed  int // -1 when no witness found in the horizon
	Met        bool
	// TransmissionOK reports that, for every cross-processor task
	// edge, the consumer instance saw a value at least as fresh as
	// the chosen producer instance.
	TransmissionOK bool
}

// CheckInvocations finds witnesses for invocations against the
// distributed record, greedy in topological order, requiring for each
// task edge that the consumer started after the producer finished and
// — when they live on different processors — read a sequence number
// at least the producer instance's.
func CheckInvocations(m *core.Model, dep *multiproc.Deployment, rec *Record, invs []Invocation) []Outcome {
	out := make([]Outcome, 0, len(invs))
	for _, inv := range invs {
		c := m.ConstraintByName(inv.Constraint)
		o := Outcome{Constraint: inv.Constraint, Time: inv.Time, Completed: -1}
		if c == nil {
			out = append(out, o)
			continue
		}
		witness, completed := findWitness(m, rec, c, inv.Time)
		if witness == nil {
			out = append(out, o)
			continue
		}
		o.Completed = completed
		o.Met = completed <= inv.Time+c.Deadline
		o.TransmissionOK = checkTransmission(m, dep, c, witness)
		out = append(out, o)
	}
	return out
}

// Invocation is one constraint arrival.
type Invocation struct {
	Constraint string
	Time       int
}

func findWitness(m *core.Model, rec *Record, c *core.Constraint, from int) (map[string]Execution, int) {
	order, err := c.Task.G.TopoSort()
	if err != nil {
		return nil, -1
	}
	witness := map[string]Execution{}
	used := map[string]int{}
	completed := from
	for _, node := range order {
		elem := c.Task.ElementOf(node)
		ready := from
		for _, p := range c.Task.G.Pred(node) {
			if w, ok := witness[p]; ok && w.Finish > ready {
				ready = w.Finish
			}
		}
		if m.Comm.WeightOf(elem) == 0 {
			witness[node] = Execution{Elem: elem, Start: ready, Finish: ready}
			continue
		}
		execs := rec.Executions[elem]
		idx := sort.Search(len(execs), func(i int) bool { return execs[i].Start >= ready })
		if idx < used[elem] {
			idx = used[elem]
		}
		// advance past instances whose inputs predate the required
		// producers (remote data may not have arrived yet)
		for idx < len(execs) && !inputsFresh(m, c, node, witness, execs[idx]) {
			idx++
		}
		if idx >= len(execs) {
			return nil, -1
		}
		witness[node] = execs[idx]
		used[elem] = idx + 1
		if execs[idx].Finish > completed {
			completed = execs[idx].Finish
		}
	}
	return witness, completed
}

// inputsFresh reports whether candidate's captured input sequence
// numbers cover every already-chosen producer instance.
func inputsFresh(m *core.Model, c *core.Constraint, node string, witness map[string]Execution, cand Execution) bool {
	for _, p := range c.Task.G.Pred(node) {
		pw, ok := witness[p]
		if !ok {
			continue
		}
		if pw.Elem == cand.Elem {
			continue
		}
		got, ok := cand.Inputs[pw.Elem]
		if !ok {
			continue // not a communication-graph input
		}
		if got < pw.Seq {
			return false
		}
	}
	return true
}

func checkTransmission(m *core.Model, dep *multiproc.Deployment, c *core.Constraint, witness map[string]Execution) bool {
	for _, e := range c.Task.G.Edges() {
		pu, ok1 := witness[e.From]
		pv, ok2 := witness[e.To]
		if !ok1 || !ok2 {
			return false
		}
		if pv.Start < pu.Finish {
			return false
		}
		if pu.Elem == pv.Elem || pv.Inputs == nil {
			continue
		}
		got, ok := pv.Inputs[pu.Elem]
		if !ok {
			return false
		}
		if got < pu.Seq {
			return false
		}
	}
	return true
}
