// Package pipeline implements the paper's software pipelining: a
// functional element of computation time w is decomposed into a chain
// of k sub-functions of equal computation time, shrinking the unit of
// non-preemptible work. Because the graph-based model makes all data
// dependencies explicit, the decomposition is purely mechanical: the
// element is replaced by a chain in the communication graph and every
// task-graph node executing it is replaced by the corresponding chain
// of steps.
package pipeline

import (
	"fmt"

	"rtm/internal/core"
)

// StageName returns the name of stage i (0-based) of the
// decomposition of elem.
func StageName(elem string, i int) string {
	return fmt.Sprintf("%s#%d", elem, i)
}

// Decompose splits element elem of model m into k equal-time
// sub-functions. The element's weight must be divisible by k. It
// returns a new model; m is unchanged.
//
// In the communication graph, elem is replaced by the chain
// elem#0 -> elem#1 -> … -> elem#{k-1}; incoming paths are re-rooted
// at elem#0 and outgoing paths leave elem#{k-1}. In every task graph,
// a node executing elem becomes the corresponding chain of steps with
// incoming precedences entering the first stage and outgoing ones
// leaving the last.
func Decompose(m *core.Model, elem string, k int) (*core.Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pipeline: stage count %d must be positive", k)
	}
	w, ok := m.Comm.Weight[elem]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown element %q", elem)
	}
	if w%k != 0 {
		return nil, fmt.Errorf("pipeline: weight %d of %q not divisible by %d stages", w, elem, k)
	}
	if k == 1 {
		return m.Clone(), nil
	}
	stageW := w / k

	out := core.NewModel()
	// communication graph: copy every other element, expand elem
	for _, e := range m.Comm.Elements() {
		if e == elem {
			for i := 0; i < k; i++ {
				out.Comm.AddElement(StageName(elem, i), stageW)
			}
		} else {
			out.Comm.AddElement(e, m.Comm.WeightOf(e))
		}
	}
	for i := 0; i+1 < k; i++ {
		out.Comm.AddPath(StageName(elem, i), StageName(elem, i+1))
	}
	mapFrom := func(e string) string {
		if e == elem {
			return StageName(elem, k-1) // edges leave the last stage
		}
		return e
	}
	mapTo := func(e string) string {
		if e == elem {
			return StageName(elem, 0) // edges enter the first stage
		}
		return e
	}
	for _, edge := range m.Comm.G.Edges() {
		out.Comm.AddPath(mapFrom(edge.From), mapTo(edge.To))
	}

	// task graphs
	for _, c := range m.Constraints {
		nc := &core.Constraint{
			Name:     c.Name,
			Period:   c.Period,
			Deadline: c.Deadline,
			Kind:     c.Kind,
			Task:     core.NewTaskGraph(),
		}
		for _, node := range c.Task.Nodes() {
			e := c.Task.ElementOf(node)
			if e == elem {
				for i := 0; i < k; i++ {
					nc.Task.AddStep(StageName(node, i), StageName(elem, i))
					if i > 0 {
						nc.Task.AddPrec(StageName(node, i-1), StageName(node, i))
					}
				}
			} else {
				nc.Task.AddStep(node, e)
			}
		}
		for _, edge := range c.Task.G.Edges() {
			from, to := edge.From, edge.To
			if c.Task.ElementOf(from) == elem {
				from = StageName(from, k-1)
			}
			if c.Task.ElementOf(to) == elem {
				to = StageName(to, 0)
			}
			nc.Task.AddPrec(from, to)
		}
		out.AddConstraint(nc)
	}
	return out, nil
}

// DecomposeAllUnit pipelines every element with weight > 1 into unit
// sub-functions — hypothesis (iii) of the paper's Theorem 3 in its
// strongest form.
func DecomposeAllUnit(m *core.Model) (*core.Model, error) {
	out := m.Clone()
	for _, e := range m.Comm.Elements() {
		w := m.Comm.WeightOf(e)
		if w > 1 {
			var err error
			out, err = Decompose(out, e, w)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MaxStageWeight returns the largest element weight in the model —
// the size of the longest critical section under the naive monitor
// synthesis, which pipelining aims to shrink.
func MaxStageWeight(m *core.Model) int {
	max := 0
	for _, e := range m.Comm.Elements() {
		if w := m.Comm.WeightOf(e); w > max {
			max = w
		}
	}
	return max
}
