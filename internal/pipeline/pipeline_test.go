package pipeline

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

func twoElemModel(wa, wb int) *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("a", wa)
	m.Comm.AddElement("b", wb)
	m.Comm.AddPath("a", "b")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("a", "b"),
		Period: 20, Deadline: 20, Kind: core.Asynchronous,
	})
	return m
}

func TestDecomposeBasic(t *testing.T) {
	m := twoElemModel(4, 1)
	out, err := Decompose(m, "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("decomposed model invalid: %v", err)
	}
	if out.Comm.G.HasNode("a") {
		t.Fatal("original element still present")
	}
	if out.Comm.WeightOf(StageName("a", 0)) != 2 || out.Comm.WeightOf(StageName("a", 1)) != 2 {
		t.Fatal("stage weights wrong")
	}
	if !out.Comm.G.HasEdge(StageName("a", 0), StageName("a", 1)) {
		t.Fatal("stage chain edge missing")
	}
	if !out.Comm.G.HasEdge(StageName("a", 1), "b") {
		t.Fatal("outgoing path not re-rooted at last stage")
	}
	// computation time preserved
	c := out.Constraints[0]
	if got := c.ComputationTime(out.Comm); got != 5 {
		t.Fatalf("computation time = %d, want 5", got)
	}
}

func TestDecomposePreservesPrecedence(t *testing.T) {
	m := twoElemModel(2, 1)
	out, err := Decompose(m, "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	tg := out.Constraints[0].Task
	// a#0 -> a#1 -> b as task precedences
	if !tg.G.HasEdge(StageName("a", 0), StageName("a", 1)) {
		t.Fatal("intra-stage precedence missing")
	}
	if !tg.G.HasEdge(StageName("a", 1), "b") {
		t.Fatal("stage-to-b precedence missing")
	}
}

func TestDecomposeIncomingEdges(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("pre", 1)
	m.Comm.AddElement("x", 2)
	m.Comm.AddPath("pre", "x")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("pre", "x"),
		Period: 10, Deadline: 10, Kind: core.Asynchronous,
	})
	out, err := Decompose(m, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Comm.G.HasEdge("pre", StageName("x", 0)) {
		t.Fatal("incoming path should enter first stage")
	}
	if out.Comm.G.HasEdge("pre", StageName("x", 1)) {
		t.Fatal("incoming path should not enter last stage")
	}
}

func TestDecomposeErrors(t *testing.T) {
	m := twoElemModel(3, 1)
	if _, err := Decompose(m, "a", 2); err == nil {
		t.Fatal("indivisible weight accepted")
	}
	if _, err := Decompose(m, "nope", 2); err == nil {
		t.Fatal("unknown element accepted")
	}
	if _, err := Decompose(m, "a", 0); err == nil {
		t.Fatal("zero stages accepted")
	}
}

func TestDecomposeK1IsClone(t *testing.T) {
	m := twoElemModel(3, 1)
	out, err := Decompose(m, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Comm.G.HasNode("a") || out.Comm.WeightOf("a") != 3 {
		t.Fatal("k=1 should preserve the element")
	}
	out.Comm.AddElement("new", 1)
	if m.Comm.G.HasNode("new") {
		t.Fatal("k=1 returned aliased model")
	}
}

func TestDecomposeAllUnit(t *testing.T) {
	m := twoElemModel(4, 3)
	out, err := DecomposeAllUnit(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if MaxStageWeight(out) != 1 {
		t.Fatalf("MaxStageWeight = %d, want 1", MaxStageWeight(out))
	}
	if got := out.Constraints[0].ComputationTime(out.Comm); got != 7 {
		t.Fatalf("computation time = %d, want 7", got)
	}
}

func TestDecomposedScheduleEquivalence(t *testing.T) {
	// A schedule that meets the decomposed constraint corresponds to
	// meeting the original: verify by checking latencies directly.
	m := twoElemModel(2, 1)
	out, err := Decompose(m, "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(StageName("a", 0), StageName("a", 1), "b", sched.Idle)
	rep := sched.Check(out, s)
	if !rep.Feasible {
		t.Fatalf("pipelined schedule infeasible:\n%s", rep)
	}
	// the un-pipelined equivalent with a as one weight-2 execution
	s2 := sched.New("a", "a", "b", sched.Idle)
	if !sched.Feasible(m, s2) {
		t.Fatal("original schedule infeasible")
	}
}

func TestRepeatedElementDecompose(t *testing.T) {
	// task graph executing the same element twice
	m := core.NewModel()
	m.Comm.AddElement("f", 2)
	m.Comm.AddPath("f", "f")
	task := core.NewTaskGraph()
	task.AddStep("f1", "f")
	task.AddStep("f2", "f")
	task.AddPrec("f1", "f2")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: task, Period: 20, Deadline: 20, Kind: core.Asynchronous,
	})
	out, err := Decompose(m, "f", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	tg := out.Constraints[0].Task
	if tg.G.NumNodes() != 4 {
		t.Fatalf("task nodes = %d, want 4", tg.G.NumNodes())
	}
	// f1#1 -> f2#0 precedence must exist (original edge f1->f2)
	if !tg.G.HasEdge(StageName("f1", 1), StageName("f2", 0)) {
		t.Fatalf("cross-instance precedence missing: %s", tg.G)
	}
}

func TestMaxStageWeight(t *testing.T) {
	m := twoElemModel(4, 7)
	if MaxStageWeight(m) != 7 {
		t.Fatal("MaxStageWeight wrong")
	}
}
