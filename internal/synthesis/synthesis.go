// Package synthesis implements the paper's program-synthesis step: a
// validated graph-based model is compiled into an executable system
// description. Each timing constraint becomes a process whose body is
// a straight-line program (a topological sort of its task graph);
// every functional element occurring in two or more constraints is
// protected by a monitor; and the data paths of the communication
// graph become typed channels between operations.
//
// The output is an intermediate representation (Program) that the
// exec package can run on a simulated processor, plus a deterministic
// pseudo-source rendering for human inspection.
package synthesis

import (
	"fmt"
	"sort"
	"strings"

	"rtm/internal/core"
)

// Op is one operation of a process body: execute a functional element
// for its full computation time, reading the latest values on its
// incoming data paths and writing its outputs.
type Op struct {
	Elem    string   // functional element executed
	Weight  int      // computation time
	Reads   []string // data paths read (edge names "u->v")
	Writes  []string // data paths written
	Monitor string   // monitor guarding the element, if shared ("" = none)
}

// Process is a synthesized process: the straight-line body for one
// timing constraint.
type Process struct {
	Name     string
	Kind     core.Kind
	Period   int
	Deadline int
	Body     []Op
}

// ComputationTime returns the sum of the body's weights.
func (p *Process) ComputationTime() int {
	total := 0
	for _, op := range p.Body {
		total += op.Weight
	}
	return total
}

// Monitor is a mutual-exclusion region guarding one shared element.
type Monitor struct {
	Name string
	Elem string
	// Users lists the processes that enter the monitor.
	Users []string
	// SectionLen is the critical-section length (the element's
	// weight).
	SectionLen int
}

// Program is the full synthesized system.
type Program struct {
	Processes []*Process
	Monitors  []*Monitor
	// Channels lists every data path used by some process, named
	// "u->v".
	Channels []string
	Source   *core.Model
}

// MonitorFor returns the monitor guarding elem, or nil.
func (pr *Program) MonitorFor(elem string) *Monitor {
	for _, m := range pr.Monitors {
		if m.Elem == elem {
			return m
		}
	}
	return nil
}

// ProcessByName returns the named process, or nil.
func (pr *Program) ProcessByName(name string) *Process {
	for _, p := range pr.Processes {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// edgeName renders a data path deterministically.
func edgeName(u, v string) string { return u + "->" + v }

// Synthesize compiles a model into a Program. The model must
// validate.
func Synthesize(m *core.Model) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shared := map[string]bool{}
	for _, e := range m.SharedElements() {
		shared[e] = true
	}
	pr := &Program{Source: m}
	monitors := map[string]*Monitor{}
	channels := map[string]bool{}

	for _, c := range m.Constraints {
		order, err := c.Task.G.TopoSort()
		if err != nil {
			return nil, fmt.Errorf("synthesis: constraint %q: %w", c.Name, err)
		}
		p := &Process{
			Name:     c.Name,
			Kind:     c.Kind,
			Period:   c.Period,
			Deadline: c.Deadline,
		}
		for _, node := range order {
			elem := c.Task.ElementOf(node)
			op := Op{Elem: elem, Weight: m.Comm.WeightOf(elem)}
			for _, pred := range c.Task.G.Pred(node) {
				ch := edgeName(c.Task.ElementOf(pred), elem)
				op.Reads = append(op.Reads, ch)
				channels[ch] = true
			}
			for _, succ := range c.Task.G.Succ(node) {
				ch := edgeName(elem, c.Task.ElementOf(succ))
				op.Writes = append(op.Writes, ch)
				channels[ch] = true
			}
			if shared[elem] {
				monName := "mon_" + elem
				op.Monitor = monName
				mon, ok := monitors[monName]
				if !ok {
					mon = &Monitor{Name: monName, Elem: elem, SectionLen: m.Comm.WeightOf(elem)}
					monitors[monName] = mon
				}
				if !containsStr(mon.Users, c.Name) {
					mon.Users = append(mon.Users, c.Name)
				}
			}
			p.Body = append(p.Body, op)
		}
		pr.Processes = append(pr.Processes, p)
	}

	var monNames []string
	for n := range monitors {
		monNames = append(monNames, n)
	}
	sort.Strings(monNames)
	for _, n := range monNames {
		pr.Monitors = append(pr.Monitors, monitors[n])
	}
	for ch := range channels {
		pr.Channels = append(pr.Channels, ch)
	}
	sort.Strings(pr.Channels)
	return pr, nil
}

// Render emits a deterministic pseudo-source listing of the program,
// in the style of a very high level real-time language.
func (pr *Program) Render() string {
	var b strings.Builder
	b.WriteString("system {\n")
	for _, ch := range pr.Channels {
		fmt.Fprintf(&b, "  channel %q\n", ch)
	}
	for _, m := range pr.Monitors {
		fmt.Fprintf(&b, "  monitor %s guards %s (section %d) used by %s\n",
			m.Name, m.Elem, m.SectionLen, strings.Join(m.Users, ", "))
	}
	for _, p := range pr.Processes {
		fmt.Fprintf(&b, "  process %s %s(period=%d, deadline=%d) {\n",
			p.Name, p.Kind, p.Period, p.Deadline)
		for _, op := range p.Body {
			line := fmt.Sprintf("    exec %s /*%du*/", op.Elem, op.Weight)
			if len(op.Reads) > 0 {
				line += " reads " + strings.Join(op.Reads, ",")
			}
			if len(op.Writes) > 0 {
				line += " writes " + strings.Join(op.Writes, ",")
			}
			if op.Monitor != "" {
				line += " in " + op.Monitor
			}
			b.WriteString(line + "\n")
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
