package synthesis

import (
	"strings"
	"testing"

	"rtm/internal/core"
)

func TestSynthesizeExample(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	pr, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Processes) != 3 {
		t.Fatalf("processes = %d", len(pr.Processes))
	}
	x := pr.ProcessByName("X")
	if x == nil {
		t.Fatal("process X missing")
	}
	// body is a topological sort of fX -> fS -> fK
	if len(x.Body) != 3 || x.Body[0].Elem != "fX" || x.Body[1].Elem != "fS" || x.Body[2].Elem != "fK" {
		t.Fatalf("X body = %+v", x.Body)
	}
	if x.ComputationTime() != 8 {
		t.Fatalf("X computation time = %d", x.ComputationTime())
	}
	// fS and fK are shared -> two monitors
	if len(pr.Monitors) != 2 {
		t.Fatalf("monitors = %+v", pr.Monitors)
	}
	monS := pr.MonitorFor("fS")
	if monS == nil || monS.SectionLen != 4 {
		t.Fatalf("fS monitor = %+v", monS)
	}
	if len(monS.Users) != 3 { // X, Y and Z all run fS
		t.Fatalf("fS users = %v", monS.Users)
	}
	if pr.MonitorFor("fX") != nil {
		t.Fatal("unshared element got a monitor")
	}
	if pr.MonitorFor("nothing") != nil {
		t.Fatal("unknown element got a monitor")
	}
	if pr.ProcessByName("nope") != nil {
		t.Fatal("unknown process found")
	}
}

func TestSynthesizeChannels(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	pr, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"fX->fS": true, "fY->fS": true, "fZ->fS": true, "fS->fK": true}
	got := map[string]bool{}
	for _, ch := range pr.Channels {
		got[ch] = true
	}
	for ch := range want {
		if !got[ch] {
			t.Fatalf("channel %s missing from %v", ch, pr.Channels)
		}
	}
	// the fS op of X reads from fX and writes to fK
	x := pr.ProcessByName("X")
	fsOp := x.Body[1]
	if len(fsOp.Reads) != 1 || fsOp.Reads[0] != "fX->fS" {
		t.Fatalf("fS reads = %v", fsOp.Reads)
	}
	if len(fsOp.Writes) != 1 || fsOp.Writes[0] != "fS->fK" {
		t.Fatalf("fS writes = %v", fsOp.Writes)
	}
	if fsOp.Monitor != "mon_fS" {
		t.Fatalf("fS monitor = %q", fsOp.Monitor)
	}
}

func TestSynthesizeInvalidModel(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 3)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 2, Deadline: 2, Kind: core.Periodic, // w > d
	})
	if _, err := Synthesize(m); err == nil {
		t.Fatal("invalid model synthesized")
	}
}

func TestRenderDeterministic(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	pr, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	r1 := pr.Render()
	pr2, _ := Synthesize(m)
	if r1 != pr2.Render() {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{
		"process X periodic(period=20, deadline=20)",
		"monitor mon_fS guards fS (section 4)",
		"exec fS /*4u*/",
		"process Z asynchronous(period=100, deadline=30)",
		`channel "fS->fK"`,
	} {
		if !strings.Contains(r1, want) {
			t.Fatalf("render missing %q:\n%s", want, r1)
		}
	}
}

func TestSynthesizeNoSharedElements(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&core.Constraint{Name: "A", Task: core.ChainTask("a"), Period: 5, Deadline: 5, Kind: core.Periodic})
	m.AddConstraint(&core.Constraint{Name: "B", Task: core.ChainTask("b"), Period: 5, Deadline: 5, Kind: core.Periodic})
	pr, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Monitors) != 0 {
		t.Fatalf("monitors = %+v, want none", pr.Monitors)
	}
	for _, p := range pr.Processes {
		for _, op := range p.Body {
			if op.Monitor != "" {
				t.Fatalf("op %v has monitor", op)
			}
		}
	}
}
