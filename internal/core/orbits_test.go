package core

import (
	"fmt"
	"reflect"
	"testing"
)

// unitAsync builds a model with one weight-w element and one
// single-node asynchronous constraint (period = deadline = d) per
// entry.
func unitAsync(t *testing.T, entries ...[3]int) *Model {
	t.Helper()
	m := NewModel()
	for i, e := range entries {
		name := fmt.Sprintf("u%d", i)
		m.Comm.AddElement(name, e[0])
		m.AddConstraint(&Constraint{
			Name: "c" + name, Task: ChainTask(name),
			Period: e[1], Deadline: e[2], Kind: Asynchronous,
		})
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	return m
}

func TestOrbitsIdenticalElements(t *testing.T) {
	// three identical unit ops and one distinct: {u0,u1,u2} is one orbit
	m := unitAsync(t, [3]int{1, 6, 6}, [3]int{1, 6, 6}, [3]int{1, 6, 6}, [3]int{1, 2, 2})
	want := [][]string{{"u0", "u1", "u2"}}
	if got := m.Orbits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Orbits() = %v, want %v", got, want)
	}
}

func TestOrbitsDiscrimination(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
	}{
		{"different-weight", unitAsync(t, [3]int{1, 6, 6}, [3]int{2, 6, 6})},
		{"different-deadline", unitAsync(t, [3]int{1, 4, 4}, [3]int{1, 6, 6})},
	}
	// different kind: periodic vs asynchronous at the same (p, d)
	mk := NewModel()
	mk.Comm.AddElement("a", 1)
	mk.Comm.AddElement("b", 1)
	mk.AddConstraint(&Constraint{Name: "A", Task: ChainTask("a"), Period: 4, Deadline: 4, Kind: Periodic})
	mk.AddConstraint(&Constraint{Name: "B", Task: ChainTask("b"), Period: 4, Deadline: 4, Kind: Asynchronous})
	cases = append(cases, struct {
		name string
		m    *Model
	}{"different-kind", mk})

	for _, tc := range cases {
		if got := tc.m.Orbits(); got != nil {
			t.Errorf("%s: Orbits() = %v, want nil", tc.name, got)
		}
	}
}

func TestOrbitsChainPositions(t *testing.T) {
	// a and b sit at different positions of the same chain: swapping
	// them reverses the sequence, so they are not interchangeable even
	// though their weights match
	m := NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&Constraint{Name: "A", Task: ChainTask("a", "b"), Period: 4, Deadline: 4, Kind: Asynchronous})
	if got := m.Orbits(); got != nil {
		t.Fatalf("Orbits() = %v, want nil", got)
	}
}

func TestOrbitsParallelChainsConservative(t *testing.T) {
	// two identical disjoint chains (a,b) and (c,d): the model IS
	// invariant under the simultaneous swap (a c)(b d), but no single
	// transposition fixes it, so the conservative pairwise test
	// reports no orbits — soundness over completeness
	m := NewModel()
	for _, e := range []string{"a", "b", "c", "d"} {
		m.Comm.AddElement(e, 1)
	}
	m.AddConstraint(&Constraint{Name: "A", Task: ChainTask("a", "b"), Period: 8, Deadline: 8, Kind: Asynchronous})
	m.AddConstraint(&Constraint{Name: "B", Task: ChainTask("c", "d"), Period: 8, Deadline: 8, Kind: Asynchronous})
	if got := m.Orbits(); got != nil {
		t.Fatalf("Orbits() = %v, want nil", got)
	}
}

func TestOrbitsNonPathConservative(t *testing.T) {
	// a fork task graph touching the candidate pair blocks the orbit
	// (general DAG isomorphism is not attempted)
	m := NewModel()
	for _, e := range []string{"a", "b", "s"} {
		m.Comm.AddElement(e, 1)
	}
	fork := NewTaskGraph()
	fork.AddStep("s", "s")
	fork.AddStep("a", "a")
	fork.AddStep("b", "b")
	fork.AddPrec("s", "a")
	fork.AddPrec("s", "b")
	m.AddConstraint(&Constraint{Name: "F", Task: fork, Period: 6, Deadline: 6, Kind: Asynchronous})
	if got := m.Orbits(); got != nil {
		t.Fatalf("Orbits() = %v, want nil", got)
	}
}

func TestOrbitsSharedChainContext(t *testing.T) {
	// u1 and u2 are identical single ops AND appear symmetrically as
	// members of equal-shape chains with a shared head: (h,u1) and
	// (h,u2) swap onto each other, so the orbit survives
	m := NewModel()
	for _, e := range []string{"h", "u1", "u2"} {
		m.Comm.AddElement(e, 1)
	}
	m.AddConstraint(&Constraint{Name: "C1", Task: ChainTask("h", "u1"), Period: 8, Deadline: 8, Kind: Asynchronous})
	m.AddConstraint(&Constraint{Name: "C2", Task: ChainTask("h", "u2"), Period: 8, Deadline: 8, Kind: Asynchronous})
	want := [][]string{{"u1", "u2"}}
	if got := m.Orbits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Orbits() = %v, want %v", got, want)
	}
}

func TestOrbitsIgnoresUnusedElements(t *testing.T) {
	// elements with no constraint never appear in a schedule and are
	// excluded from orbit computation
	m := unitAsync(t, [3]int{1, 6, 6}, [3]int{1, 6, 6})
	m.Comm.AddElement("idle1", 1)
	m.Comm.AddElement("idle2", 1)
	want := [][]string{{"u0", "u1"}}
	if got := m.Orbits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Orbits() = %v, want %v", got, want)
	}
}
