package core

// RefCanonicalize exposes the vendored reference canonicalizer
// (canonical_reference_test.go) to external test packages, so the
// oracle-equality property test can drive it from the spec corpus and
// random workloads without an import cycle.
func RefCanonicalize(m *Model) *Canonical { return refCanonicalize(m) }
