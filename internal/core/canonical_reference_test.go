package core

// The seed's string-signature individualization–refinement
// canonicalizer, preserved verbatim as a test oracle: the
// allocation-lean Canonicalize must reproduce its Key, Order, and
// Fingerprint bit-for-bit on every model. Do not "improve" this file —
// its value is that it does not change.

import (
	"sort"
	"strconv"
	"strings"
)

// refCanonicalize computes the canonical form with the reference
// algorithm.
func refCanonicalize(m *Model) *Canonical {
	cz := newRefCanonizer(m)
	n := len(cz.elems)
	col := make([]int, n) // uniform initial coloring; refine splits it
	cz.search(col)
	c := &Canonical{Key: cz.bestKey, Order: make([]string, n), Index: make(map[string]int, n)}
	for e, r := range cz.bestOrder {
		c.Order[r] = cz.elems[e]
		c.Index[cz.elems[e]] = r
	}
	return c
}

// refCanonizer holds the index-form model and the search state.
type refCanonizer struct {
	m     *Model
	elems []string // base order (insertion order; never affects the result)
	succ  [][]int  // communication-graph adjacency, element indices
	pred  [][]int
	cons  []refCanonCons
	roles [][]refCanonRole // per element: its occurrences across all task graphs

	bestKey   string
	bestOrder []int // element base index -> canonical index
}

// refCanonCons is one constraint in index form.
type refCanonCons struct {
	kind     Kind
	period   int
	deadline int
	nodes    []refCanonNode
}

// refCanonNode is one task-graph node: the element it executes plus its
// predecessor/successor nodes (indices into the same nodes slice).
type refCanonNode struct {
	elem int // element base index, -1 when unknown
	pred []int
	succ []int
}

// refCanonRole locates one task node executing a given element.
type refCanonRole struct {
	cons, node int
}

func newRefCanonizer(m *Model) *refCanonizer {
	cz := &refCanonizer{m: m, elems: m.Comm.Elements()}
	idx := make(map[string]int, len(cz.elems))
	for i, e := range cz.elems {
		idx[e] = i
	}
	cz.succ = make([][]int, len(cz.elems))
	cz.pred = make([][]int, len(cz.elems))
	for i, e := range cz.elems {
		for _, s := range m.Comm.G.Succ(e) {
			cz.succ[i] = append(cz.succ[i], idx[s])
		}
		for _, p := range m.Comm.G.Pred(e) {
			cz.pred[i] = append(cz.pred[i], idx[p])
		}
	}
	cz.roles = make([][]refCanonRole, len(cz.elems))
	for ci, c := range m.Constraints {
		cc := refCanonCons{kind: c.Kind, period: c.Period, deadline: c.Deadline}
		nodes := c.Task.Nodes()
		nidx := make(map[string]int, len(nodes))
		for i, nd := range nodes {
			nidx[nd] = i
		}
		cc.nodes = make([]refCanonNode, len(nodes))
		for i, nd := range nodes {
			e, ok := idx[c.Task.ElementOf(nd)]
			if !ok {
				e = -1
			}
			cn := refCanonNode{elem: e}
			for _, p := range c.Task.G.Pred(nd) {
				cn.pred = append(cn.pred, nidx[p])
			}
			for _, s := range c.Task.G.Succ(nd) {
				cn.succ = append(cn.succ, nidx[s])
			}
			cc.nodes[i] = cn
			if e >= 0 {
				cz.roles[e] = append(cz.roles[e], refCanonRole{cons: ci, node: i})
			}
		}
		cz.cons = append(cz.cons, cc)
	}
	return cz
}

// search refines the coloring and, while non-singleton color classes
// remain, individualizes every member of the first one in turn,
// keeping the lexicographically least serialization reached.
func (cz *refCanonizer) search(col []int) {
	col = cz.refine(col)
	cell := refFirstNonSingleton(col)
	if cell < 0 {
		key, order := cz.serialize(col)
		if cz.bestOrder == nil || key < cz.bestKey {
			cz.bestKey, cz.bestOrder = key, order
		}
		return
	}
	for e := range col {
		if col[e] != cell {
			continue
		}
		next := make([]int, len(col))
		copy(next, col)
		next[e] = -1 // unique minimal color: e is individualized
		cz.search(next)
	}
}

// refine iterates color refinement to a fixed point: each round an
// element's new color is the rank of its signature — old color plus
// the color multisets of its communication neighbours and of its task
// contexts. The partition only ever splits, so a round that does not
// increase the number of colors is the fixed point.
func (cz *refCanonizer) refine(col []int) []int {
	for {
		sigs := make([]string, len(col))
		for e := range col {
			sigs[e] = cz.signature(col, e)
		}
		next := refRankStrings(sigs)
		if refDistinct(next) == refDistinct(col) {
			return next
		}
		col = next
	}
}

func (cz *refCanonizer) signature(col []int, e int) string {
	var b strings.Builder
	b.WriteString("c")
	b.WriteString(strconv.Itoa(col[e]))
	b.WriteString("|w")
	b.WriteString(strconv.Itoa(cz.m.Comm.WeightOf(cz.elems[e])))
	refWriteColorSet(&b, "|s", col, cz.succ[e])
	refWriteColorSet(&b, "|p", col, cz.pred[e])
	// task roles: one descriptor per occurrence of e in a task graph,
	// as a sorted multiset so constraint order cannot matter
	descs := make([]string, 0, len(cz.roles[e]))
	for _, r := range cz.roles[e] {
		c := &cz.cons[r.cons]
		nd := &c.nodes[r.node]
		var d strings.Builder
		d.WriteString("k")
		d.WriteString(strconv.Itoa(int(c.kind)))
		d.WriteString(",p")
		d.WriteString(strconv.Itoa(c.period))
		d.WriteString(",d")
		d.WriteString(strconv.Itoa(c.deadline))
		refWriteColorSet(&d, ",a", col, refNodeElems(c, nd.pred))
		refWriteColorSet(&d, ",b", col, refNodeElems(c, nd.succ))
		descs = append(descs, d.String())
	}
	sort.Strings(descs)
	b.WriteString("|t")
	b.WriteString(strings.Join(descs, ";"))
	return b.String()
}

// refNodeElems maps task-node indices to the element indices they execute.
func refNodeElems(c *refCanonCons, nodes []int) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = c.nodes[n].elem
	}
	return out
}

// refWriteColorSet appends the sorted multiset of colors of the given
// element indices (index -1 contributes a sentinel).
func refWriteColorSet(b *strings.Builder, tag string, col []int, elems []int) {
	cs := make([]int, len(elems))
	for i, e := range elems {
		if e < 0 {
			cs[i] = -2
		} else {
			cs[i] = col[e]
		}
	}
	sort.Ints(cs)
	b.WriteString(tag)
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
}

// serialize renders the model under a discrete coloring (every class a
// singleton): weights and communication edges in canonical element
// order, then the sorted multiset of constraint serializations, each
// with its task graph canonized under the now-fixed element labels.
func (cz *refCanonizer) serialize(col []int) (string, []int) {
	var b strings.Builder
	b.WriteString("n")
	b.WriteString(strconv.Itoa(len(col)))
	b.WriteString(";w")
	inv := make([]int, len(col)) // canonical index -> base index
	for e, r := range col {
		inv[r] = e
	}
	for r, e := range inv {
		if r > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(cz.m.Comm.WeightOf(cz.elems[e])))
	}
	var edges []string
	for e, ss := range cz.succ {
		for _, s := range ss {
			edges = append(edges, strconv.Itoa(col[e])+">"+strconv.Itoa(col[s]))
		}
	}
	sort.Strings(edges)
	b.WriteString(";a")
	b.WriteString(strings.Join(edges, ","))
	var cs []string
	for i := range cz.cons {
		c := &cz.cons[i]
		cs = append(cs, "k"+strconv.Itoa(int(c.kind))+
			";p"+strconv.Itoa(c.period)+
			";d"+strconv.Itoa(c.deadline)+
			";t"+refCanonTask(c, col))
	}
	sort.Strings(cs)
	b.WriteString(";C{")
	b.WriteString(strings.Join(cs, "|"))
	b.WriteString("}")
	return b.String(), col
}

// refCanonTask canonizes one task graph given fixed element labels. The
// same individualization–refinement scheme runs over the task nodes,
// whose initial colors are the canonical indices of the elements they
// execute; task graphs are tiny, so the search is cheap.
func refCanonTask(c *refCanonCons, elemCol []int) string {
	n := len(c.nodes)
	col := make([]int, n)
	for i, nd := range c.nodes {
		if nd.elem < 0 {
			col[i] = -2
		} else {
			col[i] = elemCol[nd.elem]
		}
	}
	best := ""
	var search func(col []int)
	search = func(col []int) {
		col = refTaskRefine(c, col)
		cell := refFirstNonSingleton(col)
		if cell < 0 {
			key := refTaskSerialize(c, col, elemCol)
			if best == "" || key < best {
				best = key
			}
			return
		}
		for i := range col {
			if col[i] != cell {
				continue
			}
			next := make([]int, n)
			copy(next, col)
			next[i] = -3
			search(next)
		}
	}
	search(col)
	return best
}

func refTaskRefine(c *refCanonCons, col []int) []int {
	for {
		sigs := make([]string, len(col))
		for i := range col {
			nd := &c.nodes[i]
			var b strings.Builder
			b.WriteString("c")
			b.WriteString(strconv.Itoa(col[i]))
			refWriteColorSet(&b, "|a", col, nd.pred)
			refWriteColorSet(&b, "|b", col, nd.succ)
			sigs[i] = b.String()
		}
		next := refRankStrings(sigs)
		if refDistinct(next) == refDistinct(col) {
			return next
		}
		col = next
	}
}

func refTaskSerialize(c *refCanonCons, col, elemCol []int) string {
	inv := make([]int, len(col))
	for i, r := range col {
		inv[r] = i
	}
	var b strings.Builder
	for r, i := range inv {
		if r > 0 {
			b.WriteByte(',')
		}
		if e := c.nodes[i].elem; e < 0 {
			b.WriteString("?")
		} else {
			b.WriteString(strconv.Itoa(elemCol[e]))
		}
	}
	var edges []string
	for i, nd := range c.nodes {
		for _, s := range nd.succ {
			edges = append(edges, strconv.Itoa(col[i])+">"+strconv.Itoa(col[s]))
		}
	}
	sort.Strings(edges)
	b.WriteString("/")
	b.WriteString(strings.Join(edges, ","))
	return b.String()
}

// refRankStrings maps each string to the rank of its value among the
// sorted distinct values.
func refRankStrings(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	rank := make(map[string]int, len(uniq))
	for _, s := range uniq {
		if _, ok := rank[s]; !ok {
			rank[s] = len(rank)
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out
}

func refDistinct(col []int) int {
	seen := make(map[int]bool, len(col))
	for _, c := range col {
		seen[c] = true
	}
	return len(seen)
}

// refFirstNonSingleton returns the smallest color owned by two or more
// elements, or -1 when the coloring is discrete.
func refFirstNonSingleton(col []int) int {
	count := make(map[int]int, len(col))
	for _, c := range col {
		count[c]++
	}
	best := -1
	for c, k := range count {
		if k > 1 && (best < 0 || c < best) {
			best = c
		}
	}
	return best
}
