package core

import (
	"sort"
	"strconv"
)

// Element interchangeability. Two functional elements a and b are
// interchangeable when swapping them everywhere — in the
// communication weights and in every timing constraint's task graph —
// yields the same model up to the relabeling. For scheduling purposes
// (the checker's semantics depend only on element weights and the
// constraints' task graphs, periods, deadlines and kinds) this means
// any schedule remains feasible after exchanging the two elements'
// slots, so a search may explore only one representative per orbit of
// the induced symmetry group.
//
// The test used here is sound but deliberately conservative: a pair
// is accepted only when the constraint multiset is provably invariant
// under the transposition. Constraints whose task graphs are simple
// chains (paths) are compared by their canonical element sequence;
// a constraint with a non-path task graph involving a or b makes the
// pair non-interchangeable (general DAG isomorphism is not attempted).
// Because the accepted transpositions of a connected class generate
// the full symmetric group on that class, every permutation within a
// reported orbit is a model automorphism.

// Orbits returns the equivalence classes of interchangeable elements
// with two or more members, each class sorted, classes sorted by
// their first element. Elements not used by any constraint are
// ignored (they never appear in a schedule produced from the model).
func (m *Model) Orbits() [][]string {
	elems := m.ElementsUsed()
	if len(elems) < 2 {
		return nil
	}
	// Precompute, per constraint, the canonical chain sequence (or nil
	// for non-path task graphs) and the set of elements involved.
	infos := make([]conInfo, len(m.Constraints))
	for i, c := range m.Constraints {
		seq, ok := pathSequence(c.Task)
		set := make(map[string]bool)
		for _, node := range c.Task.Nodes() {
			set[c.Task.ElementOf(node)] = true
		}
		if !ok {
			seq = nil
		}
		infos[i] = conInfo{seq: seq, elements: set}
	}

	// Union-find over verified pairwise swaps.
	parent := make(map[string]string, len(elems))
	for _, e := range elems {
		parent[e] = e
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}

	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			a, b := elems[i], elems[j]
			if find(a) == find(b) {
				continue // already joined via other swaps
			}
			if m.interchangeable(infos, a, b) {
				parent[find(b)] = find(a)
			}
		}
	}

	byRoot := make(map[string][]string)
	for _, e := range elems {
		r := find(e)
		byRoot[r] = append(byRoot[r], e)
	}
	var out [][]string
	for _, class := range byRoot {
		if len(class) < 2 {
			continue
		}
		sort.Strings(class)
		out = append(out, class)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

type conInfo struct {
	seq      []string // canonical chain; nil when the task graph is not a path
	elements map[string]bool
}

// interchangeable verifies the transposition (a b) against the
// precomputed constraint summaries.
func (m *Model) interchangeable(infos []conInfo, a, b string) bool {
	if m.Comm.WeightOf(a) != m.Comm.WeightOf(b) {
		return false
	}
	swap := func(e string) string {
		switch e {
		case a:
			return b
		case b:
			return a
		}
		return e
	}
	// Constraint descriptor under a relabeling: kind, period, deadline
	// and the relabeled chain sequence. The multiset of descriptors
	// must be invariant under the swap.
	orig := make(map[string]int)
	swapped := make(map[string]int)
	for i, c := range m.Constraints {
		info := infos[i]
		if !info.elements[a] && !info.elements[b] {
			continue // fixed by the swap; contributes equally to both sides
		}
		if info.seq == nil {
			// non-path task graph touching a or b: be conservative
			return false
		}
		key := func(mapped func(string) string) string {
			s := descriptorPrefix(c)
			for _, e := range info.seq {
				s += "\x00" + mapped(e)
			}
			return s
		}
		orig[key(func(e string) string { return e })]++
		swapped[key(swap)]++
	}
	if len(orig) != len(swapped) {
		return false
	}
	for k, n := range orig {
		if swapped[k] != n {
			return false
		}
	}
	return true
}

func descriptorPrefix(c *Constraint) string {
	// name is deliberately excluded: it does not affect scheduling
	return c.Kind.String() + "|" + strconv.Itoa(c.Period) + "|" + strconv.Itoa(c.Deadline)
}

// pathSequence returns the element sequence of a task graph that is a
// simple directed path (including the single-node case), or ok=false
// for any other shape.
func pathSequence(t *TaskGraph) ([]string, bool) {
	nodes := t.G.Nodes()
	if len(nodes) == 0 {
		return nil, false
	}
	start := ""
	for _, n := range nodes {
		if t.G.InDegree(n) > 1 || t.G.OutDegree(n) > 1 {
			return nil, false
		}
		if t.G.InDegree(n) == 0 {
			if start != "" {
				return nil, false // two sources: not a single path
			}
			start = n
		}
	}
	if start == "" {
		return nil, false // cyclic (cannot happen for validated models)
	}
	seq := make([]string, 0, len(nodes))
	cur := start
	for {
		seq = append(seq, t.ElementOf(cur))
		succ := t.G.Succ(cur)
		if len(succ) == 0 {
			break
		}
		cur = succ[0]
	}
	if len(seq) != len(nodes) {
		return nil, false // disconnected
	}
	return seq, true
}
