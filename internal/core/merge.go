package core

import (
	"fmt"
	"sort"
	"strings"
)

// MergeReport describes the effect of a merge pass.
type MergeReport struct {
	Groups        [][]string // names of constraints merged together
	DemandBefore  int        // Σ computation time per hyperperiod, unmerged
	DemandAfter   int        // Σ computation time per hyperperiod, merged
	SharedOpsSave int        // DemandBefore - DemandAfter
}

// MergePeriodic implements the paper's shared-operation optimization:
// periodic constraints with equal periods are combined into a single
// constraint whose task graph is the union of the originals, so that
// a functional element common to several constraints (such as f_S
// when p_x = p_y) is executed once per period instead of once per
// constraint. The merged deadline is the minimum of the deadlines.
//
// Only constraints whose task graphs execute each functional element
// at most once are merged (this holds for all identity-mapped task
// graphs); others are passed through unchanged.
func MergePeriodic(m *Model) (*Model, *MergeReport, error) {
	out := NewModel()
	out.Comm = m.Comm.Clone()
	rep := &MergeReport{}

	hyper := 1
	for _, c := range m.Constraints {
		hyper = lcm(hyper, c.Period)
	}
	for _, c := range m.Constraints {
		rep.DemandBefore += c.ComputationTime(m.Comm) * (hyper / c.Period)
	}

	// group mergeable periodic constraints by period
	groups := make(map[int][]*Constraint)
	var order []int
	for _, c := range m.Constraints {
		if c.Kind == Periodic && singleExec(c.Task) {
			if _, ok := groups[c.Period]; !ok {
				order = append(order, c.Period)
			}
			groups[c.Period] = append(groups[c.Period], c)
		} else {
			out.AddConstraint(c.Clone())
		}
	}
	sort.Ints(order)

	for _, p := range order {
		g := groups[p]
		if len(g) == 1 {
			out.AddConstraint(g[0].Clone())
			continue
		}
		merged, err := unionTasks(g)
		if err != nil {
			return nil, nil, err
		}
		deadline := g[0].Deadline
		var names []string
		for _, c := range g {
			if c.Deadline < deadline {
				deadline = c.Deadline
			}
			names = append(names, c.Name)
		}
		out.AddConstraint(&Constraint{
			Name:     strings.Join(names, "+"),
			Task:     merged,
			Period:   p,
			Deadline: deadline,
			Kind:     Periodic,
		})
		rep.Groups = append(rep.Groups, names)
	}

	for _, c := range out.Constraints {
		rep.DemandAfter += c.ComputationTime(out.Comm) * (hyper / c.Period)
	}
	rep.SharedOpsSave = rep.DemandBefore - rep.DemandAfter
	return out, rep, nil
}

// singleExec reports whether every functional element appears at most
// once among the task graph's nodes.
func singleExec(t *TaskGraph) bool {
	seen := make(map[string]bool)
	for _, n := range t.Nodes() {
		e := t.ElementOf(n)
		if seen[e] {
			return false
		}
		seen[e] = true
	}
	return true
}

// unionTasks merges task graphs node-wise by functional element:
// nodes executing the same element are identified, and the edge set
// is the union. The merged graph must remain acyclic (it always is
// when the originals are compatible chains over a common topology,
// but diamond unions can in principle create cycles, which is an
// error).
func unionTasks(cs []*Constraint) (*TaskGraph, error) {
	t := NewTaskGraph()
	for _, c := range cs {
		for _, n := range c.Task.Nodes() {
			e := c.Task.ElementOf(n)
			t.AddStep(e, e)
		}
	}
	for _, c := range cs {
		for _, edge := range c.Task.G.Edges() {
			t.AddPrec(c.Task.ElementOf(edge.From), c.Task.ElementOf(edge.To))
		}
	}
	if !t.G.IsAcyclic() {
		return nil, fmt.Errorf("core: merged task graph is cyclic: %v", t.G.FindCycle())
	}
	return t, nil
}

// lcm returns the least common multiple of two positive integers.
func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Hyperperiod returns the least common multiple of all constraint
// periods (1 for an empty model).
func (m *Model) Hyperperiod() int {
	h := 1
	for _, c := range m.Constraints {
		h = lcm(h, c.Period)
	}
	return h
}
