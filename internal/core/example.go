package core

// ExampleParams are the free parameters of the paper's Figure 1/2
// control system: computation times of the five functional elements,
// the two sampling periods and the asynchronous deadline.
type ExampleParams struct {
	CX, CY, CZ, CS, CK int // computation times c_x .. c_k
	PX, PY             int // sampling periods p_x, p_y
	DZ                 int // asynchronous deadline d_z
	PZ                 int // minimum separation of z transitions
}

// DefaultExampleParams returns a parameterization under which the
// example is schedulable on one processor (utilization well below 1).
func DefaultExampleParams() ExampleParams {
	return ExampleParams{
		CX: 2, CY: 3, CZ: 1, CS: 4, CK: 2,
		PX: 20, PY: 40,
		DZ: 30, PZ: 100,
	}
}

// ExampleSystem builds the paper's worked example (Figures 1 and 2):
//
//	x --fX--> x' --\
//	y --fY--> y' ---> fS --> u (output, and fed back through fK as v)
//	z --fZ--> z' --/
//
// with three timing constraints:
//
//	X (periodic, p_x, d=p_x):   fX -> fS -> fK
//	Y (periodic, p_y, d=p_y):   fY -> fS -> fK
//	Z (asynchronous, p_z, d_z): fZ -> fS
//
// The X and Y constraints recompute the output u with a fresh sample
// and then update the internal state v; the Z constraint must
// propagate a toggle-switch transition to the output within d_z.
func ExampleSystem(p ExampleParams) *Model {
	m := NewModel()
	c := m.Comm
	c.AddElement("fX", p.CX)
	c.AddElement("fY", p.CY)
	c.AddElement("fZ", p.CZ)
	c.AddElement("fS", p.CS)
	c.AddElement("fK", p.CK)
	c.AddPath("fX", "fS")
	c.AddPath("fY", "fS")
	c.AddPath("fZ", "fS")
	c.AddPath("fS", "fK")
	c.AddPath("fK", "fS") // feedback: v is an input of fS

	m.AddConstraint(&Constraint{
		Name:     "X",
		Task:     ChainTask("fX", "fS", "fK"),
		Period:   p.PX,
		Deadline: p.PX,
		Kind:     Periodic,
	})
	m.AddConstraint(&Constraint{
		Name:     "Y",
		Task:     ChainTask("fY", "fS", "fK"),
		Period:   p.PY,
		Deadline: p.PY,
		Kind:     Periodic,
	})
	m.AddConstraint(&Constraint{
		Name:     "Z",
		Task:     ChainTask("fZ", "fS"),
		Period:   p.PZ,
		Deadline: p.DZ,
		Kind:     Asynchronous,
	})
	return m
}
