package core

import (
	"strings"
	"testing"
)

func TestCommGraphValidate(t *testing.T) {
	c := NewCommGraph()
	c.AddElement("a", 2)
	c.AddPath("a", "b") // b gets weight 0
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Weight["a"] = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	c.Weight["a"] = 2
	c.Weight["ghost"] = 1
	if err := c.Validate(); err == nil {
		t.Fatal("dangling weight entry accepted")
	}
}

func TestCommGraphClone(t *testing.T) {
	c := NewCommGraph()
	c.AddElement("a", 2)
	c.AddPath("a", "b")
	d := c.Clone()
	d.AddElement("c", 5)
	d.Weight["a"] = 99
	if c.G.HasNode("c") || c.WeightOf("a") != 2 {
		t.Fatal("clone mutation leaked")
	}
}

func TestChainTask(t *testing.T) {
	task := ChainTask("fx", "fs", "fk")
	if got := task.G.NumNodes(); got != 3 {
		t.Fatalf("nodes = %d, want 3", got)
	}
	if !task.G.HasEdge("fx", "fs") || !task.G.HasEdge("fs", "fk") {
		t.Fatal("chain edges missing")
	}
	if task.ElementOf("fs") != "fs" {
		t.Fatal("identity mapping broken")
	}
}

func TestComputationTime(t *testing.T) {
	c := NewCommGraph()
	c.AddElement("a", 2)
	c.AddElement("b", 3)
	c.AddPath("a", "b")
	task := ChainTask("a", "b")
	if got := task.ComputationTime(c); got != 5 {
		t.Fatalf("ComputationTime = %d, want 5", got)
	}
}

func TestTaskValidateCompatibility(t *testing.T) {
	c := NewCommGraph()
	c.AddElement("a", 1)
	c.AddElement("b", 1)
	c.AddPath("a", "b")
	good := ChainTask("a", "b")
	if err := good.Validate(c); err != nil {
		t.Fatal(err)
	}
	bad := ChainTask("b", "a") // b->a is not a communication path
	if err := bad.Validate(c); err == nil {
		t.Fatal("incompatible task graph accepted")
	}
	cyc := NewTaskGraph()
	cyc.AddStep("a", "a")
	cyc.AddStep("b", "b")
	cyc.AddPrec("a", "b")
	cyc.AddPrec("b", "a")
	if err := cyc.Validate(c); err == nil {
		t.Fatal("cyclic task graph accepted")
	}
}

func TestTaskGraphRepeatedElement(t *testing.T) {
	c := NewCommGraph()
	c.AddElement("f", 1)
	c.AddPath("f", "f") // self-loop path permits f -> f transmission
	task := NewTaskGraph()
	task.AddStep("f1", "f")
	task.AddStep("f2", "f")
	task.AddPrec("f1", "f2")
	if err := task.Validate(c); err != nil {
		t.Fatal(err)
	}
	if got := task.ComputationTime(c); got != 2 {
		t.Fatalf("ComputationTime = %d, want 2", got)
	}
	if singleExec(task) {
		t.Fatal("singleExec true for repeated element")
	}
}

func TestModelValidate(t *testing.T) {
	m := ExampleSystem(DefaultExampleParams())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateRejects(t *testing.T) {
	base := func() *Model { return ExampleSystem(DefaultExampleParams()) }

	m := base()
	m.Constraints[0].Period = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}

	m = base()
	m.Constraints[0].Deadline = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero deadline accepted")
	}

	m = base()
	m.Constraints[1].Name = m.Constraints[0].Name
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate names accepted")
	}

	m = base()
	m.Constraints[0].Deadline = 1 // computation time is 8
	if err := m.Validate(); err == nil {
		t.Fatal("deadline below computation time accepted")
	}

	m = base()
	m.Constraints[0].Task = NewTaskGraph()
	if err := m.Validate(); err == nil {
		t.Fatal("empty task graph accepted")
	}

	m = base()
	m.Constraints[0].Name = ""
	if err := m.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestExampleStructure(t *testing.T) {
	m := ExampleSystem(DefaultExampleParams())
	if len(m.Periodic()) != 2 || len(m.Asynchronous()) != 1 {
		t.Fatalf("kinds: periodic=%d async=%d", len(m.Periodic()), len(m.Asynchronous()))
	}
	z := m.ConstraintByName("Z")
	if z == nil || z.Kind != Asynchronous {
		t.Fatal("Z constraint missing or wrong kind")
	}
	if m.ConstraintByName("nope") != nil {
		t.Fatal("unknown name returned a constraint")
	}
	// f_S and f_K are shared; feedback edge fK->fS must exist.
	shared := m.SharedElements()
	if len(shared) != 2 || shared[0] != "fK" || shared[1] != "fS" {
		t.Fatalf("SharedElements = %v, want [fK fS]", shared)
	}
	if !m.Comm.G.HasEdge("fK", "fS") {
		t.Fatal("feedback path missing")
	}
	used := m.ElementsUsed()
	if len(used) != 5 {
		t.Fatalf("ElementsUsed = %v", used)
	}
}

func TestUtilizationAndDensity(t *testing.T) {
	p := DefaultExampleParams()
	m := ExampleSystem(p)
	// X: (2+4+2)/20, Y: (3+4+2)/40, Z: (1+4)/100
	wantU := 8.0/20 + 9.0/40 + 5.0/100
	if got := m.Utilization(); !close(got, wantU) {
		t.Fatalf("Utilization = %v, want %v", got, wantU)
	}
	wantD := 8.0/20 + 9.0/40 + 5.0/30
	if got := m.DeadlineDensity(); !close(got, wantD) {
		t.Fatalf("DeadlineDensity = %v, want %v", got, wantD)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestHyperperiod(t *testing.T) {
	m := ExampleSystem(DefaultExampleParams())
	if h := m.Hyperperiod(); h != 200 { // lcm(20,40,100)
		t.Fatalf("Hyperperiod = %d, want 200", h)
	}
	if h := NewModel().Hyperperiod(); h != 1 {
		t.Fatalf("empty hyperperiod = %d, want 1", h)
	}
}

func TestCloneDeep(t *testing.T) {
	m := ExampleSystem(DefaultExampleParams())
	n := m.Clone()
	n.Constraints[0].Period = 999
	n.Comm.AddElement("extra", 1)
	if m.Constraints[0].Period == 999 || m.Comm.G.HasNode("extra") {
		t.Fatal("clone mutation leaked")
	}
}

func TestMergePeriodicEqualPeriods(t *testing.T) {
	p := DefaultExampleParams()
	p.PY = p.PX // make the periods equal: fS, fK become mergeable
	m := ExampleSystem(p)
	merged, rep, err := MergePeriodic(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged model invalid: %v", err)
	}
	// X and Y merge into one constraint; Z passes through.
	if len(merged.Constraints) != 2 {
		t.Fatalf("constraints after merge = %d, want 2", len(merged.Constraints))
	}
	xy := merged.ConstraintByName("X+Y")
	if xy == nil {
		t.Fatalf("merged constraint not found: %+v", merged.Constraints)
	}
	// merged task: fX, fY, fS, fK (fS and fK shared) = 2+3+4+2 = 11
	if got := xy.ComputationTime(merged.Comm); got != 11 {
		t.Fatalf("merged computation time = %d, want 11", got)
	}
	if rep.SharedOpsSave <= 0 {
		t.Fatalf("expected positive savings, got %d", rep.SharedOpsSave)
	}
	// per hyperperiod (lcm(20,100)=100): before X=8*5 + Y=9*5 + Z=5*1 = 90
	// after XY=11*5 + Z=5 = 60 -> save 30
	if rep.DemandBefore != 90 || rep.DemandAfter != 60 {
		t.Fatalf("demand before/after = %d/%d, want 90/60", rep.DemandBefore, rep.DemandAfter)
	}
}

func TestMergePeriodicDistinctPeriodsNoop(t *testing.T) {
	m := ExampleSystem(DefaultExampleParams()) // p_x=20 != p_y=40
	merged, rep, err := MergePeriodic(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Constraints) != 3 {
		t.Fatalf("constraints = %d, want 3", len(merged.Constraints))
	}
	if rep.SharedOpsSave != 0 {
		t.Fatalf("savings = %d, want 0", rep.SharedOpsSave)
	}
}

func TestMergeDeadlineIsMin(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.Comm.AddPath("a", "b")
	m.AddConstraint(&Constraint{Name: "c1", Task: ChainTask("a", "b"), Period: 10, Deadline: 10, Kind: Periodic})
	m.AddConstraint(&Constraint{Name: "c2", Task: ChainTask("a"), Period: 10, Deadline: 4, Kind: Periodic})
	merged, _, err := MergePeriodic(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(merged.Constraints))
	}
	if merged.Constraints[0].Deadline != 4 {
		t.Fatalf("merged deadline = %d, want 4", merged.Constraints[0].Deadline)
	}
	if !strings.Contains(merged.Constraints[0].Name, "c1") {
		t.Fatalf("merged name = %q", merged.Constraints[0].Name)
	}
}

func TestMergeLeavesAsyncAlone(t *testing.T) {
	m := NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&Constraint{Name: "a1", Task: ChainTask("a"), Period: 10, Deadline: 5, Kind: Asynchronous})
	m.AddConstraint(&Constraint{Name: "a2", Task: ChainTask("a"), Period: 10, Deadline: 5, Kind: Asynchronous})
	merged, _, err := MergePeriodic(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Constraints) != 2 {
		t.Fatalf("async constraints were merged: %d", len(merged.Constraints))
	}
}

func TestKindString(t *testing.T) {
	if Periodic.String() != "periodic" || Asynchronous.String() != "asynchronous" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestLcmGcd(t *testing.T) {
	if lcm(4, 6) != 12 || lcm(7, 7) != 7 || lcm(1, 9) != 9 {
		t.Fatal("lcm wrong")
	}
	if gcd(12, 18) != 6 {
		t.Fatal("gcd wrong")
	}
}
