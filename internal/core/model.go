// Package core implements the paper's graph-based computation model
// for real-time systems: a model M = (G, T) pairing a communication
// graph G = (V, E, W_V) of weighted functional elements with a set T
// of timing constraints (C, p, d), where each C is a task graph
// compatible with G and each constraint is either periodic or
// asynchronous.
package core

import (
	"errors"
	"fmt"
	"sort"

	"rtm/internal/graph"
)

// Kind distinguishes periodic from asynchronous timing constraints.
type Kind int

const (
	// Periodic constraints are invoked automatically every p time
	// units starting at time 0.
	Periodic Kind = iota
	// Asynchronous constraints may be invoked at any integral time
	// instant, with successive invocations at least p units apart.
	Asynchronous
)

func (k Kind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Asynchronous:
		return "asynchronous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CommGraph is the communication graph G = (V, E, W_V): functional
// elements as nodes, communication paths as edges, and a non-negative
// integer computation-time weight per node.
type CommGraph struct {
	G      *graph.Digraph
	Weight map[string]int
}

// NewCommGraph returns an empty communication graph.
func NewCommGraph() *CommGraph {
	return &CommGraph{G: graph.New(), Weight: make(map[string]int)}
}

// AddElement inserts a functional element with the given computation
// time. Re-adding an element updates its weight.
func (c *CommGraph) AddElement(name string, weight int) {
	c.G.AddNode(name)
	c.Weight[name] = weight
}

// AddPath inserts a communication path (directed edge) from u to v,
// creating zero-weight endpoints if missing.
func (c *CommGraph) AddPath(u, v string) {
	for _, n := range []string{u, v} {
		if !c.G.HasNode(n) {
			c.AddElement(n, 0)
		}
	}
	c.G.AddEdge(u, v)
}

// Elements returns the functional element names in insertion order.
func (c *CommGraph) Elements() []string { return c.G.Nodes() }

// WeightOf returns the computation time of element name, or 0 for
// unknown names.
func (c *CommGraph) WeightOf(name string) int { return c.Weight[name] }

// Clone returns a deep copy.
func (c *CommGraph) Clone() *CommGraph {
	n := NewCommGraph()
	n.G = c.G.Clone()
	for k, v := range c.Weight {
		n.Weight[k] = v
	}
	return n
}

// Validate checks structural invariants: every node has a
// non-negative weight entry and every weight entry names a node.
// (The communication graph itself may be cyclic — e.g. the feedback
// path through f_K in the paper's example.)
func (c *CommGraph) Validate() error {
	for _, n := range c.G.Nodes() {
		w, ok := c.Weight[n]
		if !ok {
			return fmt.Errorf("core: element %q has no weight", n)
		}
		if w < 0 {
			return fmt.Errorf("core: element %q has negative weight %d", n, w)
		}
	}
	for n := range c.Weight {
		if !c.G.HasNode(n) {
			return fmt.Errorf("core: weight entry %q is not an element", n)
		}
	}
	return nil
}

// TaskGraph is an acyclic digraph compatible with a communication
// graph: node x of the task graph denotes an execution of functional
// element Elem[x], and an edge denotes transmission of the latest
// output along the corresponding communication path.
//
// In the common case task-graph nodes are simply named after the
// functional elements they execute and Elem is the identity; distinct
// node names with an explicit Elem mapping allow a task graph to
// execute the same element more than once.
type TaskGraph struct {
	G    *graph.Digraph
	Elem graph.Homomorphism // task node -> functional element
}

// NewTaskGraph returns an empty task graph.
func NewTaskGraph() *TaskGraph {
	return &TaskGraph{G: graph.New(), Elem: make(graph.Homomorphism)}
}

// ChainTask builds a task graph that is a chain of the given
// functional elements, using the element names as node names.
// Elements may not repeat (use AddStep for repeated executions).
func ChainTask(elems ...string) *TaskGraph {
	t := NewTaskGraph()
	prev := ""
	for _, e := range elems {
		t.AddStep(e, e)
		if prev != "" {
			t.G.AddEdge(prev, e)
		}
		prev = e
	}
	return t
}

// AddStep inserts a task node executing the given functional element.
func (t *TaskGraph) AddStep(node, elem string) {
	t.G.AddNode(node)
	t.Elem[node] = elem
}

// AddPrec inserts a precedence edge between two task nodes.
func (t *TaskGraph) AddPrec(from, to string) {
	t.G.AddEdge(from, to)
}

// Nodes returns task node names in insertion order.
func (t *TaskGraph) Nodes() []string { return t.G.Nodes() }

// ElementOf returns the functional element executed by task node n.
func (t *TaskGraph) ElementOf(n string) string { return t.Elem[n] }

// ComputationTime returns the sum of the weights of the functional
// elements executed by the task graph (the paper's computation time
// of a timing constraint).
func (t *TaskGraph) ComputationTime(c *CommGraph) int {
	total := 0
	for _, n := range t.G.Nodes() {
		total += c.WeightOf(t.Elem[n])
	}
	return total
}

// Clone returns a deep copy.
func (t *TaskGraph) Clone() *TaskGraph {
	n := NewTaskGraph()
	n.G = t.G.Clone()
	for k, v := range t.Elem {
		n.Elem[k] = v
	}
	return n
}

// Validate checks that the task graph is acyclic and compatible with
// the communication graph: every node maps to an element of c and
// every edge maps to a communication path of c.
func (t *TaskGraph) Validate(c *CommGraph) error {
	if !t.G.IsAcyclic() {
		return fmt.Errorf("core: task graph is cyclic: %v", t.G.FindCycle())
	}
	if err := graph.CheckHomomorphism(t.G, c.G, t.Elem); err != nil {
		return fmt.Errorf("core: task graph incompatible with communication graph: %w", err)
	}
	return nil
}

// Constraint is a timing constraint (C, p, d) of kind periodic or
// asynchronous. An invocation at time t requires the task graph to be
// executed within [t, t+d].
type Constraint struct {
	Name     string
	Task     *TaskGraph
	Period   int // p: period (periodic) or minimum separation (asynchronous)
	Deadline int // d: relative deadline
	Kind     Kind
}

// ComputationTime returns the constraint's total computation demand.
func (c *Constraint) ComputationTime(g *CommGraph) int {
	return c.Task.ComputationTime(g)
}

// Clone returns a deep copy.
func (c *Constraint) Clone() *Constraint {
	n := *c
	n.Task = c.Task.Clone()
	return &n
}

// Model is the paper's graph-based model M = (G, T).
type Model struct {
	Comm        *CommGraph
	Constraints []*Constraint
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Comm: NewCommGraph()}
}

// AddConstraint appends a constraint.
func (m *Model) AddConstraint(c *Constraint) { m.Constraints = append(m.Constraints, c) }

// Periodic returns the periodic constraints in declaration order.
func (m *Model) Periodic() []*Constraint { return m.byKind(Periodic) }

// Asynchronous returns the asynchronous constraints in declaration
// order.
func (m *Model) Asynchronous() []*Constraint { return m.byKind(Asynchronous) }

func (m *Model) byKind(k Kind) []*Constraint {
	var out []*Constraint
	for _, c := range m.Constraints {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// ConstraintByName returns the constraint with the given name, or nil.
func (m *Model) ConstraintByName(name string) *Constraint {
	for _, c := range m.Constraints {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	n := NewModel()
	n.Comm = m.Comm.Clone()
	for _, c := range m.Constraints {
		n.Constraints = append(n.Constraints, c.Clone())
	}
	return n
}

// ErrInvalid wraps all model validation failures.
var ErrInvalid = errors.New("core: invalid model")

// Validate checks the whole model: the communication graph, every
// task graph's compatibility, positive periods, non-negative
// deadlines, unique constraint names, and that every constraint's
// computation time fits within its deadline (otherwise it can never
// be met by any schedule).
func (m *Model) Validate() error {
	if err := m.Comm.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	seen := make(map[string]bool)
	for _, c := range m.Constraints {
		if c.Name == "" {
			return fmt.Errorf("%w: constraint with empty name", ErrInvalid)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate constraint name %q", ErrInvalid, c.Name)
		}
		seen[c.Name] = true
		if c.Period <= 0 {
			return fmt.Errorf("%w: constraint %q has non-positive period %d", ErrInvalid, c.Name, c.Period)
		}
		if c.Deadline <= 0 {
			return fmt.Errorf("%w: constraint %q has non-positive deadline %d", ErrInvalid, c.Name, c.Deadline)
		}
		if c.Task == nil || c.Task.G.NumNodes() == 0 {
			return fmt.Errorf("%w: constraint %q has empty task graph", ErrInvalid, c.Name)
		}
		if err := c.Task.Validate(m.Comm); err != nil {
			return fmt.Errorf("%w: constraint %q: %v", ErrInvalid, c.Name, err)
		}
		if w := c.ComputationTime(m.Comm); w > c.Deadline {
			return fmt.Errorf("%w: constraint %q needs %d time units but deadline is %d",
				ErrInvalid, c.Name, w, c.Deadline)
		}
	}
	return nil
}

// Utilization returns Σ w_i / p_i over all constraints: the long-run
// fraction of processor time demanded if every constraint arrives at
// its maximum rate and no operations are shared.
func (m *Model) Utilization() float64 {
	u := 0.0
	for _, c := range m.Constraints {
		u += float64(c.ComputationTime(m.Comm)) / float64(c.Period)
	}
	return u
}

// DeadlineDensity returns Σ w_i / d_i over all constraints, the
// quantity bounded by 1/2 in the paper's Theorem 3.
func (m *Model) DeadlineDensity() float64 {
	u := 0.0
	for _, c := range m.Constraints {
		u += float64(c.ComputationTime(m.Comm)) / float64(c.Deadline)
	}
	return u
}

// ElementsUsed returns the sorted set of functional elements that
// appear in at least one constraint's task graph.
func (m *Model) ElementsUsed() []string {
	set := make(map[string]bool)
	for _, c := range m.Constraints {
		for _, n := range c.Task.Nodes() {
			set[c.Task.ElementOf(n)] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// SharedElements returns, in sorted order, the functional elements
// that occur in two or more constraints' task graphs — exactly the
// elements that the naive process mapping must protect with monitors.
func (m *Model) SharedElements() []string {
	count := make(map[string]int)
	for _, c := range m.Constraints {
		inThis := make(map[string]bool)
		for _, n := range c.Task.Nodes() {
			inThis[c.Task.ElementOf(n)] = true
		}
		for e := range inThis {
			count[e]++
		}
	}
	var out []string
	for e, n := range count {
		if n >= 2 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}
