package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

// renameModel rebuilds m with permuted element names, permuted task
// node names, shuffled insertion orders, and shuffled constraint
// order — everything the canonical form must be invariant under. It
// returns the rebuilt model and the element renaming.
func renameModel(rng *rand.Rand, m *core.Model) (*core.Model, map[string]string) {
	elems := m.Comm.Elements()
	perm := rng.Perm(len(elems))
	ren := make(map[string]string, len(elems))
	for i, e := range elems {
		ren[e] = fmt.Sprintf("z%03d", perm[i])
	}
	out := core.NewModel()
	for _, i := range rng.Perm(len(elems)) {
		out.Comm.AddElement(ren[elems[i]], m.Comm.WeightOf(elems[i]))
	}
	for _, e := range m.Comm.G.Edges() {
		out.Comm.AddPath(ren[e.From], ren[e.To])
	}
	for _, ci := range rng.Perm(len(m.Constraints)) {
		c := m.Constraints[ci]
		task := core.NewTaskGraph()
		nodes := c.Task.Nodes()
		nren := make(map[string]string, len(nodes))
		for j, nd := range rng.Perm(len(nodes)) {
			nren[nodes[nd]] = fmt.Sprintf("n%d_%d", ci, j)
		}
		for _, nd := range nodes {
			task.AddStep(nren[nd], ren[c.Task.ElementOf(nd)])
		}
		for _, e := range c.Task.G.Edges() {
			task.AddPrec(nren[e.From], nren[e.To])
		}
		out.AddConstraint(&core.Constraint{
			Name:     fmt.Sprintf("q%d", ci),
			Task:     task,
			Period:   c.Period,
			Deadline: c.Deadline,
			Kind:     c.Kind,
		})
	}
	return out, ren
}

// randomSchedule draws a candidate schedule over m's used elements.
func randomSchedule(rng *rand.Rand, m *core.Model, n int) *sched.Schedule {
	alphabet := append([]string{sched.Idle}, m.ElementsUsed()...)
	slots := make([]string, n)
	for i := range slots {
		slots[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return &sched.Schedule{Slots: slots}
}

// TestCanonicalInvariance: the fingerprint is invariant under element
// renaming, task-node renaming, insertion-order shuffling, and
// constraint permutation — and the canonical element orders of the two
// isomorphic models translate schedules so that verification verdicts
// transfer exactly.
func TestCanonicalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m, err := workload.Random(rng, workload.Params{
			Elements:    2 + rng.Intn(5),
			MaxWeight:   1 + rng.Intn(3),
			EdgeProb:    0.4,
			Constraints: 1 + rng.Intn(4),
			ChainLen:    1 + rng.Intn(3),
			AsyncFrac:   0.5,
			TargetUtil:  0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		m2, ren := renameModel(rng, m)
		if err := m2.Validate(); err != nil {
			t.Fatalf("renamed model invalid: %v", err)
		}
		ca, cb := core.Canonicalize(m), core.Canonicalize(m2)
		if ca.Key != cb.Key {
			t.Fatalf("trial %d: canonical keys differ under renaming\n%s\nvs\n%s", trial, ca.Key, cb.Key)
		}
		if ca.Fingerprint() != cb.Fingerprint() {
			t.Fatalf("trial %d: fingerprints differ under renaming", trial)
		}
		// translating a schedule through the canonical orders must
		// preserve the verification verdict
		s := randomSchedule(rng, m, 1+rng.Intn(10))
		s2 := s.Remap(func(e string) string { return cb.Order[ca.Index[e]] })
		ra, rb := sched.Check(m, s), sched.Check(m2, s2)
		if ra.Feasible != rb.Feasible {
			t.Fatalf("trial %d: translated schedule verdict changed: %v vs %v", trial, ra.Feasible, rb.Feasible)
		}
		// double-check the translation equals the renaming itself
		s3 := s.Remap(func(e string) string { return ren[e] })
		for i := range s2.Slots {
			if s2.Slots[i] != s3.Slots[i] {
				t.Fatalf("trial %d: canonical translation disagrees with the renaming at slot %d", trial, i)
			}
		}
	}
}

// TestCanonicalDistinguishes: any mutation that changes how models
// verify — weights, periods, deadlines, kinds, task structure — must
// change the fingerprint.
func TestCanonicalDistinguishes(t *testing.T) {
	base := func() *core.Model {
		m := core.NewModel()
		m.Comm.AddElement("a", 1)
		m.Comm.AddElement("b", 2)
		m.Comm.AddPath("a", "b")
		m.AddConstraint(&core.Constraint{
			Name: "AB", Task: core.ChainTask("a", "b"),
			Period: 8, Deadline: 8, Kind: core.Asynchronous,
		})
		m.AddConstraint(&core.Constraint{
			Name: "A", Task: core.ChainTask("a"),
			Period: 4, Deadline: 4, Kind: core.Periodic,
		})
		return m
	}
	fp := core.Fingerprint(base())
	mutations := map[string]func(*core.Model){
		"weight":   func(m *core.Model) { m.Comm.AddElement("b", 3) },
		"period":   func(m *core.Model) { m.Constraints[1].Period = 5 },
		"deadline": func(m *core.Model) { m.Constraints[0].Deadline = 7 },
		"kind":     func(m *core.Model) { m.Constraints[1].Kind = core.Asynchronous },
		"extra-cons": func(m *core.Model) {
			m.AddConstraint(&core.Constraint{Name: "B", Task: core.ChainTask("b"), Period: 9, Deadline: 9, Kind: core.Periodic})
		},
		"task-reverse": func(m *core.Model) { m.Constraints[0].Task = core.ChainTask("b", "a"); m.Comm.AddPath("b", "a") },
		"comm-edge":    func(m *core.Model) { m.Comm.AddPath("b", "a") },
	}
	for name, mutate := range mutations {
		m := base()
		mutate(m)
		if core.Fingerprint(m) == fp {
			t.Errorf("mutation %q left the fingerprint unchanged", name)
		}
	}
}

// TestCanonicalSymmetricModels exercises the individualization search:
// fully interchangeable elements force tie-breaking, and the result
// must still be renaming-invariant.
func TestCanonicalSymmetricModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sym := func(names []string) *core.Model {
		m := core.NewModel()
		for _, n := range names {
			m.Comm.AddElement(n, 1)
			m.AddConstraint(&core.Constraint{
				Name: "c" + n, Task: core.ChainTask(n),
				Period: 6, Deadline: 6, Kind: core.Asynchronous,
			})
		}
		return m
	}
	a := sym([]string{"u", "v", "w", "x", "y"})
	b, _ := renameModel(rng, a)
	if core.Fingerprint(a) != core.Fingerprint(b) {
		t.Fatal("symmetric model fingerprint not renaming-invariant")
	}
	// breaking the symmetry of one element must change the key
	c := sym([]string{"u", "v", "w", "x", "y"})
	c.Comm.AddElement("y", 2)
	c.Constraints[4].Deadline = 8
	c.Constraints[4].Period = 8
	if core.Fingerprint(a) == core.Fingerprint(c) {
		t.Fatal("asymmetric variant collides with the symmetric model")
	}
}

// TestCanonicalAgreesWithVerify: over random model pairs, equal
// fingerprints imply equal verification behaviour on translated
// candidate schedules (the soundness direction the schedule cache
// depends on), and the canonical order is a proper bijection.
func TestCanonicalAgreesWithVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		m1, err := workload.Random(rng, workload.Params{
			Elements: 2 + rng.Intn(3), MaxWeight: 2, EdgeProb: 0.5,
			Constraints: 1 + rng.Intn(2), ChainLen: 2, AsyncFrac: 0.5, TargetUtil: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := workload.Random(rng, workload.Params{
			Elements: 2 + rng.Intn(3), MaxWeight: 2, EdgeProb: 0.5,
			Constraints: 1 + rng.Intn(2), ChainLen: 2, AsyncFrac: 0.5, TargetUtil: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := core.Canonicalize(m1), core.Canonicalize(m2)
		if len(c1.Order) != len(c1.Index) {
			t.Fatal("canonical order is not a bijection")
		}
		if c1.Key != c2.Key {
			continue // distinct models; nothing to cross-check
		}
		for k := 0; k < 5; k++ {
			s := randomSchedule(rng, m1, 1+rng.Intn(8))
			s2 := s.Remap(func(e string) string { return c2.Order[c1.Index[e]] })
			if sched.Check(m1, s).Feasible != sched.Check(m2, s2).Feasible {
				t.Fatalf("equal fingerprints but verification verdicts differ (trial %d)", trial)
			}
		}
	}
}
