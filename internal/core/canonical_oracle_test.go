package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/spec"
	"rtm/internal/workload"
)

// This file pins the allocation-lean canonicalizer to the vendored
// seed implementation (canonical_reference_test.go): Key, Order, and
// Fingerprint must be bit-for-bit identical on the spec corpus, on
// random workload models, and on renamed variants of both — the
// property the canonical schedule cache's correctness rests on.

// specCorpus is the FuzzFingerprint seed corpus (internal/spec), plus
// the full example system spec.
var specCorpus = []string{
	`
# the paper's Figure 1/2 control system
system control
element fX weight 2
element fY weight 3
element fZ weight 1
element fS weight 4
element fK weight 2
path fX -> fS
path fY -> fS
path fZ -> fS
path fS -> fK
path fK -> fS

periodic X period 20 deadline 20 { fX -> fS -> fK }
periodic Y period 40 deadline 40 { fY -> fS -> fK }
sporadic Z separation 100 deadline 30 { fZ -> fS }
`,
	"element a weight 1\nperiodic P period 3 deadline 3 { a }",
	"sporadic S separation 5 deadline 5 { x }",
	"element f weight 4\nperiodic P period 30 deadline 30 { f }\npipeline f stages 2",
	"element a weight 1\nelement b weight 1\npath a -> b\n" +
		"periodic P period 6 deadline 6 { a -> b }\nsporadic Q separation 4 deadline 4 { a }",
	"element a weight 1\nperiodic P period 3 deadline 3 { first:a -> second:a }",
}

// assertCanonicalEqual fails unless the rewritten canonicalizer and
// the oracle agree exactly on m.
func assertCanonicalEqual(t *testing.T, label string, m *core.Model) {
	t.Helper()
	got := core.Canonicalize(m)
	want := core.RefCanonicalize(m)
	if got.Key != want.Key {
		t.Fatalf("%s: canonical key diverges from the oracle\n got: %s\nwant: %s", label, got.Key, want.Key)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("%s: fingerprint diverges from the oracle", label)
	}
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d vs oracle %d", label, len(got.Order), len(want.Order))
	}
	for i := range got.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: canonical order diverges at %d: %q vs %q", label, i, got.Order[i], want.Order[i])
		}
	}
	for e, i := range want.Index {
		if got.Index[e] != i {
			t.Fatalf("%s: canonical index diverges for %q: %d vs %d", label, e, got.Index[e], i)
		}
	}
}

// TestCanonicalMatchesReference is the oracle-equality property test:
// over the spec corpus, random workload models, symmetric models, and
// renamed variants of all of them, the allocation-lean Canonicalize
// must reproduce the vendored seed canonicalizer bit-for-bit.
func TestCanonicalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))

	for i, text := range specCorpus {
		sp, err := spec.Parse(text)
		if err != nil {
			continue // FuzzFingerprint skips unparseable seeds too
		}
		assertCanonicalEqual(t, fmt.Sprintf("spec-corpus-%d", i), sp.Model)
		for r := 0; r < 3; r++ {
			ren, _ := renameModel(rng, sp.Model)
			assertCanonicalEqual(t, fmt.Sprintf("spec-corpus-%d-renamed-%d", i, r), ren)
		}
	}

	for trial := 0; trial < 80; trial++ {
		m, err := workload.Random(rng, workload.Params{
			Elements:    2 + rng.Intn(6),
			MaxWeight:   1 + rng.Intn(3),
			EdgeProb:    0.4,
			Constraints: 1 + rng.Intn(4),
			ChainLen:    1 + rng.Intn(3),
			AsyncFrac:   0.5,
			TargetUtil:  0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertCanonicalEqual(t, fmt.Sprintf("random-%d", trial), m)
		ren, _ := renameModel(rng, m)
		assertCanonicalEqual(t, fmt.Sprintf("random-%d-renamed", trial), ren)
	}

	// fully symmetric models force deep individualization tie-breaking
	// (many search leaves) — the worst case for serialize reuse
	for _, k := range []int{2, 3, 5, 6} {
		m := core.NewModel()
		for i := 0; i < k; i++ {
			name := fmt.Sprintf("s%d", i)
			m.Comm.AddElement(name, 1)
			m.AddConstraint(&core.Constraint{
				Name: "c" + name, Task: core.ChainTask(name),
				Period: 3 * k, Deadline: 3 * k, Kind: core.Asynchronous,
			})
		}
		assertCanonicalEqual(t, fmt.Sprintf("symmetric-%d", k), m)
		ren, _ := renameModel(rng, m)
		assertCanonicalEqual(t, fmt.Sprintf("symmetric-%d-renamed", k), ren)
	}
}

// TestCanonicalPoolReuse exercises the sync.Pool'd scratch across
// models of very different shapes back-to-back: stale buffer content
// from a bigger model must never leak into a smaller one.
func TestCanonicalPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	big, err := workload.Random(rng, workload.Params{
		Elements: 8, MaxWeight: 3, EdgeProb: 0.5,
		Constraints: 4, ChainLen: 3, AsyncFrac: 0.5, TargetUtil: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	small := core.NewModel()
	small.Comm.AddElement("a", 1)
	small.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("a"), Period: 3, Deadline: 3, Kind: core.Periodic,
	})
	for round := 0; round < 10; round++ {
		assertCanonicalEqual(t, fmt.Sprintf("pool-big-%d", round), big)
		assertCanonicalEqual(t, fmt.Sprintf("pool-small-%d", round), small)
	}
}

// BenchmarkCanonicalize prices the allocation-lean canonicalizer
// against the vendored oracle (run with -benchmem; the acceptance bar
// is ≥ 2x fewer allocs/op). The corpus mixes the example system, a
// random workload, and a symmetric model.
func BenchmarkCanonicalize(b *testing.B) {
	models := benchCorpus(b)
	for name, m := range models {
		b.Run("lean/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Canonicalize(m)
			}
		})
		b.Run("oracle/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.RefCanonicalize(m)
			}
		})
	}
}

func benchCorpus(b *testing.B) map[string]*core.Model {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	random, err := workload.Random(rng, workload.Params{
		Elements: 6, MaxWeight: 3, EdgeProb: 0.4,
		Constraints: 3, ChainLen: 2, AsyncFrac: 0.5, TargetUtil: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	sym := core.NewModel()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("s%d", i)
		sym.Comm.AddElement(name, 1)
		sym.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: 15, Deadline: 15, Kind: core.Asynchronous,
		})
	}
	return map[string]*core.Model{
		"example":   core.ExampleSystem(core.DefaultExampleParams()),
		"random6":   random,
		"symmetric": sym,
	}
}
