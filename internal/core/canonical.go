package core

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// This file computes a canonical form of a model: a serialization that
// is identical for any two models that differ only by renaming of
// functional elements, renaming of task-graph nodes, or reordering of
// constraints — and different for any two models that are not
// isomorphic in that sense. Isomorphic models are indistinguishable to
// every scheduler and verifier in this repository (all semantics are
// defined up to the element bijection), so the canonical form is a
// sound cache key for scheduling results: a schedule synthesized for
// one model transfers to any isomorphic model by mapping each slot
// through the two canonical element orders.
//
// The construction is classic individualization–refinement (the
// algorithm family behind nauty): iterated color refinement over the
// communication graph and the constraint task graphs, with exhaustive
// tie-breaking on the first non-singleton color class and the
// lexicographically least serialization winning. The worst case is
// exponential on highly symmetric models (as it must be — graph
// canonization subsumes isomorphism testing), but models in this
// domain are small and refinement almost always discharges the
// partition in one or two rounds.

// Canonical is the canonical form of a model.
type Canonical struct {
	// Key is the canonical serialization: equal keys ⟺ isomorphic
	// models. It is bulky; use Fingerprint for a fixed-size digest.
	Key string
	// Order lists the element names in canonical order: Order[i] is
	// the element assigned canonical index i.
	Order []string
	// Index is the inverse of Order.
	Index map[string]int
}

// Fingerprint returns a fixed-size hex digest of the canonical key.
func (c *Canonical) Fingerprint() string {
	sum := sha256.Sum256([]byte(c.Key))
	return hex.EncodeToString(sum[:])
}

// Fingerprint is shorthand for Canonicalize(m).Fingerprint().
func Fingerprint(m *Model) string { return Canonicalize(m).Fingerprint() }

// Canonicalize computes the canonical form. The model should satisfy
// Validate (task nodes executing elements unknown to the communication
// graph are tolerated but lumped together).
func Canonicalize(m *Model) *Canonical {
	cz := newCanonizer(m)
	n := len(cz.elems)
	col := make([]int, n) // uniform initial coloring; refine splits it
	cz.search(col)
	c := &Canonical{Key: cz.bestKey, Order: make([]string, n), Index: make(map[string]int, n)}
	for e, r := range cz.bestOrder {
		c.Order[r] = cz.elems[e]
		c.Index[cz.elems[e]] = r
	}
	return c
}

// canonizer holds the index-form model and the search state.
type canonizer struct {
	m     *Model
	elems []string // base order (insertion order; never affects the result)
	succ  [][]int  // communication-graph adjacency, element indices
	pred  [][]int
	cons  []canonCons
	roles [][]canonRole // per element: its occurrences across all task graphs

	bestKey   string
	bestOrder []int // element base index -> canonical index
}

// canonCons is one constraint in index form.
type canonCons struct {
	kind     Kind
	period   int
	deadline int
	nodes    []canonNode
}

// canonNode is one task-graph node: the element it executes plus its
// predecessor/successor nodes (indices into the same nodes slice).
type canonNode struct {
	elem int // element base index, -1 when unknown
	pred []int
	succ []int
}

// canonRole locates one task node executing a given element.
type canonRole struct {
	cons, node int
}

func newCanonizer(m *Model) *canonizer {
	cz := &canonizer{m: m, elems: m.Comm.Elements()}
	idx := make(map[string]int, len(cz.elems))
	for i, e := range cz.elems {
		idx[e] = i
	}
	cz.succ = make([][]int, len(cz.elems))
	cz.pred = make([][]int, len(cz.elems))
	for i, e := range cz.elems {
		for _, s := range m.Comm.G.Succ(e) {
			cz.succ[i] = append(cz.succ[i], idx[s])
		}
		for _, p := range m.Comm.G.Pred(e) {
			cz.pred[i] = append(cz.pred[i], idx[p])
		}
	}
	cz.roles = make([][]canonRole, len(cz.elems))
	for ci, c := range m.Constraints {
		cc := canonCons{kind: c.Kind, period: c.Period, deadline: c.Deadline}
		nodes := c.Task.Nodes()
		nidx := make(map[string]int, len(nodes))
		for i, nd := range nodes {
			nidx[nd] = i
		}
		cc.nodes = make([]canonNode, len(nodes))
		for i, nd := range nodes {
			e, ok := idx[c.Task.ElementOf(nd)]
			if !ok {
				e = -1
			}
			cn := canonNode{elem: e}
			for _, p := range c.Task.G.Pred(nd) {
				cn.pred = append(cn.pred, nidx[p])
			}
			for _, s := range c.Task.G.Succ(nd) {
				cn.succ = append(cn.succ, nidx[s])
			}
			cc.nodes[i] = cn
			if e >= 0 {
				cz.roles[e] = append(cz.roles[e], canonRole{cons: ci, node: i})
			}
		}
		cz.cons = append(cz.cons, cc)
	}
	return cz
}

// search refines the coloring and, while non-singleton color classes
// remain, individualizes every member of the first one in turn,
// keeping the lexicographically least serialization reached.
func (cz *canonizer) search(col []int) {
	col = cz.refine(col)
	cell := firstNonSingleton(col)
	if cell < 0 {
		key, order := cz.serialize(col)
		if cz.bestOrder == nil || key < cz.bestKey {
			cz.bestKey, cz.bestOrder = key, order
		}
		return
	}
	for e := range col {
		if col[e] != cell {
			continue
		}
		next := make([]int, len(col))
		copy(next, col)
		next[e] = -1 // unique minimal color: e is individualized
		cz.search(next)
	}
}

// refine iterates color refinement to a fixed point: each round an
// element's new color is the rank of its signature — old color plus
// the color multisets of its communication neighbours and of its task
// contexts. The partition only ever splits, so a round that does not
// increase the number of colors is the fixed point.
func (cz *canonizer) refine(col []int) []int {
	for {
		sigs := make([]string, len(col))
		for e := range col {
			sigs[e] = cz.signature(col, e)
		}
		next := rankStrings(sigs)
		if distinct(next) == distinct(col) {
			return next
		}
		col = next
	}
}

func (cz *canonizer) signature(col []int, e int) string {
	var b strings.Builder
	b.WriteString("c")
	b.WriteString(strconv.Itoa(col[e]))
	b.WriteString("|w")
	b.WriteString(strconv.Itoa(cz.m.Comm.WeightOf(cz.elems[e])))
	writeColorSet(&b, "|s", col, cz.succ[e])
	writeColorSet(&b, "|p", col, cz.pred[e])
	// task roles: one descriptor per occurrence of e in a task graph,
	// as a sorted multiset so constraint order cannot matter
	descs := make([]string, 0, len(cz.roles[e]))
	for _, r := range cz.roles[e] {
		c := &cz.cons[r.cons]
		nd := &c.nodes[r.node]
		var d strings.Builder
		d.WriteString("k")
		d.WriteString(strconv.Itoa(int(c.kind)))
		d.WriteString(",p")
		d.WriteString(strconv.Itoa(c.period))
		d.WriteString(",d")
		d.WriteString(strconv.Itoa(c.deadline))
		writeColorSet(&d, ",a", col, nodeElems(c, nd.pred))
		writeColorSet(&d, ",b", col, nodeElems(c, nd.succ))
		descs = append(descs, d.String())
	}
	sort.Strings(descs)
	b.WriteString("|t")
	b.WriteString(strings.Join(descs, ";"))
	return b.String()
}

// nodeElems maps task-node indices to the element indices they execute.
func nodeElems(c *canonCons, nodes []int) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = c.nodes[n].elem
	}
	return out
}

// writeColorSet appends the sorted multiset of colors of the given
// element indices (index -1 contributes a sentinel).
func writeColorSet(b *strings.Builder, tag string, col []int, elems []int) {
	cs := make([]int, len(elems))
	for i, e := range elems {
		if e < 0 {
			cs[i] = -2
		} else {
			cs[i] = col[e]
		}
	}
	sort.Ints(cs)
	b.WriteString(tag)
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
}

// serialize renders the model under a discrete coloring (every class a
// singleton): weights and communication edges in canonical element
// order, then the sorted multiset of constraint serializations, each
// with its task graph canonized under the now-fixed element labels.
func (cz *canonizer) serialize(col []int) (string, []int) {
	var b strings.Builder
	b.WriteString("n")
	b.WriteString(strconv.Itoa(len(col)))
	b.WriteString(";w")
	inv := make([]int, len(col)) // canonical index -> base index
	for e, r := range col {
		inv[r] = e
	}
	for r, e := range inv {
		if r > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(cz.m.Comm.WeightOf(cz.elems[e])))
	}
	var edges []string
	for e, ss := range cz.succ {
		for _, s := range ss {
			edges = append(edges, strconv.Itoa(col[e])+">"+strconv.Itoa(col[s]))
		}
	}
	sort.Strings(edges)
	b.WriteString(";a")
	b.WriteString(strings.Join(edges, ","))
	var cs []string
	for i := range cz.cons {
		c := &cz.cons[i]
		cs = append(cs, "k"+strconv.Itoa(int(c.kind))+
			";p"+strconv.Itoa(c.period)+
			";d"+strconv.Itoa(c.deadline)+
			";t"+canonTask(c, col))
	}
	sort.Strings(cs)
	b.WriteString(";C{")
	b.WriteString(strings.Join(cs, "|"))
	b.WriteString("}")
	return b.String(), col
}

// canonTask canonizes one task graph given fixed element labels. The
// same individualization–refinement scheme runs over the task nodes,
// whose initial colors are the canonical indices of the elements they
// execute; task graphs are tiny, so the search is cheap.
func canonTask(c *canonCons, elemCol []int) string {
	n := len(c.nodes)
	col := make([]int, n)
	for i, nd := range c.nodes {
		if nd.elem < 0 {
			col[i] = -2
		} else {
			col[i] = elemCol[nd.elem]
		}
	}
	best := ""
	var search func(col []int)
	search = func(col []int) {
		col = taskRefine(c, col)
		cell := firstNonSingleton(col)
		if cell < 0 {
			key := taskSerialize(c, col, elemCol)
			if best == "" || key < best {
				best = key
			}
			return
		}
		for i := range col {
			if col[i] != cell {
				continue
			}
			next := make([]int, n)
			copy(next, col)
			next[i] = -3
			search(next)
		}
	}
	search(col)
	return best
}

func taskRefine(c *canonCons, col []int) []int {
	for {
		sigs := make([]string, len(col))
		for i := range col {
			nd := &c.nodes[i]
			var b strings.Builder
			b.WriteString("c")
			b.WriteString(strconv.Itoa(col[i]))
			writeColorSet(&b, "|a", col, nd.pred)
			writeColorSet(&b, "|b", col, nd.succ)
			sigs[i] = b.String()
		}
		next := rankStrings(sigs)
		if distinct(next) == distinct(col) {
			return next
		}
		col = next
	}
}

func taskSerialize(c *canonCons, col, elemCol []int) string {
	inv := make([]int, len(col))
	for i, r := range col {
		inv[r] = i
	}
	var b strings.Builder
	for r, i := range inv {
		if r > 0 {
			b.WriteByte(',')
		}
		if e := c.nodes[i].elem; e < 0 {
			b.WriteString("?")
		} else {
			b.WriteString(strconv.Itoa(elemCol[e]))
		}
	}
	var edges []string
	for i, nd := range c.nodes {
		for _, s := range nd.succ {
			edges = append(edges, strconv.Itoa(col[i])+">"+strconv.Itoa(col[s]))
		}
	}
	sort.Strings(edges)
	b.WriteString("/")
	b.WriteString(strings.Join(edges, ","))
	return b.String()
}

// rankStrings maps each string to the rank of its value among the
// sorted distinct values.
func rankStrings(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	rank := make(map[string]int, len(uniq))
	for _, s := range uniq {
		if _, ok := rank[s]; !ok {
			rank[s] = len(rank)
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out
}

func distinct(col []int) int {
	seen := make(map[int]bool, len(col))
	for _, c := range col {
		seen[c] = true
	}
	return len(seen)
}

// firstNonSingleton returns the smallest color owned by two or more
// elements, or -1 when the coloring is discrete.
func firstNonSingleton(col []int) int {
	count := make(map[int]int, len(col))
	for _, c := range col {
		count[c]++
	}
	best := -1
	for c, k := range count {
		if k > 1 && (best < 0 || c < best) {
			best = c
		}
	}
	return best
}
