package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
)

// This file computes a canonical form of a model: a serialization that
// is identical for any two models that differ only by renaming of
// functional elements, renaming of task-graph nodes, or reordering of
// constraints — and different for any two models that are not
// isomorphic in that sense. Isomorphic models are indistinguishable to
// every scheduler and verifier in this repository (all semantics are
// defined up to the element bijection), so the canonical form is a
// sound cache key for scheduling results: a schedule synthesized for
// one model transfers to any isomorphic model by mapping each slot
// through the two canonical element orders.
//
// The construction is classic individualization–refinement (the
// algorithm family behind nauty): iterated color refinement over the
// communication graph and the constraint task graphs, with exhaustive
// tie-breaking on the first non-singleton color class and the
// lexicographically least serialization winning. The worst case is
// exponential on highly symmetric models (as it must be — graph
// canonization subsumes isomorphism testing), but models in this
// domain are small and refinement almost always discharges the
// partition in one or two rounds.
//
// This implementation is the allocation-lean rewrite of the seed
// canonicalizer (vendored verbatim in canonical_reference_test.go as
// the oracle): signatures are built into reused byte buffers and
// ranked by byte comparison instead of materializing per-round
// []string values, and all scratch state lives in a sync.Pool'd
// canonizer. Every byte it compares is identical to the reference's
// string comparisons, so Key, Order, and Fingerprint are bit-for-bit
// equal to the oracle — pinned by TestCanonicalMatchesReference.

// Canonical is the canonical form of a model.
type Canonical struct {
	// Key is the canonical serialization: equal keys ⟺ isomorphic
	// models. It is bulky; use Fingerprint for a fixed-size digest.
	Key string
	// Order lists the element names in canonical order: Order[i] is
	// the element assigned canonical index i.
	Order []string
	// Index is the inverse of Order.
	Index map[string]int
}

// Fingerprint returns a fixed-size hex digest of the canonical key.
func (c *Canonical) Fingerprint() string {
	sum := sha256.Sum256([]byte(c.Key))
	return hex.EncodeToString(sum[:])
}

// Fingerprint is shorthand for Canonicalize(m).Fingerprint().
func Fingerprint(m *Model) string { return Canonicalize(m).Fingerprint() }

// canonizerPool recycles canonizer state (adjacency, roles, and every
// refinement scratch buffer) across Canonicalize calls — the service
// canonicalizes once per request, so this is hot-path state.
var canonizerPool = sync.Pool{New: func() any { return new(canonizer) }}

// Canonicalize computes the canonical form. The model should satisfy
// Validate (task nodes executing elements unknown to the communication
// graph are tolerated but lumped together).
func Canonicalize(m *Model) *Canonical {
	cz := canonizerPool.Get().(*canonizer)
	cz.init(m)
	n := len(cz.elems)
	cz.col0 = growInts(cz.col0, n)
	for i := range cz.col0 {
		cz.col0[i] = 0 // uniform initial coloring; refine splits it
	}
	cz.search(cz.col0)
	c := &Canonical{Key: string(cz.bestKey), Order: make([]string, n), Index: make(map[string]int, n)}
	for e, r := range cz.bestOrder {
		c.Order[r] = cz.elems[e]
		c.Index[cz.elems[e]] = r
	}
	cz.elems = cz.elems[:0] // drop the model's strings before pooling
	canonizerPool.Put(cz)
	return c
}

// canonizer holds the index-form model, the search state, and all
// reusable scratch. Except for the per-branch coloring copies in
// search (which backtracking requires), the refinement loop allocates
// nothing after the buffers have grown to the model's size.
type canonizer struct {
	weights []int    // element weights by base index
	elems   []string // base order (insertion order; never affects the result)
	succ    [][]int  // communication-graph adjacency, element indices
	pred    [][]int
	cons    []canonCons
	roles   [][]canonRole // per element: its occurrences across all task graphs

	haveBest  bool
	bestKey   []byte
	bestOrder []int // element base index -> canonical index

	idx map[string]int // element name -> base index (reused)

	col0   []int  // initial coloring
	sigBuf []byte // one refinement round's signatures, concatenated
	sigOff []int  // sigBuf segment bounds (len n+1)
	perm   []int  // ranking permutation
	counts []int  // color histogram scratch
	setTmp []int  // color-multiset sort scratch

	descBuf  []byte // task-role descriptors of one element
	descOff  []int
	descPerm []int

	keyBuf  []byte // serialization being built at a leaf
	inv     []int  // canonical index -> base index
	segBuf  []byte // sortable segments (edges, constraint serializations)
	segOff  []int
	segPerm []int

	tSigBuf []byte // task-graph canonization scratch
	tSigOff []int
	tPerm   []int
	tKeyBuf []byte
	tBest   []byte
	tHave   bool
	tInv    []int

	sorter segSorter
}

// canonCons is one constraint in index form.
type canonCons struct {
	kind     Kind
	period   int
	deadline int
	nodes    []canonNode
}

// canonNode is one task-graph node: the element it executes plus its
// predecessor/successor nodes (indices into the same nodes slice).
type canonNode struct {
	elem int // element base index, -1 when unknown
	pred []int
	succ []int
}

// canonRole locates one task node executing a given element.
type canonRole struct {
	cons, node int
}

// growInts returns s resized to n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growLists returns s resized to n with every inner slice emptied,
// reusing both levels of capacity.
func growLists(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func (cz *canonizer) init(m *Model) {
	cz.elems = m.Comm.Elements()
	n := len(cz.elems)
	if cz.idx == nil {
		cz.idx = make(map[string]int, n)
	} else {
		clear(cz.idx)
	}
	for i, e := range cz.elems {
		cz.idx[e] = i
	}
	cz.weights = growInts(cz.weights, n)
	for i, e := range cz.elems {
		cz.weights[i] = m.Comm.WeightOf(e)
	}
	cz.succ = growLists(cz.succ, n)
	cz.pred = growLists(cz.pred, n)
	for i, e := range cz.elems {
		for _, s := range m.Comm.G.Succ(e) {
			cz.succ[i] = append(cz.succ[i], cz.idx[s])
		}
		for _, p := range m.Comm.G.Pred(e) {
			cz.pred[i] = append(cz.pred[i], cz.idx[p])
		}
	}
	cz.roles = growRoles(cz.roles, n)
	cz.cons = cz.cons[:0]
	for ci, c := range m.Constraints {
		cc := canonCons{kind: c.Kind, period: c.Period, deadline: c.Deadline}
		nodes := c.Task.Nodes()
		nidx := make(map[string]int, len(nodes))
		for i, nd := range nodes {
			nidx[nd] = i
		}
		cc.nodes = make([]canonNode, len(nodes))
		for i, nd := range nodes {
			e, ok := cz.idx[c.Task.ElementOf(nd)]
			if !ok {
				e = -1
			}
			cn := canonNode{elem: e}
			for _, p := range c.Task.G.Pred(nd) {
				cn.pred = append(cn.pred, nidx[p])
			}
			for _, s := range c.Task.G.Succ(nd) {
				cn.succ = append(cn.succ, nidx[s])
			}
			cc.nodes[i] = cn
			if e >= 0 {
				cz.roles[e] = append(cz.roles[e], canonRole{cons: ci, node: i})
			}
		}
		cz.cons = append(cz.cons, cc)
	}
	cz.haveBest = false
	cz.bestKey = cz.bestKey[:0]
}

func growRoles(s [][]canonRole, n int) [][]canonRole {
	if cap(s) < n {
		return make([][]canonRole, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// search refines the coloring and, while non-singleton color classes
// remain, individualizes every member of the first one in turn,
// keeping the lexicographically least serialization reached.
func (cz *canonizer) search(col []int) {
	cz.refine(col)
	cell := cz.firstNonSingleton(col)
	if cell < 0 {
		cz.serialize(col)
		return
	}
	for e := range col {
		if col[e] != cell {
			continue
		}
		next := make([]int, len(col))
		copy(next, col)
		next[e] = -1 // unique minimal color: e is individualized
		cz.search(next)
	}
}

// refine iterates color refinement to a fixed point in place: each
// round an element's new color is the rank of its signature — old
// color plus the color multisets of its communication neighbours and
// of its task contexts. The partition only ever splits, so a round
// that does not increase the number of colors is the fixed point.
// Like the reference, the returned coloring is the ranked form of the
// final round.
func (cz *canonizer) refine(col []int) {
	cur := cz.distinct(col)
	for {
		cz.signatures(col)
		next := cz.rankInto(cz.sigBuf, cz.sigOff, col)
		if next == cur {
			return
		}
		cur = next
	}
}

// signatures renders every element's refinement signature into sigBuf,
// byte-identical to the reference's per-element strings.
func (cz *canonizer) signatures(col []int) {
	buf := cz.sigBuf[:0]
	off := append(cz.sigOff[:0], 0)
	for e := range col {
		buf = append(buf, 'c')
		buf = strconv.AppendInt(buf, int64(col[e]), 10)
		buf = append(buf, "|w"...)
		buf = strconv.AppendInt(buf, int64(cz.weights[e]), 10)
		buf = cz.appendColorSet(buf, "|s", col, cz.succ[e])
		buf = cz.appendColorSet(buf, "|p", col, cz.pred[e])
		// task roles: one descriptor per occurrence of e in a task
		// graph, as a sorted multiset so constraint order cannot matter
		dbuf := cz.descBuf[:0]
		doff := append(cz.descOff[:0], 0)
		for _, r := range cz.roles[e] {
			c := &cz.cons[r.cons]
			nd := &c.nodes[r.node]
			dbuf = append(dbuf, 'k')
			dbuf = strconv.AppendInt(dbuf, int64(c.kind), 10)
			dbuf = append(dbuf, ",p"...)
			dbuf = strconv.AppendInt(dbuf, int64(c.period), 10)
			dbuf = append(dbuf, ",d"...)
			dbuf = strconv.AppendInt(dbuf, int64(c.deadline), 10)
			dbuf = cz.appendNodeElemColorSet(dbuf, ",a", col, c, nd.pred)
			dbuf = cz.appendNodeElemColorSet(dbuf, ",b", col, c, nd.succ)
			doff = append(doff, len(dbuf))
		}
		cz.descBuf, cz.descOff = dbuf, doff
		cz.descPerm = identityPerm(cz.descPerm, len(doff)-1)
		cz.sorter = segSorter{buf: dbuf, off: doff, perm: cz.descPerm}
		sort.Sort(&cz.sorter)
		buf = append(buf, "|t"...)
		for i, p := range cz.descPerm {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = append(buf, dbuf[doff[p]:doff[p+1]]...)
		}
		off = append(off, len(buf))
	}
	cz.sigBuf, cz.sigOff = buf, off
}

// appendColorSet appends tag plus the sorted multiset of colors of the
// given element indices (index -1 contributes a sentinel) —
// byte-identical to the reference writeColorSet.
func (cz *canonizer) appendColorSet(dst []byte, tag string, col []int, elems []int) []byte {
	t := cz.setTmp[:0]
	for _, e := range elems {
		if e < 0 {
			t = append(t, -2)
		} else {
			t = append(t, col[e])
		}
	}
	cz.setTmp = t
	return appendSortedInts(dst, tag, t)
}

// appendNodeElemColorSet is appendColorSet over the elements executed
// by the given task nodes (fusing the reference's nodeElems step).
func (cz *canonizer) appendNodeElemColorSet(dst []byte, tag string, col []int, c *canonCons, nodes []int) []byte {
	t := cz.setTmp[:0]
	for _, n := range nodes {
		if e := c.nodes[n].elem; e < 0 {
			t = append(t, -2)
		} else {
			t = append(t, col[e])
		}
	}
	cz.setTmp = t
	return appendSortedInts(dst, tag, t)
}

// appendSortedInts sorts vals in place and appends tag then the
// comma-joined decimals.
func appendSortedInts(dst []byte, tag string, vals []int) []byte {
	insertionSortInts(vals)
	dst = append(dst, tag...)
	for i, c := range vals {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(c), 10)
	}
	return dst
}

// insertionSortInts sorts tiny slices (neighbour sets, color
// multisets) without the interface allocations of sort.Ints.
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// identityPerm returns p resized to n and reset to 0..n-1.
func identityPerm(p []int, n int) []int {
	p = growInts(p, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// segSorter orders a permutation by byte comparison of buffer
// segments — the allocation-free equivalent of sort.Strings over the
// materialized signature strings.
type segSorter struct {
	buf  []byte
	off  []int
	perm []int
}

func (s *segSorter) Len() int { return len(s.perm) }
func (s *segSorter) Less(i, j int) bool {
	a, b := s.perm[i], s.perm[j]
	return bytes.Compare(s.buf[s.off[a]:s.off[a+1]], s.buf[s.off[b]:s.off[b+1]]) < 0
}
func (s *segSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// rankInto writes each segment's rank among the sorted distinct
// segments into col (the in-place equivalent of the reference
// rankStrings) and returns the number of distinct segments.
func (cz *canonizer) rankInto(buf []byte, off []int, col []int) int {
	n := len(col)
	if n == 0 {
		return 0
	}
	cz.perm = identityPerm(cz.perm, n)
	cz.sorter = segSorter{buf: buf, off: off, perm: cz.perm}
	sort.Sort(&cz.sorter)
	rank := 0
	prev := cz.perm[0]
	col[prev] = 0
	for _, p := range cz.perm[1:] {
		if !bytes.Equal(buf[off[p]:off[p+1]], buf[off[prev]:off[prev+1]]) {
			rank++
		}
		col[p] = rank
		prev = p
	}
	return rank + 1
}

// distinct counts the distinct colors of a coloring. Colors are ≥ -3
// (the individualization sentinels), so a shifted histogram suffices.
func (cz *canonizer) distinct(col []int) int {
	const shift = 3
	max := 0
	for _, c := range col {
		if c+shift > max {
			max = c + shift
		}
	}
	cz.counts = growInts(cz.counts, max+1)
	counts := cz.counts
	d := 0
	for _, c := range col {
		if counts[c+shift] == 0 {
			d++
		}
		counts[c+shift]++
	}
	for _, c := range col {
		counts[c+shift] = 0
	}
	return d
}

// firstNonSingleton returns the smallest color owned by two or more
// elements, or -1 when the coloring is discrete. col is always a
// ranked coloring here, so colors are dense in [0, len(col)).
func (cz *canonizer) firstNonSingleton(col []int) int {
	n := len(col)
	cz.counts = growInts(cz.counts, n)
	counts := cz.counts
	for _, c := range col {
		counts[c]++
	}
	best := -1
	for c := 0; c < n; c++ {
		if counts[c] > 1 {
			best = c
			break
		}
	}
	for _, c := range col {
		counts[c] = 0
	}
	return best
}

// serialize renders the model under a discrete coloring (every class a
// singleton) into keyBuf — weights and communication edges in
// canonical element order, then the sorted multiset of constraint
// serializations, each with its task graph canonized under the
// now-fixed element labels — and keeps it when it beats the best key
// so far. Byte-identical to the reference serialize.
func (cz *canonizer) serialize(col []int) {
	b := cz.keyBuf[:0]
	b = append(b, 'n')
	b = strconv.AppendInt(b, int64(len(col)), 10)
	b = append(b, ";w"...)
	cz.inv = growInts(cz.inv, len(col)) // canonical index -> base index
	for e, r := range col {
		cz.inv[r] = e
	}
	for r, e := range cz.inv {
		if r > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(cz.weights[e]), 10)
	}
	// edges as sortable "from>to" segments over canonical indices
	seg := cz.segBuf[:0]
	soff := append(cz.segOff[:0], 0)
	for e, ss := range cz.succ {
		for _, s := range ss {
			seg = strconv.AppendInt(seg, int64(col[e]), 10)
			seg = append(seg, '>')
			seg = strconv.AppendInt(seg, int64(col[s]), 10)
			soff = append(soff, len(seg))
		}
	}
	cz.segBuf, cz.segOff = seg, soff
	cz.segPerm = identityPerm(cz.segPerm, len(soff)-1)
	cz.sorter = segSorter{buf: seg, off: soff, perm: cz.segPerm}
	sort.Sort(&cz.sorter)
	b = append(b, ";a"...)
	for i, p := range cz.segPerm {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, seg[soff[p]:soff[p+1]]...)
	}
	cz.keyBuf = b // canonTask below reuses segBuf; keep the key safe first

	// constraint serializations as sortable segments
	seg = seg[:0]
	soff = soff[:1]
	for i := range cz.cons {
		c := &cz.cons[i]
		seg = append(seg, 'k')
		seg = strconv.AppendInt(seg, int64(c.kind), 10)
		seg = append(seg, ";p"...)
		seg = strconv.AppendInt(seg, int64(c.period), 10)
		seg = append(seg, ";d"...)
		seg = strconv.AppendInt(seg, int64(c.deadline), 10)
		seg = append(seg, ";t"...)
		seg = append(seg, cz.canonTask(c, col)...)
		soff = append(soff, len(seg))
	}
	cz.segBuf, cz.segOff = seg, soff
	cz.segPerm = identityPerm(cz.segPerm, len(soff)-1)
	cz.sorter = segSorter{buf: seg, off: soff, perm: cz.segPerm}
	sort.Sort(&cz.sorter)
	b = cz.keyBuf
	b = append(b, ";C{"...)
	for i, p := range cz.segPerm {
		if i > 0 {
			b = append(b, '|')
		}
		b = append(b, seg[soff[p]:soff[p+1]]...)
	}
	b = append(b, '}')
	cz.keyBuf = b

	if !cz.haveBest || bytes.Compare(b, cz.bestKey) < 0 {
		cz.haveBest = true
		cz.bestKey = append(cz.bestKey[:0], b...)
		cz.bestOrder = append(cz.bestOrder[:0], col...)
	}
}

// canonTask canonizes one task graph given fixed element labels. The
// same individualization–refinement scheme runs over the task nodes,
// whose initial colors are the canonical indices of the elements they
// execute; task graphs are tiny, so the search is cheap. The returned
// slice is valid until the next canonTask call.
func (cz *canonizer) canonTask(c *canonCons, elemCol []int) []byte {
	n := len(c.nodes)
	col := make([]int, n)
	for i, nd := range c.nodes {
		if nd.elem < 0 {
			col[i] = -2
		} else {
			col[i] = elemCol[nd.elem]
		}
	}
	cz.tHave = false
	cz.tBest = cz.tBest[:0]
	cz.taskSearch(c, elemCol, col)
	return cz.tBest
}

func (cz *canonizer) taskSearch(c *canonCons, elemCol []int, col []int) {
	cz.taskRefine(c, col)
	cell := cz.firstNonSingleton(col)
	if cell < 0 {
		cz.taskSerialize(c, col, elemCol)
		return
	}
	for i := range col {
		if col[i] != cell {
			continue
		}
		next := make([]int, len(col))
		copy(next, col)
		next[i] = -3
		cz.taskSearch(c, elemCol, next)
	}
}

func (cz *canonizer) taskRefine(c *canonCons, col []int) {
	cur := cz.distinct(col)
	for {
		buf := cz.tSigBuf[:0]
		off := append(cz.tSigOff[:0], 0)
		for i := range col {
			nd := &c.nodes[i]
			buf = append(buf, 'c')
			buf = strconv.AppendInt(buf, int64(col[i]), 10)
			buf = cz.appendNodeColorSet(buf, "|a", col, nd.pred)
			buf = cz.appendNodeColorSet(buf, "|b", col, nd.succ)
			off = append(off, len(buf))
		}
		cz.tSigBuf, cz.tSigOff = buf, off
		next := cz.rankTaskInto(buf, off, col)
		if next == cur {
			return
		}
		cur = next
	}
}

// appendNodeColorSet is appendColorSet over task-node indices (which
// are never negative) under a node coloring.
func (cz *canonizer) appendNodeColorSet(dst []byte, tag string, col []int, nodes []int) []byte {
	t := cz.setTmp[:0]
	for _, n := range nodes {
		t = append(t, col[n])
	}
	cz.setTmp = t
	return appendSortedInts(dst, tag, t)
}

// rankTaskInto is rankInto over the task scratch permutation.
func (cz *canonizer) rankTaskInto(buf []byte, off []int, col []int) int {
	n := len(col)
	if n == 0 {
		return 0
	}
	cz.tPerm = identityPerm(cz.tPerm, n)
	cz.sorter = segSorter{buf: buf, off: off, perm: cz.tPerm}
	sort.Sort(&cz.sorter)
	rank := 0
	prev := cz.tPerm[0]
	col[prev] = 0
	for _, p := range cz.tPerm[1:] {
		if !bytes.Equal(buf[off[p]:off[p+1]], buf[off[prev]:off[prev+1]]) {
			rank++
		}
		col[p] = rank
		prev = p
	}
	return rank + 1
}

func (cz *canonizer) taskSerialize(c *canonCons, col, elemCol []int) {
	cz.tInv = growInts(cz.tInv, len(col))
	for i, r := range col {
		cz.tInv[r] = i
	}
	b := cz.tKeyBuf[:0]
	for r, i := range cz.tInv {
		if r > 0 {
			b = append(b, ',')
		}
		if e := c.nodes[i].elem; e < 0 {
			b = append(b, '?')
		} else {
			b = strconv.AppendInt(b, int64(elemCol[e]), 10)
		}
	}
	// edges as sortable "from>to" segments over node colors; the task
	// scratch buffers are free again here (taskRefine is done)
	seg := cz.tSigBuf[:0]
	soff := append(cz.tSigOff[:0], 0)
	for i, nd := range c.nodes {
		for _, s := range nd.succ {
			seg = strconv.AppendInt(seg, int64(col[i]), 10)
			seg = append(seg, '>')
			seg = strconv.AppendInt(seg, int64(col[s]), 10)
			soff = append(soff, len(seg))
		}
	}
	cz.tSigBuf, cz.tSigOff = seg, soff
	cz.tPerm = identityPerm(cz.tPerm, len(soff)-1)
	cz.sorter = segSorter{buf: seg, off: soff, perm: cz.tPerm}
	sort.Sort(&cz.sorter)
	b = append(b, '/')
	for i, p := range cz.tPerm {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, seg[soff[p]:soff[p+1]]...)
	}
	cz.tKeyBuf = b

	if !cz.tHave || bytes.Compare(b, cz.tBest) < 0 {
		cz.tHave = true
		cz.tBest = append(cz.tBest[:0], b...)
	}
}
