package exact

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
	"rtm/internal/workload"
)

// equivalenceSuite is a mix of feasible and infeasible models across
// every searcher feature: async-only, periodic, weighted elements,
// contiguity restriction, chains.
func equivalenceSuite() []struct {
	name string
	m    *core.Model
	opt  Options
} {
	var out []struct {
		name string
		m    *core.Model
		opt  Options
	}
	add := func(name string, m *core.Model, opt Options) {
		out = append(out, struct {
			name string
			m    *core.Model
			opt  Options
		}{name, m, opt})
	}

	add("single-op", asyncModel(asyncChain("A", 2, "a")), Options{MaxLen: 4})
	add("two-ops", asyncModel(asyncChain("A", 3, "a"), asyncChain("B", 3, "b")), Options{MaxLen: 6})
	add("chain", asyncModel(asyncChain("A", 4, "a", "b")), Options{MaxLen: 4})
	add("infeasible-tight", asyncModel(
		asyncChain("A", 2, "a"), asyncChain("B", 2, "b"), asyncChain("C", 2, "c"),
	), Options{MaxLen: 6})
	add("infeasible-density-1", asyncModel(
		asyncChain("A", 2, "a"), asyncChain("B", 3, "b"), asyncChain("C", 6, "c"),
	), Options{MaxLen: 12})
	add("feasible-density-1", asyncModel(
		asyncChain("A", 2, "a"), asyncChain("B", 6, "b"),
		asyncChain("C", 6, "c"), asyncChain("D", 6, "d"),
	), Options{MaxLen: 6})

	periodic := core.NewModel()
	periodic.Comm.AddElement("p", 1)
	periodic.Comm.AddElement("q", 1)
	periodic.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("p"),
		Period: 2, Deadline: 2, Kind: core.Periodic,
	})
	periodic.AddConstraint(&core.Constraint{
		Name: "Q", Task: core.ChainTask("q"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	add("periodic-mix", periodic, Options{MaxLen: 4})

	weighted := core.NewModel()
	weighted.Comm.AddElement("a", 2)
	weighted.Comm.AddElement("b", 1)
	weighted.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 8, Deadline: 8, Kind: core.Asynchronous,
	})
	weighted.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	add("contiguous", weighted, Options{MaxLen: 6, RequireContiguous: true})
	add("pipelined", weighted.Clone(), Options{MaxLen: 6})

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6; i++ {
		n := 2 + rng.Intn(4)
		m := workload.AsyncOnly(rng, n, 0.5+0.1*float64(rng.Intn(5)))
		add(fmt.Sprintf("random-%d", i), m, Options{MaxLen: 6})
	}
	return out
}

// prunersOff disables all three PR-5 pruners, which restores the seed
// engine bit-for-bit (schedule, Stats, visiting order).
func prunersOff(opt Options) Options {
	opt.DisableSymmetry = true
	opt.DisableMemo = true
	opt.DisableBounds = true
	return opt
}

// TestSequentialMatchesReference pins the rewritten sequential search
// to the seed implementation bit-for-bit: same schedule, same Stats.
// The pruners are disabled here — that is the documented bit-for-bit
// regime; prune_test.go pins the pruners-on verdict/witness parity.
func TestSequentialMatchesReference(t *testing.T) {
	for _, tc := range equivalenceSuite() {
		refS, refSt, refErr := refFindSchedule(tc.m, tc.opt)

		for _, workers := range []int{0, 1} {
			opt := prunersOff(tc.opt)
			opt.Workers = workers
			s, st, err := FindSchedule(tc.m, opt)
			if !errors.Is(err, refErr) && (err == nil) != (refErr == nil) {
				t.Fatalf("%s workers=%d: err = %v, reference = %v", tc.name, workers, err, refErr)
			}
			if (s == nil) != (refS == nil) {
				t.Fatalf("%s workers=%d: schedule %v, reference %v", tc.name, workers, s, refS)
			}
			if s != nil && !s.Equal(refS) {
				t.Fatalf("%s workers=%d: schedule %v, reference %v", tc.name, workers, s, refS)
			}
			if st.NodesExplored != refSt.NodesExplored || st.Candidates != refSt.Candidates {
				t.Fatalf("%s workers=%d: stats %+v, reference %+v", tc.name, workers, st, refSt)
			}
			if st.PrunedBySymmetry != 0 || st.PrunedByMemo != 0 || st.PrunedByBound != 0 {
				t.Fatalf("%s workers=%d: pruner counters nonzero with pruners off: %+v", tc.name, workers, st)
			}
			if len(st.LengthsTried) != len(refSt.LengthsTried) {
				t.Fatalf("%s workers=%d: lengths %v, reference %v", tc.name, workers, st.LengthsTried, refSt.LengthsTried)
			}
		}
	}
}

// TestParallelDeterminism asserts that the parallel search returns
// exactly the sequential search's schedule — the lexicographically
// first feasible one — on feasible and infeasible models alike. Run
// in CI under `go test -race` (see the Makefile race target).
func TestParallelDeterminism(t *testing.T) {
	for _, tc := range equivalenceSuite() {
		seq := tc.opt
		seq.Workers = 1
		wantS, _, wantErr := FindSchedule(tc.m, seq)

		for _, workers := range []int{2, 8} {
			for _, depth := range []int{0, 1, 2} {
				opt := tc.opt
				opt.Workers = workers
				opt.SplitDepth = depth
				// repeat to shake out scheduling races
				for rep := 0; rep < 3; rep++ {
					s, st, err := FindSchedule(tc.m, opt)
					if (err == nil) != (wantErr == nil) || (err != nil && !errors.Is(err, wantErr)) {
						t.Fatalf("%s workers=%d depth=%d: err = %v, sequential = %v",
							tc.name, workers, depth, err, wantErr)
					}
					if (s == nil) != (wantS == nil) || (s != nil && !s.Equal(wantS)) {
						t.Fatalf("%s workers=%d depth=%d: schedule %v, sequential %v",
							tc.name, workers, depth, s, wantS)
					}
					if s == nil && err == nil {
						t.Fatalf("%s workers=%d depth=%d: nil schedule with nil error", tc.name, workers, depth)
					}
					if wantS != nil && st.Candidates == 0 && st.NodesExplored == 0 {
						t.Fatalf("%s workers=%d depth=%d: empty stats %+v", tc.name, workers, depth, st)
					}
				}
			}
		}
	}
}

// TestParallelFoundScheduleIsVerified double-checks every parallel
// result against the independent Analyzer path.
func TestParallelFoundScheduleIsVerified(t *testing.T) {
	for _, tc := range equivalenceSuite() {
		opt := tc.opt
		opt.Workers = 4
		s, _, err := FindSchedule(tc.m, opt)
		if err != nil {
			continue
		}
		if !sched.Feasible(tc.m, s) {
			t.Fatalf("%s: parallel search returned infeasible schedule %v", tc.name, s)
		}
		if tc.opt.RequireContiguous && !sched.Contiguous(tc.m.Comm, s) {
			t.Fatalf("%s: parallel search returned preempted schedule %v", tc.name, s)
		}
	}
}

// TestFeasibleBudgetContract is the ErrBudget regression test: with
// MaxCandidates: 1 on an instance whose space holds more than one
// candidate, the bool path alone would be indistinguishable from a
// proof of infeasibility — the error must say ErrBudget.
func TestFeasibleBudgetContract(t *testing.T) {
	// A two-op chain under a deadline shorter than its span: infeasible,
	// yet the window prunes admit the alternating candidates (one per
	// even length), so the budget is actually consumed.
	m := asyncModel(asyncChain("A", 2, "a", "b"))

	// proof of infeasibility: false with a nil error
	ok, _, err := FeasibleOpt(m, Options{MaxLen: 6})
	if err != nil || ok {
		t.Fatalf("unbudgeted: ok=%v err=%v, want false/nil", ok, err)
	}

	// budget abort: false with ErrBudget, NOT a proof
	ok, st, err := FeasibleOpt(m, Options{MaxLen: 6, MaxCandidates: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budgeted: err = %v, want ErrBudget", err)
	}
	if ok {
		t.Fatal("budgeted: ok must be false when the budget aborts")
	}
	if st == nil || st.Candidates < 1 {
		t.Fatalf("budgeted: stats %+v", st)
	}

	// the parallel path honors the same contract
	ok, _, err = FeasibleOpt(m, Options{MaxLen: 6, MaxCandidates: 1, Workers: 4})
	if !errors.Is(err, ErrBudget) || ok {
		t.Fatalf("parallel budgeted: ok=%v err=%v, want false/ErrBudget", ok, err)
	}

	// Feasible (the maxLen shorthand) still proves infeasibility
	ok, _, err = Feasible(m, 6)
	if err != nil || ok {
		t.Fatalf("Feasible: ok=%v err=%v", ok, err)
	}
}

// TestParallelStatsAccounting asserts the atomic merge loses no
// counts on an exhaustive (infeasible) search with no cancellation:
// every worker explores its whole subtree, so the total must equal
// the sequential count exactly.
func TestParallelStatsAccounting(t *testing.T) {
	m := asyncModel(
		asyncChain("A", 2, "a"),
		asyncChain("B", 3, "b"),
		asyncChain("C", 6, "c"),
	)
	// pruners off: the shared memo table makes parallel node counts
	// timing-dependent (a hit in one run is a miss in the next), so
	// exact equality only holds on the seed engine
	opt := prunersOff(Options{MaxLen: 10})
	_, seqSt, err := FindSchedule(m, opt)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	opt.Workers = 8
	for rep := 0; rep < 3; rep++ {
		_, st, err := FindSchedule(m, opt)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("parallel err = %v", err)
		}
		if st.NodesExplored != seqSt.NodesExplored || st.Candidates != seqSt.Candidates {
			t.Fatalf("exhaustive stats diverged: parallel %+v, sequential %+v", st, seqSt)
		}
	}
}

// TestNegativeOptionsRejected pins the validation contract: negative
// Workers and SplitDepth are rejected with a typed error rather than
// silently clamped — callers wanting "all CPUs" resolve GOMAXPROCS
// themselves (cmd/rtserved and cmd/rtsynth do).
func TestNegativeOptionsRejected(t *testing.T) {
	m := asyncModel(asyncChain("A", 2, "a"))
	cases := []struct {
		opt   Options
		field string
	}{
		{Options{MaxLen: 4, Workers: -1}, "Workers"},
		{Options{MaxLen: 4, SplitDepth: -2}, "SplitDepth"},
		{Options{MaxLen: 0}, "MaxLen"},
	}
	for _, tc := range cases {
		s, st, err := FindSchedule(m, tc.opt)
		if s != nil || st != nil {
			t.Fatalf("%s: got schedule %v stats %v on invalid options", tc.field, s, st)
		}
		var bad *BadOptionsError
		if !errors.As(err, &bad) {
			t.Fatalf("%s: err = %v, want BadOptionsError", tc.field, err)
		}
		if bad.Field != tc.field {
			t.Fatalf("field = %q, want %q (err %v)", bad.Field, tc.field, err)
		}
	}
}
