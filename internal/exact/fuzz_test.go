package exact

import (
	"errors"
	"math/rand"
	"testing"

	"rtm/internal/sched"
	"rtm/internal/workload"
)

// FuzzExactPruned is the differential fuzz target for PR 5: the
// pruning engine against the vendored seed oracle on random models.
// The pruners must be invisible in the results — identical error
// class, identical lex-first witness — on every generated instance.
func FuzzExactPruned(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(1), false)
	f.Add(int64(42), uint8(4), uint8(3), uint8(2), false)
	f.Add(int64(7), uint8(3), uint8(2), uint8(1), true)
	f.Add(int64(99), uint8(5), uint8(4), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, elems, cons, chain uint8, contig bool) {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Params{
			Elements:    1 + int(elems%5),
			MaxWeight:   2,
			EdgeProb:    0.5,
			Constraints: 1 + int(cons%4),
			ChainLen:    1 + int(chain%3),
			AsyncFrac:   0.5,
			TargetUtil:  0.6,
		}
		m, err := workload.Random(rng, p)
		if err != nil {
			t.Skip()
		}
		opt := Options{MaxLen: 6, RequireContiguous: contig}

		refS, _, refErr := refFindSchedule(m, opt)
		s, st, err := FindSchedule(m, opt)

		if (err == nil) != (refErr == nil) || (err != nil && !errors.Is(err, refErr)) {
			t.Fatalf("verdict diverged: pruned err = %v, reference = %v (model %v)", err, refErr, m)
		}
		if (s == nil) != (refS == nil) {
			t.Fatalf("witness diverged: pruned %v, reference %v", s, refS)
		}
		if s != nil {
			if !s.Equal(refS) {
				t.Fatalf("lex-first witness diverged: pruned %v, reference %v", s, refS)
			}
			if !sched.Feasible(m, s) {
				t.Fatalf("pruned witness fails the independent checker: %v", s)
			}
			if contig && !sched.Contiguous(m.Comm, s) {
				t.Fatalf("pruned witness is preempted: %v", s)
			}
		}
		if refErr == nil || errors.Is(refErr, ErrNotFound) {
			// decided instances: the pruned engine may not explore more
			_, refSt, _ := refFindSchedule(m, opt)
			if st.NodesExplored > refSt.NodesExplored {
				t.Fatalf("pruned search explored more nodes: %d > %d", st.NodesExplored, refSt.NodesExplored)
			}
		}
	})
}
