// Package exact decides feasibility of a graph-based model by
// exhaustive search over static schedules. It realizes the paper's
// Theorem 1 (a feasible static schedule, when one exists, is finite
// and can be found in finite time) and serves as the exact comparator
// for the NP-hardness constructions of Theorem 2, whose exponential
// cost it exhibits empirically.
//
// The search is iterative deepening over the schedule length with
// three prunes: a rotation symmetry break, per-element capacity lower
// bounds derived from the deadline windows, and incremental window
// checks that reject a prefix as soon as some fully-determined
// deadline window lacks capacity for a constraint.
package exact

import (
	"errors"
	"fmt"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// Options tune the search.
type Options struct {
	// MinLen and MaxLen bound the schedule lengths tried. MinLen
	// defaults to 1. MaxLen must be positive.
	MinLen, MaxLen int
	// MaxCandidates aborts the search after this many complete
	// candidate schedules have been feasibility-checked (0 = no
	// limit).
	MaxCandidates int
	// RequireContiguous restricts the search to schedules whose
	// executions are unpreempted blocks — the "cannot be pipelined"
	// regime of Theorem 2(ii).
	RequireContiguous bool
}

// Stats reports search effort.
type Stats struct {
	NodesExplored int // partial assignments visited
	Candidates    int // complete schedules feasibility-checked
	LengthsTried  []int
}

// ErrBudget is returned when MaxCandidates is exhausted before the
// search space is.
var ErrBudget = errors.New("exact: candidate budget exhausted")

// ErrNotFound is returned when no feasible schedule of length at most
// MaxLen exists.
var ErrNotFound = errors.New("exact: no feasible static schedule within length bound")

// FindSchedule searches for a feasible static schedule. On success it
// returns the first schedule found (in canonical rotation) together
// with search statistics. It returns ErrNotFound (with stats) when
// the bounded space is exhausted, or ErrBudget when the candidate
// budget runs out.
func FindSchedule(m *core.Model, opt Options) (*sched.Schedule, *Stats, error) {
	if opt.MaxLen <= 0 {
		return nil, nil, fmt.Errorf("exact: MaxLen must be positive, got %d", opt.MaxLen)
	}
	minLen := opt.MinLen
	if minLen < 1 {
		minLen = 1
	}
	st := &Stats{}
	alphabet := append([]string{sched.Idle}, m.ElementsUsed()...)
	for n := minLen; n <= opt.MaxLen; n++ {
		st.LengthsTried = append(st.LengthsTried, n)
		s, err := searchLength(m, n, alphabet, opt, st)
		if err != nil {
			return nil, st, err
		}
		if s != nil {
			return s, st, nil
		}
	}
	return nil, st, ErrNotFound
}

// Feasible reports whether some static schedule of length ≤ maxLen
// meets every constraint. The stats are returned alongside.
func Feasible(m *core.Model, maxLen int) (bool, *Stats, error) {
	s, st, err := FindSchedule(m, Options{MaxLen: maxLen})
	if errors.Is(err, ErrNotFound) {
		return false, st, nil
	}
	if err != nil {
		return false, st, err
	}
	return s != nil, st, nil
}

// windowNeed holds the per-element slot demand a single deadline
// window must satisfy for one constraint (a necessary condition:
// element counts inside every window of length d must reach the task
// graph's per-element weight demand). Asynchronous constraints have
// sliding windows (period 0 here); periodic constraints with d ≤ p
// have disjoint windows anchored at multiples of p.
type windowNeed struct {
	d      int
	period int // 0 = sliding (asynchronous)
	need   map[string]int
}

func demandOf(m *core.Model, c *core.Constraint) map[string]int {
	need := make(map[string]int)
	for _, node := range c.Task.Nodes() {
		e := c.Task.ElementOf(node)
		need[e] += m.Comm.WeightOf(e)
	}
	return need
}

func windowNeeds(m *core.Model) []windowNeed {
	var out []windowNeed
	for _, c := range m.Constraints {
		switch c.Kind {
		case core.Asynchronous:
			out = append(out, windowNeed{d: c.Deadline, need: demandOf(m, c)})
		case core.Periodic:
			if c.Deadline <= c.Period {
				out = append(out, windowNeed{d: c.Deadline, period: c.Period, need: demandOf(m, c)})
			}
		}
	}
	return out
}

func searchLength(m *core.Model, n int, alphabet []string, opt Options, st *Stats) (*sched.Schedule, error) {
	// Capacity lower bounds. An async constraint with deadline d
	// forces count_e * d ≥ n * need_e over the cycle (each of the n
	// cyclic windows of length d needs need_e slots of e, and each
	// slot covers d windows). A periodic constraint with d ≤ p has
	// disjoint invocation windows needing distinct slots, so over the
	// alignment lcm(n, p) it forces count_e ≥ need_e · n/p.
	needs := windowNeeds(m)
	minCount := make(map[string]int)
	for _, wn := range needs {
		for e, k := range wn.need {
			var lb int
			if wn.period == 0 {
				lb = ceilDiv(n*k, wn.d)
			} else {
				lb = ceilDiv(n*k, wn.period)
			}
			if lb > minCount[e] {
				minCount[e] = lb
			}
		}
	}
	totalMin := 0
	for _, v := range minCount {
		totalMin += v
	}
	if totalMin > n {
		return nil, nil // capacity bound already unsatisfiable at this length
	}

	slots := make([]string, n)
	count := make(map[string]int)
	var found *sched.Schedule
	// Feasibility is rotation-invariant only when every constraint is
	// asynchronous (periodic invocations are phase-locked to t = 0),
	// so the rotation symmetry break applies only then.
	breakRotations := len(m.Periodic()) == 0

	var rec func(pos int) error
	rec = func(pos int) error {
		if found != nil {
			return nil
		}
		st.NodesExplored++
		if pos == n {
			st.Candidates++
			if opt.MaxCandidates > 0 && st.Candidates > opt.MaxCandidates {
				return ErrBudget
			}
			cand := sched.New(slots...)
			if opt.RequireContiguous && !sched.Contiguous(m.Comm, cand) {
				return nil
			}
			if sched.Feasible(m, cand) {
				found = cand
			}
			return nil
		}
		for _, sym := range alphabet {
			// symmetry break: the minimal rotation of any string
			// begins with its minimal symbol, so every later slot
			// may be required to be ≥ the first (idle "" sorts
			// first). Each rotation class keeps a representative.
			if breakRotations && pos > 0 && sym < slots[0] {
				continue
			}
			slots[pos] = sym
			if sym != sched.Idle {
				count[sym]++
			}
			if pruneOK(m, slots, pos, n, count, minCount, needs) &&
				(!opt.RequireContiguous || contiguousPrefixOK(m, slots, pos)) {
				if err := rec(pos + 1); err != nil {
					return err
				}
			}
			if sym != sched.Idle {
				count[sym]--
			}
			if found != nil {
				return nil
			}
		}
		slots[pos] = sched.Idle
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

// pruneOK applies incremental necessary conditions after slots[pos]
// has been placed. It returns false when the prefix can no longer be
// extended to a feasible schedule.
func pruneOK(m *core.Model, slots []string, pos, n int, count, minCount map[string]int, needs []windowNeed) bool {
	// remaining capacity must allow reaching every minimum count
	remaining := n - pos - 1
	deficit := 0
	for e, lb := range minCount {
		if d := lb - count[e]; d > 0 {
			deficit += d
		}
	}
	if deficit > remaining {
		return false
	}
	// Fully-determined deadline windows inside the prefix must carry
	// enough capacity. For asynchronous constraints every window of
	// length d ending at pos+1 applies; for periodic constraints only
	// the anchored windows [jp, jp+d) do.
	for _, wn := range needs {
		if wn.d > n {
			continue // window wraps; checked at the leaf
		}
		var lo int
		if wn.period == 0 {
			if pos+1 < wn.d {
				continue
			}
			lo = pos + 1 - wn.d
		} else {
			// the anchored window newly completed at pos+1, if any
			if (pos+1-wn.d)%wn.period != 0 || pos+1 < wn.d {
				continue
			}
			lo = pos + 1 - wn.d
		}
		for e, k := range wn.need {
			c := 0
			for i := lo; i <= pos; i++ {
				if slots[i] == e {
					c++
				}
			}
			if c < k {
				return false
			}
		}
	}
	return true
}

// contiguousPrefixOK prunes prefixes that already break contiguity:
// placing a different symbol at pos interrupts the run ending at
// pos−1, which is only legal when that run is a whole number of
// executions. A run touching slot 0 is exempt (it may be the wrapped
// tail of the cycle's final execution; the leaf check decides).
func contiguousPrefixOK(m *core.Model, slots []string, pos int) bool {
	if pos == 0 {
		return true
	}
	prev := slots[pos-1]
	if prev == slots[pos] || prev == sched.Idle {
		return true
	}
	w := m.Comm.WeightOf(prev)
	if w <= 1 {
		return true
	}
	run := 0
	i := pos - 1
	for ; i >= 0 && slots[i] == prev; i-- {
		run++
	}
	if i < 0 {
		return true // run reaches slot 0: may wrap
	}
	return run%w == 0
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
