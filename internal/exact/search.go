// Package exact decides feasibility of a graph-based model by
// exhaustive search over static schedules. It realizes the paper's
// Theorem 1 (a feasible static schedule, when one exists, is finite
// and can be found in finite time) and serves as the exact comparator
// for the NP-hardness constructions of Theorem 2, whose exponential
// cost it exhibits empirically.
//
// The search is iterative deepening over the schedule length with
// three prunes: a rotation symmetry break, per-element capacity lower
// bounds derived from the deadline windows, and incremental window
// checks — rolling per-window, per-element counters updated in O(1)
// per placement — that reject a prefix as soon as some
// fully-determined deadline window lacks capacity for a constraint.
//
// With Options.Workers > 1 each schedule length is explored by a
// worker pool over a prefix fan-out (see parallel.go). The result is
// deterministic — the lexicographically first feasible schedule wins,
// matching the sequential visiting order — although the Stats then
// depend on how much speculative work ran before cancellation.
package exact

import (
	"context"
	"errors"
	"fmt"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// Options tune the search.
type Options struct {
	// MinLen and MaxLen bound the schedule lengths tried. MinLen
	// defaults to 1. MaxLen must be positive.
	MinLen, MaxLen int
	// MaxCandidates aborts the search after this many complete
	// candidate schedules have been feasibility-checked (0 = no
	// limit). The abort surfaces as ErrBudget.
	MaxCandidates int
	// RequireContiguous restricts the search to schedules whose
	// executions are unpreempted blocks — the "cannot be pipelined"
	// regime of Theorem 2(ii).
	RequireContiguous bool
	// Workers sets the number of parallel search workers per schedule
	// length. 0 and 1 run the classic sequential search, whose
	// schedule AND Stats are deterministic. Values > 1 fan the search
	// out over that many goroutines; the returned schedule is still
	// deterministic (lexicographically first), but NodesExplored and
	// Candidates then count whatever speculative work ran before
	// cancellation, and a budget abort (MaxCandidates) may trigger on
	// a different candidate than the sequential order would. Negative
	// values mean GOMAXPROCS.
	Workers int
	// SplitDepth overrides the prefix depth of the parallel fan-out.
	// 0 picks the smallest depth whose prefix count is at least
	// 4 × Workers. Ignored when the search runs sequentially.
	SplitDepth int
	// The three pruners (DESIGN.md §10) are ON by default; each can
	// be disabled independently. All of them preserve the verdict and
	// the lex-first witness exactly; with all three disabled the
	// search is bit-for-bit the seed engine, Stats included.
	DisableSymmetry bool // orbit symmetry breaking
	DisableMemo     bool // dominance memoization (transposition table)
	DisableBounds   bool // demand-bound cuts
	// MemoEntries bounds the transposition table (0 = default 2^18
	// entries; negative disables memoization like DisableMemo).
	MemoEntries int
	// MemoPerWorker switches the parallel search from one shared
	// striped-lock table to per-worker tables merged at each length
	// barrier (no lock contention, less sharing). Ignored when
	// Workers ≤ 1.
	MemoPerWorker bool
	// SeedMemo pre-loads the transposition table with signatures
	// exported by a previous search (Stats.MemoSnapshot) of a problem
	// in the same memo class (MemoKey). Seeding is verdict-invisible
	// by the memo soundness contract: a signature matching no
	// reachable residual state is simply never probed, so corrupt or
	// foreign seeds cost memory, never correctness. Ignored when
	// memoization is off.
	SeedMemo [][]byte
	// SnapshotMemo asks the search to export the refutations it
	// derived (Stats.MemoSnapshot) when it returns — including on
	// ErrNotFound, whose snapshot is the valuable one: the complete
	// refutation of every length tried.
	SnapshotMemo bool
}

// BadOptionsError reports an Options field whose value is invalid.
type BadOptionsError struct {
	Field string
	Value int
}

func (e *BadOptionsError) Error() string {
	return fmt.Sprintf("exact: invalid Options.%s: %d", e.Field, e.Value)
}

// validate rejects malformed options with a typed error. Negative
// Workers and SplitDepth are rejected rather than silently clamped:
// callers that want "all CPUs" must resolve GOMAXPROCS themselves.
func (opt Options) validate() error {
	if opt.MaxLen <= 0 {
		return &BadOptionsError{Field: "MaxLen", Value: opt.MaxLen}
	}
	if opt.Workers < 0 {
		return &BadOptionsError{Field: "Workers", Value: opt.Workers}
	}
	if opt.SplitDepth < 0 {
		return &BadOptionsError{Field: "SplitDepth", Value: opt.SplitDepth}
	}
	return nil
}

// Stats reports search effort. The three pruner counters are exact
// and deterministic when Workers ≤ 1; under a parallel search they
// are lower bounds (speculative subtrees may be cancelled before
// their cuts are tallied, and the shared memo table makes hit counts
// timing-dependent).
type Stats struct {
	NodesExplored int // partial assignments visited
	Candidates    int // complete schedules feasibility-checked
	LengthsTried  []int

	PrunedBySymmetry int // placements skipped by the orbit symmetry break
	PrunedByMemo     int // subtrees skipped by refutations derived this search
	PrunedByBound    int // demand-bound cuts (nodes and whole lengths)

	// MemoSeeded counts the signatures pre-loaded from
	// Options.SeedMemo; PrunedBySeededMemo counts the subtrees those
	// imported refutations cut (disjoint from PrunedByMemo).
	MemoSeeded         int
	PrunedBySeededMemo int
	// MemoSnapshot carries the derived (non-seeded) refutation
	// signatures when Options.SnapshotMemo is set, sorted descending —
	// deepest subtrees first — so truncation under a storage cap keeps
	// the most valuable entries.
	MemoSnapshot [][]byte
}

// ErrBudget is returned when MaxCandidates is exhausted before the
// search space is. A caller seeing ErrBudget knows nothing about
// feasibility: the instance may still admit a schedule the budget cut
// off.
var ErrBudget = errors.New("exact: candidate budget exhausted")

// ErrNotFound is returned when no feasible schedule of length at most
// MaxLen exists.
var ErrNotFound = errors.New("exact: no feasible static schedule within length bound")

// FindSchedule searches for a feasible static schedule. On success it
// returns the first schedule found (in canonical rotation) together
// with search statistics. It returns ErrNotFound (with stats) when
// the bounded space is exhausted, or ErrBudget when the candidate
// budget runs out.
func FindSchedule(m *core.Model, opt Options) (*sched.Schedule, *Stats, error) {
	return FindScheduleCtx(context.Background(), m, opt)
}

// FindScheduleCtx is FindSchedule under a context: the search polls
// ctx between node batches (sequential) and cancels the worker pool
// (parallel) as soon as the context is done, returning ctx.Err()
// alongside whatever stats had accumulated. A canceled search says
// nothing about feasibility — like ErrBudget, the abort is an effort
// limit, not a verdict. This is the per-request cancellation hook the
// scheduling service uses to bound latencies of admitted searches.
func FindScheduleCtx(ctx context.Context, m *core.Model, opt Options) (*sched.Schedule, *Stats, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	minLen := opt.MinLen
	if minLen < 1 {
		minLen = 1
	}
	workers := opt.Workers
	st := &Stats{}
	p := newProblem(m, opt)
	ck, err := sched.NewChecker(m)
	if err != nil {
		return nil, nil, fmt.Errorf("exact: %w", err)
	}
	// The transposition table is shared across the per-length restarts
	// of the iterative deepening: the signature carries every
	// length-dependent component, so a refutation derived at length n
	// prunes the matching residual states at length n+1 for free.
	var mt *memoTable
	if p.memoOK {
		stripes := 1
		if workers > 1 && !p.memoPerWorker {
			stripes = memoStripes
		}
		mt = newMemoTable(p.memoEntries, stripes)
		if len(opt.SeedMemo) > 0 {
			st.MemoSeeded = mt.Seed(opt.SeedMemo)
		}
		if opt.SnapshotMemo {
			// export on every exit path — ErrNotFound carries the
			// complete refutation, but a found schedule or an abort
			// still snapshots whatever was soundly derived
			defer func() { st.MemoSnapshot = mt.Snapshot() }()
		}
	}
	for n := minLen; n <= opt.MaxLen; n++ {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		st.LengthsTried = append(st.LengthsTried, n)
		var s *sched.Schedule
		var err error
		if workers > 1 {
			s, err = searchLengthParallel(ctx, p, n, workers, opt.SplitDepth, mt, st)
		} else {
			s, err = searchLength(ctx, p, n, ck, mt, st)
		}
		if err != nil {
			return nil, st, err
		}
		if s != nil {
			return s, st, nil
		}
	}
	return nil, st, ErrNotFound
}

// Feasible reports whether some static schedule of length ≤ maxLen
// meets every constraint. The stats are returned alongside. It is
// shorthand for FeasibleOpt with only MaxLen set; see FeasibleOpt for
// the error contract.
func Feasible(m *core.Model, maxLen int) (bool, *Stats, error) {
	return FeasibleOpt(m, Options{MaxLen: maxLen})
}

// FeasibleOpt decides feasibility under the full option set. The
// boolean is meaningful only when the error is nil: a false with a
// nil error is a proof of infeasibility within the length bound,
// while a false with ErrBudget merely means MaxCandidates ran out
// mid-search — callers must check errors.Is(err, ErrBudget) before
// treating the result as "infeasible".
func FeasibleOpt(m *core.Model, opt Options) (bool, *Stats, error) {
	s, st, err := FindSchedule(m, opt)
	if errors.Is(err, ErrNotFound) {
		return false, st, nil
	}
	if err != nil {
		return false, st, err
	}
	return s != nil, st, nil
}

// searchLength runs the classic sequential depth-first search at one
// cycle length. Its visiting order — and therefore the schedule found
// and every Stats field — is the determinism reference for the
// parallel fan-out.
func searchLength(ctx context.Context, p *problem, n int, ck *sched.Checker, mt *memoTable, st *Stats) (*sched.Schedule, error) {
	minCount, totalMin := p.minCounts(n)
	if totalMin > n {
		if p.bounds {
			st.PrunedByBound++
		}
		return nil, nil // capacity bound already unsatisfiable at this length
	}
	if p.bounds && p.refuteLength(n, minCount, totalMin) {
		st.PrunedByBound++
		return nil, nil // exact-cover certificate: no descent needed
	}
	s := newState(p, n, minCount, totalMin, ck)
	defer s.releaseSigbuf()
	var found *sched.Schedule

	// rec explores the subtree below pos. leafFree reports that the
	// subtree was exhausted without ever reaching pos == n — the
	// precondition for memoizing it as empty (a leaf check depends on
	// the whole prefix; a prune-driven refutation only on the
	// residual-state signature).
	var rec func(pos int) (bool, error)
	rec = func(pos int) (bool, error) {
		if found != nil {
			return false, nil
		}
		st.NodesExplored++
		if st.NodesExplored&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		if pos == n {
			st.Candidates++
			if p.maxCand > 0 && st.Candidates > p.maxCand {
				return false, ErrBudget
			}
			found = s.leafCheck()
			return false, nil
		}
		memoable := mt != nil && s.memoEligible(pos)
		if memoable {
			switch mt.probe(s.buildSig(pos)) {
			case memoHitDerived:
				st.PrunedByMemo++
				return true, nil
			case memoHitSeeded:
				st.PrunedBySeededMemo++
				return true, nil
			}
		}
		leafFree := true
		for sym := 0; sym < len(p.syms); sym++ {
			// symmetry break: the minimal rotation of any string
			// begins with its minimal symbol, so every later slot
			// may be required to be ≥ the first (idle sorts first).
			// Each rotation class keeps a representative.
			if p.breakRotations && pos > 0 && sym < s.slots[0] {
				continue
			}
			// orbit symmetry break: a symbol whose smaller orbit-mate
			// has not appeared cannot start in the lex-first witness
			if p.orbitPrev != nil {
				if op := p.orbitPrev[sym]; op >= 0 && s.count[op] == 0 {
					st.PrunedBySymmetry++
					continue
				}
			}
			s.place(pos, sym)
			ok := s.pruneOK(pos) && (!p.contiguous || s.contigPrefixOK(pos))
			if ok && p.bounds && !s.boundOK(pos) {
				st.PrunedByBound++
				ok = false
			}
			if ok {
				lf, err := rec(pos + 1)
				if err != nil {
					return false, err
				}
				leafFree = leafFree && lf
			}
			s.unplace(pos, sym)
			if found != nil {
				return false, nil
			}
		}
		s.slots[pos] = 0
		if leafFree && memoable {
			// the state is back to its probe-time value: rebuild the
			// signature (the scratch buffer was clobbered by children)
			mt.store(s.buildSig(pos))
		}
		return leafFree, nil
	}
	if _, err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}
