package exact

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rtm/internal/core"
	"rtm/internal/nphard"
)

// e2TightModel builds the unit-density async deadline-set instances of
// experiment E2: one unit-weight element per deadline, Σ 1/d = 1.
func e2TightModel(ds []int) *core.Model {
	m := core.NewModel()
	for i, d := range ds {
		name := fmt.Sprintf("u%d", i)
		m.Comm.AddElement(name, 1)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	return m
}

// e3Model encodes a 3-PARTITION instance with the experiment E3
// options (fixed length, contiguous, generous candidate budget).
func e3Model(t *testing.T, sizes []int, b int) (*core.Model, Options) {
	t.Helper()
	tp := nphard.ThreePartition{Sizes: sizes, B: b}
	m, err := nphard.EncodeThreePartition(tp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	n := tp.M() * (b + 1)
	return m, Options{MinLen: n, MaxLen: n, RequireContiguous: true, MaxCandidates: 5_000_000}
}

// TestPrunedMatchesReferenceVerdicts is the pruners-ON half of the
// oracle parity contract: on the full equivalence suite the default
// (pruning) engine must return the identical error class, the
// identical lex-first witness, and try the identical lengths as the
// vendored seed oracle. Only the effort stats may differ.
func TestPrunedMatchesReferenceVerdicts(t *testing.T) {
	for _, tc := range equivalenceSuite() {
		refS, refSt, refErr := refFindSchedule(tc.m, tc.opt)
		for _, workers := range []int{0, 1} {
			opt := tc.opt
			opt.Workers = workers
			s, st, err := FindSchedule(tc.m, opt)
			if (err == nil) != (refErr == nil) || (err != nil && !errors.Is(err, refErr)) {
				t.Fatalf("%s workers=%d: err = %v, reference = %v", tc.name, workers, err, refErr)
			}
			if (s == nil) != (refS == nil) || (s != nil && !s.Equal(refS)) {
				t.Fatalf("%s workers=%d: schedule %v, reference %v", tc.name, workers, s, refS)
			}
			if !reflect.DeepEqual(st.LengthsTried, refSt.LengthsTried) {
				t.Fatalf("%s workers=%d: lengths %v, reference %v", tc.name, workers, st.LengthsTried, refSt.LengthsTried)
			}
			if st.NodesExplored > refSt.NodesExplored {
				t.Fatalf("%s workers=%d: pruned search explored MORE nodes: %d > %d",
					tc.name, workers, st.NodesExplored, refSt.NodesExplored)
			}
		}
	}
}

// TestPrunerNodeReduction pins the acceptance criterion: ≥ 5x fewer
// nodes on the refutation-heavy E2 tight rows and the E3 NO row, with
// verdicts unchanged. The E2 infeasible rows are refuted at the root
// by the exact-cover certificate (zero nodes); the E3 NO row is cut
// down by the orbit of its five size-5 items plus the anchored
// in-window bound.
func TestPrunerNodeReduction(t *testing.T) {
	check := func(name string, m *core.Model, opt Options, wantFeasible bool) {
		t.Helper()
		refS, refSt, refErr := refFindSchedule(m, opt)
		if (refErr == nil) != wantFeasible {
			t.Fatalf("%s: reference err = %v, want feasible=%v", name, refErr, wantFeasible)
		}
		s, st, err := FindSchedule(m, opt)
		if (err == nil) != (refErr == nil) || (err != nil && !errors.Is(err, refErr)) {
			t.Fatalf("%s: err = %v, reference = %v", name, err, refErr)
		}
		if (s == nil) != (refS == nil) || (s != nil && !s.Equal(refS)) {
			t.Fatalf("%s: schedule %v, reference %v", name, s, refS)
		}
		if !wantFeasible && 5*st.NodesExplored > refSt.NodesExplored {
			t.Fatalf("%s: nodes %d vs reference %d — less than the required 5x reduction",
				name, st.NodesExplored, refSt.NodesExplored)
		}
		cuts := st.PrunedBySymmetry + st.PrunedByMemo + st.PrunedByBound
		if !wantFeasible && cuts == 0 {
			t.Fatalf("%s: infeasible instance decided with zero pruner cuts: %+v", name, st)
		}
	}

	check("e2-{2,3,6}", e2TightModel([]int{2, 3, 6}), Options{MaxLen: 6}, false)
	check("e2-{2,4,6,12}", e2TightModel([]int{2, 4, 6, 12}), Options{MaxLen: 12}, false)
	check("e2-{2,6,6,6}", e2TightModel([]int{2, 6, 6, 6}), Options{MaxLen: 6}, true)

	m, opt := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	check("e3-NO", m, opt, false)
	m, opt = e3Model(t, []int{6, 5, 5, 6, 5, 5}, 16)
	check("e3-YES", m, opt, true)
}

// TestPrunerStatsDeterministic pins the Workers ≤ 1 determinism of the
// per-pruner counters: two identical runs must agree on every Stats
// field, including the cut tallies.
func TestPrunerStatsDeterministic(t *testing.T) {
	models := []struct {
		name string
		m    *core.Model
		opt  Options
	}{
		{"e2-tight", e2TightModel([]int{2, 3, 6}), Options{MaxLen: 6}},
		{"e2-feasible", e2TightModel([]int{2, 6, 6, 6}), Options{MaxLen: 6}},
	}
	m3, opt3 := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	models = append(models, struct {
		name string
		m    *core.Model
		opt  Options
	}{"e3-NO", m3, opt3})

	for _, tc := range models {
		for _, workers := range []int{0, 1} {
			opt := tc.opt
			opt.Workers = workers
			_, st1, err1 := FindSchedule(tc.m, opt)
			_, st2, err2 := FindSchedule(tc.m, opt)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s workers=%d: errs %v vs %v", tc.name, workers, err1, err2)
			}
			if !reflect.DeepEqual(st1, st2) {
				t.Fatalf("%s workers=%d: stats not deterministic:\n  %+v\n  %+v", tc.name, workers, st1, st2)
			}
		}
	}
}

// TestMemoSharingModes runs the parallel search in both transposition
// table modes (shared striped table vs. per-worker tables with a
// barrier merge) and pins the verdict and witness against the
// sequential search.
func TestMemoSharingModes(t *testing.T) {
	m3, opt3 := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	cases := []struct {
		name string
		m    *core.Model
		opt  Options
	}{
		{"e3-NO", m3, opt3},
		{"e2-feasible", e2TightModel([]int{2, 6, 6, 6}), Options{MaxLen: 6}},
	}
	for _, tc := range cases {
		seq := tc.opt
		seq.Workers = 1
		wantS, _, wantErr := FindSchedule(tc.m, seq)
		for _, perWorker := range []bool{false, true} {
			opt := tc.opt
			opt.Workers = 4
			opt.MemoPerWorker = perWorker
			s, _, err := FindSchedule(tc.m, opt)
			if (err == nil) != (wantErr == nil) || (err != nil && !errors.Is(err, wantErr)) {
				t.Fatalf("%s perWorker=%v: err = %v, sequential = %v", tc.name, perWorker, err, wantErr)
			}
			if (s == nil) != (wantS == nil) || (s != nil && !s.Equal(wantS)) {
				t.Fatalf("%s perWorker=%v: schedule %v, sequential %v", tc.name, perWorker, s, wantS)
			}
		}
	}
}

// TestBudgetContractWithPruners re-runs the documented FeasibleOpt
// ErrBudget contract with every pruner enabled (the default): a budget
// abort must still surface as ErrBudget, never as a silent
// "infeasible".
func TestBudgetContractWithPruners(t *testing.T) {
	m := asyncModel(asyncChain("A", 2, "a", "b"))
	ok, _, err := FeasibleOpt(m, Options{MaxLen: 6})
	if err != nil || ok {
		t.Fatalf("unbudgeted: ok=%v err=%v, want false/nil", ok, err)
	}
	ok, st, err := FeasibleOpt(m, Options{MaxLen: 6, MaxCandidates: 1})
	if !errors.Is(err, ErrBudget) || ok {
		t.Fatalf("budgeted: ok=%v err=%v, want false/ErrBudget", ok, err)
	}
	if st == nil || st.Candidates < 1 {
		t.Fatalf("budgeted: stats %+v", st)
	}
}

// TestDisableFlagsIndependent exercises each pruner alone: disabling
// any two must leave the third still sound (same verdicts as the
// oracle on a refutation-heavy instance).
func TestDisableFlagsIndependent(t *testing.T) {
	m := e2TightModel([]int{2, 3, 6})
	base := Options{MaxLen: 6}
	_, _, refErr := refFindSchedule(m, base)
	if !errors.Is(refErr, ErrNotFound) {
		t.Fatalf("reference: %v", refErr)
	}
	for mask := 0; mask < 8; mask++ {
		opt := base
		opt.DisableSymmetry = mask&1 != 0
		opt.DisableMemo = mask&2 != 0
		opt.DisableBounds = mask&4 != 0
		_, _, err := FindSchedule(m, opt)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("mask=%03b: err = %v, want ErrNotFound", mask, err)
		}
	}
}
