package exact

import (
	"errors"
	"fmt"
	"testing"

	"rtm/internal/core"
	"rtm/internal/nphard"
)

// hardnessInstance is the deadline-density-1 infeasible instance the
// worker-sweep benchmark at the repo root uses: every length up to 24
// must be exhausted, so the run prices pure search throughput.
func hardnessInstance() *core.Model {
	m := core.NewModel()
	for i, d := range []int{2, 4, 8, 12, 24} {
		e := fmt.Sprintf("e%d", i)
		m.Comm.AddElement(e, 1)
		m.AddConstraint(&core.Constraint{
			Name: fmt.Sprintf("C%d", i), Task: core.ChainTask(e),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	return m
}

// BenchmarkSearchSeed prices the vendored seed implementation
// (string-keyed state, per-slot window rescans, Analyzer re-derived
// per candidate) on the hardness instance.
func BenchmarkSearchSeed(b *testing.B) {
	m := hardnessInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := refFindSchedule(m, Options{MaxLen: 24})
		if !errors.Is(err, ErrNotFound) {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchRewritten prices the rewritten sequential engine
// (index-based state, O(1) incremental window counters, reused
// Checker) on the same instance. Node and candidate counts are pinned
// equal to the seed's by TestSequentialMatchesReference.
func BenchmarkSearchRewritten(b *testing.B) {
	m := hardnessInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := FindSchedule(m, Options{MaxLen: 24})
		if !errors.Is(err, ErrNotFound) {
			b.Fatal(err)
		}
	}
}

// e3Sigs solves the E3 NO row once and returns its real memo
// signatures — benchmark inputs with production sizes and contents.
func e3Sigs(b *testing.B) [][]byte {
	b.Helper()
	m, opt := e3BenchModel(b, []int{7, 5, 5, 5, 5, 5}, 16)
	opt.SnapshotMemo = true
	_, stats, _ := FindSchedule(m, opt)
	if len(stats.MemoSnapshot) == 0 {
		b.Fatal("no signatures to benchmark with")
	}
	return stats.MemoSnapshot
}

// e3BenchModel is e3Model for benchmarks (testing.B has no t.Helper
// pairing with e3Model's *testing.T parameter).
func e3BenchModel(b *testing.B, sizes []int, bound int) (*core.Model, Options) {
	b.Helper()
	tp := nphard.ThreePartition{Sizes: sizes, B: bound}
	m, err := nphard.EncodeThreePartition(tp)
	if err != nil {
		b.Fatalf("encode: %v", err)
	}
	n := tp.M() * (bound + 1)
	return m, Options{MinLen: n, MaxLen: n, RequireContiguous: true, MaxCandidates: 5_000_000}
}

// BenchmarkMemoProbeStore prices the transposition-table hot path in
// isolation: a probe plus a store-if-miss per iteration over real
// signatures. Both map operations ride the compiler's string(sig)
// lookup elision, so the steady state (signature already present) is
// zero allocations — the point of the probe/store perf fix. A
// regression (a []byte→string conversion creeping back in) shows up
// directly in allocs/op.
func BenchmarkMemoProbeStore(b *testing.B) {
	sigs := e3Sigs(b)
	mt := newMemoTable(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := sigs[i%len(sigs)]
		if mt.probe(sig) == memoMiss {
			mt.store(sig)
		}
	}
}

// BenchmarkMemoSeededProbe prices a probe against a seeded set — the
// warm-restart read path. Seeded probes take no locks and must not
// allocate.
func BenchmarkMemoSeededProbe(b *testing.B) {
	sigs := e3Sigs(b)
	mt := newMemoTable(0, 1)
	mt.Seed(sigs)
	sig := sigs[len(sigs)/2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mt.probe(sig) != memoHitSeeded {
			b.Fatal("seeded signature missed")
		}
	}
}

// BenchmarkMemoMergeInto prices the parallel barrier merge: per-worker
// tables union into the survivor as strings (storeString), never
// round-tripping through []byte. Allocations stay bounded by map
// growth, not by entry count × conversions.
func BenchmarkMemoMergeInto(b *testing.B) {
	sigs := e3Sigs(b)
	src := newMemoTable(0, 1)
	for _, sig := range sigs {
		src.store(sig)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := newMemoTable(0, 1)
		src.mergeInto(dst)
	}
}
