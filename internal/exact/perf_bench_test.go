package exact

import (
	"errors"
	"fmt"
	"testing"

	"rtm/internal/core"
)

// hardnessInstance is the deadline-density-1 infeasible instance the
// worker-sweep benchmark at the repo root uses: every length up to 24
// must be exhausted, so the run prices pure search throughput.
func hardnessInstance() *core.Model {
	m := core.NewModel()
	for i, d := range []int{2, 4, 8, 12, 24} {
		e := fmt.Sprintf("e%d", i)
		m.Comm.AddElement(e, 1)
		m.AddConstraint(&core.Constraint{
			Name: fmt.Sprintf("C%d", i), Task: core.ChainTask(e),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	return m
}

// BenchmarkSearchSeed prices the vendored seed implementation
// (string-keyed state, per-slot window rescans, Analyzer re-derived
// per candidate) on the hardness instance.
func BenchmarkSearchSeed(b *testing.B) {
	m := hardnessInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := refFindSchedule(m, Options{MaxLen: 24})
		if !errors.Is(err, ErrNotFound) {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchRewritten prices the rewritten sequential engine
// (index-based state, O(1) incremental window counters, reused
// Checker) on the same instance. Node and candidate counts are pinned
// equal to the seed's by TestSequentialMatchesReference.
func BenchmarkSearchRewritten(b *testing.B) {
	m := hardnessInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := FindSchedule(m, Options{MaxLen: 24})
		if !errors.Is(err, ErrNotFound) {
			b.Fatal(err)
		}
	}
}
