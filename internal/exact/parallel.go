package exact

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"rtm/internal/sched"
)

// Parallel subtree fan-out. One schedule length is explored by
// enumerating every pruned prefix of a small fixed depth in the
// sequential visiting order, then dispatching the prefixes — tagged
// with their position in that order — to a worker pool. Each worker
// finishes the depth-first search below its prefix with its own state
// and Checker.
//
// Determinism: the sequential search returns the first feasible
// schedule in depth-first (= lexicographic) order, so the parallel
// search keeps, per subtree, the subtree's own lex-first hit and lets
// the lowest prefix index win overall. A found schedule cancels only
// subtrees with HIGHER prefix indices (they cannot beat it); lower
// ones run to completion, so the winner is exactly the sequential
// result. Budget aborts (MaxCandidates) cancel everything and are the
// one documented source of nondeterminism under Workers > 1.
//
// The pruners run in the workers too. The memo table is either shared
// (striped locks, every worker probes and stores the same table) or
// per-worker (each worker stores only its own single-stripe table,
// probing it plus the master table — frozen during the length — and
// merging into the master at the end-of-length barrier). Either way
// the per-pruner Stats are lower bounds: cancelled speculative
// subtrees lose their tallies, and memo hits depend on timing.

// pruneTally accumulates one worker's pruner cuts; merged into Stats
// after the pool drains.
type pruneTally struct {
	sym, memo, seeded, bound int64
}

// workerMemo is one worker's view of the transposition table: the
// tables to probe (in order) and the single table it may write.
type workerMemo struct {
	probe []*memoTable
	store *memoTable // nil = memoization off
}

// searchLengthParallel explores one cycle length with the given
// worker count. splitDepth 0 auto-picks the smallest depth whose
// worst-case prefix count reaches 4 × workers.
func searchLengthParallel(ctx context.Context, p *problem, n, workers, splitDepth int, mt *memoTable, st *Stats) (*sched.Schedule, error) {
	minCount, totalMin := p.minCounts(n)
	if totalMin > n {
		if p.bounds {
			st.PrunedByBound++
		}
		return nil, nil // capacity bound already unsatisfiable at this length
	}
	if p.bounds && p.refuteLength(n, minCount, totalMin) {
		st.PrunedByBound++
		return nil, nil // exact-cover certificate: no descent needed
	}
	depth := splitDepth
	if depth <= 0 {
		depth = autoSplitDepth(len(p.syms), n, workers)
	}
	if depth > n-1 {
		depth = n - 1
	}
	if depth < 1 {
		// nothing to fan out (n == 1): the sequential search is exact
		// and cheap.
		ck, err := sched.NewChecker(p.m)
		if err != nil {
			return nil, err
		}
		return searchLength(ctx, p, n, ck, mt, st)
	}

	prefixes, enumNodes := enumPrefixes(p, n, minCount, totalMin, depth, mt, st)
	st.NodesExplored += enumNodes
	if len(prefixes) == 0 {
		return nil, nil
	}

	var (
		stop      atomic.Bool  // budget exhausted: cancel everything
		budgetHit atomic.Bool  //
		candTotal atomic.Int64 // global candidate count (budget is global)
		nodeTotal atomic.Int64 //
		bestIdx   atomic.Int64 // lowest prefix index that found a schedule
		mu        sync.Mutex   // guards best
		best      *sched.Schedule
	)
	bestIdx.Store(math.MaxInt64)
	// the candidate budget spans all lengths tried, so the counter
	// continues from the shorter lengths' tally
	candTotal.Store(int64(st.Candidates))

	if workers > len(prefixes) {
		workers = len(prefixes)
	}
	tallies := make([]pruneTally, workers)
	locals := make([]*memoTable, workers)
	// cancellation hook: a done context trips the same stop flag the
	// budget abort uses, draining the pool promptly
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watcherDone:
		}
	}()
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ck, err := sched.NewChecker(p.m)
			if err != nil {
				stop.Store(true) // cannot happen after the seq checker built
				return
			}
			ls := newState(p, n, minCount, totalMin, ck)
			defer ls.releaseSigbuf()
			var wm workerMemo
			if mt != nil {
				if p.memoPerWorker {
					// local table written lock-free-ish (single stripe,
					// uncontended); the shared master is probe-only until
					// the barrier merge below.
					locals[w] = newMemoTable(p.memoEntries, 1)
					wm = workerMemo{probe: []*memoTable{locals[w], mt}, store: locals[w]}
				} else {
					wm = workerMemo{probe: []*memoTable{mt}, store: mt}
				}
			}
			var nodes int64
			defer func() { nodeTotal.Add(nodes) }()
			for idx := range work {
				if stop.Load() || int64(idx) > bestIdx.Load() {
					continue
				}
				pfx := prefixes[idx]
				for i, sym := range pfx {
					ls.place(i, sym)
				}
				searchSubtree(ls, idx, len(pfx), &nodes, &tallies[w], wm, &stop, &budgetHit, &candTotal, &bestIdx, &mu, &best)
				for i := len(pfx) - 1; i >= 0; i-- {
					ls.unplace(i, pfx[i])
				}
			}
		}(w)
	}
	for idx := range prefixes {
		work <- idx
	}
	close(work)
	wg.Wait()

	st.NodesExplored += int(nodeTotal.Load())
	st.Candidates = int(candTotal.Load())
	for w := range tallies {
		st.PrunedBySymmetry += int(tallies[w].sym)
		st.PrunedByMemo += int(tallies[w].memo)
		st.PrunedBySeededMemo += int(tallies[w].seeded)
		st.PrunedByBound += int(tallies[w].bound)
	}
	if mt != nil && p.memoPerWorker {
		// barrier merge: next length (and the next prefix enumeration)
		// probes everything any worker refuted this length
		for _, local := range locals {
			if local != nil {
				local.mergeInto(mt)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// a canceled search may have been stopped before the
		// lowest-index subtree finished, so any speculative hit is
		// unreliable: report only the cancellation
		return nil, err
	}
	if best != nil {
		return best, nil
	}
	if budgetHit.Load() {
		return nil, ErrBudget
	}
	return nil, nil
}

// autoSplitDepth picks the smallest prefix depth whose worst-case
// prefix count (syms^depth) is at least 4 × workers, so the pool
// stays busy even when pruning trims entire subtrees. Capped so the
// prefix table stays small.
func autoSplitDepth(syms, n, workers int) int {
	if syms < 2 {
		return 1
	}
	target := 4 * workers
	depth, count := 1, syms
	for count < target && depth < n-1 && depth < 12 {
		depth++
		count *= syms
	}
	return depth
}

// enumPrefixes walks the pruned search tree down to the split depth
// in sequential visiting order, returning every surviving prefix
// (index order = lexicographic order) and the number of internal
// nodes visited on the way. It applies the same pruners as the
// workers — probe-only for the memo table (its subtrees are not
// exhausted here, so nothing may be stored) — and tallies cuts
// directly into st: this phase is sequential.
func enumPrefixes(p *problem, n int, minCount []int, totalMin, depth int, mt *memoTable, st *Stats) ([][]int, int) {
	s := newState(p, n, minCount, totalMin, nil) // leafCheck never reached
	defer s.releaseSigbuf()
	var prefixes [][]int
	nodes := 0
	var rec func(pos int)
	rec = func(pos int) {
		if pos == depth {
			prefixes = append(prefixes, append([]int(nil), s.slots[:depth]...))
			return
		}
		nodes++
		if mt != nil && s.memoEligible(pos) {
			switch mt.probe(s.buildSig(pos)) {
			case memoHitDerived:
				st.PrunedByMemo++
				return
			case memoHitSeeded:
				st.PrunedBySeededMemo++
				return
			}
		}
		for sym := 0; sym < len(p.syms); sym++ {
			if p.breakRotations && pos > 0 && sym < s.slots[0] {
				continue
			}
			if p.orbitPrev != nil {
				if op := p.orbitPrev[sym]; op >= 0 && s.count[op] == 0 {
					st.PrunedBySymmetry++
					continue
				}
			}
			s.place(pos, sym)
			ok := s.pruneOK(pos) && (!p.contiguous || s.contigPrefixOK(pos))
			if ok && p.bounds && !s.boundOK(pos) {
				st.PrunedByBound++
				ok = false
			}
			if ok {
				rec(pos + 1)
			}
			s.unplace(pos, sym)
		}
		s.slots[pos] = 0
	}
	rec(0)
	return prefixes, nodes
}

// searchSubtree finishes the depth-first search below one prefix. It
// records the subtree's lexicographically first feasible schedule
// into best when it improves on bestIdx, and aborts early when a
// lower-indexed subtree has already won or the budget tripped.
func searchSubtree(ls *state, idx, from int, nodes *int64, tally *pruneTally, wm workerMemo,
	stop, budgetHit *atomic.Bool, candTotal, bestIdx *atomic.Int64, mu *sync.Mutex, best **sched.Schedule) {

	p := ls.p
	// rec returns (cont, leafFree): cont=false aborts the whole
	// subtree; leafFree licenses memoizing the node as empty (see
	// searchLength — aborts and leaves both poison it).
	var rec func(pos int) (bool, bool)
	rec = func(pos int) (bool, bool) {
		if stop.Load() || int64(idx) > bestIdx.Load() {
			return false, false
		}
		*nodes++
		if pos == ls.n {
			tot := candTotal.Add(1)
			if p.maxCand > 0 && tot > int64(p.maxCand) {
				budgetHit.Store(true)
				stop.Store(true)
				return false, false
			}
			if cand := ls.leafCheck(); cand != nil {
				mu.Lock()
				if int64(idx) < bestIdx.Load() {
					*best = cand
					bestIdx.Store(int64(idx))
				}
				mu.Unlock()
				return false, false // lex-first within this subtree: done here
			}
			return true, false
		}
		memoable := wm.store != nil && ls.memoEligible(pos)
		if memoable {
			sig := ls.buildSig(pos)
			for _, t := range wm.probe {
				switch t.probe(sig) {
				case memoHitDerived:
					tally.memo++
					return true, true
				case memoHitSeeded:
					tally.seeded++
					return true, true
				}
			}
		}
		leafFree := true
		for sym := 0; sym < len(p.syms); sym++ {
			if p.breakRotations && pos > 0 && sym < ls.slots[0] {
				continue
			}
			if p.orbitPrev != nil {
				if op := p.orbitPrev[sym]; op >= 0 && ls.count[op] == 0 {
					tally.sym++
					continue
				}
			}
			ls.place(pos, sym)
			ok := ls.pruneOK(pos) && (!p.contiguous || ls.contigPrefixOK(pos))
			if ok && p.bounds && !ls.boundOK(pos) {
				tally.bound++
				ok = false
			}
			cont := true
			if ok {
				var lf bool
				cont, lf = rec(pos + 1)
				leafFree = leafFree && lf
			}
			ls.unplace(pos, sym)
			if !cont {
				return false, false
			}
		}
		ls.slots[pos] = 0
		if leafFree && memoable {
			wm.store.store(ls.buildSig(pos))
		}
		return true, leafFree
	}
	rec(from)
}
