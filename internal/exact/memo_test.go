package exact

import (
	"errors"
	"reflect"
	"testing"

	"rtm/internal/core"
)

// coldWarm runs a model cold (snapshotting), then warm (seeded with the
// cold snapshot), and returns both stats. It fails the test unless the
// two runs agree on verdict, witness, and lengths tried.
func coldWarm(t *testing.T, name string, m *core.Model, opt Options) (cold, warm *Stats) {
	t.Helper()
	coldOpt := opt
	coldOpt.SnapshotMemo = true
	coldS, coldSt, coldErr := FindSchedule(m, coldOpt)

	warmOpt := opt
	warmOpt.SeedMemo = coldSt.MemoSnapshot
	warmS, warmSt, warmErr := FindSchedule(m, warmOpt)

	if (warmErr == nil) != (coldErr == nil) || (warmErr != nil && !errors.Is(warmErr, coldErr)) {
		t.Fatalf("%s: warm err = %v, cold = %v", name, warmErr, coldErr)
	}
	if (warmS == nil) != (coldS == nil) || (warmS != nil && !warmS.Equal(coldS)) {
		t.Fatalf("%s: warm schedule %v, cold %v", name, warmS, coldS)
	}
	if !reflect.DeepEqual(warmSt.LengthsTried, coldSt.LengthsTried) {
		t.Fatalf("%s: warm lengths %v, cold %v", name, warmSt.LengthsTried, coldSt.LengthsTried)
	}
	return coldSt, warmSt
}

// TestMemoSnapshotSeedRoundTrip pins the warm-restart contract on the
// refutation-heavy E3 NO row: the cold search exports a non-empty
// snapshot, the seeded re-run returns the identical verdict, uses the
// seeds (PrunedBySeededMemo > 0), and explores strictly fewer nodes.
func TestMemoSnapshotSeedRoundTrip(t *testing.T) {
	m, opt := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	cold, warm := coldWarm(t, "e3-NO", m, opt)
	if len(cold.MemoSnapshot) == 0 {
		t.Fatal("cold NO search exported an empty snapshot")
	}
	if warm.MemoSeeded == 0 || warm.PrunedBySeededMemo == 0 {
		t.Fatalf("warm run ignored its seeds: %+v", warm)
	}
	if warm.NodesExplored >= cold.NodesExplored {
		t.Fatalf("warm explored %d nodes, cold %d — no speedup", warm.NodesExplored, cold.NodesExplored)
	}
	// the warm snapshot-less run must not have mutated the seed slices
	if len(cold.MemoSnapshot) == 0 || len(cold.MemoSnapshot[0]) == 0 {
		t.Fatalf("seed slices mutated: %v", cold.MemoSnapshot)
	}
}

// TestMemoSeedParityAcrossSuite re-runs the cold/warm parity check on
// feasible, infeasible, and mixed instances, sequential and parallel —
// seeding is an optimization and must never be verdict-visible.
func TestMemoSeedParityAcrossSuite(t *testing.T) {
	m3, opt3 := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	m3y, opt3y := e3Model(t, []int{6, 5, 5, 6, 5, 5}, 16)
	cases := []struct {
		name string
		m    *core.Model
		opt  Options
	}{
		{"e2-tight-NO", e2TightModel([]int{2, 3, 6}), Options{MaxLen: 6}},
		{"e2-YES", e2TightModel([]int{2, 6, 6, 6}), Options{MaxLen: 6}},
		{"e3-NO", m3, opt3},
		{"e3-YES", m3y, opt3y},
		{"single", asyncModel(asyncChain("A", 2, "a")), Options{MaxLen: 4}},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 4} {
			opt := tc.opt
			opt.Workers = workers
			coldWarm(t, tc.name, tc.m, opt)
		}
	}
}

// TestMemoSeedPoisonedDifferential is the soundness pin for untrusted
// seeds: garbage bytes, truncated and bit-flipped real signatures, and
// signatures lifted from a different problem must leave verdict,
// witness, and lengths tried identical to an unseeded run — a foreign
// signature can never match a probe, so poison costs memory, not
// correctness.
func TestMemoSeedPoisonedDifferential(t *testing.T) {
	m3, opt3 := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	m3y, opt3y := e3Model(t, []int{6, 5, 5, 6, 5, 5}, 16)

	// real signatures from the OTHER problem: the nastiest poison,
	// since they are well-formed sigs — just for the wrong class.
	foreignOpt := opt3
	foreignOpt.SnapshotMemo = true
	_, foreignSt, _ := FindSchedule(m3, foreignOpt)
	if len(foreignSt.MemoSnapshot) == 0 {
		t.Fatal("no foreign signatures to poison with")
	}

	poisons := [][][]byte{
		{[]byte("garbage"), []byte{0xff, 0xff, 0xff, 0xff}, {}, []byte{0}},
		foreignSt.MemoSnapshot,
	}
	// truncated and bit-flipped variants of the foreign sigs
	var mangled [][]byte
	for _, sig := range foreignSt.MemoSnapshot[:min(8, len(foreignSt.MemoSnapshot))] {
		if len(sig) > 1 {
			mangled = append(mangled, sig[:len(sig)/2])
		}
		flipped := append([]byte(nil), sig...)
		flipped[0] ^= 0x80
		mangled = append(mangled, flipped)
	}
	poisons = append(poisons, mangled)

	cases := []struct {
		name string
		m    *core.Model
		opt  Options
	}{
		{"e3-YES", m3y, opt3y},
		{"e2-tight-NO", e2TightModel([]int{2, 3, 6}), Options{MaxLen: 6}},
		{"e2-YES", e2TightModel([]int{2, 6, 6, 6}), Options{MaxLen: 6}},
	}
	for _, tc := range cases {
		wantS, wantSt, wantErr := FindSchedule(tc.m, tc.opt)
		for pi, poison := range poisons {
			opt := tc.opt
			opt.SeedMemo = poison
			s, st, err := FindSchedule(tc.m, opt)
			if (err == nil) != (wantErr == nil) || (err != nil && !errors.Is(err, wantErr)) {
				t.Fatalf("%s poison %d: err = %v, clean = %v", tc.name, pi, err, wantErr)
			}
			if (s == nil) != (wantS == nil) || (s != nil && !s.Equal(wantS)) {
				t.Fatalf("%s poison %d: schedule %v, clean %v", tc.name, pi, s, wantS)
			}
			if !reflect.DeepEqual(st.LengthsTried, wantSt.LengthsTried) {
				t.Fatalf("%s poison %d: lengths %v, clean %v", tc.name, pi, st.LengthsTried, wantSt.LengthsTried)
			}
		}
	}
}

// TestMemoSnapshotExcludesSeeds pins the no-echo property: a search
// seeded with a snapshot and snapshotting again must not re-export the
// seeds it was given (the seeded set is immutable and excluded), so
// write-back never re-persists what the store already holds.
func TestMemoSnapshotExcludesSeeds(t *testing.T) {
	m, opt := e3Model(t, []int{7, 5, 5, 5, 5, 5}, 16)
	coldOpt := opt
	coldOpt.SnapshotMemo = true
	_, cold, _ := FindSchedule(m, coldOpt)

	warmOpt := opt
	warmOpt.SeedMemo = cold.MemoSnapshot
	warmOpt.SnapshotMemo = true
	_, warm, _ := FindSchedule(m, warmOpt)

	seeded := make(map[string]bool, len(cold.MemoSnapshot))
	for _, sig := range cold.MemoSnapshot {
		seeded[string(sig)] = true
	}
	for _, sig := range warm.MemoSnapshot {
		if seeded[string(sig)] {
			t.Fatalf("warm snapshot re-exported a seed (%d bytes)", len(sig))
		}
	}
}

// TestMemoKeyClasses pins the equivalence-class semantics of MemoKey:
// stable across runs, blind to structure-preserving fingerprint changes
// (the near-miss case), and sensitive to weights, windows, and the
// pruner regime that refutations are derived under.
func TestMemoKeyClasses(t *testing.T) {
	base := func() *core.Model {
		return asyncModel(
			asyncChain("A", 3, "a"),
			asyncChain("B", 3, "b"),
		)
	}
	opt := Options{MaxLen: 6}

	k1, ok := MemoKey(base(), opt)
	if !ok || k1 == "" {
		t.Fatalf("MemoKey: %q %v", k1, ok)
	}
	if k2, _ := MemoKey(base(), opt); k2 != k1 {
		t.Fatalf("MemoKey unstable: %s vs %s", k1, k2)
	}

	// near miss: an extra communication path changes the fingerprint
	// but not the problem structure — same class, warm restart works.
	perturbed := base()
	perturbed.Comm.AddPath("a", "b")
	if core.Fingerprint(perturbed) == core.Fingerprint(base()) {
		t.Fatal("perturbation did not change the fingerprint")
	}
	if kp, _ := MemoKey(perturbed, opt); kp != k1 {
		t.Fatalf("structure-preserving perturbation changed the class: %s vs %s", kp, k1)
	}

	// weight change: different signatures, different class
	heavier := base()
	heavier.Comm.AddElement("c", 2)
	heavier.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("c"),
		Period: 6, Deadline: 6, Kind: core.Asynchronous,
	})
	if kw, _ := MemoKey(heavier, opt); kw == k1 {
		t.Fatal("added element did not change the class")
	}

	// symmetry off: orbit chains leave the key, class must differ
	noSym := opt
	noSym.DisableSymmetry = true
	if kn, _ := MemoKey(base(), noSym); kn == k1 {
		t.Fatal("pruner regime change did not change the class")
	}

	// memo disabled: not memoizable, no class
	noMemo := opt
	noMemo.DisableMemo = true
	if _, ok := MemoKey(base(), noMemo); ok {
		t.Fatal("DisableMemo still produced a class")
	}
}
