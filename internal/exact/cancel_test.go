package exact

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rtm/internal/core"
)

// cancelHardInstance scales the E2 density-1 hardness family
// ({2,3,6} deadlines, Σw/d = 1) by w: infeasible, so the search must
// exhaust a space that grows exponentially with w — long enough that
// a short deadline reliably interrupts it mid-run.
func cancelHardInstance(w int) *core.Model {
	m := core.NewModel()
	for i, d := range []int{2 * w, 3 * w, 6 * w} {
		name := fmt.Sprintf("u%d", i)
		m.Comm.AddElement(name, w)
		m.AddConstraint(&core.Constraint{
			Name: "c" + name, Task: core.ChainTask(name),
			Period: d, Deadline: d, Kind: core.Asynchronous,
		})
	}
	return m
}

// TestFindScheduleCtxPreCanceled: a context that is already done
// aborts before any length is tried, sequentially and in parallel.
func TestFindScheduleCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		s, st, err := FindScheduleCtx(ctx, cancelHardInstance(2), Options{MaxLen: 12, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if s != nil {
			t.Fatalf("workers=%d: got a schedule from a canceled search", workers)
		}
		if len(st.LengthsTried) != 0 {
			t.Fatalf("workers=%d: canceled search still tried lengths %v", workers, st.LengthsTried)
		}
	}
}

// TestFindScheduleCtxDeadline: a deadline interrupts the exhaustion of
// a hard infeasible instance mid-search (the w=4 instance takes
// hundreds of milliseconds to refute; the deadline is 10ms).
func TestFindScheduleCtxDeadline(t *testing.T) {
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		start := time.Now()
		_, _, err := FindScheduleCtx(ctx, cancelHardInstance(4), Options{MaxLen: 24, Workers: workers})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want context.DeadlineExceeded", workers, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancellation took %v, polling is broken", workers, elapsed)
		}
	}
}

// TestFindScheduleCtxBackground: the context path is the plain path —
// results and stats under context.Background() match FindSchedule
// exactly (sequential determinism contract).
func TestFindScheduleCtxBackground(t *testing.T) {
	m := cancelHardInstance(2)
	s1, st1, err1 := FindSchedule(m, Options{MaxLen: 12})
	s2, st2, err2 := FindScheduleCtx(context.Background(), m, Options{MaxLen: 12})
	if (err1 == nil) != (err2 == nil) || (s1 == nil) != (s2 == nil) {
		t.Fatalf("context path diverged: (%v,%v) vs (%v,%v)", s1, err1, s2, err2)
	}
	if st1.NodesExplored != st2.NodesExplored || st1.Candidates != st2.Candidates {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
}
