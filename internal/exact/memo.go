package exact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"rtm/internal/core"
)

// Durable transposition-table export/import (DESIGN.md §14). A memo
// signature is a pure function of the problem structure — symbol ids,
// weights, window demands, pruner configuration — never of element
// names or wall-clock state, so a leaf-free refutation derived in one
// process is byte-for-byte meaningful in any other process searching
// a problem with the identical structure. Snapshot exports the derived
// refutations after a search; Seed pre-loads them before the next one;
// MemoKey names the equivalence class inside which that transfer is
// sound.

// Seed pre-loads sigs as known-empty subtrees. It must be called
// before the search starts (the seeded set is probed without locking).
// Empty signatures are ignored; duplicates collapse. Returns the
// number of signatures loaded.
//
// Soundness does not depend on the caller: a signature that is not a
// possible buildSig output for this problem simply never matches a
// probe (probes compare exact bytes, not hashes), so a corrupt or
// foreign seed can waste memory but never change a verdict — the
// poisoned-seed differential test pins this.
func (t *memoTable) Seed(sigs [][]byte) int {
	if t.seeded == nil {
		t.seeded = make(map[string]struct{}, len(sigs))
	}
	for _, sig := range sigs {
		if len(sig) == 0 {
			continue
		}
		t.seeded[string(sig)] = struct{}{}
	}
	return len(t.seeded)
}

// Snapshot returns the signatures derived during the search — the
// seeded set is excluded, so a caller persisting snapshots never
// re-writes what it already stored. Signatures are sorted descending
// by bytes.Compare: the first encoded field is the remaining-slot
// count, so under a size cap the deepest (largest-subtree) refutations
// survive first, and the order is deterministic for replication.
func (t *memoTable) Snapshot() [][]byte {
	var out [][]byte
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for sig := range s.m {
			out = append(out, []byte(sig))
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) > 0 })
	return out
}

// memoKeyVersion tags the signature format. Any change to buildSig,
// the orbit machinery, or the window extraction must bump it — a key
// mismatch only costs a cold start.
const memoKeyVersion = "rtm-memo-v1"

// MemoKey names the equivalence class of problems whose memo
// signatures are mutually transferable: a SHA-256 over the exact
// problem structure the signatures are defined in terms of — symbol
// count, per-symbol weights, every deadline-window demand spec, the
// rotation/contiguity regime, and the orbit symmetry-breaking chains
// (a refutation derived under orbit pruning claims emptiness only of
// the orbit-canonical subtree, so the orbit structure must match
// exactly for the claim to transfer). Element names are NOT part of
// the key: symbol ids come from the sorted element order, so a model
// differing only in a fingerprint-changing way that preserves this
// structure — renumbered precedence edges, rerouted comm paths, equal
// sorted names — lands in the same class and inherits its refutations.
//
// The second return is false when the problem is not memoizable
// (memoOK): there is then nothing to seed or snapshot.
func MemoKey(m *core.Model, opt Options) (string, bool) {
	p := newProblem(m, opt)
	if !p.memoOK {
		return "", false
	}
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	wInt := func(v int) {
		n := binary.PutVarint(buf[:], int64(v))
		h.Write(buf[:n])
	}
	h.Write([]byte(memoKeyVersion))
	wInt(len(p.syms))
	for _, w := range p.weights {
		wInt(w)
	}
	wInt(len(p.needs))
	for i := range p.needs {
		spec := &p.needs[i]
		wInt(spec.d)
		wInt(spec.period)
		wInt(len(spec.pairs))
		for _, pr := range spec.pairs {
			wInt(pr.sym)
			wInt(pr.k)
		}
	}
	flags := 0
	if p.breakRotations {
		flags |= 1
	}
	if p.contiguous {
		flags |= 2
	}
	if p.orbitPrev != nil {
		flags |= 4
	}
	wInt(flags)
	if p.orbitPrev != nil {
		for _, op := range p.orbitPrev {
			wInt(op)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// sigPool recycles signature scratch buffers across the per-length
// state rebuilds of the iterative deepening and across searches: every
// buildSig appends into a pooled buffer instead of a fresh per-state
// allocation.
var sigPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// acquireSigbuf attaches a pooled scratch buffer to the state.
func (s *state) acquireSigbuf() {
	pb := sigPool.Get().(*[]byte)
	s.sigbuf = (*pb)[:0]
	s.sigpool = pb
}

// releaseSigbuf returns the scratch buffer (possibly regrown by
// buildSig) to the pool. The state must not build signatures after.
func (s *state) releaseSigbuf() {
	if s.sigpool == nil {
		return
	}
	*s.sigpool = s.sigbuf[:0]
	sigPool.Put(s.sigpool)
	s.sigpool = nil
	s.sigbuf = nil
}
