package exact

import (
	"encoding/binary"
	"sort"
	"sync"
)

// The three cooperating pruners (DESIGN.md §10). All of them are
// refutation-only: they may skip a subtree only when no schedule the
// sequential baseline would accept lives inside it, so verdicts and
// the lex-first witness are bit-identical to the seed oracle.
//
//  1. Symmetry breaking (orbits.go machinery in internal/core): among
//     interchangeable elements, a symbol may be placed only after its
//     smaller orbit-mate has appeared. The lex-first witness always
//     satisfies this ordering — swapping two interchangeable elements
//     of a violating witness yields a lex-smaller feasible schedule
//     (taking the lex-min rotation in the pure-async case, where
//     feasibility is rotation-invariant), a contradiction.
//
//  2. Dominance memoization (memoTable below): subtrees that were
//     exhausted WITHOUT ever reaching a leaf are recorded under a
//     residual-state signature; an identical residual state is pruned
//     without descent. Only leaf-free refutations are stored because
//     the leaf check depends on the entire prefix (the checker runs
//     full precedence-aware latency analysis), while a prune-driven
//     refutation is fully determined by the signature components.
//
//  3. Demand-bound cuts (boundOK / refuteLength below): per-node
//     lower bounds on forced future demand vs. remaining slots, plus
//     a per-length exact-cover certificate that refutes whole lengths
//     without descending at all.

// memoMinRemaining skips memoization near the leaves: those subtrees
// are cheaper to re-explore than to hash.
const memoMinRemaining = 3

// defaultMemoEntries bounds the transposition table when
// Options.MemoEntries is zero. At typical signature sizes this is a
// few tens of MB worst case.
const defaultMemoEntries = 1 << 18

// memoStripes is the stripe count of the shared (locked) table used
// by the parallel search. The sequential search uses a single stripe.
const memoStripes = 64

// memoTable is a bounded set of residual-state signatures whose
// subtrees are known to be empty (leaf-free exhausted). Stripes are
// individually locked; a full stripe is cleared wholesale (the cheap
// generational eviction — entries are pure caches, losing them only
// costs re-exploration).
//
// A table may additionally carry a seeded set (Seed): signatures
// imported from a previous search of the same memo class. The seeded
// set is immutable once the search starts, so probes read it without
// locking, and it is never evicted — imported refutations survive the
// generational clears of the derived stripes.
type memoTable struct {
	stripes   []memoStripe
	stripeCap int
	seeded    map[string]struct{} // immutable during search; may be nil
}

type memoStripe struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newMemoTable(entries, stripes int) *memoTable {
	if entries <= 0 {
		entries = defaultMemoEntries
	}
	if stripes < 1 {
		stripes = 1
	}
	t := &memoTable{stripes: make([]memoStripe, stripes), stripeCap: entries / stripes}
	if t.stripeCap < 1 {
		t.stripeCap = 1
	}
	for i := range t.stripes {
		t.stripes[i].m = make(map[string]struct{})
	}
	return t
}

func (t *memoTable) stripeFor(sig []byte) *memoStripe {
	if len(t.stripes) == 1 {
		return &t.stripes[0]
	}
	// FNV-1a
	h := uint32(2166136261)
	for _, b := range sig {
		h ^= uint32(b)
		h *= 16777619
	}
	return &t.stripes[h%uint32(len(t.stripes))]
}

// probe outcomes. Derived and seeded hits license the identical prune;
// they are distinguished only so Stats can attribute the cut.
const (
	memoMiss = iota
	memoHitDerived
	memoHitSeeded
)

// probe reports whether sig is a known-empty subtree, and whether the
// refutation was derived this search or imported via Seed. The seeded
// set is checked first and lock-free (it is immutable during search).
func (t *memoTable) probe(sig []byte) int {
	if t.seeded != nil {
		if _, ok := t.seeded[string(sig)]; ok { // no-alloc map lookup
			return memoHitSeeded
		}
	}
	s := t.stripeFor(sig)
	s.mu.Lock()
	_, ok := s.m[string(sig)] // no-alloc map lookup
	s.mu.Unlock()
	if ok {
		return memoHitDerived
	}
	return memoMiss
}

// store records sig as a known-empty subtree. The presence check uses
// the compiler-elided []byte→string lookup, so re-storing a signature
// already present (the common case under the parallel barrier merge)
// allocates nothing.
func (t *memoTable) store(sig []byte) {
	s := t.stripeFor(sig)
	s.mu.Lock()
	if _, ok := s.m[string(sig)]; !ok { // no-alloc when present
		if len(s.m) >= t.stripeCap {
			clear(s.m)
		}
		s.m[string(sig)] = struct{}{}
	}
	s.mu.Unlock()
}

// storeString is store for a signature already held as a map key: the
// string is inserted directly, avoiding the []byte round-trip (and its
// two allocations) the barrier merge used to pay per entry.
func (t *memoTable) storeString(sig string) {
	var s *memoStripe
	if len(t.stripes) == 1 {
		s = &t.stripes[0]
	} else {
		h := uint32(2166136261)
		for i := 0; i < len(sig); i++ {
			h ^= uint32(sig[i])
			h *= 16777619
		}
		s = &t.stripes[h%uint32(len(t.stripes))]
	}
	s.mu.Lock()
	if _, ok := s.m[sig]; !ok {
		if len(s.m) >= t.stripeCap {
			clear(s.m)
		}
		s.m[sig] = struct{}{}
	}
	s.mu.Unlock()
}

// mergeInto unions t's entries into dst (the per-worker-table barrier
// merge of the parallel search). Keys move as strings — no per-entry
// byte-slice copies.
func (t *memoTable) mergeInto(dst *memoTable) {
	for i := range t.stripes {
		for sig := range t.stripes[i].m {
			dst.storeString(sig)
		}
	}
}

// memoEligible reports whether the residual state at pos can be
// summarized by buildSig: the sliding-window history must cover every
// active sliding deadline (so in-subtree window arithmetic never
// reads a slot outside the signature).
func (s *state) memoEligible(pos int) bool {
	return pos >= 1 && pos >= s.slideWin && s.n-pos >= memoMinRemaining
}

// buildSig serializes every piece of search state that the subtree
// below pos can observe: remaining slots, the rotation anchor, the
// anchored-window phase discriminator, the active-spec set, clamped
// residual min-counts, orbit appearance bits, the last max-deadline
// slots (sliding-window content), anchored in-progress window
// partials, and the contiguity trail. Two nodes with equal signatures
// explore isomorphic subtrees (DESIGN.md §10 gives the argument per
// component), so an exact byte match — never a hash alone — licenses
// the memo prune.
func (s *state) buildSig(pos int) []byte {
	b := s.sigbuf[:0]
	b = binary.AppendUvarint(b, uint64(s.n-pos))
	if s.p.breakRotations {
		b = append(b, byte(s.slots[0]+1))
	} else {
		b = append(b, 0)
	}
	// While pos is below the largest anchored period, first-window
	// special cases (the pos+1 < d suppression) depend on pos itself.
	if pos < s.anchorGate {
		b = binary.AppendUvarint(b, uint64(pos+1))
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, s.activeMask)
	for sym := 1; sym < len(s.count); sym++ {
		r := s.minCount[sym] - s.count[sym]
		if r < 0 {
			r = 0
		}
		b = binary.AppendUvarint(b, uint64(r))
	}
	var bits uint64
	for i, sym := range s.p.orbitBits {
		if s.count[sym] > 0 {
			bits |= 1 << uint(i)
		}
	}
	b = binary.AppendUvarint(b, bits)
	for i := pos - s.slideWin; i < pos; i++ {
		b = append(b, byte(s.slots[i]))
	}
	for i := range s.needs {
		rt := &s.needs[i]
		if !rt.active || rt.spec.period == 0 {
			continue
		}
		ph := pos % rt.spec.period
		b = binary.AppendUvarint(b, uint64(ph))
		if ph > 0 && ph < rt.spec.d {
			snap := rt.snap[pos/rt.spec.period]
			for pi := range rt.spec.pairs {
				b = binary.AppendUvarint(b, uint64(rt.cum[pi]-snap[pi]))
			}
		}
	}
	if s.p.contiguous {
		if pos == 0 {
			b = append(b, 0, 0, 0)
		} else {
			prev := s.slots[pos-1]
			run := 0
			i := pos - 1
			for ; i >= 0 && s.slots[i] == prev; i-- {
				run++
			}
			reach0 := byte(0)
			if i < 0 {
				reach0 = 1
			}
			rm := 0
			if w := s.p.weights[prev]; w > 1 {
				rm = run % w
			}
			b = append(b, byte(prev+1), byte(rm), reach0)
		}
	}
	s.sigbuf = b
	return b
}

// boundOK applies the demand-bound cuts after slots[pos] has been
// placed (and pruneOK already passed). Both cuts only aggregate
// window conditions the baseline pruneOK itself enforces at the
// windows' completion positions, so any node they cut has no leaf
// descendant the baseline would keep: if the forced demand of
// not-yet-complete windows exceeds the slots available before their
// completion, every extension fails a completed-window check later.
func (s *state) boundOK(pos int) bool {
	// (a) anchored in-progress windows: remaining demand must fit in
	// the window's remaining slots. Only windows lying fully inside
	// the cycle count (wrapped windows are decided at the leaf).
	for i := range s.needs {
		rt := &s.needs[i]
		if !rt.active || rt.spec.period == 0 {
			continue
		}
		spec := rt.spec
		r := pos % spec.period
		if r >= spec.d {
			continue
		}
		start := pos - r
		if start+spec.d > s.n {
			continue
		}
		snap := rt.snap[pos/spec.period]
		needLeft := 0
		for pi, pr := range spec.pairs {
			if rem := pr.k - (rt.cum[pi] - snap[pi]); rem > 0 {
				needLeft += rem
			}
		}
		if needLeft > spec.d-1-r {
			return false
		}
	}
	// (b) sliding-window demand profile (Hall-style): for each element
	// e with designated sliding spec (d, k), the chain of disjoint
	// windows ending at t0, t0+d, t0+2d, … ≤ n-1 forces m0, k, k, …
	// slots of e among the future slots, cumulatively by the window
	// ends. Summed across elements (slots are exclusive), the demand
	// due within j future slots may not exceed j.
	if !s.p.hasHall {
		return true
	}
	jmax := s.n - 1 - pos
	if jmax <= 0 || len(s.hallDelta) == 0 {
		return true
	}
	delta := s.hallDelta[:jmax+1]
	for i := range delta {
		delta[i] = 0
	}
	any := false
	for sym := 1; sym < len(s.p.syms); sym++ {
		si := s.p.hallSpec[sym]
		if si < 0 {
			continue
		}
		rt := &s.needs[si]
		if !rt.active {
			continue
		}
		spec := rt.spec
		d := spec.d
		k := s.p.hallK[sym]
		var t0, m0 int
		if pos+1 >= d {
			// window (pos+1-d, pos+1]: its placed part is the rolling
			// window minus the slot that slides out.
			t0 = pos + 1
			cnt := rt.win[spec.pairOf[sym]]
			if s.slots[pos+1-d] == sym {
				cnt--
			}
			m0 = k - cnt
		} else {
			// window [0, d-1]: its placed part is the whole prefix.
			t0 = d - 1
			m0 = k - s.count[sym]
		}
		if m0 < 0 {
			m0 = 0
		}
		j := t0 - pos
		if j < 1 {
			j = 1 // t0 == pos is impossible; defensive
		}
		for first := true; j <= jmax; j += d {
			if first {
				delta[j] += m0
				first = false
			} else {
				delta[j] += k
			}
			any = true
		}
	}
	if !any {
		return true
	}
	demand := 0
	for j := 1; j <= jmax; j++ {
		demand += delta[j]
		if demand > j {
			return false
		}
	}
	return true
}

// exactCoverBudget caps the offset search of refuteLength; on
// exhaustion the cut simply declines (no refutation claimed).
const exactCoverBudget = 1 << 14

// refuteLength decides, before any descent, whether cycle length n is
// infeasible by the exact-cover certificate: in a pure-async model of
// unit-weight, unit-demand elements at exactly full density
// (Σ minCount == n) with every governing deadline dividing n, each
// element's occurrences must be exactly evenly spaced — its count is
// pinned to n/d and every cyclic window of length d must contain one
// occurrence, forcing all gaps to equal d — so a feasible schedule is
// an exact cover of Z_n by residue classes mod d_e. Classes r_a mod
// d_a and r_b mod d_b are disjoint iff r_a ≢ r_b (mod gcd(d_a, d_b));
// if no offset assignment is pairwise disjoint, no schedule of length
// n exists. (The cut never fires on a feasible length: a witness's
// occurrence classes ARE such an assignment.)
func (p *problem) refuteLength(n int, minCount []int, totalMin int) bool {
	if !p.breakRotations || totalMin != n || len(p.syms) < 2 {
		return false
	}
	dmin := make([]int, len(p.syms))
	for i := range p.needs {
		spec := &p.needs[i]
		if spec.period != 0 {
			return false // cannot happen with breakRotations; defensive
		}
		for _, pr := range spec.pairs {
			if pr.k != 1 {
				return false
			}
			if dmin[pr.sym] == 0 || spec.d < dmin[pr.sym] {
				dmin[pr.sym] = spec.d
			}
		}
	}
	ds := make([]int, 0, len(p.syms)-1)
	for sym := 1; sym < len(p.syms); sym++ {
		if p.weights[sym] != 1 {
			return false
		}
		if dmin[sym] == 0 || dmin[sym] > n || n%dmin[sym] != 0 {
			return false
		}
		ds = append(ds, dmin[sym])
	}
	sort.Ints(ds)
	// Backtracking offset search, budgeted. rs[i] is the residue of
	// class i; conflicts are checked pairwise mod gcd.
	rs := make([]int, 0, len(ds))
	steps := 0
	var assign func(i int) bool // true: cover exists (or budget hit)
	assign = func(i int) bool {
		if i == len(ds) {
			return true
		}
		for r := 0; r < ds[i]; r++ {
			steps++
			if steps > exactCoverBudget {
				return true // give up: do not claim a refutation
			}
			ok := true
			for j := 0; j < i; j++ {
				g := gcd(ds[i], ds[j])
				if r%g == rs[j]%g {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rs = append(rs, r)
			if assign(i + 1) {
				return true
			}
			rs = rs[:len(rs)-1]
		}
		return false
	}
	return !assign(0)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
