package exact

// The seed's string-keyed sequential search, preserved verbatim as a
// test oracle: FindSchedule with Workers ≤ 1 must reproduce its
// schedule AND its Stats bit-for-bit, and the parallel search must
// reproduce its schedule. Do not "improve" this file — its value is
// that it does not change.

import (
	"errors"

	"rtm/internal/core"
	"rtm/internal/sched"
)

type refWindowNeed struct {
	d      int
	period int
	need   map[string]int
}

func refDemandOf(m *core.Model, c *core.Constraint) map[string]int {
	need := make(map[string]int)
	for _, node := range c.Task.Nodes() {
		e := c.Task.ElementOf(node)
		need[e] += m.Comm.WeightOf(e)
	}
	return need
}

func refWindowNeeds(m *core.Model) []refWindowNeed {
	var out []refWindowNeed
	for _, c := range m.Constraints {
		switch c.Kind {
		case core.Asynchronous:
			out = append(out, refWindowNeed{d: c.Deadline, need: refDemandOf(m, c)})
		case core.Periodic:
			if c.Deadline <= c.Period {
				out = append(out, refWindowNeed{d: c.Deadline, period: c.Period, need: refDemandOf(m, c)})
			}
		}
	}
	return out
}

func refFindSchedule(m *core.Model, opt Options) (*sched.Schedule, *Stats, error) {
	if opt.MaxLen <= 0 {
		return nil, nil, errors.New("ref: bad MaxLen")
	}
	minLen := opt.MinLen
	if minLen < 1 {
		minLen = 1
	}
	st := &Stats{}
	alphabet := append([]string{sched.Idle}, m.ElementsUsed()...)
	for n := minLen; n <= opt.MaxLen; n++ {
		st.LengthsTried = append(st.LengthsTried, n)
		s, err := refSearchLength(m, n, alphabet, opt, st)
		if err != nil {
			return nil, st, err
		}
		if s != nil {
			return s, st, nil
		}
	}
	return nil, st, ErrNotFound
}

func refSearchLength(m *core.Model, n int, alphabet []string, opt Options, st *Stats) (*sched.Schedule, error) {
	needs := refWindowNeeds(m)
	minCount := make(map[string]int)
	for _, wn := range needs {
		for e, k := range wn.need {
			var lb int
			if wn.period == 0 {
				lb = ceilDiv(n*k, wn.d)
			} else {
				lb = ceilDiv(n*k, wn.period)
			}
			if lb > minCount[e] {
				minCount[e] = lb
			}
		}
	}
	totalMin := 0
	for _, v := range minCount {
		totalMin += v
	}
	if totalMin > n {
		return nil, nil
	}

	slots := make([]string, n)
	count := make(map[string]int)
	var found *sched.Schedule
	breakRotations := len(m.Periodic()) == 0

	var rec func(pos int) error
	rec = func(pos int) error {
		if found != nil {
			return nil
		}
		st.NodesExplored++
		if pos == n {
			st.Candidates++
			if opt.MaxCandidates > 0 && st.Candidates > opt.MaxCandidates {
				return ErrBudget
			}
			cand := sched.New(slots...)
			if opt.RequireContiguous && !sched.Contiguous(m.Comm, cand) {
				return nil
			}
			if sched.Feasible(m, cand) {
				found = cand
			}
			return nil
		}
		for _, sym := range alphabet {
			if breakRotations && pos > 0 && sym < slots[0] {
				continue
			}
			slots[pos] = sym
			if sym != sched.Idle {
				count[sym]++
			}
			if refPruneOK(slots, pos, n, count, minCount, needs) &&
				(!opt.RequireContiguous || refContiguousPrefixOK(m, slots, pos)) {
				if err := rec(pos + 1); err != nil {
					return err
				}
			}
			if sym != sched.Idle {
				count[sym]--
			}
			if found != nil {
				return nil
			}
		}
		slots[pos] = sched.Idle
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return found, nil
}

func refPruneOK(slots []string, pos, n int, count, minCount map[string]int, needs []refWindowNeed) bool {
	remaining := n - pos - 1
	deficit := 0
	for e, lb := range minCount {
		if d := lb - count[e]; d > 0 {
			deficit += d
		}
	}
	if deficit > remaining {
		return false
	}
	for _, wn := range needs {
		if wn.d > n {
			continue
		}
		var lo int
		if wn.period == 0 {
			if pos+1 < wn.d {
				continue
			}
			lo = pos + 1 - wn.d
		} else {
			if (pos+1-wn.d)%wn.period != 0 || pos+1 < wn.d {
				continue
			}
			lo = pos + 1 - wn.d
		}
		for e, k := range wn.need {
			c := 0
			for i := lo; i <= pos; i++ {
				if slots[i] == e {
					c++
				}
			}
			if c < k {
				return false
			}
		}
	}
	return true
}

func refContiguousPrefixOK(m *core.Model, slots []string, pos int) bool {
	if pos == 0 {
		return true
	}
	prev := slots[pos-1]
	if prev == slots[pos] || prev == sched.Idle {
		return true
	}
	w := m.Comm.WeightOf(prev)
	if w <= 1 {
		return true
	}
	run := 0
	i := pos - 1
	for ; i >= 0 && slots[i] == prev; i-- {
		run++
	}
	if i < 0 {
		return true
	}
	return run%w == 0
}
