package exact

import (
	"errors"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// asyncModel builds a model with only asynchronous single-op or chain
// constraints over unit-weight elements.
func asyncModel(cons ...*core.Constraint) *core.Model {
	m := core.NewModel()
	for _, c := range cons {
		prev := ""
		for _, n := range c.Task.Nodes() {
			e := c.Task.ElementOf(n)
			if !m.Comm.G.HasNode(e) {
				m.Comm.AddElement(e, 1)
			}
			if prev != "" {
				m.Comm.AddPath(prev, e)
			}
			prev = e
		}
		m.AddConstraint(c)
	}
	return m
}

func asyncChain(name string, d int, elems ...string) *core.Constraint {
	return &core.Constraint{
		Name: name, Task: core.ChainTask(elems...),
		Period: d, Deadline: d, Kind: core.Asynchronous,
	}
}

func TestFindScheduleSingleOp(t *testing.T) {
	m := asyncModel(asyncChain("A", 2, "a"))
	s, st, err := FindSchedule(m, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible(m, s) {
		t.Fatalf("returned schedule infeasible: %v", s)
	}
	if st.Candidates == 0 || st.NodesExplored == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	// latency ≤ 2 for a unit op needs a in every window of 2: the
	// only length-1..2 solutions are [a] and [a a].
	if s.Len() > 2 {
		t.Fatalf("schedule too long: %v", s)
	}
}

func TestFindScheduleTwoOps(t *testing.T) {
	m := asyncModel(
		asyncChain("A", 3, "a"),
		asyncChain("B", 3, "b"),
	)
	s, _, err := FindSchedule(m, Options{MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep := sched.Check(m, s)
	if !rep.Feasible {
		t.Fatalf("infeasible:\n%s\nschedule %v", rep, s)
	}
}

func TestFindScheduleInfeasible(t *testing.T) {
	// three unit ops each with deadline 2: every window of length 2
	// would need all three -> impossible.
	m := asyncModel(
		asyncChain("A", 2, "a"),
		asyncChain("B", 2, "b"),
		asyncChain("C", 2, "c"),
	)
	ok, _, err := Feasible(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected infeasible")
	}
}

func TestFindScheduleChainConstraint(t *testing.T) {
	m := asyncModel(asyncChain("A", 4, "a", "b"))
	s, _, err := FindSchedule(m, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible(m, s) {
		t.Fatalf("infeasible schedule %v", s)
	}
}

func TestFindScheduleWithPeriodic(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("p", 1)
	m.Comm.AddElement("q", 1)
	m.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("p"),
		Period: 2, Deadline: 2, Kind: core.Periodic,
	})
	m.AddConstraint(&core.Constraint{
		Name: "Q", Task: core.ChainTask("q"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	s, _, err := FindSchedule(m, Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := sched.Check(m, s)
	if !rep.Feasible {
		t.Fatalf("infeasible:\n%s\nschedule %v", rep, s)
	}
}

func TestMaxCandidatesBudget(t *testing.T) {
	m := asyncModel(
		asyncChain("A", 2, "a"),
		asyncChain("B", 2, "b"),
		asyncChain("C", 2, "c"),
	)
	_, _, err := FindSchedule(m, Options{MaxLen: 8, MaxCandidates: 5})
	if !errors.Is(err, ErrBudget) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want budget or not-found", err)
	}
}

func TestBadOptions(t *testing.T) {
	m := asyncModel(asyncChain("A", 2, "a"))
	if _, _, err := FindSchedule(m, Options{}); err == nil {
		t.Fatal("MaxLen 0 accepted")
	}
}

func TestRequireContiguous(t *testing.T) {
	// one weight-2 element with deadline 4, plus a unit element with
	// deadline 2. Without pipelining the weight-2 execution must be a
	// block, forcing b's window to be violated at short lengths.
	m := core.NewModel()
	m.Comm.AddElement("a", 2)
	m.Comm.AddElement("b", 1)
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 8, Deadline: 8, Kind: core.Asynchronous,
	})
	m.AddConstraint(&core.Constraint{
		Name: "B", Task: core.ChainTask("b"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	s, _, err := FindSchedule(m, Options{MaxLen: 6, RequireContiguous: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Contiguous(m.Comm, s) {
		t.Fatalf("schedule has preempted executions: %v", s)
	}
	if !sched.Feasible(m, s) {
		t.Fatalf("infeasible: %v", s)
	}
}

func TestExactAgreesWithCapacityBound(t *testing.T) {
	// density > 1 can never be feasible; exact search must agree.
	m := asyncModel(
		asyncChain("A", 2, "a"),
		asyncChain("B", 3, "b"),
		asyncChain("C", 3, "c"),
	)
	// windows: a every 2, b and c every 3 -> per-cycle capacity check
	// density = 1/2+1/3+1/3 = 7/6 > 1
	ok, _, err := Feasible(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("over-dense instance reported feasible")
	}
}

func TestStatsLengths(t *testing.T) {
	m := asyncModel(asyncChain("A", 3, "a"))
	_, st, err := FindSchedule(m, Options{MinLen: 1, MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.LengthsTried) == 0 || st.LengthsTried[0] != 1 {
		t.Fatalf("lengths = %v", st.LengthsTried)
	}
}
