package exact

import (
	"sort"

	"rtm/internal/analysis"
	"rtm/internal/core"
	"rtm/internal/sched"
)

// problem is the immutable, index-based description of one search: the
// symbol alphabet (0 = idle, 1.. = the used elements in ascending
// order, so integer order equals the lexicographic order the symmetry
// break and the determinism guarantee are stated in), the per-symbol
// weights, and the deadline-window demands, all hoisted out of the
// per-candidate hot path. It is shared read-only between workers.
type problem struct {
	m       *core.Model
	syms    []string // syms[0] == sched.Idle; rest sorted ascending
	weights []int    // per symbol id
	needs   []needSpec
	// breakRotations: feasibility is rotation-invariant only when
	// every constraint is asynchronous (periodic invocations are
	// phase-locked to t = 0).
	breakRotations bool
	contiguous     bool
	maxCand        int

	// Pruner configuration (see prune.go and DESIGN.md §10).
	bounds bool // demand-bound cuts enabled
	// orbitPrev[sym] is the next-smaller symbol in sym's orbit of
	// interchangeable elements, or -1. A symbol may be placed only
	// after its orbit predecessor has appeared.
	orbitPrev []int
	// orbitBits lists the symbols whose appearance the memo signature
	// must record (every symbol that is some other symbol's
	// orbitPrev), in ascending order.
	orbitBits []int
	// hallSpec[sym] designates the densest sliding spec covering sym
	// (index into needs, or -1); hallK is its per-window demand. The
	// demand profile uses one spec per element so demands stay
	// additive.
	hallSpec []int
	hallK    []int
	hasHall  bool
	// memoOK gates memoization on representability: every signature
	// component must fit its encoding.
	memoOK        bool
	memoEntries   int
	memoPerWorker bool
}

// needPair is one element's slot demand inside a deadline window.
type needPair struct {
	sym int // symbol id
	k   int // required slots of sym per window
}

// needSpec holds the per-element slot demand a single deadline window
// must satisfy for one constraint (a necessary condition: element
// counts inside every window of length d must reach the task graph's
// per-element weight demand). Asynchronous constraints have sliding
// windows (period 0 here); periodic constraints with d ≤ p have
// disjoint windows anchored at multiples of p.
type needSpec struct {
	d      int
	period int // 0 = sliding (asynchronous)
	pairs  []needPair
	pairOf []int // symbol id -> index into pairs, or -1
}

func newProblem(m *core.Model, opt Options) *problem {
	p := &problem{
		m:              m,
		syms:           append([]string{sched.Idle}, m.ElementsUsed()...),
		breakRotations: len(m.Periodic()) == 0,
		contiguous:     opt.RequireContiguous,
		maxCand:        opt.MaxCandidates,
	}
	symID := make(map[string]int, len(p.syms))
	p.weights = make([]int, len(p.syms))
	for i, s := range p.syms {
		symID[s] = i
		p.weights[i] = m.Comm.WeightOf(s)
	}
	// The window-demand extraction is shared with the analytic tier
	// (analysis.WindowSpecs) — the search applies the same windows
	// incrementally that DemandRefute sums in closed form. Here the
	// element names are re-indexed onto the symbol alphabet.
	for _, ws := range analysis.WindowSpecs(m) {
		spec := needSpec{d: ws.D, period: ws.Period}
		spec.pairOf = make([]int, len(p.syms))
		for i := range spec.pairOf {
			spec.pairOf[i] = -1
		}
		for _, nd := range ws.Need {
			id, ok := symID[nd.Elem]
			if !ok {
				continue
			}
			spec.pairOf[id] = len(spec.pairs)
			spec.pairs = append(spec.pairs, needPair{sym: id, k: nd.Slots})
		}
		p.needs = append(p.needs, spec)
	}

	p.bounds = !opt.DisableBounds
	p.memoEntries = opt.MemoEntries
	p.memoPerWorker = opt.MemoPerWorker
	if !opt.DisableMemo && opt.MemoEntries >= 0 {
		// every signature component must fit its encoding: one byte
		// per symbol id, one bit per spec / orbit symbol
		p.memoOK = len(p.syms) <= 254 && len(p.needs) <= 64
	}
	if !opt.DisableSymmetry {
		p.initOrbits(m, symID)
	}
	p.initHall()
	return p
}

// initOrbits maps core.Orbits onto symbol ids: within each orbit of
// interchangeable elements, orbitPrev chains the symbols in ascending
// order.
func (p *problem) initOrbits(m *core.Model, symID map[string]int) {
	orbits := m.Orbits()
	if len(orbits) == 0 {
		return
	}
	p.orbitPrev = make([]int, len(p.syms))
	for i := range p.orbitPrev {
		p.orbitPrev[i] = -1
	}
	seen := make(map[int]bool)
	for _, class := range orbits {
		prev := -1
		for _, e := range class {
			id, ok := symID[e]
			if !ok {
				continue
			}
			// class is sorted and syms are sorted, so ids ascend
			p.orbitPrev[id] = prev
			if prev >= 0 && !seen[prev] {
				seen[prev] = true
				p.orbitBits = append(p.orbitBits, prev)
			}
			prev = id
		}
	}
	sort.Ints(p.orbitBits)
	if len(p.orbitBits) > 64 {
		p.memoOK = false // appearance bits no longer fit one uvarint
	}
}

// initHall designates, per symbol, the sliding spec with the largest
// demand density k/d; the demand profile of boundOK uses exactly one
// spec per element so window demands stay additive across elements.
func (p *problem) initHall() {
	p.hallSpec = make([]int, len(p.syms))
	p.hallK = make([]int, len(p.syms))
	for i := range p.hallSpec {
		p.hallSpec[i] = -1
	}
	for i := range p.needs {
		spec := &p.needs[i]
		if spec.period != 0 {
			continue
		}
		for _, pr := range spec.pairs {
			cur := p.hallSpec[pr.sym]
			if cur < 0 || pr.k*p.needs[cur].d > p.hallK[pr.sym]*spec.d {
				p.hallSpec[pr.sym] = i
				p.hallK[pr.sym] = pr.k
				p.hasHall = true
			}
		}
	}
}

// minCounts computes, per symbol, the capacity lower bound at cycle
// length n. An async constraint with deadline d forces
// count_e · d ≥ n · need_e over the cycle (each of the n cyclic
// windows of length d needs need_e slots of e, and each slot covers d
// windows). A periodic constraint with d ≤ p has disjoint invocation
// windows needing distinct slots, so over the alignment lcm(n, p) it
// forces count_e ≥ need_e · n/p. Returns the bounds and their total.
func (p *problem) minCounts(n int) ([]int, int) {
	minCount := make([]int, len(p.syms))
	for _, spec := range p.needs {
		div := spec.d
		if spec.period != 0 {
			div = spec.period
		}
		for _, pr := range spec.pairs {
			if lb := ceilDiv(n*pr.k, div); lb > minCount[pr.sym] {
				minCount[pr.sym] = lb
			}
		}
	}
	total := 0
	for _, v := range minCount {
		total += v
	}
	return minCount, total
}

// state is the mutable per-goroutine search state at one cycle length:
// the partial assignment plus every counter the prune needs, all
// updated in O(pairs) on place/unplace instead of re-scanned per slot.
type state struct {
	p        *problem
	n        int
	slots    []int
	count    []int // per symbol
	minCount []int // per symbol
	deficit  int   // Σ_e max(0, minCount[e] − count[e])
	needs    []needRT
	ck       *sched.Checker
	strbuf   []string // reusable candidate-schedule buffer

	// Pruner state (prune.go). slideWin is the largest active sliding
	// deadline: the memo signature carries the last slideWin slots and
	// probing is gated on pos ≥ slideWin. anchorGate is the largest
	// active anchored period: below it, first-window special cases
	// make the signature carry pos itself. activeMask is the bitmask
	// of active needs (length-dependent, so cross-length signature
	// collisions stay sound).
	slideWin   int
	anchorGate int
	activeMask uint64
	sigbuf     []byte
	sigpool    *[]byte // pooled backing of sigbuf (memo.go)
	hallDelta  []int
}

// needRT carries the rolling window counters for one needSpec.
// Sliding (async) windows keep the pair counts of the window ending
// at the last placed slot. Anchored (periodic) windows keep
// cumulative in-window pair counts plus a snapshot taken at each
// window start, so the completed window's counts are cum − snap.
type needRT struct {
	spec   *needSpec
	active bool // d ≤ n; wrapped windows are checked at the leaf
	win    []int
	cum    []int
	snap   [][]int
}

func newState(p *problem, n int, minCount []int, totalMin int, ck *sched.Checker) *state {
	s := &state{
		p:        p,
		n:        n,
		slots:    make([]int, n),
		count:    make([]int, len(p.syms)),
		minCount: minCount,
		deficit:  totalMin,
		ck:       ck,
		strbuf:   make([]string, n),
	}
	s.needs = make([]needRT, len(p.needs))
	for i := range p.needs {
		spec := &p.needs[i]
		rt := needRT{spec: spec, active: spec.d <= n}
		if rt.active {
			if spec.period == 0 {
				rt.win = make([]int, len(spec.pairs))
			} else {
				rt.cum = make([]int, len(spec.pairs))
				rt.snap = make([][]int, (n-1)/spec.period+1)
				for j := range rt.snap {
					rt.snap[j] = make([]int, len(spec.pairs))
				}
			}
		}
		if rt.active {
			s.activeMask |= 1 << uint(i&63)
			if spec.period == 0 {
				if spec.d > s.slideWin {
					s.slideWin = spec.d
				}
			} else if spec.period > s.anchorGate {
				s.anchorGate = spec.period
			}
		}
		s.needs[i] = rt
	}
	if p.bounds && p.hasHall {
		s.hallDelta = make([]int, n+1)
	}
	if p.memoOK {
		s.acquireSigbuf()
	}
	return s
}

// place assigns sym to slot pos and updates every counter in O(pairs).
func (s *state) place(pos, sym int) {
	s.slots[pos] = sym
	if sym != 0 {
		s.count[sym]++
		if s.count[sym] <= s.minCount[sym] {
			s.deficit--
		}
	}
	for i := range s.needs {
		rt := &s.needs[i]
		if !rt.active {
			continue
		}
		spec := rt.spec
		if spec.period == 0 {
			if pi := spec.pairOf[sym]; pi >= 0 {
				rt.win[pi]++
			}
			if pos >= spec.d {
				if pj := spec.pairOf[s.slots[pos-spec.d]]; pj >= 0 {
					rt.win[pj]--
				}
			}
		} else {
			r := pos % spec.period
			if r == 0 {
				copy(rt.snap[pos/spec.period], rt.cum)
			}
			if r < spec.d {
				if pi := spec.pairOf[sym]; pi >= 0 {
					rt.cum[pi]++
				}
			}
		}
	}
}

// unplace reverses place. Slots above pos must already be unplaced.
func (s *state) unplace(pos, sym int) {
	if sym != 0 {
		if s.count[sym] <= s.minCount[sym] {
			s.deficit++
		}
		s.count[sym]--
	}
	for i := range s.needs {
		rt := &s.needs[i]
		if !rt.active {
			continue
		}
		spec := rt.spec
		if spec.period == 0 {
			if pos >= spec.d {
				if pj := spec.pairOf[s.slots[pos-spec.d]]; pj >= 0 {
					rt.win[pj]++
				}
			}
			if pi := spec.pairOf[sym]; pi >= 0 {
				rt.win[pi]--
			}
		} else if pos%spec.period < spec.d {
			// the window-start snapshot needs no undo: it is rewritten
			// whenever the slot is re-placed
			if pi := spec.pairOf[sym]; pi >= 0 {
				rt.cum[pi]--
			}
		}
	}
}

// pruneOK applies the incremental necessary conditions after
// slots[pos] has been placed: remaining capacity must cover the count
// deficit, and every fully-determined deadline window inside the
// prefix must carry enough capacity. For asynchronous constraints
// every window of length d ending at pos+1 applies; for periodic
// constraints only the anchored windows [jp, jp+d) do.
func (s *state) pruneOK(pos int) bool {
	if s.deficit > s.n-pos-1 {
		return false
	}
	for i := range s.needs {
		rt := &s.needs[i]
		if !rt.active {
			continue
		}
		spec := rt.spec
		if pos+1 < spec.d {
			continue
		}
		if spec.period == 0 {
			for pi, pr := range spec.pairs {
				if rt.win[pi] < pr.k {
					return false
				}
			}
		} else {
			if (pos+1-spec.d)%spec.period != 0 {
				continue
			}
			snap := rt.snap[(pos+1-spec.d)/spec.period]
			for pi, pr := range spec.pairs {
				if rt.cum[pi]-snap[pi] < pr.k {
					return false
				}
			}
		}
	}
	return true
}

// contigPrefixOK prunes prefixes that already break contiguity:
// placing a different symbol at pos interrupts the run ending at
// pos−1, which is only legal when that run is a whole number of
// executions. A run touching slot 0 is exempt (it may be the wrapped
// tail of the cycle's final execution; the leaf check decides).
func (s *state) contigPrefixOK(pos int) bool {
	if pos == 0 {
		return true
	}
	prev := s.slots[pos-1]
	if prev == s.slots[pos] || prev == 0 {
		return true
	}
	w := s.p.weights[prev]
	if w <= 1 {
		return true
	}
	run := 0
	i := pos - 1
	for ; i >= 0 && s.slots[i] == prev; i-- {
		run++
	}
	if i < 0 {
		return true // run reaches slot 0: may wrap
	}
	return run%w == 0
}

// leafCheck evaluates the complete assignment. On success it returns
// a schedule owning its own memory.
func (s *state) leafCheck() *sched.Schedule {
	for i, id := range s.slots {
		s.strbuf[i] = s.p.syms[id]
	}
	cand := &sched.Schedule{Slots: s.strbuf}
	if s.p.contiguous && !s.ck.Contiguous(cand) {
		return nil
	}
	if !s.ck.Feasible(cand) {
		return nil
	}
	return sched.New(s.strbuf...)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
