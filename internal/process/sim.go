package process

import (
	"fmt"
	"sort"
)

// Policy selects the run-time scheduling discipline of the simulator.
type Policy int

const (
	// EDF is preemptive earliest-deadline-first.
	EDF Policy = iota
	// RM is preemptive fixed-priority with rate-monotonic priorities.
	RM
	// DM is preemptive fixed-priority with deadline-monotonic
	// priorities.
	DM
)

func (p Policy) String() string {
	switch p {
	case EDF:
		return "EDF"
	case RM:
		return "RM"
	case DM:
		return "DM"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SimResult reports one simulation run.
type SimResult struct {
	Policy Policy
	// WorstResponse maps task name to the worst observed response
	// time.
	WorstResponse map[string]int
	// Misses maps task name to the number of deadline misses.
	Misses map[string]int
	// Schedulable is true when no job missed its deadline.
	Schedulable bool
	// IdleSlots counts processor idle time over the horizon.
	IdleSlots int
	Horizon   int
}

type simJob struct {
	task     int
	release  int
	deadline int
	left     int
}

// Simulate runs the task set under the given policy for the given
// horizon (0 means one hyperperiod plus the largest deadline) with
// synchronous periodic releases at the maximum rate — the worst case
// for sporadic tasks. Jobs that miss their deadline keep running
// (bounded tardiness accounting); each miss is counted once.
func Simulate(ts TaskSet, policy Policy, horizon int) *SimResult {
	if horizon <= 0 {
		horizon = ts.Hyperperiod()
		maxD := 0
		for _, t := range ts {
			if t.D > maxD {
				maxD = t.D
			}
		}
		horizon += maxD
	}
	prio := make([]int, len(ts)) // smaller = higher priority
	switch policy {
	case RM:
		order := ts.RateMonotonic()
		rank := map[string]int{}
		for i, t := range order {
			rank[t.Name] = i
		}
		for i, t := range ts {
			prio[i] = rank[t.Name]
		}
	case DM:
		order := ts.DeadlineMonotonic()
		rank := map[string]int{}
		for i, t := range order {
			rank[t.Name] = i
		}
		for i, t := range ts {
			prio[i] = rank[t.Name]
		}
	}

	res := &SimResult{
		Policy:        policy,
		WorstResponse: make(map[string]int, len(ts)),
		Misses:        make(map[string]int, len(ts)),
		Schedulable:   true,
		Horizon:       horizon,
	}
	var pending []*simJob
	missed := map[*simJob]bool{}
	for t := 0; t < horizon; t++ {
		for i, task := range ts {
			if t%task.T == 0 {
				pending = append(pending, &simJob{task: i, release: t, deadline: t + task.D, left: task.C})
			}
		}
		sort.SliceStable(pending, func(a, b int) bool {
			ja, jb := pending[a], pending[b]
			switch policy {
			case EDF:
				if ja.deadline != jb.deadline {
					return ja.deadline < jb.deadline
				}
			default:
				if prio[ja.task] != prio[jb.task] {
					return prio[ja.task] < prio[jb.task]
				}
			}
			return ja.release < jb.release
		})
		// count fresh misses
		for _, j := range pending {
			if j.left > 0 && t >= j.deadline && !missed[j] {
				missed[j] = true
				name := ts[j.task].Name
				res.Misses[name]++
				res.Schedulable = false
			}
		}
		if len(pending) == 0 {
			res.IdleSlots++
			continue
		}
		j := pending[0]
		j.left--
		if j.left == 0 {
			name := ts[j.task].Name
			r := t + 1 - j.release
			if r > res.WorstResponse[name] {
				res.WorstResponse[name] = r
			}
			pending = pending[1:]
		}
	}
	// jobs still unfinished at the horizon with passed deadlines
	for _, j := range pending {
		if j.left > 0 && horizon >= j.deadline && !missed[j] {
			res.Misses[ts[j.task].Name]++
			res.Schedulable = false
		}
	}
	return res
}

// CompareAnalysisToSimulation is a consistency helper used in tests
// and experiments: for a task set deemed schedulable by an exact
// analysis, simulation must observe no misses.
func CompareAnalysisToSimulation(ts TaskSet, policy Policy) (analysisOK, simOK bool) {
	switch policy {
	case EDF:
		analysisOK = EDFDemandTest(ts)
	case RM:
		_, _, analysisOK = RMSchedulable(ts)
	case DM:
		_, _, analysisOK = DMSchedulable(ts)
	}
	simOK = Simulate(ts, policy, 0).Schedulable
	return
}
