package process

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtm/internal/core"
)

func set(tasks ...Task) TaskSet { return TaskSet(tasks) }

func TestTaskMetrics(t *testing.T) {
	tk := Task{Name: "a", C: 2, T: 8, D: 4}
	if tk.Utilization() != 0.25 {
		t.Fatalf("U = %v", tk.Utilization())
	}
	if tk.Density() != 0.5 {
		t.Fatalf("density = %v", tk.Density())
	}
}

func TestTaskSetValidate(t *testing.T) {
	good := set(Task{Name: "a", C: 1, T: 4, D: 4})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []TaskSet{
		set(Task{Name: "", C: 1, T: 4, D: 4}),
		set(Task{Name: "a", C: 1, T: 4, D: 4}, Task{Name: "a", C: 1, T: 4, D: 4}),
		set(Task{Name: "a", C: 0, T: 4, D: 4}),
		set(Task{Name: "a", C: 5, T: 4, D: 4}),
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid set accepted: %+v", bad)
		}
	}
}

func TestFromModelNoSharing(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	ts, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("tasks = %d", len(ts))
	}
	byName := map[string]Task{}
	for _, tk := range ts {
		byName[tk.Name] = tk
	}
	// X executes fX+fS+fK = 8 even though fS/fK are shared with Y
	if byName["X"].C != 8 || byName["Y"].C != 9 || byName["Z"].C != 5 {
		t.Fatalf("computation times wrong: %+v", byName)
	}
	if !byName["Z"].Sporadic || byName["X"].Sporadic {
		t.Fatal("sporadic flags wrong")
	}
	// X holds monitors for fS (4) and fK (2)
	cs := byName["X"].CriticalSections
	if len(cs) != 2 || cs[0] != 4 || cs[1] != 2 {
		t.Fatalf("critical sections = %v", cs)
	}
	// Z holds only fS
	if len(byName["Z"].CriticalSections) != 1 {
		t.Fatalf("Z critical sections = %v", byName["Z"].CriticalSections)
	}
}

func TestPriorityOrders(t *testing.T) {
	ts := set(
		Task{Name: "slow", C: 1, T: 20, D: 5},
		Task{Name: "fast", C: 1, T: 5, D: 20},
	)
	rm := ts.RateMonotonic()
	if rm[0].Name != "fast" {
		t.Fatal("RM order wrong")
	}
	dm := ts.DeadlineMonotonic()
	if dm[0].Name != "slow" {
		t.Fatal("DM order wrong")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if b := LiuLaylandBound(1); math.Abs(b-1) > 1e-9 {
		t.Fatalf("n=1 bound = %v", b)
	}
	if b := LiuLaylandBound(2); math.Abs(b-0.8284) > 1e-3 {
		t.Fatalf("n=2 bound = %v", b)
	}
	if LiuLaylandBound(0) != 0 {
		t.Fatal("n=0 bound")
	}
	// decreasing toward ln 2
	if LiuLaylandBound(100) < math.Ln2-1e-3 || LiuLaylandBound(100) > LiuLaylandBound(2) {
		t.Fatal("bound not converging to ln 2")
	}
}

func TestRMUtilizationAndHyperbolic(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 1, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 8, D: 8},
	) // U = 0.5
	if !RMUtilizationTest(ts) || !HyperbolicTest(ts) {
		t.Fatal("clearly schedulable set rejected")
	}
	heavy := set(
		Task{Name: "a", C: 3, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 8, D: 8},
	) // U = 1.0
	if RMUtilizationTest(heavy) || HyperbolicTest(heavy) {
		t.Fatal("over-bound set accepted")
	}
}

func TestDemandBound(t *testing.T) {
	ts := set(Task{Name: "a", C: 2, T: 10, D: 5})
	if DemandBound(ts, 4) != 0 {
		t.Fatal("demand before first deadline should be 0")
	}
	if DemandBound(ts, 5) != 2 {
		t.Fatalf("demand at 5 = %d", DemandBound(ts, 5))
	}
	if DemandBound(ts, 15) != 4 {
		t.Fatalf("demand at 15 = %d", DemandBound(ts, 15))
	}
}

func TestEDFDemandTest(t *testing.T) {
	ok := set(
		Task{Name: "a", C: 2, T: 10, D: 5},
		Task{Name: "b", C: 3, T: 10, D: 10},
	)
	if !EDFDemandTest(ok) {
		t.Fatal("schedulable set rejected")
	}
	bad := set(
		Task{Name: "a", C: 3, T: 10, D: 3},
		Task{Name: "b", C: 3, T: 10, D: 4},
	) // at t=4 demand = 6 > 4
	if EDFDemandTest(bad) {
		t.Fatal("unschedulable set accepted")
	}
	over := set(Task{Name: "a", C: 11, T: 10, D: 20})
	if EDFDemandTest(over) {
		t.Fatal("overutilized set accepted")
	}
}

func TestResponseTimeAnalysisClassic(t *testing.T) {
	// classic example: T=(4,1) (5,2) (10,3) under RM
	ts := set(
		Task{Name: "t1", C: 1, T: 4, D: 4},
		Task{Name: "t2", C: 2, T: 5, D: 5},
		Task{Name: "t3", C: 3, T: 10, D: 10},
	)
	resp, ok := ResponseTimeAnalysis(ts)
	if !ok {
		t.Fatalf("schedulable set rejected: %v", resp)
	}
	if resp[0] != 1 || resp[1] != 3 {
		t.Fatalf("responses = %v, want [1 3 ...]", resp)
	}
	// t3: r = 3 + ceil(r/4)*1 + ceil(r/5)*2 -> fixpoint 10
	if resp[2] != 10 {
		t.Fatalf("t3 response = %d, want 10", resp[2])
	}
}

func TestResponseTimeWithBlocking(t *testing.T) {
	hi := Task{Name: "hi", C: 1, T: 10, D: 5}
	lo := Task{Name: "lo", C: 5, T: 50, D: 50, CriticalSections: []int{2}}
	resp, ok := ResponseTimeAnalysis(set(hi, lo))
	if !ok {
		t.Fatalf("rejected: %v", resp)
	}
	if resp[0] != 1+2 { // blocked by lo's critical section once
		t.Fatalf("hi response = %d, want 3", resp[0])
	}
	// tighter deadline makes blocking fatal
	hi.D = 2
	lo.CriticalSections = []int{4}
	resp, ok = ResponseTimeAnalysis(set(hi, lo))
	if ok || resp[0] != -1 {
		t.Fatalf("blocking miss not detected: %v ok=%v", resp, ok)
	}
}

func TestSimulateEDFSchedulable(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 1, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 8, D: 8},
	)
	res := Simulate(ts, EDF, 0)
	if !res.Schedulable {
		t.Fatalf("misses: %v", res.Misses)
	}
	if res.WorstResponse["a"] <= 0 || res.WorstResponse["a"] > 4 {
		t.Fatalf("worst response a = %d", res.WorstResponse["a"])
	}
	// utilization 0.5 -> half the slots idle
	if res.IdleSlots != res.Horizon/2 {
		t.Fatalf("idle = %d of %d", res.IdleSlots, res.Horizon)
	}
}

func TestSimulateOverloadMisses(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 3, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 4, D: 4},
	) // U = 1.25
	res := Simulate(ts, EDF, 0)
	if res.Schedulable {
		t.Fatal("overload not detected")
	}
	total := 0
	for _, n := range res.Misses {
		total += n
	}
	if total == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestSimulateRMvsEDFBoundary(t *testing.T) {
	// U ≈ 1.0: EDF schedules it, RM misses (classic separation).
	ts := set(
		Task{Name: "a", C: 2, T: 5, D: 5},
		Task{Name: "b", C: 3, T: 5, D: 5},
	)
	if !Simulate(ts, EDF, 0).Schedulable {
		t.Fatal("EDF should schedule U=1 implicit deadlines")
	}
	ts2 := set(
		Task{Name: "a", C: 2, T: 4, D: 4},
		Task{Name: "b", C: 3, T: 6, D: 6},
	) // U = 1.0; RM misses b at t=6
	if Simulate(ts2, RM, 0).Schedulable {
		t.Fatal("RM should miss at U=1.0 for this set")
	}
	if !Simulate(ts2, EDF, 0).Schedulable {
		t.Fatal("EDF should schedule this set")
	}
}

func TestSimulatePolicyOrderingDM(t *testing.T) {
	ts := set(
		Task{Name: "long", C: 2, T: 6, D: 3},  // short deadline -> high DM prio
		Task{Name: "short", C: 2, T: 5, D: 5}, // shorter period -> high RM prio
	)
	dm := Simulate(ts, DM, 30)
	if dm.Misses["long"] > 0 {
		t.Fatalf("DM should protect the short-deadline task: %v", dm.Misses)
	}
}

func TestAnalysisSimAgreementProperty(t *testing.T) {
	// If response-time analysis says schedulable, simulation agrees
	// (the converse need not hold: RTA is sufficient-only with
	// blocking, exact without).
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed%1000 + 3))
		var ts TaskSet
		n := 2 + local.Intn(3)
		for i := 0; i < n; i++ {
			c := 1 + local.Intn(3)
			tp := []int{4, 5, 8, 10, 20}[local.Intn(5)]
			if c > tp {
				c = tp
			}
			ts = append(ts, Task{
				Name: string(rune('a' + i)), C: c, T: tp, D: tp,
			})
		}
		_ = rng
		rm, resp, ok := RMSchedulable(ts)
		if !ok {
			return true // inconclusive
		}
		sim := Simulate(rm, RM, 0)
		if !sim.Schedulable {
			return false
		}
		// simulated worst response can never exceed analyzed bound
		for i, tk := range rm {
			if sim.WorstResponse[tk.Name] > resp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEDFDemandMatchesSimulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed%1000 + 17))
		var ts TaskSet
		n := 2 + local.Intn(3)
		for i := 0; i < n; i++ {
			c := 1 + local.Intn(2)
			tp := []int{4, 6, 8, 12}[local.Intn(4)]
			d := c + local.Intn(tp-c+1)
			ts = append(ts, Task{Name: string(rune('a' + i)), C: c, T: tp, D: d})
		}
		analysisOK, simOK := CompareAnalysisToSimulation(ts, EDF)
		// demand test exact under synchronous release: must agree
		return analysisOK == simOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if EDF.String() != "EDF" || RM.String() != "RM" || DM.String() != "DM" {
		t.Fatal("Policy.String wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}
