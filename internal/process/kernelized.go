package process

import "sort"

// Kernelized monitor scheduling, after [MOK 83] (the dissertation the
// paper builds on): critical sections run to completion — the
// scheduler defers preemption while the running process is inside a
// monitor — so mutual exclusion needs no locks at all. The price is
// that any job can be blocked by at most one critical section of at
// most q slots, where q bounds every section length.

// KernelizedEDFTest is a sufficient schedulability test for EDF with
// deferred preemption and section bound q: every section must fit in
// q, utilization must not exceed 1, and the processor-demand
// criterion must hold with q−1 slots of blocking slack at every
// absolute deadline (a job can be blocked once, for at most q−1
// slots, by a later-deadline job's section in progress).
func KernelizedEDFTest(ts TaskSet, q int) bool {
	if q < 1 {
		return false
	}
	for _, t := range ts {
		for _, cs := range t.CriticalSections {
			if cs > q {
				return false // a section could be preempted
			}
		}
	}
	if ts.Utilization() > 1+1e-12 {
		return false
	}
	limit := ts.Hyperperiod()
	maxD := 0
	for _, t := range ts {
		if t.D > maxD {
			maxD = t.D
		}
	}
	limit += maxD
	points := map[int]bool{}
	for _, tk := range ts {
		for t := tk.D; t <= limit; t += tk.T {
			points[t] = true
		}
	}
	for t := range points {
		if DemandBound(ts, t) > t-(q-1) {
			return false
		}
	}
	return true
}

// KernelizedResult extends SimResult with critical-section integrity.
type KernelizedResult struct {
	SimResult
	Quantum int
	// SectionPreemptions counts critical sections that were preempted
	// mid-way — zero by construction under deferred preemption; the
	// counter guards against scheduler regressions.
	SectionPreemptions int
}

// SimulateKernelized runs EDF with deferred preemption: the running
// job cannot be switched out while inside a critical section (its
// declared sections are packed at the front of its execution — the
// worst case for blocking). Horizon 0 means one hyperperiod plus the
// largest deadline.
func SimulateKernelized(ts TaskSet, q, horizon int) *KernelizedResult {
	if horizon <= 0 {
		horizon = ts.Hyperperiod()
		maxD := 0
		for _, t := range ts {
			if t.D > maxD {
				maxD = t.D
			}
		}
		horizon += maxD
	}
	if q < 1 {
		q = 1
	}
	// per task, which execution slots are inside critical sections
	inSection := make([][]bool, len(ts))
	for i, t := range ts {
		m := make([]bool, t.C)
		at := 0
		for _, cs := range t.CriticalSections {
			for j := 0; j < cs && at < t.C; j++ {
				m[at] = true
				at++
			}
		}
		inSection[i] = m
	}
	// midSection reports whether the job has begun a section and not
	// yet left it (next slot continues the same section).
	midSection := func(j *simJob) bool {
		done := ts[j.task].C - j.left
		return done > 0 && done < ts[j.task].C &&
			inSection[j.task][done] && inSection[j.task][done-1]
	}

	res := &KernelizedResult{
		SimResult: SimResult{
			Policy:        EDF,
			WorstResponse: make(map[string]int, len(ts)),
			Misses:        make(map[string]int, len(ts)),
			Schedulable:   true,
			Horizon:       horizon,
		},
		Quantum: q,
	}
	var pending []*simJob
	var running *simJob
	missed := map[*simJob]bool{}
	for t := 0; t < horizon; t++ {
		for i, task := range ts {
			if t%task.T == 0 {
				pending = append(pending, &simJob{task: i, release: t, deadline: t + task.D, left: task.C})
			}
		}
		for _, j := range pending {
			if j.left > 0 && t >= j.deadline && !missed[j] {
				missed[j] = true
				res.Misses[ts[j.task].Name]++
				res.Schedulable = false
			}
		}
		// deferred preemption: keep the running job while mid-section
		if running == nil || running.left == 0 || !midSection(running) {
			sort.SliceStable(pending, func(a, b int) bool {
				if pending[a].deadline != pending[b].deadline {
					return pending[a].deadline < pending[b].deadline
				}
				return pending[a].release < pending[b].release
			})
			var next *simJob
			for _, j := range pending {
				if j.left > 0 {
					next = j
					break
				}
			}
			if running != nil && next != running && running.left > 0 && midSection(running) {
				res.SectionPreemptions++ // must not happen
			}
			running = next
		}
		if running == nil || running.left == 0 {
			res.IdleSlots++
			continue
		}
		running.left--
		if running.left == 0 {
			name := ts[running.task].Name
			r := t + 1 - running.release
			if r > res.WorstResponse[name] {
				res.WorstResponse[name] = r
			}
			live := pending[:0]
			for _, j := range pending {
				if j != running {
					live = append(live, j)
				}
			}
			pending = live
			running = nil
		}
	}
	for _, j := range pending {
		if j.left > 0 && horizon >= j.deadline && !missed[j] {
			res.Misses[ts[j.task].Name]++
			res.Schedulable = false
		}
	}
	return res
}
