// Package process implements the process-based computation model the
// paper compares against: each timing constraint is mapped to a
// sequential process (a straight-line topological sort of its task
// graph) with a computation time, period and deadline, and the
// process set is handed to classical single-processor schedulers —
// earliest-deadline-first, rate-monotonic and deadline-monotonic —
// together with their schedulability analyses. Shared functional
// elements become monitor critical sections and contribute blocking
// terms.
//
// This is the "straightforward way to implement an instance of our
// graph-based model" that the paper describes and then improves on:
// because every constraint gets its own process, operations common to
// several constraints are executed redundantly.
package process

import (
	"fmt"
	"sort"

	"rtm/internal/core"
)

// Task is a periodic or sporadic process: computation time C released
// every T time units (at most that often when sporadic) with relative
// deadline D.
type Task struct {
	Name string
	C    int // worst-case computation time
	T    int // period / minimum separation
	D    int // relative deadline
	// Sporadic marks minimum-separation (asynchronous) releases; the
	// analyses treat sporadic tasks at their maximum rate, which is
	// the worst case.
	Sporadic bool
	// CriticalSections lists the lengths of the monitor critical
	// sections the task executes (one per shared functional element
	// in its body).
	CriticalSections []int
}

// Utilization returns C/T.
func (t Task) Utilization() float64 { return float64(t.C) / float64(t.T) }

// Density returns C/min(D,T).
func (t Task) Density() float64 {
	m := t.D
	if t.T < m {
		m = t.T
	}
	return float64(t.C) / float64(m)
}

// TaskSet is an ordered collection of tasks.
type TaskSet []Task

// Utilization returns Σ C_i/T_i.
func (ts TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.Utilization()
	}
	return u
}

// Density returns Σ C_i/min(D_i,T_i).
func (ts TaskSet) Density() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.Density()
	}
	return u
}

// Hyperperiod returns the lcm of the periods.
func (ts TaskSet) Hyperperiod() int {
	h := 1
	for _, t := range ts {
		h = lcm(h, t.T)
	}
	return h
}

// Validate checks positive parameters and C ≤ D.
func (ts TaskSet) Validate() error {
	seen := map[string]bool{}
	for _, t := range ts {
		if t.Name == "" || seen[t.Name] {
			return fmt.Errorf("process: missing or duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		if t.C <= 0 || t.T <= 0 || t.D <= 0 {
			return fmt.Errorf("process: task %q has non-positive parameter (C=%d T=%d D=%d)",
				t.Name, t.C, t.T, t.D)
		}
		if t.C > t.D {
			return fmt.Errorf("process: task %q cannot meet its deadline (C=%d > D=%d)",
				t.Name, t.C, t.D)
		}
	}
	return nil
}

// FromModel maps every timing constraint of a graph-based model to a
// process, exactly as the paper's naive synthesis does: the process
// body is a topological sort of the task graph, so its computation
// time is the constraint's computation time, with no sharing between
// processes. Shared functional elements contribute critical sections
// of their full weight (unless the model was pipelined first).
func FromModel(m *core.Model) (TaskSet, error) {
	shared := map[string]bool{}
	for _, e := range m.SharedElements() {
		shared[e] = true
	}
	var ts TaskSet
	for _, c := range m.Constraints {
		if _, err := c.Task.G.TopoSort(); err != nil {
			return nil, fmt.Errorf("process: constraint %q: %w", c.Name, err)
		}
		var cs []int
		for _, node := range c.Task.Nodes() {
			e := c.Task.ElementOf(node)
			if shared[e] {
				cs = append(cs, m.Comm.WeightOf(e))
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(cs)))
		ts = append(ts, Task{
			Name:             c.Name,
			C:                c.ComputationTime(m.Comm),
			T:                c.Period,
			D:                c.Deadline,
			Sporadic:         c.Kind == core.Asynchronous,
			CriticalSections: cs,
		})
	}
	return ts, ts.Validate()
}

// RateMonotonic returns the tasks sorted by increasing period
// (highest priority first).
func (ts TaskSet) RateMonotonic() TaskSet {
	out := append(TaskSet(nil), ts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// DeadlineMonotonic returns the tasks sorted by increasing relative
// deadline (highest priority first).
func (ts TaskSet) DeadlineMonotonic() TaskSet {
	out := append(TaskSet(nil), ts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].D < out[j].D })
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
