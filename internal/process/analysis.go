package process

import "math"

// LiuLaylandBound returns the rate-monotonic utilization bound
// n(2^{1/n} − 1) for n tasks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// RMUtilizationTest applies the Liu–Layland sufficient test for
// rate-monotonic scheduling of implicit-deadline tasks
// (U ≤ n(2^{1/n}−1)). A false result is inconclusive.
func RMUtilizationTest(ts TaskSet) bool {
	return ts.Utilization() <= LiuLaylandBound(len(ts))+1e-12
}

// HyperbolicTest applies the hyperbolic sufficient test for
// rate-monotonic scheduling: Π (U_i + 1) ≤ 2.
func HyperbolicTest(ts TaskSet) bool {
	p := 1.0
	for _, t := range ts {
		p *= t.Utilization() + 1
	}
	return p <= 2+1e-12
}

// EDFUtilizationTest applies the exact EDF test for implicit
// deadlines (D = T): U ≤ 1. For constrained deadlines it is only
// necessary.
func EDFUtilizationTest(ts TaskSet) bool {
	return ts.Utilization() <= 1+1e-12
}

// DemandBound returns the EDF processor demand h(t): the total
// computation released and due within any interval of length t,
// assuming synchronous worst-case releases.
func DemandBound(ts TaskSet, t int) int {
	h := 0
	for _, tk := range ts {
		if t < tk.D {
			continue
		}
		h += ((t-tk.D)/tk.T + 1) * tk.C
	}
	return h
}

// EDFDemandTest applies the processor-demand criterion for EDF with
// constrained deadlines: h(t) ≤ t for every absolute deadline t up to
// the hyperperiod (+ max deadline). This is exact for task sets with
// U < 1 and synchronous release.
func EDFDemandTest(ts TaskSet) bool {
	if ts.Utilization() > 1+1e-12 {
		return false
	}
	limit := ts.Hyperperiod()
	maxD := 0
	for _, t := range ts {
		if t.D > maxD {
			maxD = t.D
		}
	}
	limit += maxD
	// check only at absolute deadlines
	points := map[int]bool{}
	for _, tk := range ts {
		for t := tk.D; t <= limit; t += tk.T {
			points[t] = true
		}
	}
	for t := range points {
		if DemandBound(ts, t) > t {
			return false
		}
	}
	return true
}

// ResponseTimeAnalysis computes the worst-case response time of every
// task under preemptive fixed-priority scheduling with the given
// priority order (index 0 = highest priority), including a blocking
// term from monitor critical sections of lower-priority tasks: a
// task can be blocked once by the longest critical section of any
// lower-priority task (non-preemptible monitor sections).
//
// It returns the response times aligned with the input order and
// whether every task meets its deadline. Iteration diverging past the
// deadline marks the task unschedulable with response −1.
func ResponseTimeAnalysis(ts TaskSet) ([]int, bool) {
	n := len(ts)
	resp := make([]int, n)
	allOK := true
	for i := 0; i < n; i++ {
		// blocking: longest critical section among lower-priority tasks
		b := 0
		for j := i + 1; j < n; j++ {
			for _, cs := range ts[j].CriticalSections {
				if cs > b {
					b = cs
				}
			}
		}
		r := ts[i].C + b
		for {
			interference := 0
			for j := 0; j < i; j++ {
				interference += ceilDiv(r, ts[j].T) * ts[j].C
			}
			nr := ts[i].C + b + interference
			if nr == r {
				break
			}
			r = nr
			if r > ts[i].D {
				break
			}
		}
		if r > ts[i].D {
			resp[i] = -1
			allOK = false
		} else {
			resp[i] = r
		}
	}
	return resp, allOK
}

// RMSchedulable runs response-time analysis under rate-monotonic
// priorities and reports per-task response times (in RM order) and
// overall schedulability.
func RMSchedulable(ts TaskSet) (TaskSet, []int, bool) {
	rm := ts.RateMonotonic()
	resp, ok := ResponseTimeAnalysis(rm)
	return rm, resp, ok
}

// DMSchedulable runs response-time analysis under deadline-monotonic
// priorities.
func DMSchedulable(ts TaskSet) (TaskSet, []int, bool) {
	dm := ts.DeadlineMonotonic()
	resp, ok := ResponseTimeAnalysis(dm)
	return dm, resp, ok
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
