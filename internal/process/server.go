package process

import "sort"

// Aperiodic servers: the classical process-model mechanisms for
// serving asynchronous (sporadic/aperiodic) requests alongside
// periodic tasks. They are the process-based counterpart of the
// paper's latency scheduling: a polling server is in fact the exact
// run-time shape latency scheduling compiles to (reserved slots at a
// fixed cadence), while the deferrable server retains its budget and
// serves arrivals immediately when capacity remains.

// ServerKind selects the aperiodic server discipline.
type ServerKind int

const (
	// Polling: the server's budget is usable only at replenishment
	// instants; if no request is pending, the budget is lost.
	Polling ServerKind = iota
	// Deferrable: the budget persists through the period and serves
	// requests the moment they arrive (bandwidth-preserving).
	Deferrable
)

func (k ServerKind) String() string {
	if k == Polling {
		return "polling"
	}
	return "deferrable"
}

// Server is an aperiodic server: Budget slots of service every Period
// at the given fixed priority position among the periodic tasks
// (highest = 0).
type Server struct {
	Kind   ServerKind
	Budget int
	Period int
}

// Request is one aperiodic arrival demanding Work slots of service.
type Request struct {
	Arrival int
	Work    int
}

// ServerResult reports one server simulation.
type ServerResult struct {
	// Responses aligns with the request slice: completion − arrival,
	// or -1 when unfinished at the horizon.
	Responses []int
	// WorstResponse is the maximum finite response (-1 when none).
	WorstResponse int
	// PeriodicOK reports that the periodic background tasks all met
	// their deadlines while the server ran.
	PeriodicOK bool
}

// SimulateServer runs the periodic task set under rate-monotonic
// priorities with the server inserted at the priority its period
// earns (rate-monotonic among them), serving the given aperiodic
// requests. Horizon 0 means one hyperperiod of tasks and server plus
// the last arrival plus total request work.
func SimulateServer(ts TaskSet, srv Server, reqs []Request, horizon int) *ServerResult {
	if horizon <= 0 {
		horizon = ts.Hyperperiod()
		horizon = lcm(horizon, srv.Period)
		last, work := 0, 0
		for _, r := range reqs {
			if r.Arrival > last {
				last = r.Arrival
			}
			work += r.Work
		}
		horizon += last + work + srv.Period
	}
	// priority order: RM over tasks and server
	type entry struct {
		isServer bool
		task     int
		period   int
	}
	entries := []entry{{isServer: true, period: srv.Period}}
	for i, t := range ts {
		entries = append(entries, entry{task: i, period: t.T})
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].period < entries[b].period })

	res := &ServerResult{Responses: make([]int, len(reqs)), PeriodicOK: true}
	for i := range res.Responses {
		res.Responses[i] = -1
	}

	budget := 0
	var jobs []*simJob
	missed := map[*simJob]bool{}
	pendingReq := make([]int, len(reqs)) // remaining work per request
	admitted := make([]bool, len(reqs))  // polling: admitted at a poll instant
	for i, r := range reqs {
		pendingReq[i] = r.Work
	}
	nextReq := func(t int) int {
		for i, r := range reqs {
			if pendingReq[i] > 0 && r.Arrival <= t {
				if srv.Kind == Polling && !admitted[i] {
					continue
				}
				return i
			}
		}
		return -1
	}

	for t := 0; t < horizon; t++ {
		if t%srv.Period == 0 {
			budget = srv.Budget
			if srv.Kind == Polling {
				// the poll: admit everything pending now; if the
				// queue is empty the budget is lost immediately.
				any := false
				for i, r := range reqs {
					if pendingReq[i] > 0 && r.Arrival <= t {
						admitted[i] = true
						any = true
					}
				}
				if !any {
					budget = 0
				}
			}
		}
		for i, task := range ts {
			if t%task.T == 0 {
				jobs = append(jobs, &simJob{task: i, release: t, deadline: t + task.D, left: task.C})
			}
		}
		for _, j := range jobs {
			if j.left > 0 && t >= j.deadline && !missed[j] {
				missed[j] = true
				res.PeriodicOK = false
			}
		}
		// highest-priority ready entity runs
		ran := false
		for _, e := range entries {
			if e.isServer {
				if budget <= 0 {
					continue
				}
				ri := nextReq(t)
				if ri < 0 {
					if srv.Kind == Polling {
						budget = 0 // queue drained: polling budget is lost
					}
					continue
				}
				budget--
				pendingReq[ri]--
				if pendingReq[ri] == 0 {
					res.Responses[ri] = t + 1 - reqs[ri].Arrival
				}
				ran = true
			} else {
				// earliest-release pending job of this task
				var pick *simJob
				for _, j := range jobs {
					if j.task == e.task && j.left > 0 {
						pick = j
						break
					}
				}
				if pick == nil {
					continue
				}
				pick.left--
				if pick.left == 0 {
					live := jobs[:0]
					for _, j := range jobs {
						if j != pick {
							live = append(live, j)
						}
					}
					jobs = live
				}
				ran = true
			}
			if ran {
				break
			}
		}
	}
	for _, r := range res.Responses {
		if r > res.WorstResponse {
			res.WorstResponse = r
		}
	}
	if res.WorstResponse == 0 {
		res.WorstResponse = -1
		for _, r := range res.Responses {
			if r > res.WorstResponse {
				res.WorstResponse = r
			}
		}
	}
	return res
}

// PollingServerBound returns the classical worst-case response bound
// of a polling server for a request of the given work, ignoring
// higher-priority interference: the request can just miss a poll
// (wait up to P), then consumes ⌈work/budget⌉ polls, finishing its
// last chunk right after the final poll.
func PollingServerBound(srv Server, work int) int {
	if srv.Budget <= 0 || work <= 0 {
		return -1
	}
	full := (work + srv.Budget - 1) / srv.Budget
	lastChunk := work - (full-1)*srv.Budget
	return srv.Period + (full-1)*srv.Period + lastChunk
}
