package process

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestServerKindString(t *testing.T) {
	if Polling.String() != "polling" || Deferrable.String() != "deferrable" {
		t.Fatal("kind strings")
	}
}

func TestDeferrableServesImmediately(t *testing.T) {
	// no periodic load: a deferrable server with budget serves an
	// arrival at t=1 immediately; a polling server waits for the next
	// poll at t=4.
	srv := Server{Kind: Deferrable, Budget: 2, Period: 4}
	reqs := []Request{{Arrival: 1, Work: 1}}
	res := SimulateServer(nil, srv, reqs, 40)
	if res.Responses[0] != 1 {
		t.Fatalf("deferrable response = %d, want 1", res.Responses[0])
	}
	poll := SimulateServer(nil, Server{Kind: Polling, Budget: 2, Period: 4}, reqs, 40)
	// arrival at 1 missed the poll at 0; admitted at 4, served [4,5)
	if poll.Responses[0] != 4 {
		t.Fatalf("polling response = %d, want 4", poll.Responses[0])
	}
}

func TestPollingAdmissionAtPoll(t *testing.T) {
	// arrival exactly at the poll instant is admitted immediately
	srv := Server{Kind: Polling, Budget: 2, Period: 5}
	res := SimulateServer(nil, srv, []Request{{Arrival: 5, Work: 2}}, 40)
	if res.Responses[0] != 2 {
		t.Fatalf("response = %d, want 2", res.Responses[0])
	}
}

func TestServerWithPeriodicLoad(t *testing.T) {
	ts := set(Task{Name: "p", C: 2, T: 4, D: 4})
	srv := Server{Kind: Deferrable, Budget: 1, Period: 4}
	// server period equals task period; RM tie-break puts the server
	// first (stable sort, server entry first)
	reqs := []Request{{Arrival: 0, Work: 1}, {Arrival: 10, Work: 2}}
	res := SimulateServer(ts, srv, reqs, 60)
	if !res.PeriodicOK {
		t.Fatal("periodic task missed under server load")
	}
	for i, r := range res.Responses {
		if r < 0 {
			t.Fatalf("request %d unfinished", i)
		}
	}
	if res.WorstResponse < 1 {
		t.Fatalf("worst response = %d", res.WorstResponse)
	}
}

func TestPollingBudgetLostWhenIdle(t *testing.T) {
	// request arrives just after the poll with exactly-budget work:
	// it must wait a full period even though the processor idles.
	srv := Server{Kind: Polling, Budget: 3, Period: 10}
	res := SimulateServer(nil, srv, []Request{{Arrival: 1, Work: 3}}, 60)
	// admitted at 10, served [10,13) -> response 12
	if res.Responses[0] != 12 {
		t.Fatalf("response = %d, want 12", res.Responses[0])
	}
}

func TestPollingServerBound(t *testing.T) {
	srv := Server{Kind: Polling, Budget: 3, Period: 10}
	if b := PollingServerBound(srv, 3); b != 13 {
		t.Fatalf("bound(3) = %d, want 13", b)
	}
	if b := PollingServerBound(srv, 4); b != 21 { // two polls
		t.Fatalf("bound(4) = %d, want 21", b)
	}
	if PollingServerBound(Server{}, 3) != -1 || PollingServerBound(srv, 0) != -1 {
		t.Fatal("degenerate bounds")
	}
}

// Property: simulated polling responses never exceed the analytic
// bound when there is no periodic interference and requests are
// spaced at least a server period apart with work ≤ budget.
func TestPollingBoundSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed%1000 + 41))
		srv := Server{Kind: Polling, Budget: 1 + rng.Intn(3), Period: 5 + rng.Intn(10)}
		var reqs []Request
		at := rng.Intn(srv.Period)
		for len(reqs) < 3 {
			w := 1 + rng.Intn(srv.Budget)
			reqs = append(reqs, Request{Arrival: at, Work: w})
			at += srv.Period + rng.Intn(srv.Period)
		}
		res := SimulateServer(nil, srv, reqs, 0)
		for i, r := range res.Responses {
			if r < 0 {
				return false
			}
			if r > PollingServerBound(srv, reqs[i].Work) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a deferrable server's response is never worse than the
// polling server's for the same workload (bandwidth preservation).
func TestDeferrableBeatsPollingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed%1000 + 43))
		budget := 1 + rng.Intn(3)
		period := 4 + rng.Intn(8)
		var reqs []Request
		at := rng.Intn(period)
		for len(reqs) < 3 {
			reqs = append(reqs, Request{Arrival: at, Work: 1 + rng.Intn(budget)})
			at += period + 1 + rng.Intn(period)
		}
		pol := SimulateServer(nil, Server{Kind: Polling, Budget: budget, Period: period}, reqs, 0)
		def := SimulateServer(nil, Server{Kind: Deferrable, Budget: budget, Period: period}, reqs, 0)
		for i := range reqs {
			if pol.Responses[i] < 0 || def.Responses[i] < 0 {
				return false
			}
			if def.Responses[i] > pol.Responses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
