package process

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelizedTestBasics(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 1, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 8, D: 8},
	)
	if !KernelizedEDFTest(ts, 1) {
		t.Fatal("q=1 should reduce to plain EDF on a light set")
	}
	if KernelizedEDFTest(ts, 0) {
		t.Fatal("q=0 accepted")
	}
	// a large section bound eats the slack of tight deadlines
	tight := set(
		Task{Name: "a", C: 1, T: 4, D: 3},
		Task{Name: "b", C: 2, T: 8, D: 8},
	)
	if KernelizedEDFTest(tight, 4) {
		t.Fatal("q=4 should fail: demand 1 at t=3 exceeds 3-(4-1)=0")
	}
	if !KernelizedEDFTest(tight, 2) {
		t.Fatal("q=2 should pass the tight set")
	}
}

func TestKernelizedSectionFit(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 3, T: 10, D: 10, CriticalSections: []int{3}},
	)
	if KernelizedEDFTest(ts, 2) {
		t.Fatal("section larger than quantum accepted")
	}
	if !KernelizedEDFTest(ts, 3) {
		t.Fatal("fitting section rejected")
	}
}

func TestSimulateKernelizedQ1MatchesEDF(t *testing.T) {
	ts := set(
		Task{Name: "a", C: 1, T: 4, D: 4},
		Task{Name: "b", C: 2, T: 8, D: 8},
	)
	plain := Simulate(ts, EDF, 0)
	kern := SimulateKernelized(ts, 1, 0)
	if plain.Schedulable != kern.Schedulable {
		t.Fatalf("q=1 kernelized disagrees with EDF: %v vs %v", plain.Schedulable, kern.Schedulable)
	}
	if kern.SectionPreemptions != 0 {
		t.Fatal("section preemptions without sections")
	}
}

func TestSimulateKernelizedProtectsSections(t *testing.T) {
	// sections of length 2 with quantum 2: never preempted
	ts := set(
		Task{Name: "hot", C: 2, T: 5, D: 5, CriticalSections: []int{2}},
		Task{Name: "bg", C: 4, T: 10, D: 10, CriticalSections: []int{2}},
	)
	res := SimulateKernelized(ts, 2, 0)
	if res.SectionPreemptions != 0 {
		t.Fatalf("sections preempted %d times with fitting quantum", res.SectionPreemptions)
	}
	if !res.Schedulable {
		t.Fatalf("misses: %v", res.Misses)
	}
}

func TestSimulateKernelizedQuantumCost(t *testing.T) {
	// a tight task whose deadline cannot absorb the quantum latency
	ts := set(
		Task{Name: "tight", C: 1, T: 8, D: 2},
		Task{Name: "bulk", C: 6, T: 8, D: 8},
	)
	if !SimulateKernelized(ts, 1, 0).Schedulable {
		t.Fatal("q=1 should work")
	}
	// with q=4 the tight job released mid-quantum waits too long:
	// release at t=8 (a quantum boundary) is fine, but bulk occupies
	// quanta; construct a phase conflict via the analysis test instead
	if KernelizedEDFTest(ts, 4) {
		t.Fatal("analysis should reject q=4 for D=2")
	}
}

// Property: the kernelized sufficient test is sound — whenever it
// accepts, the kernelized simulation observes no misses and no
// section preemptions.
func TestKernelizedSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed%1000 + 29))
		var ts TaskSet
		n := 2 + rng.Intn(2)
		for i := 0; i < n; i++ {
			c := 1 + rng.Intn(3)
			tp := []int{6, 8, 12, 24}[rng.Intn(4)]
			d := c + rng.Intn(tp-c+1)
			var cs []int
			if c > 1 && rng.Intn(2) == 0 {
				cs = []int{1 + rng.Intn(c-1)}
			}
			ts = append(ts, Task{Name: string(rune('a' + i)), C: c, T: tp, D: d, CriticalSections: cs})
		}
		for _, q := range []int{1, 2, 3} {
			if KernelizedEDFTest(ts, q) {
				res := SimulateKernelized(ts, q, 0)
				if !res.Schedulable || res.SectionPreemptions != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
