package fault

import (
	"fmt"
	"sort"

	"rtm/internal/core"
)

// ReplicaName returns the name of replica i of an element.
func ReplicaName(elem string, i int) string { return fmt.Sprintf("%s~r%d", elem, i) }

// VoterName returns the name of the majority voter of a replicated
// element.
func VoterName(elem string) string { return elem + "~vote" }

// Replicate applies modular redundancy to one functional element: it
// is replaced by k replicas (same weight and behavior slot) feeding a
// majority voter of the given weight. Incoming communication paths
// are fanned out to every replica; outgoing paths leave the voter.
// Task graphs executing the element are rewritten accordingly, so a
// single corrupted replica is masked by the voter and never violates
// downstream edge relations.
func Replicate(m *core.Model, elem string, k, voterWeight int) (*core.Model, error) {
	if k < 2 {
		return nil, fmt.Errorf("fault: replication factor %d must be ≥ 2", k)
	}
	if voterWeight < 1 {
		voterWeight = 1
	}
	w, ok := m.Comm.Weight[elem]
	if !ok {
		return nil, fmt.Errorf("fault: unknown element %q", elem)
	}

	out := core.NewModel()
	for _, e := range m.Comm.Elements() {
		if e == elem {
			for i := 0; i < k; i++ {
				out.Comm.AddElement(ReplicaName(elem, i), w)
			}
			out.Comm.AddElement(VoterName(elem), voterWeight)
		} else {
			out.Comm.AddElement(e, m.Comm.WeightOf(e))
		}
	}
	for i := 0; i < k; i++ {
		out.Comm.AddPath(ReplicaName(elem, i), VoterName(elem))
	}
	for _, edge := range m.Comm.G.Edges() {
		switch {
		case edge.From == elem && edge.To == elem:
			for i := 0; i < k; i++ {
				out.Comm.AddPath(VoterName(elem), ReplicaName(elem, i))
			}
		case edge.From == elem:
			out.Comm.AddPath(VoterName(elem), edge.To)
		case edge.To == elem:
			for i := 0; i < k; i++ {
				out.Comm.AddPath(edge.From, ReplicaName(elem, i))
			}
		default:
			out.Comm.AddPath(edge.From, edge.To)
		}
	}

	for _, c := range m.Constraints {
		nc := &core.Constraint{
			Name: c.Name, Period: c.Period, Deadline: c.Deadline, Kind: c.Kind,
			Task: core.NewTaskGraph(),
		}
		for _, node := range c.Task.Nodes() {
			if c.Task.ElementOf(node) == elem {
				for i := 0; i < k; i++ {
					rn := ReplicaName(node, i)
					nc.Task.AddStep(rn, ReplicaName(elem, i))
					nc.Task.AddPrec(rn, VoterName(node))
				}
				nc.Task.AddStep(VoterName(node), VoterName(elem))
			} else {
				nc.Task.AddStep(node, c.Task.ElementOf(node))
			}
		}
		for _, edge := range c.Task.G.Edges() {
			from, to := edge.From, edge.To
			if c.Task.ElementOf(from) == elem {
				from = VoterName(from)
			}
			if c.Task.ElementOf(to) == elem {
				for i := 0; i < k; i++ {
					nc.Task.AddPrec(from, ReplicaName(to, i))
				}
				continue
			}
			nc.Task.AddPrec(from, to)
		}
		out.AddConstraint(nc)
	}
	return out, nil
}

// MajorityBehavior is the voter: it outputs the most common input
// value (smallest value wins ties, so a single corrupted replica
// among k ≥ 3 never changes the outcome).
func MajorityBehavior(inputs map[string]int) int {
	count := map[int]int{}
	for _, v := range inputs {
		count[v]++
	}
	best, bestN := 0, -1
	vals := make([]int, 0, len(count))
	for v := range count {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	for _, v := range vals {
		if count[v] > bestN {
			best, bestN = v, count[v]
		}
	}
	return best
}

// ReplicaBehaviors wires a base behavior to every replica of elem and
// the majority voter to its voter node, on top of any existing
// behavior map (which is copied, not mutated).
func ReplicaBehaviors(base map[string]Behavior, elem string, k int, replicaBeh Behavior) map[string]Behavior {
	out := make(map[string]Behavior, len(base)+k+1)
	for e, b := range base {
		out[e] = b
	}
	for i := 0; i < k; i++ {
		out[ReplicaName(elem, i)] = replicaBeh
	}
	out[VoterName(elem)] = MajorityBehavior
	return out
}
