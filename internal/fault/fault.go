// Package fault develops the research direction the paper's
// conclusion proposes: "we can pose the problems of maintaining the
// logical integrity of real-time systems in terms of relations on the
// data values that are being passed along the edges of the
// communication graph ... and devise more domain-specific
// fault-tolerance techniques."
//
// It provides a value-carrying interpreter over static schedules
// (functional elements compute real integer values), edge relations
// (predicates over the values transmitted along communication paths),
// fault injection (an execution of an element produces a corrupted
// value), detection-latency measurement, and a triple-modular-
// redundancy model transform that masks single faults behind a
// majority voter.
package fault

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// Behavior computes an element's output from its inputs (the latest
// value per incoming communication path, keyed by source element).
// Inputs not yet produced are absent from the map.
type Behavior func(inputs map[string]int) int

// DefaultBehavior is used for elements without an explicit behavior:
// a deterministic combination of the inputs (order-independent).
func DefaultBehavior(inputs map[string]int) int {
	keys := make([]string, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := 1
	for _, k := range keys {
		out = out*31 + inputs[k]
	}
	return out
}

// Relation is a predicate over the value transmitted along one
// communication path, evaluated at every transmission.
type Relation struct {
	From, To string
	// Check returns an error description when the value violates the
	// relation, or "" when it holds.
	Check func(value int) string
	Name  string
}

// Injection corrupts the output of the n-th execution (0-based) of an
// element: the produced value is replaced by Value.
type Injection struct {
	Elem  string
	Index int
	Value int
}

// Violation is one observed relation breach.
type Violation struct {
	Relation string
	Edge     string
	Time     int // transmission time (producer completion)
	Value    int
}

// Result reports one interpreted run.
type Result struct {
	Horizon    int
	Violations []Violation
	// Outputs records every produced value per element in execution
	// order.
	Outputs map[string][]int
	// FirstDetection is the earliest violation time at or after the
	// earliest injection, or -1 when nothing was detected.
	FirstDetection int
	// InjectionTime is the completion time of the earliest injected
	// execution (-1 when no injection fired within the horizon).
	InjectionTime int
	// DetectionLatency = FirstDetection − InjectionTime (-1 when
	// undetected or nothing injected).
	DetectionLatency int
}

// Options configure a run.
type Options struct {
	Behaviors  map[string]Behavior
	Relations  []Relation
	Injections []Injection
	// Sources seeds input values for elements with no incoming
	// paths: their behavior receives {"": seed+executionIndex}.
	Sources map[string]int
}

// Run interprets the schedule for horizon slots, computing values,
// applying injections, and checking relations at every transmission.
func Run(m *core.Model, s *sched.Schedule, horizon int, opt Options) *Result {
	res := &Result{
		Horizon:        horizon,
		Outputs:        make(map[string][]int),
		FirstDetection: -1,
		InjectionTime:  -1,
	}
	relByEdge := map[string][]Relation{}
	for _, r := range opt.Relations {
		key := r.From + "->" + r.To
		relByEdge[key] = append(relByEdge[key], r)
	}
	injByElem := map[string]map[int]int{}
	for _, inj := range opt.Injections {
		if injByElem[inj.Elem] == nil {
			injByElem[inj.Elem] = map[int]int{}
		}
		injByElem[inj.Elem][inj.Index] = inj.Value
	}

	chanVal := map[string]int{}  // latest value per edge "u->v"
	chanSet := map[string]bool{} // whether the edge has a value yet
	type inflight struct {
		start  int
		done   int
		inputs map[string]int
	}
	current := map[string]*inflight{}
	execCount := map[string]int{}

	for t := 0; t < horizon; t++ {
		elem := s.At(t)
		if elem == sched.Idle {
			continue
		}
		w := m.Comm.WeightOf(elem)
		if w <= 0 {
			continue
		}
		fl := current[elem]
		if fl == nil {
			inputs := map[string]int{}
			for _, pred := range m.Comm.G.Pred(elem) {
				key := pred + "->" + elem
				if chanSet[key] {
					inputs[pred] = chanVal[key]
				}
			}
			if len(m.Comm.G.Pred(elem)) == 0 {
				if seed, ok := opt.Sources[elem]; ok {
					inputs[""] = seed + execCount[elem]
				}
			}
			fl = &inflight{start: t, inputs: inputs}
			current[elem] = fl
		}
		fl.done++
		if fl.done < w {
			continue
		}
		// execution completes: compute, inject, transmit, check
		finish := t + 1
		beh := opt.Behaviors[elem]
		if beh == nil {
			beh = DefaultBehavior
		}
		val := beh(fl.inputs)
		idx := execCount[elem]
		if inj, ok := injByElem[elem][idx]; ok {
			val = inj
			if res.InjectionTime < 0 || finish < res.InjectionTime {
				res.InjectionTime = finish
			}
		}
		execCount[elem]++
		res.Outputs[elem] = append(res.Outputs[elem], val)
		for _, succ := range m.Comm.G.Succ(elem) {
			key := elem + "->" + succ
			chanVal[key] = val
			chanSet[key] = true
			for _, r := range relByEdge[key] {
				if msg := r.Check(val); msg != "" {
					res.Violations = append(res.Violations, Violation{
						Relation: r.Name, Edge: key, Time: finish, Value: val,
					})
					if res.InjectionTime >= 0 && finish >= res.InjectionTime && res.FirstDetection < 0 {
						res.FirstDetection = finish
					}
				}
			}
		}
		current[elem] = nil
	}
	res.DetectionLatency = -1
	if res.InjectionTime >= 0 && res.FirstDetection >= 0 {
		res.DetectionLatency = res.FirstDetection - res.InjectionTime
	}
	return res
}

// RangeRelation builds a relation asserting lo ≤ value ≤ hi.
func RangeRelation(from, to string, lo, hi int) Relation {
	return Relation{
		From: from, To: to,
		Name: fmt.Sprintf("range[%d,%d] on %s->%s", lo, hi, from, to),
		Check: func(v int) string {
			if v < lo || v > hi {
				return fmt.Sprintf("value %d outside [%d,%d]", v, lo, hi)
			}
			return ""
		},
	}
}
