package fault

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

// sensorChain: sensor(1) -> filter(1) -> act(1)
func sensorChain() *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("sensor", 1)
	m.Comm.AddElement("filter", 1)
	m.Comm.AddElement("act", 1)
	m.Comm.AddPath("sensor", "filter")
	m.Comm.AddPath("filter", "act")
	m.AddConstraint(&core.Constraint{
		Name: "loop", Task: core.ChainTask("sensor", "filter", "act"),
		Period: 6, Deadline: 6, Kind: core.Periodic,
	})
	return m
}

func identity(inputs map[string]int) int {
	for _, v := range inputs {
		return v
	}
	return 0
}

func TestRunComputesValues(t *testing.T) {
	m := sensorChain()
	s := sched.New("sensor", "filter", "act", sched.Idle, sched.Idle, sched.Idle)
	res := Run(m, s, 12, Options{
		Behaviors: map[string]Behavior{"sensor": identity, "filter": identity, "act": identity},
		Sources:   map[string]int{"sensor": 100},
	})
	// sensor outputs 100, 101 (seed + execution index)
	if len(res.Outputs["sensor"]) != 2 || res.Outputs["sensor"][0] != 100 || res.Outputs["sensor"][1] != 101 {
		t.Fatalf("sensor outputs = %v", res.Outputs["sensor"])
	}
	// filter passes sensor's value through
	if res.Outputs["filter"][0] != 100 {
		t.Fatalf("filter outputs = %v", res.Outputs["filter"])
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if res.InjectionTime != -1 || res.DetectionLatency != -1 {
		t.Fatalf("spurious injection bookkeeping: %+v", res)
	}
}

func TestRangeRelationDetectsFault(t *testing.T) {
	m := sensorChain()
	s := sched.New("sensor", "filter", "act", sched.Idle)
	res := Run(m, s, 24, Options{
		Behaviors: map[string]Behavior{"sensor": identity, "filter": identity, "act": identity},
		Sources:   map[string]int{"sensor": 100},
		Relations: []Relation{RangeRelation("filter", "act", 90, 120)},
		Injections: []Injection{
			{Elem: "filter", Index: 1, Value: 9999},
		},
	})
	if len(res.Violations) == 0 {
		t.Fatal("corrupted value not detected")
	}
	v := res.Violations[0]
	if v.Value != 9999 || v.Edge != "filter->act" {
		t.Fatalf("violation = %+v", v)
	}
	if res.DetectionLatency != 0 {
		// detection happens at the corrupted transmission itself
		t.Fatalf("detection latency = %d, want 0", res.DetectionLatency)
	}
}

func TestDetectionLatencyDownstream(t *testing.T) {
	// relation only on the *downstream* edge of the corrupted element:
	// with identity behavior the bad value propagates one hop later.
	m := sensorChain()
	s := sched.New("sensor", "filter", "act", sched.Idle)
	res := Run(m, s, 24, Options{
		Behaviors: map[string]Behavior{"sensor": identity, "filter": identity, "act": identity},
		Sources:   map[string]int{"sensor": 100},
		Relations: []Relation{RangeRelation("filter", "act", 90, 120)},
		Injections: []Injection{
			{Elem: "sensor", Index: 1, Value: -500},
		},
	})
	if res.FirstDetection < 0 {
		t.Fatal("fault never detected")
	}
	if res.DetectionLatency <= 0 {
		t.Fatalf("latency = %d, want positive (one hop downstream)", res.DetectionLatency)
	}
}

func TestUndetectedWithoutRelations(t *testing.T) {
	m := sensorChain()
	s := sched.New("sensor", "filter", "act", sched.Idle)
	res := Run(m, s, 12, Options{
		Injections: []Injection{{Elem: "sensor", Index: 0, Value: 7}},
	})
	if res.InjectionTime < 0 {
		t.Fatal("injection did not fire")
	}
	if res.FirstDetection != -1 || res.DetectionLatency != -1 {
		t.Fatalf("phantom detection: %+v", res)
	}
}

func TestReplicateStructure(t *testing.T) {
	m := sensorChain()
	r, err := Replicate(m, "filter", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("replicated model invalid: %v", err)
	}
	if r.Comm.G.HasNode("filter") {
		t.Fatal("original element still present")
	}
	for i := 0; i < 3; i++ {
		rn := ReplicaName("filter", i)
		if !r.Comm.G.HasEdge("sensor", rn) {
			t.Fatalf("fan-out edge to %s missing", rn)
		}
		if !r.Comm.G.HasEdge(rn, VoterName("filter")) {
			t.Fatalf("replica-to-voter edge missing for %s", rn)
		}
	}
	if !r.Comm.G.HasEdge(VoterName("filter"), "act") {
		t.Fatal("voter outgoing edge missing")
	}
	// task graph gained 3 replicas + voter in place of 1 node
	task := r.Constraints[0].Task
	if task.G.NumNodes() != 6 {
		t.Fatalf("task nodes = %d, want 6", task.G.NumNodes())
	}
}

func TestReplicateErrors(t *testing.T) {
	m := sensorChain()
	if _, err := Replicate(m, "filter", 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Replicate(m, "nope", 3, 1); err == nil {
		t.Fatal("unknown element accepted")
	}
}

func TestMajorityBehavior(t *testing.T) {
	if v := MajorityBehavior(map[string]int{"a": 5, "b": 5, "c": 9}); v != 5 {
		t.Fatalf("majority = %d", v)
	}
	if v := MajorityBehavior(map[string]int{"a": 3}); v != 3 {
		t.Fatalf("single = %d", v)
	}
	if v := MajorityBehavior(nil); v != 0 {
		t.Fatalf("empty = %d", v)
	}
}

func TestTMRMasksSingleFault(t *testing.T) {
	m := sensorChain()
	r, err := Replicate(m, "filter", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// schedule the replicated system with the verified heuristic
	res, err := heuristic.Schedule(r, heuristic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	behaviors := ReplicaBehaviors(map[string]Behavior{
		"sensor": identity,
		"act":    identity,
	}, "filter", 3, identity)
	run := Run(r, res.Schedule, 4*res.Schedule.Len(), Options{
		Behaviors: behaviors,
		Sources:   map[string]int{"sensor": 100},
		Relations: []Relation{RangeRelation(VoterName("filter"), "act", 90, 130)},
		Injections: []Injection{
			{Elem: ReplicaName("filter", 1), Index: 1, Value: 9999},
		},
	})
	if run.InjectionTime < 0 {
		t.Fatal("injection did not fire")
	}
	if len(run.Violations) != 0 {
		t.Fatalf("TMR failed to mask the fault: %v", run.Violations)
	}
	// sanity: without replication, the same fault is visible
	bare := Run(m, sched.New("sensor", "filter", "act", sched.Idle), 24, Options{
		Behaviors:  map[string]Behavior{"sensor": identity, "filter": identity, "act": identity},
		Sources:    map[string]int{"sensor": 100},
		Relations:  []Relation{RangeRelation("filter", "act", 90, 130)},
		Injections: []Injection{{Elem: "filter", Index: 1, Value: 9999}},
	})
	if len(bare.Violations) == 0 {
		t.Fatal("control run should expose the fault")
	}
}
