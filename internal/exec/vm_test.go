package exec

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

func chainModel() *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 2)
	m.Comm.AddPath("a", "b")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("a", "b"),
		Period: 8, Deadline: 8, Kind: core.Periodic,
	})
	return m
}

func TestRunRecordsExecutions(t *testing.T) {
	m := chainModel()
	s := sched.New("a", "b", "b", sched.Idle)
	rec := Run(m, s, 8)
	as := rec.ExecutionsOf("a")
	bs := rec.ExecutionsOf("b")
	if len(as) != 2 || len(bs) != 2 {
		t.Fatalf("executions a=%d b=%d, want 2/2", len(as), len(bs))
	}
	if as[0].Start != 0 || as[0].Finish != 1 {
		t.Fatalf("a[0] = %+v", as[0])
	}
	if bs[0].Start != 1 || bs[0].Finish != 3 {
		t.Fatalf("b[0] = %+v", bs[0])
	}
	if rec.IdleSlots != 2 {
		t.Fatalf("idle = %d", rec.IdleSlots)
	}
}

func TestRunDataFlow(t *testing.T) {
	m := chainModel()
	s := sched.New("a", "b", "b", sched.Idle)
	rec := Run(m, s, 8)
	bs := rec.ExecutionsOf("b")
	// first b started at t=1, after a finished at t=1 -> reads a's value
	v, ok := bs[0].Inputs["a->b"]
	if !ok {
		t.Fatalf("b[0] read nothing: %+v", bs[0])
	}
	if v.ProducedAt != 1 || v.Seq != 0 {
		t.Fatalf("b[0] input = %+v", v)
	}
	// second b (cycle 2, start 5) sees a's second output (produced 5)
	v2 := bs[1].Inputs["a->b"]
	if v2.ProducedAt != 5 || v2.Seq != 1 {
		t.Fatalf("b[1] input = %+v", v2)
	}
}

func TestRunPreemptedExecution(t *testing.T) {
	// b (weight 2) preempted by a between its slots
	m := chainModel()
	s := sched.New("b", "a", "b", sched.Idle)
	rec := Run(m, s, 4)
	bs := rec.ExecutionsOf("b")
	if len(bs) != 1 || bs[0].Start != 0 || bs[0].Finish != 3 {
		t.Fatalf("b executions = %+v", bs)
	}
	// b started at 0, before a's completion at 2 -> no input captured
	if _, ok := bs[0].Inputs["a->b"]; ok {
		t.Fatal("b should not have captured a value produced after its start")
	}
}

func TestPipelineViolationsCleanRun(t *testing.T) {
	m := chainModel()
	s := sched.New("a", "b", "b", "a", "b", "b")
	rec := Run(m, s, 24)
	if v := PipelineViolations(rec); len(v) != 0 {
		t.Fatalf("violations on clean run: %v", v)
	}
}

func TestPipelineViolationsDetected(t *testing.T) {
	rec := &Record{Executions: map[string][]Execution{
		"x": {
			{Elem: "x", Start: 0, Finish: 5},
			{Elem: "x", Start: 2, Finish: 4}, // finishes before predecessor
		},
	}}
	v := PipelineViolations(rec)
	if len(v) == 0 {
		t.Fatal("violation not detected")
	}
}

func TestCheckInvocationsMet(t *testing.T) {
	m := chainModel()
	s := sched.New("a", "b", "b", sched.Idle)
	rec := Run(m, s, 16)
	outs := CheckInvocations(m, rec, []Invocation{
		{Constraint: "C", Time: 0},
		{Constraint: "C", Time: 4},
	})
	for _, o := range outs {
		if !o.Met || !o.FreshnessOK {
			t.Fatalf("outcome %+v", o)
		}
	}
	if outs[0].Completed != 3 {
		t.Fatalf("completed = %d, want 3", outs[0].Completed)
	}
	if outs[1].Completed != 7 {
		t.Fatalf("completed = %d, want 7", outs[1].Completed)
	}
}

func TestCheckInvocationsMiss(t *testing.T) {
	m := chainModel()
	m.Constraints[0].Deadline = 2 // cannot fit a(1)+b(2) in 2... wait w=3
	m.Constraints[0].Deadline = 3
	// schedule with b before a: completion takes until next cycle
	s := sched.New("b", "b", "a", sched.Idle)
	rec := Run(m, s, 16)
	outs := CheckInvocations(m, rec, []Invocation{{Constraint: "C", Time: 0}})
	if outs[0].Met {
		t.Fatalf("expected miss: %+v", outs[0])
	}
}

func TestCheckInvocationsUnknownConstraint(t *testing.T) {
	m := chainModel()
	rec := Run(m, sched.New("a"), 4)
	outs := CheckInvocations(m, rec, []Invocation{{Constraint: "nope", Time: 0}})
	if outs[0].Err == "" || outs[0].Met {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

func TestCheckInvocationsNoWitness(t *testing.T) {
	m := chainModel()
	s := sched.New("a", sched.Idle) // b never runs
	rec := Run(m, s, 8)
	outs := CheckInvocations(m, rec, []Invocation{{Constraint: "C", Time: 0}})
	if outs[0].Completed != -1 || outs[0].Met {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

func TestFreshnessAcrossPrecedence(t *testing.T) {
	// b scheduled before a in the cycle: the witness for an
	// invocation at 0 must pick the *second* b (after a completes),
	// and that b must have read a's output.
	m := chainModel()
	s := sched.New("b", "b", "a", "b", "b", sched.Idle)
	rec := Run(m, s, 24)
	outs := CheckInvocations(m, rec, []Invocation{{Constraint: "C", Time: 0}})
	if !outs[0].Met || !outs[0].FreshnessOK {
		t.Fatalf("outcome = %+v", outs[0])
	}
	if outs[0].Completed != 5 {
		t.Fatalf("completed = %d, want 5 (second b)", outs[0].Completed)
	}
}

func TestZeroWeightElement(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("z", 0)
	m.Comm.AddElement("a", 1)
	m.Comm.AddPath("z", "a")
	m.AddConstraint(&core.Constraint{
		Name: "C", Task: core.ChainTask("z", "a"),
		Period: 4, Deadline: 4, Kind: core.Periodic,
	})
	s := sched.New("a", sched.Idle)
	rec := Run(m, s, 8)
	outs := CheckInvocations(m, rec, []Invocation{{Constraint: "C", Time: 0}})
	if !outs[0].Met {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

func TestSeqNumbersMonotone(t *testing.T) {
	m := chainModel()
	s := sched.New("a", "b", "b")
	rec := Run(m, s, 12)
	for i, e := range rec.ExecutionsOf("a") {
		if e.Seq != i {
			t.Fatalf("a seq = %d at index %d", e.Seq, i)
		}
	}
}
