// Package exec provides a deterministic discrete-time virtual machine
// that runs a synthesized system under the paper's table-driven
// run-time scheduler: a static schedule is repeated round-robin, each
// slot advancing one unit of one functional element. Completed
// executions move data values (with provenance timestamps) along the
// communication paths, so the paper's execution semantics — pipeline
// ordering, precedence, and transmission of the latest output before
// a consumer runs — can be checked on the recorded run rather than
// assumed.
package exec

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// Value is a datum on a communication path, tagged with provenance.
type Value struct {
	ProducedAt int // completion time of the producing execution
	Seq        int // per-element output sequence number
}

// Execution is one completed execution of a functional element.
type Execution struct {
	Elem   string
	Start  int
	Finish int // last slot + 1
	// Inputs captures, per incoming channel, the value visible when
	// the execution started.
	Inputs map[string]Value
	Seq    int // sequence number among this element's executions
}

// Record is the observable outcome of a VM run.
type Record struct {
	Horizon    int
	Executions map[string][]Execution // per element, in start order
	IdleSlots  int
}

// ExecutionsOf returns the executions of elem in start order.
func (r *Record) ExecutionsOf(elem string) []Execution { return r.Executions[elem] }

// edgeName matches the synthesis package's channel naming.
func edgeName(u, v string) string { return u + "->" + v }

// Run executes the static schedule for the given number of slots over
// the model's communication graph and returns the full record. Data
// is moved along every communication path: when an execution of u
// completes at time f, the value (f, seq) is written to every
// outgoing path of u; an execution of v starting at time s captures
// the then-latest value of each incoming path.
func Run(m *core.Model, s *sched.Schedule, horizon int) *Record {
	rec := &Record{
		Horizon:    horizon,
		Executions: make(map[string][]Execution),
	}
	// channel state: latest value per communication path
	chans := make(map[string]Value)
	type inflight struct {
		start  int
		done   int // units executed
		inputs map[string]Value
	}
	current := make(map[string]*inflight) // per element
	seq := make(map[string]int)

	for t := 0; t < horizon; t++ {
		elem := s.At(t)
		if elem == sched.Idle {
			rec.IdleSlots++
			continue
		}
		w := m.Comm.WeightOf(elem)
		if w <= 0 {
			continue
		}
		fl := current[elem]
		if fl == nil {
			// a new execution starts: capture inputs now
			inputs := make(map[string]Value)
			for _, pred := range m.Comm.G.Pred(elem) {
				ch := edgeName(pred, elem)
				if v, ok := chans[ch]; ok {
					inputs[ch] = v
				}
			}
			fl = &inflight{start: t, inputs: inputs}
			current[elem] = fl
		}
		fl.done++
		if fl.done == w {
			finish := t + 1
			out := Value{ProducedAt: finish, Seq: seq[elem]}
			for _, succ := range m.Comm.G.Succ(elem) {
				chans[edgeName(elem, succ)] = out
			}
			rec.Executions[elem] = append(rec.Executions[elem], Execution{
				Elem:   elem,
				Start:  fl.start,
				Finish: finish,
				Inputs: fl.inputs,
				Seq:    seq[elem],
			})
			seq[elem]++
			current[elem] = nil
		}
	}
	return rec
}

// PipelineViolations checks the paper's pipeline-ordering condition
// on the record: two executions of a functional element must have
// distinct start times, and the earlier-starting one must finish
// first. (The VM satisfies this by construction; the checker guards
// against regressions and validates externally produced records.)
func PipelineViolations(rec *Record) []string {
	var out []string
	for elem, execs := range rec.Executions {
		for i := 1; i < len(execs); i++ {
			a, b := execs[i-1], execs[i]
			if b.Start <= a.Start {
				out = append(out, fmt.Sprintf("%s: execution %d starts at %d, not after %d", elem, i, b.Start, a.Start))
			}
			if b.Finish <= a.Finish {
				out = append(out, fmt.Sprintf("%s: execution %d finishes at %d, not after %d", elem, i, b.Finish, a.Finish))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Invocation is one arrival of a timing constraint.
type Invocation struct {
	Constraint string
	Time       int
}

// InvocationOutcome reports the service of one invocation.
type InvocationOutcome struct {
	Invocation Invocation
	// Completed is the completion time of the witness execution of
	// the constraint's task graph, or -1 if none was found inside
	// the record horizon.
	Completed int
	Met       bool
	// FreshnessOK reports that every edge of the witness carried a
	// value produced by (or after) the chosen producer instance.
	FreshnessOK bool
	Err         string
}

// CheckInvocations finds, for every invocation (c, t), a witness
// execution of c's task graph inside [t, t+d] and verifies deadline,
// precedence and data freshness. Task nodes take the earliest
// available execution of their element starting at or after their
// ready time — the same greedy rule as the schedule analyzer.
func CheckInvocations(m *core.Model, rec *Record, invs []Invocation) []InvocationOutcome {
	out := make([]InvocationOutcome, 0, len(invs))
	for _, inv := range invs {
		c := m.ConstraintByName(inv.Constraint)
		o := InvocationOutcome{Invocation: inv, Completed: -1}
		if c == nil {
			o.Err = fmt.Sprintf("unknown constraint %q", inv.Constraint)
			out = append(out, o)
			continue
		}
		witness, completed := findWitness(m, rec, c, inv.Time)
		if witness == nil {
			o.Err = "no execution of the task graph inside the horizon"
			out = append(out, o)
			continue
		}
		o.Completed = completed
		o.Met = completed <= inv.Time+c.Deadline
		o.FreshnessOK = checkFreshness(c, witness)
		if !o.FreshnessOK {
			o.Err = "stale input on some task-graph edge"
		}
		out = append(out, o)
	}
	return out
}

// findWitness greedily assigns task nodes to executions starting at
// or after `from`, in topological order.
func findWitness(m *core.Model, rec *Record, c *core.Constraint, from int) (map[string]Execution, int) {
	order, err := c.Task.G.TopoSort()
	if err != nil {
		return nil, -1
	}
	witness := make(map[string]Execution, len(order))
	used := make(map[string]int)
	completed := from
	for _, node := range order {
		elem := c.Task.ElementOf(node)
		ready := from
		for _, p := range c.Task.G.Pred(node) {
			if w, ok := witness[p]; ok && w.Finish > ready {
				ready = w.Finish
			}
		}
		if m.Comm.WeightOf(elem) == 0 {
			witness[node] = Execution{Elem: elem, Start: ready, Finish: ready}
			continue
		}
		execs := rec.Executions[elem]
		idx := sort.Search(len(execs), func(i int) bool { return execs[i].Start >= ready })
		if idx < used[elem] {
			idx = used[elem]
		}
		if idx >= len(execs) {
			return nil, -1
		}
		witness[node] = execs[idx]
		used[elem] = idx + 1
		if execs[idx].Finish > completed {
			completed = execs[idx].Finish
		}
	}
	return witness, completed
}

// checkFreshness verifies that for every task-graph edge (u, v), the
// consumer instance started after the producer instance finished and
// read a value at least as fresh as the producer's output.
func checkFreshness(c *core.Constraint, witness map[string]Execution) bool {
	for _, e := range c.Task.G.Edges() {
		pu, ok1 := witness[e.From]
		pv, ok2 := witness[e.To]
		if !ok1 || !ok2 {
			return false
		}
		if pv.Start < pu.Finish {
			return false
		}
		if pu.Elem == pv.Elem {
			continue // same element: ordering alone suffices
		}
		if pv.Inputs == nil {
			continue // zero-weight synthetic instance: nothing to read
		}
		ch := edgeName(pu.Elem, pv.Elem)
		val, ok := pv.Inputs[ch]
		if !ok {
			return false
		}
		if val.ProducedAt < pu.Finish {
			return false
		}
	}
	return true
}
