// Package multiproc implements the paper's multiprocessor remark: the
// synthesis problem for a multiprocessor architecture decomposes into
// a set of single-processor synthesis problems plus a similar-looking
// problem for scheduling the communication network.
//
// Functional elements are partitioned across processors (greedy
// balance with a local refinement pass that reduces cut edges), each
// processor gets the submodel of constraints whose task graphs it can
// serve locally after accounting for message delays, and every
// communication-graph edge crossing the partition becomes a message
// scheduled on a shared TDMA bus — itself just another static
// schedule over "message elements", reusing the single-processor
// machinery.
package multiproc

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

// Assignment maps each functional element to a processor index.
type Assignment map[string]int

// Partition splits the elements of m across k processors, balancing
// total weight-rate demand and then greedily reducing the number of
// cut communication edges while keeping the balance within one
// element's demand.
func Partition(m *core.Model, k int) (Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("multiproc: processor count %d must be positive", k)
	}
	// demand per element: Σ over constraints using it of w/p
	demand := make(map[string]float64)
	for _, c := range m.Constraints {
		for _, node := range c.Task.Nodes() {
			e := c.Task.ElementOf(node)
			demand[e] += float64(m.Comm.WeightOf(e)) / float64(c.Period)
		}
	}
	elems := m.Comm.Elements()
	// heaviest first for greedy balance
	sort.SliceStable(elems, func(i, j int) bool { return demand[elems[i]] > demand[elems[j]] })

	load := make([]float64, k)
	asg := make(Assignment, len(elems))
	for _, e := range elems {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		asg[e] = best
		load[best] += demand[e]
	}

	// refinement: move an element to the processor hosting most of
	// its neighbours if that reduces cut edges without unbalancing.
	maxLoad := 0.0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	budget := maxLoad * 1.25
	for pass := 0; pass < 3; pass++ {
		moved := false
		for _, e := range m.Comm.Elements() {
			cur := asg[e]
			votes := make([]int, k)
			for _, n := range m.Comm.G.Succ(e) {
				votes[asg[n]]++
			}
			for _, n := range m.Comm.G.Pred(e) {
				votes[asg[n]]++
			}
			best, bestVotes := cur, votes[cur]
			for p := 0; p < k; p++ {
				if votes[p] > bestVotes && load[p]+demand[e] <= budget {
					best, bestVotes = p, votes[p]
				}
			}
			if best != cur {
				asg[e] = best
				load[cur] -= demand[e]
				load[best] += demand[e]
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return asg, nil
}

// CutEdges returns the communication-graph edges crossing the
// partition, in deterministic order.
func CutEdges(m *core.Model, asg Assignment) []string {
	var out []string
	for _, e := range m.Comm.G.Edges() {
		if asg[e.From] != asg[e.To] {
			out = append(out, e.From+"->"+e.To)
		}
	}
	sort.Strings(out)
	return out
}

// Deployment is the result of a multiprocessor synthesis.
type Deployment struct {
	Assignment Assignment
	// ProcSchedules holds one verified static schedule per processor
	// (nil where a processor hosts no constraint work).
	ProcSchedules []*sched.Schedule
	// ProcModels are the per-processor submodels actually scheduled.
	ProcModels []*core.Model
	// Bus is the TDMA schedule of cross-partition messages; nil when
	// the partition cuts no edges.
	Bus *sched.Schedule
	// BusModel is the message-scheduling model (one unit-weight
	// element per cut edge, one constraint per producing constraint).
	BusModel *core.Model
}

// MsgElem names the bus element for a cut edge.
func MsgElem(edge string) string { return "msg:" + edge }

// Synthesize partitions the model over k processors and synthesizes a
// verified static schedule per processor plus a bus schedule for the
// cut edges.
//
// A constraint whose task graph spans processors is decomposed into
// *stages*: a task node's stage is the maximum number of cut edges on
// any path from a source to it. The deadline budget d is divided into
// 2S−1 equal slices for S stages (S compute slices + S−1 message
// slices). The stage-0 projection stays a phase-locked periodic (or
// asynchronous) constraint with one slice of deadline; every later
// stage and every bus message becomes an *asynchronous* constraint —
// latency semantics — with one slice, so it serves its data whenever
// it arrives, independent of the invocation phase. End to end, an
// invocation at t finishes stage 0 by t+slice, each message delivers
// within a further slice, and each downstream stage completes within
// a further slice: total ≤ t + d.
//
// The decomposition is conservative: success means every
// sub-constraint verifies on its processor/bus. Failure does not
// prove global infeasibility.
func Synthesize(m *core.Model, k int, busDelay int) (*Deployment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if busDelay < 1 {
		busDelay = 1
	}
	asg, err := Partition(m, k)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{
		Assignment:    asg,
		ProcSchedules: make([]*sched.Schedule, k),
		ProcModels:    make([]*core.Model, k),
	}

	perProc := make([][]*core.Constraint, k)
	busModel := core.NewModel()
	for _, c := range m.Constraints {
		depth, maxDepth, err := crossDepths(c, asg)
		if err != nil {
			return nil, fmt.Errorf("multiproc: constraint %q: %w", c.Name, err)
		}
		if maxDepth == 0 {
			// fully local: unchanged, on its unique processor
			p := asg[c.Task.ElementOf(c.Task.Nodes()[0])]
			perProc[p] = append(perProc[p], c.Clone())
			continue
		}
		stages := maxDepth + 1
		// Budget allocation: each of the stages−1 message hops gets a
		// small fixed slice; the remainder is split across compute
		// stages proportionally to their work (+1), because the
		// asynchronous downstream stages are served by periodic
		// servers whose utilization falls as their slice grows.
		msgSlice := 2 * busDelay
		if alt := c.Deadline / (2 * stages); alt > msgSlice {
			msgSlice = alt
		}
		rem := c.Deadline - (stages-1)*msgSlice
		stageWork := make([]int, stages)
		for _, node := range c.Task.Nodes() {
			stageWork[depth[node]] += m.Comm.WeightOf(c.Task.ElementOf(node))
		}
		totalW := 0
		for _, w := range stageWork {
			totalW += w + 1
		}
		if rem < totalW-stages { // rem must cover the work at least
			return nil, fmt.Errorf("multiproc: constraint %q deadline %d too tight for %d stages",
				c.Name, c.Deadline, stages)
		}
		slice := make([]int, stages)
		used := 0
		for s := 0; s < stages; s++ {
			slice[s] = rem * (stageWork[s] + 1) / totalW
			used += slice[s]
		}
		slice[stages-1] += rem - used // leftover to the last stage
		// per (processor, stage) sub-constraints
		for p := 0; p < k; p++ {
			for s := 0; s <= maxDepth; s++ {
				sub := projectStage(m, c, asg, depth, p, s)
				if sub == nil {
					continue
				}
				sub.Deadline = slice[s]
				if w := sub.ComputationTime(m.Comm); sub.Deadline < w {
					sub.Deadline = w
				}
				if s > 0 {
					sub.Kind = core.Asynchronous
				}
				sub.Name = fmt.Sprintf("%s@s%d", c.Name, s)
				perProc[p] = append(perProc[p], sub)
			}
		}
		// cut task edges become asynchronous bus messages
		for _, e := range c.Task.G.Edges() {
			pu := asg[c.Task.ElementOf(e.From)]
			pv := asg[c.Task.ElementOf(e.To)]
			if pu == pv {
				continue
			}
			edge := c.Task.ElementOf(e.From) + "->" + c.Task.ElementOf(e.To)
			me := MsgElem(edge)
			if !busModel.Comm.G.HasNode(me) {
				busModel.Comm.AddElement(me, busDelay)
			}
			name := fmt.Sprintf("%s/%s", c.Name, edge)
			if busModel.ConstraintByName(name) == nil {
				d := msgSlice
				if d < busDelay {
					d = busDelay
				}
				busModel.AddConstraint(&core.Constraint{
					Name:     name,
					Task:     core.ChainTask(me),
					Period:   c.Period,
					Deadline: d,
					Kind:     core.Asynchronous,
				})
			}
		}
	}

	for p := 0; p < k; p++ {
		if len(perProc[p]) == 0 {
			continue
		}
		sub := core.NewModel()
		sub.Comm = m.Comm.Clone()
		for _, c := range perProc[p] {
			sub.AddConstraint(c)
			// projection may have introduced transitive precedences
			// (data relayed through an element on another processor);
			// add the corresponding virtual communication paths so
			// the submodel stays compatible.
			for _, e := range c.Task.G.Edges() {
				sub.Comm.AddPath(c.Task.ElementOf(e.From), c.Task.ElementOf(e.To))
			}
		}
		res, err := heuristic.Schedule(sub, heuristic.Options{})
		if err != nil {
			return nil, fmt.Errorf("multiproc: processor %d unschedulable: %w", p, err)
		}
		dep.ProcSchedules[p] = res.Schedule
		dep.ProcModels[p] = sub
	}

	if len(busModel.Constraints) > 0 {
		res, err := heuristic.Schedule(busModel, heuristic.Options{})
		if err != nil {
			return nil, fmt.Errorf("multiproc: bus unschedulable: %w", err)
		}
		dep.Bus = res.Schedule
		dep.BusModel = busModel
	}
	return dep, nil
}

// crossDepths computes, per task node, the maximum number of cut
// edges on any source-to-node path, plus the maximum over all nodes.
func crossDepths(c *core.Constraint, asg Assignment) (map[string]int, int, error) {
	order, err := c.Task.G.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	depth := make(map[string]int, len(order))
	max := 0
	for _, v := range order {
		d := 0
		for _, u := range c.Task.G.Pred(v) {
			du := depth[u]
			if asg[c.Task.ElementOf(u)] != asg[c.Task.ElementOf(v)] {
				du++
			}
			if du > d {
				d = du
			}
		}
		depth[v] = d
		if d > max {
			max = d
		}
	}
	return depth, max, nil
}

// projectStage restricts a constraint's task graph to the nodes
// hosted on processor p at cross-depth s, or nil when none are.
// Precedences between retained nodes are kept transitively.
func projectStage(m *core.Model, c *core.Constraint, asg Assignment, depth map[string]int, p, s int) *core.Constraint {
	keep := map[string]bool{}
	for _, node := range c.Task.Nodes() {
		if asg[c.Task.ElementOf(node)] == p && depth[node] == s {
			keep[node] = true
		}
	}
	if len(keep) == 0 {
		return nil
	}
	t := core.NewTaskGraph()
	for _, node := range c.Task.Nodes() {
		if keep[node] {
			t.AddStep(node, c.Task.ElementOf(node))
		}
	}
	closure := c.Task.G.TransitiveClosure()
	for _, e := range closure.Edges() {
		if keep[e.From] && keep[e.To] {
			t.AddPrec(e.From, e.To)
		}
	}
	return &core.Constraint{
		Name:     c.Name,
		Task:     t,
		Period:   c.Period,
		Deadline: c.Deadline,
		Kind:     c.Kind,
	}
}

// projectConstraint restricts a constraint's task graph to the nodes
// hosted on processor p, or nil when none are. Precedences between
// retained nodes are kept (transitively through removed nodes).
func projectConstraint(m *core.Model, c *core.Constraint, asg Assignment, p int) *core.Constraint {
	keep := map[string]bool{}
	for _, node := range c.Task.Nodes() {
		if asg[c.Task.ElementOf(node)] == p {
			keep[node] = true
		}
	}
	if len(keep) == 0 {
		return nil
	}
	t := core.NewTaskGraph()
	for _, node := range c.Task.Nodes() {
		if keep[node] {
			t.AddStep(node, c.Task.ElementOf(node))
		}
	}
	// connect retained nodes that are related through removed ones
	closure := c.Task.G.TransitiveClosure()
	for _, e := range closure.Edges() {
		if keep[e.From] && keep[e.To] {
			t.AddPrec(e.From, e.To)
		}
	}
	return &core.Constraint{
		Name:     c.Name,
		Task:     t,
		Period:   c.Period,
		Deadline: c.Deadline,
		Kind:     c.Kind,
	}
}
