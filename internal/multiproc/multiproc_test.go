package multiproc

import (
	"strings"
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

func TestPartitionBalance(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	asg, err := Partition(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 5 {
		t.Fatalf("assignment = %v", asg)
	}
	procs := map[int]bool{}
	for _, p := range asg {
		if p < 0 || p >= 2 {
			t.Fatalf("processor %d out of range", p)
		}
		procs[p] = true
	}
	if len(procs) != 2 {
		t.Fatalf("only %d processors used", len(procs))
	}
}

func TestPartitionSingleProcessor(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	asg, err := Partition(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for e, p := range asg {
		if p != 0 {
			t.Fatalf("element %s on processor %d", e, p)
		}
	}
	if len(CutEdges(m, asg)) != 0 {
		t.Fatal("single processor has cut edges")
	}
}

func TestPartitionBadK(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	if _, err := Partition(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestCutEdgesDeterministic(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	asg := Assignment{"fX": 0, "fY": 1, "fZ": 0, "fS": 0, "fK": 0}
	cut := CutEdges(m, asg)
	if len(cut) != 1 || cut[0] != "fY->fS" {
		t.Fatalf("cut = %v", cut)
	}
}

func TestSynthesizeSingleProc(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	dep, err := Synthesize(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Bus != nil {
		t.Fatal("bus schedule on single processor")
	}
	if dep.ProcSchedules[0] == nil {
		t.Fatal("no schedule for processor 0")
	}
	// the single-processor deployment must verify against the model
	if !sched.Feasible(m, dep.ProcSchedules[0]) {
		t.Fatal("deployment schedule infeasible")
	}
}

func TestSynthesizeTwoProc(t *testing.T) {
	// generous deadlines so the halved budgets still fit
	p := core.DefaultExampleParams()
	p.PX, p.PY, p.DZ = 40, 80, 60
	m := core.ExampleSystem(p)
	dep, err := Synthesize(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := 0
	for pr, s := range dep.ProcSchedules {
		if s == nil {
			continue
		}
		scheduled++
		if dep.ProcModels[pr] == nil {
			t.Fatal("schedule without model")
		}
		if !sched.Feasible(dep.ProcModels[pr], s) {
			t.Fatalf("processor %d schedule infeasible", pr)
		}
	}
	if scheduled == 0 {
		t.Fatal("nothing scheduled")
	}
	// when the partition cuts a used edge there must be a bus schedule
	if len(CutEdges(m, dep.Assignment)) > 0 && dep.Bus == nil {
		// only task-graph edges that cross generate messages; check
		// whether any constraint actually spans
		spans := false
		for _, c := range m.Constraints {
			procs := map[int]bool{}
			for _, n := range c.Task.Nodes() {
				procs[dep.Assignment[c.Task.ElementOf(n)]] = true
			}
			if len(procs) > 1 {
				spans = true
			}
		}
		if spans {
			t.Fatal("spanning constraints but no bus schedule")
		}
	}
	if dep.Bus != nil && !sched.Feasible(dep.BusModel, dep.Bus) {
		t.Fatal("bus schedule infeasible")
	}
}

func TestProjectConstraint(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	c := m.ConstraintByName("X") // fX -> fS -> fK
	asg := Assignment{"fX": 0, "fS": 1, "fK": 0, "fY": 1, "fZ": 0}
	p0 := projectConstraint(m, c, asg, 0)
	if p0 == nil {
		t.Fatal("projection empty")
	}
	nodes := p0.Task.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("projected nodes = %v", nodes)
	}
	// fX -> fK precedence retained transitively through fS
	if !p0.Task.G.HasEdge("fX", "fK") {
		t.Fatalf("transitive precedence lost: %s", p0.Task.G)
	}
	p1 := projectConstraint(m, c, asg, 1)
	if p1 == nil || len(p1.Task.Nodes()) != 1 {
		t.Fatalf("projection on p1 = %+v", p1)
	}
	if projectConstraint(m, c, asg, 3) != nil {
		t.Fatal("projection on unused processor should be nil")
	}
}

func TestMsgElemNaming(t *testing.T) {
	if !strings.HasPrefix(MsgElem("a->b"), "msg:") {
		t.Fatal("MsgElem prefix wrong")
	}
}
