// Package modes adds operating regimes to the graph-based model. The
// paper's own example motivates them: "the variable z' may be a
// parameter which selects a different mapping for f_S depending on
// the operating regime selected by a human operator via the toggle
// switch z". A modal system shares one communication graph across a
// set of modes, each with its own constraint set and verified static
// schedule; a mode-change protocol switches schedules at a safe point
// and its transition latency (request to first instant the new mode's
// guarantees hold) is analyzed and simulated.
package modes

import (
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

// Mode is one operating regime.
type Mode struct {
	Name  string
	Model *core.Model
	// Schedule is filled by Compile.
	Schedule *sched.Schedule
}

// System is a modal system: modes sharing one communication graph.
type System struct {
	Comm  *core.CommGraph
	Modes []*Mode
}

// NewSystem starts a modal system over a communication graph.
func NewSystem(comm *core.CommGraph) *System {
	return &System{Comm: comm}
}

// AddMode registers a mode from a constraint set over the shared
// communication graph.
func (s *System) AddMode(name string, constraints ...*core.Constraint) *Mode {
	m := core.NewModel()
	m.Comm = s.Comm
	for _, c := range constraints {
		m.AddConstraint(c)
	}
	mode := &Mode{Name: name, Model: m}
	s.Modes = append(s.Modes, mode)
	return mode
}

// ModeByName returns the named mode, or nil.
func (s *System) ModeByName(name string) *Mode {
	for _, m := range s.Modes {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Compile synthesizes a verified static schedule per mode.
func (s *System) Compile() error {
	if len(s.Modes) == 0 {
		return fmt.Errorf("modes: no modes defined")
	}
	seen := map[string]bool{}
	for _, mode := range s.Modes {
		if mode.Name == "" || seen[mode.Name] {
			return fmt.Errorf("modes: missing or duplicate mode name %q", mode.Name)
		}
		seen[mode.Name] = true
		res, err := heuristic.Schedule(mode.Model, heuristic.Options{MergeShared: true})
		if err != nil {
			return fmt.Errorf("modes: mode %q: %w", mode.Name, err)
		}
		mode.Schedule = res.Schedule
	}
	return nil
}

// TransitionBound returns an upper bound on the mode-change latency
// from one mode to another under the idle-safe protocol: the switch
// is taken at the next point where the outgoing schedule has no
// execution in progress (no element mid-way through its weight), and
// the incoming mode's guarantees hold one full cycle after its
// schedule starts (every constraint's worst window is measured over
// the steady cycle).
//
// Bound = maxSafeWait(out) + cycle(in) + maxDeadline(in).
func (s *System) TransitionBound(from, to string) (int, error) {
	out := s.ModeByName(from)
	in := s.ModeByName(to)
	if out == nil || in == nil {
		return 0, fmt.Errorf("modes: unknown mode in transition %s->%s", from, to)
	}
	if out.Schedule == nil || in.Schedule == nil {
		return 0, fmt.Errorf("modes: Compile must run before TransitionBound")
	}
	wait, err := MaxSafeWait(s.Comm, out.Schedule)
	if err != nil {
		return 0, err
	}
	maxD := 0
	for _, c := range in.Model.Constraints {
		if c.Deadline > maxD {
			maxD = c.Deadline
		}
	}
	return wait + in.Schedule.Len() + maxD, nil
}

// SafePoints returns the slot indices of a schedule at which no
// execution is in progress — the instants a mode switch may be taken
// without aborting a functional element mid-way. Slot i is safe when
// every element's executions (parsed over the alignment window)
// either finish at or before i or start at or after i, checked at
// each phase i of the cycle.
func SafePoints(comm *core.CommGraph, s *sched.Schedule) ([]int, error) {
	n := s.Len()
	if n == 0 {
		return nil, fmt.Errorf("modes: empty schedule")
	}
	// parse executions over several cycles and mark slots covered by
	// an execution's [start, finish) span with gaps (preempted
	// executions hold state across other slots).
	span := 4
	horiz := n * span
	trace := s.Unroll(horiz)
	inProgress := make([]bool, horiz+1)
	// reconstruct per-element executions exactly as the analyzer does
	type run struct{ start, end int }
	slotsOf := map[string][]int{}
	for i, x := range trace {
		if x != sched.Idle {
			slotsOf[x] = append(slotsOf[x], i)
		}
	}
	for elem, idx := range slotsOf {
		w := comm.WeightOf(elem)
		if w <= 1 {
			continue // unit executions never span a boundary
		}
		for i := 0; i+w <= len(idx); i += w {
			start, end := idx[i], idx[i+w-1]+1
			// the element holds state from its first slot until its
			// last: a switch strictly inside (start, end) aborts it.
			for t := start + 1; t < end && t <= horiz; t++ {
				inProgress[t] = true
			}
		}
	}
	var out []int
	// consider the middle cycle (fully surrounded by parsed context)
	base := n * (span / 2)
	for i := 0; i < n; i++ {
		if !inProgress[base+i] {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}

// MaxSafeWait returns the maximum distance from any slot to the next
// safe point (cyclically). Returns an error when the schedule has no
// safe point at all.
func MaxSafeWait(comm *core.CommGraph, s *sched.Schedule) (int, error) {
	safe, err := SafePoints(comm, s)
	if err != nil {
		return 0, err
	}
	if len(safe) == 0 {
		return 0, fmt.Errorf("modes: schedule has no safe switch point")
	}
	n := s.Len()
	isSafe := make([]bool, n)
	for _, i := range safe {
		isSafe[i] = true
	}
	worst := 0
	for i := 0; i < n; i++ {
		d := 0
		for !isSafe[(i+d)%n] {
			d++
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Switcher executes a modal system over time with mode-change
// requests, producing the concatenated trace and recording each
// transition's actual latency.
type Switcher struct {
	sys     *System
	current int
	phase   int
}

// NewSwitcher starts in the first mode at phase 0.
func NewSwitcher(sys *System) (*Switcher, error) {
	if len(sys.Modes) == 0 {
		return nil, fmt.Errorf("modes: empty system")
	}
	for _, m := range sys.Modes {
		if m.Schedule == nil {
			return nil, fmt.Errorf("modes: Compile must run before NewSwitcher")
		}
	}
	return &Switcher{sys: sys}, nil
}

// Transition is one completed mode change.
type Transition struct {
	RequestAt int
	SwitchAt  int // slot at which the new schedule took over
	To        string
}

// RunWithRequests executes for horizon slots, switching at the first
// safe point at or after each request. Requests must be sorted by
// time. It returns the emitted trace and the transitions taken.
func (sw *Switcher) RunWithRequests(horizon int, requests []struct {
	At int
	To string
}) ([]string, []Transition, error) {
	trace := make([]string, 0, horizon)
	var transitions []Transition
	reqIdx := 0
	pendingTo := -1
	pendingAt := 0
	safe := map[int][]int{} // mode index -> safe points
	for i, m := range sw.sys.Modes {
		pts, err := SafePoints(sw.sys.Comm, m.Schedule)
		if err != nil {
			return nil, nil, err
		}
		safe[i] = pts
	}
	isSafe := func(mode, phase int) bool {
		for _, p := range safe[mode] {
			if p == phase {
				return true
			}
		}
		return false
	}
	for t := 0; t < horizon; t++ {
		for reqIdx < len(requests) && requests[reqIdx].At == t {
			target := -1
			for i, m := range sw.sys.Modes {
				if m.Name == requests[reqIdx].To {
					target = i
				}
			}
			if target < 0 {
				return nil, nil, fmt.Errorf("modes: request for unknown mode %q", requests[reqIdx].To)
			}
			pendingTo = target
			pendingAt = t
			reqIdx++
		}
		if pendingTo >= 0 && pendingTo != sw.current && isSafe(sw.current, sw.phase) {
			transitions = append(transitions, Transition{
				RequestAt: pendingAt, SwitchAt: t, To: sw.sys.Modes[pendingTo].Name,
			})
			sw.current = pendingTo
			sw.phase = 0
			pendingTo = -1
		} else if pendingTo == sw.current {
			pendingTo = -1
		}
		s := sw.sys.Modes[sw.current].Schedule
		trace = append(trace, s.At(sw.phase))
		sw.phase = (sw.phase + 1) % s.Len()
	}
	return trace, transitions, nil
}
