package modes

import (
	"testing"

	"rtm/internal/core"
	"rtm/internal/sched"
)

// buildModal: the paper's example with two operating regimes for f_S:
// normal (both samplers) and degraded (only x, faster).
func buildModal() *System {
	comm := core.NewCommGraph()
	comm.AddElement("fX", 2)
	comm.AddElement("fY", 3)
	comm.AddElement("fS", 4)
	comm.AddElement("fK", 2)
	comm.AddPath("fX", "fS")
	comm.AddPath("fY", "fS")
	comm.AddPath("fS", "fK")
	comm.AddPath("fK", "fS")
	sys := NewSystem(comm)
	sys.AddMode("normal",
		&core.Constraint{Name: "X", Task: core.ChainTask("fX", "fS", "fK"),
			Period: 20, Deadline: 20, Kind: core.Periodic},
		&core.Constraint{Name: "Y", Task: core.ChainTask("fY", "fS", "fK"),
			Period: 40, Deadline: 40, Kind: core.Periodic},
	)
	sys.AddMode("degraded",
		&core.Constraint{Name: "X", Task: core.ChainTask("fX", "fS", "fK"),
			Period: 10, Deadline: 10, Kind: core.Periodic},
	)
	return sys
}

func TestCompileModes(t *testing.T) {
	sys := buildModal()
	if err := sys.Compile(); err != nil {
		t.Fatal(err)
	}
	for _, m := range sys.Modes {
		if m.Schedule == nil {
			t.Fatalf("mode %s has no schedule", m.Name)
		}
		if !sched.Feasible(m.Model, m.Schedule) {
			t.Fatalf("mode %s schedule infeasible", m.Name)
		}
	}
	if sys.ModeByName("nope") != nil {
		t.Fatal("unknown mode found")
	}
}

func TestCompileErrors(t *testing.T) {
	sys := NewSystem(core.NewCommGraph())
	if err := sys.Compile(); err == nil {
		t.Fatal("empty system compiled")
	}
	sys2 := buildModal()
	sys2.Modes[1].Name = sys2.Modes[0].Name
	if err := sys2.Compile(); err == nil {
		t.Fatal("duplicate mode names accepted")
	}
}

func TestSafePoints(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("a", 2)
	comm.AddElement("b", 1)
	// a a b φ: switching at slot 1 aborts a's execution
	s := sched.New("a", "a", "b", sched.Idle)
	safe, err := SafePoints(comm, s)
	if err != nil {
		t.Fatal(err)
	}
	m := map[int]bool{}
	for _, p := range safe {
		m[p] = true
	}
	if m[1] {
		t.Fatalf("slot 1 (mid-a) reported safe: %v", safe)
	}
	for _, want := range []int{0, 2, 3} {
		if !m[want] {
			t.Fatalf("slot %d should be safe: %v", want, safe)
		}
	}
}

func TestSafePointsPreempted(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("a", 2)
	comm.AddElement("b", 1)
	// a b a φ: a is preempted by b, so slots 1 and 2 are inside a's
	// execution span
	s := sched.New("a", "b", "a", sched.Idle)
	safe, err := SafePoints(comm, s)
	if err != nil {
		t.Fatal(err)
	}
	m := map[int]bool{}
	for _, p := range safe {
		m[p] = true
	}
	if m[1] || m[2] {
		t.Fatalf("slots inside a preempted execution reported safe: %v", safe)
	}
	if !m[0] || !m[3] {
		t.Fatalf("boundary slots should be safe: %v", safe)
	}
}

func TestMaxSafeWait(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("a", 2)
	s := sched.New("a", "a", sched.Idle, sched.Idle)
	wait, err := MaxSafeWait(comm, s)
	if err != nil {
		t.Fatal(err)
	}
	// only slot 1 is unsafe -> from slot 1 wait 1
	if wait != 1 {
		t.Fatalf("wait = %d, want 1", wait)
	}
	if _, err := MaxSafeWait(comm, sched.New()); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestTransitionBound(t *testing.T) {
	sys := buildModal()
	if _, err := sys.TransitionBound("normal", "degraded"); err == nil {
		t.Fatal("bound before Compile accepted")
	}
	if err := sys.Compile(); err != nil {
		t.Fatal(err)
	}
	b, err := sys.TransitionBound("normal", "degraded")
	if err != nil {
		t.Fatal(err)
	}
	in := sys.ModeByName("degraded")
	if b < in.Schedule.Len() {
		t.Fatalf("bound %d below one cycle of the incoming mode", b)
	}
	if _, err := sys.TransitionBound("normal", "nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSwitcherRunsAndSwitches(t *testing.T) {
	sys := buildModal()
	if err := sys.Compile(); err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitcher(sys)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []struct {
		At int
		To string
	}{
		{At: 13, To: "degraded"},
		{At: 90, To: "normal"},
	}
	horizon := 200
	trace, transitions, err := sw.RunWithRequests(horizon, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != horizon {
		t.Fatalf("trace length %d", len(trace))
	}
	if len(transitions) != 2 {
		t.Fatalf("transitions = %+v", transitions)
	}
	bound, _ := sys.TransitionBound("normal", "degraded")
	for _, tr := range transitions {
		if tr.SwitchAt < tr.RequestAt {
			t.Fatalf("switch before request: %+v", tr)
		}
		if tr.To == "degraded" && tr.SwitchAt-tr.RequestAt > bound {
			t.Fatalf("transition latency %d exceeds bound %d", tr.SwitchAt-tr.RequestAt, bound)
		}
	}
	// after the first switch, fY must not appear until switching back
	sawY := false
	for i := transitions[0].SwitchAt; i < transitions[1].SwitchAt; i++ {
		if trace[i] == "fY" {
			sawY = true
		}
	}
	if sawY {
		t.Fatal("degraded mode executed fY")
	}
}

func TestSwitcherErrors(t *testing.T) {
	sys := buildModal()
	if _, err := NewSwitcher(sys); err == nil {
		t.Fatal("uncompiled system accepted")
	}
	if err := sys.Compile(); err != nil {
		t.Fatal(err)
	}
	sw, _ := NewSwitcher(sys)
	_, _, err := sw.RunWithRequests(20, []struct {
		At int
		To string
	}{{At: 1, To: "nope"}})
	if err == nil {
		t.Fatal("unknown mode request accepted")
	}
}
