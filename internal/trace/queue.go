package trace

import (
	"encoding/json"
	"fmt"
)

// This file is the wire form of the async solve queue's journal
// (internal/queue): one record per job state transition, framed with
// the store's CRC-32C segment framing. The journal is replayed on
// startup the same way the schedule store's log is — longest clean
// prefix wins, torn or corrupt tails are truncated — so the record
// schema lives here next to StoreRecordJSON and is validated with the
// same rigor: a decoder fed arbitrary bytes must reject anything
// whose fingerprint or verdict fields are malformed, never panic, and
// never hand the queue a job it cannot execute.

// Queue journal record types. A job's lifecycle on disk is
// submitted → started → (done | failed); absence of a terminal record
// means the job is pending again on replay (a crash mid-solve costs
// the work, never the job).
const (
	QueueSubmitted = "submitted"
	QueueStarted   = "started"
	QueueDone      = "done"
	QueueFailed    = "failed"
)

// queueSources is the set of pipeline tiers a done record may name as
// the verdict's origin. "cache" and "store" appear when a queued job's
// class was decided by a concurrent synchronous request before a
// worker reached it.
var queueSources = map[string]bool{
	"analysis": true, "heuristic": true, "exact": true,
	"cache": true, "store": true,
}

// QueueRecordJSON is one queue journal record. Which fields are
// meaningful depends on Type; Validate enforces the shape per type.
type QueueRecordJSON struct {
	// Type is one of QueueSubmitted/QueueStarted/QueueDone/QueueFailed.
	Type string `json:"type"`
	// Fingerprint is the job's canonical model fingerprint — the job
	// ID. Dedup is content addressing: one fingerprint, one job.
	Fingerprint string `json:"fingerprint"`
	// Unix is the record's creation time in seconds (informational).
	Unix int64 `json:"unix,omitempty"`

	// Priority orders draining (higher first); submitted records only.
	Priority int `json:"priority,omitempty"`
	// DeadlineUnix is an optional client deadline (seconds; earlier
	// drains first within a priority band); submitted records only.
	DeadlineUnix int64 `json:"deadlineUnix,omitempty"`
	// Model is the submitted workload; submitted records only. It must
	// reconstruct to a valid model — a submitted record whose model
	// does not validate is rejected at decode time, so replay never
	// holds a job it cannot execute.
	Model *ModelJSON `json:"model,omitempty"`

	// Feasible is the decided verdict; done records only.
	Feasible bool `json:"feasible,omitempty"`
	// Source names the pipeline tier that produced the verdict; done
	// records only.
	Source string `json:"source,omitempty"`

	// Error describes a terminal failure; failed records only.
	Error string `json:"error,omitempty"`
}

// validFingerprint checks the canonical-fingerprint shape shared by
// store and queue records: 64 lowercase hex characters.
func validFingerprint(fp string) error {
	if len(fp) != 64 {
		return fmt.Errorf("trace: fingerprint %q is not 64 hex chars", fp)
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("trace: fingerprint %q is not lowercase hex", fp)
		}
	}
	return nil
}

// Validate checks the record's internal consistency per type. For
// submitted records this includes reconstructing the embedded model,
// so a record that validates is a record the queue can execute.
func (r *QueueRecordJSON) Validate() error {
	if err := validFingerprint(r.Fingerprint); err != nil {
		return fmt.Errorf("trace: queue record: %w", err)
	}
	switch r.Type {
	case QueueSubmitted:
		if r.Model == nil {
			return fmt.Errorf("trace: submitted queue record carries no model")
		}
		if r.Source != "" || r.Error != "" || r.Feasible {
			return fmt.Errorf("trace: submitted queue record carries verdict fields")
		}
		if _, err := r.Model.ToModel(); err != nil {
			return fmt.Errorf("trace: submitted queue record model: %w", err)
		}
	case QueueStarted:
		if r.Model != nil || r.Source != "" || r.Error != "" || r.Feasible {
			return fmt.Errorf("trace: started queue record carries extra fields")
		}
	case QueueDone:
		if !queueSources[r.Source] {
			return fmt.Errorf("trace: done queue record has unknown source %q", r.Source)
		}
		if r.Model != nil || r.Error != "" {
			return fmt.Errorf("trace: done queue record carries extra fields")
		}
	case QueueFailed:
		if r.Error == "" {
			return fmt.Errorf("trace: failed queue record carries no error")
		}
		if r.Model != nil || r.Source != "" || r.Feasible {
			return fmt.Errorf("trace: failed queue record carries extra fields")
		}
	default:
		return fmt.Errorf("trace: queue record has unknown type %q", r.Type)
	}
	return nil
}

// EncodeQueueRecord renders a validated record as compact JSON (one
// frame per record, single line).
func EncodeQueueRecord(r *QueueRecordJSON) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// DecodeQueueRecord reconstructs and validates a record.
func DecodeQueueRecord(data []byte) (*QueueRecordJSON, error) {
	var r QueueRecordJSON
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
