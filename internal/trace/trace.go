// Package trace serializes the system's artifacts — models, static
// schedules, feasibility reports and execution records — as JSON, so
// external tooling (plotters, CI dashboards, diffing) can consume
// synthesis results. Deserialization reconstructs semantically
// equivalent objects; round-tripping is covered by tests.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"rtm/internal/core"
	"rtm/internal/exec"
	"rtm/internal/sched"
)

// ModelJSON is the wire form of a core.Model.
type ModelJSON struct {
	Elements    []ElementJSON    `json:"elements"`
	Paths       []PathJSON       `json:"paths"`
	Constraints []ConstraintJSON `json:"constraints"`
}

// ElementJSON is one functional element.
type ElementJSON struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// PathJSON is one communication path.
type PathJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// ConstraintJSON is one timing constraint.
type ConstraintJSON struct {
	Name     string     `json:"name"`
	Kind     string     `json:"kind"` // "periodic" | "asynchronous"
	Period   int        `json:"period"`
	Deadline int        `json:"deadline"`
	Steps    []StepJSON `json:"steps"`
	Precs    []PathJSON `json:"precedences"`
}

// StepJSON is one task-graph node.
type StepJSON struct {
	Node string `json:"node"`
	Elem string `json:"elem"`
}

// NewModelJSON converts a model to its wire form (deterministic field
// order: sorted paths, constraints in model order). It is the encode
// half shared by EncodeModel and records that embed a model, like the
// solve queue's submitted-job journal entries.
func NewModelJSON(m *core.Model) *ModelJSON {
	out := &ModelJSON{}
	for _, e := range m.Comm.Elements() {
		out.Elements = append(out.Elements, ElementJSON{Name: e, Weight: m.Comm.WeightOf(e)})
	}
	edges := m.Comm.G.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		out.Paths = append(out.Paths, PathJSON{From: e.From, To: e.To})
	}
	for _, c := range m.Constraints {
		cj := ConstraintJSON{
			Name:     c.Name,
			Kind:     c.Kind.String(),
			Period:   c.Period,
			Deadline: c.Deadline,
		}
		for _, n := range c.Task.Nodes() {
			cj.Steps = append(cj.Steps, StepJSON{Node: n, Elem: c.Task.ElementOf(n)})
		}
		for _, e := range c.Task.G.Edges() {
			cj.Precs = append(cj.Precs, PathJSON{From: e.From, To: e.To})
		}
		out.Constraints = append(out.Constraints, cj)
	}
	return out
}

// EncodeModel renders a model as deterministic, indented JSON.
func EncodeModel(m *core.Model) ([]byte, error) {
	return json.MarshalIndent(NewModelJSON(m), "", "  ")
}

// DecodeModel reconstructs a validated model from EncodeModel output.
func DecodeModel(data []byte) (*core.Model, error) {
	var in ModelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return in.ToModel()
}

// ToModel reconstructs and validates the model a ModelJSON describes.
func (in *ModelJSON) ToModel() (*core.Model, error) {
	m := core.NewModel()
	for _, e := range in.Elements {
		m.Comm.AddElement(e.Name, e.Weight)
	}
	for _, p := range in.Paths {
		if !m.Comm.G.HasNode(p.From) || !m.Comm.G.HasNode(p.To) {
			return nil, fmt.Errorf("trace: path %s->%s references unknown element", p.From, p.To)
		}
		m.Comm.AddPath(p.From, p.To)
	}
	for _, cj := range in.Constraints {
		var kind core.Kind
		switch cj.Kind {
		case "periodic":
			kind = core.Periodic
		case "asynchronous":
			kind = core.Asynchronous
		default:
			return nil, fmt.Errorf("trace: constraint %q has unknown kind %q", cj.Name, cj.Kind)
		}
		task := core.NewTaskGraph()
		for _, s := range cj.Steps {
			task.AddStep(s.Node, s.Elem)
		}
		for _, p := range cj.Precs {
			task.AddPrec(p.From, p.To)
		}
		m.AddConstraint(&core.Constraint{
			Name: cj.Name, Task: task, Period: cj.Period, Deadline: cj.Deadline, Kind: kind,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded model invalid: %w", err)
	}
	return m, nil
}

// ScheduleJSON is the wire form of a static schedule; idle slots are
// empty strings.
type ScheduleJSON struct {
	Slots []string `json:"slots"`
}

// EncodeSchedule renders a schedule.
func EncodeSchedule(s *sched.Schedule) ([]byte, error) {
	return json.MarshalIndent(ScheduleJSON{Slots: s.Slots}, "", "  ")
}

// DecodeSchedule reconstructs a schedule.
func DecodeSchedule(data []byte) (*sched.Schedule, error) {
	var in ScheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &sched.Schedule{Slots: in.Slots}, nil
}

// ReportJSON is the wire form of a feasibility report.
type ReportJSON struct {
	Feasible    bool                   `json:"feasible"`
	Constraints []ReportConstraintJSON `json:"constraints"`
}

// ReportConstraintJSON is one per-constraint verdict; Latency −1
// encodes "never executes".
type ReportConstraintJSON struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Latency  int    `json:"latency"`
	Deadline int    `json:"deadline"`
	OK       bool   `json:"ok"`
}

// EncodeReport renders a feasibility report.
func EncodeReport(r *sched.Report) ([]byte, error) {
	out := ReportJSON{Feasible: r.Feasible}
	for _, c := range r.Constraints {
		lat := c.Latency
		if lat == sched.Infinite {
			lat = -1
		}
		out.Constraints = append(out.Constraints, ReportConstraintJSON{
			Name: c.Name, Kind: c.Kind.String(), Latency: lat, Deadline: c.Deadline, OK: c.OK,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// StoreRecordJSON is the wire form of one durable schedule-store
// record (internal/store): the decided outcome of an admission
// pipeline for one canonical fingerprint. The schedule travels in
// canonical index form — slot value -1 idles, any other value indexes
// the model's canonical element order — so one record serves every
// model in the fingerprint's isomorphism class.
type StoreRecordJSON struct {
	// Fingerprint is the canonical model fingerprint (64 hex chars,
	// see core.Fingerprint) — the record's content address.
	Fingerprint string `json:"fingerprint"`
	// Feasible is the decided verdict. Undecided (budget-starved)
	// outcomes are never persisted.
	Feasible bool `json:"feasible"`
	// Elements is the canonical element count of the model the record
	// was solved for; loaders reject records whose count disagrees
	// with the requesting model before indexing anything.
	Elements int `json:"elements"`
	// Slots is the schedule in canonical index form; nil unless
	// feasible.
	Slots []int `json:"slots,omitempty"`
	// Source names the pipeline stage that produced the verdict
	// ("analysis", "heuristic", "exact").
	Source string `json:"source,omitempty"`
	// Unix is the creation time in seconds (informational).
	Unix int64 `json:"unix,omitempty"`
}

// Validate checks the record's internal consistency: a well-formed
// content address, and a schedule whose every slot is -1 or a valid
// canonical element index. It does not (cannot) check the schedule
// against a model — that is the loader's re-verification step.
func (r *StoreRecordJSON) Validate() error {
	if err := validFingerprint(r.Fingerprint); err != nil {
		return fmt.Errorf("trace: store record: %w", err)
	}
	if r.Elements < 0 {
		return fmt.Errorf("trace: store record has %d elements", r.Elements)
	}
	if !r.Feasible && len(r.Slots) > 0 {
		return fmt.Errorf("trace: infeasible store record carries a %d-slot schedule", len(r.Slots))
	}
	if r.Feasible && len(r.Slots) == 0 {
		return fmt.Errorf("trace: feasible store record carries no schedule")
	}
	for i, v := range r.Slots {
		if v < -1 || v >= r.Elements {
			return fmt.Errorf("trace: store record slot %d has index %d, want -1 or [0,%d)", i, v, r.Elements)
		}
	}
	return nil
}

// EncodeStoreRecord renders a validated record as compact JSON — log
// records are framed individually, so they stay single-line.
func EncodeStoreRecord(r *StoreRecordJSON) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// DecodeStoreRecord reconstructs and validates a record.
func DecodeStoreRecord(data []byte) (*StoreRecordJSON, error) {
	var r StoreRecordJSON
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// RecordJSON is the wire form of a VM execution record.
type RecordJSON struct {
	Horizon    int                      `json:"horizon"`
	IdleSlots  int                      `json:"idleSlots"`
	Executions map[string][]ExecutionJS `json:"executions"`
}

// ExecutionJS is one completed execution.
type ExecutionJS struct {
	Start  int `json:"start"`
	Finish int `json:"finish"`
	Seq    int `json:"seq"`
}

// EncodeRecord renders a VM record (inputs are elided — they carry
// maps unfit for stable serialization; the timing skeleton is what
// downstream tools consume).
func EncodeRecord(r *exec.Record) ([]byte, error) {
	out := RecordJSON{Horizon: r.Horizon, IdleSlots: r.IdleSlots, Executions: map[string][]ExecutionJS{}}
	for elem, execs := range r.Executions {
		for _, e := range execs {
			out.Executions[elem] = append(out.Executions[elem], ExecutionJS{
				Start: e.Start, Finish: e.Finish, Seq: e.Seq,
			})
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
