package trace

import (
	"encoding/json"
	"fmt"
)

// MemoRecordJSON is the wire form of one durable refutation-cache
// record (internal/store's memo tier): the exported transposition
// table of one memo class — exact.MemoKey over the problem structure —
// as derived by a finished exact search. Signatures are opaque bytes
// to every layer but internal/exact; the store's soundness contract
// (a seeded signature can only ever be wasted memory, never a wrong
// verdict) means validation here is purely structural.
type MemoRecordJSON struct {
	// Key is the memo-class key (64 hex chars, exact.MemoKey) — the
	// record's content address. Problems with equal keys share
	// signature semantics; nothing else may be seeded from this record.
	Key string `json:"key"`
	// Fingerprints lists canonical model fingerprints observed to
	// belong to this memo class, sorted ascending — informational
	// reverse index for tooling and replication bucketing, capped at
	// MaxMemoFingerprints.
	Fingerprints []string `json:"fingerprints,omitempty"`
	// Sigs are the refutation signatures, each non-empty, sorted
	// descending (deepest subtrees first) so a capped truncation keeps
	// the most valuable entries. JSON carries them base64-encoded.
	Sigs [][]byte `json:"sigs"`
	// Unix is the last-update time in seconds (informational).
	Unix int64 `json:"unix,omitempty"`
}

const (
	// MaxMemoSigLen bounds one signature; real signatures are tens of
	// bytes, so anything huge in a decoded record is corruption.
	MaxMemoSigLen = 4096
	// MaxMemoFingerprints bounds the reverse index per class.
	MaxMemoFingerprints = 64
)

// Validate checks structural consistency: a well-formed content
// address, well-formed fingerprints in strictly ascending order, and
// bounded non-empty signatures. It cannot (and need not) check that
// signatures are reachable buildSig outputs — unreachable ones are
// dead weight by the seeding contract.
func (r *MemoRecordJSON) Validate() error {
	if err := validFingerprint(r.Key); err != nil {
		return fmt.Errorf("trace: memo record key: %w", err)
	}
	if len(r.Fingerprints) > MaxMemoFingerprints {
		return fmt.Errorf("trace: memo record carries %d fingerprints, max %d", len(r.Fingerprints), MaxMemoFingerprints)
	}
	for i, fp := range r.Fingerprints {
		if err := validFingerprint(fp); err != nil {
			return fmt.Errorf("trace: memo record fingerprint %d: %w", i, err)
		}
		if i > 0 && r.Fingerprints[i-1] >= fp {
			return fmt.Errorf("trace: memo record fingerprints out of order at %d", i)
		}
	}
	if len(r.Sigs) == 0 {
		return fmt.Errorf("trace: memo record carries no signatures")
	}
	for i, sig := range r.Sigs {
		if len(sig) == 0 {
			return fmt.Errorf("trace: memo record signature %d is empty", i)
		}
		if len(sig) > MaxMemoSigLen {
			return fmt.Errorf("trace: memo record signature %d is %d bytes, max %d", i, len(sig), MaxMemoSigLen)
		}
	}
	return nil
}

// EncodeMemoRecord renders a validated record as compact JSON.
func EncodeMemoRecord(r *MemoRecordJSON) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// DecodeMemoRecord reconstructs and validates a record.
func DecodeMemoRecord(data []byte) (*MemoRecordJSON, error) {
	var r MemoRecordJSON
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
