package trace

import (
	"strings"
	"testing"

	"rtm/internal/core"
	"rtm/internal/exec"
	"rtm/internal/heuristic"
	"rtm/internal/sched"
)

func TestModelRoundTrip(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Comm.G.Equal(m.Comm.G) {
		t.Fatal("communication graph changed")
	}
	if len(back.Constraints) != len(m.Constraints) {
		t.Fatal("constraints lost")
	}
	for _, c := range m.Constraints {
		bc := back.ConstraintByName(c.Name)
		if bc == nil || bc.Period != c.Period || bc.Deadline != c.Deadline || bc.Kind != c.Kind {
			t.Fatalf("constraint %s changed", c.Name)
		}
		if !bc.Task.G.Equal(c.Task.G) {
			t.Fatalf("task graph of %s changed", c.Name)
		}
	}
	// determinism
	data2, _ := EncodeModel(m)
	if string(data) != string(data2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestModelRoundTripRepeatedElem(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("f", 1)
	m.Comm.AddPath("f", "f")
	task := core.NewTaskGraph()
	task.AddStep("f1", "f")
	task.AddStep("f2", "f")
	task.AddPrec("f1", "f2")
	m.AddConstraint(&core.Constraint{Name: "C", Task: task, Period: 9, Deadline: 9, Kind: core.Asynchronous})
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	bt := back.Constraints[0].Task
	if bt.ElementOf("f1") != "f" || bt.ElementOf("f2") != "f" {
		t.Fatal("node->elem mapping lost")
	}
}

func TestDecodeModelErrors(t *testing.T) {
	if _, err := DecodeModel([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeModel([]byte(`{"paths":[{"from":"x","to":"y"}]}`)); err == nil {
		t.Fatal("dangling path accepted")
	}
	if _, err := DecodeModel([]byte(`{"elements":[{"name":"a","weight":1}],
		"constraints":[{"name":"c","kind":"weird","period":2,"deadline":2,
		"steps":[{"node":"a","elem":"a"}]}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := DecodeModel([]byte(`{"elements":[{"name":"a","weight":5}],
		"constraints":[{"name":"c","kind":"periodic","period":2,"deadline":2,
		"steps":[{"node":"a","elem":"a"}]}]}`)); err == nil {
		t.Fatal("invalid decoded model accepted")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := sched.New("a", sched.Idle, "b")
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip changed schedule: %v", back)
	}
	if _, err := DecodeSchedule([]byte("[")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReportEncode(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := sched.Check(m, res.Schedule)
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{`"feasible": true`, `"name": "X"`, `"kind": "asynchronous"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("report JSON missing %q:\n%s", want, out)
		}
	}
	// Infinite encodes as -1
	bad := sched.Check(m, sched.New("fX"))
	data, _ = EncodeReport(bad)
	if !strings.Contains(string(data), `"latency": -1`) {
		t.Fatalf("Infinite not encoded as -1:\n%s", data)
	}
}

func TestRecordEncode(t *testing.T) {
	m := core.ExampleSystem(core.DefaultExampleParams())
	res, err := heuristic.Schedule(m, heuristic.Options{MergeShared: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := exec.Run(m, res.Schedule, 100)
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"horizon": 100`) {
		t.Fatalf("record JSON:\n%.200s", data)
	}
	if !strings.Contains(string(data), `"fS"`) {
		t.Fatal("executions missing")
	}
}

func TestStoreRecordRoundTripAndValidation(t *testing.T) {
	fp := strings.Repeat("ab", 32)
	rec := &StoreRecordJSON{
		Fingerprint: fp, Feasible: true, Elements: 3,
		Slots: []int{0, -1, 2, 1}, Source: "exact", Unix: 1754000000,
	}
	data, err := EncodeStoreRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\n") {
		t.Fatal("store record JSON must be single-line")
	}
	back, err := DecodeStoreRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != fp || !back.Feasible || back.Elements != 3 || len(back.Slots) != 4 || back.Source != "exact" {
		t.Fatalf("round trip lost fields: %+v", back)
	}

	bad := []*StoreRecordJSON{
		{Fingerprint: "short", Feasible: false, Elements: 1},
		{Fingerprint: strings.Repeat("ZZ", 32), Feasible: false, Elements: 1},
		{Fingerprint: fp, Feasible: true, Elements: 2, Slots: []int{2}},
		{Fingerprint: fp, Feasible: true, Elements: 2, Slots: []int{-2}},
		{Fingerprint: fp, Feasible: true, Elements: 2},
		{Fingerprint: fp, Feasible: false, Elements: 2, Slots: []int{0}},
		{Fingerprint: fp, Feasible: false, Elements: -1},
	}
	for i, r := range bad {
		if _, err := EncodeStoreRecord(r); err == nil {
			t.Fatalf("bad record %d encoded: %+v", i, r)
		}
	}
	if _, err := DecodeStoreRecord([]byte(`{"fingerprint":"x"}`)); err == nil {
		t.Fatal("decode accepted malformed fingerprint")
	}
	if _, err := DecodeStoreRecord([]byte(`not json`)); err == nil {
		t.Fatal("decode accepted non-JSON")
	}
}
