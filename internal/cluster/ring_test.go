package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}

func TestRingOwnershipDeterministicAndOrderFree(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("%064x", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("key %d: ownership depends on construction order (%s vs %s)", i, o1, o2)
		}
		if o1 != r1.Owner(key) {
			t.Fatalf("key %d: ownership not stable", i)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if o := r.Owner(fmt.Sprintf("%064x", i)); o != "solo" {
			t.Fatalf("single-node ring routed to %q", o)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("%064x", i))]++
	}
	for _, node := range nodes {
		frac := float64(counts[node]) / n
		// 64 vnodes per node keeps each share within a loose band of
		// the uniform 1/3 — the point is no node is starved or hogging.
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", node, frac*100, counts)
		}
	}
}

func TestRingNodesSorted(t *testing.T) {
	r, err := NewRing([]string{"c", "a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Nodes()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestHash64MatchesFNV1a(t *testing.T) {
	// Pin the constants: the ring must keep hashing exactly like the
	// service's cache shard picker.
	if got := Hash64(""); got != 14695981039346656037 {
		t.Fatalf("Hash64(\"\") = %d", got)
	}
	var want uint64 = 14695981039346656037
	want = (want ^ 'a') * 1099511628211
	if got := Hash64("a"); got != want {
		t.Fatalf("Hash64(\"a\") = %d, want %d", got, want)
	}
}
