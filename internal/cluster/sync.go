package cluster

import (
	"context"
	"time"

	"rtm/internal/store"
)

// Syncer is the anti-entropy loop: periodically compare this node's
// store manifest with each peer's and pull the buckets whose digests
// differ, as sealed segments, replaying them through the store's
// validate-or-drop import. Convergence argument: the digest is a pure
// function of a bucket's fingerprint set and imports only ever add
// fingerprints (first write wins, no deletes in the protocol), so
// after one full round in a quiet fleet every node's fingerprint set
// is the union of the fleet's sets and all digests for
// equal-membership buckets agree. A corrupt pull imports the clean
// prefix and leaves the digest unequal, so the next round retries —
// damage heals instead of propagating, and because serves re-verify,
// the damaged window costs misses, never wrong verdicts.
//
// The memo tier replicates through the same loop: per-bucket memo
// digests compare, divergent buckets pull as sealed memo segments, and
// the import merges signature sets under the order-independent
// union-and-cap rule, so replicas converge regardless of pull order. A
// poisoned memo segment is even safer than a poisoned verdict segment:
// a seeded signature only ever matches by exact bytes, so corruption
// that survives framing costs table memory, never a verdict.
type Syncer struct {
	// Store is the local store replicated into.
	Store *store.Store
	// Peers are the nodes to sync from.
	Peers []*Client
	// Interval is the period between rounds for Run. Zero defaults to
	// 10 seconds.
	Interval time.Duration
	// OnPull, when non-nil, observes each successful segment pull with
	// the number of records imported (metrics hook).
	OnPull func(records int64)
	// Logf, when non-nil, receives one line per failed peer exchange.
	Logf func(format string, args ...any)
}

// SyncOnce runs one anti-entropy round against every peer and returns
// the number of segments pulled and records imported. Peer failures
// are logged and skipped — a dead peer never fails the round.
func (sy *Syncer) SyncOnce(ctx context.Context) (pulls, records int) {
	for _, peer := range sy.Peers {
		if ctx.Err() != nil {
			return pulls, records
		}
		theirs, err := peer.Manifest(ctx)
		if err != nil {
			sy.logf("cluster: sync: %v", err)
			continue
		}
		// Re-read the local manifest per peer: pulls from an earlier
		// peer this round may have already converged some buckets.
		mine := sy.Store.Manifest()
		for _, b := range theirs.Buckets {
			if b.Bucket < 0 || b.Bucket >= store.ManifestBuckets {
				continue
			}
			if b.Count > 0 && b.Digest != mine[b.Bucket].Digest {
				seg, err := peer.PullSegment(ctx, b.Bucket)
				if err != nil {
					sy.logf("cluster: sync: %v", err)
					continue
				}
				st, err := sy.Store.ImportFrames(seg)
				if err != nil {
					sy.logf("cluster: sync: importing bucket %d from %s: %v", b.Bucket, peer.Node(), err)
					continue
				}
				if st.Dropped {
					sy.logf("cluster: sync: bucket %d from %s had a corrupt tail; kept %d-record clean prefix", b.Bucket, peer.Node(), st.Imported)
				}
				pulls++
				records += st.Imported
				if sy.OnPull != nil {
					sy.OnPull(int64(st.Imported))
				}
			}
			// Memo tier: same digest-compare-then-pull, but the import
			// merges (union + cap) instead of first-write-wins, and an
			// empty peer MemoDigest means the peer predates the memo
			// tier — nothing to pull.
			if b.MemoCount > 0 && b.MemoDigest != "" && b.MemoDigest != mine[b.Bucket].MemoDigest {
				seg, err := peer.PullMemoSegment(ctx, b.Bucket)
				if err != nil {
					sy.logf("cluster: sync: %v", err)
					continue
				}
				st, err := sy.Store.ImportMemoFrames(seg)
				if err != nil {
					sy.logf("cluster: sync: importing memo bucket %d from %s: %v", b.Bucket, peer.Node(), err)
					continue
				}
				if st.Dropped {
					sy.logf("cluster: sync: memo bucket %d from %s had a corrupt tail; kept %d-record clean prefix", b.Bucket, peer.Node(), st.Imported)
				}
				pulls++
				records += st.Imported
				if sy.OnPull != nil {
					sy.OnPull(int64(st.Imported))
				}
			}
		}
	}
	return pulls, records
}

// Run loops SyncOnce every Interval until ctx is cancelled.
func (sy *Syncer) Run(ctx context.Context) {
	iv := sy.Interval
	if iv <= 0 {
		iv = 10 * time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			sy.SyncOnce(ctx)
		}
	}
}

func (sy *Syncer) logf(format string, args ...any) {
	if sy.Logf != nil {
		sy.Logf(format, args...)
	}
}
