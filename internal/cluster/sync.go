package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rtm/internal/store"
)

// Syncer is the anti-entropy loop: periodically compare this node's
// store manifest with each peer's and pull what differs, replaying it
// through the store's validate-or-drop import. Convergence argument:
// the digest is a pure function of a bucket's fingerprint set and
// imports only ever add fingerprints (first write wins, no deletes in
// the protocol), so after one full round in a quiet fleet every
// node's fingerprint set is the union of the fleet's sets and all
// digests for equal-membership buckets agree. A corrupt pull imports
// the clean prefix and leaves the digest unequal, so the next round
// retries — damage heals instead of propagating, and because serves
// re-verify, the damaged window costs misses, never wrong verdicts.
//
// Against a peer advertising the Merkle manifest (ManifestDoc.
// MerkleDepth), a divergent bucket is narrowed instead of pulled
// whole: the syncer walks the peer's prefix digests level by level to
// the divergent leaves, fetches each leaf's fingerprint set, computes
// the missing set locally, and pulls exactly those records — so the
// wire cost of a round is proportional to the divergence, not the
// store size. Whole-bucket pulls survive as the fallback for
// pre-Merkle peers (and behind DisableMerkle as an operational escape
// hatch). The trustlessness argument is unchanged: narrowing only
// decides WHAT to pull; every pulled byte still goes through the same
// validate-or-drop import, and a peer lying in its digests can cost
// redundant or missing pulls, never a wrong record.
//
// The memo tier replicates through the same loop but pulls whole
// divergent leaves (or buckets, on the fallback path): memo records
// converge by content merge under the order-independent union-and-cap
// rule, so there is no per-record set difference to compute. A
// poisoned memo segment is even safer than a poisoned verdict
// segment: a seeded signature only ever matches by exact bytes, so
// corruption that survives framing costs table memory, never a
// verdict. The two tiers fail independently — a dead verdict endpoint
// defers verdict convergence one round, never memo convergence.
type Syncer struct {
	// Store is the local store replicated into.
	Store *store.Store
	// Peers are the nodes to sync from.
	Peers []*Client
	// Interval is the period between rounds for Run. Zero defaults to
	// 10 seconds.
	Interval time.Duration
	// Concurrency bounds how many peers are synced in parallel within
	// one round. Zero defaults to 4.
	Concurrency int
	// DisableMerkle forces whole-bucket pulls even against peers that
	// advertise Merkle manifests — the operational escape hatch, and
	// the old-protocol arm of rtbench -sync.
	DisableMerkle bool
	// OnPull, when non-nil, observes each successful pull with the
	// number of records imported (metrics hook).
	OnPull func(records int64)
	// OnRound, when non-nil, observes each completed round's
	// aggregate stats (metrics hook).
	OnRound func(RoundStats)
	// Logf, when non-nil, receives one line per failed peer exchange.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	backoff map[string]*peerBackoff // peer base URL → failure state
}

// RoundStats aggregates one anti-entropy round.
type RoundStats struct {
	// Peers counts peers attempted; Deferred counts peers skipped
	// because they are in failure backoff; Failures counts attempted
	// peers with at least one failed exchange.
	Peers    int
	Deferred int
	Failures int
	// Pulls counts successful pull+import operations (bucket, leaf,
	// or record-fetch); Records counts records imported by them.
	Pulls   int
	Records int
	// BytesRx / BytesTx are the wire bytes moved this round across
	// all peers (request and response bodies of the sync protocol).
	BytesRx int64
	BytesTx int64
}

func (r *RoundStats) addPull(imported int, onPull func(int64)) {
	r.Pulls++
	r.Records += imported
	if onPull != nil {
		onPull(int64(imported))
	}
}

// peerBackoff tracks consecutive failures against one peer. Backoff
// is counted in rounds, not wall time, so manually-driven syncs (and
// tests) see the same behavior as the ticker loop: after the k-th
// consecutive failed round the peer sits out min(2^(k-1)-1, 7)
// rounds. Any successful round resets it.
type peerBackoff struct {
	fails int
	skip  int
}

// fetchBatch bounds one record-fetch request — large enough that a
// typical round needs one request per peer, small enough to keep a
// single response far below the segment cap.
const fetchBatch = 512

// SyncOnce runs one anti-entropy round: every peer not in backoff is
// synced on its own goroutine (at most Concurrency in flight), each
// tier of each divergent bucket narrowed or pulled independently.
func (sy *Syncer) SyncOnce(ctx context.Context) RoundStats {
	conc := sy.Concurrency
	if conc <= 0 {
		conc = 4
	}
	var (
		round RoundStats
		mu    sync.Mutex
		wg    sync.WaitGroup
		sem   = make(chan struct{}, conc)
	)
	for _, peer := range sy.Peers {
		if !sy.admitPeer(peer) {
			round.Deferred++
			continue
		}
		wg.Add(1)
		go func(p *Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			rx0, tx0 := p.BytesRx(), p.BytesTx()
			st, failed := sy.syncPeer(ctx, p)
			sy.notePeer(p, failed)
			mu.Lock()
			defer mu.Unlock()
			round.Peers++
			if failed {
				round.Failures++
			}
			round.Pulls += st.Pulls
			round.Records += st.Records
			round.BytesRx += p.BytesRx() - rx0
			round.BytesTx += p.BytesTx() - tx0
		}(peer)
	}
	wg.Wait()
	if sy.OnRound != nil {
		sy.OnRound(round)
	}
	return round
}

// admitPeer consumes one backoff round for p and reports whether it
// should be attempted.
func (sy *Syncer) admitPeer(p *Client) bool {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	ps := sy.backoff[p.Base()]
	if ps == nil || ps.skip == 0 {
		return true
	}
	ps.skip--
	return false
}

func (sy *Syncer) notePeer(p *Client, failed bool) {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	if !failed {
		delete(sy.backoff, p.Base())
		return
	}
	if sy.backoff == nil {
		sy.backoff = make(map[string]*peerBackoff)
	}
	ps := sy.backoff[p.Base()]
	if ps == nil {
		ps = &peerBackoff{}
		sy.backoff[p.Base()] = ps
	}
	ps.fails++
	shift := ps.fails - 1
	if shift > 3 {
		shift = 3
	}
	ps.skip = 1<<shift - 1
}

// syncPeer runs both tiers of one peer exchange and reports the
// pulls/records plus whether anything failed (for backoff).
func (sy *Syncer) syncPeer(ctx context.Context, peer *Client) (st RoundStats, failed bool) {
	theirs, err := peer.Manifest(ctx)
	if err != nil {
		sy.logf("cluster: sync: %v", err)
		return st, true
	}
	// Re-read the local manifest per peer: pulls from an earlier peer
	// this round may have already converged some buckets.
	mine := sy.Store.Manifest()
	merkle := !sy.DisableMerkle && theirs.MerkleDepth == store.MerkleDepth

	// Verdict tier: narrow divergent buckets to missing fingerprints
	// (Merkle peers) or pull them whole (fallback), then fetch the
	// missing records in batches.
	var want []string
	for _, b := range theirs.Buckets {
		if b.Bucket < 0 || b.Bucket >= store.ManifestBuckets || ctx.Err() != nil {
			continue
		}
		if b.Count == 0 || b.Digest == mine[b.Bucket].Digest {
			continue
		}
		if !merkle {
			seg, err := peer.PullSegment(ctx, b.Bucket)
			if err != nil {
				sy.logf("cluster: sync: %v", err)
				failed = true
				continue
			}
			ist, err := sy.Store.ImportFrames(seg)
			if err != nil {
				sy.logf("cluster: sync: importing bucket %d from %s: %v", b.Bucket, peer.Node(), err)
				failed = true
				continue
			}
			if ist.Dropped {
				sy.logf("cluster: sync: bucket %d from %s had a corrupt tail; kept %d-record clean prefix", b.Bucket, peer.Node(), ist.Imported)
			}
			st.addPull(ist.Imported, sy.OnPull)
			continue
		}
		missing, err := sy.narrowVerdict(ctx, peer, fmt.Sprintf("%x", b.Bucket))
		want = append(want, missing...)
		if err != nil {
			sy.logf("cluster: sync: %v", err)
			failed = true
		}
	}
	for len(want) > 0 && ctx.Err() == nil {
		batch := want
		if len(batch) > fetchBatch {
			batch = batch[:fetchBatch]
		}
		want = want[len(batch):]
		seg, err := peer.FetchRecords(ctx, batch)
		if err != nil {
			sy.logf("cluster: sync: %v", err)
			failed = true
			break
		}
		ist, err := sy.Store.ImportFrames(seg)
		if err != nil {
			sy.logf("cluster: sync: importing fetch from %s: %v", peer.Node(), err)
			failed = true
			break
		}
		if ist.Dropped {
			sy.logf("cluster: sync: fetch from %s had a corrupt tail; kept %d-record clean prefix", peer.Node(), ist.Imported)
		}
		st.addPull(ist.Imported, sy.OnPull)
	}

	// Memo tier, independently of any verdict-tier failure: a dead
	// segment endpoint must not defer memo convergence a full round.
	// An empty peer MemoDigest means the peer predates the memo tier —
	// nothing to pull.
	for _, b := range theirs.Buckets {
		if b.Bucket < 0 || b.Bucket >= store.ManifestBuckets || ctx.Err() != nil {
			continue
		}
		if b.MemoCount == 0 || b.MemoDigest == "" || b.MemoDigest == mine[b.Bucket].MemoDigest {
			continue
		}
		if !merkle {
			seg, err := peer.PullMemoSegment(ctx, b.Bucket)
			if err != nil {
				sy.logf("cluster: sync: %v", err)
				failed = true
				continue
			}
			ist, err := sy.Store.ImportMemoFrames(seg)
			if err != nil {
				sy.logf("cluster: sync: importing memo bucket %d from %s: %v", b.Bucket, peer.Node(), err)
				failed = true
				continue
			}
			if ist.Dropped {
				sy.logf("cluster: sync: memo bucket %d from %s had a corrupt tail; kept %d-record clean prefix", b.Bucket, peer.Node(), ist.Imported)
			}
			st.addPull(ist.Imported, sy.OnPull)
			continue
		}
		if err := sy.narrowMemo(ctx, peer, fmt.Sprintf("%x", b.Bucket), &st); err != nil {
			sy.logf("cluster: sync: %v", err)
			failed = true
		}
	}
	return st, failed
}

// narrowVerdict walks the peer's verdict digests under prefix down to
// the divergent leaves and returns the fingerprints the peer has that
// this node lacks. Children the peer has empty are skipped — the
// protocol is pull-only; a peer missing OUR records converges by
// pulling from us. An error returns the missing set found so far, so
// a partial walk still heals what it reached.
func (sy *Syncer) narrowVerdict(ctx context.Context, peer *Client, prefix string) ([]string, error) {
	if len(prefix) == store.MerkleDepth {
		peerFps, err := peer.LeafFingerprints(ctx, prefix)
		if err != nil {
			return nil, err
		}
		local, err := sy.Store.LeafFingerprints(prefix)
		if err != nil {
			return nil, err
		}
		have := make(map[string]bool, len(local))
		for _, fp := range local {
			have[fp] = true
		}
		var missing []string
		for _, fp := range peerFps {
			if !have[fp] {
				missing = append(missing, fp)
			}
		}
		return missing, nil
	}
	peerDs, err := peer.Digests(ctx, prefix, len(prefix)+1, "v")
	if err != nil {
		return nil, err
	}
	localDs, err := sy.Store.Digests(prefix, len(prefix)+1, true, false)
	if err != nil {
		return nil, err
	}
	local := make(map[string]store.PrefixDigest, len(localDs))
	for _, d := range localDs {
		local[d.Prefix] = d
	}
	var missing []string
	for _, d := range peerDs {
		if d.Count == 0 || ctx.Err() != nil {
			continue
		}
		if l := local[d.Prefix]; l.Count == d.Count && l.Digest == d.Digest {
			continue
		}
		sub, err := sy.narrowVerdict(ctx, peer, d.Prefix)
		missing = append(missing, sub...)
		if err != nil {
			return missing, err
		}
	}
	return missing, nil
}

// narrowMemo walks the peer's memo digests under prefix and pulls
// each divergent leaf as a sealed memo segment.
func (sy *Syncer) narrowMemo(ctx context.Context, peer *Client, prefix string, st *RoundStats) error {
	if len(prefix) == store.MerkleDepth {
		seg, err := peer.PullMemoLeaf(ctx, prefix)
		if err != nil {
			return err
		}
		ist, err := sy.Store.ImportMemoFrames(seg)
		if err != nil {
			return fmt.Errorf("importing memo leaf %q from %s: %w", prefix, peer.Node(), err)
		}
		if ist.Dropped {
			sy.logf("cluster: sync: memo leaf %q from %s had a corrupt tail; kept %d-record clean prefix", prefix, peer.Node(), ist.Imported)
		}
		st.addPull(ist.Imported, sy.OnPull)
		return nil
	}
	peerDs, err := peer.Digests(ctx, prefix, len(prefix)+1, "m")
	if err != nil {
		return err
	}
	localDs, err := sy.Store.Digests(prefix, len(prefix)+1, false, true)
	if err != nil {
		return err
	}
	local := make(map[string]store.PrefixDigest, len(localDs))
	for _, d := range localDs {
		local[d.Prefix] = d
	}
	for _, d := range peerDs {
		if d.MemoCount == 0 || ctx.Err() != nil {
			continue
		}
		if l := local[d.Prefix]; l.MemoCount == d.MemoCount && l.MemoDigest == d.MemoDigest {
			continue
		}
		if err := sy.narrowMemo(ctx, peer, d.Prefix, st); err != nil {
			return err
		}
	}
	return nil
}

// Run loops SyncOnce every Interval until ctx is cancelled. The first
// round runs immediately, so a fresh or restarted node converges
// right away instead of serving cold for a full interval.
func (sy *Syncer) Run(ctx context.Context) {
	iv := sy.Interval
	if iv <= 0 {
		iv = 10 * time.Second
	}
	if ctx.Err() != nil {
		return
	}
	sy.SyncOnce(ctx)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			sy.SyncOnce(ctx)
		}
	}
}

func (sy *Syncer) logf(format string, args ...any) {
	if sy.Logf != nil {
		sy.Logf(format, args...)
	}
}
