package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rtm/internal/store"
)

// peerServer exposes a store over the cluster's manifest/segment wire
// protocol, with an optional segment mangler for corruption tests.
func peerServer(t *testing.T, node string, st *store.Store, mangle *atomic.Bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ManifestDoc{Node: node, Buckets: st.Manifest()})
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
		if err != nil {
			http.Error(w, "bad bucket", http.StatusBadRequest)
			return
		}
		seg, _, err := st.ExportBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if mangle != nil && mangle.Load() {
			for i := range seg {
				seg[i] ^= 0x5a
			}
		}
		w.Write(seg)
	})
	mux.HandleFunc("/cluster/memoseg/", func(w http.ResponseWriter, r *http.Request) {
		b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/memoseg/"))
		if err != nil {
			http.Error(w, "bad bucket", http.StatusBadRequest)
			return
		}
		seg, _, err := st.ExportMemoBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if mangle != nil && mangle.Load() {
			for i := range seg {
				seg[i] ^= 0x5a
			}
		}
		w.Write(seg)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func seedRecord(bucket, i int) *store.Record {
	return &store.Record{
		Fingerprint: fmt.Sprintf("%x%063x", bucket, i+1),
		Feasible:    true, Elements: 2, Slots: []int{0, 1}, Source: "exact",
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestSyncOnceConverges(t *testing.T) {
	a, b := openStore(t), openStore(t)
	for i := 0; i < 5; i++ {
		if err := a.Put(seedRecord(i%3, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 14; i++ {
		if err := b.Put(seedRecord(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	srvA := peerServer(t, "a", a, nil)
	srvB := peerServer(t, "b", b, nil)

	var pulled atomic.Int64
	syA := &Syncer{Store: a, Peers: []*Client{NewClient("b", srvB.URL, time.Second)},
		OnPull: func(n int64) { pulled.Add(n) }, Logf: t.Logf}
	syB := &Syncer{Store: b, Peers: []*Client{NewClient("a", srvA.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	pulls, records := syA.SyncOnce(ctx)
	if pulls != 1 || records != 4 {
		t.Fatalf("A's round pulled %d segments / %d records, want 1/4", pulls, records)
	}
	if pulled.Load() != 4 {
		t.Fatalf("OnPull observed %d records, want 4", pulled.Load())
	}
	syB.SyncOnce(ctx)

	am, bm := a.Manifest(), b.Manifest()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("bucket %d diverged after sync: %+v vs %+v", i, am[i], bm[i])
		}
	}
	if a.Len() != 9 || b.Len() != 9 {
		t.Fatalf("lens after sync: a=%d b=%d, want 9/9", a.Len(), b.Len())
	}

	// quiescent round: nothing left to pull
	if pulls, records := syA.SyncOnce(ctx); pulls != 0 || records != 0 {
		t.Fatalf("quiescent round pulled %d/%d", pulls, records)
	}
}

// TestSyncCorruptPullHealsNextRound pins acceptance (c) at the
// protocol level: a segment mangled in flight imports nothing wrong
// (clean-prefix zero here, since every byte is flipped), the round
// survives, and a later clean round heals the gap.
func TestSyncCorruptPullHealsNextRound(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	for i := 0; i < 4; i++ {
		if err := src.Put(seedRecord(9, i)); err != nil {
			t.Fatal(err)
		}
	}
	var mangle atomic.Bool
	mangle.Store(true)
	srv := peerServer(t, "src", src, &mangle)
	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	pulls, records := sy.SyncOnce(ctx)
	if records != 0 || dst.Len() != 0 {
		t.Fatalf("corrupt round imported %d records (pulls=%d, len=%d) — corruption served", records, pulls, dst.Len())
	}

	mangle.Store(false)
	pulls, records = sy.SyncOnce(ctx)
	if pulls != 1 || records != 4 || dst.Len() != 4 {
		t.Fatalf("healing round: pulls=%d records=%d len=%d, want 1/4/4", pulls, records, dst.Len())
	}
	sm, dm := src.Manifest(), dst.Manifest()
	if sm[9] != dm[9] {
		t.Fatalf("bucket 9 not healed: %+v vs %+v", sm[9], dm[9])
	}
}

// TestSyncMemoConverges pins memo-tier replication: after one sync
// round each way, both stores hold the merged (union) signature sets
// and their manifests — memo digests included — are identical. Unlike
// verdicts there is no first-write-wins: overlapping classes merge.
func TestSyncMemoConverges(t *testing.T) {
	a, b := openStore(t), openStore(t)
	key := fmt.Sprintf("%x%063x", 5, 0x42)
	sigsA := [][]byte{[]byte("sig-a1"), []byte("sig-shared")}
	sigsB := [][]byte{[]byte("sig-b1"), []byte("sig-b2"), []byte("sig-shared")}
	if err := a.PutMemo(key, []string{fmt.Sprintf("%064x", 1)}, sigsA); err != nil {
		t.Fatal(err)
	}
	if err := b.PutMemo(key, []string{fmt.Sprintf("%064x", 2)}, sigsB); err != nil {
		t.Fatal(err)
	}
	// a second class only A holds, plus a verdict so both tiers move
	keyOnlyA := fmt.Sprintf("%x%063x", 3, 0x43)
	if err := a.PutMemo(keyOnlyA, nil, [][]byte{[]byte("lone")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(seedRecord(2, 1)); err != nil {
		t.Fatal(err)
	}

	srvA := peerServer(t, "a", a, nil)
	srvB := peerServer(t, "b", b, nil)
	syA := &Syncer{Store: a, Peers: []*Client{NewClient("b", srvB.URL, time.Second)}, Logf: t.Logf}
	syB := &Syncer{Store: b, Peers: []*Client{NewClient("a", srvA.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	syA.SyncOnce(ctx)
	syB.SyncOnce(ctx)

	for _, st := range []*store.Store{a, b} {
		rec, ok := st.GetMemo(key)
		if !ok || len(rec.Sigs) != 4 { // union of {a1, shared} and {b1, b2, shared}
			t.Fatalf("merged class: ok=%v sigs=%d, want 4", ok, len(rec.Sigs))
		}
		if len(rec.Fingerprints) != 2 {
			t.Fatalf("fingerprint union: %v", rec.Fingerprints)
		}
		if _, ok := st.GetMemo(keyOnlyA); !ok {
			t.Fatal("one-sided class not replicated")
		}
	}
	am, bm := a.Manifest(), b.Manifest()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("bucket %d diverged after sync: %+v vs %+v", i, am[i], bm[i])
		}
	}
	// quiescent round: converged replicas pull nothing
	if pulls, records := syA.SyncOnce(ctx); pulls != 0 || records != 0 {
		t.Fatalf("quiescent round pulled %d/%d", pulls, records)
	}
}

// TestSyncMemoPoisonedSegmentDropped pins the trustless import: a memo
// segment mangled in flight contributes nothing (every byte flipped →
// empty clean prefix), the local store stays intact, and the next clean
// round heals.
func TestSyncMemoPoisonedSegmentDropped(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	key := fmt.Sprintf("%x%063x", 9, 0x51)
	if err := src.PutMemo(key, nil, [][]byte{[]byte("deep-refutation")}); err != nil {
		t.Fatal(err)
	}
	var mangle atomic.Bool
	mangle.Store(true)
	srv := peerServer(t, "src", src, &mangle)
	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	sy.SyncOnce(ctx)
	if dst.MemoLen() != 0 {
		t.Fatalf("poisoned round imported %d memo classes", dst.MemoLen())
	}

	mangle.Store(false)
	sy.SyncOnce(ctx)
	rec, ok := dst.GetMemo(key)
	if !ok || len(rec.Sigs) != 1 {
		t.Fatalf("healing round: ok=%v rec=%+v", ok, rec)
	}
}

// TestSyncMemoOldPeerSkipped pins wire compatibility: a peer whose
// manifest predates the memo tier (no memoDigest fields) syncs verdicts
// normally and is never asked for memo segments.
func TestSyncMemoOldPeerSkipped(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	if err := src.Put(seedRecord(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := src.PutMemo(fmt.Sprintf("%x%063x", 4, 0x61), nil, [][]byte{[]byte("s")}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		buckets := src.Manifest()
		for i := range buckets {
			buckets[i].MemoCount, buckets[i].MemoDigest = 0, "" // pre-memo peer
		}
		json.NewEncoder(w).Encode(ManifestDoc{Node: "old", Buckets: buckets})
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		b, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
		seg, _, err := src.ExportBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	// note: no /cluster/memoseg/ route — an old peer 404s it
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("old", srv.URL, time.Second)}, Logf: t.Logf}
	pulls, records := sy.SyncOnce(context.Background())
	if pulls != 1 || records != 1 || dst.Len() != 1 {
		t.Fatalf("verdict sync against old peer: pulls=%d records=%d len=%d", pulls, records, dst.Len())
	}
	if dst.MemoLen() != 0 {
		t.Fatal("memo classes appeared from a peer that advertises none")
	}
}

func TestSyncDeadPeerSkipped(t *testing.T) {
	dst := openStore(t)
	if err := dst.Put(seedRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	sy := &Syncer{Store: dst,
		Peers: []*Client{NewClient("gone", "http://127.0.0.1:1", 200*time.Millisecond)},
		Logf:  t.Logf}
	pulls, records := sy.SyncOnce(context.Background())
	if pulls != 0 || records != 0 || dst.Len() != 1 {
		t.Fatalf("dead peer round: pulls=%d records=%d len=%d", pulls, records, dst.Len())
	}
}
