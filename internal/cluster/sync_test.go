package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rtm/internal/store"
)

// peerServer exposes a store over the cluster's PRE-MERKLE wire
// protocol — manifest without a merkleDepth field, whole-bucket
// segments only — with an optional segment mangler for corruption
// tests. Syncing against it exercises the fallback path; see
// merklePeerServer for the narrowing protocol.
func peerServer(t *testing.T, node string, st *store.Store, mangle *atomic.Bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ManifestDoc{Node: node, Buckets: st.Manifest()})
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
		if err != nil {
			http.Error(w, "bad bucket", http.StatusBadRequest)
			return
		}
		seg, _, err := st.ExportBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if mangle != nil && mangle.Load() {
			for i := range seg {
				seg[i] ^= 0x5a
			}
		}
		w.Write(seg)
	})
	mux.HandleFunc("/cluster/memoseg/", func(w http.ResponseWriter, r *http.Request) {
		b, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/memoseg/"))
		if err != nil {
			http.Error(w, "bad bucket", http.StatusBadRequest)
			return
		}
		seg, _, err := st.ExportMemoBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if mangle != nil && mangle.Load() {
			for i := range seg {
				seg[i] ^= 0x5a
			}
		}
		w.Write(seg)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func seedRecord(bucket, i int) *store.Record {
	return &store.Record{
		Fingerprint: fmt.Sprintf("%x%063x", bucket, i+1),
		Feasible:    true, Elements: 2, Slots: []int{0, 1}, Source: "exact",
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestSyncOnceConverges(t *testing.T) {
	a, b := openStore(t), openStore(t)
	for i := 0; i < 5; i++ {
		if err := a.Put(seedRecord(i%3, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 14; i++ {
		if err := b.Put(seedRecord(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	srvA := peerServer(t, "a", a, nil)
	srvB := peerServer(t, "b", b, nil)

	var pulled atomic.Int64
	syA := &Syncer{Store: a, Peers: []*Client{NewClient("b", srvB.URL, time.Second)},
		OnPull: func(n int64) { pulled.Add(n) }, Logf: t.Logf}
	syB := &Syncer{Store: b, Peers: []*Client{NewClient("a", srvA.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	rs := syA.SyncOnce(ctx)
	if rs.Pulls != 1 || rs.Records != 4 {
		t.Fatalf("A's round pulled %d segments / %d records, want 1/4", rs.Pulls, rs.Records)
	}
	if pulled.Load() != 4 {
		t.Fatalf("OnPull observed %d records, want 4", pulled.Load())
	}
	syB.SyncOnce(ctx)

	am, bm := a.Manifest(), b.Manifest()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("bucket %d diverged after sync: %+v vs %+v", i, am[i], bm[i])
		}
	}
	if a.Len() != 9 || b.Len() != 9 {
		t.Fatalf("lens after sync: a=%d b=%d, want 9/9", a.Len(), b.Len())
	}

	// quiescent round: nothing left to pull
	if rs := syA.SyncOnce(ctx); rs.Pulls != 0 || rs.Records != 0 {
		t.Fatalf("quiescent round pulled %d/%d", rs.Pulls, rs.Records)
	}
}

// TestSyncCorruptPullHealsNextRound pins acceptance (c) at the
// protocol level: a segment mangled in flight imports nothing wrong
// (clean-prefix zero here, since every byte is flipped), the round
// survives, and a later clean round heals the gap.
func TestSyncCorruptPullHealsNextRound(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	for i := 0; i < 4; i++ {
		if err := src.Put(seedRecord(9, i)); err != nil {
			t.Fatal(err)
		}
	}
	var mangle atomic.Bool
	mangle.Store(true)
	srv := peerServer(t, "src", src, &mangle)
	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	rs := sy.SyncOnce(ctx)
	if rs.Records != 0 || dst.Len() != 0 {
		t.Fatalf("corrupt round imported %d records (pulls=%d, len=%d) — corruption served", rs.Records, rs.Pulls, dst.Len())
	}

	mangle.Store(false)
	rs = sy.SyncOnce(ctx)
	if rs.Pulls != 1 || rs.Records != 4 || dst.Len() != 4 {
		t.Fatalf("healing round: pulls=%d records=%d len=%d, want 1/4/4", rs.Pulls, rs.Records, dst.Len())
	}
	sm, dm := src.Manifest(), dst.Manifest()
	if sm[9] != dm[9] {
		t.Fatalf("bucket 9 not healed: %+v vs %+v", sm[9], dm[9])
	}
}

// TestSyncMemoConverges pins memo-tier replication: after one sync
// round each way, both stores hold the merged (union) signature sets
// and their manifests — memo digests included — are identical. Unlike
// verdicts there is no first-write-wins: overlapping classes merge.
func TestSyncMemoConverges(t *testing.T) {
	a, b := openStore(t), openStore(t)
	key := fmt.Sprintf("%x%063x", 5, 0x42)
	sigsA := [][]byte{[]byte("sig-a1"), []byte("sig-shared")}
	sigsB := [][]byte{[]byte("sig-b1"), []byte("sig-b2"), []byte("sig-shared")}
	if err := a.PutMemo(key, []string{fmt.Sprintf("%064x", 1)}, sigsA); err != nil {
		t.Fatal(err)
	}
	if err := b.PutMemo(key, []string{fmt.Sprintf("%064x", 2)}, sigsB); err != nil {
		t.Fatal(err)
	}
	// a second class only A holds, plus a verdict so both tiers move
	keyOnlyA := fmt.Sprintf("%x%063x", 3, 0x43)
	if err := a.PutMemo(keyOnlyA, nil, [][]byte{[]byte("lone")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(seedRecord(2, 1)); err != nil {
		t.Fatal(err)
	}

	srvA := peerServer(t, "a", a, nil)
	srvB := peerServer(t, "b", b, nil)
	syA := &Syncer{Store: a, Peers: []*Client{NewClient("b", srvB.URL, time.Second)}, Logf: t.Logf}
	syB := &Syncer{Store: b, Peers: []*Client{NewClient("a", srvA.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	syA.SyncOnce(ctx)
	syB.SyncOnce(ctx)

	for _, st := range []*store.Store{a, b} {
		rec, ok := st.GetMemo(key)
		if !ok || len(rec.Sigs) != 4 { // union of {a1, shared} and {b1, b2, shared}
			t.Fatalf("merged class: ok=%v sigs=%d, want 4", ok, len(rec.Sigs))
		}
		if len(rec.Fingerprints) != 2 {
			t.Fatalf("fingerprint union: %v", rec.Fingerprints)
		}
		if _, ok := st.GetMemo(keyOnlyA); !ok {
			t.Fatal("one-sided class not replicated")
		}
	}
	am, bm := a.Manifest(), b.Manifest()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("bucket %d diverged after sync: %+v vs %+v", i, am[i], bm[i])
		}
	}
	// quiescent round: converged replicas pull nothing
	if rs := syA.SyncOnce(ctx); rs.Pulls != 0 || rs.Records != 0 {
		t.Fatalf("quiescent round pulled %d/%d", rs.Pulls, rs.Records)
	}
}

// TestSyncMemoPoisonedSegmentDropped pins the trustless import: a memo
// segment mangled in flight contributes nothing (every byte flipped →
// empty clean prefix), the local store stays intact, and the next clean
// round heals.
func TestSyncMemoPoisonedSegmentDropped(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	key := fmt.Sprintf("%x%063x", 9, 0x51)
	if err := src.PutMemo(key, nil, [][]byte{[]byte("deep-refutation")}); err != nil {
		t.Fatal(err)
	}
	var mangle atomic.Bool
	mangle.Store(true)
	srv := peerServer(t, "src", src, &mangle)
	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}

	ctx := context.Background()
	sy.SyncOnce(ctx)
	if dst.MemoLen() != 0 {
		t.Fatalf("poisoned round imported %d memo classes", dst.MemoLen())
	}

	mangle.Store(false)
	sy.SyncOnce(ctx)
	rec, ok := dst.GetMemo(key)
	if !ok || len(rec.Sigs) != 1 {
		t.Fatalf("healing round: ok=%v rec=%+v", ok, rec)
	}
}

// TestSyncMemoOldPeerSkipped pins wire compatibility: a peer whose
// manifest predates the memo tier (no memoDigest fields) syncs verdicts
// normally and is never asked for memo segments.
func TestSyncMemoOldPeerSkipped(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	if err := src.Put(seedRecord(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := src.PutMemo(fmt.Sprintf("%x%063x", 4, 0x61), nil, [][]byte{[]byte("s")}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		buckets := src.Manifest()
		for i := range buckets {
			buckets[i].MemoCount, buckets[i].MemoDigest = 0, "" // pre-memo peer
		}
		json.NewEncoder(w).Encode(ManifestDoc{Node: "old", Buckets: buckets})
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		b, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
		seg, _, err := src.ExportBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	// note: no /cluster/memoseg/ route — an old peer 404s it
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("old", srv.URL, time.Second)}, Logf: t.Logf}
	rs := sy.SyncOnce(context.Background())
	if rs.Pulls != 1 || rs.Records != 1 || dst.Len() != 1 {
		t.Fatalf("verdict sync against old peer: pulls=%d records=%d len=%d", rs.Pulls, rs.Records, dst.Len())
	}
	if dst.MemoLen() != 0 {
		t.Fatal("memo classes appeared from a peer that advertises none")
	}
}

func TestSyncDeadPeerSkipped(t *testing.T) {
	dst := openStore(t)
	if err := dst.Put(seedRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	sy := &Syncer{Store: dst,
		Peers: []*Client{NewClient("gone", "http://127.0.0.1:1", 200*time.Millisecond)},
		Logf:  t.Logf}
	rs := sy.SyncOnce(context.Background())
	if rs.Pulls != 0 || rs.Records != 0 || dst.Len() != 1 {
		t.Fatalf("dead peer round: pulls=%d records=%d len=%d", rs.Pulls, rs.Records, dst.Len())
	}
	if rs.Failures != 1 || rs.Peers != 1 {
		t.Fatalf("dead peer round stats: %+v, want 1 failure of 1 peer", rs)
	}
}

// merklePeerServer exposes a store over the full Merkle wire protocol
// — the test-side mirror of the served daemon's handlers — and counts
// requests per endpoint so tests can pin which protocol ran.
func merklePeerServer(t *testing.T, node string, st *store.Store, hits map[string]*atomic.Int64) *httptest.Server {
	t.Helper()
	count := func(name string) {
		if hits != nil {
			if c, ok := hits[name]; ok {
				c.Add(1)
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		count("manifest")
		json.NewEncoder(w).Encode(ManifestDoc{Node: node, Buckets: st.Manifest(), MerkleDepth: store.MerkleDepth})
	})
	mux.HandleFunc("/cluster/digests/", func(w http.ResponseWriter, r *http.Request) {
		count("digests")
		prefix := strings.TrimPrefix(r.URL.Path, "/cluster/digests/")
		depth, _ := strconv.Atoi(r.URL.Query().Get("depth"))
		v, m := true, true
		switch r.URL.Query().Get("tier") {
		case "v":
			m = false
		case "m":
			v = false
		}
		ds, err := st.Digests(prefix, depth, v, m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(ds)
	})
	mux.HandleFunc("/cluster/leaf/", func(w http.ResponseWriter, r *http.Request) {
		count("leaf")
		fps, err := st.LeafFingerprints(strings.TrimPrefix(r.URL.Path, "/cluster/leaf/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if fps == nil {
			fps = []string{}
		}
		json.NewEncoder(w).Encode(fps)
	})
	mux.HandleFunc("/cluster/fetch", func(w http.ResponseWriter, r *http.Request) {
		count("fetch")
		var fps []string
		if err := json.NewDecoder(r.Body).Decode(&fps); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seg, _, err := st.ExportRecords(fps)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	mux.HandleFunc("/cluster/memoleaf/", func(w http.ResponseWriter, r *http.Request) {
		count("memoleaf")
		seg, _, err := st.ExportMemoPrefix(strings.TrimPrefix(r.URL.Path, "/cluster/memoleaf/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		count("segment")
		b, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/segment/"))
		seg, _, err := st.ExportBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	mux.HandleFunc("/cluster/memoseg/", func(w http.ResponseWriter, r *http.Request) {
		count("memoseg")
		b, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/memoseg/"))
		seg, _, err := st.ExportMemoBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func hitCounters() map[string]*atomic.Int64 {
	m := map[string]*atomic.Int64{}
	for _, k := range []string{"manifest", "digests", "leaf", "fetch", "memoleaf", "segment", "memoseg"} {
		m[k] = &atomic.Int64{}
	}
	return m
}

// TestSyncMerkleDeltaPull pins the tentpole protocol: against a
// Merkle peer, a nearly-converged store pulls exactly its missing
// records through narrowing — no whole-bucket endpoint is ever
// touched, both tiers converge, and a second round is a no-op that
// stops at the manifest.
func TestSyncMerkleDeltaPull(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	for i := 0; i < 50; i++ {
		r := seedRecord(i%16, i)
		if err := src.Put(r); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 { // dst holds a shared prefix of the fleet's state
			if err := dst.Put(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := src.PutMemo(fmt.Sprintf("%x%063x", 6, 0x99), nil, [][]byte{[]byte("sig")}); err != nil {
		t.Fatal(err)
	}
	hits := hitCounters()
	srv := merklePeerServer(t, "src", src, hits)
	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}

	rs := sy.SyncOnce(context.Background())
	if rs.Records != 26 || rs.Failures != 0 { // 25 verdicts + 1 memo class
		t.Fatalf("delta round: %+v, want 26 records", rs)
	}
	if dst.Len() != 50 || dst.MemoLen() != 1 {
		t.Fatalf("after delta round: len=%d memo=%d", dst.Len(), dst.MemoLen())
	}
	if hits["segment"].Load() != 0 || hits["memoseg"].Load() != 0 {
		t.Fatalf("delta sync fell back to whole buckets: %d/%d hits", hits["segment"].Load(), hits["memoseg"].Load())
	}
	if hits["fetch"].Load() == 0 || hits["leaf"].Load() == 0 || hits["memoleaf"].Load() == 0 {
		t.Fatalf("delta endpoints unused: fetch=%d leaf=%d memoleaf=%d", hits["fetch"].Load(), hits["leaf"].Load(), hits["memoleaf"].Load())
	}
	sm, dm := src.Manifest(), dst.Manifest()
	for i := range sm {
		if sm[i] != dm[i] {
			t.Fatalf("bucket %d diverged: %+v vs %+v", i, sm[i], dm[i])
		}
	}

	// quiescent round: equal manifests stop the walk at the manifest
	before := hits["digests"].Load()
	if rs := sy.SyncOnce(context.Background()); rs.Pulls != 0 || rs.BytesTx != 0 {
		t.Fatalf("quiescent round: %+v", rs)
	}
	if hits["digests"].Load() != before {
		t.Fatal("quiescent round still walked digests")
	}
	if rs := sy.SyncOnce(context.Background()); rs.BytesRx == 0 {
		t.Fatal("wire accounting lost the manifest bytes")
	}
}

// TestSyncMixedVersionFallback pins version negotiation: a Merkle
// node syncing from a whole-bucket-only peer (no merkleDepth in its
// manifest) falls back to bucket pulls, converges, and — because the
// bucket digest formula is unchanged — detects convergence the next
// round instead of re-pulling forever.
func TestSyncMixedVersionFallback(t *testing.T) {
	old, neo := openStore(t), openStore(t)
	for i := 0; i < 12; i++ {
		if err := old.Put(seedRecord(i%4, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.PutMemo(fmt.Sprintf("%x%063x", 2, 0x77), nil, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	srv := peerServer(t, "old", old, nil) // pre-Merkle wire surface
	sy := &Syncer{Store: neo, Peers: []*Client{NewClient("old", srv.URL, time.Second)}, Logf: t.Logf}

	rs := sy.SyncOnce(context.Background())
	if rs.Failures != 0 || neo.Len() != 12 || neo.MemoLen() != 1 {
		t.Fatalf("fallback round: %+v len=%d memo=%d", rs, neo.Len(), neo.MemoLen())
	}
	om, nm := old.Manifest(), neo.Manifest()
	for i := range om {
		if om[i] != nm[i] {
			t.Fatalf("bucket %d diverged across versions: %+v vs %+v", i, om[i], nm[i])
		}
	}
	if rs := sy.SyncOnce(context.Background()); rs.Pulls != 0 {
		t.Fatalf("converged mixed-version round still pulled %d — digest formula drifted", rs.Pulls)
	}
}

// TestSyncTiersFailIndependently pins the satellite fix: a peer whose
// verdict endpoints are down still replicates its memo tier in the
// same round (the old loop's `continue` deferred memo a full round).
func TestSyncTiersFailIndependently(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	if err := src.Put(seedRecord(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := src.PutMemo(fmt.Sprintf("%x%063x", 3, 0x88), nil, [][]byte{[]byte("sig")}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ManifestDoc{Node: "src", Buckets: src.Manifest()})
	})
	mux.HandleFunc("/cluster/segment/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "verdict tier down", http.StatusInternalServerError)
	})
	mux.HandleFunc("/cluster/memoseg/", func(w http.ResponseWriter, r *http.Request) {
		b, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/cluster/memoseg/"))
		seg, _, err := src.ExportMemoBucket(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Write(seg)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	sy := &Syncer{Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)}, Logf: t.Logf}
	rs := sy.SyncOnce(context.Background())
	if rs.Failures != 1 {
		t.Fatalf("round stats: %+v, want the verdict failure counted", rs)
	}
	if dst.MemoLen() != 1 {
		t.Fatalf("memo tier deferred by a verdict failure: memo=%d, want 1", dst.MemoLen())
	}
	if dst.Len() != 0 {
		t.Fatalf("verdict appeared through a dead endpoint: len=%d", dst.Len())
	}
}

// TestSyncRunImmediateFirstRound pins the satellite fix: Run syncs
// once at start instead of sleeping a full interval, so a fresh node
// converges right away.
func TestSyncRunImmediateFirstRound(t *testing.T) {
	src, dst := openStore(t), openStore(t)
	for i := 0; i < 3; i++ {
		if err := src.Put(seedRecord(8, i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := merklePeerServer(t, "src", src, nil)
	done := make(chan RoundStats, 1)
	sy := &Syncer{
		Store: dst, Peers: []*Client{NewClient("src", srv.URL, time.Second)},
		Interval: time.Hour, Logf: t.Logf,
		OnRound: func(rs RoundStats) {
			select {
			case done <- rs:
			default:
			}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sy.Run(ctx)
	select {
	case rs := <-done:
		if rs.Records != 3 {
			t.Fatalf("first round: %+v, want 3 records", rs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run slept its interval away instead of syncing immediately")
	}
	if dst.Len() != 3 {
		t.Fatalf("len after immediate round = %d", dst.Len())
	}
}

// TestSyncPeerFailureBackoff pins the backoff schedule: a failing
// peer is retried once, then sits out exponentially growing numbers
// of rounds, and a recovered peer resets to every round.
func TestSyncPeerFailureBackoff(t *testing.T) {
	dst := openStore(t)
	sy := &Syncer{Store: dst,
		Peers: []*Client{NewClient("gone", "http://127.0.0.1:1", 100*time.Millisecond)},
		Logf:  t.Logf}
	ctx := context.Background()
	// fails=1 → no skip; fails=2 → skip 1; fails=3 → skip 3
	wantAttempts := []bool{true, true, false, true, false, false, false, true}
	for i, want := range wantAttempts {
		rs := sy.SyncOnce(ctx)
		if got := rs.Peers == 1; got != want {
			t.Fatalf("round %d: attempted=%v (stats %+v), want %v", i, got, rs, want)
		}
		if rs.Peers == 0 && rs.Deferred != 1 {
			t.Fatalf("round %d: skipped peer not reported deferred: %+v", i, rs)
		}
	}
	// recovery resets the failure count
	sy.notePeer(sy.Peers[0], false)
	if rs := sy.SyncOnce(ctx); rs.Peers != 1 {
		t.Fatalf("recovered peer still deferred: %+v", rs)
	}
}

// TestSyncParallelPeersConverge runs one round against several Merkle
// peers with bounded concurrency and checks the union lands.
func TestSyncParallelPeersConverge(t *testing.T) {
	dst := openStore(t)
	var peers []*Client
	for p := 0; p < 5; p++ {
		src := openStore(t)
		for i := 0; i < 4; i++ {
			if err := src.Put(seedRecord(p*3%16, p*100+i)); err != nil {
				t.Fatal(err)
			}
		}
		srv := merklePeerServer(t, fmt.Sprintf("p%d", p), src, nil)
		peers = append(peers, NewClient(fmt.Sprintf("p%d", p), srv.URL, time.Second))
	}
	sy := &Syncer{Store: dst, Peers: peers, Concurrency: 2, Logf: t.Logf}
	rs := sy.SyncOnce(context.Background())
	if rs.Failures != 0 || rs.Peers != 5 || dst.Len() != 20 {
		t.Fatalf("parallel round: %+v len=%d, want 5 peers 20 records", rs, dst.Len())
	}
}
