// Package cluster is the fingerprint-sharded multi-node serving
// subsystem: a consistent-hash ring that assigns every canonical
// fingerprint an owning node, an HTTP peer client for forwarding
// requests and pulling sealed store segments, and an anti-entropy
// syncer that keeps the fleet's stores converged.
//
// The design leans entirely on two properties the single-node system
// already has. First, the canonical fingerprint (core.Fingerprint) is
// a content address: every node computes the same 64-hex key for
// every member of an isomorphism class, so routing by fingerprint
// needs no coordination — the ring is pure arithmetic over a shared
// node list. Second, the store's re-verify-before-serve invariant
// makes replication trustless: a replicated record is never believed,
// only re-checked against the requesting model at serve time, so a
// corrupt or malicious peer can cost a cache miss but never a wrong
// schedule. Together these let cluster mode be a thin layer: no
// consensus, no leader, no versioned conflict resolution — just
// deterministic routing plus idempotent, validated segment exchange.
package cluster

import (
	"fmt"
	"sort"
)

// Hash64 is the ring's key hash: FNV-1a, the same function the
// service's sharded cache uses to pick a cache shard, lifted to the
// cluster so that "which node owns this fingerprint" and "which shard
// owns this key" are the same arithmetic family.
func Hash64(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

// mix64 is a murmur3-style finalizer layered over Hash64 for ring
// placement. FNV-1a avalanches its low bits well (fine for the
// cache's mask-selected shards) but moves its high bits slowly on
// short keys, and the ring orders points by the full 64-bit value —
// without the finalizer, a fleet's vnode points clump and ownership
// skews badly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// DefaultReplicas is the virtual-node count per physical node. 64
// points per node keeps the ownership spread within a few percent of
// uniform for small fleets while keeping the ring tiny.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over node IDs. It is immutable after
// construction and safe for concurrent use; membership changes build
// a new Ring.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node IDs with the given
// virtual-node count (replicas <= 0 selects DefaultReplicas). Node
// IDs must be non-empty and unique; order does not matter — any
// permutation of the same set yields identical ownership.
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted, points: make([]ringPoint, 0, len(nodes)*replicas)}
	for _, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: mix64(Hash64(fmt.Sprintf("%s#%d", n, v))),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic on (vanishingly rare) collisions
	})
	return r, nil
}

// Owner returns the node ID owning key: the first ring point
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	h := mix64(Hash64(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring's member IDs in sorted order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}
