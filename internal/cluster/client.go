package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"rtm/internal/store"
)

// ForwardHeader marks a request that has already been forwarded once.
// A node receiving it always serves locally — forwarding a forward
// would let a stale or disagreeing ring view bounce a request around
// the fleet forever; one hop is the protocol.
const ForwardHeader = "X-Rtm-Forwarded"

// maxSegmentBytes bounds a segment body pulled from a peer. Matches
// the store's import bound: a larger body is a misbehaving peer, and
// truncating at the cap degrades to a shorter clean prefix.
const maxSegmentBytes = 64 << 20

// ManifestDoc is the wire form of a node's store manifest, served at
// /cluster/manifest.
type ManifestDoc struct {
	Node    string             `json:"node"`
	Buckets []store.BucketInfo `json:"buckets"`
	// MerkleDepth advertises the node's Merkle leaf depth. Zero (or
	// absent) marks a pre-Merkle peer: the syncer then falls back to
	// whole-bucket pulls. Version negotiation rides on the manifest
	// itself so no probe request is needed.
	MerkleDepth int `json:"merkleDepth,omitempty"`
}

// Client talks to one peer node over HTTP. Safe for concurrent use.
type Client struct {
	node string
	base string
	hc   *http.Client

	// Wire accounting for the sync protocol: request and response
	// body bytes moved by the replication methods (Manifest, Digests,
	// leaf/segment/record pulls). Serve-path forwarding is excluded —
	// these counters exist to price anti-entropy, and they are what
	// the sync metrics and rtbench -sync report.
	rx atomic.Int64
	tx atomic.Int64
}

// NewClient builds a client for the peer with the given node ID at
// baseURL (scheme://host:port, no trailing slash required).
func NewClient(node, baseURL string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		node: node,
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// Node returns the peer's node ID.
func (c *Client) Node() string { return c.node }

// Base returns the peer's base URL.
func (c *Client) Base() string { return c.base }

// BytesRx returns the cumulative response-body bytes received over
// the replication methods.
func (c *Client) BytesRx() int64 { return c.rx.Load() }

// BytesTx returns the cumulative request-body bytes sent over the
// replication methods.
func (c *Client) BytesTx() int64 { return c.tx.Load() }

// getBytes runs a bounded GET against the peer and returns the body,
// counting it against the wire stats.
func (c *Client) getBytes(ctx context.Context, url, what string, bound int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s from %s: %w", what, c.node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s from %s: HTTP %d", what, c.node, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, bound+1))
	c.rx.Add(int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s from %s: %w", what, c.node, err)
	}
	if int64(len(data)) > bound {
		return nil, fmt.Errorf("cluster: %s from %s exceeds %d bytes", what, c.node, bound)
	}
	return data, nil
}

// Manifest fetches the peer's store manifest.
func (c *Client) Manifest(ctx context.Context) (*ManifestDoc, error) {
	data, err := c.getBytes(ctx, c.base+"/cluster/manifest", "manifest", 1<<20)
	if err != nil {
		return nil, err
	}
	var doc ManifestDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("cluster: manifest from %s: %w", c.node, err)
	}
	return &doc, nil
}

// Digests fetches the peer's Merkle digests for the children of
// prefix at the given depth. Tier selects the digest tiers included:
// "v" (verdict), "m" (memo), or "" for both — narrowing one tier
// excludes the other's digests so the walk's wire cost stays minimal.
func (c *Client) Digests(ctx context.Context, prefix string, depth int, tier string) ([]store.PrefixDigest, error) {
	url := fmt.Sprintf("%s/cluster/digests/%s?depth=%d", c.base, prefix, depth)
	if tier != "" {
		url += "&tier=" + tier
	}
	data, err := c.getBytes(ctx, url, fmt.Sprintf("digests %q", prefix), 1<<20)
	if err != nil {
		return nil, err
	}
	var out []store.PrefixDigest
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("cluster: digests %q from %s: %w", prefix, c.node, err)
	}
	return out, nil
}

// LeafFingerprints fetches the peer's fingerprint set for one Merkle
// leaf — the set the syncer diffs locally to decide what to fetch.
func (c *Client) LeafFingerprints(ctx context.Context, prefix string) ([]string, error) {
	data, err := c.getBytes(ctx, c.base+"/cluster/leaf/"+prefix, fmt.Sprintf("leaf %q", prefix), maxSegmentBytes)
	if err != nil {
		return nil, err
	}
	var out []string
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("cluster: leaf %q from %s: %w", prefix, c.node, err)
	}
	return out, nil
}

// FetchRecords pulls exactly the requested records from the peer as a
// sealed CRC-framed segment — the delta pull. Like the bucket pulls,
// the store's import path is the validator; this bounds the size.
func (c *Client) FetchRecords(ctx context.Context, fps []string) ([]byte, error) {
	body, err := json.Marshal(fps)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/cluster/fetch", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	c.tx.Add(int64(len(body)))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch from %s: %w", c.node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch from %s: HTTP %d", c.node, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
	c.rx.Add(int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch from %s: %w", c.node, err)
	}
	if len(data) > maxSegmentBytes {
		return nil, fmt.Errorf("cluster: fetch from %s exceeds %d bytes", c.node, maxSegmentBytes)
	}
	return data, nil
}

// PullSegment fetches one sealed segment (a manifest bucket) from the
// peer. The body is not validated here — the store's import path is
// the validator; this just bounds the size.
func (c *Client) PullSegment(ctx context.Context, bucket int) ([]byte, error) {
	url := fmt.Sprintf("%s/cluster/segment/%d", c.base, bucket)
	return c.getBytes(ctx, url, fmt.Sprintf("segment %d", bucket), maxSegmentBytes)
}

// PullMemoSegment fetches one sealed memo segment (a manifest
// bucket's refutation-cache slice) from the peer.
func (c *Client) PullMemoSegment(ctx context.Context, bucket int) ([]byte, error) {
	url := fmt.Sprintf("%s/cluster/memoseg/%d", c.base, bucket)
	return c.getBytes(ctx, url, fmt.Sprintf("memo segment %d", bucket), maxSegmentBytes)
}

// PullMemoLeaf fetches the sealed memo segment for one Merkle leaf —
// memo deltas pull whole divergent leaves because memo records
// converge by content merge, so there is no per-record set
// difference to compute.
func (c *Client) PullMemoLeaf(ctx context.Context, prefix string) ([]byte, error) {
	url := c.base + "/cluster/memoleaf/" + prefix
	return c.getBytes(ctx, url, fmt.Sprintf("memo leaf %q", prefix), maxSegmentBytes)
}

// ForwardSchedule proxies a POST /schedule body to the peer with the
// forward marker set. The caller owns the response body.
func (c *Client) ForwardSchedule(ctx context.Context, body []byte, rawQuery string) (*http.Response, error) {
	url := c.base + "/schedule"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(ForwardHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", c.node, err)
	}
	return resp, nil
}

// ForwardJob proxies a GET /job/<id> to the peer with the forward
// marker set. The caller owns the response body.
func (c *Client) ForwardJob(ctx context.Context, id, rawQuery string) (*http.Response, error) {
	url := c.base + "/job/" + id
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(ForwardHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", c.node, err)
	}
	return resp, nil
}
