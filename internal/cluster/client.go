package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rtm/internal/store"
)

// ForwardHeader marks a request that has already been forwarded once.
// A node receiving it always serves locally — forwarding a forward
// would let a stale or disagreeing ring view bounce a request around
// the fleet forever; one hop is the protocol.
const ForwardHeader = "X-Rtm-Forwarded"

// maxSegmentBytes bounds a segment body pulled from a peer. Matches
// the store's import bound: a larger body is a misbehaving peer, and
// truncating at the cap degrades to a shorter clean prefix.
const maxSegmentBytes = 64 << 20

// ManifestDoc is the wire form of a node's store manifest, served at
// /cluster/manifest.
type ManifestDoc struct {
	Node    string             `json:"node"`
	Buckets []store.BucketInfo `json:"buckets"`
}

// Client talks to one peer node over HTTP. Safe for concurrent use.
type Client struct {
	node string
	base string
	hc   *http.Client
}

// NewClient builds a client for the peer with the given node ID at
// baseURL (scheme://host:port, no trailing slash required).
func NewClient(node, baseURL string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		node: node,
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// Node returns the peer's node ID.
func (c *Client) Node() string { return c.node }

// Base returns the peer's base URL.
func (c *Client) Base() string { return c.base }

// Manifest fetches the peer's store manifest.
func (c *Client) Manifest(ctx context.Context) (*ManifestDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/cluster/manifest", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest from %s: %w", c.node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: manifest from %s: HTTP %d", c.node, resp.StatusCode)
	}
	var doc ManifestDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("cluster: manifest from %s: %w", c.node, err)
	}
	return &doc, nil
}

// PullSegment fetches one sealed segment (a manifest bucket) from the
// peer. The body is not validated here — the store's import path is
// the validator; this just bounds the size.
func (c *Client) PullSegment(ctx context.Context, bucket int) ([]byte, error) {
	url := fmt.Sprintf("%s/cluster/segment/%d", c.base, bucket)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: segment %d from %s: %w", bucket, c.node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: segment %d from %s: HTTP %d", bucket, c.node, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: segment %d from %s: %w", bucket, c.node, err)
	}
	if len(data) > maxSegmentBytes {
		return nil, fmt.Errorf("cluster: segment %d from %s exceeds %d bytes", bucket, c.node, maxSegmentBytes)
	}
	return data, nil
}

// PullMemoSegment fetches one sealed memo segment (a manifest
// bucket's refutation-cache slice) from the peer. Like PullSegment,
// the store's import path is the validator; this just bounds the size.
func (c *Client) PullMemoSegment(ctx context.Context, bucket int) ([]byte, error) {
	url := fmt.Sprintf("%s/cluster/memoseg/%d", c.base, bucket)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: memo segment %d from %s: %w", bucket, c.node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: memo segment %d from %s: HTTP %d", bucket, c.node, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: memo segment %d from %s: %w", bucket, c.node, err)
	}
	if len(data) > maxSegmentBytes {
		return nil, fmt.Errorf("cluster: memo segment %d from %s exceeds %d bytes", bucket, c.node, maxSegmentBytes)
	}
	return data, nil
}

// ForwardSchedule proxies a POST /schedule body to the peer with the
// forward marker set. The caller owns the response body.
func (c *Client) ForwardSchedule(ctx context.Context, body []byte, rawQuery string) (*http.Response, error) {
	url := c.base + "/schedule"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(ForwardHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", c.node, err)
	}
	return resp, nil
}

// ForwardJob proxies a GET /job/<id> to the peer with the forward
// marker set. The caller owns the response body.
func (c *Client) ForwardJob(ctx context.Context, id, rawQuery string) (*http.Response, error) {
	url := c.base + "/job/" + id
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(ForwardHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", c.node, err)
	}
	return resp, nil
}
