// Package sched implements the execution-trace semantics of the
// graph-based model: static schedules (finite strings over V ∪ {φ}),
// the execution traces their round-robin repetition generates, the
// latency of a schedule with respect to a timing constraint, and
// feasibility checking of a schedule against a whole model.
package sched

import (
	"fmt"
	"strings"
)

// Idle is the φ symbol: the processor idles in that slot.
const Idle = ""

// Schedule is a static schedule: a finite string of symbols in
// V ∪ {φ}. A round-robin run-time scheduler repeats it forever, so
// slot t of the generated execution trace is Slots[t mod len(Slots)].
type Schedule struct {
	Slots []string
}

// New returns a schedule over the given slots (copied).
func New(slots ...string) *Schedule {
	s := make([]string, len(slots))
	copy(s, slots)
	return &Schedule{Slots: s}
}

// NewIdle returns an all-idle schedule of length n.
func NewIdle(n int) *Schedule {
	return &Schedule{Slots: make([]string, n)}
}

// Len returns the schedule length (the cycle of the round-robin
// scheduler).
func (s *Schedule) Len() int { return len(s.Slots) }

// At returns the element executed in trace slot [t, t+1], i.e. the
// infinite periodic extension of the schedule.
func (s *Schedule) At(t int) string {
	if len(s.Slots) == 0 {
		return Idle
	}
	return s.Slots[t%len(s.Slots)]
}

// Unroll returns the first k slots of the generated execution trace.
func (s *Schedule) Unroll(k int) []string {
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = s.At(i)
	}
	return out
}

// Remap returns a copy of the schedule with every non-idle slot
// renamed through f. Idle slots stay idle. It translates schedules
// between models that are identical up to element renaming — the
// canonical schedule cache stores one schedule per isomorphism class
// and remaps it into each requester's element names.
func (s *Schedule) Remap(f func(string) string) *Schedule {
	out := &Schedule{Slots: make([]string, len(s.Slots))}
	for i, x := range s.Slots {
		if x == Idle {
			continue
		}
		out.Slots[i] = f(x)
	}
	return out
}

// ToIndices converts the schedule to index form through index
// (element name → index): idle slots become -1, every other slot
// becomes its element's index. It errors on slots naming elements
// missing from the index. Index form is what the canonical schedule
// cache and the durable schedule store persist — one index-form
// schedule serves every model in an isomorphism class, each through
// its own canonical element order.
func (s *Schedule) ToIndices(index map[string]int) ([]int, error) {
	out := make([]int, len(s.Slots))
	for i, e := range s.Slots {
		if e == Idle {
			out[i] = -1
			continue
		}
		idx, ok := index[e]
		if !ok {
			return nil, fmt.Errorf("sched: slot %d executes %q, not in the element index", i, e)
		}
		out[i] = idx
	}
	return out, nil
}

// FromIndices is the inverse of ToIndices: it materializes an
// index-form schedule over the element order (slot value v ∈ [0,
// len(order)) executes order[v]; -1 idles). It errors on any other
// value — the bounds check that keeps untrusted index-form schedules
// (e.g. a record read back from disk) from panicking the caller.
func FromIndices(order []string, idx []int) (*Schedule, error) {
	out := &Schedule{Slots: make([]string, len(idx))}
	for i, v := range idx {
		switch {
		case v == -1:
			// idle
		case v >= 0 && v < len(order):
			out.Slots[i] = order[v]
		default:
			return nil, fmt.Errorf("sched: slot %d has index %d, want -1 or [0,%d)", i, v, len(order))
		}
	}
	return out, nil
}

// BusySlots returns the number of non-idle slots per cycle.
func (s *Schedule) BusySlots() int {
	n := 0
	for _, x := range s.Slots {
		if x != Idle {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of non-idle slots.
func (s *Schedule) Utilization() float64 {
	if len(s.Slots) == 0 {
		return 0
	}
	return float64(s.BusySlots()) / float64(len(s.Slots))
}

// Count returns how many slots per cycle execute the given element.
func (s *Schedule) Count(elem string) int {
	n := 0
	for _, x := range s.Slots {
		if x == elem {
			n++
		}
	}
	return n
}

// Clone returns a copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	return New(s.Slots...)
}

// Equal reports slot-wise equality.
func (s *Schedule) Equal(o *Schedule) bool {
	if len(s.Slots) != len(o.Slots) {
		return false
	}
	for i := range s.Slots {
		if s.Slots[i] != o.Slots[i] {
			return false
		}
	}
	return true
}

// CanonicalRotation returns the lexicographically least rotation of
// the schedule. Two schedules generating the same infinite trace up
// to phase share a canonical rotation, which the exact searcher uses
// to prune equivalent candidates.
func (s *Schedule) CanonicalRotation() *Schedule {
	n := len(s.Slots)
	if n == 0 {
		return s.Clone()
	}
	best := 0
	for cand := 1; cand < n; cand++ {
		for k := 0; k < n; k++ {
			a := s.Slots[(best+k)%n]
			b := s.Slots[(cand+k)%n]
			if a != b {
				if b < a {
					best = cand
				}
				break
			}
		}
	}
	out := make([]string, n)
	for k := 0; k < n; k++ {
		out[k] = s.Slots[(best+k)%n]
	}
	return &Schedule{Slots: out}
}

// String renders the schedule with φ for idle slots.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Slots))
	for i, x := range s.Slots {
		if x == Idle {
			parts[i] = "φ"
		} else {
			parts[i] = x
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ParseString parses the String format back into a schedule; tokens
// are whitespace-separated, with φ, "-" or "_" meaning idle.
func ParseString(text string) (*Schedule, error) {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "[")
	text = strings.TrimSuffix(text, "]")
	if strings.TrimSpace(text) == "" {
		return New(), nil
	}
	fields := strings.Fields(text)
	slots := make([]string, len(fields))
	for i, f := range fields {
		switch f {
		case "φ", "-", "_":
			slots[i] = Idle
		default:
			slots[i] = f
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("sched: empty schedule text %q", text)
	}
	return &Schedule{Slots: slots}, nil
}
