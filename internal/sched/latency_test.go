package sched

import (
	"testing"

	"rtm/internal/core"
)

// comm1 builds a communication graph a->b->c with given weights.
func comm1(wa, wb, wc int) *core.CommGraph {
	c := core.NewCommGraph()
	c.AddElement("a", wa)
	c.AddElement("b", wb)
	c.AddElement("c", wc)
	c.AddPath("a", "b")
	c.AddPath("b", "c")
	return c
}

func TestParseExecutionsGrouping(t *testing.T) {
	trace := []string{"a", "a", Idle, "a", "b"}
	ex := parseExecutions(trace, map[string]int{"a": 2, "b": 1})
	// a-slots at 0,1,3 with weight 2 -> one execution [0,1], slot 3 is partial
	if len(ex["a"]) != 1 {
		t.Fatalf("a executions = %v", ex["a"])
	}
	if ex["a"][0].start != 0 || ex["a"][0].finish != 2 {
		t.Fatalf("a exec = %+v", ex["a"][0])
	}
	if len(ex["b"]) != 1 || ex["b"][0].start != 4 || ex["b"][0].finish != 5 {
		t.Fatalf("b exec = %v", ex["b"])
	}
}

func TestParseExecutionsPreempted(t *testing.T) {
	// weight-2 execution split across non-adjacent slots
	trace := []string{"a", "b", "a"}
	ex := parseExecutions(trace, map[string]int{"a": 2, "b": 1})
	if len(ex["a"]) != 1 || ex["a"][0].start != 0 || ex["a"][0].finish != 3 {
		t.Fatalf("a exec = %v", ex["a"])
	}
}

func TestLatencySingleOp(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a")
	// schedule [a φ φ]: worst invocation right after slot 0 starts;
	// from i=1 the next a finishes at 4 -> latency 3
	s := New("a", Idle, Idle)
	if got := Latency(comm, s, task); got != 3 {
		t.Fatalf("Latency = %d, want 3", got)
	}
	// denser schedule improves latency
	if got := Latency(comm, New("a", Idle), task); got != 2 {
		t.Fatalf("Latency = %d, want 2", got)
	}
	if got := Latency(comm, New("a"), task); got != 1 {
		t.Fatalf("Latency = %d, want 1", got)
	}
}

func TestLatencyMissingElement(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a", "b")
	s := New("a", Idle)
	if got := Latency(comm, s, task); got != Infinite {
		t.Fatalf("Latency = %d, want Infinite", got)
	}
}

func TestLatencyChainPrecedence(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a", "b")
	// [a b]: from i=0 finish 2; from i=1: next a at 2, b at 3 -> span 3
	s := New("a", "b")
	if got := Latency(comm, s, task); got != 3 {
		t.Fatalf("Latency = %d, want 3", got)
	}
	// [b a]: from i=0: a at 1, then b at 2 -> finish 3; from i=1: a@1,b@2 -> 2
	s2 := New("b", "a")
	if got := Latency(comm, s2, task); got != 3 {
		t.Fatalf("Latency = %d, want 3", got)
	}
}

func TestLatencyRespectsOrderNotJustPresence(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a", "b")
	// b before a in each cycle: an execution must span cycles
	sBad := New("b", "a", Idle, Idle)
	sGood := New("a", "b", Idle, Idle)
	lb := Latency(comm, sBad, task)
	lg := Latency(comm, sGood, task)
	if lg >= lb {
		t.Fatalf("ordered schedule should win: good=%d bad=%d", lg, lb)
	}
}

func TestLatencyWeightedExecution(t *testing.T) {
	comm := comm1(2, 1, 1)
	task := core.ChainTask("a")
	// [a a φ]: execution [0,2). worst start i=1: next execution starts
	// at 3, finishes 5 -> span 4
	s := New("a", "a", Idle)
	if got := Latency(comm, s, task); got != 4 {
		t.Fatalf("Latency = %d, want 4", got)
	}
}

func TestLatencyAlignmentPeriod(t *testing.T) {
	// 3 slots of a per cycle with weight 2: executions straddle the
	// cycle boundary; parsing realigns only every 2 cycles.
	comm := core.NewCommGraph()
	comm.AddElement("a", 2)
	task := core.ChainTask("a")
	s := New("a", "a", "a")
	a := NewAnalyzer(comm, s, 1, 2)
	if a.align != 2 {
		t.Fatalf("align = %d, want 2", a.align)
	}
	// executions: [0,2), [2,4), [4,6), ... every 2 slots; worst start
	// just after an execution begins: i=1 -> next exec [2,4) -> span 3.
	if got := a.Latency(task); got != 3 {
		t.Fatalf("Latency = %d, want 3", got)
	}
}

func TestEarliestCompletionFromOffsets(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a", "b")
	s := New("a", "b", Idle, Idle)
	a := AnalyzerForTest(comm, s)
	if f := a.EarliestCompletion(task, 0); f != 2 {
		t.Fatalf("ect(0) = %d, want 2", f)
	}
	// from 1: a at 4, b at 5 -> 6
	if f := a.EarliestCompletion(task, 1); f != 6 {
		t.Fatalf("ect(1) = %d, want 6", f)
	}
}

// AnalyzerForTest builds a generously-sized analyzer.
func AnalyzerForTest(comm *core.CommGraph, s *Schedule) *Analyzer {
	return NewAnalyzer(comm, s, 8, 16)
}

func TestZeroWeightElement(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("z", 0)
	comm.AddElement("a", 1)
	comm.AddPath("z", "a")
	task := core.ChainTask("z", "a")
	s := New("a", Idle)
	// z completes instantly; latency driven by a alone
	if got := Latency(comm, s, task); got != 2 {
		t.Fatalf("Latency = %d, want 2", got)
	}
}

func TestRepeatedElementTask(t *testing.T) {
	// task f -> f needs two distinct executions of f
	comm := core.NewCommGraph()
	comm.AddElement("f", 1)
	comm.AddPath("f", "f")
	task := core.NewTaskGraph()
	task.AddStep("f1", "f")
	task.AddStep("f2", "f")
	task.AddPrec("f1", "f2")
	s := New("f", Idle)
	// from 0: f@0, f@2 -> finish 3; from 1: f@2, f@4 -> 5-1=4
	if got := Latency(comm, s, task); got != 4 {
		t.Fatalf("Latency = %d, want 4", got)
	}
}

func TestLatencyDiamondTask(t *testing.T) {
	comm := core.NewCommGraph()
	for _, e := range []string{"s", "l", "r", "t"} {
		comm.AddElement(e, 1)
	}
	comm.AddPath("s", "l")
	comm.AddPath("s", "r")
	comm.AddPath("l", "t")
	comm.AddPath("r", "t")
	task := core.NewTaskGraph()
	for _, e := range []string{"s", "l", "r", "t"} {
		task.AddStep(e, e)
	}
	task.AddPrec("s", "l")
	task.AddPrec("s", "r")
	task.AddPrec("l", "t")
	task.AddPrec("r", "t")
	s := New("s", "l", "r", "t")
	// perfect order: from 0 completes at 4; worst start 1 wraps a cycle
	if got := Latency(comm, s, task); got != 7 {
		t.Fatalf("Latency = %d, want 7", got)
	}
	// t before r: t must wait for next cycle
	sBad := New("s", "l", "t", "r")
	if got := Latency(comm, sBad, task); got <= 7 {
		t.Fatalf("bad order latency = %d, want > 7", got)
	}
}

func TestLatencyMonotoneInDensity(t *testing.T) {
	comm := comm1(1, 1, 1)
	task := core.ChainTask("a", "b", "c")
	dense := New("a", "b", "c")
	sparse := New("a", Idle, "b", Idle, "c", Idle)
	if Latency(comm, dense, task) >= Latency(comm, sparse, task) {
		t.Fatal("denser schedule should have smaller latency")
	}
}
