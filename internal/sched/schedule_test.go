package sched

import (
	"strings"
	"testing"
)

func TestScheduleBasics(t *testing.T) {
	s := New("a", Idle, "b")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.At(0) != "a" || s.At(1) != Idle || s.At(5) != "b" {
		t.Fatal("At wrong")
	}
	if s.BusySlots() != 2 {
		t.Fatalf("BusySlots = %d", s.BusySlots())
	}
	if u := s.Utilization(); u < 0.66 || u > 0.67 {
		t.Fatalf("Utilization = %v", u)
	}
	if s.Count("a") != 1 || s.Count("zzz") != 0 {
		t.Fatal("Count wrong")
	}
}

func TestEmptySchedule(t *testing.T) {
	s := New()
	if s.At(7) != Idle {
		t.Fatal("empty schedule should idle")
	}
	if s.Utilization() != 0 {
		t.Fatal("empty utilization")
	}
}

func TestUnroll(t *testing.T) {
	s := New("a", "b")
	u := s.Unroll(5)
	want := []string{"a", "b", "a", "b", "a"}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Unroll = %v", u)
		}
	}
}

func TestCloneEqual(t *testing.T) {
	s := New("a", "b")
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Slots[0] = "x"
	if s.Equal(c) || s.Slots[0] != "a" {
		t.Fatal("clone shares storage")
	}
	if s.Equal(New("a")) {
		t.Fatal("length mismatch equal")
	}
}

func TestCanonicalRotation(t *testing.T) {
	s := New("b", "a", "c")
	got := s.CanonicalRotation()
	want := New("a", "c", "b")
	if !got.Equal(want) {
		t.Fatalf("CanonicalRotation = %v, want %v", got, want)
	}
	// all rotations share a canonical form
	r1 := New("c", "b", "a").CanonicalRotation()
	r2 := New("a", "c", "b").CanonicalRotation()
	if !r1.Equal(r2) {
		t.Fatalf("rotations disagree: %v vs %v", r1, r2)
	}
	// idle slots (empty string) sort before names
	s2 := New("a", Idle)
	if s2.CanonicalRotation().Slots[0] != Idle {
		t.Fatal("idle should rotate to front")
	}
	if New().CanonicalRotation().Len() != 0 {
		t.Fatal("empty canonical")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s := New("a", Idle, "b")
	text := s.String()
	if !strings.Contains(text, "φ") {
		t.Fatalf("String = %q", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip: %v != %v", back, s)
	}
	alt, err := ParseString("a - b _ c")
	if err != nil {
		t.Fatal(err)
	}
	if !alt.Equal(New("a", Idle, "b", Idle, "c")) {
		t.Fatalf("alt parse = %v", alt)
	}
	empty, err := ParseString("[]")
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
}

func TestIndexFormRoundTrip(t *testing.T) {
	order := []string{"a", "b", "c"}
	index := map[string]int{"a": 0, "b": 1, "c": 2}
	s := New("b", Idle, "a", "c", Idle)
	idx, err := s.ToIndices(index)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, -1, 0, 2, -1}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ToIndices = %v, want %v", idx, want)
		}
	}
	back, err := FromIndices(order, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip %v != %v", back.Slots, s.Slots)
	}
}

func TestIndexFormRejectsUnknownAndOutOfRange(t *testing.T) {
	if _, err := New("ghost").ToIndices(map[string]int{"a": 0}); err == nil {
		t.Fatal("ToIndices accepted a slot missing from the index")
	}
	order := []string{"a", "b"}
	for _, bad := range [][]int{{2}, {-2}, {1, 99}} {
		if _, err := FromIndices(order, bad); err == nil {
			t.Fatalf("FromIndices accepted out-of-range %v", bad)
		}
	}
	s, err := FromIndices(order, []int{-1, 1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Slots[0] != Idle || s.Slots[1] != "b" || s.Slots[2] != "a" {
		t.Fatalf("FromIndices = %v", s.Slots)
	}
}
