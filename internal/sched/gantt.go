package sched

import (
	"fmt"
	"sort"
	"strings"

	"rtm/internal/core"
)

// GanttOptions configure timeline rendering.
type GanttOptions struct {
	// Cycles is how many schedule cycles to draw (default 1).
	Cycles int
	// Ruler draws a time ruler every this many slots (default 5;
	// 0 disables).
	Ruler int
}

// Gantt renders the schedule as an ASCII timeline, one row per
// functional element (in communication-graph order) plus an idle row:
//
//	t      0    5    10
//	fX     ##...
//	fS     ..####...
//	φ      .....##
//
// '#' marks a slot executing the row's element.
func Gantt(comm *core.CommGraph, s *Schedule, opt GanttOptions) string {
	cycles := opt.Cycles
	if cycles < 1 {
		cycles = 1
	}
	ruler := opt.Ruler
	if ruler == 0 {
		ruler = 5
	}
	n := s.Len() * cycles
	if n == 0 {
		return "(empty schedule)\n"
	}
	trace := s.Unroll(n)

	rows := comm.Elements()
	sort.Strings(rows)
	width := len("t")
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	if len("φ") > width {
		width = 2
	}

	var b strings.Builder
	if ruler > 0 {
		fmt.Fprintf(&b, "%-*s ", width, "t")
		col := 0
		for col < n {
			label := fmt.Sprint(col)
			fmt.Fprintf(&b, "%-*s", ruler, label)
			col += ruler
		}
		b.WriteByte('\n')
	}
	line := func(name string, match func(string) bool) {
		fmt.Fprintf(&b, "%-*s ", width, name)
		for _, x := range trace {
			if match(x) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	for _, r := range rows {
		r := r
		line(r, func(x string) bool { return x == r })
	}
	line("φ", func(x string) bool { return x == Idle })
	return b.String()
}

// Stats summarizes a schedule's per-element occupancy.
type Stats struct {
	Cycle     int
	Busy      int
	Idle      int
	PerElem   map[string]int
	Elements  []string // sorted
	MaxStreak int      // longest run of one element (non-preemption pressure)
}

// ComputeStats gathers occupancy statistics for one cycle.
func ComputeStats(s *Schedule) *Stats {
	st := &Stats{Cycle: s.Len(), PerElem: map[string]int{}}
	streak, prev := 0, ""
	for _, x := range s.Slots {
		if x == Idle {
			st.Idle++
		} else {
			st.Busy++
			st.PerElem[x]++
		}
		if x == prev && x != Idle {
			streak++
		} else {
			streak = 1
		}
		if x != Idle && streak > st.MaxStreak {
			st.MaxStreak = streak
		}
		prev = x
	}
	for e := range st.PerElem {
		st.Elements = append(st.Elements, e)
	}
	sort.Strings(st.Elements)
	return st
}

// String renders the stats.
func (st *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d busy=%d idle=%d maxstreak=%d\n", st.Cycle, st.Busy, st.Idle, st.MaxStreak)
	for _, e := range st.Elements {
		fmt.Fprintf(&b, "  %-12s %d slots (%.1f%%)\n", e, st.PerElem[e],
			100*float64(st.PerElem[e])/float64(st.Cycle))
	}
	return b.String()
}
