package sched

import (
	"strings"
	"testing"

	"rtm/internal/core"
)

// tinyModel: elements a(1) -> b(1); one periodic constraint a->b with
// period 4 deadline 4, one asynchronous constraint b with deadline 3.
func tinyModel() *core.Model {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	m.Comm.AddPath("a", "b")
	m.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("a", "b"),
		Period: 4, Deadline: 4, Kind: core.Periodic,
	})
	m.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("b"),
		Period: 10, Deadline: 3, Kind: core.Asynchronous,
	})
	return m
}

func TestCheckFeasibleSchedule(t *testing.T) {
	m := tinyModel()
	// cycle of 4 matching the period: a b φ b — async b has latency
	// ≤ 3 (b at slots 1 and 3), periodic a->b completes by 2.
	s := New("a", "b", Idle, "b")
	rep := Check(m, s)
	if !rep.Feasible {
		t.Fatalf("expected feasible:\n%s", rep)
	}
	for _, c := range rep.Constraints {
		if !c.OK {
			t.Fatalf("constraint %s failed: %+v", c.Name, c)
		}
	}
}

func TestCheckInfeasibleAsync(t *testing.T) {
	m := tinyModel()
	// only one b per cycle of 4: async latency 4+ > 3
	s := New("a", "b", Idle, Idle)
	rep := Check(m, s)
	if rep.Feasible {
		t.Fatalf("expected infeasible:\n%s", rep)
	}
	var async ConstraintReport
	for _, c := range rep.Constraints {
		if c.Name == "A" {
			async = c
		}
	}
	if async.OK {
		t.Fatal("async constraint should fail")
	}
	if async.Latency <= async.Deadline {
		t.Fatalf("latency %d should exceed deadline %d", async.Latency, async.Deadline)
	}
}

func TestCheckMissingElementInfinite(t *testing.T) {
	m := tinyModel()
	s := New("b", "b", "b", "b") // a never scheduled
	rep := Check(m, s)
	if rep.Feasible {
		t.Fatal("expected infeasible")
	}
	for _, c := range rep.Constraints {
		if c.Name == "P" && c.Latency != Infinite {
			t.Fatalf("P latency = %d, want Infinite", c.Latency)
		}
	}
	if !strings.Contains(rep.String(), "∞") {
		t.Fatalf("report should render Infinite as ∞:\n%s", rep)
	}
}

func TestPeriodicResponseMisalignedCycle(t *testing.T) {
	// schedule cycle 3 against period 4: invocations land at varying
	// phases; check the worst is found.
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("a"),
		Period: 4, Deadline: 3, Kind: core.Periodic,
	})
	s := New("a", Idle, Idle) // a at 0,3,6,9,...
	a := AnalyzerFor(m, s)
	got := a.PeriodicWorstResponse(m.Constraints[0])
	// invocations at 0,4,8,12,... i.e. residues 0,1,2 mod 3.
	// from residue 1: next a at +2, finish +3 -> response 3 (worst)
	if got != 3 {
		t.Fatalf("worst response = %d, want 3", got)
	}
	if !Feasible(m, s) {
		t.Fatal("should be feasible at deadline 3")
	}
	m.Constraints[0].Deadline = 2
	if Feasible(m, s) {
		t.Fatal("should be infeasible at deadline 2")
	}
}

func TestCheckEmptySchedule(t *testing.T) {
	m := tinyModel()
	rep := Check(m, New())
	if rep.Feasible {
		t.Fatal("empty schedule cannot be feasible")
	}
}

func TestExampleSystemHandSchedule(t *testing.T) {
	// The paper's example at its default parameters with a hand-built
	// cycle of 20 (= p_x): fX fS fS fS fS fK fK fZ fS' ... we simply
	// interleave enough capacity: per 20 slots we need
	// X: fX(2)+fS(4)+fK(2)=8 every 20; Y: 9 every 40; Z latency 30.
	p := core.DefaultExampleParams()
	m := core.ExampleSystem(p)
	// Build a 40-slot cycle: two X executions, one Y, and fZ+fS pairs
	// appearing often enough for d_z=30.
	slots := make([]string, 40)
	place := func(at int, elems ...string) {
		for i, e := range elems {
			slots[at+i] = e
		}
	}
	// X instance 1 (window [0,20)): fX fX fS fS fS fS fK fK
	place(0, "fX", "fX", "fS", "fS", "fS", "fS", "fK", "fK")
	// Z service 1: fZ then fS at [8..13)
	place(8, "fZ", "fS", "fS", "fS", "fS")
	// Y (window [0,40)): fY fY fY + shares the X2 fS/fK? Keep it
	// explicit: fY at 13..16, then its fS/fK inside X2's window.
	place(13, "fY", "fY", "fY")
	// X instance 2 (window [20,40)): also completes Y's fS fK
	place(20, "fX", "fX", "fS", "fS", "fS", "fS", "fK", "fK")
	// Z service 2: fZ fS at [28..33)
	place(28, "fZ", "fS", "fS", "fS", "fS")
	s := &Schedule{Slots: slots}
	rep := Check(m, s)
	if !rep.Feasible {
		t.Fatalf("hand schedule infeasible:\n%s", rep)
	}
}

func TestReportString(t *testing.T) {
	m := tinyModel()
	rep := Check(m, New("a", "b", Idle, "b"))
	out := rep.String()
	for _, want := range []string{"feasible=true", "P", "A", "periodic", "asynchronous"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
