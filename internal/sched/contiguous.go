package sched

import (
	"fmt"

	"rtm/internal/core"
)

// ContiguousViolations returns a description of every parsed
// execution in one alignment window of the schedule that is *not* a
// block of consecutive slots. When functional elements cannot be
// software-pipelined (decomposed into chains of unit sub-functions),
// an execution must occupy consecutive processor slots; this check
// enforces the restriction used by the paper's Theorem 2(ii).
func ContiguousViolations(comm *core.CommGraph, s *Schedule) []string {
	n := s.Len()
	if n == 0 {
		return nil
	}
	align := 1
	for _, elem := range comm.Elements() {
		w := comm.WeightOf(elem)
		k := s.Count(elem)
		if w <= 0 || k == 0 {
			continue
		}
		align = lcm(align, w/gcd(k, w))
	}
	trace := s.Unroll(n * (align + 2))
	execs := parseExecutions(trace, comm.Weight)
	var out []string
	for _, elem := range comm.Elements() {
		w := comm.WeightOf(elem)
		for _, ex := range execs[elem] {
			if ex.finish-ex.start != w {
				out = append(out, fmt.Sprintf("%s execution [%d,%d) is preempted (weight %d)",
					elem, ex.start, ex.finish, w))
			}
		}
	}
	return out
}

// Contiguous reports whether every execution in the schedule is a
// block of consecutive slots.
func Contiguous(comm *core.CommGraph, s *Schedule) bool {
	return len(ContiguousViolations(comm, s)) == 0
}
