package sched

import (
	"sort"

	"rtm/internal/core"
)

// Checker answers feasibility, latency and contiguity queries for
// many candidate schedules of one fixed model without re-deriving the
// per-model state (topological orders, element indices, horizon
// parameters) or re-parsing executions from a materialized trace per
// candidate. It is the throughput path used by the exact searcher and
// the local-search heuristic, which evaluate thousands to millions of
// candidate schedules per model; the Analyzer remains the one-shot
// reporting path.
//
// A Checker computes the same booleans and worst-case latencies as
// AnalyzerFor/Check on every schedule: executions are derived
// arithmetically from the per-cycle slot positions (occurrence j of
// element e sits at slot (j/k)·n + p[j mod k], so execution i spans
// occurrences [i·w, (i+1)·w)), bounded by the same horizon the
// Analyzer unrolls to.
//
// A Checker is not safe for concurrent use; create one per goroutine.
type Checker struct {
	cons     []ckConstraint
	maxNodes int
	maxWork  int
	elems    []string
	weight   []int          // computation time per element index
	symID    map[string]int // element name -> index

	// schedule-bound state, set by bind
	n     int
	align int
	occ   [][]int // per element: slot positions within one cycle, ascending
	nexec []int   // per element: executions wholly inside the horizon

	// query scratch
	finish []int // per task node of the current constraint
	used   []int // per element: next unconsumed execution index
	usedAt []int // stamp guarding used
	stamp  int
	worsts []int
}

// ckConstraint is one constraint with its task graph flattened to
// index form: nodes in topological order, predecessors as indices.
type ckConstraint struct {
	src   *core.Constraint
	nodes []ckNode
}

type ckNode struct {
	elem  int // element index, -1 when the element is unknown to the graph
	w     int
	preds []int // indices into the nodes slice (always earlier)
}

// NewChecker precomputes the model-dependent state. The model must
// not be mutated while the checker is in use.
func NewChecker(m *core.Model) (*Checker, error) {
	ck := &Checker{maxNodes: 1, maxWork: 1, symID: make(map[string]int)}
	ck.elems = m.Comm.Elements()
	ck.weight = make([]int, len(ck.elems))
	for i, e := range ck.elems {
		ck.symID[e] = i
		ck.weight[i] = m.Comm.WeightOf(e)
	}
	maxNodes := 0
	for _, c := range m.Constraints {
		order, err := c.Task.G.TopoSort()
		if err != nil {
			return nil, err
		}
		idx := make(map[string]int, len(order))
		nodes := make([]ckNode, len(order))
		for i, node := range order {
			idx[node] = i
			elem := c.Task.ElementOf(node)
			eid, ok := ck.symID[elem]
			if !ok {
				eid = -1
			}
			nd := ckNode{elem: eid, w: m.Comm.WeightOf(elem)}
			for _, p := range c.Task.G.Pred(node) {
				nd.preds = append(nd.preds, idx[p])
			}
			nodes[i] = nd
		}
		ck.cons = append(ck.cons, ckConstraint{src: c, nodes: nodes})
		if len(nodes) > maxNodes {
			maxNodes = len(nodes)
		}
		if w := c.ComputationTime(m.Comm); w > ck.maxWork {
			ck.maxWork = w
		}
	}
	if maxNodes > ck.maxNodes {
		ck.maxNodes = maxNodes
	}
	ck.occ = make([][]int, len(ck.elems))
	ck.nexec = make([]int, len(ck.elems))
	ck.finish = make([]int, ck.maxNodes)
	ck.used = make([]int, len(ck.elems))
	ck.usedAt = make([]int, len(ck.elems))
	return ck, nil
}

// MustChecker is NewChecker for models already known to have acyclic
// task graphs (e.g. validated models); it panics otherwise.
func MustChecker(m *core.Model) *Checker {
	ck, err := NewChecker(m)
	if err != nil {
		panic(err)
	}
	return ck
}

// bind derives the schedule-dependent state (slot positions,
// alignment, horizon execution counts). It reports false for the
// empty schedule, whose latencies are all Infinite.
func (ck *Checker) bind(s *Schedule) bool {
	ck.n = s.Len()
	if ck.n == 0 {
		return false
	}
	for e := range ck.occ {
		ck.occ[e] = ck.occ[e][:0]
	}
	for i, sym := range s.Slots {
		if sym == Idle {
			continue
		}
		if id, ok := ck.symID[sym]; ok {
			ck.occ[id] = append(ck.occ[id], i)
		}
	}
	align := 1
	for e := range ck.elems {
		w, k := ck.weight[e], len(ck.occ[e])
		if w <= 0 || k == 0 {
			continue
		}
		align = lcm(align, w/gcd(k, w))
	}
	ck.align = align
	cycles := align + ck.maxWork + ck.maxNodes + 2 // horizon in schedule cycles
	for e := range ck.elems {
		if w := ck.weight[e]; w > 0 {
			ck.nexec[e] = len(ck.occ[e]) * cycles / w
		} else {
			ck.nexec[e] = 0
		}
	}
	return true
}

// slotOf returns the trace position of occurrence j of the element
// whose cycle positions are p (k = len(p) occurrences per cycle).
func (ck *Checker) slotOf(p []int, j int) int {
	k := len(p)
	return (j/k)*ck.n + p[j%k]
}

// earliestCompletion mirrors Analyzer.EarliestCompletion for
// constraint ci: the earliest f such that an execution of the task
// graph fits within [from, f], or Infinite beyond the horizon.
func (ck *Checker) earliestCompletion(ci, from int) int {
	c := &ck.cons[ci]
	ck.stamp++
	completion := from
	for i := range c.nodes {
		nd := &c.nodes[i]
		ready := from
		for _, p := range nd.preds {
			if ck.finish[p] > ready {
				ready = ck.finish[p]
			}
		}
		if nd.w <= 0 {
			ck.finish[i] = ready
			if ready > completion {
				completion = ready
			}
			continue
		}
		e := nd.elem
		if e < 0 || len(ck.occ[e]) == 0 {
			return Infinite
		}
		p := ck.occ[e]
		k := len(p)
		// first occurrence at or after ready, then the first whole
		// execution starting there
		q, r := ready/ck.n, ready%ck.n
		j := q*k + sort.SearchInts(p, r)
		ei := (j + nd.w - 1) / nd.w
		if ck.usedAt[e] == ck.stamp && ck.used[e] > ei {
			ei = ck.used[e]
		}
		if ei >= ck.nexec[e] {
			return Infinite
		}
		ck.used[e] = ei + 1
		ck.usedAt[e] = ck.stamp
		f := ck.slotOf(p, ei*nd.w+nd.w-1) + 1
		ck.finish[i] = f
		if f > completion {
			completion = f
		}
	}
	return completion
}

// worstResponse returns the worst completion span of constraint ci
// over its invocation instants, early-exiting at the limit when limit
// is non-negative (the span can only grow, so exceeding the limit
// already decides feasibility). Pass limit < 0 for the exact worst.
func (ck *Checker) worstResponse(ci, limit int) int {
	c := &ck.cons[ci]
	span := ck.n * ck.align
	step := 1
	if c.src.Kind == core.Periodic {
		step = gcd(c.src.Period, span)
	}
	worst := 0
	for t := 0; t < span; t += step {
		f := ck.earliestCompletion(ci, t)
		if f == Infinite {
			return Infinite
		}
		if f-t > worst {
			worst = f - t
			if limit >= 0 && worst > limit {
				return worst
			}
		}
	}
	return worst
}

// Feasible reports whether the schedule meets every constraint. It
// returns the same boolean as Feasible(m, s) / Check(m, s).Feasible
// but reuses all scratch state and stops at the first violated
// constraint.
func (ck *Checker) Feasible(s *Schedule) bool {
	if !ck.bind(s) {
		return len(ck.cons) == 0
	}
	for ci := range ck.cons {
		d := ck.cons[ci].src.Deadline
		if w := ck.worstResponse(ci, d); w == Infinite || w > d {
			return false
		}
	}
	return true
}

// Constraint returns the i-th constraint in declaration order — the
// order Worsts reports in.
func (ck *Checker) Constraint(i int) *core.Constraint { return ck.cons[i].src }

// Worsts returns the worst-case completion span of every constraint
// (Infinite when the task can never execute), in declaration order.
// The returned slice is reused by the next call.
func (ck *Checker) Worsts(s *Schedule) []int {
	ck.worsts = ck.worsts[:0]
	bound := ck.bind(s)
	for ci := range ck.cons {
		if !bound {
			ck.worsts = append(ck.worsts, Infinite)
			continue
		}
		ck.worsts = append(ck.worsts, ck.worstResponse(ci, -1))
	}
	return ck.worsts
}

// Contiguous reports whether every execution in the schedule is a
// block of consecutive slots, matching Contiguous(comm, s).
func (ck *Checker) Contiguous(s *Schedule) bool {
	if !ck.bind(s) {
		return true
	}
	cycles := ck.align + 2 // the window ContiguousViolations parses
	for e := range ck.elems {
		w, k := ck.weight[e], len(ck.occ[e])
		if w <= 1 || k == 0 {
			continue
		}
		p := ck.occ[e]
		for i := 0; i < k*cycles/w; i++ {
			start := ck.slotOf(p, i*w)
			end := ck.slotOf(p, i*w+w-1) + 1
			if end-start != w {
				return false
			}
		}
	}
	return true
}
