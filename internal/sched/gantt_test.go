package sched

import (
	"strings"
	"testing"

	"rtm/internal/core"
)

func TestGanttBasic(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("a", 1)
	comm.AddElement("b", 1)
	s := New("a", "b", Idle, "a")
	out := Gantt(comm, s, GanttOptions{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// ruler + a + b + idle
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	var aLine, idleLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "a") {
			aLine = l
		}
		if strings.HasPrefix(l, "φ") {
			idleLine = l
		}
	}
	if !strings.Contains(aLine, "#.") || !strings.HasSuffix(aLine, "#..#") {
		t.Fatalf("a row = %q", aLine)
	}
	if !strings.HasSuffix(idleLine, "..#.") {
		t.Fatalf("idle row = %q", idleLine)
	}
}

func TestGanttCyclesAndEmpty(t *testing.T) {
	comm := core.NewCommGraph()
	comm.AddElement("a", 1)
	s := New("a", Idle)
	out := Gantt(comm, s, GanttOptions{Cycles: 3, Ruler: -1})
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "a") && !strings.HasSuffix(l, "#.#.#.") {
			t.Fatalf("a row over 3 cycles = %q", l)
		}
		if strings.HasPrefix(l, "t") {
			t.Fatal("ruler drawn although disabled")
		}
	}
	if Gantt(comm, New(), GanttOptions{}) != "(empty schedule)\n" {
		t.Fatal("empty schedule rendering")
	}
}

func TestComputeStats(t *testing.T) {
	s := New("a", "a", "b", Idle, "a")
	st := ComputeStats(s)
	if st.Cycle != 5 || st.Busy != 4 || st.Idle != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PerElem["a"] != 3 || st.PerElem["b"] != 1 {
		t.Fatalf("per-elem = %v", st.PerElem)
	}
	if st.MaxStreak != 2 {
		t.Fatalf("max streak = %d", st.MaxStreak)
	}
	if len(st.Elements) != 2 || st.Elements[0] != "a" {
		t.Fatalf("elements = %v", st.Elements)
	}
	out := st.String()
	if !strings.Contains(out, "cycle=5") || !strings.Contains(out, "60.0%") {
		t.Fatalf("stats string:\n%s", out)
	}
}
