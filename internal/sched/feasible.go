package sched

import (
	"fmt"
	"strings"

	"rtm/internal/core"
)

// ConstraintReport records how one constraint fares under a schedule.
type ConstraintReport struct {
	Name     string
	Kind     core.Kind
	Deadline int
	// Latency is the worst-case completion span. For asynchronous
	// constraints it is the latency of the schedule (worst over all
	// invocation instants). For periodic constraints it is the worst
	// response time over all invocations in the schedule/period
	// alignment window.
	Latency int
	OK      bool
}

// Report is the outcome of checking one schedule against a model.
type Report struct {
	Feasible    bool
	Constraints []ConstraintReport
}

// String renders a one-line-per-constraint summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "feasible=%v\n", r.Feasible)
	for _, c := range r.Constraints {
		lat := fmt.Sprint(c.Latency)
		if c.Latency == Infinite {
			lat = "∞"
		}
		fmt.Fprintf(&b, "  %-12s %-12s latency=%-6s deadline=%-6d ok=%v\n",
			c.Name, c.Kind, lat, c.Deadline, c.OK)
	}
	return b.String()
}

// Check verifies a static schedule against every constraint of the
// model and returns a full report.
//
// Asynchronous constraints (C, p, d): the schedule must have latency
// ≤ d with respect to C — then an invocation at any instant t finds
// an execution of C inside [t, t+d], regardless of the separation p
// (the adversary controls invocation times).
//
// Periodic constraints (C, p, d): invocations occur at t = 0, p, 2p,
// …; each needs an execution of C inside [t, t+d]. The check walks
// all invocation instants in one alignment window of the schedule
// cycle against the period. Invocations are checked independently,
// which is exact when d ≤ p.
func Check(m *core.Model, s *Schedule) *Report {
	a := AnalyzerFor(m, s)
	rep := &Report{Feasible: true}
	for _, c := range m.Constraints {
		var worst int
		switch c.Kind {
		case core.Asynchronous:
			worst = a.Latency(c.Task)
		case core.Periodic:
			worst = a.PeriodicWorstResponse(c)
		}
		ok := worst <= c.Deadline
		if !ok {
			rep.Feasible = false
		}
		rep.Constraints = append(rep.Constraints, ConstraintReport{
			Name:     c.Name,
			Kind:     c.Kind,
			Deadline: c.Deadline,
			Latency:  worst,
			OK:       ok,
		})
	}
	return rep
}

// Feasible reports whether the schedule meets every constraint.
func Feasible(m *core.Model, s *Schedule) bool {
	return Check(m, s).Feasible
}

// PeriodicWorstResponse returns the worst completion span over all
// invocations t = 0, p, 2p, … of a periodic constraint, scanning one
// full alignment window of cycle length, parsing alignment and
// period.
func (a *Analyzer) PeriodicWorstResponse(c *core.Constraint) int {
	n := a.sched.Len()
	if n == 0 {
		return Infinite
	}
	// The trace's execution structure repeats every M = n*align
	// slots, so ect(t+M) = ect(t)+M and only t mod M matters. The
	// invocation instants {kp mod M} are exactly the multiples of
	// gcd(p, M), so scanning those inside [0, M) covers every
	// invocation without leaving the analyzer's horizon.
	m := n * a.align
	step := gcd(c.Period, m)
	worst := 0
	for t := 0; t < m; t += step {
		f := a.EarliestCompletion(c.Task, t)
		if f == Infinite {
			return Infinite
		}
		if f-t > worst {
			worst = f - t
		}
	}
	return worst
}
