package sched

import (
	"math"
	"sort"

	"rtm/internal/core"
)

// Infinite is the latency reported when the schedule can never
// execute the task graph (some needed element never appears).
const Infinite = math.MaxInt

// execution is one parsed execution of a functional element in a
// trace: a group of weight-many slots assigned to that element,
// grouped greedily in time order (which realizes the paper's
// pipeline ordering: earlier start implies earlier finish).
type execution struct {
	start  int // first slot index
	finish int // last slot index + 1
}

// parseExecutions groups the slots of each element in the unrolled
// trace into executions of the element's weight. Elements with zero
// weight need no slots and get no executions (they complete
// instantly at their ready time). Trailing partial groups are
// dropped.
func parseExecutions(trace []string, weight map[string]int) map[string][]execution {
	slots := make(map[string][]int)
	for i, x := range trace {
		if x != Idle {
			slots[x] = append(slots[x], i)
		}
	}
	out := make(map[string][]execution, len(slots))
	for elem, idx := range slots {
		w := weight[elem]
		if w <= 0 {
			continue
		}
		for i := 0; i+w <= len(idx); i += w {
			out[elem] = append(out[elem], execution{start: idx[i], finish: idx[i+w-1] + 1})
		}
	}
	return out
}

// Analyzer computes latencies of one schedule against constraints of
// one communication graph. It pre-parses the unrolled trace once and
// answers many queries.
type Analyzer struct {
	sched  *Schedule
	comm   *core.CommGraph
	horiz  int
	align  int // number of cycles after which execution parsing repeats
	execs  map[string][]execution
	starts map[string][]int // start times, for binary search
}

// NewAnalyzer builds an analyzer whose unrolled horizon is sufficient
// for task graphs with up to maxNodes nodes and maxWork total
// computation time. Passing the model's maxima (or generous bounds)
// is safe.
func NewAnalyzer(comm *core.CommGraph, s *Schedule, maxNodes, maxWork int) *Analyzer {
	n := s.Len()
	if n == 0 {
		n = 1
	}
	// Execution grouping only realigns with the cycle boundary every
	// `align` cycles: an element with k slots per cycle and weight w
	// realigns after w/gcd(k,w) cycles.
	align := 1
	for _, elem := range comm.Elements() {
		w := comm.WeightOf(elem)
		k := s.Count(elem)
		if w <= 0 || k == 0 {
			continue
		}
		align = lcm(align, w/gcd(k, w))
	}
	horiz := n * (align + maxWork + maxNodes + 2)
	a := &Analyzer{sched: s, comm: comm, horiz: horiz, align: align}
	a.execs = parseExecutions(s.Unroll(horiz), comm.Weight)
	a.starts = make(map[string][]int, len(a.execs))
	for e, xs := range a.execs {
		st := make([]int, len(xs))
		for i, x := range xs {
			st[i] = x.start
		}
		a.starts[e] = st
	}
	return a
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// AnalyzerFor builds an analyzer sized for every constraint of m.
func AnalyzerFor(m *core.Model, s *Schedule) *Analyzer {
	maxNodes, maxWork := 1, 1
	for _, c := range m.Constraints {
		if n := c.Task.G.NumNodes(); n > maxNodes {
			maxNodes = n
		}
		if w := c.ComputationTime(m.Comm); w > maxWork {
			maxWork = w
		}
	}
	return NewAnalyzer(m.Comm, s, maxNodes, maxWork)
}

// EarliestCompletion returns the earliest time f such that an
// execution of the task graph fits entirely within [from, f] of the
// schedule's trace, or Infinite if no execution fits within the
// analyzer's horizon.
//
// Task nodes are processed in topological order; each takes the
// earliest unused execution of its element starting at or after its
// ready time (the max finish of its predecessors, or from). This is
// exact when task nodes map to distinct elements, and a safe upper
// bound otherwise.
func (a *Analyzer) EarliestCompletion(task *core.TaskGraph, from int) int {
	order, err := task.G.TopoSort()
	if err != nil {
		return Infinite
	}
	finish := make(map[string]int, len(order))
	used := make(map[string]int) // element -> next unused execution index lower bound
	completion := from
	for _, node := range order {
		elem := task.ElementOf(node)
		ready := from
		for _, p := range task.G.Pred(node) {
			if finish[p] > ready {
				ready = finish[p]
			}
		}
		w := a.comm.WeightOf(elem)
		if w == 0 {
			finish[node] = ready
			if ready > completion {
				completion = ready
			}
			continue
		}
		starts := a.starts[elem]
		// earliest execution with start >= ready, not yet consumed
		// by an earlier node of this task graph.
		i := sort.SearchInts(starts, ready)
		if i < used[elem] {
			i = used[elem]
		}
		if i >= len(starts) {
			return Infinite
		}
		ex := a.execs[elem][i]
		used[elem] = i + 1
		finish[node] = ex.finish
		if ex.finish > completion {
			completion = ex.finish
		}
	}
	return completion
}

// Latency returns the latency of the schedule with respect to the
// task graph: the least k such that every interval of length ≥ k in
// the generated trace contains an execution of the task graph.
// Returns Infinite if no interval does.
func (a *Analyzer) Latency(task *core.TaskGraph) int {
	n := a.sched.Len()
	if n == 0 {
		return Infinite
	}
	// scan one full alignment period of starting points
	span := n * a.align
	worst := 0
	for i := 0; i < span; i++ {
		f := a.EarliestCompletion(task, i)
		if f == Infinite {
			return Infinite
		}
		if f-i > worst {
			worst = f - i
		}
	}
	return worst
}

// Latency is a convenience wrapper building a one-shot analyzer.
func Latency(comm *core.CommGraph, s *Schedule, task *core.TaskGraph) int {
	w := task.ComputationTime(comm)
	a := NewAnalyzer(comm, s, task.G.NumNodes(), w)
	return a.Latency(task)
}
