package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
	"rtm/internal/graph"
	"rtm/internal/workload"
)

// agreesWithReference asserts that a Checker gives the same answers
// as the one-shot Check/AnalyzerFor path on one candidate schedule.
func agreesWithReference(t *testing.T, label string, m *core.Model, ck *Checker, s *Schedule) {
	t.Helper()
	wantRep := Check(m, s)
	if got := ck.Feasible(s); got != wantRep.Feasible {
		t.Fatalf("%s: Feasible = %v, Check = %v\nschedule %v", label, got, wantRep.Feasible, s.Slots)
	}
	want := analyzerWorst(m, s)
	got := ck.Worsts(s)
	if len(got) != len(want) {
		t.Fatalf("%s: worsts length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: constraint %d worst = %d, analyzer = %d\nschedule %v",
				label, i, got[i], want[i], s.Slots)
		}
	}
	if got, want := ck.Contiguous(s), Contiguous(m.Comm, s); got != want {
		t.Fatalf("%s: Contiguous = %v, reference = %v", label, got, want)
	}
}

// TestCheckerPropertyRandomModels is the property-test hardening pass
// over the fast checker: on fully random models (random connected
// communication DAGs, random chain constraints, mixed kinds and
// weights) the Checker must agree with the reference Check/Analyzer
// on every candidate schedule — feasibility verdict, per-constraint
// worst-case latencies, and contiguity alike.
func TestCheckerPropertyRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		m, err := workload.Random(rng, workload.Params{
			Elements:    2 + rng.Intn(5),
			MaxWeight:   1 + rng.Intn(3),
			EdgeProb:    rng.Float64(),
			Constraints: 1 + rng.Intn(4),
			ChainLen:    1 + rng.Intn(3),
			AsyncFrac:   rng.Float64(),
			TargetUtil:  0.2 + 0.6*rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ck := MustChecker(m)
		for round := 0; round < 40; round++ {
			s := randomScheduleOver(rng, m, 1+rng.Intn(12))
			agreesWithReference(t, fmt.Sprintf("trial %d round %d", trial, round), m, ck, s)
		}
	}
}

// TestCheckerPropertyDAGTasks drives the same agreement property with
// general DAG task graphs (not just chains): each constraint's task is
// a random induced sub-DAG of the communication graph, so precedence
// fan-in/fan-out and multi-node tasks are exercised, which
// workload.Random's chain constraints never produce.
func TestCheckerPropertyDAGTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomConnectedDAG(rng, "e", 3+rng.Intn(4), 0.5)
		m := core.NewModel()
		for _, n := range g.Nodes() {
			m.Comm.AddElement(n, 1+rng.Intn(2))
		}
		for _, e := range g.Edges() {
			m.Comm.AddPath(e.From, e.To)
		}
		nCons := 1 + rng.Intn(3)
		for i := 0; i < nCons; i++ {
			sub := graph.RandomSubDAG(rng, g, 1+rng.Intn(3))
			task := core.NewTaskGraph()
			for _, n := range sub.Nodes() {
				task.AddStep("s"+n, n)
			}
			for _, e := range sub.Edges() {
				task.AddPrec("s"+e.From, "s"+e.To)
			}
			w := task.ComputationTime(m.Comm)
			kind := core.Periodic
			if rng.Intn(2) == 0 {
				kind = core.Asynchronous
			}
			period := 2*w + rng.Intn(8)
			m.AddConstraint(&core.Constraint{
				Name: fmt.Sprintf("d%d", i), Task: task,
				Period: period, Deadline: period, Kind: kind,
			})
		}
		if m.Validate() != nil {
			continue // e.g. sub-DAG tasks that break compatibility; not the property under test
		}
		ck := MustChecker(m)
		for round := 0; round < 40; round++ {
			s := randomScheduleOver(rng, m, 1+rng.Intn(10))
			agreesWithReference(t, fmt.Sprintf("dag trial %d round %d", trial, round), m, ck, s)
		}
	}
}
