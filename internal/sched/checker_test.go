package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"rtm/internal/core"
)

// checkerModels builds a spread of models exercising every code path:
// async-only unit ops, chains, weighted (pipelinable) elements,
// periodic constraints, and mixes.
func checkerModels() []*core.Model {
	var out []*core.Model

	unit := core.NewModel()
	unit.Comm.AddElement("a", 1)
	unit.AddConstraint(&core.Constraint{
		Name: "A", Task: core.ChainTask("a"),
		Period: 2, Deadline: 2, Kind: core.Asynchronous,
	})
	out = append(out, unit)

	chain := core.NewModel()
	chain.Comm.AddElement("a", 1)
	chain.Comm.AddElement("b", 1)
	chain.Comm.AddPath("a", "b")
	chain.AddConstraint(&core.Constraint{
		Name: "AB", Task: core.ChainTask("a", "b"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	out = append(out, chain)

	heavy := core.NewModel()
	heavy.Comm.AddElement("h", 2)
	heavy.Comm.AddElement("l", 1)
	heavy.AddConstraint(&core.Constraint{
		Name: "H", Task: core.ChainTask("h"),
		Period: 8, Deadline: 8, Kind: core.Asynchronous,
	})
	heavy.AddConstraint(&core.Constraint{
		Name: "L", Task: core.ChainTask("l"),
		Period: 3, Deadline: 3, Kind: core.Asynchronous,
	})
	out = append(out, heavy)

	mixed := core.NewModel()
	mixed.Comm.AddElement("p", 1)
	mixed.Comm.AddElement("q", 1)
	mixed.Comm.AddElement("r", 2)
	mixed.AddConstraint(&core.Constraint{
		Name: "P", Task: core.ChainTask("p"),
		Period: 2, Deadline: 2, Kind: core.Periodic,
	})
	mixed.AddConstraint(&core.Constraint{
		Name: "Q", Task: core.ChainTask("q"),
		Period: 4, Deadline: 4, Kind: core.Asynchronous,
	})
	mixed.AddConstraint(&core.Constraint{
		Name: "R", Task: core.ChainTask("r"),
		Period: 6, Deadline: 5, Kind: core.Periodic,
	})
	out = append(out, mixed)

	return out
}

// randomScheduleOver draws a schedule of the given length over the
// model's elements plus idle.
func randomScheduleOver(rng *rand.Rand, m *core.Model, n int) *Schedule {
	alphabet := append([]string{Idle}, m.ElementsUsed()...)
	slots := make([]string, n)
	for i := range slots {
		slots[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return &Schedule{Slots: slots}
}

// analyzerWorst is the reference per-constraint worst via the
// one-shot Analyzer path.
func analyzerWorst(m *core.Model, s *Schedule) []int {
	a := AnalyzerFor(m, s)
	out := make([]int, 0, len(m.Constraints))
	for _, c := range m.Constraints {
		switch c.Kind {
		case core.Asynchronous:
			out = append(out, a.Latency(c.Task))
		case core.Periodic:
			out = append(out, a.PeriodicWorstResponse(c))
		}
	}
	return out
}

func TestCheckerMatchesAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for mi, m := range checkerModels() {
		ck, err := NewChecker(m)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(8)
			s := randomScheduleOver(rng, m, n)
			label := fmt.Sprintf("model %d trial %d schedule %v", mi, trial, s)

			wantRep := Check(m, s)
			if got := ck.Feasible(s); got != wantRep.Feasible {
				t.Fatalf("%s: Feasible = %v, Check = %v", label, got, wantRep.Feasible)
			}
			want := analyzerWorst(m, s)
			got := ck.Worsts(s)
			if len(got) != len(want) {
				t.Fatalf("%s: worsts length %d != %d", label, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: constraint %d worst = %d, analyzer = %d", label, i, got[i], want[i])
				}
			}
			if got, want := ck.Contiguous(s), Contiguous(m.Comm, s); got != want {
				t.Fatalf("%s: Contiguous = %v, reference = %v", label, got, want)
			}
		}
	}
}

func TestCheckerEmptySchedule(t *testing.T) {
	m := checkerModels()[0]
	ck := MustChecker(m)
	empty := New()
	if ck.Feasible(empty) {
		t.Fatal("empty schedule feasible for a constrained model")
	}
	if w := ck.Worsts(empty); len(w) != 1 || w[0] != Infinite {
		t.Fatalf("worsts = %v", w)
	}
	if !ck.Contiguous(empty) {
		t.Fatal("empty schedule should be trivially contiguous")
	}

	free := core.NewModel()
	ckFree := MustChecker(free)
	if !ckFree.Feasible(empty) {
		t.Fatal("unconstrained model infeasible")
	}
}

func TestCheckerReuseAcrossSchedules(t *testing.T) {
	// the same Checker must give identical answers as a fresh one on
	// every schedule in a long interleaved sequence (scratch reuse).
	rng := rand.New(rand.NewSource(13))
	for _, m := range checkerModels() {
		shared := MustChecker(m)
		for trial := 0; trial < 100; trial++ {
			s := randomScheduleOver(rng, m, 1+rng.Intn(6))
			fresh := MustChecker(m)
			if got, want := shared.Feasible(s), fresh.Feasible(s); got != want {
				t.Fatalf("reused checker diverged on %v: %v vs %v", s, got, want)
			}
		}
	}
}

func TestCheckerCyclicTask(t *testing.T) {
	m := core.NewModel()
	m.Comm.AddElement("a", 1)
	m.Comm.AddElement("b", 1)
	task := core.NewTaskGraph()
	task.AddStep("a", "a")
	task.AddStep("b", "b")
	task.AddPrec("a", "b")
	task.AddPrec("b", "a")
	m.AddConstraint(&core.Constraint{Name: "X", Task: task, Period: 4, Deadline: 4, Kind: core.Asynchronous})
	if _, err := NewChecker(m); err == nil {
		t.Fatal("cyclic task graph accepted")
	}
}
