package store

import (
	"bytes"
	"fmt"
	"testing"

	"rtm/internal/trace"
)

// FuzzStoreDecode pins the reader's no-panic contract: arbitrary
// bytes fed to the segment reader must come back as an error or as
// valid records — never a panic, never an invalid record. The seed
// corpus is built from real segments (whole, truncated, bit-flipped,
// and with garbage appended), which is exactly the damage spectrum a
// crashed or bit-rotted log presents.
func FuzzStoreDecode(f *testing.F) {
	var seg bytes.Buffer
	for i := 0; i < 4; i++ {
		payload, err := trace.EncodeStoreRecord(testRecord(i))
		if err != nil {
			f.Fatal(err)
		}
		buf, err := Frame(payload)
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(buf)
	}
	whole := seg.Bytes()
	f.Add([]byte(nil))
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add(whole[:headerLen-3])
	flipped := append([]byte(nil), whole...)
	flipped[headerLen+5] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), whole...), "trailing junk"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, _, err := scanSegment(bytes.NewReader(data), func(r *Record) error {
			if r == nil {
				t.Fatal("reader produced a nil record")
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("reader produced an invalid record: %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("in-memory scan errored: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("clean prefix %d outside [0,%d]", valid, len(data))
		}
	})
}

// FuzzMemoSegmentDecode pins the same no-panic contract for the memo
// tier, one level deeper: hostile bytes must scan to valid memo records
// or a clean prefix, and importing them into a live store must leave
// only records that re-validate — the full path a poisoned anti-entropy
// pull would take before its signatures ever reach a search.
func FuzzMemoSegmentDecode(f *testing.F) {
	var seg bytes.Buffer
	for i := 0; i < 3; i++ {
		payload, err := trace.EncodeMemoRecord(&trace.MemoRecordJSON{
			Key:          fmt.Sprintf("%064x", i+0x2000),
			Fingerprints: []string{fmt.Sprintf("%064x", i+1)},
			Sigs:         [][]byte{[]byte("sig-a"), {0x01, 0x02, byte(i)}},
		})
		if err != nil {
			f.Fatal(err)
		}
		buf, err := Frame(payload)
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(buf)
	}
	whole := seg.Bytes()
	f.Add([]byte(nil))
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add(whole[:headerLen-3])
	flipped := append([]byte(nil), whole...)
	flipped[headerLen+5] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), whole...), "trailing junk"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, _, err := scanMemoSegment(bytes.NewReader(data), func(r *MemoRecord) error {
			if r == nil {
				t.Fatal("reader produced a nil record")
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("reader produced an invalid record: %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("in-memory scan errored: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("clean prefix %d outside [0,%d]", valid, len(data))
		}

		s, err := Open(t.TempDir(), Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.ImportMemoFrames(data); err != nil {
			t.Fatalf("import errored: %v", err)
		}
		for _, k := range s.MemoKeys() {
			rec, _ := s.GetMemo(k)
			if err := rec.Validate(); err != nil {
				t.Fatalf("imported record invalid: %v", err)
			}
		}
	})
}
