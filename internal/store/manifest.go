package store

import (
	"bytes"
	"fmt"

	"rtm/internal/trace"
)

// Segment manifests and sealed-segment exchange — the store half of
// cluster replication. The fingerprint space is split into
// ManifestBuckets buckets by the fingerprint's first hex nibble; a
// manifest summarizes each bucket as (count, digest over the sorted
// fingerprint set). Two nodes compare manifests bucket by bucket and
// pull only the buckets whose digests differ, as sealed CRC-framed
// segments — the same wire format as the on-disk log, so the import
// path is the same longest-clean-prefix scan plus record validation
// the store already trusts for its own log. Replication stays
// trustless because nothing here is believed: a pulled record is
// indexed like any local one and re-verified against the requesting
// model before it is ever served, so a corrupt or malicious segment
// degrades to a miss, never a wrong schedule.

// ManifestBuckets is the number of manifest buckets — one per leading
// hex nibble of the canonical fingerprint.
const ManifestBuckets = 16

// maxSegmentLen bounds a sealed segment a peer will accept —
// ManifestBuckets of these covers a store far larger than any
// deployment we bench, while keeping a malicious peer from forcing an
// unbounded allocation.
const maxSegmentLen = 64 << 20

// BucketOf maps a canonical fingerprint to its manifest bucket. An
// invalid leading character maps to bucket 0 — such a record cannot
// exist in a store index (fingerprints are validated on Put), so the
// mapping only needs to be total, not forgiving.
func BucketOf(fp string) int {
	if len(fp) == 0 {
		return 0
	}
	switch c := fp[0]; {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return 0
}

// BucketInfo summarizes one manifest bucket: how many records it
// holds and a digest of its fingerprint set. The digest is SHA-256
// over the sorted fingerprints concatenated, so it is a pure function
// of the set — insertion order, record contents, and log layout do
// not move it. Equal digests mean equal fingerprint sets; record
// bodies may still differ between nodes (two nodes can decide the
// same class with different valid schedules), which is fine because
// every serve re-verifies.
type BucketInfo struct {
	Bucket int    `json:"bucket"`
	Count  int    `json:"count"`
	Digest string `json:"digest"`
	// MemoCount/MemoDigest summarize the bucket's slice of the memo
	// tier (classes whose memo key falls in the bucket). The memo
	// digest covers record CONTENT, not just the key set — memo
	// records grow by merging, so two replicas with equal key sets can
	// still need a pull. An empty MemoDigest in a received manifest
	// means the peer predates the memo tier; syncers skip memo pulls
	// for it.
	MemoCount  int    `json:"memoCount"`
	MemoDigest string `json:"memoDigest,omitempty"`
}

// Manifest summarizes the store's index as ManifestBuckets bucket
// entries (all buckets always present, empty ones with Count 0).
// Digests come from the incrementally-maintained Merkle leaf state
// (merkle.go): on a quiescent store this is a cache copy, and after k
// mutations only the dirtied buckets re-hash — never a full re-sort
// or re-hash of the index under the lock, even though the digest
// bytes remain identical to the pre-Merkle from-scratch formula.
func (s *Store) Manifest() []BucketInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BucketInfo, ManifestBuckets)
	for b := 0; b < ManifestBuckets; b++ {
		lo, hi := b*leavesPerBucket, (b+1)*leavesPerBucket
		out[b] = BucketInfo{
			Bucket:     b,
			Count:      s.vleaf.count(lo, hi),
			Digest:     s.verdictBucketDigestLocked(b),
			MemoCount:  s.mleaf.count(lo, hi),
			MemoDigest: s.memoBucketDigestLocked(b),
		}
	}
	return out
}

// ExportBucket seals bucket b as a self-contained segment: every
// indexed record in the bucket, sorted by fingerprint, in the store's
// CRC frame format. The segment is byte-deterministic for a given
// record set, so re-exporting an unchanged bucket yields identical
// bytes. Returns the segment and the record count.
func (s *Store) ExportBucket(b int) ([]byte, int, error) {
	if b < 0 || b >= ManifestBuckets {
		return nil, 0, fmt.Errorf("store: bucket %d outside [0,%d)", b, ManifestBuckets)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, fmt.Errorf("store: closed")
	}
	var buf bytes.Buffer
	n := 0
	for l := b * leavesPerBucket; l < (b+1)*leavesPerBucket; l++ {
		for _, fp := range s.vleaf.items[l] {
			payload, err := trace.EncodeStoreRecord(s.index[fp])
			if err != nil {
				return nil, 0, fmt.Errorf("store: export: %w", err)
			}
			frame, err := Frame(payload)
			if err != nil {
				return nil, 0, fmt.Errorf("store: export: %w", err)
			}
			buf.Write(frame)
			n++
		}
	}
	return buf.Bytes(), n, nil
}

// ImportStats reports what an ImportFrames call did.
type ImportStats struct {
	// Imported counts records appended to the log and indexed.
	Imported int
	// Unchanged counts records skipped because the fingerprint was
	// already indexed locally (first write wins; the local record is
	// kept — serve-time re-verification makes the choice harmless).
	Unchanged int
	// Dropped reports that the segment had a torn, corrupt, or
	// undecodable tail; the clean prefix before it was still imported.
	Dropped bool
}

// ImportFrames replays a sealed segment into the store. The segment
// passes through exactly the validation the store's own log gets on
// Open — frame magic, length bound, CRC, record decode+validate — and
// the longest clean prefix wins: a corrupt frame ends the import with
// Dropped set and everything before it kept. Records for fingerprints
// already indexed are skipped (Unchanged); new records are appended
// to the local log in one write and indexed, so they survive restarts
// and show up in this node's own manifest and exports. ImportFrames
// never returns an error for bad segment content — malformed input is
// a shorter clean prefix, same as the on-disk log.
func (s *Store) ImportFrames(data []byte) (ImportStats, error) {
	var st ImportStats
	if len(data) > maxSegmentLen {
		data = data[:maxSegmentLen:maxSegmentLen]
		st.Dropped = true
	}
	var recs []*Record
	_, dropped, err := scanSegment(bytes.NewReader(data), func(r *Record) error {
		cp := *r
		cp.Slots = append([]int(nil), r.Slots...)
		recs = append(recs, &cp)
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("store: import: %w", err)
	}
	st.Dropped = st.Dropped || dropped

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return st, fmt.Errorf("store: closed")
	}
	var log bytes.Buffer
	var fresh []*Record
	for _, rec := range recs {
		if _, ok := s.index[rec.Fingerprint]; ok {
			st.Unchanged++
			continue
		}
		payload, err := trace.EncodeStoreRecord(rec)
		if err != nil {
			// scanSegment only yields records that decode+validate, so
			// re-encoding cannot fail; guard anyway and skip.
			st.Dropped = true
			continue
		}
		frame, err := Frame(payload)
		if err != nil {
			st.Dropped = true
			continue
		}
		log.Write(frame)
		fresh = append(fresh, rec)
	}
	if len(fresh) == 0 {
		return st, nil
	}
	if _, err := s.f.Write(log.Bytes()); err != nil {
		return st, fmt.Errorf("store: import append: %w", err)
	}
	if !s.opt.NoSync {
		if err := s.f.Sync(); err != nil {
			return st, fmt.Errorf("store: import sync: %w", err)
		}
	}
	for _, rec := range fresh {
		s.index[rec.Fingerprint] = rec
		s.vleaf.add(rec.Fingerprint)
	}
	s.bytes += int64(log.Len())
	st.Imported = len(fresh)
	return st, nil
}
