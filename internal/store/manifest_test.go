package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// bucketRecord builds a valid record pinned to a specific manifest
// bucket via the fingerprint's leading nibble.
func bucketRecord(bucket, i int) *Record {
	fp := fmt.Sprintf("%x%063x", bucket, i+1)
	if i%3 == 2 {
		return &Record{Fingerprint: fp, Feasible: false, Elements: 2, Source: "exact"}
	}
	return &Record{
		Fingerprint: fp, Feasible: true, Elements: 3,
		Slots: []int{0, -1, i % 3, 1}, Source: "heuristic", Unix: 1754_000_000,
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[string]int{
		"0abc": 0, "9abc": 9, "aabc": 10, "fabc": 15, "": 0, "zabc": 0,
	}
	for fp, want := range cases {
		if got := BucketOf(fp); got != want {
			t.Errorf("BucketOf(%q) = %d, want %d", fp, got, want)
		}
	}
}

func TestManifestShape(t *testing.T) {
	s := openT(t, t.TempDir())
	for _, b := range []int{0, 3, 3, 15} {
		if err := s.Put(bucketRecord(b, b*10+s.Len())); err != nil {
			t.Fatal(err)
		}
	}
	man := s.Manifest()
	if len(man) != ManifestBuckets {
		t.Fatalf("manifest has %d buckets, want %d", len(man), ManifestBuckets)
	}
	counts := map[int]int{0: 1, 3: 2, 15: 1}
	var empty BucketInfo
	for b, info := range man {
		if info.Bucket != b {
			t.Fatalf("bucket %d labeled %d", b, info.Bucket)
		}
		if info.Count != counts[b] {
			t.Fatalf("bucket %d count = %d, want %d", b, info.Count, counts[b])
		}
		if info.Digest == "" {
			t.Fatalf("bucket %d has empty digest", b)
		}
		if counts[b] == 0 {
			if empty == (BucketInfo{}) {
				empty = info
				empty.Bucket = 0
			}
			got := info
			got.Bucket = 0
			if got != empty {
				t.Fatalf("empty buckets disagree: %+v vs %+v", got, empty)
			}
		}
	}
}

// TestManifestDigestStableAcrossOrderings pins that the bucket digest
// is a pure function of the fingerprint set: inserting the same
// records in different orders (and via different code paths —
// Put vs ImportFrames) yields identical digests.
func TestManifestDigestStableAcrossOrderings(t *testing.T) {
	recs := make([]*Record, 0, 12)
	for i := 0; i < 12; i++ {
		recs = append(recs, bucketRecord(i%4, i))
	}

	manifestOf := func(order []int) []BucketInfo {
		t.Helper()
		s := openT(t, t.TempDir())
		for _, i := range order {
			if err := s.Put(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s.Manifest()
	}

	base := manifestOf([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		order := rng.Perm(len(recs))
		got := manifestOf(order)
		for b := range base {
			if got[b] != base[b] {
				t.Fatalf("trial %d bucket %d: %+v != %+v (order %v)", trial, b, got[b], base[b], order)
			}
		}
	}
}

// TestExportImportByteExact pins the round trip: export → import into
// an empty store → re-export is byte-identical, and a second import is
// fully deduplicated.
func TestExportImportByteExact(t *testing.T) {
	src := openT(t, t.TempDir())
	for i := 0; i < 9; i++ {
		if err := src.Put(bucketRecord(i%2, i)); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < ManifestBuckets; b++ {
		seg, n, err := src.ExportBucket(b)
		if err != nil {
			t.Fatal(err)
		}
		if b > 1 {
			if n != 0 || len(seg) != 0 {
				t.Fatalf("bucket %d: expected empty export, got %d records", b, n)
			}
			continue
		}

		dstDir := t.TempDir()
		dst := openT(t, dstDir)
		st, err := dst.ImportFrames(seg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Imported != n || st.Unchanged != 0 || st.Dropped {
			t.Fatalf("bucket %d import: %+v, want %d imported", b, st, n)
		}
		back, n2, err := dst.ExportBucket(b)
		if err != nil {
			t.Fatal(err)
		}
		if n2 != n || !bytes.Equal(back, seg) {
			t.Fatalf("bucket %d: re-export differs (%d vs %d records)", b, n2, n)
		}
		// idempotence: importing again changes nothing
		st2, err := dst.ImportFrames(seg)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Imported != 0 || st2.Unchanged != n || st2.Dropped {
			t.Fatalf("bucket %d re-import: %+v, want %d unchanged", b, st2, n)
		}

		// imported records survive a restart through the local log
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
		re := openT(t, dstDir)
		if re.Len() != n || re.CorruptSkipped() != 0 {
			t.Fatalf("bucket %d reopen after import: len=%d corrupt=%d", b, re.Len(), re.CorruptSkipped())
		}
	}
}

// TestImportCorruptSegmentSkippedNotServed flips every byte of a small
// sealed segment and asserts the import path never errors, never
// panics, and never indexes a record that was not in the original set
// — a corrupt segment degrades to missing records, not wrong ones.
func TestImportCorruptSegmentSkippedNotServed(t *testing.T) {
	src := openT(t, t.TempDir())
	want := map[string]*Record{}
	for i := 0; i < 3; i++ {
		r := bucketRecord(5, i)
		want[r.Fingerprint] = r
		if err := src.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	seg, n, err := src.ExportBucket(5)
	if err != nil || n != 3 {
		t.Fatalf("export: n=%d err=%v", n, err)
	}

	var sawDrop, sawPartial bool
	for off := 0; off < len(seg); off++ {
		for _, delta := range []byte{0x01, 0xff} {
			mut := append([]byte(nil), seg...)
			mut[off] ^= delta
			dst := openT(t, t.TempDir())
			st, err := dst.ImportFrames(mut)
			if err != nil {
				t.Fatalf("offset %d: import errored: %v", off, err)
			}
			if st.Dropped {
				sawDrop = true
			}
			if st.Imported < n {
				sawPartial = true
			}
			// whatever survived must be a subset of the originals,
			// byte-for-byte
			for _, fp := range dst.Fingerprints() {
				orig, ok := want[fp]
				if !ok {
					t.Fatalf("offset %d: imported unknown fingerprint %s", off, fp)
				}
				got, _ := dst.Get(fp)
				if !sameRecord(got, orig) {
					t.Fatalf("offset %d: record %s mutated in flight", off, fp)
				}
			}
			dst.Close()
		}
	}
	if !sawDrop || !sawPartial {
		t.Fatalf("corruption sweep never tripped the drop path (drop=%v partial=%v)", sawDrop, sawPartial)
	}
}

// TestImportFirstWriteWins pins the conflict rule: a record for an
// already-indexed fingerprint is skipped, keeping the local verdict.
func TestImportFirstWriteWins(t *testing.T) {
	local := openT(t, t.TempDir())
	mine := &Record{Fingerprint: bucketRecord(2, 0).Fingerprint, Feasible: true, Elements: 2, Slots: []int{0, 1}, Source: "exact"}
	if err := local.Put(mine); err != nil {
		t.Fatal(err)
	}

	remote := openT(t, t.TempDir())
	theirs := &Record{Fingerprint: mine.Fingerprint, Feasible: true, Elements: 2, Slots: []int{1, 0}, Source: "heuristic"}
	if err := remote.Put(theirs); err != nil {
		t.Fatal(err)
	}
	seg, _, err := remote.ExportBucket(2)
	if err != nil {
		t.Fatal(err)
	}

	st, err := local.ImportFrames(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 0 || st.Unchanged != 1 {
		t.Fatalf("import: %+v, want 1 unchanged", st)
	}
	got, _ := local.Get(mine.Fingerprint)
	if !sameRecord(got, mine) {
		t.Fatalf("import overwrote the local record: %+v", got)
	}
}
